// Vocabulary compaction (§3.2): operand abstraction, constant bucketing,
// header-field preservation, and one-hot/bag-of-words encoding.
#include "src/ir/vocab.h"

#include <gtest/gtest.h>

#include "src/elements/elements.h"
#include "src/ir/builder.h"
#include "src/lang/lower.h"

namespace clara {
namespace {

Module OneBlock(std::function<void(IrBuilder&)> fill) {
  Module m;
  InstallStandardPacketFields(m);
  m.functions.emplace_back();
  IrBuilder b(m, m.functions.back());
  b.SetInsertPoint(b.NewBlock("entry"));
  fill(b);
  b.Ret();
  return m;
}

TEST(Vocab, AbstractsOperandsToKinds) {
  Module m = OneBlock([](IrBuilder& b) {
    Value x = b.LoadPacket(static_cast<uint32_t>(b.module().FindPacketField("ip.src")));
    b.Binary(Opcode::kAdd, Type::kI32, x, Value::Const(2));
    b.Binary(Opcode::kAdd, Type::kI32, x, Value::Const(70000));
  });
  auto words = AbstractBlock(m.functions[0].blocks[0], m);
  EXPECT_EQ(words[0], "load.pkt i32 ip.src");  // field names preserved
  EXPECT_EQ(words[1], "add i32 VAR C8");       // small constant bucket
  EXPECT_EQ(words[2], "add i32 VAR C32");      // large constant bucket
  EXPECT_EQ(words[3], "ret");
}

TEST(Vocab, SameShapeDifferentConstantsShareWords) {
  Module m = OneBlock([](IrBuilder& b) {
    b.Binary(Opcode::kXor, Type::kI32, Value::Const(3), Value::Const(5));
    b.Binary(Opcode::kXor, Type::kI32, Value::Const(9), Value::Const(200));
  });
  auto words = AbstractBlock(m.functions[0].blocks[0], m);
  EXPECT_EQ(words[0], words[1]);
}

TEST(Vocab, RawModeKeepsConstants) {
  Module m = OneBlock([](IrBuilder& b) {
    b.Binary(Opcode::kXor, Type::kI32, Value::Const(3), Value::Const(5));
    b.Binary(Opcode::kXor, Type::kI32, Value::Const(9), Value::Const(200));
  });
  auto words = AbstractBlock(m.functions[0].blocks[0], m, AbstractionMode::kRaw);
  EXPECT_NE(words[0], words[1]);
}

TEST(Vocab, FrozenVocabMapsUnknownToZero) {
  Vocabulary v;
  Module m = OneBlock([](IrBuilder& b) {
    b.Binary(Opcode::kAdd, Type::kI32, Value::Const(1), Value::Const(2));
  });
  v.Encode(m.functions[0].blocks[0], m);
  v.Freeze();
  Module m2 = OneBlock([](IrBuilder& b) {
    b.Binary(Opcode::kMul, Type::kI64, Value::Const(1), Value::Const(2));  // unseen word
  });
  auto tokens = v.Encode(m2.functions[0].blocks[0], m2);
  EXPECT_EQ(tokens[0], 0);  // <unk>
}

TEST(Vocab, CompactionKeepsVocabularySmall) {
  // Paper: a few hundred distinct words across a whole corpus.
  Vocabulary compact;
  Vocabulary raw;
  for (const auto& info : ElementRegistry()) {
    Program p = info.make();
    LowerResult lr = LowerProgram(p);
    ASSERT_TRUE(lr.ok) << info.name;
    for (const auto& blk : lr.module.functions[0].blocks) {
      compact.Encode(blk, lr.module, AbstractionMode::kCompacted);
      raw.Encode(blk, lr.module, AbstractionMode::kRaw);
    }
  }
  EXPECT_LT(compact.size(), 400);
  EXPECT_GT(raw.size(), compact.size() * 2);  // the ablation blows up
}

TEST(Vocab, HistogramNormalized) {
  Vocabulary v;
  v.Intern("a");
  v.Intern("b");
  std::vector<int> tokens = {1, 1, 2, 2};
  auto h = v.Histogram(tokens);
  EXPECT_DOUBLE_EQ(h[1], 0.5);
  EXPECT_DOUBLE_EQ(h[2], 0.5);
  EXPECT_DOUBLE_EQ(h[0], 0.0);
}

}  // namespace
}  // namespace clara
