#include "src/ml/metrics.h"

#include <gtest/gtest.h>

namespace clara {
namespace {

TEST(Wmape, PerfectPredictionIsZero) {
  EXPECT_DOUBLE_EQ(Wmape({10, 20, 30}, {10, 20, 30}), 0.0);
}

TEST(Wmape, WeightsByMagnitude) {
  // |err| sum = 6, |truth| sum = 60.
  EXPECT_DOUBLE_EQ(Wmape({10, 20, 30}, {12, 22, 32}), 0.1);
}

TEST(Mae, Basic) {
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({1, 2, 3}, {2, 2, 5}), 1.0);
}

TEST(PrecisionRecall, PerfectClassifier) {
  std::vector<int> truth = {0, 1, 2, 3, 0, 1};
  auto pr = MultiClassPrecisionRecall(truth, truth, /*negative_class=*/3);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
}

TEST(PrecisionRecall, MissedDetectionHitsRecall) {
  // One CRC (0) classified as none (3): recall drops, precision intact.
  std::vector<int> truth = {0, 0, 3};
  std::vector<int> pred = {0, 3, 3};
  auto pr = MultiClassPrecisionRecall(truth, pred, 3);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 0.5);
}

TEST(PrecisionRecall, FalseAlarmHitsPrecision) {
  std::vector<int> truth = {3, 3, 0};
  std::vector<int> pred = {0, 3, 0};
  auto pr = MultiClassPrecisionRecall(truth, pred, 3);
  EXPECT_DOUBLE_EQ(pr.precision, 0.5);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
}

TEST(TopK, ExactTopOne) {
  std::vector<std::vector<double>> truth = {{1, 5, 2}, {9, 1, 1}};
  std::vector<std::vector<double>> pred_good = {{0, 10, 1}, {8, 0, 0}};
  std::vector<std::vector<double>> pred_bad = {{10, 0, 1}, {0, 8, 0}};
  EXPECT_DOUBLE_EQ(TopKAccuracy(truth, pred_good, 1), 1.0);
  EXPECT_DOUBLE_EQ(TopKAccuracy(truth, pred_bad, 1), 0.0);
}

TEST(TopK, WidensWithK) {
  std::vector<std::vector<double>> truth = {{1, 5, 2, 0}};
  std::vector<std::vector<double>> pred = {{3, 2, 1, 0}};  // best truth item ranked 2nd
  EXPECT_DOUBLE_EQ(TopKAccuracy(truth, pred, 1), 0.0);
  EXPECT_DOUBLE_EQ(TopKAccuracy(truth, pred, 2), 1.0);
}

TEST(Distances, IdenticalDistributionsAreZero) {
  std::vector<double> p = {0.2, 0.3, 0.5};
  EXPECT_NEAR(JensenShannonDivergence(p, p), 0.0, 1e-6);
  EXPECT_NEAR(RenyiDivergence(p, p), 0.0, 1e-6);
  EXPECT_NEAR(BhattacharyyaDistance(p, p), 0.0, 1e-6);
  EXPECT_NEAR(CosineDistance(p, p), 0.0, 1e-6);
  EXPECT_NEAR(EuclideanDistance(p, p), 0.0, 1e-6);
  EXPECT_NEAR(VariationalDistance(p, p), 0.0, 1e-6);
}

TEST(Distances, AllPositiveForDifferentDistributions) {
  std::vector<double> p = {0.9, 0.1, 0.0};
  std::vector<double> q = {0.1, 0.1, 0.8};
  EXPECT_GT(JensenShannonDivergence(p, q), 0.01);
  EXPECT_GT(RenyiDivergence(p, q), 0.01);
  EXPECT_GT(BhattacharyyaDistance(p, q), 0.01);
  EXPECT_GT(CosineDistance(p, q), 0.01);
  EXPECT_GT(EuclideanDistance(p, q), 0.01);
  EXPECT_GT(VariationalDistance(p, q), 0.01);
}

TEST(Distances, SymmetricWhereExpected) {
  std::vector<double> p = {0.7, 0.2, 0.1};
  std::vector<double> q = {0.3, 0.3, 0.4};
  EXPECT_NEAR(JensenShannonDivergence(p, q), JensenShannonDivergence(q, p), 1e-12);
  EXPECT_NEAR(VariationalDistance(p, q), VariationalDistance(q, p), 1e-12);
  EXPECT_NEAR(EuclideanDistance(p, q), EuclideanDistance(q, p), 1e-12);
  EXPECT_NEAR(BhattacharyyaDistance(p, q), BhattacharyyaDistance(q, p), 1e-12);
}

TEST(Distances, MonotoneInDivergence) {
  // Distributions farther apart score higher on every metric.
  std::vector<double> base = {0.5, 0.5, 0.0, 0.0};
  std::vector<double> close = {0.4, 0.6, 0.0, 0.0};
  std::vector<double> far = {0.0, 0.0, 0.5, 0.5};
  EXPECT_LT(JensenShannonDivergence(base, close), JensenShannonDivergence(base, far));
  EXPECT_LT(VariationalDistance(base, close), VariationalDistance(base, far));
  EXPECT_LT(CosineDistance(base, close), CosineDistance(base, far));
  EXPECT_LT(EuclideanDistance(base, close), EuclideanDistance(base, far));
}

TEST(Distances, HandlesUnnormalizedCounts) {
  // Raw histogram counts (not normalized) are accepted.
  std::vector<double> p = {10, 30, 60};
  std::vector<double> q = {0.1, 0.3, 0.6};
  EXPECT_NEAR(JensenShannonDivergence(p, q), 0.0, 1e-6);
}

TEST(Distances, DifferentLengthsPadded) {
  std::vector<double> p = {0.5, 0.5};
  std::vector<double> q = {0.5, 0.25, 0.25};
  EXPECT_GT(VariationalDistance(p, q), 0.1);
}

}  // namespace
}  // namespace clara
