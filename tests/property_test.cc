// Cross-cutting property tests over randomly synthesized programs: the
// pipeline invariants that every well-formed NF must satisfy end-to-end.
#include <gtest/gtest.h>

#include "src/ir/cfg.h"
#include "src/ir/classify.h"
#include "src/ir/parser.h"
#include "src/ir/printer.h"
#include "src/ir/verify.h"
#include "src/lang/interp.h"
#include "src/lang/lower.h"
#include "src/nic/backend.h"
#include "src/synth/synth.h"
#include "src/workload/workload.h"

namespace clara {
namespace {

class PipelineProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  std::vector<Program> Corpus() {
    SynthOptions opts;
    opts.profile = UniformProfile();
    return SynthesizeCorpus(4, opts, GetParam());
  }
};

TEST_P(PipelineProperty, PrinterParserFixedPoint) {
  for (Program& p : Corpus()) {
    LowerResult lr = LowerProgram(p);
    ASSERT_TRUE(lr.ok);
    std::string text = ToString(lr.module);
    ParseResult parsed = ParseModule(text);
    ASSERT_TRUE(parsed.ok) << parsed.error << "\n" << text;
    EXPECT_EQ(ToString(parsed.module), text);
    EXPECT_TRUE(VerifyModule(parsed.module).ok);
  }
}

TEST_P(PipelineProperty, ProfileConsistentWithCfg) {
  for (Program& p : Corpus()) {
    NfInstance nf(std::move(p));
    ASSERT_TRUE(nf.ok());
    Trace t = GenerateTrace(WorkloadSpec{}, 120);
    for (auto& pkt : t.packets) {
      nf.Process(pkt);
    }
    const NfProfile& prof = nf.profile();
    Cfg cfg = BuildCfg(nf.module().functions[0]);
    // Executed blocks must be CFG-reachable; the entry block runs per packet.
    for (size_t b = 0; b < prof.block_exec.size(); ++b) {
      if (prof.block_exec[b] > 0) {
        EXPECT_TRUE(cfg.reachable[b]) << "block " << b << " executed but unreachable";
      }
    }
    ASSERT_FALSE(prof.block_exec.empty());
    EXPECT_EQ(prof.block_exec[0], prof.packets);
    EXPECT_EQ(prof.sends + prof.drops, prof.packets);
  }
}

TEST_P(PipelineProperty, BackendInvariants) {
  for (Program& p : Corpus()) {
    LowerResult lr = LowerProgram(p);
    ASSERT_TRUE(lr.ok);
    NicProgram nic = CompileToNic(lr.module);
    const Function& f = lr.module.functions[0];
    ASSERT_EQ(nic.blocks.size(), f.blocks.size());
    for (size_t b = 0; b < f.blocks.size(); ++b) {
      BlockCounts ir = CountBlock(f.blocks[b]);
      const NicBlockCounts& mc = nic.blocks[b].counts;
      // Load coalescing only ever reduces stateful access counts.
      EXPECT_LE(mc.mem_state, ir.stateful_mem) << "block " << b;
      // Every state access moves at least one word.
      EXPECT_GE(mc.state_words, mc.mem_state) << "block " << b;
      // API expansion appears iff the IR block calls an API.
      if (ir.api_calls == 0) {
        EXPECT_EQ(mc.api_compute, 0u) << "block " << b;
      }
      // A nonempty block has at least its terminator's compute cost.
      if (!f.blocks[b].instrs.empty()) {
        EXPECT_GE(mc.compute, 1u) << "block " << b;
      }
    }
  }
}

TEST_P(PipelineProperty, InterpreterDeterministic) {
  SynthOptions opts;
  opts.profile = UniformProfile();
  Rng rng_a(GetParam());
  Rng rng_b(GetParam());
  Program a = SynthesizeProgram(rng_a, opts, 0);
  Program b = SynthesizeProgram(rng_b, opts, 0);
  NfInstance na(std::move(a), /*seed=*/7);
  NfInstance nb(std::move(b), /*seed=*/7);
  ASSERT_TRUE(na.ok());
  ASSERT_TRUE(nb.ok());
  Trace t = GenerateTrace(WorkloadSpec{}, 80);
  for (auto& pkt : t.packets) {
    Packet copy = pkt;
    na.Process(pkt);
    nb.Process(copy);
    ASSERT_EQ(pkt.verdict, copy.verdict);
    ASSERT_EQ(pkt.src_ip, copy.src_ip);
    ASSERT_EQ(pkt.ip_checksum, copy.ip_checksum);
  }
  for (size_t bix = 0; bix < na.profile().block_exec.size(); ++bix) {
    ASSERT_EQ(na.profile().block_exec[bix], nb.profile().block_exec[bix]);
  }
}

TEST_P(PipelineProperty, MapProbeBlockCountsMatchSimMapStats) {
  // For map-bearing programs, the interpreter's probe-loop block counts must
  // be internally consistent: body >= hit + miss boundary counts, cond >=
  // body, latch < body.
  for (Program& p : Corpus()) {
    // Find map statements after lowering annotations are in place.
    NfInstance nf(std::move(p));
    ASSERT_TRUE(nf.ok());
    Trace t = GenerateTrace(WorkloadSpec{}, 200);
    for (auto& pkt : t.packets) {
      nf.Process(pkt);
    }
    const NfProfile& prof = nf.profile();
    std::function<void(const std::vector<StmtPtr>&)> walk =
        [&](const std::vector<StmtPtr>& body) {
          for (const auto& s : body) {
            if (s->kind == StmtKind::kMapFind || s->kind == StmtKind::kMapInsert ||
                s->kind == StmtKind::kMapErase) {
              uint64_t cond = prof.block_exec[s->block_cond];
              uint64_t probe = prof.block_exec[s->block_body];
              uint64_t latch = prof.block_exec[s->block_latch];
              uint64_t hit = prof.block_exec[s->block_hit];
              uint64_t miss = prof.block_exec[s->block_miss];
              EXPECT_GE(cond, probe);
              EXPECT_LE(latch, probe);
              if (probe > 0) {
                EXPECT_GE(hit + miss, 1u);
              }
            }
            walk(s->body);
            walk(s->else_body);
          }
        };
    walk(nf.program().body);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace clara
