// Interpreter semantics and profile-attribution tests.
#include "src/lang/interp.h"

#include <gtest/gtest.h>

#include "src/elements/elements.h"
#include "src/nf/checksum.h"
#include "src/workload/workload.h"

namespace clara {
namespace {

Packet TcpPacket(uint32_t src, uint32_t dst, uint16_t sport, uint16_t dport,
                 uint8_t flags = kTcpAck) {
  Packet p;
  p.src_ip = src;
  p.dst_ip = dst;
  p.sport = sport;
  p.dport = dport;
  p.tcp_flags = flags;
  p.ip_len = 110;
  p.wire_len = 124;
  p.payload_len = 70;
  return p;
}

TEST(Interp, ArithmeticAndMasking) {
  Program p;
  p.name = "arith";
  p.state.push_back([] {
    StateDecl d;
    d.name = "out";
    d.kind = StateKind::kScalar;
    d.elem_type = Type::kI32;
    return d;
  }());
  // u8 arithmetic wraps at 256.
  p.body.push_back(Decl("a", Type::kI8, Lit(200)));
  p.body.push_back(Assign("a", Bin(Opcode::kAdd, Local("a"), Lit(100))));
  p.body.push_back(AssignState("out", Local("a")));
  NfInstance nf(std::move(p));
  ASSERT_TRUE(nf.ok()) << nf.error();
  Packet pkt = TcpPacket(1, 2, 3, 4);
  nf.Process(pkt);
  EXPECT_EQ(nf.ReadScalar("out"), (200u + 100u) & 0xff);
}

TEST(Interp, ShiftAndCompareSemantics) {
  Program p;
  p.state.push_back([] {
    StateDecl d;
    d.name = "r";
    d.kind = StateKind::kScalar;
    d.elem_type = Type::kI32;
    return d;
  }());
  p.body.push_back(Decl("x", Type::kI32, Lit(0xf0)));
  std::vector<StmtPtr> then_body;
  then_body.push_back(AssignState("r", Bin(Opcode::kLShr, Local("x"), Lit(4))));
  p.body.push_back(
      If(Cmp(Opcode::kIcmpUgt, Local("x"), Lit(0x0f)), std::move(then_body)));
  NfInstance nf(std::move(p));
  ASSERT_TRUE(nf.ok());
  Packet pkt = TcpPacket(1, 2, 3, 4);
  nf.Process(pkt);
  EXPECT_EQ(nf.ReadScalar("r"), 0x0fu);
}

TEST(Interp, ForLoopIterationCountsAttributed) {
  Program p;
  p.state.push_back([] {
    StateDecl d;
    d.name = "sum";
    d.kind = StateKind::kScalar;
    d.elem_type = Type::kI32;
    return d;
  }());
  std::vector<StmtPtr> body;
  body.push_back(AssignState("sum", Bin(Opcode::kAdd, StateRef("sum"), Local("i"))));
  p.body.push_back(For("i", Lit(0), Lit(5), std::move(body)));
  NfInstance nf(std::move(p));
  ASSERT_TRUE(nf.ok());
  const Stmt& loop = *nf.program().body[0];
  Packet pkt = TcpPacket(1, 2, 3, 4);
  nf.Process(pkt);
  EXPECT_EQ(nf.ReadScalar("sum"), 0u + 1 + 2 + 3 + 4);
  // Cond evaluated 6x (5 iterations + exit), latch 5x.
  EXPECT_EQ(nf.profile().block_exec[loop.block_cond], 6u);
  EXPECT_EQ(nf.profile().block_exec[loop.block_latch], 5u);
}

TEST(Interp, MapFindInsertAcrossPackets) {
  Program p = MakeMazuNat();
  NfInstance nf(std::move(p));
  ASSERT_TRUE(nf.ok()) << nf.error();

  // Outbound SYN from inside allocates a translation.
  Packet syn = TcpPacket(0x0a000005, 0x08080808, 4321, 80, kTcpSyn);
  syn.in_port = 0;
  nf.Process(syn);
  EXPECT_EQ(syn.verdict, Packet::Verdict::kSent);
  EXPECT_EQ(syn.src_ip, 0xc0a80101u);  // rewritten to the NAT external IP
  uint16_t ext_port = syn.sport;
  EXPECT_GE(ext_port, 10000);
  EXPECT_EQ(nf.ReadScalar("active_flows"), 1u);

  // Second outbound packet of the same flow reuses the mapping.
  Packet data = TcpPacket(0x0a000005, 0x08080808, 4321, 80);
  data.in_port = 0;
  nf.Process(data);
  EXPECT_EQ(data.sport, ext_port);
  EXPECT_EQ(nf.ReadScalar("active_flows"), 1u);

  // Inbound packet to the external mapping is translated back.
  Packet reply = TcpPacket(0x08080808, 0xc0a80101, 80, ext_port);
  reply.in_port = 1;
  nf.Process(reply);
  EXPECT_EQ(reply.verdict, Packet::Verdict::kSent);
  EXPECT_EQ(reply.dst_ip, 0x0a000005u);
  EXPECT_EQ(reply.dport, 4321);

  // Inbound to an unknown mapping is dropped.
  Packet stray = TcpPacket(0x08080808, 0xc0a80101, 80, 9);
  stray.in_port = 1;
  nf.Process(stray);
  EXPECT_EQ(stray.verdict, Packet::Verdict::kDropped);
}

TEST(Interp, ChecksumApiMatchesReference) {
  Program p;
  p.body.push_back(Api("checksum_update"));
  p.body.push_back(Send(nullptr));
  NfInstance nf(std::move(p));
  ASSERT_TRUE(nf.ok());
  Packet pkt = TcpPacket(0x01020304, 0x05060708, 10, 20);
  nf.Process(pkt);
  EXPECT_EQ(pkt.ip_checksum, Ipv4HeaderChecksum(pkt));
}

TEST(Interp, DpiMatchesGetSignature) {
  Program p = MakeDpi();
  NfInstance nf(std::move(p));
  ASSERT_TRUE(nf.ok());
  Packet hit = TcpPacket(1, 2, 3, 80);
  hit.payload_len = 32;
  hit.payload[4] = 'G';
  hit.payload[5] = 'E';
  hit.payload[6] = 'T';
  hit.payload[7] = ' ';
  nf.Process(hit);
  EXPECT_EQ(nf.ReadScalar("matched"), 1u);
  EXPECT_EQ(hit.ip_tos, 1);

  Packet miss = TcpPacket(1, 2, 3, 80);
  miss.payload_len = 32;
  nf.Process(miss);
  EXPECT_EQ(nf.ReadScalar("matched"), 1u);  // unchanged
  EXPECT_EQ(nf.ReadScalar("scanned"), 2u);
}

TEST(Interp, IpLookupAgreesWithLpmTable) {
  // The element embeds a trie built from seed 99; rebuild the same table
  // here and compare verdicts on random addresses.
  Program p = MakeIpLookup(/*num_rules=*/128, false, false, /*seed=*/99);
  NfInstance nf(std::move(p));
  ASSERT_TRUE(nf.ok());

  LpmTable table;
  Rng rng(99);
  table.Insert(0, 0, 15);  // the element seeds a default route first
  for (int r = 0; r < 128; ++r) {
    int plen = static_cast<int>(rng.NextInt(8, 24));
    uint32_t prefix = static_cast<uint32_t>(rng.NextU64()) & ~((1u << (32 - plen)) - 1);
    table.Insert(prefix, plen, static_cast<uint32_t>(rng.NextBounded(16)));
  }

  Rng qrng(5);
  int hits = 0;
  for (int q = 0; q < 300; ++q) {
    Packet pkt = TcpPacket(1, static_cast<uint32_t>(qrng.NextU64()), 1, 2);
    auto expect = table.Lookup(pkt.dst_ip);
    nf.Process(pkt);
    if (expect.has_value()) {
      ++hits;
      ASSERT_EQ(pkt.verdict, Packet::Verdict::kSent) << IpToString(pkt.dst_ip);
      ASSERT_EQ(pkt.out_port, *expect);
    } else {
      ASSERT_EQ(pkt.verdict, Packet::Verdict::kDropped) << IpToString(pkt.dst_ip);
    }
  }
  EXPECT_GT(hits, 0);
}

TEST(Interp, BlockEntryCountsMatchPackets) {
  Program p = MakeAggCounter();
  NfInstance nf(std::move(p));
  ASSERT_TRUE(nf.ok());
  const Stmt& first = *nf.program().body[0];
  for (int i = 0; i < 10; ++i) {
    Packet pkt = TcpPacket(i + 1, 2 * i + 1, 3, 4);
    nf.Process(pkt);
  }
  EXPECT_EQ(nf.profile().packets, 10u);
  ASSERT_TRUE(first.block_entry);
  EXPECT_EQ(nf.profile().block_exec[first.block], 10u);
}

TEST(Interp, StateAccessCountsRecorded) {
  Program p = MakeAggCounter();
  NfInstance nf(std::move(p));
  ASSERT_TRUE(nf.ok());
  int counts_idx = nf.module().FindState("counts");
  int total_idx = nf.module().FindState("total_pkts");
  ASSERT_GE(counts_idx, 0);
  for (int i = 0; i < 7; ++i) {
    Packet pkt = TcpPacket(i + 1, 9, 3, 4);
    nf.Process(pkt);
  }
  // counts[]: one read + one write per packet; total_pkts the same.
  EXPECT_EQ(nf.profile().state_reads[counts_idx], 7u);
  EXPECT_EQ(nf.profile().state_writes[counts_idx], 7u);
  EXPECT_EQ(nf.profile().StateAccesses(total_idx), 14u);
}

TEST(Interp, ApiCallsCounted) {
  Program p = MakeUdpIpEncap();
  NfInstance nf(std::move(p));
  ASSERT_TRUE(nf.ok());
  Packet pkt = TcpPacket(1, 2, 3, 4);
  nf.Process(pkt);
  EXPECT_EQ(nf.profile().api_calls.at("checksum_update"), 1u);
  EXPECT_EQ(nf.profile().api_calls.at("send"), 1u);
}

TEST(Interp, ResetStateClearsMaps) {
  Program p = MakeMazuNat();
  NfInstance nf(std::move(p));
  ASSERT_TRUE(nf.ok());
  Packet syn = TcpPacket(0x0a000005, 0x08080808, 4321, 80, kTcpSyn);
  syn.in_port = 0;
  nf.Process(syn);
  EXPECT_GT(nf.FindMap("int_map")->entries(), 0u);
  nf.ResetState();
  EXPECT_EQ(nf.FindMap("int_map")->entries(), 0u);
  EXPECT_EQ(nf.ReadScalar("active_flows"), 0u);
}

TEST(Interp, DefaultVerdictIsSent) {
  Program p;  // empty handler: packet passes through
  NfInstance nf(std::move(p));
  ASSERT_TRUE(nf.ok());
  Packet pkt = TcpPacket(1, 2, 3, 4);
  nf.Process(pkt);
  EXPECT_EQ(pkt.verdict, Packet::Verdict::kSent);
}

TEST(Interp, TimeFilterWindows) {
  Program p = MakeTimeFilter();
  NfInstance nf(std::move(p));
  ASSERT_TRUE(nf.ok());
  Packet a = TcpPacket(1, 2, 3, 4);
  a.ts_ns = 5'000'000'000ULL;
  nf.Process(a);
  EXPECT_EQ(nf.ReadScalar("window_count"), 1u);
  Packet b = TcpPacket(1, 2, 3, 4);
  b.ts_ns = 5'500'000'000ULL;  // same window
  nf.Process(b);
  EXPECT_EQ(nf.ReadScalar("window_count"), 2u);
  Packet c = TcpPacket(1, 2, 3, 4);
  c.ts_ns = 7'000'000'000ULL;  // new window
  nf.Process(c);
  EXPECT_EQ(nf.ReadScalar("window_count"), 1u);
}

}  // namespace
}  // namespace clara
