// Tests for the f32/int8 inference kernels (src/ml/kernels_f32.h) and the
// packed inference engine (src/ml/infer.h).
//
// The load-bearing property is the determinism contract: the scalar and AVX2
// kernel tables must agree bit-for-bit on every input length, so a model
// served on a machine without AVX2 answers byte-identically to one with it.
// When the binary was built without SIMD or the CPU lacks AVX2+FMA, the
// bit-exactness tests skip (there is only one implementation to test).
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/ml/infer.h"
#include "src/ml/kernels_f32.h"
#include "src/ml/lstm.h"
#include "src/ml/simd.h"
#include "src/util/binio.h"
#include "src/util/rng.h"

namespace clara {
namespace {

using kernels::ActQuant;
using kernels::Avx2F32Kernels;
using kernels::F32Kernels;
using kernels::QuantizeActivations;
using kernels::QuantizeWeight;
using kernels::ScalarF32Kernels;

std::vector<float> RandomVec(Rng& rng, int n, float lo = -3.0f, float hi = 3.0f) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(lo + (hi - lo) * rng.NextDouble());
  return v;
}

// ---- scalar vs AVX2 bit-exactness, every length 1..64 ----

class SimdExactnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    avx2_ = Avx2F32Kernels();
    if (avx2_ == nullptr) {
      GTEST_SKIP() << "AVX2 kernels unavailable (built out or CPU lacks "
                      "avx2+fma); scalar table is the only implementation";
    }
  }
  const F32Kernels* avx2_ = nullptr;
};

TEST_F(SimdExactnessTest, DotBitExactEveryLength) {
  const F32Kernels& scalar = ScalarF32Kernels();
  Rng rng(7);
  for (int n = 1; n <= 64; ++n) {
    std::vector<float> a = RandomVec(rng, n), b = RandomVec(rng, n);
    float s = scalar.dot(a.data(), b.data(), n);
    float v = avx2_->dot(a.data(), b.data(), n);
    uint32_t sb, vb;
    std::memcpy(&sb, &s, 4);
    std::memcpy(&vb, &v, 4);
    EXPECT_EQ(sb, vb) << "dot diverges at n=" << n;
  }
}

TEST_F(SimdExactnessTest, GemvBiasBitExactEveryShape) {
  const F32Kernels& scalar = ScalarF32Kernels();
  Rng rng(11);
  for (int cols = 1; cols <= 64; ++cols) {
    const int rows = 5;
    // Padded stride exercises the row-pointer arithmetic both sides use.
    const int stride = cols + (cols % 3);
    std::vector<float> m = RandomVec(rng, rows * stride);
    std::vector<float> x = RandomVec(rng, cols);
    std::vector<float> bias = RandomVec(rng, rows);
    std::vector<float> ys(rows), yv(rows);
    scalar.gemv_bias(ys.data(), m.data(), stride, x.data(), bias.data(), rows, cols);
    avx2_->gemv_bias(yv.data(), m.data(), stride, x.data(), bias.data(), rows, cols);
    EXPECT_EQ(0, std::memcmp(ys.data(), yv.data(), rows * sizeof(float)))
        << "gemv_bias diverges at cols=" << cols;
    // nullptr bias path.
    scalar.gemv_bias(ys.data(), m.data(), stride, x.data(), nullptr, rows, cols);
    avx2_->gemv_bias(yv.data(), m.data(), stride, x.data(), nullptr, rows, cols);
    EXPECT_EQ(0, std::memcmp(ys.data(), yv.data(), rows * sizeof(float)))
        << "gemv_bias (no bias) diverges at cols=" << cols;
  }
}

TEST_F(SimdExactnessTest, ElementwiseBitExactEveryLength) {
  const F32Kernels& scalar = ScalarF32Kernels();
  Rng rng(13);
  for (int n = 1; n <= 64; ++n) {
    std::vector<float> x = RandomVec(rng, n, -6.0f, 6.0f);
    std::vector<float> y = RandomVec(rng, n, -6.0f, 6.0f);
    std::vector<float> zs(n), zv(n);

    scalar.mul(zs.data(), x.data(), y.data(), n);
    avx2_->mul(zv.data(), x.data(), y.data(), n);
    EXPECT_EQ(0, std::memcmp(zs.data(), zv.data(), n * sizeof(float)))
        << "mul diverges at n=" << n;

    std::vector<float> as = RandomVec(rng, n), av = as;
    scalar.mul_accum(as.data(), x.data(), y.data(), n);
    avx2_->mul_accum(av.data(), x.data(), y.data(), n);
    EXPECT_EQ(0, std::memcmp(as.data(), av.data(), n * sizeof(float)))
        << "mul_accum diverges at n=" << n;

    scalar.tanh_v(zs.data(), x.data(), n);
    avx2_->tanh_v(zv.data(), x.data(), n);
    EXPECT_EQ(0, std::memcmp(zs.data(), zv.data(), n * sizeof(float)))
        << "tanh_v diverges at n=" << n;

    scalar.sigmoid_v(zs.data(), x.data(), n);
    avx2_->sigmoid_v(zv.data(), x.data(), n);
    EXPECT_EQ(0, std::memcmp(zs.data(), zv.data(), n * sizeof(float)))
        << "sigmoid_v diverges at n=" << n;
  }
}

TEST_F(SimdExactnessTest, GemvInt8ExactEveryLength) {
  const F32Kernels& scalar = ScalarF32Kernels();
  Rng rng(17);
  for (int cols = 1; cols <= 64; ++cols) {
    const int rows = 4;
    std::vector<int8_t> w(rows * cols);
    std::vector<uint8_t> q(cols);
    for (auto& v : w) v = static_cast<int8_t>(rng.NextInt(-127, 127));
    for (auto& v : q) v = static_cast<uint8_t>(rng.NextBounded(256));
    std::vector<int32_t> as(rows), av(rows);
    scalar.gemv_int8(as.data(), w.data(), cols, q.data(), rows, cols);
    avx2_->gemv_int8(av.data(), w.data(), cols, q.data(), rows, cols);
    EXPECT_EQ(as, av) << "gemv_int8 diverges at cols=" << cols;
  }
}

// ---- approximation accuracy ----

TEST(TanhApproxTest, BoundedErrorOnDenseGrid) {
  double max_tanh_err = 0, max_sig_err = 0;
  for (int i = -120000; i <= 120000; ++i) {
    float x = static_cast<float>(i) * 1e-4f;  // [-12, 12], step 1e-4
    max_tanh_err = std::max(max_tanh_err,
                            std::abs(static_cast<double>(kernels::TanhApprox(x)) -
                                     std::tanh(static_cast<double>(x))));
    double sig = 1.0 / (1.0 + std::exp(-static_cast<double>(x)));
    max_sig_err = std::max(max_sig_err,
                           std::abs(static_cast<double>(kernels::SigmoidApprox(x)) - sig));
  }
  EXPECT_LT(max_tanh_err, 2.5e-4);
  EXPECT_LT(max_sig_err, 1.25e-4);
  // Saturation tails stay bounded too.
  EXPECT_NEAR(kernels::TanhApprox(50.0f), 1.0f, 2.5e-4);
  EXPECT_NEAR(kernels::TanhApprox(-50.0f), -1.0f, 2.5e-4);
  EXPECT_NEAR(kernels::SigmoidApprox(40.0f), 1.0f, 1.25e-4);
  EXPECT_NEAR(kernels::SigmoidApprox(-40.0f), 0.0f, 1.25e-4);
}

// ---- int8 quantization ----

TEST(QuantizeTest, WeightSaturatesNeverWraps) {
  // In-range values round to nearest.
  EXPECT_EQ(0, QuantizeWeight(0.0, 1.0f));
  EXPECT_EQ(64, QuantizeWeight(64.2, 1.0f));
  EXPECT_EQ(-64, QuantizeWeight(-64.2, 1.0f));
  // Out-of-range values clamp to +/-127 instead of wrapping.
  EXPECT_EQ(127, QuantizeWeight(1000.0, 1.0f));
  EXPECT_EQ(-127, QuantizeWeight(-1000.0, 1.0f));
  EXPECT_EQ(127, QuantizeWeight(127.49, 1.0f));
  EXPECT_EQ(-127, QuantizeWeight(-127.49, 1.0f));
  EXPECT_EQ(127, QuantizeWeight(1e30, 1.0f));
  EXPECT_EQ(-127, QuantizeWeight(-1e30, 1.0f));
}

TEST(QuantizeTest, RowScaleMapsMaxAbsTo127) {
  const double row[4] = {0.5, -2.0, 1.0, 0.25};
  float scale = kernels::Int8RowScale(row, 4);
  EXPECT_FLOAT_EQ(2.0f / 127.0f, scale);
  EXPECT_EQ(-127, QuantizeWeight(row[1], scale));
  // All-zero rows get the 1.0 sentinel scale (q = 0 everywhere).
  const double zeros[3] = {0, 0, 0};
  EXPECT_FLOAT_EQ(1.0f, kernels::Int8RowScale(zeros, 3));
}

TEST(QuantizeTest, ActivationRoundTripWithinHalfStep) {
  Rng rng(23);
  std::vector<float> x = RandomVec(rng, 37, -5.0f, 9.0f);
  std::vector<uint8_t> q(x.size());
  ActQuant aq = QuantizeActivations(x.data(), static_cast<int>(x.size()), q.data());
  ASSERT_GT(aq.scale, 0.0f);
  for (size_t i = 0; i < x.size(); ++i) {
    float deq = aq.scale * (static_cast<float>(q[i]) - static_cast<float>(aq.zero_point));
    EXPECT_NEAR(x[i], deq, aq.scale * 0.5f + 1e-6f) << "i=" << i;
  }
  // Zero is exactly representable (the asymmetric range always includes 0).
  std::vector<float> with_zero = {0.0f, 3.0f, -1.5f};
  std::vector<uint8_t> qz(3);
  ActQuant az = QuantizeActivations(with_zero.data(), 3, qz.data());
  EXPECT_EQ(az.zero_point, qz[0]);
}

TEST(QuantizeTest, Int8GemvMatchesF64WithinAnalyticBound) {
  Rng rng(29);
  const int rows = 16, cols = 32;
  std::vector<double> w(rows * cols);
  for (auto& v : w) v = 2.0 * rng.NextDouble() - 1.0;
  std::vector<float> x = RandomVec(rng, cols, -2.0f, 2.0f);

  // Quantize weights per row + activations, run the int8 GEMV, dequantize.
  std::vector<float> scales(rows);
  std::vector<int8_t> wq(rows * cols);
  std::vector<int32_t> rowsum(rows, 0);
  for (int r = 0; r < rows; ++r) {
    scales[r] = kernels::Int8RowScale(&w[r * cols], cols);
    for (int c = 0; c < cols; ++c) {
      wq[r * cols + c] = QuantizeWeight(w[r * cols + c], scales[r]);
      rowsum[r] += wq[r * cols + c];
    }
  }
  std::vector<uint8_t> q(cols);
  ActQuant aq = QuantizeActivations(x.data(), cols, q.data());
  std::vector<int32_t> acc(rows);
  kernels::ActiveF32Kernels().gemv_int8(acc.data(), wq.data(), cols, q.data(), rows, cols);

  for (int r = 0; r < rows; ++r) {
    double ref = 0;
    for (int c = 0; c < cols; ++c) ref += w[r * cols + c] * static_cast<double>(x[c]);
    double deq = static_cast<double>(scales[r]) * static_cast<double>(aq.scale) *
                 static_cast<double>(acc[r] - aq.zero_point * rowsum[r]);
    // Per-element error <= w_scale/2 * |x| + act_scale/2 * |w|; sum over cols.
    double bound = 0;
    for (int c = 0; c < cols; ++c) {
      bound += 0.5 * scales[r] * std::abs(x[c]) +
               0.5 * aq.scale * std::abs(w[r * cols + c]) +
               0.25 * scales[r] * aq.scale;
    }
    EXPECT_NEAR(ref, deq, bound) << "row " << r;
  }
}

// ---- Int8LstmParams serialization ----

TEST(Int8ParamsTest, SaveLoadRoundTripAndMismatchRejection) {
  Int8LstmParams p;
  p.hidden = 2;
  p.fc_hidden = 3;
  p.vocab = 5;
  p.wh_scale = {0.1f, 0.2f, 0.3f, 0.4f, 0.5f, 0.6f, 0.7f, 0.8f};
  p.wh.assign(8 * 2, 7);
  p.w1_scale = {1.0f, 2.0f, 3.0f};
  p.w1.assign(3 * 2, -5);
  p.w2_scale = 0.25f;
  p.w2 = {1, 2, 3};

  BinWriter w;
  p.SaveTo(w);
  BinReader r(w.data());
  Int8LstmParams q;
  ASSERT_TRUE(q.LoadFrom(r));
  EXPECT_EQ(p.hidden, q.hidden);
  EXPECT_EQ(p.vocab, q.vocab);
  EXPECT_EQ(p.wh, q.wh);
  EXPECT_EQ(p.w1_scale, q.w1_scale);
  EXPECT_FLOAT_EQ(p.w2_scale, q.w2_scale);

  std::string err;
  EXPECT_TRUE(q.Validate(2, 3, 5, &err)) << err;
  EXPECT_FALSE(q.Validate(4, 3, 5, &err));  // wrong hidden
  EXPECT_FALSE(q.Validate(2, 3, 9, &err));  // wrong vocab

  // A shape-corrupted load is rejected by Validate.
  q.wh.pop_back();
  EXPECT_FALSE(q.Validate(2, 3, 5, &err));
  EXPECT_FALSE(err.empty());
}

TEST(Int8ParamsTest, QuantizeLstmIsDeterministic) {
  LstmOptions opts;
  opts.hidden = 4;
  opts.fc_hidden = 3;
  opts.epochs = 2;
  LstmRegressor model(opts);
  SeqDataset data;
  data.vocab = 6;
  Rng rng(31);
  for (int i = 0; i < 12; ++i) {
    SeqExample ex;
    for (int t = 0; t < 5; ++t) ex.tokens.push_back(static_cast<int>(rng.NextBounded(6)));
    ex.target = 1.0 + static_cast<double>(i);
    data.examples.push_back(ex);
  }
  model.Fit(data);

  Int8LstmParams a = model.QuantizedParams();
  Int8LstmParams b = model.QuantizedParams();
  BinWriter wa, wb;
  a.SaveTo(wa);
  b.SaveTo(wb);
  EXPECT_EQ(wa.data(), wb.data());
  EXPECT_EQ(6, a.vocab);
  EXPECT_FALSE(a.empty());
}

// ---- end-to-end: trained LSTM across backends ----

TEST(InferEngineTest, BackendsAgreeWithinBoundAndAreDeterministic) {
  LstmOptions opts;
  opts.hidden = 8;
  opts.fc_hidden = 6;
  opts.epochs = 6;
  LstmRegressor model(opts);
  SeqDataset data;
  data.vocab = 10;
  Rng rng(37);
  for (int i = 0; i < 24; ++i) {
    SeqExample ex;
    int len = 3 + static_cast<int>(rng.NextBounded(8));
    for (int t = 0; t < len; ++t) ex.tokens.push_back(static_cast<int>(rng.NextBounded(10)));
    ex.target = 2.0 + static_cast<double>(rng.NextBounded(40));
    data.examples.push_back(ex);
  }
  model.Fit(data);
  ASSERT_EQ(InferBackend::kF64, model.infer_backend());

  std::vector<std::vector<int>> probes;
  for (int i = 0; i < 8; ++i) probes.push_back(data.examples[i * 3].tokens);

  std::vector<double> y64, y32, y8;
  for (const auto& t : probes) y64.push_back(model.Predict(t));

  model.SetInferBackend(InferBackend::kF32);
  EXPECT_EQ(InferBackend::kF32, model.infer_backend());
  for (const auto& t : probes) y32.push_back(model.Predict(t));

  model.SetInferBackend(InferBackend::kInt8);
  for (const auto& t : probes) y8.push_back(model.Predict(t));

  for (size_t i = 0; i < probes.size(); ++i) {
    ASSERT_GT(y64[i], 0.0);
    // f32: only f32 rounding + the polynomial nonlinearities diverge.
    EXPECT_NEAR(y32[i], y64[i], 0.02 * y64[i] + 0.05) << "probe " << i;
    // int8: adds quantization noise, still close at these magnitudes.
    EXPECT_NEAR(y8[i], y64[i], 0.10 * y64[i] + 0.25) << "probe " << i;
  }

  // Per-backend determinism: repeat predictions are bit-identical.
  for (const auto& t : probes) {
    model.SetInferBackend(InferBackend::kInt8);
    EXPECT_EQ(model.Predict(t), model.Predict(t));
    model.SetInferBackend(InferBackend::kF32);
    EXPECT_EQ(model.Predict(t), model.Predict(t));
  }

  // Copies share the engine and answer identically.
  LstmRegressor copy = model;
  for (const auto& t : probes) EXPECT_EQ(copy.Predict(t), model.Predict(t));

  // Attaching the model's own quantized frame is a no-op for predictions
  // (quantize-at-load == the attached frame, byte for byte).
  model.SetInferBackend(InferBackend::kInt8);
  std::vector<double> before;
  for (const auto& t : probes) before.push_back(model.Predict(t));
  std::string err;
  ASSERT_TRUE(model.AttachQuantized(model.QuantizedParams(), &err)) << err;
  for (size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(before[i], model.Predict(probes[i]));
  }
}

// Regression: the int8 accumulator buffer must cover the FC head too. With
// fc_hidden > 4*hidden the head GEMV writes more rows than the LSTM
// recurrence; sizing acc for the recurrence alone overflowed the heap
// (caught under ASan with hidden=1, fc_hidden=64).
TEST(InferEngineTest, Int8WideFcHeadDoesNotOverflowAccumulator) {
  LstmOptions opts;
  opts.hidden = 1;
  opts.fc_hidden = 64;
  opts.epochs = 2;
  LstmRegressor model(opts);
  SeqDataset data;
  data.vocab = 5;
  Rng rng(11);
  for (int i = 0; i < 8; ++i) {
    SeqExample ex;
    for (int t = 0; t < 4; ++t) ex.tokens.push_back(static_cast<int>(rng.NextBounded(5)));
    ex.target = 1.0 + static_cast<double>(i);
    data.examples.push_back(ex);
  }
  model.Fit(data);
  model.SetInferBackend(InferBackend::kInt8);
  for (const auto& ex : data.examples) {
    double y = model.Predict(ex.tokens);
    EXPECT_GE(y, 0.0);
    EXPECT_EQ(y, model.Predict(ex.tokens));
  }
}

TEST(InferEngineTest, ParseAndNameRoundTrip) {
  InferBackend b = InferBackend::kF64;
  EXPECT_TRUE(ParseInferBackend("f32", &b));
  EXPECT_EQ(InferBackend::kF32, b);
  EXPECT_TRUE(ParseInferBackend("int8", &b));
  EXPECT_EQ(InferBackend::kInt8, b);
  EXPECT_TRUE(ParseInferBackend("f64", &b));
  EXPECT_EQ(InferBackend::kF64, b);
  EXPECT_FALSE(ParseInferBackend("fp16", &b));
  EXPECT_EQ(InferBackend::kF64, b);  // untouched on failure
  EXPECT_STREQ("f64", InferBackendName(InferBackend::kF64));
  EXPECT_STREQ("f32", InferBackendName(InferBackend::kF32));
  EXPECT_STREQ("int8", InferBackendName(InferBackend::kInt8));
  EXPECT_FALSE(simd::FeatureString().empty());
}

}  // namespace
}  // namespace clara
