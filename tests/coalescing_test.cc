// Memory access coalescing (§4.4): access-vector clustering, pack effects,
// and the exhaustive expert partition search.
#include "src/core/coalescing.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/elements/elements.h"
#include "src/nic/backend.h"

namespace clara {
namespace {

struct Profiled {
  std::unique_ptr<NfInstance> nf;
  NicProgram nic;
  WorkloadSpec workload;
};

Profiled Profile(Program p, size_t packets = 3000) {
  Profiled out;
  out.nf = std::make_unique<NfInstance>(std::move(p));
  EXPECT_TRUE(out.nf->ok());
  out.nic = CompileToNic(out.nf->module());
  out.workload = WorkloadSpec::SmallFlows();
  Trace t = GenerateTrace(out.workload, packets);
  for (auto& pkt : t.packets) {
    out.nf->Process(pkt);
  }
  return out;
}

// Whether `plan` puts vars a and b in the same pack.
bool SamePack(const CoalescingPlan& plan, const std::string& a, const std::string& b) {
  for (const auto& pack : plan.packs) {
    bool has_a = std::find(pack.vars.begin(), pack.vars.end(), a) != pack.vars.end();
    bool has_b = std::find(pack.vars.begin(), pack.vars.end(), b) != pack.vars.end();
    if (has_a && has_b) {
      return true;
    }
    if (has_a != has_b && (has_a || has_b)) {
      return false;
    }
  }
  return false;
}

TEST(Coalescing, TcpGenClustersMatchPaper) {
  // Paper §5.6: for tcpgen, (src_port, dst_port) cluster together; the
  // ACK-path trio (tcp_state, send_next, recv_next) clusters; good_pkt and
  // bad_pkt are never accessed together.
  Profiled pr = Profile(MakeTcpGen());
  CoalescingPlan plan = SuggestCoalescing(pr.nf->module(), pr.nf->profile());
  EXPECT_TRUE(SamePack(plan, "src_port", "dst_port"));
  // The ACK-processing variables cluster (tcp_state/recv_next; send_next is
  // additionally read on the send path, so it may sit apart in our variant).
  EXPECT_TRUE(SamePack(plan, "tcp_state", "recv_next"));
  EXPECT_FALSE(SamePack(plan, "good_pkt", "bad_pkt"));
  EXPECT_FALSE(SamePack(plan, "src_port", "tcp_state"));
}

TEST(Coalescing, WebTcpClusters) {
  Profiled pr = Profile(MakeWebTcp());
  CoalescingPlan plan = SuggestCoalescing(pr.nf->module(), pr.nf->profile());
  EXPECT_TRUE(SamePack(plan, "bytes_sent", "bytes_acked"));
  EXPECT_FALSE(SamePack(plan, "retx_count", "fin_count"));
}

TEST(Coalescing, EffectsPreserveTotalWords) {
  // Packing trades access count for width: per pack, access_scale * pack
  // words equals the variable's own words (no data is fetched for free).
  Profiled pr = Profile(MakeTcpGen());
  CoalescingPlan plan = SuggestCoalescing(pr.nf->module(), pr.nf->profile());
  ASSERT_FALSE(plan.packs.empty());
  for (const auto& pack : plan.packs) {
    EXPECT_GE(pack.vars.size(), 2u);
    EXPECT_GT(pack.pack_bytes, 0);
    for (const auto& var : pack.vars) {
      const CoalesceEffect& e = plan.effects.at(var);
      EXPECT_LT(e.access_scale, 1.0);
      EXPECT_GE(e.words_scale, 1.0);
    }
  }
}

TEST(Coalescing, ImprovesSimulatedPerformance) {
  // Figure 13: applying the packing plan reduces latency / cores needed.
  NicConfig cfg;
  PerfModel model(cfg);
  Profiled pr = Profile(MakeTcpGen());
  const Module& m = pr.nf->module();

  NfDemand naive = BuildDemand(m, pr.nic, pr.nf->profile(), pr.workload, cfg);
  CoalescingPlan plan = SuggestCoalescing(m, pr.nf->profile());
  DemandOptions opts;
  opts.coalescing = plan.effects;
  NfDemand packed = BuildDemand(m, pr.nic, pr.nf->profile(), pr.workload, cfg, opts);

  PerfPoint p_naive = model.Evaluate(naive, 16);
  PerfPoint p_packed = model.Evaluate(packed, 16);
  EXPECT_LT(p_packed.latency_us, p_naive.latency_us);
  EXPECT_LE(model.CoresToSaturate(packed), model.CoresToSaturate(naive));
}

TEST(Coalescing, NoScalarsNoPlan) {
  Profiled pr = Profile(MakeAnonIpAddr());
  CoalescingPlan plan = SuggestCoalescing(pr.nf->module(), pr.nf->profile());
  EXPECT_TRUE(plan.packs.empty());
}

TEST(Coalescing, ExhaustiveExpertCompetitive) {
  // Figure 16: the exhaustive partition search has a small edge over the
  // clustering heuristic; Clara stays competitive.
  NicConfig cfg;
  PerfModel model(cfg);
  Profiled pr = Profile(MakeTcpGen());
  const Module& m = pr.nf->module();
  int cores = 16;

  CoalescingPlan clara = SuggestCoalescing(m, pr.nf->profile());
  CoalescingPlan expert =
      ExhaustiveCoalescing(m, pr.nic, pr.nf->profile(), pr.workload, model, cores);
  EXPECT_GT(expert.clusters_considered, 10);  // actually enumerated partitions

  auto eval = [&](const CoalescingPlan& plan) {
    DemandOptions opts;
    opts.coalescing = plan.effects;
    return model.Evaluate(BuildDemand(m, pr.nic, pr.nf->profile(), pr.workload, cfg, opts),
                          cores);
  };
  PerfPoint p_clara = eval(clara);
  PerfPoint p_expert = eval(expert);
  double ratio = p_expert.RatioMppsPerUs() / std::max(1e-12, p_clara.RatioMppsPerUs());
  EXPECT_GE(ratio, 0.999);
  EXPECT_LT(ratio, 1.4);
}

}  // namespace
}  // namespace clara
