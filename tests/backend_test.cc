// The NIC backend ("nfcc") translation rules: instruction selection,
// peepholes, register allocation, and access coalescing.
#include "src/nic/backend.h"

#include <gtest/gtest.h>

#include "src/elements/elements.h"
#include "src/ir/builder.h"
#include "src/lang/lower.h"

namespace clara {
namespace {

Module OneBlock(std::function<void(IrBuilder&)> fill, int nslots = 0) {
  Module m;
  InstallStandardPacketFields(m);
  StateVar arr;
  arr.name = "arr";
  arr.kind = StateKind::kArray;
  arr.elem_type = Type::kI32;
  arr.length = 64;
  m.state.push_back(arr);
  m.functions.emplace_back();
  IrBuilder b(m, m.functions.back());
  for (int s = 0; s < nslots; ++s) {
    b.AddSlot("s" + std::to_string(s), Type::kI32);
  }
  b.SetInsertPoint(b.NewBlock("entry"));
  fill(b);
  if (!b.BlockTerminated()) {
    b.Ret();
  }
  return m;
}

NicBlockCounts CompileOne(const Module& m, NicBackendOptions opts = NicBackendOptions{}) {
  return CompileToNic(m, opts).blocks[0].counts;
}

TEST(Backend, SimpleAluIsOneInstruction) {
  Module m = OneBlock([](IrBuilder& b) {
    b.Binary(Opcode::kAdd, Type::kI32, Value::Reg(1), Value::Reg(2));
  });
  // add + br(ret)
  EXPECT_EQ(CompileOne(m).compute, 2u);
}

TEST(Backend, LargeImmediatesCostExtra) {
  Module small = OneBlock([](IrBuilder& b) {
    b.Binary(Opcode::kAdd, Type::kI32, Value::Reg(1), Value::Const(10));
  });
  Module mid = OneBlock([](IrBuilder& b) {
    b.Binary(Opcode::kAdd, Type::kI32, Value::Reg(1), Value::Const(5000));
  });
  Module big = OneBlock([](IrBuilder& b) {
    b.Binary(Opcode::kAdd, Type::kI32, Value::Reg(1), Value::Const(0x12345678));
  });
  EXPECT_EQ(CompileOne(mid).compute, CompileOne(small).compute + 1);
  EXPECT_EQ(CompileOne(big).compute, CompileOne(small).compute + 2);
}

TEST(Backend, MulByPow2IsShift) {
  Module pow2 = OneBlock([](IrBuilder& b) {
    b.Binary(Opcode::kMul, Type::kI32, Value::Reg(1), Value::Const(8));
  });
  Module general = OneBlock([](IrBuilder& b) {
    b.Binary(Opcode::kMul, Type::kI32, Value::Reg(1), Value::Reg(2));
  });
  EXPECT_EQ(CompileOne(pow2).compute, 2u);     // alu_shf + br
  EXPECT_EQ(CompileOne(general).compute, 5u);  // 4 mul_step + br
}

TEST(Backend, DivideByNonPow2IsExpensive) {
  Module pow2 = OneBlock([](IrBuilder& b) {
    b.Binary(Opcode::kURem, Type::kI32, Value::Reg(1), Value::Const(256));
  });
  Module odd = OneBlock([](IrBuilder& b) {
    b.Binary(Opcode::kURem, Type::kI32, Value::Reg(1), Value::Const(1000));
  });
  EXPECT_LT(CompileOne(pow2).compute, 4u);
  EXPECT_GT(CompileOne(odd).compute, 15u);  // software divide routine
}

TEST(Backend, CompareFusesWithBranch) {
  // Compare feeding the terminator: alu + bcc. Compare feeding a select is
  // materialized (3 instrs).
  Module fused = OneBlock([](IrBuilder& b) {
    uint32_t other = b.NewBlock("other");
    Value v = b.LoadPacket(static_cast<uint32_t>(b.module().FindPacketField("ip.src")));
    Value c = b.Compare(Opcode::kIcmpEq, v, Value::Const(5));
    b.CondBr(c, other, other);
    b.SetInsertPoint(other);
    b.Ret();
  });
  Module materialized = OneBlock([](IrBuilder& b) {
    Value v = b.LoadPacket(static_cast<uint32_t>(b.module().FindPacketField("ip.src")));
    Value c = b.Compare(Opcode::kIcmpEq, v, Value::Const(5));
    b.Select(Type::kI32, c, Value::Const(1), Value::Const(2));
  });
  // ld_field (unaligned ip.src extract) + fused alu + bcc.
  EXPECT_EQ(CompileToNic(fused).blocks[0].counts.compute, 3u);
  // ld_field + cmp(3) + select(3) + br = 8.
  EXPECT_EQ(CompileOne(materialized).compute, 8u);
}

TEST(Backend, ZextAfterLoadIsFree) {
  // zext of a load result costs nothing; zext of an ALU result costs a mask.
  auto loaded = [](bool with_zext) {
    return OneBlock([with_zext](IrBuilder& b) {
      Value v = b.LoadPacket(static_cast<uint32_t>(b.module().FindPacketField("tcp.sport")));
      if (with_zext) {
        b.Cast(Opcode::kZext, Type::kI32, v);
      }
    });
  };
  auto computed = [](bool with_zext) {
    return OneBlock([with_zext](IrBuilder& b) {
      Value v = b.Binary(Opcode::kAdd, Type::kI8, Value::Const(1), Value::Const(2));
      if (with_zext) {
        b.Cast(Opcode::kZext, Type::kI32, v);
      }
    });
  };
  EXPECT_EQ(CompileOne(loaded(true)).compute, CompileOne(loaded(false)).compute);
  EXPECT_EQ(CompileOne(computed(true)).compute, CompileOne(computed(false)).compute + 1);
}

TEST(Backend, StackSlotsRegisterAllocatedUntilBudget) {
  // Few slots: stack traffic vanishes. Many slots: spills appear as lmem.
  auto make = [](int nslots) {
    return OneBlock(
        [nslots](IrBuilder& b) {
          for (int s = 0; s < nslots; ++s) {
            b.StoreStack(static_cast<uint32_t>(s), Value::Const(1));
            b.LoadStack(static_cast<uint32_t>(s));
          }
        },
        nslots);
  };
  NicBackendOptions opts;
  opts.gpr_budget = 8;
  EXPECT_EQ(CompileOne(make(6), opts).mem_lmem, 0u);
  NicBlockCounts spilled = CompileOne(make(12), opts);
  EXPECT_EQ(spilled.mem_lmem, 8u);  // 4 spilled slots x (store+load)
}

TEST(Backend, PacketWordCoalescing) {
  // ip.src (word 6) then ip.dst (word 7): two reads. Re-reading ip.src is a
  // free ld_field, no new memory access.
  Module m = OneBlock([](IrBuilder& b) {
    uint32_t src = static_cast<uint32_t>(b.module().FindPacketField("ip.src"));
    uint32_t dst = static_cast<uint32_t>(b.module().FindPacketField("ip.dst"));
    b.LoadPacket(src);
    b.LoadPacket(dst);
    b.LoadPacket(src);
  });
  NicBlockCounts c = CompileOne(m);
  EXPECT_EQ(c.mem_packet, 2u);
  NicBackendOptions no_coalesce;
  no_coalesce.coalesce_packet = false;
  EXPECT_EQ(CompileOne(m, no_coalesce).mem_packet, 3u);
}

TEST(Backend, SameWordStateLoadsCoalesce) {
  // Two subword fields sharing a 32-bit word arrive in one transfer; the
  // second load becomes a free field extract.
  Module m = OneBlock([](IrBuilder& b) {
    Value idx = b.Binary(Opcode::kAnd, Type::kI32, Value::Reg(1), Value::Const(63));
    b.LoadState(0, Type::kI16, idx, 0);
    b.LoadState(0, Type::kI16, idx, 2);
  });
  NicBlockCounts c = CompileOne(m);
  EXPECT_EQ(c.mem_state, 1u);
  EXPECT_EQ(c.state_words, 1u);
  NicBackendOptions no_coalesce;
  no_coalesce.coalesce_state = false;
  NicBlockCounts c2 = CompileOne(m, no_coalesce);
  EXPECT_EQ(c2.mem_state, 2u);
}

TEST(Backend, AdjacentWordLoadsStayDistinct) {
  // Accesses to different words stay 1:1 with the IR (paper SS3.2: the
  // stateful count corresponds closely to machine code); packing across
  // words is Clara's SS4.4 source-level decision, not the compiler's.
  Module m = OneBlock([](IrBuilder& b) {
    Value idx = b.Binary(Opcode::kAnd, Type::kI32, Value::Reg(1), Value::Const(63));
    b.LoadState(0, Type::kI32, idx, 0);
    b.LoadState(0, Type::kI32, idx, 4);
  });
  EXPECT_EQ(CompileOne(m).mem_state, 2u);
}

TEST(Backend, StateStoresNeverCoalesce) {
  Module m = OneBlock([](IrBuilder& b) {
    Value idx = b.Binary(Opcode::kAnd, Type::kI32, Value::Reg(1), Value::Const(63));
    b.StoreState(0, Type::kI16, Value::Const(1), idx, 0);
    b.StoreState(0, Type::kI16, Value::Const(2), idx, 2);
  });
  EXPECT_EQ(CompileOne(m).mem_state, 2u);
}

TEST(Backend, ApiCallsExpandFromProfiles) {
  Module m = OneBlock([](IrBuilder& b) {
    b.Call("checksum_update", {}, Type::kVoid);
  });
  NicBlockCounts c = CompileOne(m);
  EXPECT_GT(c.api_compute, 100u);  // software checksum is expensive
  EXPECT_GT(c.mem_packet, 0u);
  // API instructions never pollute the core-NF compute count (the LSTM's
  // training label).
  EXPECT_EQ(c.compute, 1u);  // just the ret/br
}

TEST(Backend, AcceleratedApiIsCheapCompute) {
  Module sw = OneBlock([](IrBuilder& b) { b.Call("checksum_update", {}, Type::kVoid); });
  Module hw = OneBlock([](IrBuilder& b) { b.Call("csum_hw", {}, Type::kVoid); });
  EXPECT_LT(CompileOne(hw).api_compute, CompileOne(sw).api_compute / 10);
}

TEST(Backend, BlocksAlignWithIr) {
  Program p = MakeMazuNat();
  LowerResult lr = LowerProgram(p);
  ASSERT_TRUE(lr.ok);
  NicProgram nic = CompileToNic(lr.module);
  EXPECT_EQ(nic.blocks.size(), lr.module.functions[0].blocks.size());
  // Totals are self-consistent.
  NicBlockCounts t = nic.Totals();
  EXPECT_GT(t.compute, 0u);
  EXPECT_GT(t.mem_state, 0u);
}

TEST(Backend, DeterministicOutput) {
  Program p1 = MakeFirewall();
  Program p2 = MakeFirewall();
  LowerResult l1 = LowerProgram(p1);
  LowerResult l2 = LowerProgram(p2);
  NicProgram n1 = CompileToNic(l1.module);
  NicProgram n2 = CompileToNic(l2.module);
  ASSERT_EQ(n1.blocks.size(), n2.blocks.size());
  for (size_t b = 0; b < n1.blocks.size(); ++b) {
    EXPECT_EQ(n1.blocks[b].counts.compute, n2.blocks[b].counts.compute);
    EXPECT_EQ(n1.blocks[b].counts.mem_state, n2.blocks[b].counts.mem_state);
  }
}

TEST(Backend, IssueCyclesPositive) {
  Program p = MakeAggCounter();
  LowerResult lr = LowerProgram(p);
  NicProgram nic = CompileToNic(lr.module);
  for (const auto& blk : nic.blocks) {
    if (!blk.instrs.empty()) {
      EXPECT_GT(blk.issue_cycles, 0.0);
    }
  }
}

}  // namespace
}  // namespace clara
