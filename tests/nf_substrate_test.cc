// Unit tests for the NF substrate: packet model, host/NIC byte maps, fixed
// vectors, checksums, CRC variants, RC4, and the count-min sketch.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "src/nf/byte_map.h"
#include "src/nf/checksum.h"
#include "src/nf/packet.h"
#include "src/nf/sketch.h"
#include "src/util/rng.h"

namespace clara {
namespace {

std::vector<uint8_t> Key32(uint32_t a, uint32_t b) {
  std::vector<uint8_t> k(8);
  std::memcpy(k.data(), &a, 4);
  std::memcpy(k.data() + 4, &b, 4);
  return k;
}

TEST(Packet, IpToString) {
  EXPECT_EQ(IpToString(0x0a000001), "10.0.0.1");
  EXPECT_EQ(IpToString(0xffffffff), "255.255.255.255");
}

TEST(Packet, ChecksumChangesWithHeaderFields) {
  Packet p;
  p.src_ip = 0x0a000001;
  p.dst_ip = 0xc0a80101;
  p.ip_len = 100;
  uint16_t c1 = Ipv4HeaderChecksum(p);
  p.dst_ip = 0xc0a80102;
  uint16_t c2 = Ipv4HeaderChecksum(p);
  EXPECT_NE(c1, c2);
}

TEST(Packet, ChecksumDeterministic) {
  Packet p;
  p.src_ip = 1;
  p.dst_ip = 2;
  EXPECT_EQ(Ipv4HeaderChecksum(p), Ipv4HeaderChecksum(p));
}

TEST(HostByteMap, InsertFindErase) {
  HostByteMap m(8, 4);
  auto k = Key32(1, 2);
  uint32_t v = 77;
  EXPECT_FALSE(m.Find(k.data(), nullptr));
  EXPECT_TRUE(m.Insert(k.data(), reinterpret_cast<uint8_t*>(&v)));
  uint32_t out = 0;
  EXPECT_TRUE(m.Find(k.data(), reinterpret_cast<uint8_t*>(&out)));
  EXPECT_EQ(out, 77u);
  EXPECT_TRUE(m.Erase(k.data()));
  EXPECT_FALSE(m.Find(k.data(), nullptr));
  EXPECT_FALSE(m.Erase(k.data()));
}

TEST(HostByteMap, GrowsElastically) {
  HostByteMap m(8, 4, 8);
  size_t initial = m.capacity();
  for (uint32_t i = 0; i < 1000; ++i) {
    auto k = Key32(i + 1, i + 2);
    uint32_t v = i;
    ASSERT_TRUE(m.Insert(k.data(), reinterpret_cast<uint8_t*>(&v)));
  }
  EXPECT_EQ(m.size(), 1000u);
  EXPECT_GT(m.capacity(), initial);
  // Everything still findable after rehash.
  for (uint32_t i = 0; i < 1000; ++i) {
    auto k = Key32(i + 1, i + 2);
    uint32_t out = 0;
    ASSERT_TRUE(m.Find(k.data(), reinterpret_cast<uint8_t*>(&out)));
    EXPECT_EQ(out, i);
  }
}

TEST(HostByteMap, OverwriteKeepsSize) {
  HostByteMap m(8, 4);
  auto k = Key32(5, 6);
  uint32_t v1 = 1;
  uint32_t v2 = 2;
  m.Insert(k.data(), reinterpret_cast<uint8_t*>(&v1));
  m.Insert(k.data(), reinterpret_cast<uint8_t*>(&v2));
  EXPECT_EQ(m.size(), 1u);
  uint32_t out = 0;
  m.Find(k.data(), reinterpret_cast<uint8_t*>(&out));
  EXPECT_EQ(out, 2u);
}

TEST(NicByteMap, FixedCapacityBucketOverflow) {
  // One bucket with 4 slots: the 5th colliding insert must fail (baremetal
  // maps cannot grow).
  NicByteMap m(8, 4, /*buckets=*/1, /*slots_per_bucket=*/4);
  uint32_t inserted = 0;
  for (uint32_t i = 0; i < 5; ++i) {
    auto k = Key32(i + 1, 0);
    uint32_t v = i;
    if (m.Insert(k.data(), reinterpret_cast<uint8_t*>(&v))) {
      ++inserted;
    }
  }
  EXPECT_EQ(inserted, 4u);
  EXPECT_EQ(m.stats().failed_inserts, 1u);
}

TEST(NicByteMap, EraseMarksInvalidAndSlotReusable) {
  NicByteMap m(8, 4, 1, 2);
  auto k1 = Key32(1, 0);
  auto k2 = Key32(2, 0);
  auto k3 = Key32(3, 0);
  uint32_t v = 9;
  ASSERT_TRUE(m.Insert(k1.data(), reinterpret_cast<uint8_t*>(&v)));
  ASSERT_TRUE(m.Insert(k2.data(), reinterpret_cast<uint8_t*>(&v)));
  ASSERT_FALSE(m.Insert(k3.data(), reinterpret_cast<uint8_t*>(&v)));
  ASSERT_TRUE(m.Erase(k1.data()));
  EXPECT_FALSE(m.Find(k1.data(), nullptr));
  EXPECT_TRUE(m.Insert(k3.data(), reinterpret_cast<uint8_t*>(&v)));
  EXPECT_TRUE(m.Find(k3.data(), nullptr));
}

TEST(NicByteMap, StatsCountSlotTouches) {
  NicByteMap m(8, 4, 16, 4);
  auto k = Key32(42, 43);
  uint32_t v = 1;
  m.ResetStats();
  m.Insert(k.data(), reinterpret_cast<uint8_t*>(&v));
  EXPECT_GT(m.stats().slot_touches, 0u);
  uint64_t after_insert = m.stats().slot_touches;
  m.Find(k.data(), nullptr);
  EXPECT_GT(m.stats().slot_touches, after_insert);
}

// Property: host and NIC maps agree with std::map semantics on a random
// workload (when the NIC map does not overflow).
TEST(ByteMaps, AgreeWithReferenceOnRandomOps) {
  HostByteMap host(8, 8);
  NicByteMap nic(8, 8, 4096, 8);
  std::map<std::pair<uint32_t, uint32_t>, uint64_t> ref;
  Rng rng(1234);
  for (int op = 0; op < 5000; ++op) {
    uint32_t a = static_cast<uint32_t>(rng.NextBounded(200)) + 1;
    uint32_t b = static_cast<uint32_t>(rng.NextBounded(5)) + 1;
    auto k = Key32(a, b);
    int kind = static_cast<int>(rng.NextBounded(3));
    if (kind == 0) {
      uint64_t v = rng.NextU64();
      ASSERT_TRUE(host.Insert(k.data(), reinterpret_cast<uint8_t*>(&v)));
      ASSERT_TRUE(nic.Insert(k.data(), reinterpret_cast<uint8_t*>(&v)));
      ref[{a, b}] = v;
    } else if (kind == 1) {
      uint64_t hv = 0;
      uint64_t nv = 0;
      bool hf = host.Find(k.data(), reinterpret_cast<uint8_t*>(&hv));
      bool nf2 = nic.Find(k.data(), reinterpret_cast<uint8_t*>(&nv));
      bool rf = ref.count({a, b}) > 0;
      ASSERT_EQ(hf, rf);
      ASSERT_EQ(nf2, rf);
      if (rf) {
        uint64_t expect = ref[{a, b}];
        ASSERT_EQ(hv, expect);
        ASSERT_EQ(nv, expect);
      }
    } else {
      bool hf = host.Erase(k.data());
      bool nf2 = nic.Erase(k.data());
      bool rf = ref.erase({a, b}) > 0;
      ASSERT_EQ(hf, rf);
      ASSERT_EQ(nf2, rf);
    }
  }
  EXPECT_EQ(host.size(), ref.size());
  EXPECT_EQ(nic.size(), ref.size());
}

TEST(NicFixedVector, PushInvalidateReuse) {
  NicFixedVector v(4, 3);
  uint32_t a = 1;
  uint32_t b = 2;
  EXPECT_TRUE(v.PushBack(reinterpret_cast<uint8_t*>(&a)));
  EXPECT_TRUE(v.PushBack(reinterpret_cast<uint8_t*>(&b)));
  EXPECT_EQ(v.valid_count(), 2u);
  v.Invalidate(0);
  EXPECT_FALSE(v.IsValid(0));
  EXPECT_EQ(v.valid_count(), 1u);
  uint32_t c = 3;
  EXPECT_TRUE(v.PushBack(reinterpret_cast<uint8_t*>(&c)));
  EXPECT_TRUE(v.IsValid(0));  // slot reused, not compacted
}

TEST(Checksum, Crc32BitwiseMatchesTable) {
  Rng rng(55);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint8_t> data(rng.NextBounded(200) + 1);
    for (auto& b : data) {
      b = static_cast<uint8_t>(rng.NextU64());
    }
    EXPECT_EQ(Crc32Bitwise(data.data(), data.size()), Crc32Table(data.data(), data.size()));
  }
}

TEST(Checksum, Crc32KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (the standard check value).
  const uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32Bitwise(data, 9), 0xcbf43926u);
}

TEST(Checksum, Crc16KnownVector) {
  // CRC16/CCITT-FALSE("123456789") = 0x29B1.
  const uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc16Ccitt(data, 9), 0x29b1);
}

TEST(Checksum, InternetChecksumVerifies) {
  const uint8_t data[] = {0x45, 0x00, 0x00, 0x3c, 0x1c, 0x46, 0x40, 0x00,
                          0x40, 0x06, 0x00, 0x00, 0xac, 0x10, 0x0a, 0x63,
                          0xac, 0x10, 0x0a, 0x0c};
  uint16_t c = InternetChecksum(data, sizeof(data));
  // Recomputing with the checksum patched in yields 0.
  std::vector<uint8_t> patched(data, data + sizeof(data));
  patched[10] = static_cast<uint8_t>(c >> 8);
  patched[11] = static_cast<uint8_t>(c & 0xff);
  EXPECT_EQ(InternetChecksum(patched.data(), patched.size()), 0);
}

TEST(Checksum, Rc4RoundTrips) {
  const uint8_t key[] = {1, 2, 3, 4, 5};
  std::vector<uint8_t> data(64);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 7);
  }
  std::vector<uint8_t> orig = data;
  Rc4Apply(key, sizeof(key), data.data(), data.size());
  EXPECT_NE(data, orig);
  Rc4Apply(key, sizeof(key), data.data(), data.size());
  EXPECT_EQ(data, orig);
}

TEST(CountMinSketch, NeverUnderestimates) {
  CountMinSketch cms(4, 256);
  Rng rng(77);
  std::map<uint64_t, uint32_t> truth;
  for (int i = 0; i < 3000; ++i) {
    uint64_t key = rng.NextBounded(500);
    cms.Update(key);
    ++truth[key];
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(cms.Estimate(key), count);
  }
}

TEST(CountMinSketch, ExactWhenSparse) {
  CountMinSketch cms(4, 4096);
  for (int i = 0; i < 10; ++i) {
    cms.Update(i, static_cast<uint32_t>(i + 1));
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(cms.Estimate(i), static_cast<uint32_t>(i + 1));
  }
  EXPECT_EQ(cms.Estimate(999), 0u);
}

}  // namespace
}  // namespace clara
