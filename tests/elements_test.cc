// The NF element suite: every element lowers, executes realistic traffic,
// and exhibits its advertised behaviour.
#include "src/elements/elements.h"

#include <gtest/gtest.h>

#include "src/ir/classify.h"
#include "src/lang/interp.h"
#include "src/lang/printer.h"
#include "src/nf/lpm.h"
#include "src/workload/workload.h"

namespace clara {
namespace {

class ElementSuiteTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ElementSuiteTest, ProcessesTrafficWithoutStalling) {
  Program p = MakeElementByName(GetParam());
  NfInstance nf(std::move(p));
  ASSERT_TRUE(nf.ok()) << nf.error();
  if (GetParam() == "iplookup") {
    // not required, but exercise the accel hook path too
  }
  Trace t = GenerateTrace(WorkloadSpec::SmallFlows(), 400);
  for (auto& pkt : t.packets) {
    pkt.in_port = pkt.src_ip & 1;
    nf.Process(pkt);
    ASSERT_NE(pkt.verdict, Packet::Verdict::kPending);
  }
  EXPECT_EQ(nf.profile().packets, 400u);
  EXPECT_EQ(nf.profile().sends + nf.profile().drops, 400u);
}

TEST_P(ElementSuiteTest, SourceRendersAndHasReasonableSize) {
  Program p = MakeElementByName(GetParam());
  int loc = SourceLineCount(p);
  EXPECT_GT(loc, 5) << GetParam();
  EXPECT_LT(loc, 400) << GetParam();
}

std::vector<std::string> AllElementNames() {
  std::vector<std::string> names;
  for (const auto& info : ElementRegistry()) {
    names.push_back(info.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(Registry, ElementSuiteTest, ::testing::ValuesIn(AllElementNames()),
                         [](const auto& info) { return info.param; });

TEST(Elements, RegistryComplete) {
  EXPECT_GE(ElementRegistry().size(), 20u);
  int stateful = 0;
  for (const auto& info : ElementRegistry()) {
    stateful += info.stateful ? 1 : 0;
    EXPECT_FALSE(info.insights.empty()) << info.name;
  }
  EXPECT_GE(stateful, 14);
}

TEST(Elements, StatefulFlagMatchesPrograms) {
  for (const auto& info : ElementRegistry()) {
    Program p = info.make();
    EXPECT_EQ(info.stateful, !p.state.empty()) << info.name;
  }
}

TEST(Elements, AnonIpAddrChangesAddressesDeterministically) {
  NfInstance nf(MakeAnonIpAddr());
  ASSERT_TRUE(nf.ok());
  Packet a;
  a.src_ip = 0x0a000001;
  a.dst_ip = 0xc0a80101;
  Packet b = a;
  nf.Process(a);
  nf.Process(b);
  EXPECT_NE(a.src_ip, 0x0a000001u);
  EXPECT_EQ(a.src_ip, b.src_ip);                      // deterministic
  EXPECT_EQ(a.src_ip >> 24, 0x0au);                   // class byte preserved
}

TEST(Elements, FirewallLearnsFromSyn) {
  NfInstance nf(MakeFirewall());
  ASSERT_TRUE(nf.ok());
  Packet outside;
  outside.src_ip = 5;
  outside.dst_ip = 6;
  outside.in_port = 1;
  outside.tcp_flags = kTcpAck;
  nf.Process(outside);
  EXPECT_EQ(outside.verdict, Packet::Verdict::kDropped);

  Packet syn;
  syn.src_ip = 5;
  syn.dst_ip = 6;
  syn.in_port = 0;
  syn.tcp_flags = kTcpSyn;
  nf.Process(syn);
  EXPECT_EQ(syn.verdict, Packet::Verdict::kSent);

  Packet later;
  later.src_ip = 5;
  later.dst_ip = 6;
  later.in_port = 1;
  later.tcp_flags = kTcpAck;
  nf.Process(later);
  EXPECT_EQ(later.verdict, Packet::Verdict::kSent);
}

TEST(Elements, HeavyHitterFlagsHotFlow) {
  NfInstance nf(MakeHeavyHitter(/*threshold=*/16));
  ASSERT_TRUE(nf.ok());
  for (int i = 0; i < 40; ++i) {
    Packet p;
    p.src_ip = 0x01010101;
    p.dst_ip = 0x02020202;
    nf.Process(p);
  }
  EXPECT_GT(nf.ReadScalar("hh_count"), 10u);
  Packet cold;
  cold.src_ip = 0x09090909;
  cold.dst_ip = 0x0a0a0a0a;
  nf.Process(cold);
  EXPECT_EQ(cold.ip_tos, 0);
}

TEST(Elements, CmSketchVariantsCountSameUpdates) {
  NfInstance sw(MakeCmSketch(false));
  NfInstance hw(MakeCmSketch(true));
  ASSERT_TRUE(sw.ok());
  ASSERT_TRUE(hw.ok());
  Trace t = GenerateTrace(WorkloadSpec::SmallFlows(), 100);
  for (auto& pkt : t.packets) {
    Packet copy = pkt;
    sw.Process(pkt);
    hw.Process(copy);
  }
  EXPECT_EQ(sw.ReadScalar("updates"), 100u);
  EXPECT_EQ(hw.ReadScalar("updates"), 100u);
  // The accelerated variant compiles to far fewer core compute instructions
  // in the hash blocks (this is the Figure 10b effect at the source level).
  BlockCounts csw = CountFunction(sw.module().functions[0]);
  BlockCounts chw = CountFunction(hw.module().functions[0]);
  EXPECT_LT(chw.compute, csw.compute);
}

TEST(Elements, IpLookupAccelMatchesSoftwareVerdicts) {
  LpmTable table;
  Rng trng(99);
  table.Insert(0, 0, 15);  // the element seeds a default route first
  for (int r = 0; r < 128; ++r) {
    int plen = static_cast<int>(trng.NextInt(8, 24));
    uint32_t prefix = static_cast<uint32_t>(trng.NextU64()) & ~((1u << (32 - plen)) - 1);
    table.Insert(prefix, plen, static_cast<uint32_t>(trng.NextBounded(16)));
  }
  NfInstance sw(MakeIpLookup(128, false, false, 99));
  NfInstance hw(MakeIpLookup(128, true, false, 99));
  ASSERT_TRUE(sw.ok());
  ASSERT_TRUE(hw.ok());
  hw.SetLpmAccelTable(&table);
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    Packet a;
    a.dst_ip = static_cast<uint32_t>(rng.NextU64());
    Packet b = a;
    sw.Process(a);
    hw.Process(b);
    ASSERT_EQ(a.verdict, b.verdict) << IpToString(a.dst_ip);
    if (a.verdict == Packet::Verdict::kSent) {
      ASSERT_EQ(a.out_port, b.out_port);
    }
  }
}

TEST(Elements, UdpCountTracksFlows) {
  NfInstance nf(MakeUdpCount());
  ASSERT_TRUE(nf.ok());
  Packet udp;
  udp.src_ip = 3;
  udp.dst_ip = 4;
  udp.ip_proto = kProtoUdp;
  udp.dport = 53;
  udp.wire_len = 100;
  nf.Process(udp);
  nf.Process(udp);
  Packet tcp;
  tcp.src_ip = 3;
  tcp.dst_ip = 4;
  tcp.ip_proto = kProtoTcp;
  nf.Process(tcp);
  EXPECT_EQ(nf.ReadScalar("udp_pkts"), 2u);
  EXPECT_EQ(nf.ReadScalar("other_pkts"), 1u);
  EXPECT_EQ(nf.ReadScalar("udp_bytes"), 200u);
}

TEST(Elements, DnsProxyCachesAnswers) {
  NfInstance nf(MakeDnsProxy());
  ASSERT_TRUE(nf.ok());
  Packet q;
  q.ip_proto = kProtoUdp;
  q.dport = 53;
  q.src_ip = 10;
  q.dst_ip = 20;
  q.payload_len = 40;
  for (int i = 0; i < 8; ++i) {
    q.payload[12 + i] = static_cast<uint8_t>('a' + i);
  }
  Packet q1 = q;
  nf.Process(q1);
  EXPECT_EQ(nf.ReadScalar("cache_misses"), 1u);
  Packet q2 = q;
  nf.Process(q2);
  EXPECT_EQ(nf.ReadScalar("cache_hits"), 1u);
  // Cached answer is served back toward the client (addresses swapped).
  EXPECT_EQ(q2.dst_ip, 10u);
}

TEST(Elements, WebGenEmitsRequests) {
  NfInstance nf(MakeWebGen());
  ASSERT_TRUE(nf.ok());
  Packet p;
  p.dst_ip = 50;
  p.dport = 80;
  nf.Process(p);  // opens the connection
  Packet p2;
  p2.dst_ip = 50;
  p2.dport = 80;
  nf.Process(p2);  // writes the request
  EXPECT_EQ(nf.ReadScalar("req_counter"), 1u);
  EXPECT_EQ(p2.payload[0], 'G');
  EXPECT_EQ(p2.payload[3], ' ');
}

TEST(Elements, TcpGenCountsGoodAndBadAcks) {
  NfInstance nf(MakeTcpGen());
  ASSERT_TRUE(nf.ok());
  Packet good;
  good.tcp_flags = kTcpAck;
  good.tcp_ack = 0;  // matches initial send_next
  good.payload_len = 10;
  nf.Process(good);
  EXPECT_EQ(nf.ReadScalar("good_pkt"), 1u);
  Packet bad;
  bad.tcp_flags = kTcpAck;
  bad.tcp_ack = 999;
  nf.Process(bad);
  EXPECT_EQ(nf.ReadScalar("bad_pkt"), 1u);
}

TEST(Elements, IpClassifierClassifies) {
  NfInstance nf(MakeIpClassifier());
  ASSERT_TRUE(nf.ok());
  Trace t = GenerateTrace(WorkloadSpec::SmallFlows(), 200);
  uint64_t before = 0;
  for (auto& pkt : t.packets) {
    nf.Process(pkt);
  }
  uint64_t classified = 0;
  for (int a = 0; a < 4; ++a) {
    classified += nf.ReadArray("class_counts", a);
  }
  EXPECT_EQ(classified + nf.ReadScalar("fallthrough"), 200u);
  EXPECT_GT(classified, before);
}

TEST(Elements, MazuNatAccelVariantSameBehaviour) {
  NfInstance plain(MakeMazuNat(false));
  NfInstance accel(MakeMazuNat(true));
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(accel.ok());
  Trace t = GenerateTrace(WorkloadSpec::SmallFlows(), 150);
  for (auto& pkt : t.packets) {
    Packet copy = pkt;
    pkt.in_port = 0;
    copy.in_port = 0;
    plain.Process(pkt);
    accel.Process(copy);
    ASSERT_EQ(pkt.verdict, copy.verdict);
    ASSERT_EQ(pkt.src_ip, copy.src_ip);
  }
  EXPECT_EQ(plain.ReadScalar("translated"), accel.ReadScalar("translated"));
}

}  // namespace
}  // namespace clara

namespace clara {
namespace {

TEST(Elements, TokenBucketPolices) {
  NfInstance nf(MakeTokenBucket(/*rate_per_ms=*/1, /*burst=*/4));
  ASSERT_TRUE(nf.ok()) << nf.error();
  for (int i = 0; i < 20; ++i) {
    Packet p;
    p.src_ip = 1;
    p.dst_ip = 2;
    p.ts_ns = 10'000'000;  // burst within one millisecond
    nf.Process(p);
  }
  uint64_t conformed_before = nf.ReadScalar("conformed");
  EXPECT_GT(nf.ReadScalar("policed"), 0u);
  EXPECT_LE(conformed_before, 10u);
  // After time passes, tokens refill and packets conform again.
  Packet later;
  later.src_ip = 1;
  later.dst_ip = 2;
  later.ts_ns = 200'000'000;
  nf.Process(later);
  EXPECT_EQ(later.verdict, Packet::Verdict::kSent);
  EXPECT_GT(nf.ReadScalar("conformed"), conformed_before);
}

TEST(Elements, SynFloodRaisesAlerts) {
  NfInstance nf(MakeSynFlood(/*threshold=*/8));
  ASSERT_TRUE(nf.ok()) << nf.error();
  for (int i = 0; i < 20; ++i) {
    Packet p;
    p.src_ip = 100 + i;  // many sources, one victim
    p.dst_ip = 0x0a0a0a0a;
    p.tcp_flags = kTcpSyn;
    nf.Process(p);
  }
  EXPECT_EQ(nf.ReadScalar("total_syns"), 20u);
  EXPECT_GT(nf.ReadScalar("alerts"), 0u);
  EXPECT_GT(nf.FindMap("watchlist")->entries(), 0u);
  // FINs drain the counter back below the threshold.
  for (int i = 0; i < 20; ++i) {
    Packet p;
    p.src_ip = 100 + i;
    p.dst_ip = 0x0a0a0a0a;
    p.tcp_flags = kTcpFin;
    nf.Process(p);
  }
  Packet benign;
  benign.src_ip = 1;
  benign.dst_ip = 0x0a0a0a0a;
  benign.tcp_flags = kTcpSyn;
  nf.Process(benign);
  EXPECT_EQ(benign.ip_tos, 0);
}

}  // namespace
}  // namespace clara
