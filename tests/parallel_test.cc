// Tests for the parallel substrate (src/util/parallel.h): pool correctness,
// exception propagation, nested-loop safety, and the determinism contract —
// training results must be bit-identical at any thread count.
#include "src/util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/elements/elements.h"
#include "src/lang/lower.h"
#include "src/ml/automl.h"
#include "src/ml/lstm.h"
#include "src/nic/backend.h"
#include "src/util/rng.h"

namespace clara {
namespace {

// Restores the configured thread count on scope exit so tests cannot leak
// their thread setting into later tests in the same binary.
class ThreadGuard {
 public:
  ThreadGuard() : saved_(NumThreads()) {}
  ~ThreadGuard() { SetNumThreads(saved_); }

 private:
  int saved_;
};

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadGuard guard;
  SetNumThreads(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, GrainLargerThanRangeRunsSerially) {
  ThreadGuard guard;
  SetNumThreads(4);
  std::vector<int> order;
  // A single chunk must run inline on the caller, in index order.
  ParallelForGrain(64, 1000, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ParallelForTest, ZeroIterationsIsANoop) {
  ParallelFor(0, [&](size_t) { FAIL() << "body must not run"; });
}

TEST(ParallelForTest, PropagatesFirstException) {
  ThreadGuard guard;
  SetNumThreads(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      ParallelForGrain(100, 1,
                       [&](size_t i) {
                         ran.fetch_add(1);
                         if (i == 37) {
                           throw std::runtime_error("boom");
                         }
                       }),
      std::runtime_error);
  EXPECT_GE(ran.load(), 1);
  // The pool must stay usable after a throwing loop.
  std::atomic<size_t> sum{0};
  ParallelFor(100, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 100u * 99u / 2);
}

TEST(ParallelForTest, SerialPathPropagatesException) {
  ThreadGuard guard;
  SetNumThreads(1);
  EXPECT_THROW(ParallelFor(10,
                           [&](size_t i) {
                             if (i == 3) {
                               throw std::runtime_error("boom");
                             }
                           }),
               std::runtime_error);
  // The region flag must be restored even on the throwing path.
  EXPECT_FALSE(InParallelRegion());
}

TEST(ParallelForTest, NestedLoopsRunInlineWithoutDeadlock) {
  ThreadGuard guard;
  SetNumThreads(4);
  constexpr size_t kOuter = 32, kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  std::atomic<int> saw_region{0};
  ParallelForGrain(kOuter, 1, [&](size_t i) {
    if (InParallelRegion()) {
      saw_region.fetch_add(1);
    }
    ParallelFor(kInner, [&](size_t j) { hits[i * kInner + j].fetch_add(1); });
  });
  EXPECT_EQ(saw_region.load(), static_cast<int>(kOuter));
  for (size_t k = 0; k < hits.size(); ++k) {
    ASSERT_EQ(hits[k].load(), 1) << "slot " << k;
  }
  EXPECT_FALSE(InParallelRegion());
}

TEST(ParallelMapTest, PreservesIndexOrder) {
  ThreadGuard guard;
  SetNumThreads(8);
  std::vector<int> out = ParallelMap<int>(1000, [](size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 1000u);
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ParallelMapReduceTest, BitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  // Values chosen so the floating-point sum is sensitive to association.
  Rng rng(99);
  std::vector<double> vals(4097);
  for (auto& v : vals) {
    v = (rng.NextDouble() - 0.5) * 1e12 + rng.NextDouble();
  }
  auto run = [&] {
    return ParallelMapReduce<double>(
        vals.size(), 0.0, [&](size_t i) { return vals[i]; },
        [](double a, double b) { return a + b; }, 16);
  };
  SetNumThreads(1);
  double s1 = run();
  SetNumThreads(2);
  double s2 = run();
  SetNumThreads(8);
  double s8 = run();
  // Exact bit equality, not approximate: the reduction tree is fixed.
  EXPECT_EQ(std::memcmp(&s1, &s2, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&s1, &s8, sizeof(double)), 0);
}

TEST(ParallelConfigTest, SetNumThreadsRoundTrips) {
  ThreadGuard guard;
  SetNumThreads(3);
  EXPECT_EQ(NumThreads(), 3);
  SetNumThreads(1);
  EXPECT_EQ(NumThreads(), 1);
  SetNumThreads(-5);  // clamped
  EXPECT_EQ(NumThreads(), 1);
  EXPECT_GE(HardwareThreads(), 1);
}

SeqDataset MakeSeqDataset() {
  SeqDataset data;
  data.vocab = 48;
  Rng rng(7);
  for (int i = 0; i < 60; ++i) {
    SeqExample ex;
    int len = 4 + static_cast<int>(rng.NextBounded(20));
    for (int t = 0; t < len; ++t) {
      ex.tokens.push_back(static_cast<int>(rng.NextBounded(48)));
    }
    ex.target = static_cast<double>(5 + rng.NextBounded(40));
    data.examples.push_back(std::move(ex));
  }
  return data;
}

TEST(DeterminismTest, LstmPredictionsBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  SeqDataset data = MakeSeqDataset();
  LstmOptions opts;
  opts.epochs = 3;
  opts.hidden = 16;
  opts.batch_size = 8;  // minibatch path: parallel per-example gradients
  auto train_and_predict = [&](int threads) {
    SetNumThreads(threads);
    LstmRegressor lstm(opts);
    lstm.Fit(data);
    std::vector<double> preds;
    for (const auto& ex : data.examples) {
      preds.push_back(lstm.Predict(ex.tokens));
    }
    return preds;
  };
  std::vector<double> p1 = train_and_predict(1);
  std::vector<double> p2 = train_and_predict(2);
  std::vector<double> p8 = train_and_predict(8);
  ASSERT_EQ(p1.size(), p2.size());
  ASSERT_EQ(p1.size(), p8.size());
  for (size_t i = 0; i < p1.size(); ++i) {
    // memcmp, not EXPECT_DOUBLE_EQ: the contract is bit-identical floats.
    ASSERT_EQ(std::memcmp(&p1[i], &p2[i], sizeof(double)), 0) << "example " << i;
    ASSERT_EQ(std::memcmp(&p1[i], &p8[i], sizeof(double)), 0) << "example " << i;
  }
}

TEST(DeterminismTest, AutoMlBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  TabularDataset data;
  Rng rng(13);
  for (int i = 0; i < 120; ++i) {
    FeatureVec x;
    for (int j = 0; j < 5; ++j) {
      x.push_back(rng.NextDouble() * 10);
    }
    data.y.push_back(2 * x[0] - x[1] + 0.5 * x[2] * x[3] + rng.NextGaussian(0.1));
    data.x.push_back(std::move(x));
  }
  FeatureVec probe{1.0, 2.0, 3.0, 4.0, 5.0};
  auto run = [&](int threads) {
    SetNumThreads(threads);
    AutoMlReport report;
    auto model = AutoMlRegression(data, &report);
    return std::make_pair(report, model->Predict(probe));
  };
  auto [r1, y1] = run(1);
  auto [r2, y2] = run(2);
  auto [r8, y8] = run(8);
  EXPECT_EQ(r1.chosen, r2.chosen);
  EXPECT_EQ(r1.chosen, r8.chosen);
  EXPECT_EQ(std::memcmp(&r1.cv_error, &r2.cv_error, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&r1.cv_error, &r8.cv_error, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&y1, &y2, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&y1, &y8, sizeof(double)), 0);
}

TEST(CompileCacheTest, SecondCompileHitsCache) {
  Program p = MakeMazuNat();
  LowerResult lr = LowerProgram(p);
  ASSERT_TRUE(lr.ok);
  ClearNicCompileCache();
  EXPECT_EQ(NicCompileCacheSize(), 0u);
  NicProgram first = CompileToNicCached(lr.module);
  EXPECT_EQ(NicCompileCacheSize(), 1u);
  NicProgram second = CompileToNicCached(lr.module);
  EXPECT_EQ(NicCompileCacheSize(), 1u);  // hit, no new entry
  NicProgram direct = CompileToNic(lr.module);
  EXPECT_EQ(first.Totals().compute, direct.Totals().compute);
  EXPECT_EQ(second.Totals().compute, direct.Totals().compute);
  EXPECT_EQ(first.blocks.size(), direct.blocks.size());
}

TEST(CompileCacheTest, KeyDependsOnModuleAndOptions) {
  Program a = MakeMazuNat();
  LowerResult la = LowerProgram(a);
  ASSERT_TRUE(la.ok);
  uint64_t base = NicCompileKey(la.module, la.module.functions[0]);
  EXPECT_EQ(base, NicCompileKey(la.module, la.module.functions[0]));  // stable
  NicBackendOptions opts;
  opts.gpr_budget += 1;
  EXPECT_NE(base, NicCompileKey(la.module, la.module.functions[0], opts));
  Program b = MakeAggCounter();
  LowerResult lb = LowerProgram(b);
  ASSERT_TRUE(lb.ok);
  EXPECT_NE(base, NicCompileKey(lb.module, lb.module.functions[0]));
}

}  // namespace
}  // namespace clara
