// End-to-end: the ClaraAnalyzer facade produces a complete set of offloading
// insights for a real element, and the tuned port beats the naive port.
#include "src/core/analyzer.h"

#include <gtest/gtest.h>

#include "src/elements/elements.h"

namespace clara {
namespace {

AnalyzerOptions FastAnalyzerOptions() {
  AnalyzerOptions opts;
  opts.predictor.train_programs = 80;
  opts.predictor.lstm.epochs = 6;
  opts.predictor.lstm.hidden = 16;
  opts.scaleout.train_programs = 30;
  opts.colocation.train_nfs = 16;
  opts.colocation.train_groups = 30;
  opts.algo_corpus_per_class = 15;
  opts.profile_packets = 1500;
  return opts;
}

class AnalyzerFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    analyzer_ = new ClaraAnalyzer(FastAnalyzerOptions());
    std::vector<Program> corpus;
    for (const auto& info : ElementRegistry()) {
      corpus.push_back(info.make());
    }
    std::vector<const Program*> ptrs;
    for (const auto& p : corpus) {
      ptrs.push_back(&p);
    }
    analyzer_->Train(ptrs);
  }
  static void TearDownTestSuite() {
    delete analyzer_;
    analyzer_ = nullptr;
  }
  static ClaraAnalyzer* analyzer_;
};

ClaraAnalyzer* AnalyzerFixture::analyzer_ = nullptr;

TEST_F(AnalyzerFixture, AllComponentsTrained) {
  ASSERT_TRUE(analyzer_->trained());
  EXPECT_TRUE(analyzer_->predictor().trained());
  EXPECT_TRUE(analyzer_->algo_id().trained());
  EXPECT_TRUE(analyzer_->scaleout().trained());
  EXPECT_TRUE(analyzer_->colocation().trained());
}

TEST_F(AnalyzerFixture, MazuNatFullInsights) {
  OffloadingInsights insights =
      analyzer_->Analyze(MakeMazuNat(), WorkloadSpec::SmallFlows());
  EXPECT_EQ(insights.nf_name, "mazunat");
  EXPECT_GT(insights.prediction.total_compute, 0.0);
  EXPECT_GT(insights.prediction.total_mem_state, 0u);
  EXPECT_GE(insights.suggested_cores, 1);
  EXPECT_LE(insights.suggested_cores, 60);
  ASSERT_TRUE(insights.placement.ok);
  EXPECT_EQ(insights.placement.placement.size(),
            MakeMazuNat().state.size());
  // The tuned port is at least as good as the naive port.
  EXPECT_GE(insights.tuned_perf.throughput_mpps,
            insights.naive_perf.throughput_mpps * 0.99);
  EXPECT_LE(insights.tuned_perf.latency_us, insights.naive_perf.latency_us * 1.01);
  // Report renders.
  std::string report = insights.ToString(analyzer_->perf_model().config());
  EXPECT_NE(report.find("mazunat"), std::string::npos);
  EXPECT_NE(report.find("scale-out"), std::string::npos);
}

TEST_F(AnalyzerFixture, IpLookupGetsLpmInsight) {
  OffloadingInsights insights =
      analyzer_->Analyze(MakeIpLookup(), WorkloadSpec::LargeFlows());
  EXPECT_EQ(insights.accelerator, AccelClass::kLpm);
}

TEST_F(AnalyzerFixture, StatelessElementGetsNoAccelOrPacking) {
  OffloadingInsights insights =
      analyzer_->Analyze(MakeTcpAck(), WorkloadSpec::SmallFlows());
  EXPECT_EQ(insights.accelerator, AccelClass::kNone);
  EXPECT_TRUE(insights.coalescing.packs.empty());
}

TEST_F(AnalyzerFixture, TunedBeatsNaiveOnStatefulNf) {
  OffloadingInsights insights =
      analyzer_->Analyze(MakeUdpCount(), WorkloadSpec::SmallFlows());
  EXPECT_LT(insights.tuned_perf.latency_us, insights.naive_perf.latency_us);
}

}  // namespace
}  // namespace clara
