#!/usr/bin/env bash
# Chaos suite for the serving daemon: trains a small bundle with clara_cli,
# then hands it to clara_chaos, which forks real daemons and runs the fault
# sweeps (every fault site at prob 0.05, seeded), kill/restart, torn-frame,
# hot-reload-under-load, corrupt-reload, and connfloods (slowloris half-open
# connection flood + accept faults) scenarios. Each scenario asserts no
# crash, no wrong answer (byte-compare vs a fault-free baseline), and
# bounded recovery.
#
# Usage: chaos_test.sh [build-dir]   (defaults to the current directory)
# Env:   CLARA_CHAOS_ITERS  requests per fault sweep (default 60; CI raises
#                           it so the sweeps total ~1k requests)
#        CLARA_CHAOS_SCENARIO  run a single scenario instead of all
set -euo pipefail

BUILD_DIR="${1:-$(pwd)}"
CLI="$BUILD_DIR/tools/clara_cli"
SERVE="$BUILD_DIR/tools/clara_serve"
CHAOS="$BUILD_DIR/tools/clara_chaos"
ITERS="${CLARA_CHAOS_ITERS:-60}"
SCENARIO="${CLARA_CHAOS_SCENARIO:-all}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== train a small bundle =="
"$CLI" train --fast --model-dir="$WORK/models"
test -f "$WORK/models/clara_bundle.bin"

echo "== chaos scenarios (iters=$ITERS scenario=$SCENARIO) =="
"$CHAOS" --serve="$SERVE" --model-dir="$WORK/models" --workdir="$WORK" \
  --iters="$ITERS" --seed=1 --scenario="$SCENARIO"

echo "chaos_test: all scenarios passed"
