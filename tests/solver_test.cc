#include "src/solver/assignment_ilp.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace clara {
namespace {

TEST(Ilp, TrivialSingleItem) {
  AssignmentProblem p;
  p.cost = {{5.0, 1.0, 3.0}};
  p.size = {10};
  p.capacity = {100, 100, 100};
  auto s = SolveAssignment(p);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.location[0], 1);
  EXPECT_DOUBLE_EQ(s.objective, 1.0);
}

TEST(Ilp, CapacityForcesSpill) {
  // Both items want location 0, but only one fits.
  AssignmentProblem p;
  p.cost = {{1.0, 10.0}, {1.0, 10.0}};
  p.size = {60, 60};
  p.capacity = {100, 1000};
  auto s = SolveAssignment(p);
  ASSERT_TRUE(s.feasible);
  EXPECT_NE(s.location[0], s.location[1]);
  EXPECT_DOUBLE_EQ(s.objective, 11.0);
}

TEST(Ilp, InfeasiblePairRespected) {
  AssignmentProblem p;
  p.cost = {{AssignmentProblem::Infeasible(), 2.0}};
  p.size = {10};
  p.capacity = {100, 100};
  auto s = SolveAssignment(p);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.location[0], 1);
}

TEST(Ilp, DetectsInfeasibleInstance) {
  AssignmentProblem p;
  p.cost = {{1.0}};
  p.size = {200};
  p.capacity = {100};
  auto s = SolveAssignment(p);
  EXPECT_FALSE(s.feasible);
}

TEST(Ilp, GreedyIsFeasibleWhenIlpIs) {
  AssignmentProblem p;
  p.cost = {{1, 2, 3}, {3, 1, 2}, {2, 3, 1}};
  p.size = {50, 50, 50};
  p.capacity = {60, 60, 120};
  auto greedy = GreedyAssignment(p);
  auto ilp = SolveAssignment(p);
  ASSERT_TRUE(ilp.feasible);
  ASSERT_TRUE(greedy.feasible);
  EXPECT_LE(ilp.objective, greedy.objective + 1e-12);
}

// Exhaustive-check property: on random small instances, branch-and-bound
// finds exactly the brute-force optimum.
TEST(Ilp, MatchesBruteForceOnRandomInstances) {
  Rng rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    size_t items = 2 + rng.NextBounded(4);      // 2..5
    size_t locs = 2 + rng.NextBounded(3);       // 2..4
    AssignmentProblem p;
    p.capacity.resize(locs);
    for (auto& c : p.capacity) {
      c = 50 + rng.NextBounded(200);
    }
    for (size_t i = 0; i < items; ++i) {
      p.size.push_back(10 + rng.NextBounded(80));
      std::vector<double> row(locs);
      for (auto& c : row) {
        c = 1.0 + static_cast<double>(rng.NextBounded(100));
      }
      p.cost.push_back(row);
    }
    // Brute force.
    double best = 1e300;
    size_t combos = 1;
    for (size_t i = 0; i < items; ++i) {
      combos *= locs;
    }
    for (size_t code = 0; code < combos; ++code) {
      size_t c = code;
      std::vector<uint64_t> used(locs, 0);
      double total = 0;
      bool ok = true;
      for (size_t i = 0; i < items && ok; ++i) {
        size_t loc = c % locs;
        c /= locs;
        used[loc] += p.size[i];
        ok = used[loc] <= p.capacity[loc];
        total += p.cost[i][loc];
      }
      if (ok) {
        best = std::min(best, total);
      }
    }
    auto s = SolveAssignment(p);
    if (best >= 1e300) {
      EXPECT_FALSE(s.feasible) << "trial " << trial;
    } else {
      ASSERT_TRUE(s.feasible) << "trial " << trial;
      EXPECT_NEAR(s.objective, best, 1e-9) << "trial " << trial;
    }
  }
}

TEST(Ilp, EmptyProblemIsFeasible) {
  AssignmentProblem p;
  p.capacity = {10, 10};
  auto s = SolveAssignment(p);
  EXPECT_TRUE(s.feasible);
  EXPECT_DOUBLE_EQ(s.objective, 0.0);
}

}  // namespace
}  // namespace clara
