// Service chains and the partial-offloading advisor (paper SS6 extension).
#include "src/core/chain.h"

#include <gtest/gtest.h>

namespace clara {
namespace {

NfDemand Stage(double compute, double state_accesses, double hit = 0.5) {
  NfDemand d;
  d.compute_cycles = compute;
  d.pkt_accesses = 2;
  d.wire_bytes = 128;
  if (state_accesses > 0) {
    StateDemand s;
    s.name = "tbl";
    s.accesses_per_pkt = state_accesses;
    s.words_per_access = 2;
    s.region = MemRegion::kEmem;
    s.cache_hit_rate = hit;
    d.state.push_back(s);
  }
  return d;
}

TEST(Chain, CombineAddsComputeAndConcatsState) {
  std::vector<ChainStage> chain = {{"a", Stage(100, 2)}, {"b", Stage(50, 3)}};
  NfDemand combined = CombineChain(chain);
  EXPECT_DOUBLE_EQ(combined.compute_cycles, 150.0);
  EXPECT_DOUBLE_EQ(combined.pkt_accesses, 4.0);
  ASSERT_EQ(combined.state.size(), 2u);
  EXPECT_EQ(combined.name, "a->b");
  // Colliding state names get prefixed.
  EXPECT_EQ(combined.state[0].name, "tbl");
  EXPECT_EQ(combined.state[1].name, "b.tbl");
}

TEST(Chain, CombinedChainSlowerThanAnyStage) {
  PerfModel model;
  std::vector<ChainStage> chain = {{"a", Stage(200, 2)}, {"b", Stage(300, 4)}};
  PerfPoint whole = model.Evaluate(CombineChain(chain), 16);
  PerfPoint a_only = model.Evaluate(chain[0].demand, 16);
  PerfPoint b_only = model.Evaluate(chain[1].demand, 16);
  EXPECT_LT(whole.throughput_mpps, std::min(a_only.throughput_mpps, b_only.throughput_mpps));
  EXPECT_GT(whole.latency_us, std::max(a_only.latency_us, b_only.latency_us));
}

TEST(Partition, FullNicBestForLightChains) {
  // A light chain fits on the NIC; crossing PCIe would only add latency.
  PartitionAdvisor advisor{PerfModel{}, HostConfig{}};
  std::vector<ChainStage> chain = {{"a", Stage(50, 1, 0.95)}, {"b", Stage(50, 1, 0.95)}};
  SplitPoint best = advisor.Best(chain, 40);
  EXPECT_EQ(best.nic_stages, 2);
}

TEST(Partition, HeavyComputeTailMovesToHost) {
  // A compute-monster stage exceeds what wimpy cores deliver; the advisor
  // should offload the prefix and leave the monster on the host.
  PartitionAdvisor advisor{PerfModel{}, HostConfig{}};
  std::vector<ChainStage> chain = {{"parse", Stage(60, 1, 0.9)},
                                   {"crypto", Stage(40000, 0)}};
  std::vector<SplitPoint> splits = advisor.EvaluateSplits(chain, 20);
  ASSERT_EQ(splits.size(), 3u);
  SplitPoint best = advisor.Best(chain, 20);
  EXPECT_LT(best.nic_stages, 2);  // the crypto stage is not on the NIC
  EXPECT_GT(best.throughput_mpps, splits[2].throughput_mpps);
}

TEST(Partition, HostInvolvementAddsPcieLatency) {
  HostConfig host;
  PartitionAdvisor advisor{PerfModel{}, host};
  std::vector<ChainStage> chain = {{"a", Stage(100, 2)}};
  std::vector<SplitPoint> splits = advisor.EvaluateSplits(chain, 20);
  // splits[0] = all host, splits[1] = all NIC.
  EXPECT_GT(splits[0].latency_us, 2 * host.pcie_latency_us);
}

TEST(Partition, PcieCapsHostThroughput) {
  HostConfig host;
  host.pcie_gbps = 10.0;  // strangle the link
  PartitionAdvisor advisor{PerfModel{}, host};
  std::vector<ChainStage> chain = {{"a", Stage(10, 0)}};
  std::vector<SplitPoint> splits = advisor.EvaluateSplits(chain, 20);
  EXPECT_EQ(splits[0].bound, SplitPoint::Bound::kPcie);
  EXPECT_NEAR(splits[0].throughput_mpps, host.MaxPcieMpps(128), 1e-6);
}

TEST(Partition, SplitCountMatchesStagesPlusOne) {
  PartitionAdvisor advisor{PerfModel{}, HostConfig{}};
  std::vector<ChainStage> chain = {{"a", Stage(10, 1)},
                                   {"b", Stage(20, 1)},
                                   {"c", Stage(30, 1)}};
  EXPECT_EQ(advisor.EvaluateSplits(chain, 20).size(), 4u);
}

TEST(Partition, HostOnlyModelScalesWithCores) {
  HostConfig host;
  PartitionAdvisor a8{PerfModel{}, host};
  host.cores = 16;
  PartitionAdvisor a16{PerfModel{}, host};
  NfDemand d = Stage(1000, 4);
  EXPECT_NEAR(a16.EvaluateHostOnly(d).throughput_mpps,
              2 * a8.EvaluateHostOnly(d).throughput_mpps, 1e-6);
}

}  // namespace
}  // namespace clara
