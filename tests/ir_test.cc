// IR construction, classification, printing and parser round-trips.
#include <gtest/gtest.h>

#include "src/ir/builder.h"
#include "src/ir/classify.h"
#include "src/ir/parser.h"
#include "src/ir/printer.h"

namespace clara {
namespace {

Module MakeTinyModule() {
  Module m;
  m.name = "tiny";
  InstallStandardPacketFields(m);
  StateVar counter;
  counter.name = "counter";
  counter.kind = StateKind::kScalar;
  counter.elem_type = Type::kI64;
  m.state.push_back(counter);
  StateVar table;
  table.name = "table";
  table.kind = StateKind::kArray;
  table.elem_type = Type::kI32;
  table.length = 256;
  m.state.push_back(table);
  StateVar flows;
  flows.name = "flows";
  flows.kind = StateKind::kMap;
  flows.key_bytes = 8;
  flows.value_bytes = 8;
  flows.capacity = 1024;
  m.state.push_back(flows);

  m.functions.emplace_back();
  Function& f = m.functions.back();
  f.name = "simple_action";
  IrBuilder b(m, f);
  uint32_t slot = b.AddSlot("x", Type::kI32);
  uint32_t entry = b.NewBlock("entry");
  uint32_t then_b = b.NewBlock("then");
  uint32_t exit_b = b.NewBlock("exit");
  b.SetInsertPoint(entry);
  Value src = b.LoadPacket(static_cast<uint32_t>(m.FindPacketField("ip.src")));
  Value sum = b.Binary(Opcode::kAdd, Type::kI32, src, Value::Const(7));
  b.StoreStack(slot, sum);
  Value x = b.LoadStack(slot);
  Value c = b.Compare(Opcode::kIcmpUgt, x, Value::Const(100));
  b.CondBr(c, then_b, exit_b);
  b.SetInsertPoint(then_b);
  Value cnt = b.LoadState(0, Type::kI64);
  b.StoreState(0, Type::kI64, b.Binary(Opcode::kAdd, Type::kI64, cnt, Value::Const(1)));
  Value idx = b.Binary(Opcode::kAnd, Type::kI32, x, Value::Const(255));
  b.LoadState(1, Type::kI32, idx);
  b.Call("send", {Value::Const(0)}, Type::kVoid);
  b.Br(exit_b);
  b.SetInsertPoint(exit_b);
  b.Ret();
  return m;
}

TEST(IrBuilder, AssignsDistinctRegisters) {
  Module m = MakeTinyModule();
  const Function& f = m.functions[0];
  std::set<uint32_t> regs;
  for (const auto& blk : f.blocks) {
    for (const auto& i : blk.instrs) {
      if (i.result != 0) {
        EXPECT_TRUE(regs.insert(i.result).second) << "duplicate %" << i.result;
      }
    }
  }
  EXPECT_GE(regs.size(), 7u);
}

TEST(IrClassify, SeparatesClasses) {
  Module m = MakeTinyModule();
  BlockCounts totals = CountFunction(m.functions[0]);
  EXPECT_GT(totals.compute, 0u);
  EXPECT_GT(totals.stateless_mem, 0u);  // stack + packet
  EXPECT_EQ(totals.stateful_mem, 3u);   // counter load+store, table load
  EXPECT_EQ(totals.api_calls, 1u);
  EXPECT_EQ(totals.control, 3u);        // condbr, br, ret
}

TEST(IrClassify, InstructionClassValues) {
  Instruction load;
  load.op = Opcode::kLoad;
  load.space = AddressSpace::kState;
  EXPECT_EQ(Classify(load), InstrClass::kStatefulMem);
  load.space = AddressSpace::kStack;
  EXPECT_EQ(Classify(load), InstrClass::kStatelessMem);
  Instruction add;
  add.op = Opcode::kAdd;
  EXPECT_EQ(Classify(add), InstrClass::kCompute);
  Instruction call;
  call.op = Opcode::kCall;
  EXPECT_EQ(Classify(call), InstrClass::kApiCall);
  Instruction ret;
  ret.op = Opcode::kRet;
  EXPECT_EQ(Classify(ret), InstrClass::kControl);
}

TEST(IrClassify, ArithmeticIntensity) {
  BlockCounts c;
  c.compute = 12;
  c.stateful_mem = 3;
  c.stateless_mem = 1;
  EXPECT_DOUBLE_EQ(ArithmeticIntensity(c), 3.0);
  BlockCounts no_mem;
  no_mem.compute = 5;
  EXPECT_DOUBLE_EQ(ArithmeticIntensity(no_mem), 5.0);
}

TEST(IrPrinter, ContainsKeyPieces) {
  Module m = MakeTinyModule();
  std::string text = ToString(m);
  EXPECT_NE(text.find("module tiny"), std::string::npos);
  EXPECT_NE(text.find("state counter : i64"), std::string::npos);
  EXPECT_NE(text.find("state table : i32[256]"), std::string::npos);
  EXPECT_NE(text.find("state flows : map<8,8,1024>"), std::string::npos);
  EXPECT_NE(text.find("load i32 pkt:ip.src"), std::string::npos);
  EXPECT_NE(text.find("call @send(0)"), std::string::npos);
  EXPECT_NE(text.find("condbr"), std::string::npos);
}

TEST(IrParser, RoundTripsPrinterOutput) {
  Module m = MakeTinyModule();
  std::string text = ToString(m);
  ParseResult r = ParseModule(text);
  ASSERT_TRUE(r.ok) << r.error;
  // Same structure after round trip.
  ASSERT_EQ(r.module.functions.size(), 1u);
  const Function& f0 = m.functions[0];
  const Function& f1 = r.module.functions[0];
  ASSERT_EQ(f0.blocks.size(), f1.blocks.size());
  for (size_t b = 0; b < f0.blocks.size(); ++b) {
    ASSERT_EQ(f0.blocks[b].instrs.size(), f1.blocks[b].instrs.size()) << "block " << b;
    for (size_t i = 0; i < f0.blocks[b].instrs.size(); ++i) {
      EXPECT_EQ(f0.blocks[b].instrs[i].op, f1.blocks[b].instrs[i].op);
    }
  }
  // Printing the parsed module reproduces the text exactly (fixed point).
  EXPECT_EQ(ToString(r.module), text);
}

TEST(IrParser, ReportsErrors) {
  EXPECT_FALSE(ParseModule("func @f {\n^e:\n  %1 = frobnicate i32 1, 2\n}\n").ok);
  EXPECT_FALSE(ParseModule("  %1 = add i32 1, 2\n").ok);
}

TEST(IrParser, ParsesHandWrittenModule) {
  const char* text =
      "module hand\n"
      "state acc : i32\n"
      "func @simple_action {\n"
      "  local t : i32\n"
      "^entry:\n"
      "  %1 = load i16 pkt:tcp.sport\n"
      "  %2 = zext i32 %1\n"
      "  store i32 %2, stack:t\n"
      "  %3 = load i32 state:acc\n"
      "  %4 = add i32 %3, %2\n"
      "  store i32 %4, state:acc\n"
      "  ret\n"
      "}\n";
  ParseResult r = ParseModule(text);
  ASSERT_TRUE(r.ok) << r.error;
  BlockCounts c = CountFunction(r.module.functions[0]);
  EXPECT_EQ(c.stateful_mem, 2u);
  EXPECT_EQ(c.compute, 2u);
}

TEST(StateVar, SizeBytes) {
  StateVar scalar;
  scalar.kind = StateKind::kScalar;
  scalar.elem_type = Type::kI64;
  EXPECT_EQ(scalar.SizeBytes(), 8u);
  StateVar arr;
  arr.kind = StateKind::kArray;
  arr.elem_type = Type::kI32;
  arr.length = 100;
  EXPECT_EQ(arr.SizeBytes(), 400u);
  StateVar map;
  map.kind = StateKind::kMap;
  map.key_bytes = 8;
  map.value_bytes = 16;
  map.capacity = 10;
  EXPECT_EQ(map.SizeBytes(), 240u);
}

}  // namespace
}  // namespace clara
