#include "src/lang/check.h"

#include <gtest/gtest.h>

#include "src/lang/printer.h"

namespace clara {
namespace {

TEST(Check, TypesPacketFields) {
  Program p;
  p.name = "t";
  p.body.push_back(Decl("x", Type::kI32, PktField("ip.src")));
  p.body.push_back(Decl("y", Type::kI16, PktField("tcp.sport")));
  CheckResult r = CheckProgram(p);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(p.body[0]->e0->type, Type::kI32);
  EXPECT_EQ(p.body[1]->e0->type, Type::kI16);
  ASSERT_EQ(r.locals.size(), 2u);
  EXPECT_EQ(r.locals[0].name, "x");
}

TEST(Check, BinaryPromotesToWiderOperand) {
  Program p;
  p.body.push_back(
      Decl("w", Type::kI64, Bin(Opcode::kAdd, PktField("pkt.ts"), PktField("ip.src"))));
  ASSERT_TRUE(CheckProgram(p).ok);
  EXPECT_EQ(p.body[0]->e0->type, Type::kI64);  // i64 + i32 -> i64
}

TEST(Check, CompareYieldsI1) {
  Program p;
  p.body.push_back(If(Cmp(Opcode::kIcmpEq, PktField("ip.proto"), Lit(6)), {}));
  ASSERT_TRUE(CheckProgram(p).ok);
  EXPECT_EQ(p.body[0]->e0->type, Type::kI1);
}

TEST(Check, UndeclaredLocalFails) {
  Program p;
  p.body.push_back(Assign("ghost", Lit(1)));
  CheckResult r = CheckProgram(p);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.errors[0].find("ghost"), std::string::npos);
}

TEST(Check, UnknownStateFails) {
  Program p;
  p.body.push_back(AssignState("nope", Lit(1)));
  EXPECT_FALSE(CheckProgram(p).ok);
}

TEST(Check, UnknownPacketFieldFails) {
  Program p;
  p.body.push_back(Decl("x", Type::kI32, PktField("ip.bogus")));
  EXPECT_FALSE(CheckProgram(p).ok);
}

TEST(Check, WrongStateKindFails) {
  Program p;
  StateDecl arr;
  arr.name = "a";
  arr.kind = StateKind::kArray;
  arr.elem_type = Type::kI32;
  arr.length = 4;
  p.state.push_back(arr);
  p.body.push_back(AssignState("a", Lit(1)));  // scalar op on an array
  EXPECT_FALSE(CheckProgram(p).ok);
}

TEST(Check, MapKeyArityValidated) {
  Program p;
  StateDecl m;
  m.name = "m";
  m.kind = StateKind::kMap;
  m.key_fields = {Type::kI32, Type::kI32};
  m.value_fields = {{"v", Type::kI32}};
  m.capacity = 64;
  p.state.push_back(m);
  std::vector<ExprPtr> one_key;
  one_key.push_back(PktField("ip.src"));
  p.body.push_back(MapFind("m", std::move(one_key), "found", {"v"}));
  EXPECT_FALSE(CheckProgram(p).ok);
}

TEST(Check, MapFindImplicitlyDeclaresOutputs) {
  Program p;
  StateDecl m;
  m.name = "m";
  m.kind = StateKind::kMap;
  m.key_fields = {Type::kI32};
  m.value_fields = {{"v", Type::kI16}};
  m.capacity = 64;
  p.state.push_back(m);
  std::vector<ExprPtr> keys;
  keys.push_back(PktField("ip.src"));
  p.body.push_back(MapFind("m", std::move(keys), "found", {"out_v"}));
  p.body.push_back(Assign("out_v", Lit(1)));  // usable afterwards
  CheckResult r = CheckProgram(p);
  ASSERT_TRUE(r.ok);
  bool found_out = false;
  for (const auto& l : r.locals) {
    if (l.name == "out_v") {
      EXPECT_EQ(l.type, Type::kI16);  // typed from the map's value field
      found_out = true;
    }
  }
  EXPECT_TRUE(found_out);
}

TEST(Check, ForLoopDeclaresIterationVariable) {
  Program p;
  p.body.push_back(For("i", Lit(0), Lit(4), {}));
  p.body.push_back(Decl("x", Type::kI32, Local("i")));
  EXPECT_TRUE(CheckProgram(p).ok);
}

TEST(Printer, RendersPseudoClick) {
  Program p;
  p.name = "mini";
  p.state.push_back([] {
    StateDecl d;
    d.name = "cnt";
    d.kind = StateKind::kScalar;
    d.elem_type = Type::kI64;
    return d;
  }());
  p.body.push_back(AssignState("cnt", Bin(Opcode::kAdd, StateRef("cnt"), Lit(1))));
  p.body.push_back(Send(Lit(0)));
  std::string src = ToSource(p);
  EXPECT_NE(src.find("class mini : public Element"), std::string::npos);
  EXPECT_NE(src.find("cnt = (cnt + 1);"), std::string::npos);
  EXPECT_NE(src.find("pkt->send(0);"), std::string::npos);
  EXPECT_GT(SourceLineCount(p), 4);
}

}  // namespace
}  // namespace clara
