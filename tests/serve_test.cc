// The serving subsystem (src/serve/): artifact store round-trips, corrupted
// artifact rejection, wire-protocol codecs, the mini-Click parser used for
// inline-source requests, and the batched serving engine (cache byte
// equality, admission control, deadlines, concurrency).
//
// Runs as one ctest entry (clara_test_whole): the trained bundle fixture is
// shared across every test in the binary.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "src/core/analyzer.h"
#include "src/elements/elements.h"
#include "src/lang/lower.h"
#include "src/lang/parse.h"
#include "src/lang/printer.h"
#include "src/ml/ensemble.h"
#include "src/ml/kmeans.h"
#include "src/ml/knn.h"
#include "src/ml/linear.h"
#include "src/ml/tree.h"
#include "src/obs/trace.h"
#include "src/serve/artifact.h"
#include "src/serve/brownout.h"
#include "src/serve/proto.h"
#include "src/serve/retry.h"
#include "src/serve/server.h"
#include "src/util/binio.h"
#include "src/util/rng.h"
#include "src/workload/workload.h"

namespace clara {
namespace {

// ---- shared trained fixture (small corpus; trained once per process) ----

AnalyzerOptions SmallOptions() {
  AnalyzerOptions options;
  options.predictor.train_programs = 24;
  options.predictor.lstm.epochs = 2;
  options.scaleout.train_programs = 16;
  options.colocation.train_nfs = 8;
  options.colocation.train_groups = 16;
  options.algo_corpus_per_class = 6;
  return options;
}

const ClaraAnalyzer& TrainedAnalyzer() {
  static const ClaraAnalyzer* analyzer = [] {
    auto* a = new ClaraAnalyzer(SmallOptions());
    std::vector<Program> corpus;
    for (const auto& info : ElementRegistry()) {
      corpus.push_back(info.make());
    }
    std::vector<const Program*> ptrs;
    for (const auto& p : corpus) {
      ptrs.push_back(&p);
    }
    a->Train(ptrs);
    return a;
  }();
  return *analyzer;
}

const std::string& SerializedBundle() {
  static const std::string* bytes =
      new std::string(serve::SerializeBundle(TrainedAnalyzer().ExportTrained()));
  return *bytes;
}

TrainedBundle ReloadedBundle() {
  TrainedBundle bundle;
  std::string error;
  EXPECT_TRUE(serve::DeserializeBundle(SerializedBundle(), &bundle, &error)) << error;
  return bundle;
}

Module LowerElement(const std::string& name) {
  Program program = MakeElementByName(name);
  LowerResult lr = LowerProgram(program);
  EXPECT_TRUE(lr.ok) << lr.error;
  return std::move(lr.module);
}

// Defined with the serve-engine tests below.
serve::ServeOptions FastServeOptions();
serve::InsightRequest ElementRequest(uint64_t id, const std::string& element);

// ---- artifact store: bit-identical round trips ----

TEST(Artifact, SerializeDeserializeIsAFixedPoint) {
  TrainedBundle reloaded = ReloadedBundle();
  EXPECT_TRUE(reloaded.trained());
  // Byte-level fixed point covers every serialized model at once: any lossy
  // field would change the second serialization.
  EXPECT_EQ(serve::SerializeBundle(reloaded), SerializedBundle());
}

TEST(Artifact, ReloadedPredictorIsBitIdentical) {
  TrainedBundle reloaded = ReloadedBundle();
  for (const char* name : {"aggcounter", "heavyhitter", "iplookup"}) {
    Module m = LowerElement(name);
    NfPrediction a = TrainedAnalyzer().predictor().PredictNf(m);
    NfPrediction b = reloaded.predictor.PredictNf(m);
    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    EXPECT_EQ(a.total_mem_state, b.total_mem_state);
    // Exact double equality: the LSTM+FC weights must reload bit-for-bit.
    for (size_t i = 0; i < a.blocks.size(); ++i) {
      EXPECT_EQ(a.blocks[i].compute, b.blocks[i].compute) << name << " block " << i;
    }
    EXPECT_EQ(a.total_compute, b.total_compute) << name;
  }
}

TEST(Artifact, ReloadedAlgoIdAndAdvisorsMatch) {
  TrainedBundle reloaded = ReloadedBundle();
  for (const char* name : {"aggcounter", "iprewriter", "cmsketch"}) {
    Module m = LowerElement(name);
    EXPECT_EQ(TrainedAnalyzer().algo_id().Classify(m), reloaded.algo_id.Classify(m));
    FeatureVec fa = TrainedAnalyzer().algo_id().ExtractFeatures(m);
    FeatureVec fb = reloaded.algo_id.ExtractFeatures(m);
    EXPECT_EQ(fa, fb) << name;
  }
}

TEST(Artifact, ReloadedAnalyzerProducesIdenticalInsights) {
  ClaraAnalyzer warm(SmallOptions(), ReloadedBundle());
  WorkloadSpec wl = WorkloadSpec::SmallFlows();
  OffloadingInsights a = TrainedAnalyzer().Analyze(MakeElementByName("aggcounter"), wl);
  OffloadingInsights b = warm.Analyze(MakeElementByName("aggcounter"), wl);
  EXPECT_EQ(a.accelerator, b.accelerator);
  EXPECT_EQ(a.suggested_cores, b.suggested_cores);
  EXPECT_EQ(a.prediction.total_compute, b.prediction.total_compute);
  EXPECT_EQ(a.ToString(NicConfig{}), b.ToString(NicConfig{}));
}

// ---- artifact store: corruption rejection ----

TEST(Artifact, RejectsBadMagic) {
  std::string bytes = SerializedBundle();
  bytes[0] = 'X';
  TrainedBundle b;
  std::string error;
  EXPECT_FALSE(serve::DeserializeBundle(bytes, &b, &error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(Artifact, RejectsVersionBump) {
  std::string bytes = SerializedBundle();
  bytes[4] = static_cast<char>(serve::kArtifactVersion + 1);  // u16 LE at offset 4
  TrainedBundle b;
  std::string error;
  EXPECT_FALSE(serve::DeserializeBundle(bytes, &b, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(Artifact, RejectsTruncation) {
  std::string bytes = SerializedBundle();
  for (size_t keep : {bytes.size() - 1, bytes.size() / 2, size_t{10}, size_t{0}}) {
    TrainedBundle b;
    std::string error;
    EXPECT_FALSE(serve::DeserializeBundle(bytes.substr(0, keep), &b, &error))
        << "kept " << keep << " bytes";
    EXPECT_FALSE(error.empty());
  }
}

TEST(Artifact, RejectsPayloadCorruption) {
  std::string bytes = SerializedBundle();
  bytes[bytes.size() / 2] ^= 0x40;
  TrainedBundle b;
  std::string error;
  EXPECT_FALSE(serve::DeserializeBundle(bytes, &b, &error));
  EXPECT_NE(error.find("CRC"), std::string::npos) << error;
}

// ---- artifact store: optional quantized-weights frame ----

// Byte offset where the trailing CLRQ frame starts: magic(4) + version(2) +
// crc(4) + size(4) + main payload.
size_t QuantFrameStart(const std::string& bytes) {
  uint32_t payload_size;
  std::memcpy(&payload_size, bytes.data() + 10, 4);
  return 14 + payload_size;
}

TEST(Artifact, LegacyArtifactWithoutQuantFrameLoadsAndServes) {
  // include_quantized=false reproduces the pre-frame format byte-for-byte.
  std::string legacy = serve::SerializeBundle(TrainedAnalyzer().ExportTrained(),
                                              /*include_quantized=*/false);
  ASSERT_LT(legacy.size(), SerializedBundle().size());
  EXPECT_EQ(legacy, SerializedBundle().substr(0, legacy.size()));

  TrainedBundle bundle;
  std::string error;
  ASSERT_TRUE(serve::DeserializeBundle(legacy, &bundle, &error)) << error;
  EXPECT_TRUE(bundle.trained());

  // An engine asked for int8 quantizes at load and still serves.
  serve::ServeOptions opts = FastServeOptions();
  opts.infer_backend = InferBackend::kInt8;
  serve::ServeEngine engine(std::move(bundle), opts);
  serve::InsightResponse resp = engine.Handle(ElementRequest(1, "aggcounter"));
  EXPECT_EQ(serve::ErrorCode::kOk, resp.error);
  EXPECT_NE(engine.HealthJson().find("\"infer\":\"int8\""), std::string::npos);
}

TEST(Artifact, RejectsQuantFrameTruncation) {
  const std::string& bytes = SerializedBundle();
  size_t start = QuantFrameStart(bytes);
  ASSERT_LT(start, bytes.size());
  // Cut inside the frame header and inside its payload.
  for (size_t keep : {start + 5, bytes.size() - 3}) {
    TrainedBundle b;
    std::string error;
    EXPECT_FALSE(serve::DeserializeBundle(bytes.substr(0, keep), &b, &error))
        << "kept " << keep << " of " << bytes.size();
    EXPECT_NE(error.find("quantized"), std::string::npos) << error;
  }
}

TEST(Artifact, RejectsQuantFrameCorruption) {
  std::string bytes = SerializedBundle();
  size_t start = QuantFrameStart(bytes);
  // Flip a byte inside the frame payload (past its 14-byte header).
  bytes[start + 14 + 2] ^= 0x20;
  TrainedBundle b;
  std::string error;
  EXPECT_FALSE(serve::DeserializeBundle(bytes, &b, &error));
  EXPECT_NE(error.find("CRC"), std::string::npos) << error;
}

TEST(Artifact, AttachedQuantFrameMatchesRequantization) {
  // Quantization is deterministic, so int8 predictions from the attached
  // frame and from quantize-at-load of the legacy artifact are identical.
  TrainedBundle with_frame = ReloadedBundle();
  std::string legacy = serve::SerializeBundle(TrainedAnalyzer().ExportTrained(),
                                              /*include_quantized=*/false);
  TrainedBundle without_frame;
  std::string error;
  ASSERT_TRUE(serve::DeserializeBundle(legacy, &without_frame, &error)) << error;

  with_frame.predictor.SetInferBackend(InferBackend::kInt8);
  without_frame.predictor.SetInferBackend(InferBackend::kInt8);
  for (const char* name : {"aggcounter", "heavyhitter"}) {
    Module m = LowerElement(name);
    NfPrediction a = with_frame.predictor.PredictNf(m);
    NfPrediction b = without_frame.predictor.PredictNf(m);
    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    for (size_t i = 0; i < a.blocks.size(); ++i) {
      EXPECT_EQ(a.blocks[i].compute, b.blocks[i].compute) << name << " block " << i;
    }
  }
}

// ---- standalone model round trips (every family in the bundle or store) --

template <typename T>
T RoundTrip(const T& model) {
  BinWriter w;
  model.SaveTo(w);
  BinReader r(w.data());
  T out;
  EXPECT_TRUE(out.LoadFrom(r)) << r.error();
  EXPECT_EQ(r.remaining(), 0u);
  return out;
}

TabularDataset RegData(size_t n, uint64_t seed) {
  TabularDataset d;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    double x0 = rng.NextDouble() * 10, x1 = rng.NextDouble() * 4;
    d.x.push_back({x0, x1});
    d.y.push_back(x0 * 1.5 - x1 + rng.NextGaussian(0.1));
  }
  return d;
}

TabularDataset ClsData(size_t n, int classes, uint64_t seed) {
  TabularDataset d;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    int c = static_cast<int>(rng.NextBounded(classes));
    d.x.push_back({c * 3.0 + rng.NextGaussian(0.4), (c % 2) * 3.0 + rng.NextGaussian(0.4)});
    d.y.push_back(c);
  }
  return d;
}

std::vector<FeatureVec> Probes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<FeatureVec> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back({rng.NextDouble() * 10, rng.NextDouble() * 4});
  }
  return out;
}

TEST(ModelRoundTrip, RegressionTree) {
  RegressionTree tree(TreeOptions{5, 2, 0});
  tree.Fit(RegData(200, 3));
  RegressionTree loaded = RoundTrip(tree);
  for (const auto& p : Probes(50, 4)) {
    EXPECT_EQ(tree.Predict(p), loaded.Predict(p));
  }
}

TEST(ModelRoundTrip, GbdtRegressor) {
  GbdtRegressor gbdt;
  gbdt.Fit(RegData(300, 5));
  GbdtRegressor loaded = RoundTrip(gbdt);
  for (const auto& p : Probes(50, 6)) {
    EXPECT_EQ(gbdt.Predict(p), loaded.Predict(p));
  }
}

TEST(ModelRoundTrip, RandomForestRegressor) {
  RandomForestRegressor forest;
  forest.Fit(RegData(300, 7));
  RandomForestRegressor loaded = RoundTrip(forest);
  for (const auto& p : Probes(50, 8)) {
    EXPECT_EQ(forest.Predict(p), loaded.Predict(p));
  }
}

TEST(ModelRoundTrip, GbdtClassifier) {
  GbdtClassifier cls;
  cls.Fit(ClsData(300, 3, 9), 3);
  GbdtClassifier loaded = RoundTrip(cls);
  for (const auto& p : Probes(50, 10)) {
    EXPECT_EQ(cls.Predict(p), loaded.Predict(p));
  }
}

TEST(ModelRoundTrip, GbdtRanker) {
  Rng rng(11);
  std::vector<RankGroup> groups;
  for (int g = 0; g < 20; ++g) {
    RankGroup grp;
    for (int i = 0; i < 4; ++i) {
      double x0 = rng.NextDouble(), x1 = rng.NextDouble();
      grp.items.push_back({x0, x1});
      grp.relevance.push_back(x0 * 2 - x1);
    }
    groups.push_back(std::move(grp));
  }
  GbdtRanker ranker;
  ranker.Fit(groups);
  GbdtRanker loaded = RoundTrip(ranker);
  for (const auto& p : Probes(50, 12)) {
    EXPECT_EQ(ranker.Score({p[0] / 10, p[1] / 4}), loaded.Score({p[0] / 10, p[1] / 4}));
  }
}

TEST(ModelRoundTrip, LinearSvm) {
  LinearSvm svm;
  svm.Fit(ClsData(300, 3, 13), 3);
  LinearSvm loaded = RoundTrip(svm);
  for (const auto& p : Probes(50, 14)) {
    EXPECT_EQ(svm.Predict(p), loaded.Predict(p));
  }
}

TEST(ModelRoundTrip, KnnClassifierAndRegressor) {
  KnnClassifier cls;
  cls.Fit(ClsData(150, 3, 15), 3);
  KnnClassifier cls_loaded = RoundTrip(cls);
  KnnRegressor reg;
  reg.Fit(RegData(150, 16));
  KnnRegressor reg_loaded = RoundTrip(reg);
  for (const auto& p : Probes(50, 17)) {
    EXPECT_EQ(cls.Predict(p), cls_loaded.Predict(p));
    EXPECT_EQ(reg.Predict(p), reg_loaded.Predict(p));
  }
}

TEST(ModelRoundTrip, KMeansResultRoundTrips) {
  std::vector<FeatureVec> x;
  Rng rng(18);
  for (int i = 0; i < 120; ++i) {
    int c = i % 3;
    x.push_back({c * 5.0 + rng.NextGaussian(0.3), c * 2.0 + rng.NextGaussian(0.3)});
  }
  KMeansResult res = KMeans(x, 3);
  BinWriter w;
  SaveKMeansResult(w, res);
  BinReader r(w.data());
  KMeansResult loaded;
  ASSERT_TRUE(LoadKMeansResult(r, &loaded)) << r.error();
  EXPECT_EQ(res.centroids, loaded.centroids);
  EXPECT_EQ(res.assignment, loaded.assignment);
  EXPECT_EQ(res.inertia, loaded.inertia);
}

TEST(ModelRoundTrip, CorruptedTreeLinksRejected) {
  RegressionTree tree(TreeOptions{4, 2, 0});
  tree.Fit(RegData(200, 19));
  BinWriter w;
  tree.SaveTo(w);
  std::string bytes = w.data();
  // Corrupt a child-link field to a backward reference: LoadFrom must reject
  // it (Predict traversal would loop otherwise). Node 0's `left` i32 sits at
  // tag(2) + count(4) + feature(4) + threshold(8) + value(8).
  bytes[2 + 4 + 4 + 8 + 8] = 0;
  BinReader r(bytes);
  RegressionTree loaded;
  EXPECT_FALSE(loaded.LoadFrom(r));
  EXPECT_FALSE(r.error().empty());
}

// ---- wire protocol ----

TEST(Proto, RequestRoundTrips) {
  serve::InsightRequest req;
  req.id = 42;
  req.element = "aggcounter";
  req.source = "class X : public Element {};";
  req.workload = WorkloadSpec::LargeFlows();
  req.deadline_ms = 250;
  serve::InsightRequest out;
  std::string error;
  ASSERT_TRUE(serve::ParseRequest(serve::EncodeRequest(req), &out, &error)) << error;
  EXPECT_EQ(out.id, req.id);
  EXPECT_EQ(out.element, req.element);
  EXPECT_EQ(out.source, req.source);
  EXPECT_EQ(out.workload.name, req.workload.name);
  EXPECT_EQ(out.workload.num_flows, req.workload.num_flows);
  EXPECT_EQ(out.workload.zipf_s, req.workload.zipf_s);
  EXPECT_EQ(out.deadline_ms, req.deadline_ms);
}

TEST(Proto, ResponseRoundTrips) {
  serve::InsightResponse resp;
  resp.id = 7;
  resp.nf_name = "aggcounter";
  resp.accelerator = "none";
  resp.suggested_cores = 12;
  resp.total_compute = 17.25;
  resp.total_mem_state = 6;
  resp.naive_mpps = 33.5;
  resp.tuned_us = 0.75;
  resp.rendered = "=== insights ===\n";
  serve::InsightResponse out;
  std::string error;
  ASSERT_TRUE(serve::ParseResponse(serve::EncodeResponse(resp), &out, &error)) << error;
  EXPECT_EQ(out.id, resp.id);
  EXPECT_EQ(out.nf_name, resp.nf_name);
  EXPECT_EQ(out.suggested_cores, resp.suggested_cores);
  EXPECT_EQ(out.total_compute, resp.total_compute);
  EXPECT_EQ(out.rendered, resp.rendered);
}

TEST(Proto, MalformedRequestRejected) {
  serve::InsightRequest out;
  std::string error;
  EXPECT_FALSE(serve::ParseRequest("not a request", &out, &error));
  EXPECT_FALSE(error.empty());
  // Neither element nor source.
  serve::InsightRequest empty;
  EXPECT_FALSE(serve::ParseRequest(serve::EncodeRequest(empty), &out, &error));
  EXPECT_NE(error.find("neither"), std::string::npos) << error;
}

TEST(Proto, FrameReaderReassemblesSplitFrames) {
  std::string stream;
  serve::AppendFrame(&stream, "alpha");
  serve::AppendFrame(&stream, "");
  serve::AppendFrame(&stream, "gamma");
  serve::FrameReader reader;
  std::vector<std::string> frames;
  std::string frame;
  for (size_t i = 0; i < stream.size(); ++i) {  // worst case: byte at a time
    reader.Feed(stream.data() + i, 1);
    while (reader.Next(&frame)) {
      frames.push_back(frame);
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0], "alpha");
  EXPECT_EQ(frames[1], "");
  EXPECT_EQ(frames[2], "gamma");
  EXPECT_EQ(reader.TakeOversized(), 0u);
}

TEST(Proto, FrameReaderSkipsOversizedFrames) {
  std::string stream;
  // A length prefix over the cap, followed by that many junk bytes, then a
  // well-formed frame.
  uint32_t big = serve::kMaxFrameBytes + 5;
  for (int i = 0; i < 4; ++i) {
    stream.push_back(static_cast<char>((big >> (8 * i)) & 0xff));
  }
  stream.append(big, 'x');
  serve::AppendFrame(&stream, "survivor");
  serve::FrameReader reader;
  reader.Feed(stream.data(), stream.size());
  std::string frame;
  ASSERT_TRUE(reader.Next(&frame));
  EXPECT_EQ(frame, "survivor");
  EXPECT_EQ(reader.TakeOversized(), 1u);
}

// ---- mini-Click parser (inline-source requests) ----

TEST(Parse, EveryRegistryElementRoundTripsThroughSource) {
  for (const auto& info : ElementRegistry()) {
    Program original = info.make();
    std::string source = ToSource(original);
    ParseResult parsed = ParseProgram(source);
    ASSERT_TRUE(parsed.ok) << info.name << ": " << parsed.error;
    // Printing the parsed program must reproduce the source exactly — the
    // parser is the printer's inverse on printer output.
    EXPECT_EQ(ToSource(parsed.program), source) << info.name;
  }
}

TEST(Parse, ReportsErrorsWithLineNumbers) {
  ParseResult r = ParseProgram("class Broken : public Element {\n  int;\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line"), std::string::npos) << r.error;
}

// ---- serving engine ----

serve::InsightRequest ElementRequest(uint64_t id, const std::string& element) {
  serve::InsightRequest req;
  req.id = id;
  req.element = element;
  req.workload = WorkloadSpec::SmallFlows();
  return req;
}

serve::ServeOptions FastServeOptions() {
  serve::ServeOptions opts;
  opts.profile_packets = 400;
  return opts;
}

TEST(Engine, CachedAndUncachedResponsesAreByteEqual) {
  serve::ServeEngine engine(ReloadedBundle(), FastServeOptions());
  serve::InsightResponse first = engine.Handle(ElementRequest(1, "aggcounter"));
  ASSERT_EQ(first.error, serve::ErrorCode::kOk) << first.error_message;
  EXPECT_EQ(engine.cache_entries(), 1u);
  serve::InsightResponse second = engine.Handle(ElementRequest(2, "aggcounter"));
  ASSERT_EQ(second.error, serve::ErrorCode::kOk);
  // Identical (program, workload) ⇒ identical encoded body; only the echoed
  // id differs.
  EXPECT_EQ(serve::EncodeResponseBody(first), serve::EncodeResponseBody(second));
  EXPECT_EQ(engine.cache_entries(), 1u);
}

TEST(Engine, InlineSourceHitsTheSameCacheEntryAsTheElement) {
  serve::ServeEngine engine(ReloadedBundle(), FastServeOptions());
  serve::InsightResponse by_name = engine.Handle(ElementRequest(1, "aggcounter"));
  ASSERT_EQ(by_name.error, serve::ErrorCode::kOk) << by_name.error_message;
  serve::InsightRequest req;
  req.id = 2;
  req.source = ToSource(MakeElementByName("aggcounter"));
  req.workload = WorkloadSpec::SmallFlows();
  serve::InsightResponse by_source = engine.Handle(std::move(req));
  ASSERT_EQ(by_source.error, serve::ErrorCode::kOk) << by_source.error_message;
  // Same content hash ⇒ served from the cache, byte-equal bodies.
  EXPECT_EQ(engine.cache_entries(), 1u);
  EXPECT_EQ(serve::EncodeResponseBody(by_name), serve::EncodeResponseBody(by_source));
}

TEST(Engine, ConcurrentRequestsAreAnswered) {
  serve::ServeEngine engine(ReloadedBundle(), FastServeOptions());
  engine.Start();
  std::vector<std::future<serve::InsightResponse>> futures;
  const char* elements[] = {"aggcounter", "heavyhitter", "aggcounter", "iplookup"};
  for (uint64_t i = 0; i < 4; ++i) {
    futures.push_back(engine.Submit(ElementRequest(i + 1, elements[i])));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    serve::InsightResponse resp = futures[i].get();
    EXPECT_EQ(resp.error, serve::ErrorCode::kOk) << resp.error_message;
    EXPECT_EQ(resp.id, i + 1);
  }
  engine.Stop();
}

TEST(Engine, AdmissionControlRejectsWhenQueueIsFull) {
  serve::ServeOptions opts = FastServeOptions();
  opts.queue_capacity = 1;
  serve::ServeEngine engine(ReloadedBundle(), opts);
  // Not started: the queue cannot drain, so the second submit must be
  // rejected immediately.
  std::future<serve::InsightResponse> queued = engine.Submit(ElementRequest(1, "aggcounter"));
  std::future<serve::InsightResponse> rejected =
      engine.Submit(ElementRequest(2, "aggcounter"));
  ASSERT_EQ(rejected.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(rejected.get().error, serve::ErrorCode::kQueueFull);
  engine.Start();  // drain the queued request
  EXPECT_EQ(queued.get().error, serve::ErrorCode::kOk);
  engine.Stop();
}

TEST(Engine, ExpiredDeadlineIsRejectedAtDispatch) {
  serve::ServeEngine engine(ReloadedBundle(), FastServeOptions());
  serve::InsightRequest req = ElementRequest(1, "aggcounter");
  req.deadline_ms = 1;
  std::future<serve::InsightResponse> fut = engine.Submit(std::move(req));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  engine.Start();
  EXPECT_EQ(fut.get().error, serve::ErrorCode::kDeadlineExceeded);
  engine.Stop();
}

TEST(Engine, StructuredErrorsNeverCrash) {
  serve::ServeEngine engine(ReloadedBundle(), FastServeOptions());
  serve::InsightResponse unknown = engine.Handle(ElementRequest(1, "nosuchelement"));
  EXPECT_EQ(unknown.error, serve::ErrorCode::kUnknownElement);
  serve::InsightRequest bad_source;
  bad_source.id = 2;
  bad_source.source = "class Broken : public Element { int;";
  bad_source.workload = WorkloadSpec::SmallFlows();
  serve::InsightResponse parse_err = engine.Handle(std::move(bad_source));
  EXPECT_EQ(parse_err.error, serve::ErrorCode::kParseError);
  EXPECT_FALSE(parse_err.error_message.empty());
  // Undecodable payload through the transport entry point.
  std::string encoded = engine.HandlePayload("garbage payload");
  serve::InsightResponse decoded;
  std::string error;
  ASSERT_TRUE(serve::ParseResponse(encoded, &decoded, &error)) << error;
  EXPECT_EQ(decoded.error, serve::ErrorCode::kBadRequest);
}

// ---- telemetry wire extensions ----

TEST(Proto, TraceIdRoundTripsAndZeroIsOmitted) {
  serve::InsightRequest req;
  req.id = 9;
  req.element = "aggcounter";
  req.workload = WorkloadSpec::SmallFlows();
  std::string v1_bytes = serve::EncodeRequest(req);  // trace_id == 0: no section
  req.trace_id = 0xDEADBEEFCAFEF00DULL;
  std::string traced_bytes = serve::EncodeRequest(req);
  EXPECT_GT(traced_bytes.size(), v1_bytes.size());

  serve::InsightRequest out;
  std::string error;
  ASSERT_TRUE(serve::ParseRequest(traced_bytes, &out, &error)) << error;
  EXPECT_EQ(out.trace_id, req.trace_id);
  // A frame with no trailing section decodes exactly as before (v1 compat).
  ASSERT_TRUE(serve::ParseRequest(v1_bytes, &out, &error)) << error;
  EXPECT_EQ(out.trace_id, 0u);
  EXPECT_EQ(out.element, "aggcounter");
}

TEST(Proto, TruncatedTraceSectionRejected) {
  serve::InsightRequest req;
  req.id = 1;
  req.element = "aggcounter";
  req.workload = WorkloadSpec::SmallFlows();
  req.trace_id = 77;
  std::string bytes = serve::EncodeRequest(req);
  serve::InsightRequest out;
  std::string error;
  // Chop into the trailing section: tag present but id truncated.
  EXPECT_FALSE(serve::ParseRequest(bytes.substr(0, bytes.size() - 3), &out, &error));
  EXPECT_FALSE(error.empty());
}

TEST(Proto, BreakdownRoundTripsAndStaysOutOfTheBody) {
  serve::InsightResponse resp;
  resp.id = 3;
  resp.nf_name = "aggcounter";
  resp.rendered = "text";
  std::string body_plain = serve::EncodeResponseBody(resp);
  resp.breakdown.valid = true;
  resp.breakdown.trace_id = 55;
  resp.breakdown.cache_hit = true;
  resp.breakdown.queue_us = 10;
  resp.breakdown.parse_us = 1;
  resp.breakdown.infer_us = 200;
  resp.breakdown.analyze_us = 300;
  resp.breakdown.encode_us = 4;
  resp.breakdown.total_us = 515;
  // The cached unit is unchanged by the breakdown: cache replays stay
  // byte-equal across requests with different stage timings.
  EXPECT_EQ(serve::EncodeResponseBody(resp), body_plain);

  serve::InsightResponse out;
  std::string error;
  ASSERT_TRUE(serve::ParseResponse(serve::EncodeResponse(resp), &out, &error)) << error;
  ASSERT_TRUE(out.breakdown.valid);
  EXPECT_EQ(out.breakdown.trace_id, 55u);
  EXPECT_TRUE(out.breakdown.cache_hit);
  EXPECT_EQ(out.breakdown.infer_us, 200u);
  EXPECT_EQ(out.breakdown.total_us, 515u);

  // And a v1 response (no section) still decodes, breakdown invalid.
  resp.breakdown.valid = false;
  ASSERT_TRUE(serve::ParseResponse(serve::EncodeResponse(resp), &out, &error)) << error;
  EXPECT_FALSE(out.breakdown.valid);
}

TEST(Proto, ControlMessagesRoundTrip) {
  for (serve::ControlOp op : {serve::ControlOp::kStats, serve::ControlOp::kHealth,
                              serve::ControlOp::kDump}) {
    serve::ControlRequest req;
    req.op = op;
    serve::ControlRequest req_out;
    std::string error;
    ASSERT_TRUE(
        serve::ParseControlRequest(serve::EncodeControlRequest(req), &req_out, &error))
        << error;
    EXPECT_EQ(req_out.op, op);

    serve::ControlResponse resp;
    resp.op = op;
    resp.ok = true;
    resp.json = "{\"k\":1}";
    serve::ControlResponse resp_out;
    ASSERT_TRUE(
        serve::ParseControlResponse(serve::EncodeControlResponse(resp), &resp_out, &error))
        << error;
    EXPECT_EQ(resp_out.op, op);
    EXPECT_TRUE(resp_out.ok);
    EXPECT_EQ(resp_out.json, resp.json);
  }
}

TEST(Proto, ControlParserRejectsBadOpAndTrailingBytes) {
  serve::ControlRequest req;
  std::string bytes = serve::EncodeControlRequest(req);
  serve::ControlRequest out;
  std::string error;
  std::string bad_op = bytes;
  bad_op[2] = 9;  // op byte past kDump
  EXPECT_FALSE(serve::ParseControlRequest(bad_op, &out, &error));
  EXPECT_NE(error.find("op"), std::string::npos) << error;
  EXPECT_FALSE(serve::ParseControlRequest(bytes + "x", &out, &error));
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

TEST(Proto, PeekTypeClassifiesPayloads) {
  serve::InsightRequest req;
  req.element = "aggcounter";
  EXPECT_EQ(serve::PeekType(serve::EncodeRequest(req)), serve::MsgType::kInsightRequest);
  EXPECT_EQ(serve::PeekType(serve::EncodeResponse(serve::InsightResponse{})),
            serve::MsgType::kInsightResponse);
  EXPECT_EQ(serve::PeekType(serve::EncodeControlRequest(serve::ControlRequest{})),
            serve::MsgType::kControlRequest);
  EXPECT_EQ(serve::PeekType(serve::EncodeControlResponse(serve::ControlResponse{})),
            serve::MsgType::kControlResponse);
  EXPECT_EQ(serve::PeekType(""), serve::MsgType::kUnknown);
  EXPECT_EQ(serve::PeekType("z"), serve::MsgType::kUnknown);
  EXPECT_EQ(serve::PeekType("zz"), serve::MsgType::kUnknown);
}

TEST(Proto, FrameReaderInterleavesControlAndInsightFrames) {
  serve::InsightRequest req;
  req.id = 1;
  req.element = "aggcounter";
  req.workload = WorkloadSpec::SmallFlows();
  req.trace_id = 11;
  serve::ControlRequest ctl;
  ctl.op = serve::ControlOp::kHealth;

  std::string stream;
  serve::AppendFrame(&stream, serve::EncodeRequest(req));
  serve::AppendFrame(&stream, serve::EncodeControlRequest(ctl));
  // An oversized control-plane frame: skipped like any other oversized frame.
  uint32_t big = serve::kMaxFrameBytes + 1;
  for (int i = 0; i < 4; ++i) {
    stream.push_back(static_cast<char>((big >> (8 * i)) & 0xff));
  }
  stream.append(big, 'c');
  serve::AppendFrame(&stream, serve::EncodeControlRequest(serve::ControlRequest{}));

  serve::FrameReader reader;
  std::vector<serve::MsgType> types;
  std::string frame;
  for (size_t i = 0; i < stream.size(); i += 7) {  // uneven chunks
    reader.Feed(stream.data() + i, std::min<size_t>(7, stream.size() - i));
    while (reader.Next(&frame)) {
      types.push_back(serve::PeekType(frame));
    }
  }
  ASSERT_EQ(types.size(), 3u);
  EXPECT_EQ(types[0], serve::MsgType::kInsightRequest);
  EXPECT_EQ(types[1], serve::MsgType::kControlRequest);
  EXPECT_EQ(types[2], serve::MsgType::kControlRequest);
  EXPECT_EQ(reader.TakeOversized(), 1u);
}

// ---- engine telemetry plane ----

TEST(Engine, ResponsesCarryLatencyBreakdowns) {
  serve::ServeEngine engine(ReloadedBundle(), FastServeOptions());
  serve::InsightResponse miss = engine.Handle(ElementRequest(1, "aggcounter"));
  ASSERT_EQ(miss.error, serve::ErrorCode::kOk) << miss.error_message;
  ASSERT_TRUE(miss.breakdown.valid);
  EXPECT_FALSE(miss.breakdown.cache_hit);
  EXPECT_GT(miss.breakdown.total_us, 0u);
  EXPECT_GT(miss.breakdown.analyze_us, 0u);

  serve::InsightResponse hit = engine.Handle(ElementRequest(2, "aggcounter"));
  ASSERT_EQ(hit.error, serve::ErrorCode::kOk);
  ASSERT_TRUE(hit.breakdown.valid);
  EXPECT_TRUE(hit.breakdown.cache_hit);
  // Bodies stay byte-equal even though the breakdowns differ.
  EXPECT_EQ(serve::EncodeResponseBody(miss), serve::EncodeResponseBody(hit));
}

TEST(Engine, ControlPlaneAnswersStatsHealthDump) {
  serve::ServeEngine engine(ReloadedBundle(), FastServeOptions());
  serve::InsightResponse resp = engine.Handle(ElementRequest(1, "aggcounter"));
  ASSERT_EQ(resp.error, serve::ErrorCode::kOk) << resp.error_message;

  std::string health = engine.HealthJson();
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos) << health;
  EXPECT_NE(health.find("\"requests\":1"), std::string::npos) << health;
  EXPECT_NE(health.find("\"artifact_version\":"), std::string::npos) << health;
  EXPECT_NE(health.find("\"queue_capacity\":64"), std::string::npos) << health;

  std::string dump = engine.DumpJson();
  EXPECT_NE(dump.find("\"recorded\":1"), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"label\":\"aggcounter\""), std::string::npos) << dump;

  for (serve::ControlOp op : {serve::ControlOp::kStats, serve::ControlOp::kHealth,
                              serve::ControlOp::kDump}) {
    serve::ControlRequest creq;
    creq.op = op;
    std::string encoded = engine.HandleControl(serve::EncodeControlRequest(creq));
    serve::ControlResponse cresp;
    std::string error;
    ASSERT_TRUE(serve::ParseControlResponse(encoded, &cresp, &error)) << error;
    EXPECT_TRUE(cresp.ok) << cresp.error;
    EXPECT_EQ(cresp.op, op);
    EXPECT_FALSE(cresp.json.empty());
    EXPECT_EQ(cresp.json.front(), '{');
  }

  // An undecodable control payload gets a structured !ok answer, not a crash.
  std::string bad = engine.HandleControl("junk");
  serve::ControlResponse cresp;
  std::string error;
  ASSERT_TRUE(serve::ParseControlResponse(bad, &cresp, &error)) << error;
  EXPECT_FALSE(cresp.ok);
  EXPECT_FALSE(cresp.error.empty());
}

TEST(Engine, SloTrackerFlipsHealthToDegraded) {
  serve::ServeOptions opts = FastServeOptions();
  opts.slo_p99_us = 0.5;  // microsecond-scale: any real request busts it
  serve::ServeEngine engine(ReloadedBundle(), opts);
  serve::InsightResponse resp = engine.Handle(ElementRequest(1, "aggcounter"));
  ASSERT_EQ(resp.error, serve::ErrorCode::kOk) << resp.error_message;
  obs::SloTracker::Window w = engine.SloWindow();
  EXPECT_EQ(w.count, 1u);
  EXPECT_TRUE(w.degraded);
  EXPECT_NE(engine.HealthJson().find("\"status\":\"degraded\""), std::string::npos);
}

TEST(Engine, FlightRecorderKeepsRecentRequests) {
  serve::ServeOptions opts = FastServeOptions();
  opts.flight_capacity = 2;
  serve::ServeEngine engine(ReloadedBundle(), opts);
  engine.Handle(ElementRequest(1, "aggcounter"));
  engine.Handle(ElementRequest(2, "aggcounter"));
  engine.Handle(ElementRequest(3, "nosuchelement"));  // error outcome recorded too
  const obs::FlightRecorder& flight = engine.flight();
  EXPECT_EQ(flight.recorded(), 3u);
  std::vector<obs::FlightRecord> recent = flight.Snapshot();
  ASSERT_EQ(recent.size(), 2u);  // capacity bounds the ring
  EXPECT_EQ(recent[0].id, 2u);
  EXPECT_EQ(recent[1].id, 3u);
  EXPECT_EQ(recent[1].outcome, static_cast<uint8_t>(serve::ErrorCode::kUnknownElement));
  EXPECT_TRUE(recent[0].cache_hit);
}

TEST(Engine, TraceSinkReceivesNestedRequestSpans) {
  obs::TraceSink sink;
  obs::SetGlobalTrace(&sink);
  serve::ServeEngine engine(ReloadedBundle(), FastServeOptions());
  serve::InsightRequest req = ElementRequest(1, "aggcounter");
  req.trace_id = 4242;
  serve::InsightResponse resp = engine.Handle(std::move(req));
  obs::SetGlobalTrace(nullptr);
  ASSERT_EQ(resp.error, serve::ErrorCode::kOk) << resp.error_message;
  EXPECT_EQ(resp.breakdown.trace_id, 4242u);

  const obs::TraceEvent* root = nullptr;
  std::vector<const obs::TraceEvent*> children;
  std::vector<obs::TraceEvent> events = sink.Events();
  for (const obs::TraceEvent& e : events) {
    if (e.trace_id != 4242) {
      continue;
    }
    if (e.name == "serve.request") {
      root = &e;
    } else {
      children.push_back(&e);
    }
  }
  ASSERT_NE(root, nullptr);
  ASSERT_GE(children.size(), 3u);  // queue_wait + parse + analyze + encode
  bool saw_queue_wait = false;
  for (const obs::TraceEvent* c : children) {
    saw_queue_wait |= c->name == "serve.queue_wait";
    EXPECT_EQ(c->tid, root->tid) << c->name;
    // Children nest inside the root interval (1us slack for clock rounding).
    EXPECT_GE(c->ts_us + 1, root->ts_us) << c->name;
    EXPECT_LE(c->ts_us + c->dur_us, root->ts_us + root->dur_us + 1) << c->name;
  }
  EXPECT_TRUE(saw_queue_wait);
}

TEST(Engine, ServerAssignsTraceIdsWhenSinkIsLive) {
  obs::TraceSink sink;
  obs::SetGlobalTrace(&sink);
  serve::ServeEngine engine(ReloadedBundle(), FastServeOptions());
  serve::InsightResponse a = engine.Handle(ElementRequest(1, "aggcounter"));
  serve::InsightResponse b = engine.Handle(ElementRequest(2, "aggcounter"));
  obs::SetGlobalTrace(nullptr);
  ASSERT_EQ(a.error, serve::ErrorCode::kOk);
  ASSERT_EQ(b.error, serve::ErrorCode::kOk);
  EXPECT_NE(a.breakdown.trace_id, 0u);
  EXPECT_NE(b.breakdown.trace_id, 0u);
  EXPECT_NE(a.breakdown.trace_id, b.breakdown.trace_id);
}

// ---- wire extensions: priority + retry hints ----

TEST(Proto, PriorityRoundTripsAndZeroIsOmitted) {
  serve::InsightRequest req;
  req.id = 5;
  req.element = "aggcounter";
  req.workload = WorkloadSpec::SmallFlows();
  std::string v1_bytes = serve::EncodeRequest(req);  // priority 0: no section
  req.priority = 7;
  std::string prioritized = serve::EncodeRequest(req);
  EXPECT_GT(prioritized.size(), v1_bytes.size());

  serve::InsightRequest out;
  std::string error;
  ASSERT_TRUE(serve::ParseRequest(prioritized, &out, &error)) << error;
  EXPECT_EQ(out.priority, 7);
  ASSERT_TRUE(serve::ParseRequest(v1_bytes, &out, &error)) << error;
  EXPECT_EQ(out.priority, 0);

  // Trace + priority sections coexist on one frame.
  req.trace_id = 99;
  ASSERT_TRUE(serve::ParseRequest(serve::EncodeRequest(req), &out, &error)) << error;
  EXPECT_EQ(out.trace_id, 99u);
  EXPECT_EQ(out.priority, 7);
}

TEST(Proto, RetryAfterRoundTripsAndStaysOutOfTheBody) {
  serve::InsightResponse resp;
  resp.id = 4;
  resp.error = serve::ErrorCode::kQueueFull;
  resp.error_message = "busy";
  std::string body_plain = serve::EncodeResponseBody(resp);
  resp.retry_after_ms = 250;
  // The hint is per-delivery advice, never part of the cached answer bytes.
  EXPECT_EQ(serve::EncodeResponseBody(resp), body_plain);

  serve::InsightResponse out;
  std::string error;
  ASSERT_TRUE(serve::ParseResponse(serve::EncodeResponse(resp), &out, &error)) << error;
  EXPECT_EQ(out.retry_after_ms, 250u);
  resp.retry_after_ms = 0;  // zero hint: section omitted, v1 decode
  ASSERT_TRUE(serve::ParseResponse(serve::EncodeResponse(resp), &out, &error)) << error;
  EXPECT_EQ(out.retry_after_ms, 0u);

  // Breakdown + retry sections coexist; a duplicated section is rejected.
  resp.retry_after_ms = 10;
  resp.breakdown.valid = true;
  resp.breakdown.total_us = 5;
  std::string both = serve::EncodeResponse(resp);
  ASSERT_TRUE(serve::ParseResponse(both, &out, &error)) << error;
  EXPECT_TRUE(out.breakdown.valid);
  EXPECT_EQ(out.retry_after_ms, 10u);
  std::string doubled = both;
  doubled.append(both.end() - 6, both.end());  // second retry section (tag+u32)
  EXPECT_FALSE(serve::ParseResponse(doubled, &out, &error));
  EXPECT_NE(error.find("section"), std::string::npos) << error;
}

TEST(Proto, SheddedErrorsAreRetryable) {
  EXPECT_TRUE(serve::IsRetryable(serve::ErrorCode::kShedded));
  EXPECT_TRUE(serve::IsRetryable(serve::ErrorCode::kQueueFull));
  EXPECT_TRUE(serve::IsRetryable(serve::ErrorCode::kShutdown));
  EXPECT_FALSE(serve::IsRetryable(serve::ErrorCode::kBadRequest));
  EXPECT_FALSE(serve::IsRetryable(serve::ErrorCode::kUnknownElement));
  EXPECT_NE(std::string(serve::ErrorCodeName(serve::ErrorCode::kShedded)), "?");
}

TEST(Proto, ReloadControlOpRoundTrips) {
  serve::ControlRequest req;
  req.op = serve::ControlOp::kReload;
  serve::ControlRequest out;
  std::string error;
  ASSERT_TRUE(serve::ParseControlRequest(serve::EncodeControlRequest(req), &out, &error))
      << error;
  EXPECT_EQ(out.op, serve::ControlOp::kReload);
}

// ---- brownout policy (fake clock) ----

TEST(Brownout, EntersOnDegradedWindowAndExitsWithHysteresis) {
  serve::BrownoutPolicy::Options opts;
  opts.enter_threshold_us = 1000;
  opts.exit_margin = 0.8;  // exit bar: p99 < 800us ...
  opts.exit_hold_us = 1000;  // ... sustained for 1ms of fake time
  serve::BrownoutPolicy policy(opts);

  EXPECT_FALSE(policy.Update(/*now_us=*/0, /*p99_us=*/500, /*count=*/10));
  EXPECT_TRUE(policy.Update(10, 1500, 10));  // over threshold: enter
  EXPECT_EQ(policy.entered(), 1u);

  // Calm-but-above-exit-bar readings must NOT exit (hysteresis band).
  EXPECT_TRUE(policy.Update(20, 900, 10));
  // Below the bar, but not yet sustained for exit_hold_us.
  EXPECT_TRUE(policy.Update(100, 700, 10));
  EXPECT_TRUE(policy.Update(600, 700, 10));
  // A spike resets the calm streak.
  EXPECT_TRUE(policy.Update(900, 950, 10));
  EXPECT_TRUE(policy.Update(1000, 700, 10));
  EXPECT_TRUE(policy.Update(1500, 700, 10));  // only 500us of calm so far
  EXPECT_FALSE(policy.Update(2100, 700, 10));  // 1100us >= hold: exit
  EXPECT_EQ(policy.exited(), 1u);
}

TEST(Brownout, EmptyWindowsNeverTransition) {
  serve::BrownoutPolicy::Options opts;
  opts.enter_threshold_us = 1000;
  opts.exit_hold_us = 100;
  serve::BrownoutPolicy policy(opts);
  // No samples: huge p99 values are vacuous, no entry.
  EXPECT_FALSE(policy.Update(0, 1e9, 0));
  EXPECT_TRUE(policy.Update(10, 2000, 1));
  // No samples while active: no evidence of calm either, stays active.
  EXPECT_TRUE(policy.Update(10000, 0, 0));
  EXPECT_TRUE(policy.Update(20000, 0, 0));
}

TEST(Brownout, ZeroThresholdDisablesThePolicy) {
  serve::BrownoutPolicy policy(serve::BrownoutPolicy::Options{});  // threshold 0
  EXPECT_FALSE(policy.Update(0, 1e9, 1000));
  EXPECT_EQ(policy.entered(), 0u);
}

// ---- client retry schedule (seeded jitter) ----

TEST(Retry, DelaysStayInTheEqualJitterBand) {
  serve::RetryPolicy::Options opts;
  opts.max_attempts = 6;
  opts.base_ms = 25;
  opts.max_ms = 2000;
  opts.jitter_seed = 7;
  serve::RetryPolicy policy(opts);
  for (int attempt = 0; attempt < 10; ++attempt) {
    uint64_t full = std::min<uint64_t>(
        static_cast<uint64_t>(opts.base_ms) << attempt, opts.max_ms);
    uint32_t delay = policy.NextDelayMs(attempt, /*retry_after_ms=*/0);
    EXPECT_GE(delay, full / 2) << "attempt " << attempt;
    EXPECT_LE(delay, full) << "attempt " << attempt;
  }
  EXPECT_TRUE(policy.ShouldRetry(5));
  EXPECT_FALSE(policy.ShouldRetry(6));
}

TEST(Retry, ServerHintIsAFloorAndScheduleIsDeterministic) {
  serve::RetryPolicy::Options opts;
  opts.max_attempts = 3;
  opts.jitter_seed = 11;
  serve::RetryPolicy a(opts);
  serve::RetryPolicy b(opts);
  // Same seed, same sequence.
  for (int attempt = 0; attempt < 5; ++attempt) {
    EXPECT_EQ(a.NextDelayMs(attempt, 0), b.NextDelayMs(attempt, 0));
  }
  // A server hint larger than the whole backoff window wins outright.
  EXPECT_GE(a.NextDelayMs(0, 5000), 5000u);
  // max_attempts=0 means fail fast.
  serve::RetryPolicy none((serve::RetryPolicy::Options()));
  EXPECT_FALSE(none.ShouldRetry(0));
}

// ---- hot reload ----

TEST(Engine, ReloadSwapsSnapshotBumpsVersionAndClearsCache) {
  serve::ServeEngine engine(ReloadedBundle(), FastServeOptions());
  EXPECT_EQ(engine.artifact_version(), 1u);
  serve::InsightResponse before = engine.Handle(ElementRequest(1, "aggcounter"));
  ASSERT_EQ(before.error, serve::ErrorCode::kOk) << before.error_message;
  EXPECT_EQ(engine.cache_entries(), 1u);

  std::string why;
  ASSERT_TRUE(engine.Reload(ReloadedBundle(), &why)) << why;
  EXPECT_EQ(engine.artifact_version(), 2u);
  EXPECT_EQ(engine.reloads_ok(), 1u);
  // The response cache is keyed by model generation: a swap empties it so no
  // stale answer can outlive the artifact that produced it.
  EXPECT_EQ(engine.cache_entries(), 0u);
  EXPECT_NE(engine.HealthJson().find("\"artifact_version\":2"), std::string::npos);
  EXPECT_NE(engine.StatsJson().find("\"artifact_version\":2"), std::string::npos);

  // Identical bundle ⇒ identical answers across the swap.
  serve::InsightResponse after = engine.Handle(ElementRequest(2, "aggcounter"));
  ASSERT_EQ(after.error, serve::ErrorCode::kOk) << after.error_message;
  EXPECT_EQ(serve::EncodeResponseBody(before), serve::EncodeResponseBody(after));
}

TEST(Engine, RejectedReloadKeepsTheOldModelServing) {
  serve::ServeEngine engine(ReloadedBundle(), FastServeOptions());
  std::string why;
  TrainedBundle untrained;
  EXPECT_FALSE(engine.Reload(std::move(untrained), &why));
  EXPECT_FALSE(why.empty());
  EXPECT_EQ(engine.artifact_version(), 1u);
  EXPECT_EQ(engine.reloads_rejected(), 1u);

  // Corrupt bytes on disk: rejected at load, old model keeps serving.
  std::string path = testing::TempDir() + "/clara_corrupt_bundle.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a bundle", f);
    std::fclose(f);
  }
  EXPECT_FALSE(engine.ReloadFromFile(path, &why));
  EXPECT_EQ(engine.reloads_rejected(), 2u);
  EXPECT_EQ(engine.artifact_version(), 1u);
  std::remove(path.c_str());

  serve::InsightResponse resp = engine.Handle(ElementRequest(1, "aggcounter"));
  EXPECT_EQ(resp.error, serve::ErrorCode::kOk) << resp.error_message;
}

// ---- brownout end-to-end (engine) ----

TEST(Engine, BrownoutShedsOnlyLowPriorityCacheMisses) {
  serve::ServeOptions opts = FastServeOptions();
  opts.slo_p99_us = 0.5;  // every real request busts the SLO: brownout is
                          // inevitable once the dispatcher samples a window
  serve::ServeEngine engine(ReloadedBundle(), opts);
  engine.Start();
  // Seed the cache and the SLO window with one request.
  serve::InsightResponse warm = engine.Submit(ElementRequest(1, "aggcounter")).get();
  ASSERT_EQ(warm.error, serve::ErrorCode::kOk) << warm.error_message;
  // The dispatcher evaluates brownout at most every ~100ms; wait for entry.
  bool active = false;
  for (int i = 0; i < 100 && !active; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    active = engine.brownout_active();
  }
  ASSERT_TRUE(active) << "brownout never engaged";

  // Priority-0 cache miss: shed with a structured error and a retry hint.
  serve::InsightResponse shed = engine.Submit(ElementRequest(2, "heavyhitter")).get();
  EXPECT_EQ(shed.error, serve::ErrorCode::kShedded) << shed.error_message;
  EXPECT_GT(shed.retry_after_ms, 0u);

  // Cache hits still serve under brownout (they are nearly free).
  serve::InsightResponse hit = engine.Submit(ElementRequest(3, "aggcounter")).get();
  EXPECT_EQ(hit.error, serve::ErrorCode::kOk) << hit.error_message;
  EXPECT_GE(engine.shedded(), 1u);

  // Higher-priority work rides through the brownout.
  serve::InsightRequest vip = ElementRequest(4, "heavyhitter");
  vip.priority = 5;
  serve::InsightResponse vip_resp = engine.Submit(std::move(vip)).get();
  EXPECT_EQ(vip_resp.error, serve::ErrorCode::kOk) << vip_resp.error_message;
  engine.Stop();
}

// ---- shutdown drain race ----

TEST(Engine, SubmitRacingStopNeverStrandsAPromise) {
  // Regression for the Submit-vs-Stop race: a request submitted while Stop()
  // drains must get kShutdown (or a normal answer), never a broken promise.
  for (int round = 0; round < 8; ++round) {
    serve::ServeEngine engine(ReloadedBundle(), FastServeOptions());
    engine.Start();
    std::vector<std::future<serve::InsightResponse>> futures;
    std::thread submitter([&] {
      for (uint64_t i = 0; i < 16; ++i) {
        futures.push_back(engine.Submit(ElementRequest(i + 1, "nosuchelement")));
      }
    });
    std::this_thread::sleep_for(std::chrono::microseconds(100 * round));
    engine.Stop();
    submitter.join();
    for (auto& fut : futures) {
      ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)), std::future_status::ready);
      serve::ErrorCode code = fut.get().error;
      EXPECT_TRUE(code == serve::ErrorCode::kUnknownElement ||
                  code == serve::ErrorCode::kShutdown ||
                  code == serve::ErrorCode::kQueueFull)
          << static_cast<int>(code);
    }
  }
}

TEST(Engine, StopAnswersQueuedRequestsWithShutdown) {
  serve::ServeOptions opts = FastServeOptions();
  serve::ServeEngine engine(ReloadedBundle(), opts);
  std::future<serve::InsightResponse> fut = engine.Submit(ElementRequest(1, "aggcounter"));
  engine.Start();
  engine.Stop();
  // Either the dispatcher got to it before Stop (kOk) or Stop drained it
  // (kShutdown) — never a hang or a broken promise.
  serve::ErrorCode code = fut.get().error;
  EXPECT_TRUE(code == serve::ErrorCode::kOk || code == serve::ErrorCode::kShutdown);
}

}  // namespace
}  // namespace clara
