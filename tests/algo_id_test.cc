// Algorithm identification (§4.1): SPE features + SVM must recognize CRC,
// LPM, and AES implementations — including the real elements, which were not
// in the training corpus.
#include "src/core/algo_id.h"

#include <gtest/gtest.h>

#include "src/elements/elements.h"
#include "src/lang/lower.h"
#include "src/ml/metrics.h"

namespace clara {
namespace {

class AlgoIdFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    identifier_ = new AlgorithmIdentifier();
    identifier_->Train(BuildAlgorithmCorpus(30, 2024));
  }
  static void TearDownTestSuite() {
    delete identifier_;
    identifier_ = nullptr;
  }

  static AccelClass ClassifyProgram(Program p) {
    LowerResult lr = LowerProgram(p);
    EXPECT_TRUE(lr.ok);
    return identifier_->Classify(lr.module);
  }

  static AlgorithmIdentifier* identifier_;
};

AlgorithmIdentifier* AlgoIdFixture::identifier_ = nullptr;

TEST_F(AlgoIdFixture, MinesPatterns) {
  EXPECT_TRUE(identifier_->trained());
  EXPECT_GT(identifier_->feature_names().size(), 10u);
  // Manual features are always appended.
  bool has_pointer_chase = false;
  for (const auto& name : identifier_->feature_names()) {
    has_pointer_chase |= name == "pointer-chase";
  }
  EXPECT_TRUE(has_pointer_chase);
}

TEST_F(AlgoIdFixture, HighTrainAccuracy) {
  const TabularDataset& d = identifier_->dataset();
  ASSERT_GT(d.size(), 0u);
  // Evaluate on held-out variants (fresh seed).
  auto held_out = BuildAlgorithmCorpus(12, 777);
  std::vector<int> truth;
  std::vector<int> pred;
  for (const auto& lp : held_out) {
    Program copy = CloneProgram(lp.program);
    LowerResult lr = LowerProgram(copy);
    ASSERT_TRUE(lr.ok);
    truth.push_back(static_cast<int>(lp.label));
    pred.push_back(static_cast<int>(identifier_->Classify(lr.module)));
  }
  auto pr = MultiClassPrecisionRecall(truth, pred, static_cast<int>(AccelClass::kNone));
  EXPECT_GT(pr.precision, 0.8);
  EXPECT_GT(pr.recall, 0.7);
}

TEST_F(AlgoIdFixture, RecognizesWepDecapAsCrc) {
  // Paper §5.3: CRC opportunities in 'rc4'/wepdecap.
  EXPECT_EQ(ClassifyProgram(MakeWepDecap(false)), AccelClass::kCrc);
}

TEST_F(AlgoIdFixture, RecognizesIpLookupAsLpm) {
  // Paper §5.3: LPM accelerator for radixiplookup.
  EXPECT_EQ(ClassifyProgram(MakeIpLookup()), AccelClass::kLpm);
}

TEST_F(AlgoIdFixture, PlainElementsAreNone) {
  EXPECT_EQ(ClassifyProgram(MakeTcpAck()), AccelClass::kNone);
  EXPECT_EQ(ClassifyProgram(MakeAggCounter()), AccelClass::kNone);
  EXPECT_EQ(ClassifyProgram(MakeTimeFilter()), AccelClass::kNone);
}

TEST(ManualFeatureTest, CrcIsBitwiseDense) {
  Program crc = MakeWepDecap(false);
  Program plain = MakeUdpIpEncap();
  LowerResult l1 = LowerProgram(crc);
  LowerResult l2 = LowerProgram(plain);
  FeatureVec f1 = ManualFeatures(l1.module);
  FeatureVec f2 = ManualFeatures(l2.module);
  EXPECT_GT(f1[0], f2[0]);  // bitwise density
}

TEST(ManualFeatureTest, LpmHasPointerChase) {
  Program lpm = MakeIpLookup();
  LowerResult lr = LowerProgram(lpm);
  FeatureVec f = ManualFeatures(lr.module);
  EXPECT_GT(f[3], 0.0);  // pointer-chase score
  Program counter = MakeAggCounter();
  LowerResult lc = LowerProgram(counter);
  EXPECT_DOUBLE_EQ(ManualFeatures(lc.module)[3], 0.0);
}

TEST(OpcodeTokenTest, TracksSpaces) {
  Program p = MakeAggCounter();
  LowerResult lr = LowerProgram(p);
  auto tokens = OpcodeTokens(lr.module);
  bool saw_state_load = false;
  bool saw_pkt_load = false;
  for (const auto& t : tokens) {
    saw_state_load |= t.rfind("load.state", 0) == 0;
    saw_pkt_load |= t.rfind("load.pkt", 0) == 0;
  }
  EXPECT_TRUE(saw_state_load);
  EXPECT_TRUE(saw_pkt_load);
}

}  // namespace
}  // namespace clara
