// Tests for the telemetry subsystem (src/obs): registry concurrency,
// histogram quantile correctness against known distributions, trace JSON
// well-formedness, bottleneck ledger bookkeeping, and the disabled path.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/bottleneck.h"
#include "src/obs/export.h"
#include "src/obs/flight.h"
#include "src/obs/json_util.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/slo.h"
#include "src/obs/trace.h"

namespace clara {
namespace obs {
namespace {

// ---- Registry ----

TEST(MetricsRegistry, CounterGaugeBasics) {
  MetricsRegistry reg;
  reg.GetCounter("a.b.c").Add(3);
  reg.GetCounter("a.b.c").Add(2);
  EXPECT_EQ(reg.GetCounter("a.b.c").value(), 5u);

  reg.GetGauge("a.b.g").Set(1.5);
  reg.GetGauge("a.b.g").Set(2.5);
  EXPECT_DOUBLE_EQ(reg.GetGauge("a.b.g").value(), 2.5);
  EXPECT_EQ(reg.size(), 2u);

  reg.Reset();
  EXPECT_EQ(reg.GetCounter("a.b.c").value(), 0u);
  EXPECT_EQ(reg.size(), 2u);  // registrations survive Reset
  reg.Clear();
  EXPECT_EQ(reg.size(), 0u);
}

TEST(MetricsRegistry, HandlesAreStable) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("stable");
  // Force rebalancing of the underlying map with many registrations.
  for (int i = 0; i < 1000; ++i) {
    reg.GetCounter("churn." + std::to_string(i)).Add(1);
  }
  c.Add(7);
  EXPECT_EQ(reg.GetCounter("stable").value(), 7u);
  EXPECT_EQ(&c, &reg.GetCounter("stable"));
}

TEST(MetricsRegistry, ConcurrentCountersSumExactly) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      // Half the threads hammer a shared counter, all race registration.
      Counter& shared = reg.GetCounter("concurrent.shared");
      Counter& own = reg.GetCounter("concurrent.t" + std::to_string(t));
      for (int i = 0; i < kIncrements; ++i) {
        shared.Add(1);
        own.Add(1);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(reg.GetCounter("concurrent.shared").value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.GetCounter("concurrent.t" + std::to_string(t)).value(),
              static_cast<uint64_t>(kIncrements));
  }
}

TEST(MetricsRegistry, ConcurrentHistogramObservations) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("concurrent.h", Histogram::LinearBuckets(1, 1, 100));
  constexpr int kThreads = 6;
  constexpr int kObs = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kObs; ++i) {
        h.Observe((i % 100) + 0.5);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kObs);
  uint64_t bucket_total = 0;
  for (uint64_t b : h.BucketCounts()) {
    bucket_total += b;
  }
  EXPECT_EQ(bucket_total, h.count());
  EXPECT_NEAR(h.sum(), kThreads * kObs * 50.0, kThreads * kObs * 0.01);
}

// ---- Histogram quantiles ----

TEST(Histogram, QuantilesOfUniformDistribution) {
  // 1..1000 against unit-width buckets: quantiles should be near-exact.
  Histogram h(Histogram::LinearBuckets(1, 1, 1000));
  for (int i = 1; i <= 1000; ++i) {
    h.Observe(i);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 1);
  EXPECT_DOUBLE_EQ(h.max(), 1000);
  EXPECT_NEAR(h.Quantile(0.50), 500, 2.0);
  EXPECT_NEAR(h.Quantile(0.95), 950, 2.0);
  EXPECT_NEAR(h.Quantile(0.99), 990, 2.0);
  EXPECT_NEAR(h.mean(), 500.5, 1e-9);
}

TEST(Histogram, QuantilesInterpolateWithinBucket) {
  // One wide bucket [0, 100]: with 100 uniform samples the estimator must
  // interpolate, not snap to a bound.
  Histogram h({100.0});
  for (int i = 1; i <= 100; ++i) {
    h.Observe(i);
  }
  double p50 = h.Quantile(0.5);
  EXPECT_GT(p50, 25.0);
  EXPECT_LT(p50, 75.0);
}

TEST(Histogram, QuantilesNeverExceedObservedRange) {
  // Sparse samples deep inside exponential buckets: p95/p99 must stay
  // within [min, max] even when the containing bucket is much wider.
  Histogram h(Histogram::ExponentialBuckets(0.001, 2, 40));
  h.Observe(0.1);
  h.Observe(0.12);
  h.Observe(1.1);
  for (double q : {0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_GE(h.Quantile(q), h.min()) << "q=" << q;
    EXPECT_LE(h.Quantile(q), h.max()) << "q=" << q;
  }
}

TEST(Histogram, ExactBoundGoesToLowerBucket) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(2.0);  // v <= bounds[i] semantics: lands in the [1,2] bucket
  std::vector<uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[1], 1u);
}

TEST(Histogram, OverflowBucketAndEmpty) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.Quantile(0.5), 0);  // empty histogram
  h.Observe(50.0);
  std::vector<uint64_t> counts = h.BucketCounts();
  EXPECT_EQ(counts.back(), 1u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 50.0);  // min==max tightens overflow
}

TEST(Histogram, BucketGenerators) {
  std::vector<double> lin = Histogram::LinearBuckets(2, 3, 4);
  EXPECT_EQ(lin, (std::vector<double>{2, 5, 8, 11}));
  std::vector<double> exp = Histogram::ExponentialBuckets(1, 2, 4);
  EXPECT_EQ(exp, (std::vector<double>{1, 2, 4, 8}));
}

// ---- Trace sink ----

TEST(TraceSink, ChromeJsonIsWellFormed) {
  TraceSink sink;
  sink.AddComplete("stage.one", "pipeline", 10, 25);
  sink.AddCounter("loss", 0.125);
  sink.AddInstant("marker \"quoted\"", "cli");
  std::string json = sink.ToChromeJson();
  while (!json.empty() && json.back() == '\n') {
    json.pop_back();
  }

  // Structural checks a JSON parser would enforce.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":25"), std::string::npos);
  // Quotes inside names must be escaped.
  EXPECT_NE(json.find("marker \\\"quoted\\\""), std::string::npos);
  EXPECT_EQ(json.find("marker \"quoted\""), std::string::npos);
  // Balanced braces/brackets (no nesting beyond events, so counting works).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TraceSink, JsonlHasOneObjectPerLine) {
  TraceSink sink;
  sink.AddComplete("a", "c", 0, 1);
  sink.AddComplete("b", "c", 1, 2);
  std::string jsonl = sink.ToJsonl();
  size_t lines = static_cast<size_t>(std::count(jsonl.begin(), jsonl.end(), '\n'));
  EXPECT_EQ(lines, 2u);
  for (size_t start = 0; start < jsonl.size();) {
    size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    std::string line = jsonl.substr(start, end - start);
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    start = end + 1;
  }
}

TEST(TraceSink, ScopedSpanRecordsDuration) {
  TraceSink sink;
  SetGlobalTrace(&sink);
  {
    ScopedSpan span("unit.span", "test");
  }
  SetGlobalTrace(nullptr);
  std::vector<TraceEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unit.span");
  EXPECT_EQ(events[0].ph, 'X');
  EXPECT_GE(events[0].dur_us, 0);
}

TEST(TraceSink, NoSinkMeansNoCollection) {
  SetGlobalTrace(nullptr);
  {
    ScopedSpan span("dropped", "test");
    TraceCounter("dropped.counter", 1.0);
    CLARA_TRACE_SPAN("dropped.macro", "test");
  }
  TraceSink sink;
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(GlobalTrace(), nullptr);
}

TEST(TraceSink, ConcurrentWritersKeepAllEvents) {
  TraceSink sink;
  constexpr int kThreads = 4;
  constexpr int kEvents = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink] {
      for (int i = 0; i < kEvents; ++i) {
        sink.AddComplete("span", "t", i, 1);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(sink.size(), static_cast<size_t>(kThreads) * kEvents);
}

// ---- JSON helpers ----

TEST(JsonUtil, EscapesControlAndSpecialChars) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonNumber(1.5), "1.5");
  EXPECT_EQ(JsonNumber(std::nan("")), "0");
}

// ---- Enabled flag ----

TEST(ObsEnabled, DefaultsOffAndScopes) {
  EXPECT_FALSE(Enabled());
  {
    EnabledScope scope(true);
    EXPECT_TRUE(Enabled());
  }
  EXPECT_FALSE(Enabled());
}

// ---- Bottleneck ledger ----

TEST(BottleneckLedger, KeepsLatestPerNf) {
  BottleneckLedger ledger;
  BottleneckRecord r;
  r.nf = "fw";
  r.bound_resource = "EMEM";
  r.bound_rho = 0.8;
  ledger.Record(r);
  r.bound_resource = "cores";
  r.bound_rho = 0.95;
  ledger.Record(r);

  BottleneckRecord latest;
  ASSERT_TRUE(ledger.LatestFor("fw", &latest));
  EXPECT_EQ(latest.bound_resource, "cores");
  EXPECT_EQ(ledger.total_records(), 2u);
  EXPECT_EQ(ledger.Latest().size(), 1u);
  EXPECT_FALSE(ledger.LatestFor("missing", &latest));
}

TEST(BottleneckLedger, EvictsOldestBeyondCapacity) {
  BottleneckLedger ledger;
  BottleneckRecord r;
  for (int i = 0; i < 600; ++i) {  // capacity is 512 distinct NFs
    r.nf = "nf" + std::to_string(i);
    ledger.Record(r);
  }
  EXPECT_LE(ledger.Latest().size(), 512u);
  BottleneckRecord out;
  EXPECT_FALSE(ledger.LatestFor("nf0", &out));   // evicted
  EXPECT_TRUE(ledger.LatestFor("nf599", &out));  // newest kept
}

TEST(BottleneckRecord, RenderMarksBindingResource) {
  BottleneckRecord r;
  r.nf = "nat";
  r.cores = 12;
  r.throughput_mpps = 30;
  r.latency_us = 2;
  r.bound_resource = "EMEM";
  r.bound_rho = 0.91;
  r.utils.push_back({"EMEM", 0.91, 600});
  r.utils.push_back({"cores", 0.4, 0});
  std::string text = r.ToString();
  EXPECT_NE(text.find("EMEM"), std::string::npos);
  EXPECT_NE(text.find("<-- binds"), std::string::npos);
  std::string json = r.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"bound_resource\":\"EMEM\""), std::string::npos);
}

// ---- Registry render/JSON ----

TEST(MetricsRegistry, RenderAndJsonContainAllMetrics) {
  MetricsRegistry reg;
  reg.GetCounter("x.count").Add(4);
  reg.GetGauge("x.gauge").Set(2.25);
  reg.GetHistogram("x.hist", {1.0, 10.0}).Observe(3);
  std::string text = reg.Render();
  EXPECT_NE(text.find("x.count"), std::string::npos);
  EXPECT_NE(text.find("x.gauge"), std::string::npos);
  EXPECT_NE(text.find("x.hist"), std::string::npos);
  std::string json = reg.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"x.hist\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

// ---- Gauge atomic increments ----

TEST(Gauge, AddSubAreAtomicIncrements) {
  MetricsRegistry reg;
  Gauge& g = reg.GetGauge("depth");
  g.Add(3);
  g.Add();  // default +1
  g.Sub();  // default -1
  g.Sub(2);
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
}

TEST(Gauge, ConcurrentAddSubNetsToZero) {
  MetricsRegistry reg;
  Gauge& g = reg.GetGauge("queue.depth");
  constexpr int kThreads = 8;
  constexpr int kOps = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kOps; ++i) {
        g.Add(1);
        g.Sub(1);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // Read-modify-Set() would lose updates here; CAS-based Add/Sub must not.
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

// ---- SLO tracker ----

TEST(SloTracker, QuantilesAndRatesOverOneWindow) {
  SloTracker::Options opts;
  opts.window_us = 1000000;  // 1 s window, 10 slices
  opts.slices = 10;
  SloTracker slo(opts);
  for (int i = 1; i <= 100; ++i) {
    // Latencies 1..100us, every 10th an error, every 20th an overrun.
    slo.Record(i * 1000, static_cast<double>(i), i % 10 == 0, i % 20 == 0);
  }
  SloTracker::Window w = slo.Snapshot(100 * 1000);
  EXPECT_EQ(w.count, 100u);
  EXPECT_EQ(w.errors, 10u);
  EXPECT_EQ(w.overruns, 5u);
  EXPECT_DOUBLE_EQ(w.error_rate, 0.1);
  EXPECT_DOUBLE_EQ(w.overrun_rate, 0.05);
  EXPECT_DOUBLE_EQ(w.max_us, 100.0);
  // Exponential buckets: coarse but ordered and within the observed range.
  EXPECT_GT(w.p50_us, 0.0);
  EXPECT_LE(w.p50_us, w.p90_us);
  EXPECT_LE(w.p90_us, w.p99_us);
  EXPECT_LE(w.p99_us, w.max_us);
  EXPECT_FALSE(w.degraded);  // no threshold configured
}

TEST(SloTracker, OldSamplesAgeOutOfTheWindow) {
  SloTracker::Options opts;
  opts.window_us = 1000000;
  opts.slices = 10;
  SloTracker slo(opts);
  for (int i = 0; i < 50; ++i) {
    slo.Record(1000, 10.0, true, false);  // a burst of errors at t=1ms
  }
  SloTracker::Window during = slo.Snapshot(2000);
  EXPECT_EQ(during.count, 50u);
  EXPECT_DOUBLE_EQ(during.error_rate, 1.0);
  // Two full windows later the burst has aged out entirely.
  SloTracker::Window after = slo.Snapshot(3000000);
  EXPECT_EQ(after.count, 0u);
  EXPECT_DOUBLE_EQ(after.error_rate, 0.0);
  EXPECT_DOUBLE_EQ(after.p99_us, 0.0);
}

TEST(SloTracker, DegradedTracksTheP99Threshold) {
  SloTracker::Options opts;
  opts.window_us = 1000000;
  opts.slices = 4;
  opts.p99_threshold_us = 100;
  SloTracker slo(opts);
  slo.Record(1000, 10.0, false, false);
  EXPECT_FALSE(slo.Snapshot(2000).degraded);
  for (int i = 0; i < 100; ++i) {
    slo.Record(3000, 5000.0, false, false);  // sustained 5ms latencies
  }
  SloTracker::Window w = slo.Snapshot(4000);
  EXPECT_GT(w.p99_us, 100.0);
  EXPECT_TRUE(w.degraded);
  // An empty window is never degraded, whatever the threshold.
  EXPECT_FALSE(slo.Snapshot(5000000).degraded);
}

TEST(SloTracker, ExportGaugesPublishesServeSloMetrics) {
  SloTracker::Options opts;
  opts.p99_threshold_us = 1;
  SloTracker slo(opts);
  slo.Record(1000, 500.0, false, false);
  slo.ExportGauges(2000);
  MetricsRegistry& reg = MetricsRegistry::Global();
  EXPECT_DOUBLE_EQ(reg.GetGauge("serve.slo.window_requests").value(), 1.0);
  EXPECT_GT(reg.GetGauge("serve.slo.p99_us").value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.GetGauge("serve.slo.degraded").value(), 1.0);
}

// ---- flight recorder ----

TEST(FlightRecorder, SnapshotIsOldestFirstAndBounded) {
  FlightRecorder flight(3);
  for (uint64_t i = 1; i <= 5; ++i) {
    FlightRecord rec;
    rec.id = i;
    rec.label = "req" + std::to_string(i);
    flight.Record(std::move(rec));
  }
  EXPECT_EQ(flight.size(), 3u);
  EXPECT_EQ(flight.recorded(), 5u);
  std::vector<FlightRecord> recent = flight.Snapshot();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].id, 3u);  // 1 and 2 were overwritten
  EXPECT_EQ(recent[2].id, 5u);

  flight.Clear();
  EXPECT_EQ(flight.size(), 0u);
  EXPECT_TRUE(flight.Snapshot().empty());
}

TEST(FlightRecorder, ToJsonIsWellFormed) {
  FlightRecorder flight(4);
  FlightRecord rec;
  rec.id = 7;
  rec.trace_id = 99;
  rec.label = "agg\"counter";  // must be escaped
  rec.outcome = 4;
  rec.cache_hit = true;
  rec.total_us = 123;
  flight.Record(std::move(rec));
  std::string json = flight.ToJson();
  EXPECT_NE(json.find("\"capacity\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"recorded\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"trace_id\":99"), std::string::npos) << json;
  EXPECT_NE(json.find("agg\\\"counter"), std::string::npos) << json;
  EXPECT_NE(json.find("\"total_us\":123"), std::string::npos) << json;
}

// ---- periodic JSONL export ----

TEST(PeriodicJsonlExporter, WritesTimestampedSamples) {
  std::string path = ::testing::TempDir() + "/metrics_export_test.jsonl";
  std::remove(path.c_str());
  MetricsRegistry::Global().GetCounter("export.test.counter").Add(42);
  {
    PeriodicJsonlExporter exporter(path, std::chrono::milliseconds(20));
    ASSERT_TRUE(exporter.Start());
    std::this_thread::sleep_for(std::chrono::milliseconds(70));
    exporter.Stop();
    EXPECT_GE(exporter.samples_written(), 2u);  // periodic + final
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  // Every line is one JSON object with the expected envelope fields.
  size_t lines = 0;
  size_t start = 0;
  while (start < content.size()) {
    size_t end = content.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    std::string line = content.substr(start, end - start);
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"ts_ms\":"), std::string::npos);
    EXPECT_NE(line.find("\"seq\":" + std::to_string(lines)), std::string::npos);
    EXPECT_NE(line.find("\"metrics\":"), std::string::npos);
    start = end + 1;
    ++lines;
  }
  EXPECT_GE(lines, 2u);
  EXPECT_NE(content.find("export.test.counter"), std::string::npos);
}

TEST(PeriodicJsonlExporter, StartFailsOnUnwritablePath) {
  PeriodicJsonlExporter exporter("/nonexistent-dir/metrics.jsonl",
                                 std::chrono::milliseconds(10));
  EXPECT_FALSE(exporter.Start());
}

}  // namespace
}  // namespace obs
}  // namespace clara
