// The epoll multi-client transport (src/serve/eventloop.h): many concurrent
// connections with interleaved partial frames, slow-reader backpressure
// disconnects, control frames answered inline, and connection churn during
// hot reload with zero dropped in-flight requests.
//
// Runs as one ctest entry (clara_test_whole): the trained bundle fixture is
// shared across every test in the binary, and the Loop.* tests also run
// under the ThreadSanitizer target (tsan_check) — the loop thread, shard
// workers, engine dispatcher and client threads all interleave here.
#include <gtest/gtest.h>

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/core/analyzer.h"
#include "src/elements/elements.h"
#include "src/serve/artifact.h"
#include "src/serve/eventloop.h"
#include "src/serve/proto.h"
#include "src/serve/server.h"
#include "src/workload/workload.h"

namespace clara {
namespace {

// ---- shared trained fixture (small corpus; trained once per process) ----

AnalyzerOptions SmallOptions() {
  AnalyzerOptions options;
  options.predictor.train_programs = 24;
  options.predictor.lstm.epochs = 2;
  options.scaleout.train_programs = 16;
  options.colocation.train_nfs = 8;
  options.colocation.train_groups = 16;
  options.algo_corpus_per_class = 6;
  return options;
}

const ClaraAnalyzer& TrainedAnalyzer() {
  static const ClaraAnalyzer* analyzer = [] {
    auto* a = new ClaraAnalyzer(SmallOptions());
    std::vector<Program> corpus;
    for (const auto& info : ElementRegistry()) {
      corpus.push_back(info.make());
    }
    std::vector<const Program*> ptrs;
    for (const auto& p : corpus) {
      ptrs.push_back(&p);
    }
    a->Train(ptrs);
    return a;
  }();
  return *analyzer;
}

TrainedBundle FreshBundle() {
  static const std::string* bytes =
      new std::string(serve::SerializeBundle(TrainedAnalyzer().ExportTrained()));
  TrainedBundle bundle;
  std::string error;
  EXPECT_TRUE(serve::DeserializeBundle(*bytes, &bundle, &error)) << error;
  return bundle;
}

serve::ServeOptions FastServeOptions() {
  serve::ServeOptions opts;
  opts.queue_capacity = 512;
  opts.max_batch = 8;
  opts.cache_capacity = 64;
  opts.profile_packets = 40;  // keep cache misses cheap in unit tests
  return opts;
}

const char* kElements[] = {"aggcounter", "heavyhitter", "udpcount", "iplookup"};

serve::EventLoopOptions LoopOpts(size_t shards) {
  serve::EventLoopOptions lopts;
  lopts.shards = shards;
  return lopts;
}

serve::InsightRequest ElementRequest(uint64_t id, const std::string& element) {
  serve::InsightRequest req;
  req.id = id;
  req.element = element;
  req.workload = WorkloadSpec::SmallFlows();
  return req;
}

// ---- in-process loop harness ----

class LoopHarness {
 public:
  explicit LoopHarness(serve::EventLoopOptions lopts,
                       serve::ServeOptions sopts = FastServeOptions())
      : engine_(FreshBundle(), sopts) {
    static std::atomic<int> counter{0};
    path_ = "/tmp/clara_loop_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)) + ".sock";
    lopts.socket_path = path_;
    loop_ = std::make_unique<serve::EventLoop>(engine_, lopts);
  }

  ~LoopHarness() { StopLoop(); }

  bool StartLoop() {
    std::string error;
    if (!loop_->Init(&error)) {
      ADD_FAILURE() << error;
      return false;
    }
    engine_.Start();
    thread_ = std::thread([this] { loop_->Run(&stop_); });
    return true;
  }

  void StopLoop() {
    if (thread_.joinable()) {
      stop_.store(1);
      thread_.join();
      engine_.Stop();
    }
  }

  int Connect() {
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return -1;
    }
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);
    for (int attempt = 0; attempt < 100; ++attempt) {
      if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) ==
          0) {
        return fd;
      }
      ::usleep(10 * 1000);
    }
    ::close(fd);
    return -1;
  }

  serve::ServeEngine& engine() { return engine_; }
  serve::EventLoop& loop() { return *loop_; }

 private:
  serve::ServeEngine engine_;
  std::unique_ptr<serve::EventLoop> loop_;
  std::string path_;
  std::atomic<int> stop_{0};
  std::thread thread_;
};

bool WriteAllFd(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

// Blocking read of exactly `expect` response frames (or EOF/error).
bool ReadResponses(int fd, size_t expect, std::vector<serve::InsightResponse>* out) {
  serve::FrameReader reader;
  char buf[1 << 14];
  while (out->size() < expect) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (n == 0) {
      return false;
    }
    reader.Feed(buf, static_cast<size_t>(n));
    std::string frame;
    while (reader.Next(&frame)) {
      serve::InsightResponse resp;
      std::string err;
      if (!serve::ParseResponse(frame, &resp, &err)) {
        return false;
      }
      out->push_back(std::move(resp));
    }
  }
  return true;
}

// ---- tests ----

// 64 concurrent connections, each carrying several frames whose bytes arrive
// interleaved one byte at a time across all fds: every connection's
// FrameReader must reassemble independently, and every request must answer
// OK with the body the engine computes for that element.
TEST(Loop, InterleavedPartialFramesAcross64Connections) {
  constexpr size_t kConns = 64;
  constexpr size_t kPerConn = 3;
  LoopHarness h(LoopOpts(3));
  ASSERT_TRUE(h.StartLoop());

  // Reference bodies straight from the engine (also warms the cache).
  std::vector<std::string> want;
  for (const char* e : kElements) {
    serve::InsightResponse resp = h.engine().Handle(ElementRequest(1, e));
    ASSERT_EQ(resp.error, serve::ErrorCode::kOk) << e;
    want.push_back(serve::EncodeResponseBody(resp));
  }

  std::vector<int> fds(kConns, -1);
  std::vector<std::string> payloads(kConns);
  for (size_t c = 0; c < kConns; ++c) {
    fds[c] = h.Connect();
    ASSERT_GE(fds[c], 0) << "connection " << c;
    for (size_t k = 0; k < kPerConn; ++k) {
      uint64_t id = (static_cast<uint64_t>(c + 1) << 16) | k;
      serve::AppendFrame(&payloads[c],
                         serve::EncodeRequest(ElementRequest(id, kElements[(c + k) % 4])));
    }
  }
  // Byte-by-byte round-robin: at any instant most connections hold a partial
  // frame. Readers drain as we go so responses never back up the loop.
  size_t max_len = 0;
  for (const auto& p : payloads) {
    max_len = std::max(max_len, p.size());
  }
  std::vector<std::thread> readers;
  std::vector<std::vector<serve::InsightResponse>> got(kConns);
  // char, not bool: vector<bool> packs bits into shared words, which is a
  // data race when reader threads store adjacent elements concurrently.
  std::vector<char> read_ok(kConns, 0);
  for (size_t c = 0; c < kConns; ++c) {
    readers.emplace_back([&, c] {
      std::vector<serve::InsightResponse> resps;
      read_ok[c] = ReadResponses(fds[c], kPerConn, &resps);
      got[c] = std::move(resps);
    });
  }
  for (size_t pos = 0; pos < max_len; ++pos) {
    for (size_t c = 0; c < kConns; ++c) {
      if (pos < payloads[c].size()) {
        ASSERT_TRUE(WriteAllFd(fds[c], payloads[c].substr(pos, 1)));
      }
    }
  }
  for (auto& t : readers) {
    t.join();
  }
  for (size_t c = 0; c < kConns; ++c) {
    ASSERT_TRUE(read_ok[c]) << "connection " << c;
    ASSERT_EQ(got[c].size(), kPerConn);
    for (size_t k = 0; k < kPerConn; ++k) {
      const auto& resp = got[c][k];
      EXPECT_EQ(resp.error, serve::ErrorCode::kOk);
      EXPECT_EQ(resp.id, (static_cast<uint64_t>(c + 1) << 16) | k);
      EXPECT_EQ(serve::EncodeResponseBody(resp), want[(c + k) % 4]);
    }
    ::close(fds[c]);
  }
  EXPECT_GE(h.loop().accepted(), kConns);
}

// A client that sends requests but never reads responses must be
// disconnected once its outbound buffer blows the cap — not allowed to grow
// the daemon's memory without bound.
TEST(Loop, SlowReaderIsDisconnected) {
  serve::EventLoopOptions lopts;
  lopts.shards = 2;
  lopts.max_outbound_bytes = 2048;  // tiny: a handful of responses
  LoopHarness h(lopts);
  ASSERT_TRUE(h.StartLoop());

  // Warm the cache so responses stream out fast.
  ASSERT_EQ(h.engine().Handle(ElementRequest(1, "aggcounter")).error,
            serve::ErrorCode::kOk);

  int fd = h.Connect();
  ASSERT_GE(fd, 0);
  // Never read. Keep writing until the daemon hangs up on us (the kernel
  // socket buffer absorbs the first wave; the cap catches the overflow).
  std::string out;
  for (uint64_t id = 1; id <= 64; ++id) {
    serve::AppendFrame(&out, serve::EncodeRequest(ElementRequest(id, "aggcounter")));
  }
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  bool hung_up = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (!WriteAllFd(fd, out)) {
      hung_up = true;  // EPIPE: the loop closed us
      break;
    }
    if (h.loop().slow_disconnects() > 0) {
      hung_up = true;
      break;
    }
  }
  ::close(fd);
  EXPECT_TRUE(hung_up);
  // The disconnect must be attributed to backpressure.
  auto counter_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (h.loop().slow_disconnects() == 0 &&
         std::chrono::steady_clock::now() < counter_deadline) {
    ::usleep(10 * 1000);
  }
  EXPECT_GE(h.loop().slow_disconnects(), 1u);

  // The daemon itself is unharmed: a well-behaved client still gets served.
  int fd2 = h.Connect();
  ASSERT_GE(fd2, 0);
  std::string req;
  serve::AppendFrame(&req, serve::EncodeRequest(ElementRequest(99, "aggcounter")));
  ASSERT_TRUE(WriteAllFd(fd2, req));
  std::vector<serve::InsightResponse> resps;
  ASSERT_TRUE(ReadResponses(fd2, 1, &resps));
  EXPECT_EQ(resps[0].error, serve::ErrorCode::kOk);
  ::close(fd2);
}

// Control frames are answered inline by the loop thread, and the stats
// envelope carries the transport object while the engine keeps serving.
TEST(Loop, ControlFramesAnsweredInlineWithTransportStats) {
  LoopHarness h(LoopOpts(2));
  ASSERT_TRUE(h.StartLoop());
  h.engine().SetTransportStatsProvider([&h] { return h.loop().StatsJson(); });

  int fd = h.Connect();
  ASSERT_GE(fd, 0);
  serve::ControlRequest creq;
  creq.op = serve::ControlOp::kStats;
  std::string out;
  serve::AppendFrame(&out, serve::EncodeControlRequest(creq));
  ASSERT_TRUE(WriteAllFd(fd, out));

  serve::FrameReader reader;
  char buf[1 << 14];
  std::string frame;
  bool got = false;
  while (!got) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    ASSERT_GT(n, 0);
    reader.Feed(buf, static_cast<size_t>(n));
    while (reader.Next(&frame)) {
      got = true;
    }
  }
  serve::ControlResponse cresp;
  std::string err;
  ASSERT_TRUE(serve::ParseControlResponse(frame, &cresp, &err)) << err;
  EXPECT_TRUE(cresp.ok);
  EXPECT_NE(cresp.json.find("\"transport\":{"), std::string::npos);
  EXPECT_NE(cresp.json.find("\"mode\":\"epoll\""), std::string::npos);
  EXPECT_NE(cresp.json.find("\"shards\":2"), std::string::npos);
  ::close(fd);
  h.engine().SetTransportStatsProvider(nullptr);
}

// An oversized frame answers with a structured kOversized error and the
// connection keeps working for well-formed frames after it.
TEST(Loop, OversizedFrameAnsweredAndConnectionSurvives) {
  LoopHarness h(LoopOpts(1));
  ASSERT_TRUE(h.StartLoop());
  int fd = h.Connect();
  ASSERT_GE(fd, 0);

  std::string out;
  uint32_t huge = static_cast<uint32_t>(serve::kMaxFrameBytes + 1);
  for (int i = 0; i < 4; ++i) {  // little-endian length prefix, as AppendFrame
    out.push_back(static_cast<char>((huge >> (8 * i)) & 0xff));
  }
  out.append(serve::kMaxFrameBytes + 1, 'x');
  serve::AppendFrame(&out, serve::EncodeRequest(ElementRequest(7, "aggcounter")));
  ASSERT_TRUE(WriteAllFd(fd, out));

  std::vector<serve::InsightResponse> resps;
  ASSERT_TRUE(ReadResponses(fd, 2, &resps));
  EXPECT_EQ(resps[0].error, serve::ErrorCode::kOversized);
  EXPECT_EQ(resps[1].error, serve::ErrorCode::kOk);
  EXPECT_EQ(resps[1].id, 7u);
  ::close(fd);
}

// Connection churn during hot reload: clients connect, exchange, disconnect
// in a loop while the model is reloaded repeatedly. The artifact version
// must advance and not a single in-flight request may be dropped or
// answered with an error.
TEST(Loop, ConnectionChurnDuringHotReload) {
  constexpr size_t kClients = 8;
  constexpr int kRounds = 12;
  LoopHarness h(LoopOpts(3));
  ASSERT_TRUE(h.StartLoop());

  std::vector<std::string> want;
  for (const char* e : kElements) {
    serve::InsightResponse resp = h.engine().Handle(ElementRequest(1, e));
    ASSERT_EQ(resp.error, serve::ErrorCode::kOk) << e;
    want.push_back(serve::EncodeResponseBody(resp));
  }

  std::atomic<int> churn_stop{0};
  std::atomic<uint64_t> exchanges{0};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      uint64_t seq = 0;
      while (churn_stop.load() == 0) {
        int fd = h.Connect();
        if (fd < 0) {
          failures.fetch_add(1);
          return;
        }
        std::string out;
        constexpr size_t kBatch = 4;
        for (size_t k = 0; k < kBatch; ++k) {
          uint64_t id = (static_cast<uint64_t>(c + 1) << 32) | ++seq;
          serve::AppendFrame(
              &out, serve::EncodeRequest(ElementRequest(id, kElements[seq % 4])));
        }
        if (!WriteAllFd(fd, out)) {
          failures.fetch_add(1);
          ::close(fd);
          continue;
        }
        std::vector<serve::InsightResponse> resps;
        if (!ReadResponses(fd, kBatch, &resps)) {
          failures.fetch_add(1);
          ::close(fd);
          continue;
        }
        for (const auto& resp : resps) {
          if (resp.error != serve::ErrorCode::kOk) {
            failures.fetch_add(1);
          }
        }
        exchanges.fetch_add(kBatch);
        ::close(fd);
      }
    });
  }

  uint64_t version_before = h.engine().artifact_version();
  int reloads_ok = 0;
  for (int r = 0; r < kRounds; ++r) {
    std::string error;
    if (h.engine().Reload(FreshBundle(), &error)) {
      ++reloads_ok;
    } else {
      ADD_FAILURE() << "reload rejected: " << error;
    }
    ::usleep(20 * 1000);
  }
  // Let churn continue on the final model for a moment, then stop.
  ::usleep(100 * 1000);
  churn_stop.store(1);
  for (auto& t : clients) {
    t.join();
  }

  EXPECT_EQ(failures.load(), 0u) << "requests dropped or failed during reload churn";
  EXPECT_GT(exchanges.load(), 0u);
  EXPECT_EQ(h.engine().artifact_version(),
            version_before + static_cast<uint64_t>(reloads_ok));
  EXPECT_EQ(h.engine().reloads_rejected(), 0u);

  // Responses after the final reload still match the trained baseline bytes.
  int fd = h.Connect();
  ASSERT_GE(fd, 0);
  std::string out;
  for (uint64_t i = 0; i < 4; ++i) {
    serve::AppendFrame(&out,
                       serve::EncodeRequest(ElementRequest(1000 + i, kElements[i])));
  }
  ASSERT_TRUE(WriteAllFd(fd, out));
  std::vector<serve::InsightResponse> resps;
  ASSERT_TRUE(ReadResponses(fd, 4, &resps));
  for (const auto& resp : resps) {
    ASSERT_EQ(resp.error, serve::ErrorCode::kOk);
    EXPECT_EQ(serve::EncodeResponseBody(resp), want[resp.id - 1000]);
  }
  ::close(fd);
}

}  // namespace
}  // namespace clara
