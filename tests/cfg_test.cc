#include "src/ir/cfg.h"

#include <gtest/gtest.h>

#include "src/elements/elements.h"
#include "src/ir/builder.h"
#include "src/lang/lower.h"

namespace clara {
namespace {

// A diamond: entry -> (then|else) -> join.
Module Diamond() {
  Module m;
  InstallStandardPacketFields(m);
  m.functions.emplace_back();
  Function& f = m.functions.back();
  IrBuilder b(m, f);
  uint32_t entry = b.NewBlock("entry");
  uint32_t t = b.NewBlock("then");
  uint32_t e = b.NewBlock("else");
  uint32_t j = b.NewBlock("join");
  b.SetInsertPoint(entry);
  Value c = b.Compare(Opcode::kIcmpEq, Value::Const(1), Value::Const(1));
  b.CondBr(c, t, e);
  b.SetInsertPoint(t);
  b.Br(j);
  b.SetInsertPoint(e);
  b.Br(j);
  b.SetInsertPoint(j);
  b.Ret();
  return m;
}

// A loop: entry -> header -> body -> header; header -> exit.
Module Loop() {
  Module m;
  InstallStandardPacketFields(m);
  m.functions.emplace_back();
  Function& f = m.functions.back();
  IrBuilder b(m, f);
  uint32_t entry = b.NewBlock("entry");
  uint32_t header = b.NewBlock("header");
  uint32_t body = b.NewBlock("body");
  uint32_t exit = b.NewBlock("exit");
  b.SetInsertPoint(entry);
  b.Br(header);
  b.SetInsertPoint(header);
  Value c = b.Compare(Opcode::kIcmpUlt, Value::Const(0), Value::Const(3));
  b.CondBr(c, body, exit);
  b.SetInsertPoint(body);
  b.Br(header);
  b.SetInsertPoint(exit);
  b.Ret();
  return m;
}

TEST(Cfg, DiamondShape) {
  Module m = Diamond();
  Cfg cfg = BuildCfg(m.functions[0]);
  EXPECT_EQ(cfg.succ[0].size(), 2u);
  EXPECT_EQ(cfg.pred[3].size(), 2u);
  EXPECT_TRUE(cfg.back_edges.empty());
  EXPECT_EQ(cfg.reverse_postorder.front(), 0u);
  for (bool r : cfg.reachable) {
    EXPECT_TRUE(r);
  }
  for (int d : cfg.loop_depth) {
    EXPECT_EQ(d, 0);
  }
}

TEST(Cfg, LoopDetection) {
  Module m = Loop();
  Cfg cfg = BuildCfg(m.functions[0]);
  ASSERT_EQ(cfg.back_edges.size(), 1u);
  EXPECT_EQ(cfg.back_edges[0].first, 2u);   // body
  EXPECT_EQ(cfg.back_edges[0].second, 1u);  // header
  EXPECT_EQ(cfg.loop_depth[1], 1);
  EXPECT_EQ(cfg.loop_depth[2], 1);
  EXPECT_EQ(cfg.loop_depth[0], 0);
  EXPECT_EQ(cfg.loop_depth[3], 0);
}

TEST(Cfg, NaturalLoopMembers) {
  Module m = Loop();
  Cfg cfg = BuildCfg(m.functions[0]);
  auto loop = NaturalLoop(cfg, 2, 1);
  EXPECT_EQ(loop, (std::vector<uint32_t>{1, 2}));
}

TEST(Cfg, ReversePostorderVisitsAllReachable) {
  Module m = Diamond();
  Cfg cfg = BuildCfg(m.functions[0]);
  EXPECT_EQ(cfg.reverse_postorder.size(), 4u);
}

TEST(Cfg, LoweredElementsHaveLoopsWhereExpected) {
  Program dpi = MakeDpi();
  LowerResult lr = LowerProgram(dpi);
  ASSERT_TRUE(lr.ok);
  Cfg cfg = BuildCfg(lr.module.functions[0]);
  EXPECT_FALSE(cfg.back_edges.empty());  // the payload scan loop

  Program anon = MakeAnonIpAddr();
  LowerResult lr2 = LowerProgram(anon);
  ASSERT_TRUE(lr2.ok);
  Cfg cfg2 = BuildCfg(lr2.module.functions[0]);
  EXPECT_TRUE(cfg2.back_edges.empty());  // straight-line element
}

TEST(Cfg, UnreachableBlockFlagged) {
  Module m = Diamond();
  // Add a block nothing branches to.
  m.functions[0].blocks.push_back(BasicBlock{"orphan", -1, {}});
  Instruction ret;
  ret.op = Opcode::kRet;
  m.functions[0].blocks.back().instrs.push_back(ret);
  Cfg cfg = BuildCfg(m.functions[0]);
  EXPECT_FALSE(cfg.reachable[4]);
}

}  // namespace
}  // namespace clara
