// Performance-model behaviours the paper's figures rely on: core scaling,
// memory knees, latency inflation past the knee, line-rate caps, placement
// sensitivity, and colocation interference.
#include "src/nic/perf_model.h"

#include <gtest/gtest.h>

namespace clara {
namespace {

NfDemand ComputeBound() {
  NfDemand d;
  d.name = "compute-bound";
  d.compute_cycles = 400;
  d.pkt_accesses = 1;
  d.wire_bytes = 64;
  return d;
}

NfDemand MemoryBound() {
  NfDemand d;
  d.name = "memory-bound";
  d.compute_cycles = 40;
  d.pkt_accesses = 2;
  d.wire_bytes = 64;
  StateDemand s;
  s.name = "flows";
  s.accesses_per_pkt = 6;
  s.words_per_access = 4;
  s.region = MemRegion::kEmem;
  s.cache_hit_rate = 0.1;
  d.state.push_back(s);
  return d;
}

TEST(PerfModel, ThroughputGrowsWithCoresUntilPlateau) {
  PerfModel model;
  NfDemand d = MemoryBound();
  PerfPoint p1 = model.Evaluate(d, 1);
  PerfPoint p8 = model.Evaluate(d, 8);
  PerfPoint p60 = model.Evaluate(d, 60);
  EXPECT_GT(p8.throughput_mpps, p1.throughput_mpps * 4);
  // Memory-bound NF plateaus: far from linear scaling at 60 cores.
  EXPECT_LT(p60.throughput_mpps, p1.throughput_mpps * 30);
  // The throughput/latency knee sits well inside the core range (Fig 11).
  int knee = model.OptimalCores(d);
  EXPECT_LT(knee, 45);
  EXPECT_GT(knee, 4);
}

TEST(PerfModel, LatencyRisesPastKnee) {
  PerfModel model;
  NfDemand d = MemoryBound();
  PerfPoint low = model.Evaluate(d, 2);
  PerfPoint high = model.Evaluate(d, 60);
  EXPECT_GT(high.latency_us, low.latency_us * 1.5);
}

TEST(PerfModel, ComputeBoundScalesNearlyLinearly) {
  PerfModel model;
  NfDemand d = ComputeBound();
  double t10 = model.Evaluate(d, 10).throughput_mpps;
  double t20 = model.Evaluate(d, 20).throughput_mpps;
  EXPECT_NEAR(t20 / t10, 2.0, 0.2);
}

TEST(PerfModel, LineRateCapsThroughput) {
  PerfModel model;
  NfDemand d;
  d.compute_cycles = 5;  // nearly free NF
  d.pkt_accesses = 0;
  d.wire_bytes = 1500;
  PerfPoint p = model.Evaluate(d, 60);
  double line = model.config().MaxLineRateMpps(1500);
  EXPECT_LE(p.throughput_mpps, line * 1.01);
  EXPECT_GE(p.throughput_mpps, line * 0.9);
  EXPECT_EQ(p.bottleneck, PerfPoint::Bottleneck::kLineRate);
}

TEST(PerfModel, FasterRegionsGiveLowerLatency) {
  PerfModel model;
  NfDemand d = MemoryBound();
  d.state[0].region = MemRegion::kEmem;
  double lat_emem = model.Evaluate(d, 8).latency_us;
  d.state[0].region = MemRegion::kImem;
  double lat_imem = model.Evaluate(d, 8).latency_us;
  d.state[0].region = MemRegion::kCls;
  double lat_cls = model.Evaluate(d, 8).latency_us;
  EXPECT_LT(lat_imem, lat_emem);
  EXPECT_LT(lat_cls, lat_imem);
}

TEST(PerfModel, CacheHitRateMatters) {
  PerfModel model;
  NfDemand d = MemoryBound();
  d.state[0].cache_hit_rate = 0.05;
  double t_cold = model.Evaluate(d, 60).throughput_mpps;
  d.state[0].cache_hit_rate = 0.95;
  double t_warm = model.Evaluate(d, 60).throughput_mpps;
  EXPECT_GT(t_warm, t_cold * 1.5);
}

TEST(PerfModel, CacheHostileWorkloadsSaturateLater) {
  // Paper Figure 11(c)-(d): cache-unfriendly (small flow) workloads keep
  // gaining from extra cores longer than cache-friendly (large flow) ones,
  // which hit their peak (often line rate) early.
  PerfModel model;
  NfDemand friendly = MemoryBound();
  friendly.state[0].cache_hit_rate = 0.98;
  NfDemand hostile = MemoryBound();
  hostile.state[0].cache_hit_rate = 0.05;
  EXPECT_GT(model.CoresToSaturate(hostile), model.CoresToSaturate(friendly));
  // And the friendly workload achieves strictly higher peak throughput.
  EXPECT_GT(model.Evaluate(friendly, 60).throughput_mpps,
            model.Evaluate(hostile, 60).throughput_mpps);
}

TEST(PerfModel, CoresToSaturateIsMinimal) {
  PerfModel model;
  NfDemand d = MemoryBound();
  int n = model.CoresToSaturate(d);
  double peak = model.Evaluate(d, 60).throughput_mpps;
  EXPECT_GE(model.Evaluate(d, n).throughput_mpps, 0.95 * peak);
  if (n > 1) {
    EXPECT_LT(model.Evaluate(d, n - 1).throughput_mpps, 0.95 * peak);
  }
}

TEST(PerfModel, ColocationDegradesSharedMemoryNfs) {
  PerfModel model;
  NfDemand a = MemoryBound();
  NfDemand b = MemoryBound();
  b.name = "memory-bound-2";
  PerfPoint solo = model.Evaluate(a, 30);
  auto [ca, cb] = model.EvaluatePair(a, 30, b, 30);
  EXPECT_LT(ca.throughput_mpps, solo.throughput_mpps * 1.001);
  // Two DRAM-hungry NFs sharing the chip: each gets meaningfully less.
  EXPECT_LT(ca.throughput_mpps + cb.throughput_mpps, 2 * solo.throughput_mpps * 0.95);
}

TEST(PerfModel, ComputeBoundNfsColocateGracefully) {
  PerfModel model;
  NfDemand a = ComputeBound();
  NfDemand b = ComputeBound();
  PerfPoint solo = model.Evaluate(a, 30);
  auto [ca, cb] = model.EvaluatePair(a, 30, b, 30);
  EXPECT_GT(ca.throughput_mpps, solo.throughput_mpps * 0.9);
  EXPECT_GT(cb.throughput_mpps, solo.throughput_mpps * 0.9);
}

TEST(PerfModel, MixedPairFriendlierThanTwoMemoryHogs) {
  PerfModel model;
  NfDemand mem1 = MemoryBound();
  NfDemand mem2 = MemoryBound();
  NfDemand cpu = ComputeBound();
  auto [m1, m2] = model.EvaluatePair(mem1, 30, mem2, 30);
  auto [m3, c1] = model.EvaluatePair(mem1, 30, cpu, 30);
  EXPECT_GT(m3.throughput_mpps, m1.throughput_mpps * 0.99);
}

TEST(PerfModel, ArithmeticIntensityComputed) {
  NfDemand d = MemoryBound();
  EXPECT_NEAR(d.ArithmeticIntensity(), 40.0 / 8.0, 1e-9);
  NfDemand nomem;
  nomem.compute_cycles = 10;
  nomem.pkt_accesses = 0;
  EXPECT_DOUBLE_EQ(nomem.ArithmeticIntensity(), 10.0);
}

TEST(PerfModel, EngineCyclesAddLatencyNotCoreWork) {
  PerfModel model;
  NfDemand base = ComputeBound();
  NfDemand with_engine = base;
  with_engine.engine_cycles = 300;
  PerfPoint p0 = model.Evaluate(base, 8);
  PerfPoint p1 = model.Evaluate(with_engine, 8);
  EXPECT_GT(p1.latency_us, p0.latency_us);
  // Hidden by multithreading: throughput loss is bounded.
  EXPECT_GT(p1.throughput_mpps, p0.throughput_mpps * 0.5);
}

}  // namespace
}  // namespace clara
