#include "src/workload/workload.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace clara {
namespace {

TEST(Workload, DeterministicForSameSeed) {
  WorkloadSpec spec;
  spec.seed = 5;
  Trace a = GenerateTrace(spec, 200);
  Trace b = GenerateTrace(spec, 200);
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (size_t i = 0; i < a.packets.size(); ++i) {
    EXPECT_EQ(a.packets[i].src_ip, b.packets[i].src_ip);
    EXPECT_EQ(a.packets[i].ts_ns, b.packets[i].ts_ns);
  }
}

TEST(Workload, FlowCountBounded) {
  WorkloadSpec spec;
  spec.num_flows = 16;
  spec.zipf_s = 0.0;
  Trace t = GenerateTrace(spec, 2000);
  std::set<std::pair<uint32_t, uint32_t>> flows;
  for (const auto& p : t.packets) {
    flows.insert({p.src_ip, p.dst_ip});
  }
  EXPECT_LE(flows.size(), 16u);
  EXPECT_GE(flows.size(), 12u);  // nearly all flows appear
}

TEST(Workload, ZipfSkewConcentratesTraffic) {
  WorkloadSpec skewed;
  skewed.num_flows = 1000;
  skewed.zipf_s = 1.2;
  Trace t = GenerateTrace(skewed, 5000);
  std::map<uint32_t, int> counts;
  for (const auto& p : t.packets) {
    ++counts[p.src_ip];
  }
  int max_count = 0;
  for (const auto& [ip, c] : counts) {
    max_count = std::max(max_count, c);
  }
  EXPECT_GT(max_count, 5000 / 50);  // top flow >> fair share
}

TEST(Workload, PacketFieldsSane) {
  WorkloadSpec spec;
  spec.pkt_size = 256;
  spec.syn_ratio = 0.5;
  Trace t = GenerateTrace(spec, 500);
  int syns = 0;
  for (const auto& p : t.packets) {
    EXPECT_EQ(p.wire_len, 256);
    EXPECT_EQ(p.ip_len, 242);
    EXPECT_EQ(p.payload_len, 202);
    EXPECT_NE(p.src_ip & 0xff, 0u);  // keys never zero (map sentinel)
    if (p.tcp_flags & kTcpSyn) {
      ++syns;
    }
  }
  EXPECT_GT(syns, 150);
  EXPECT_LT(syns, 350);
}

TEST(Workload, TimestampsMonotone) {
  Trace t = GenerateTrace(WorkloadSpec{}, 100);
  for (size_t i = 1; i < t.packets.size(); ++i) {
    EXPECT_GT(t.packets[i].ts_ns, t.packets[i - 1].ts_ns);
  }
}

TEST(Workload, UdpFraction) {
  WorkloadSpec spec;
  spec.udp_fraction = 1.0;
  Trace t = GenerateTrace(spec, 100);
  for (const auto& p : t.packets) {
    EXPECT_EQ(p.ip_proto, kProtoUdp);
  }
}

TEST(CacheHitRate, FitsEntirelyIsOne) {
  WorkloadSpec spec;
  spec.num_flows = 100;
  EXPECT_DOUBLE_EQ(EstimateCacheHitRate(spec, 100), 1.0);
  EXPECT_DOUBLE_EQ(EstimateCacheHitRate(spec, 1000), 1.0);
}

TEST(CacheHitRate, ZeroCacheIsZero) {
  WorkloadSpec spec;
  EXPECT_DOUBLE_EQ(EstimateCacheHitRate(spec, 0), 0.0);
}

TEST(CacheHitRate, MonotoneInCacheSize) {
  WorkloadSpec spec;
  spec.num_flows = 100000;
  spec.zipf_s = 1.0;
  double prev = 0;
  for (uint64_t entries : {100, 1000, 10000, 50000}) {
    double h = EstimateCacheHitRate(spec, entries);
    EXPECT_GE(h, prev);
    EXPECT_LE(h, 1.0);
    prev = h;
  }
}

TEST(CacheHitRate, SkewHelps) {
  WorkloadSpec flat;
  flat.num_flows = 100000;
  flat.zipf_s = 0.0;
  WorkloadSpec skewed = flat;
  skewed.zipf_s = 1.2;
  EXPECT_GT(EstimateCacheHitRate(skewed, 5000), EstimateCacheHitRate(flat, 5000));
}

TEST(CacheHitRate, LargeVsSmallFlowClasses) {
  // The Figure 11 workload classes: large flows must be far more cache
  // friendly than small flows for a few-thousand-entry cache.
  uint64_t entries = 4096;
  double large = EstimateCacheHitRate(WorkloadSpec::LargeFlows(), entries);
  double small = EstimateCacheHitRate(WorkloadSpec::SmallFlows(), entries);
  EXPECT_GT(large, 0.95);
  EXPECT_LT(small, 0.6);
}

}  // namespace
}  // namespace clara
