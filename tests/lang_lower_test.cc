// Lowering invariants: block structure, terminators, optimization-free local
// handling, map-op expansion, and statement/block annotations.
#include "src/lang/lower.h"

#include <gtest/gtest.h>

#include "src/elements/elements.h"
#include "src/ir/cfg.h"
#include "src/ir/classify.h"
#include "src/ir/printer.h"

namespace clara {
namespace {

void ExpectWellFormed(const Module& m) {
  const Function& f = m.functions.at(0);
  ASSERT_FALSE(f.blocks.empty());
  for (size_t b = 0; b < f.blocks.size(); ++b) {
    const auto& blk = f.blocks[b];
    ASSERT_FALSE(blk.instrs.empty()) << "empty block " << b;
    EXPECT_TRUE(IsTerminator(blk.instrs.back().op)) << "block " << b << " unterminated";
    for (size_t i = 0; i + 1 < blk.instrs.size(); ++i) {
      EXPECT_FALSE(IsTerminator(blk.instrs[i].op))
          << "terminator mid-block " << b << ":" << i;
    }
    // Branch targets are valid.
    const auto& t = blk.instrs.back();
    if (t.op == Opcode::kBr) {
      EXPECT_LT(t.target0, f.blocks.size());
    } else if (t.op == Opcode::kCondBr) {
      EXPECT_LT(t.target0, f.blocks.size());
      EXPECT_LT(t.target1, f.blocks.size());
    }
  }
}

TEST(Lower, LocalsStayStackTraffic) {
  // With optimizations disabled, `x` is stored and re-loaded, not forwarded.
  Program p;
  p.body.push_back(Decl("x", Type::kI32, PktField("ip.src")));
  p.body.push_back(Decl("y", Type::kI32, Bin(Opcode::kAdd, Local("x"), Local("x"))));
  LowerResult lr = LowerProgram(p);
  ASSERT_TRUE(lr.ok) << lr.error;
  BlockCounts c = CountFunction(lr.module.functions[0]);
  // 1 pkt load + 1 store x + 2 loads of x + 1 store y = 5 stateless accesses.
  EXPECT_EQ(c.stateless_mem, 5u);
}

TEST(Lower, IfCreatesDiamond) {
  Program p;
  std::vector<StmtPtr> then_body;
  then_body.push_back(Drop());
  p.body.push_back(If(Cmp(Opcode::kIcmpEq, PktField("ip.proto"), Lit(6)),
                      std::move(then_body)));
  p.body.push_back(Send(nullptr));
  LowerResult lr = LowerProgram(p);
  ASSERT_TRUE(lr.ok);
  ExpectWellFormed(lr.module);
  Cfg cfg = BuildCfg(lr.module.functions[0]);
  EXPECT_TRUE(cfg.back_edges.empty());
  EXPECT_GE(lr.module.functions[0].blocks.size(), 3u);
}

TEST(Lower, ForCreatesLoopWithAnnotations) {
  Program p;
  std::vector<StmtPtr> body;
  body.push_back(Decl("x", Type::kI32, Local("i")));
  p.body.push_back(For("i", Lit(0), Lit(8), std::move(body)));
  LowerResult lr = LowerProgram(p);
  ASSERT_TRUE(lr.ok);
  ExpectWellFormed(lr.module);
  const Stmt& loop = *p.body[0];
  EXPECT_GE(loop.block_cond, 0);
  EXPECT_GE(loop.block_latch, 0);
  Cfg cfg = BuildCfg(lr.module.functions[0]);
  ASSERT_EQ(cfg.back_edges.size(), 1u);
  EXPECT_EQ(cfg.back_edges[0].second, static_cast<uint32_t>(loop.block_cond));
}

Program MapProgram(MapImpl impl) {
  Program p;
  StateDecl m;
  m.name = "flows";
  m.kind = StateKind::kMap;
  m.key_fields = {Type::kI32, Type::kI32};
  m.value_fields = {{"a", Type::kI32}, {"b", Type::kI16}};
  m.capacity = 256;
  m.impl = impl;
  p.state.push_back(m);
  std::vector<ExprPtr> keys;
  keys.push_back(PktField("ip.src"));
  keys.push_back(PktField("ip.dst"));
  p.body.push_back(MapFind("flows", std::move(keys), "found", {"a", "b"}));
  p.body.push_back(Send(nullptr));
  return p;
}

TEST(Lower, MapFindExpandsToProbeLoop) {
  Program p = MapProgram(MapImpl::kNicFixedBucket);
  LowerResult lr = LowerProgram(p);
  ASSERT_TRUE(lr.ok) << lr.error;
  ExpectWellFormed(lr.module);
  const Stmt& find = *p.body[0];
  EXPECT_GE(find.block_cond, 0);
  EXPECT_GE(find.block_body, 0);
  EXPECT_GE(find.block_echk, 0);
  EXPECT_GE(find.block_latch, 0);
  EXPECT_GE(find.block_hit, 0);
  EXPECT_GE(find.block_miss, 0);
  // The probe is a natural loop back to the cond block.
  Cfg cfg = BuildCfg(lr.module.functions[0]);
  ASSERT_FALSE(cfg.back_edges.empty());
  EXPECT_EQ(cfg.back_edges[0].second, static_cast<uint32_t>(find.block_cond));
  // The probe body loads stored keys from the map's backing state.
  BlockCounts body_counts =
      CountBlock(lr.module.functions[0].blocks[find.block_body]);
  EXPECT_EQ(body_counts.stateful_mem, 2u);  // two key fields
  // The hit block reads the two requested value fields.
  BlockCounts hit_counts = CountBlock(lr.module.functions[0].blocks[find.block_hit]);
  EXPECT_EQ(hit_counts.stateful_mem, 2u);
}

TEST(Lower, HostMapUsesWraparoundModulo) {
  // The host linear-probing latch computes (i+1) % capacity: a urem appears
  // in the lowered code; the NIC bucket variant has no latch urem.
  Program host = MapProgram(MapImpl::kHostLinearProbe);
  LowerResult lh = LowerProgram(host);
  ASSERT_TRUE(lh.ok);
  const Stmt& hfind = *host.body[0];
  bool host_urem = false;
  for (const auto& i : lh.module.functions[0].blocks[hfind.block_latch].instrs) {
    host_urem |= i.op == Opcode::kURem;
  }
  EXPECT_TRUE(host_urem);

  Program nic = MapProgram(MapImpl::kNicFixedBucket);
  LowerResult ln = LowerProgram(nic);
  ASSERT_TRUE(ln.ok);
  const Stmt& nfind = *nic.body[0];
  for (const auto& i : ln.module.functions[0].blocks[nfind.block_latch].instrs) {
    EXPECT_NE(i.op, Opcode::kURem);
  }
}

TEST(Lower, MapInsertWritesKeysAndValues) {
  Program p;
  StateDecl m;
  m.name = "t";
  m.kind = StateKind::kMap;
  m.key_fields = {Type::kI32};
  m.value_fields = {{"v", Type::kI32}};
  m.capacity = 64;
  p.state.push_back(m);
  std::vector<ExprPtr> keys;
  keys.push_back(PktField("ip.src"));
  std::vector<ExprPtr> vals;
  vals.push_back(Lit(5));
  p.body.push_back(MapInsert("t", std::move(keys), std::move(vals)));
  LowerResult lr = LowerProgram(p);
  ASSERT_TRUE(lr.ok);
  const Stmt& ins = *p.body[0];
  uint32_t stores = 0;
  for (const auto& i : lr.module.functions[0].blocks[ins.block_hit].instrs) {
    if (i.op == Opcode::kStore && i.space == AddressSpace::kState) {
      ++stores;
    }
  }
  EXPECT_EQ(stores, 2u);  // key + value
}

TEST(Lower, StatementsAfterReturnAreUnreachableButAnnotated) {
  Program p;
  p.body.push_back(Drop());
  p.body.push_back(Send(nullptr));  // unreachable
  LowerResult lr = LowerProgram(p);
  ASSERT_TRUE(lr.ok);
  EXPECT_GE(p.body[1]->block, 0);
  ExpectWellFormed(lr.module);
}

TEST(Lower, SendEmitsCallAndRet) {
  Program p;
  p.body.push_back(Send(Lit(3)));
  LowerResult lr = LowerProgram(p);
  ASSERT_TRUE(lr.ok);
  const auto& instrs = lr.module.functions[0].blocks[0].instrs;
  ASSERT_GE(instrs.size(), 2u);
  EXPECT_EQ(instrs[instrs.size() - 2].op, Opcode::kCall);
  EXPECT_EQ(instrs.back().op, Opcode::kRet);
  EXPECT_EQ(lr.module.apis[instrs[instrs.size() - 2].callee].name, "send");
}

TEST(Lower, AllRegistryElementsLowerWellFormed) {
  for (const auto& info : ElementRegistry()) {
    Program p = info.make();
    LowerResult lr = LowerProgram(p);
    ASSERT_TRUE(lr.ok) << info.name << ": " << lr.error;
    ExpectWellFormed(lr.module);
    // Every lowered module prints without crashing (debuggability).
    EXPECT_FALSE(ToString(lr.module).empty());
  }
}

TEST(Lower, BlockEntryAnnotationsAreUnique) {
  Program p = MakeMazuNat();
  LowerResult lr = LowerProgram(p);
  ASSERT_TRUE(lr.ok);
  // No two statements may claim block_entry for the same block.
  std::set<int> entries;
  std::function<void(const std::vector<StmtPtr>&)> walk =
      [&](const std::vector<StmtPtr>& body) {
        for (const auto& s : body) {
          if (s->block_entry) {
            EXPECT_TRUE(entries.insert(s->block).second)
                << "duplicate block entry " << s->block;
          }
          walk(s->body);
          walk(s->else_body);
        }
      };
  walk(p.body);
}

}  // namespace
}  // namespace clara
