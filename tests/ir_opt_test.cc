// IR verifier and optional optimization passes.
#include <gtest/gtest.h>

#include "src/elements/elements.h"
#include "src/ir/builder.h"
#include "src/ir/classify.h"
#include "src/ir/opt.h"
#include "src/ir/verify.h"
#include "src/lang/lower.h"
#include "src/synth/synth.h"

namespace clara {
namespace {

Module OneBlockModule(std::function<void(IrBuilder&)> fill) {
  Module m;
  InstallStandardPacketFields(m);
  StateVar sv;
  sv.name = "acc";
  sv.kind = StateKind::kScalar;
  sv.elem_type = Type::kI32;
  m.state.push_back(sv);
  m.functions.emplace_back();
  m.functions.back().name = "simple_action";
  IrBuilder b(m, m.functions.back());
  b.SetInsertPoint(b.NewBlock("entry"));
  fill(b);
  if (!b.BlockTerminated()) {
    b.Ret();
  }
  return m;
}

TEST(Verify, AcceptsAllLoweredElements) {
  for (const auto& info : ElementRegistry()) {
    Program p = info.make();
    LowerResult lr = LowerProgram(p);
    ASSERT_TRUE(lr.ok) << info.name;
    VerifyResult v = VerifyModule(lr.module);
    EXPECT_TRUE(v.ok) << info.name << ": " << (v.errors.empty() ? "" : v.errors[0]);
  }
}

TEST(Verify, AcceptsSynthesizedPrograms) {
  SynthOptions opts;
  opts.profile = UniformProfile();
  for (Program& p : SynthesizeCorpus(30, opts, 123)) {
    LowerResult lr = LowerProgram(p);
    ASSERT_TRUE(lr.ok);
    VerifyResult v = VerifyModule(lr.module);
    EXPECT_TRUE(v.ok) << (v.errors.empty() ? "" : v.errors[0]);
  }
}

TEST(Verify, CatchesMissingTerminator) {
  Module m = OneBlockModule([](IrBuilder& b) {
    b.Binary(Opcode::kAdd, Type::kI32, Value::Const(1), Value::Const(2));
  });
  m.functions[0].blocks[0].instrs.pop_back();  // strip the ret
  VerifyResult v = VerifyModule(m);
  ASSERT_FALSE(v.ok);
  EXPECT_NE(v.errors[0].find("terminator"), std::string::npos);
}

TEST(Verify, CatchesUndefinedRegisterUse) {
  Module m = OneBlockModule([](IrBuilder& b) {
    b.Binary(Opcode::kAdd, Type::kI32, Value::Reg(99), Value::Const(2));
  });
  VerifyResult v = VerifyModule(m);
  ASSERT_FALSE(v.ok);
  EXPECT_NE(v.errors[0].find("undefined register"), std::string::npos);
}

TEST(Verify, CatchesBadBranchTarget) {
  Module m = OneBlockModule([](IrBuilder& b) {});
  Instruction br;
  br.op = Opcode::kBr;
  br.target0 = 42;
  m.functions[0].blocks[0].instrs.back() = br;
  EXPECT_FALSE(VerifyModule(m).ok);
}

TEST(Verify, CatchesBadStateSymbol) {
  Module m = OneBlockModule([](IrBuilder& b) {
    b.LoadState(0, Type::kI32);
  });
  m.functions[0].blocks[0].instrs[0].sym = 7;
  EXPECT_FALSE(VerifyModule(m).ok);
}

TEST(Opt, ConstantFoldsChains) {
  Module m = OneBlockModule([](IrBuilder& b) {
    Value a = b.Binary(Opcode::kAdd, Type::kI32, Value::Const(3), Value::Const(4));
    Value c = b.Binary(Opcode::kMul, Type::kI32, a, Value::Const(10));
    b.StoreState(0, Type::kI32, c);
  });
  OptStats s = OptimizeModule(m);
  EXPECT_EQ(s.folded, 2);
  EXPECT_EQ(s.removed, 2);
  // The store now carries the folded constant 70.
  const auto& instrs = m.functions[0].blocks[0].instrs;
  ASSERT_EQ(instrs.size(), 2u);  // store + ret
  EXPECT_EQ(instrs[0].op, Opcode::kStore);
  ASSERT_TRUE(instrs[0].operands[0].is_const());
  EXPECT_EQ(instrs[0].operands[0].imm, 70);
  EXPECT_TRUE(VerifyModule(m).ok);
}

TEST(Opt, FoldRespectsTypeWidth) {
  Module m = OneBlockModule([](IrBuilder& b) {
    Value a = b.Binary(Opcode::kAdd, Type::kI8, Value::Const(200), Value::Const(100));
    b.StoreState(0, Type::kI32, a);
  });
  OptimizeModule(m);
  const auto& instrs = m.functions[0].blocks[0].instrs;
  ASSERT_TRUE(instrs[0].operands[0].is_const());
  EXPECT_EQ(instrs[0].operands[0].imm, (200 + 100) & 0xff);
}

TEST(Opt, StoreForwardEliminatesStackRoundTrip) {
  // x = ip.src; y = x + 1  becomes a direct use after forwarding + DCE.
  Program p;
  p.body.push_back(Decl("x", Type::kI32, PktField("ip.src")));
  p.body.push_back(Decl("y", Type::kI32, Bin(Opcode::kAdd, Local("x"), Lit(1))));
  LowerResult lr = LowerProgram(p);
  ASSERT_TRUE(lr.ok);
  BlockCounts before = CountFunction(lr.module.functions[0]);
  OptStats s = OptimizeModule(lr.module);
  BlockCounts after = CountFunction(lr.module.functions[0]);
  EXPECT_GT(s.forwarded, 0);
  EXPECT_LT(after.stateless_mem, before.stateless_mem);
  EXPECT_TRUE(VerifyModule(lr.module).ok);
}

TEST(Opt, PreservesStatefulAccesses) {
  // Optimization must never touch state loads/stores (they are the paper's
  // directly-counted quantity).
  for (const char* name : {"aggcounter", "mazunat", "cmsketch"}) {
    Program p = MakeElementByName(name);
    LowerResult lr = LowerProgram(p);
    BlockCounts before = CountFunction(lr.module.functions[0]);
    OptimizeModule(lr.module);
    BlockCounts after = CountFunction(lr.module.functions[0]);
    EXPECT_EQ(before.stateful_mem, after.stateful_mem) << name;
    EXPECT_TRUE(VerifyModule(lr.module).ok) << name;
  }
}

TEST(Opt, ShrinksLoweredElements) {
  // The passes exist and do real work — which is exactly why Clara keeps
  // them OFF for analysis (paper SS3.1).
  int total_removed = 0;
  for (const auto& info : ElementRegistry()) {
    Program p = info.make();
    LowerResult lr = LowerProgram(p);
    OptStats s = OptimizeModule(lr.module);
    total_removed += s.removed;
    EXPECT_TRUE(VerifyModule(lr.module).ok) << info.name;
  }
  EXPECT_GT(total_removed, 100);
}

TEST(Opt, IdempotentAtFixedPoint) {
  Program p = MakeMazuNat();
  LowerResult lr = LowerProgram(p);
  OptimizeModule(lr.module);
  OptStats again = OptimizeModule(lr.module);
  EXPECT_EQ(again.folded + again.forwarded + again.removed, 0);
}

}  // namespace
}  // namespace clara
