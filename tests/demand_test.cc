// BuildDemand: fusing backend output, interpreter profile, placement, and
// workload into per-packet NIC resource demands.
#include "src/nic/demand.h"

#include <gtest/gtest.h>

#include "src/elements/elements.h"
#include "src/nic/backend.h"

namespace clara {
namespace {

struct Profiled {
  std::unique_ptr<NfInstance> nf;
  NicProgram nic;
  WorkloadSpec workload;
};

Profiled ProfileElement(Program p, const WorkloadSpec& w, size_t packets = 1500) {
  Profiled out;
  out.nf = std::make_unique<NfInstance>(std::move(p));
  EXPECT_TRUE(out.nf->ok());
  out.nic = CompileToNic(out.nf->module());
  out.workload = w;
  Trace t = GenerateTrace(w, packets);
  for (auto& pkt : t.packets) {
    out.nf->Process(pkt);
  }
  return out;
}

TEST(Demand, BasicShape) {
  Profiled pr = ProfileElement(MakeAggCounter(), WorkloadSpec::SmallFlows());
  NicConfig cfg;
  NfDemand d = BuildDemand(pr.nf->module(), pr.nic, pr.nf->profile(), pr.workload, cfg);
  EXPECT_GT(d.compute_cycles, 1.0);
  EXPECT_GT(d.pkt_accesses, 0.0);
  ASSERT_EQ(d.state.size(), pr.nf->module().state.size());
  // aggcounter touches its counters once per packet.
  for (const auto& s : d.state) {
    EXPECT_GT(s.accesses_per_pkt, 0.5);
    EXPECT_LT(s.accesses_per_pkt, 4.0);
    EXPECT_EQ(s.region, MemRegion::kEmem);  // default placement
  }
}

TEST(Demand, PlacementOverridesRegion) {
  Profiled pr = ProfileElement(MakeAggCounter(), WorkloadSpec::SmallFlows());
  NicConfig cfg;
  DemandOptions opts;
  opts.placement["counts"] = MemRegion::kImem;
  NfDemand d = BuildDemand(pr.nf->module(), pr.nic, pr.nf->profile(), pr.workload, cfg, opts);
  for (const auto& s : d.state) {
    if (s.name == "counts") {
      EXPECT_EQ(s.region, MemRegion::kImem);
    }
  }
}

TEST(Demand, CoalescingEffectsApplied) {
  Profiled pr = ProfileElement(MakeTcpGen(), WorkloadSpec::SmallFlows());
  NicConfig cfg;
  NfDemand base = BuildDemand(pr.nf->module(), pr.nic, pr.nf->profile(), pr.workload, cfg);
  DemandOptions opts;
  opts.coalescing["src_port"] = CoalesceEffect{0.5, 2.0};
  NfDemand packed = BuildDemand(pr.nf->module(), pr.nic, pr.nf->profile(), pr.workload, cfg, opts);
  double base_acc = 0;
  double packed_acc = 0;
  for (size_t i = 0; i < base.state.size(); ++i) {
    if (base.state[i].name == "src_port") {
      base_acc = base.state[i].accesses_per_pkt;
      packed_acc = packed.state[i].accesses_per_pkt;
    }
  }
  EXPECT_NEAR(packed_acc, base_acc * 0.5, 1e-9);
}

TEST(Demand, AcceleratedVariantShiftsComputeToEngine) {
  WorkloadSpec w = WorkloadSpec::SmallFlows(256);
  Profiled sw = ProfileElement(MakeCmSketch(false), w);
  Profiled hw = ProfileElement(MakeCmSketch(true), w);
  NicConfig cfg;
  NfDemand d_sw = BuildDemand(sw.nf->module(), sw.nic, sw.nf->profile(), w, cfg);
  NfDemand d_hw = BuildDemand(hw.nf->module(), hw.nic, hw.nf->profile(), w, cfg);
  EXPECT_LT(d_hw.compute_cycles, d_sw.compute_cycles);
  EXPECT_GT(d_hw.engine_cycles, d_sw.engine_cycles);
}

TEST(Demand, SmallStructuresCacheWell) {
  Profiled pr = ProfileElement(MakeTcpGen(), WorkloadSpec::SmallFlows());
  NicConfig cfg;
  NfDemand d = BuildDemand(pr.nf->module(), pr.nic, pr.nf->profile(), pr.workload, cfg);
  for (const auto& s : d.state) {
    EXPECT_GT(s.cache_hit_rate, 0.9);  // scalars always fit the cache
  }
}

TEST(Demand, LargeFlowTableCachesPoorlyUnderSmallFlows) {
  Profiled pr = ProfileElement(MakeMazuNat(), WorkloadSpec::SmallFlows());
  NicConfig cfg;
  cfg.emem_cache_bytes = 64 * 1024;  // shrink the cache to force misses
  NfDemand d = BuildDemand(pr.nf->module(), pr.nic, pr.nf->profile(), pr.workload, cfg);
  bool saw_map = false;
  for (const auto& s : d.state) {
    if (s.name == "int_map") {
      saw_map = true;
      EXPECT_LT(s.cache_hit_rate, 0.9);
    }
  }
  EXPECT_TRUE(saw_map);
}

TEST(Demand, WordsPerAccessByKind) {
  StateVar scalar;
  scalar.kind = StateKind::kScalar;
  scalar.elem_type = Type::kI64;
  EXPECT_DOUBLE_EQ(WordsPerAccess(scalar), 2.0);
  StateVar map;
  map.kind = StateKind::kMap;
  map.key_bytes = 8;
  map.value_bytes = 8;
  EXPECT_DOUBLE_EQ(WordsPerAccess(map), 3.0);  // 2 key words + half the value
}

}  // namespace
}  // namespace clara
