// Data-synthesis engine (§3.2): generated programs must be well-formed, and
// corpus-guided generation must track the measured AST distribution.
#include "src/synth/synth.h"

#include <gtest/gtest.h>

#include "src/elements/elements.h"
#include "src/ir/classify.h"
#include "src/lang/interp.h"
#include "src/lang/lower.h"
#include "src/synth/algorithm_corpus.h"
#include "src/workload/workload.h"

namespace clara {
namespace {

SynthProfile ClickProfile() {
  std::vector<Program> corpus;
  for (const auto& info : ElementRegistry()) {
    corpus.push_back(info.make());
  }
  std::vector<const Program*> ptrs;
  for (const auto& p : corpus) {
    ptrs.push_back(&p);
  }
  return MeasureCorpus(ptrs);
}

// Property sweep: programs from many seeds always type-check, lower, and run.
class SynthSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SynthSeedTest, GeneratedProgramsAreExecutable) {
  SynthOptions opts;
  opts.profile = UniformProfile();
  Rng rng(GetParam());
  for (int i = 0; i < 5; ++i) {
    Program p = SynthesizeProgram(rng, opts, i);
    NfInstance nf(std::move(p));
    ASSERT_TRUE(nf.ok()) << "seed " << GetParam() << " #" << i << ": " << nf.error();
    Trace t = GenerateTrace(WorkloadSpec{}, 50);
    for (auto& pkt : t.packets) {
      nf.Process(pkt);
    }
    EXPECT_EQ(nf.profile().packets, 50u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthSeedTest,
                         ::testing::Values(1, 7, 42, 99, 1234, 5678, 31337, 271828));

TEST(Synth, GuidedProgramsExecutableToo) {
  SynthOptions opts;
  opts.profile = ClickProfile();
  for (Program& p : SynthesizeCorpus(25, opts, 77)) {
    NfInstance nf(std::move(p));
    ASSERT_TRUE(nf.ok()) << nf.error();
    Packet pkt;
    pkt.src_ip = 1;
    pkt.dst_ip = 2;
    nf.Process(pkt);
  }
}

TEST(Synth, DistinctSeedsGiveDistinctPrograms) {
  SynthOptions opts;
  opts.profile = UniformProfile();
  auto a = SynthesizeCorpus(5, opts, 1);
  auto b = SynthesizeCorpus(5, opts, 2);
  int differing = 0;
  for (size_t i = 0; i < 5; ++i) {
    if (a[i].body.size() != b[i].body.size()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(Synth, MeasureCorpusSeesStatements) {
  SynthProfile prof = ClickProfile();
  // The element suite is full of ifs and state ops; weights must reflect it.
  EXPECT_GT(prof.stmt_weights[static_cast<int>(SynthStmt::kIf)], 5.0);
  EXPECT_GT(prof.stmt_weights[static_cast<int>(SynthStmt::kStateScalarOp)], 5.0);
  EXPECT_GT(prof.stateful_prob, 0.5);
  EXPECT_GT(prof.avg_body_len, 4.0);
  // xor is a common operator in this corpus.
  EXPECT_GT(prof.op_weights[5], 1.0);
}

TEST(Synth, GuidedCorpusTracksDistributionBetterThanUniform) {
  // Table 1 in miniature: instruction histograms of guided synthesis are
  // closer to the real corpus than unguided synthesis. Checked end-to-end in
  // bench/tab01; here we just confirm the profiles differ materially.
  SynthProfile guided = ClickProfile();
  SynthProfile uniform = UniformProfile();
  double diff = 0;
  for (int i = 0; i < kNumSynthStmts; ++i) {
    double g = guided.stmt_weights[i];
    double u = uniform.stmt_weights[i];
    diff += std::abs(g / (g + u) - 0.5);
  }
  EXPECT_GT(diff, 0.5);
}

TEST(AlgorithmCorpus, AllVariantsExecutable) {
  auto corpus = BuildAlgorithmCorpus(6, 123);
  EXPECT_EQ(corpus.size(), 24u);
  for (auto& lp : corpus) {
    NfInstance nf(CloneProgram(lp.program));
    ASSERT_TRUE(nf.ok()) << lp.program.name << ": " << nf.error();
    Trace t = GenerateTrace(WorkloadSpec{}, 20);
    for (auto& pkt : t.packets) {
      nf.Process(pkt);
    }
  }
}

TEST(AlgorithmCorpus, CrcVariantsAreBitwiseHeavy) {
  Rng rng(5);
  Program crc = SynthCrcVariant(rng, 0);
  LowerResult lr = LowerProgram(crc);
  ASSERT_TRUE(lr.ok);
  BlockCounts c = CountFunction(lr.module.functions[0]);
  EXPECT_GE(c.compute, 9u);
}

TEST(AlgorithmCorpus, LpmVariantsChasePointers) {
  Rng rng(6);
  Program lpm = SynthLpmVariant(rng, 0);
  NfInstance nf(std::move(lpm));
  ASSERT_TRUE(nf.ok()) << nf.error();
  // The trie state array is walked repeatedly per packet.
  Packet pkt;
  pkt.dst_ip = 0x0a010203;
  nf.Process(pkt);
  int trie = nf.module().FindState("trie");
  ASSERT_GE(trie, 0);
  EXPECT_GT(nf.profile().state_reads[trie], 2u);
}

TEST(AlgorithmCorpus, LabelsBalanced) {
  auto corpus = BuildAlgorithmCorpus(10, 9);
  int counts[kNumAccelClasses] = {0, 0, 0, 0};
  for (const auto& lp : corpus) {
    ++counts[static_cast<int>(lp.label)];
  }
  for (int c = 0; c < kNumAccelClasses; ++c) {
    EXPECT_EQ(counts[c], 10);
  }
}

}  // namespace
}  // namespace clara

namespace clara {
namespace {

TEST(Synth, IdiomStatisticsMeasured) {
  SynthProfile prof = ClickProfile();
  // The element suite uses 64-bit counters, local staging, flag tests, and
  // hash-constant multiplies; all four idiom statistics must be non-trivial.
  EXPECT_GT(prof.scalar_i64_frac, 0.2);
  EXPECT_LT(prof.scalar_i64_frac, 0.95);
  EXPECT_GT(prof.local_leaf_prob, 0.2);
  EXPECT_GT(prof.mask_test_prob, 0.05);
  EXPECT_GT(prof.mul_bigconst_prob, 0.3);
}

TEST(Synth, GenericProfileProducesStatelessPrograms) {
  SynthOptions opts;
  opts.profile = GenericProfile();
  for (Program& p : SynthesizeCorpus(10, opts, 5)) {
    EXPECT_TRUE(p.state.empty()) << p.name;
    NfInstance nf(std::move(p));
    ASSERT_TRUE(nf.ok()) << nf.error();
    Packet pkt;
    pkt.src_ip = 1;
    nf.Process(pkt);
  }
}

TEST(Synth, GenericProgramsAvoidPacketIdioms) {
  SynthOptions opts;
  opts.profile = GenericProfile();
  Rng rng(9);
  int pkt_fields = 0;
  for (int i = 0; i < 10; ++i) {
    Program p = SynthesizeProgram(rng, opts, i);
    std::function<void(const Expr&)> walk_expr = [&](const Expr& e) {
      if (e.kind == ExprKind::kPacketField || e.kind == ExprKind::kPayloadByte) {
        ++pkt_fields;
      }
      for (const auto& a : e.args) {
        walk_expr(*a);
      }
    };
    std::function<void(const std::vector<StmtPtr>&)> walk =
        [&](const std::vector<StmtPtr>& body) {
          for (const auto& s : body) {
            for (const Expr* e : {s->e0.get(), s->e1.get()}) {
              if (e != nullptr) {
                walk_expr(*e);
              }
            }
            for (const auto& a : s->args) {
              walk_expr(*a);
            }
            walk(s->body);
            walk(s->else_body);
          }
        };
    walk(p.body);
  }
  EXPECT_EQ(pkt_fields, 0);
}

}  // namespace
}  // namespace clara
