#include "src/nf/lpm.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace clara {
namespace {

TEST(LpmTable, BasicLongestPrefixWins) {
  LpmTable t;
  t.Insert(0x0a000000, 8, 1);   // 10/8 -> 1
  t.Insert(0x0a010000, 16, 2);  // 10.1/16 -> 2
  t.Insert(0x0a010100, 24, 3);  // 10.1.1/24 -> 3
  EXPECT_EQ(t.Lookup(0x0a020304).value(), 1u);
  EXPECT_EQ(t.Lookup(0x0a010304).value(), 2u);
  EXPECT_EQ(t.Lookup(0x0a010104).value(), 3u);
  EXPECT_FALSE(t.Lookup(0x0b000000).has_value());
}

TEST(LpmTable, DefaultRouteCatchesAll) {
  LpmTable t;
  t.Insert(0, 0, 42);
  EXPECT_EQ(t.Lookup(0xdeadbeef).value(), 42u);
  EXPECT_EQ(t.Lookup(0).value(), 42u);
}

TEST(LpmTable, OverwriteSamePrefix) {
  LpmTable t;
  t.Insert(0x0a000000, 8, 1);
  t.Insert(0x0a000000, 8, 9);
  EXPECT_EQ(t.rule_count(), 1u);
  EXPECT_EQ(t.Lookup(0x0a123456).value(), 9u);
}

TEST(LpmTable, HostZeroLookupStepsBounded) {
  LpmTable t;
  t.Insert(0xff000000, 32, 5);
  t.Lookup(0xff000000);
  EXPECT_LE(t.last_lookup_steps(), 33);
}

// Property: the flattened-array walk (the algorithm the lang element
// encodes) agrees with the tree lookup on random tables and queries.
TEST(LpmTable, FlatWalkMatchesTreeLookup) {
  Rng rng(321);
  for (int trial = 0; trial < 20; ++trial) {
    LpmTable t;
    for (int r = 0; r < 100; ++r) {
      int plen = static_cast<int>(rng.NextInt(4, 28));
      uint32_t prefix =
          static_cast<uint32_t>(rng.NextU64()) & ~((plen == 32) ? 0u : ((1u << (32 - plen)) - 1));
      t.Insert(prefix, plen, static_cast<uint32_t>(rng.NextBounded(100)));
    }
    std::vector<uint32_t> flat = t.Flatten();
    for (int q = 0; q < 500; ++q) {
      uint32_t addr = static_cast<uint32_t>(rng.NextU64());
      auto tree = t.Lookup(addr);
      auto walk = LpmLookupFlat(flat, addr);
      ASSERT_EQ(tree.has_value(), walk.has_value()) << "addr=" << addr;
      if (tree.has_value()) {
        ASSERT_EQ(*tree, *walk) << "addr=" << addr;
      }
    }
  }
}

TEST(LpmTable, NodeCountGrowsWithRules) {
  LpmTable t;
  size_t before = t.node_count();
  t.Insert(0x80000000, 4, 1);
  EXPECT_GT(t.node_count(), before);
}

}  // namespace
}  // namespace clara
