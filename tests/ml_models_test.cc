// Feature-vector models: trees, ensembles, SVM, kNN, k-means, PCA, ranker,
// and the AutoML search.
#include <gtest/gtest.h>

#include <cmath>

#include "src/ml/automl.h"
#include "src/ml/ensemble.h"
#include "src/ml/kmeans.h"
#include "src/ml/knn.h"
#include "src/ml/linear.h"
#include "src/ml/metrics.h"
#include "src/ml/mlp.h"
#include "src/ml/pca.h"
#include "src/ml/tree.h"
#include "src/util/rng.h"

namespace clara {
namespace {

// y = step function of x0 plus mild noise.
TabularDataset StepData(size_t n, uint64_t seed) {
  TabularDataset d;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    double x0 = rng.NextDouble() * 10;
    double x1 = rng.NextDouble();
    double y = (x0 < 3 ? 1.0 : (x0 < 7 ? 5.0 : 9.0)) + rng.NextGaussian(0.05);
    d.x.push_back({x0, x1});
    d.y.push_back(y);
  }
  return d;
}

// Two linearly separable blobs (+ a third overlapping class for multiclass).
TabularDataset BlobData(size_t n, int classes, uint64_t seed) {
  TabularDataset d;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    int c = static_cast<int>(rng.NextBounded(classes));
    double cx = c * 4.0;
    double cy = (c % 2) * 4.0;
    d.x.push_back({cx + rng.NextGaussian(0.5), cy + rng.NextGaussian(0.5)});
    d.y.push_back(c);
  }
  return d;
}

TEST(RegressionTree, FitsStepFunction) {
  TabularDataset d = StepData(400, 1);
  RegressionTree tree(TreeOptions{4, 2, 0});
  tree.Fit(d);
  EXPECT_NEAR(tree.Predict({1.0, 0.5}), 1.0, 0.4);
  EXPECT_NEAR(tree.Predict({5.0, 0.5}), 5.0, 0.4);
  EXPECT_NEAR(tree.Predict({9.0, 0.5}), 9.0, 0.4);
}

TEST(RegressionTree, DepthZeroPredictsMean) {
  TabularDataset d;
  d.x = {{0}, {1}, {2}, {3}};
  d.y = {0, 0, 10, 10};
  RegressionTree tree(TreeOptions{0, 1, 0});
  tree.Fit(d);
  EXPECT_DOUBLE_EQ(tree.Predict({0}), 5.0);
}

// y = x0 * x1: an interaction a single shallow tree cannot capture but
// boosted shallow trees approximate well.
TabularDataset ProductData(size_t n, uint64_t seed) {
  TabularDataset d;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    double x0 = rng.NextDouble() * 10;
    double x1 = rng.NextDouble();
    d.x.push_back({x0, x1});
    d.y.push_back(x0 * x1 + rng.NextGaussian(0.05));
  }
  return d;
}

TEST(Gbdt, BeatsSingleShallowTree) {
  TabularDataset train = ProductData(500, 2);
  TabularDataset test = ProductData(200, 3);
  RegressionTree tree(TreeOptions{2, 2, 0});
  tree.Fit(train);
  GbdtOptions gopts;
  gopts.rounds = 80;
  gopts.tree = {2, 2, 0};
  GbdtRegressor gbdt(gopts);
  gbdt.Fit(train);
  double tree_err = 0;
  double gbdt_err = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    tree_err += std::abs(tree.Predict(test.x[i]) - test.y[i]);
    gbdt_err += std::abs(gbdt.Predict(test.x[i]) - test.y[i]);
  }
  EXPECT_LT(gbdt_err, tree_err);
}

TEST(RandomForest, ReasonableOnStepData) {
  TabularDataset train = StepData(400, 4);
  RandomForestRegressor rf;
  rf.Fit(train);
  EXPECT_NEAR(rf.Predict({1.0, 0.5}), 1.0, 1.0);
  EXPECT_NEAR(rf.Predict({9.0, 0.5}), 9.0, 1.0);
}

TEST(TreeClassifier, SeparatesBlobs) {
  TabularDataset d = BlobData(300, 3, 5);
  TreeClassifier tc(TreeOptions{6, 1, 0});
  tc.Fit(d, 3);
  int errors = 0;
  TabularDataset test = BlobData(150, 3, 6);
  for (size_t i = 0; i < test.size(); ++i) {
    errors += tc.Predict(test.x[i]) != static_cast<int>(test.y[i]);
  }
  EXPECT_LT(errors, 15);
}

TEST(LinearSvm, SeparatesBlobs) {
  TabularDataset d = BlobData(300, 2, 7);
  LinearSvm svm;
  svm.Fit(d, 2);
  TabularDataset test = BlobData(150, 2, 8);
  int errors = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    errors += svm.Predict(test.x[i]) != static_cast<int>(test.y[i]);
  }
  EXPECT_LT(errors, 8);
}

TEST(LinearSvm, MarginsOrderClasses) {
  TabularDataset d = BlobData(300, 2, 9);
  LinearSvm svm;
  svm.Fit(d, 2);
  FeatureVec near0 = {0.0, 0.0};
  EXPECT_GT(svm.Margin(near0, 0), svm.Margin(near0, 1));
}

TEST(Knn, ClassifiesAndRegresses) {
  TabularDataset d = BlobData(300, 3, 10);
  KnnClassifier kc(KnnOptions{5});
  kc.Fit(d, 3);
  EXPECT_EQ(kc.Predict({0.0, 0.0}), 0);
  EXPECT_EQ(kc.Predict({4.0, 4.0}), 1);

  TabularDataset r = StepData(300, 11);
  KnnRegressor kr(KnnOptions{5});
  kr.Fit(r);
  EXPECT_NEAR(kr.Predict({1.0, 0.5}), 1.0, 0.8);
}

TEST(KMeans, RecoversWellSeparatedClusters) {
  Rng rng(12);
  std::vector<FeatureVec> x;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 40; ++i) {
      x.push_back({c * 10.0 + rng.NextGaussian(0.3), rng.NextGaussian(0.3)});
    }
  }
  KMeansResult km = KMeans(x, 3);
  // All points of a ground-truth cluster share an assignment.
  for (int c = 0; c < 3; ++c) {
    int first = km.assignment[c * 40];
    for (int i = 1; i < 40; ++i) {
      EXPECT_EQ(km.assignment[c * 40 + i], first) << "cluster " << c;
    }
  }
  EXPECT_LT(km.inertia, 100.0);
}

TEST(KMeans, ElbowPicksRightK) {
  Rng rng(13);
  std::vector<FeatureVec> x;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 30; ++i) {
      x.push_back({c * 20.0 + rng.NextGaussian(0.4), rng.NextGaussian(0.4)});
    }
  }
  EXPECT_EQ(ChooseKByElbow(x, 8), 3);
}

TEST(Pca, RecoversDominantDirection) {
  Rng rng(14);
  std::vector<FeatureVec> x;
  for (int i = 0; i < 300; ++i) {
    double t = rng.NextGaussian(5.0);
    x.push_back({t, 0.5 * t + rng.NextGaussian(0.1), rng.NextGaussian(0.1)});
  }
  PcaResult pca = ComputePca(x, 2);
  ASSERT_EQ(pca.components.size(), 2u);
  // First component aligns with (1, 0.5, 0) normalized.
  double norm = std::sqrt(1.25);
  double dot = pca.components[0][0] * (1 / norm) + pca.components[0][1] * (0.5 / norm);
  EXPECT_GT(std::abs(dot), 0.98);
  EXPECT_GT(pca.explained_variance[0], pca.explained_variance[1] * 10);
}

TEST(Pca, ProjectionCentersData) {
  std::vector<FeatureVec> x = {{1, 2}, {3, 2}, {5, 2}};
  PcaResult pca = ComputePca(x, 1);
  FeatureVec p = pca.Project({3, 2});  // the mean maps to ~0
  EXPECT_NEAR(p[0], 0.0, 1e-9);
}

TEST(Ranker, LearnsPairwiseOrder) {
  // Relevance = -x0 (smaller feature is better). Groups of 4.
  Rng rng(15);
  std::vector<RankGroup> groups;
  for (int g = 0; g < 60; ++g) {
    RankGroup grp;
    for (int i = 0; i < 4; ++i) {
      double v = rng.NextDouble() * 10;
      grp.items.push_back({v, rng.NextDouble()});
      grp.relevance.push_back(-v);
    }
    groups.push_back(std::move(grp));
  }
  GbdtOptions o;
  o.rounds = 40;
  GbdtRanker ranker(o);
  ranker.Fit(groups);
  EXPECT_GT(ranker.Score({1.0, 0.5}), ranker.Score({9.0, 0.5}));
  EXPECT_GT(ranker.Score({3.0, 0.1}), ranker.Score({7.0, 0.9}));
}

TEST(AutoMl, RegressionPicksAndFits) {
  TabularDataset d = StepData(300, 16);
  AutoMlReport report;
  auto model = AutoMlRegression(d, &report, 3);
  ASSERT_NE(model, nullptr);
  EXPECT_FALSE(report.chosen.empty());
  EXPECT_LT(report.cv_error, 1.0);
  EXPECT_NEAR(model->Predict({1.0, 0.5}), 1.0, 1.0);
}

TEST(AutoMl, ClassificationPicksAndFits) {
  TabularDataset d = BlobData(240, 3, 17);
  AutoMlReport report;
  auto model = AutoMlClassification(d, 3, &report, 3);
  ASSERT_NE(model, nullptr);
  EXPECT_LT(report.cv_error, 0.15);
  EXPECT_EQ(model->Predict({0.0, 0.0}), 0);
}

TEST(Mlp, RegressesSmoothFunction) {
  TabularDataset d;
  Rng rng(18);
  for (int i = 0; i < 500; ++i) {
    double a = rng.NextDouble() * 2 - 1;
    double b = rng.NextDouble() * 2 - 1;
    d.x.push_back({a, b});
    d.y.push_back(2 * a + 3 * b + 1);
  }
  MlpOptions o;
  o.epochs = 120;
  MlpRegressor mlp(o);
  mlp.Fit(d);
  EXPECT_NEAR(mlp.Predict({0.5, -0.5}), 2 * 0.5 - 3 * 0.5 + 1, 0.35);
}

TEST(MlpClassifier, SeparatesBlobs) {
  TabularDataset d = BlobData(300, 2, 19);
  MlpClassifier mlp;
  mlp.Fit(d, 2);
  TabularDataset test = BlobData(100, 2, 20);
  int errors = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    errors += mlp.Predict(test.x[i]) != static_cast<int>(test.y[i]);
  }
  EXPECT_LT(errors, 6);
}

TEST(Standardizer, ZeroMeanUnitVariance) {
  std::vector<FeatureVec> x = {{1, 100}, {3, 300}, {5, 500}};
  Standardizer std_;
  std_.Fit(x);
  auto z = std_.ApplyAll(x);
  double mean0 = (z[0][0] + z[1][0] + z[2][0]) / 3;
  EXPECT_NEAR(mean0, 0.0, 1e-12);
  EXPECT_NEAR(z[2][0], -z[0][0], 1e-12);
}

}  // namespace
}  // namespace clara
