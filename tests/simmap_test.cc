// SimMap: the interpreter's probe-accurate hash maps (control-flow twin of
// the lowered IR probe loops).
#include <gtest/gtest.h>

#include "src/lang/interp.h"
#include "src/util/rng.h"

namespace clara {
namespace {

StateDecl NicMapDecl(uint32_t capacity = 64, uint32_t spb = 4) {
  StateDecl d;
  d.name = "m";
  d.kind = StateKind::kMap;
  d.key_fields = {Type::kI32};
  d.value_fields = {{"v", Type::kI32}};
  d.capacity = capacity;
  d.slots_per_bucket = spb;
  d.impl = MapImpl::kNicFixedBucket;
  return d;
}

StateDecl HostMapDecl(uint32_t capacity = 64) {
  StateDecl d = NicMapDecl(capacity);
  d.impl = MapImpl::kHostLinearProbe;
  return d;
}

TEST(SimMap, FindMissOnEmptyStopsImmediately) {
  SimMap m(NicMapDecl());
  auto r = m.Find({42}, nullptr);
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.stopped_empty);
  EXPECT_EQ(r.probes, 1u);
  EXPECT_EQ(r.continues, 0u);
}

TEST(SimMap, InsertThenFindReturnsValue) {
  SimMap m(NicMapDecl());
  auto ri = m.Insert({42}, {777});
  EXPECT_TRUE(ri.found);
  std::vector<uint64_t> vals;
  auto rf = m.Find({42}, &vals);
  EXPECT_TRUE(rf.found);
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_EQ(vals[0], 777u);
  EXPECT_EQ(m.entries(), 1u);
}

TEST(SimMap, OverwriteDoesNotGrow) {
  SimMap m(NicMapDecl());
  m.Insert({42}, {1});
  m.Insert({42}, {2});
  EXPECT_EQ(m.entries(), 1u);
  std::vector<uint64_t> vals;
  m.Find({42}, &vals);
  EXPECT_EQ(vals[0], 2u);
}

TEST(SimMap, NicBucketBoundsProbes) {
  SimMap m(NicMapDecl(64, 4));
  // Probes never exceed slots-per-bucket regardless of occupancy.
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    m.Insert({rng.NextBounded(1000) + 1}, {1});
  }
  for (int i = 0; i < 200; ++i) {
    auto r = m.Find({rng.NextBounded(1000) + 1}, nullptr);
    EXPECT_LE(r.probes, 4u);
  }
}

TEST(SimMap, NicBucketOverflowFailsInsert) {
  // Single bucket of 2 slots: third distinct colliding key must fail.
  StateDecl d = NicMapDecl(2, 2);
  SimMap m(d);
  int ok = 0;
  for (uint64_t k = 1; k <= 3; ++k) {
    auto r = m.Insert({k}, {k});
    ok += r.found ? 1 : 0;
    if (!r.found) {
      EXPECT_TRUE(r.exhausted);
    }
  }
  EXPECT_EQ(ok, 2);
}

TEST(SimMap, HostProbeWrapsAround) {
  // Host maps probe past the physical end with wraparound; fill most of a
  // small table and verify everything is still findable.
  SimMap m(HostMapDecl(16));
  for (uint64_t k = 1; k <= 12; ++k) {
    ASSERT_TRUE(m.Insert({k * 7919}, {k}).found);
  }
  for (uint64_t k = 1; k <= 12; ++k) {
    std::vector<uint64_t> vals;
    auto r = m.Find({k * 7919}, &vals);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(vals[0], k);
  }
}

TEST(SimMap, EraseMarksInvalidOnly) {
  SimMap m(NicMapDecl());
  m.Insert({5}, {50});
  auto re = m.Erase({5});
  EXPECT_TRUE(re.found);
  EXPECT_EQ(m.entries(), 0u);
  EXPECT_FALSE(m.Find({5}, nullptr).found);
  // Slot is reusable.
  EXPECT_TRUE(m.Insert({5}, {51}).found);
}

TEST(SimMap, ProbeAccountingInvariants) {
  // continues == probes - 1 whenever the probe stopped early (hit or empty),
  // and continues == probes when the bound was exhausted.
  SimMap m(HostMapDecl(32));
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    uint64_t k = rng.NextBounded(60) + 1;
    SimMap::OpResult r;
    switch (rng.NextBounded(3)) {
      case 0: r = m.Insert({k}, {k}); break;
      case 1: r = m.Find({k}, nullptr); break;
      default: r = m.Erase({k}); break;
    }
    if (r.exhausted) {
      ASSERT_EQ(r.continues, r.probes);
    } else {
      ASSERT_EQ(r.continues + 1, r.probes);
    }
  }
}

TEST(SimMap, MultiKeyFieldsMatchAllFields) {
  StateDecl d;
  d.name = "m2";
  d.kind = StateKind::kMap;
  d.key_fields = {Type::kI32, Type::kI16};
  d.value_fields = {{"v", Type::kI32}};
  d.capacity = 64;
  d.impl = MapImpl::kNicFixedBucket;
  SimMap m(d);
  m.Insert({100, 7}, {1});
  EXPECT_TRUE(m.Find({100, 7}, nullptr).found);
  EXPECT_FALSE(m.Find({100, 8}, nullptr).found);
  EXPECT_FALSE(m.Find({101, 7}, nullptr).found);
}

TEST(SimMap, ClearEmptiesEverything) {
  SimMap m(NicMapDecl());
  for (uint64_t k = 1; k < 20; ++k) {
    m.Insert({k}, {k});
  }
  m.Clear();
  EXPECT_EQ(m.entries(), 0u);
  for (uint64_t k = 1; k < 20; ++k) {
    EXPECT_FALSE(m.Find({k}, nullptr).found);
  }
}

}  // namespace
}  // namespace clara
