// NF colocation ranking (§4.5): pairwise GBDT ranker trained on measured
// colocation friendliness.
#include "src/core/colocation.h"

#include <gtest/gtest.h>

#include "src/elements/elements.h"
#include "src/lang/interp.h"
#include "src/ml/metrics.h"
#include "src/nic/backend.h"
#include "src/nic/demand.h"

namespace clara {
namespace {

ColocationOptions FastOptions() {
  ColocationOptions opts;
  opts.train_nfs = 30;
  opts.train_groups = 60;
  opts.group_size = 4;
  opts.gbdt.rounds = 60;
  opts.synth.profile = UniformProfile();
  return opts;
}

class ColocationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new PerfModel();
    ranker_ = new ColocationRanker(FastOptions());
    ranker_->Train(*model_, WorkloadSpec::SmallFlows());
  }
  static void TearDownTestSuite() {
    delete ranker_;
    delete model_;
  }
  static PerfModel* model_;
  static ColocationRanker* ranker_;
};

PerfModel* ColocationFixture::model_ = nullptr;
ColocationRanker* ColocationFixture::ranker_ = nullptr;

NfDemand Demand(const std::string& name, const NicConfig& cfg) {
  NfInstance nf(MakeElementByName(name));
  EXPECT_TRUE(nf.ok());
  NicProgram nic = CompileToNic(nf.module());
  WorkloadSpec w = WorkloadSpec::SmallFlows();
  Trace t = GenerateTrace(w, 1000);
  for (auto& pkt : t.packets) {
    pkt.in_port = 0;
    nf.Process(pkt);
  }
  return BuildDemand(nf.module(), nic, nf.profile(), w, cfg);
}

TEST(PairOutcome, FriendlinessMetrics) {
  PairOutcome o;
  o.tput_a_solo = 10;
  o.tput_b_solo = 10;
  o.tput_a_coloc = 9;
  o.tput_b_coloc = 7;
  o.lat_a_solo = 2;
  o.lat_b_solo = 2;
  o.lat_a_coloc = 4;
  o.lat_b_coloc = 2;
  EXPECT_DOUBLE_EQ(o.Friendliness(RankObjective::kTotalThroughput), 0.8);
  EXPECT_DOUBLE_EQ(o.Friendliness(RankObjective::kAverageThroughput), 0.8);
  EXPECT_DOUBLE_EQ(o.Friendliness(RankObjective::kTotalLatency), 4.0 / 6.0);
  EXPECT_DOUBLE_EQ(o.Friendliness(RankObjective::kAverageLatency), 0.75);
}

TEST(MeasurePairTest, MemoryHogsInterfere) {
  PerfModel model;
  NfDemand mem;
  mem.compute_cycles = 40;
  StateDemand s;
  s.accesses_per_pkt = 6;
  s.words_per_access = 4;
  s.region = MemRegion::kEmem;
  s.cache_hit_rate = 0.05;
  mem.state.push_back(s);
  NfDemand cpu;
  cpu.compute_cycles = 400;

  PairOutcome hog_pair = MeasurePair(model, mem, mem);
  PairOutcome mixed = MeasurePair(model, mem, cpu);
  EXPECT_LT(hog_pair.Friendliness(RankObjective::kTotalThroughput),
            mixed.Friendliness(RankObjective::kTotalThroughput) + 1e-9);
}

TEST_F(ColocationFixture, RankerOrdersPairsByMeasuredFriendliness) {
  // Build a candidate set from real elements and verify top-1/top-3
  // ranking accuracy against ground-truth measurement (Figure 14a).
  NicConfig cfg = model_->config();
  std::vector<std::string> names = {"mazunat", "dnsproxy", "udpcount", "webgen",
                                    "aggcounter", "dpi"};
  std::vector<NfDemand> demands;
  for (const auto& n : names) {
    demands.push_back(Demand(n, cfg));
  }
  std::vector<std::vector<double>> true_scores;
  std::vector<std::vector<double>> pred_scores;
  for (size_t anchor = 0; anchor < demands.size(); ++anchor) {
    std::vector<double> ts;
    std::vector<double> ps;
    for (size_t other = 0; other < demands.size(); ++other) {
      if (other == anchor) {
        continue;
      }
      ts.push_back(MeasurePair(*model_, demands[anchor], demands[other])
                       .Friendliness(RankObjective::kTotalThroughput));
      ps.push_back(ranker_->ScorePair(demands[anchor], demands[other]));
    }
    true_scores.push_back(std::move(ts));
    pred_scores.push_back(std::move(ps));
  }
  double top1 = TopKAccuracy(true_scores, pred_scores, 1);
  double top3 = TopKAccuracy(true_scores, pred_scores, 3);
  EXPECT_GE(top3, 0.5);
  EXPECT_GE(top1, 0.3);
  EXPECT_GE(top3, top1);
}

TEST_F(ColocationFixture, PairFeaturesSymmetricStructure) {
  NicConfig cfg = model_->config();
  NfDemand a = Demand("aggcounter", cfg);
  NfDemand b = Demand("mazunat", cfg);
  FeatureVec fab = ColocationRanker::PairFeatures(a, b);
  FeatureVec fba = ColocationRanker::PairFeatures(b, a);
  EXPECT_EQ(fab.size(), 10u);
  // Feature 9 (total DRAM pressure) is symmetric.
  EXPECT_NEAR(fab[9], fba[9], 1e-9);
}

}  // namespace
}  // namespace clara
