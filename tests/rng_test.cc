#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace clara {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, GaussianRoughMoments) {
  Rng rng(13);
  double sum = 0;
  double sq = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian(2.0);
    sum += g;
    sq += g * g;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, WeightedRespectsWeights) {
  Rng rng(17);
  std::vector<double> w = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[rng.NextWeighted(w)];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[2], counts[1] * 2);
  EXPECT_LT(counts[2], counts[1] * 4);
}

TEST(Rng, WeightedAllZeroFallsBackToUniform) {
  Rng rng(19);
  std::vector<double> w = {0.0, 0.0, 0.0, 0.0};
  std::set<size_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(rng.NextWeighted(w));
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(23);
  auto p = rng.Permutation(50);
  std::set<size_t> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), 50u);
  EXPECT_EQ(*s.begin(), 0u);
  EXPECT_EQ(*s.rbegin(), 49u);
}

TEST(ZipfSampler, SkewFavorsLowRanks) {
  Rng rng(29);
  ZipfSampler zipf(1000, 1.2);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 50000; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  EXPECT_GT(counts[0], counts[10] * 2);
  EXPECT_GT(counts[0], 1000);
}

TEST(ZipfSampler, CoversSupport) {
  Rng rng(31);
  ZipfSampler zipf(4, 0.5);
  std::set<size_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(zipf.Sample(rng));
  }
  EXPECT_EQ(seen.size(), 4u);
}

}  // namespace
}  // namespace clara
