// Sequence models: the LSTM+FC regressor (and CNN baseline) must learn
// order-sensitive functions that bag-of-words models cannot represent.
#include <gtest/gtest.h>

#include "src/ml/cnn.h"
#include "src/ml/lstm.h"
#include "src/ml/metrics.h"
#include "src/ml/mlp.h"
#include "src/util/rng.h"

namespace clara {
namespace {

// Target = number of occurrences of token 2, scaled: a counting task.
SeqDataset CountingData(size_t n, int vocab, uint64_t seed) {
  SeqDataset d;
  d.vocab = vocab;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    SeqExample ex;
    size_t len = 4 + rng.NextBounded(28);
    int count = 0;
    for (size_t t = 0; t < len; ++t) {
      int tok = static_cast<int>(rng.NextBounded(vocab));
      ex.tokens.push_back(tok);
      count += tok == 2 ? 1 : 0;
    }
    ex.target = static_cast<double>(count * 3 + 1);
    d.examples.push_back(std::move(ex));
  }
  return d;
}

// Target depends on ORDER: count of bigram (1,2) occurrences. Bag-of-words
// cannot express this.
SeqDataset BigramData(size_t n, uint64_t seed) {
  SeqDataset d;
  d.vocab = 4;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    SeqExample ex;
    size_t len = 6 + rng.NextBounded(26);
    for (size_t t = 0; t < len; ++t) {
      ex.tokens.push_back(static_cast<int>(rng.NextBounded(4)));
    }
    int count = 0;
    for (size_t t = 0; t + 1 < ex.tokens.size(); ++t) {
      count += (ex.tokens[t] == 1 && ex.tokens[t + 1] == 2) ? 1 : 0;
    }
    ex.target = static_cast<double>(count * 5 + 2);
    d.examples.push_back(std::move(ex));
  }
  return d;
}

double EvalWmape(const SeqRegressor& model, const SeqDataset& test) {
  std::vector<double> truth;
  std::vector<double> pred;
  for (const auto& ex : test.examples) {
    truth.push_back(ex.target);
    pred.push_back(model.Predict(ex.tokens));
  }
  return Wmape(truth, pred);
}

TEST(Lstm, LearnsCountingTask) {
  SeqDataset train = CountingData(400, 8, 1);
  SeqDataset test = CountingData(150, 8, 2);
  LstmOptions o;
  o.epochs = 15;
  o.hidden = 16;
  LstmRegressor lstm(o);
  lstm.Fit(train);
  EXPECT_LT(lstm.train_wmape(), 0.25);
  EXPECT_LT(EvalWmape(lstm, test), 0.3);
}

TEST(Lstm, LearnsOrderSensitiveTask) {
  SeqDataset train = BigramData(500, 3);
  SeqDataset test = BigramData(150, 4);
  LstmOptions o;
  o.epochs = 20;
  o.hidden = 16;
  LstmRegressor lstm(o);
  lstm.Fit(train);
  EXPECT_LT(EvalWmape(lstm, test), 0.35);
}

TEST(Lstm, PredictionsNonNegative) {
  SeqDataset train = CountingData(100, 8, 5);
  LstmOptions o;
  o.epochs = 3;
  o.hidden = 8;
  LstmRegressor lstm(o);
  lstm.Fit(train);
  for (const auto& ex : train.examples) {
    EXPECT_GE(lstm.Predict(ex.tokens), 0.0);
  }
}

TEST(Lstm, DeterministicGivenSeed) {
  SeqDataset train = CountingData(80, 6, 6);
  LstmOptions o;
  o.epochs = 3;
  o.hidden = 8;
  LstmRegressor a(o);
  LstmRegressor b(o);
  a.Fit(train);
  b.Fit(train);
  EXPECT_DOUBLE_EQ(a.Predict(train.examples[0].tokens), b.Predict(train.examples[0].tokens));
}

TEST(Cnn, LearnsLocalPatterns) {
  SeqDataset train = BigramData(500, 7);
  SeqDataset test = BigramData(150, 8);
  CnnOptions o;
  o.epochs = 30;
  CnnRegressor cnn(o);
  cnn.Fit(train);
  // A width-3 conv can see bigrams: should do reasonably well.
  EXPECT_LT(EvalWmape(cnn, test), 0.5);
}

TEST(SeqModels, LstmBeatsBagOfWordsOnOrderTask) {
  // The Figure 8 phenomenon in miniature: train an MLP on histogram
  // features and the LSTM on sequences for an order-sensitive target.
  SeqDataset train = BigramData(500, 9);
  SeqDataset test = BigramData(200, 10);

  LstmOptions lo;
  lo.epochs = 20;
  lo.hidden = 16;
  LstmRegressor lstm(lo);
  lstm.Fit(train);

  auto histogram = [&](const std::vector<int>& tokens) {
    FeatureVec h(train.vocab, 0.0);
    for (int t : tokens) {
      h[t] += 1.0;
    }
    return h;
  };
  TabularDataset bow;
  for (const auto& ex : train.examples) {
    bow.x.push_back(histogram(ex.tokens));
    bow.y.push_back(ex.target);
  }
  MlpOptions mo;
  mo.epochs = 150;
  MlpRegressor mlp(mo);
  mlp.Fit(bow);

  std::vector<double> truth;
  std::vector<double> lstm_pred;
  std::vector<double> mlp_pred;
  for (const auto& ex : test.examples) {
    truth.push_back(ex.target);
    lstm_pred.push_back(lstm.Predict(ex.tokens));
    mlp_pred.push_back(mlp.Predict(histogram(ex.tokens)));
  }
  double lstm_wmape = Wmape(truth, lstm_pred);
  double mlp_wmape = Wmape(truth, mlp_pred);
  EXPECT_LT(lstm_wmape, mlp_wmape);
}

TEST(Lstm, HandlesEmptySequence) {
  SeqDataset train = CountingData(60, 6, 11);
  LstmOptions o;
  o.epochs = 2;
  o.hidden = 8;
  LstmRegressor lstm(o);
  lstm.Fit(train);
  EXPECT_GE(lstm.Predict({}), 0.0);  // no crash, sane output
}

TEST(Lstm, TruncatesLongSequences) {
  SeqDataset train = CountingData(60, 6, 12);
  LstmOptions o;
  o.epochs = 2;
  o.hidden = 8;
  o.max_seq_len = 16;
  LstmRegressor lstm(o);
  lstm.Fit(train);
  std::vector<int> long_seq(5000, 1);
  EXPECT_GE(lstm.Predict(long_seq), 0.0);
}

}  // namespace
}  // namespace clara
