#!/usr/bin/env bash
# End-to-end smoke test for the serving subsystem: train a small bundle with
# clara_cli, run the pipe-mode daemon over a stream that mixes good requests
# with a malformed frame, check every request gets a structured answer, then
# exercise socket mode (including the stats/health/dump control plane, the
# SIGUSR1 flight dump, and request tracing) and a SIGTERM shutdown.
#
# Usage: serve_smoke.sh [build-dir]   (defaults to the current directory)
set -euo pipefail

BUILD_DIR="${1:-$(pwd)}"
CLI="$BUILD_DIR/tools/clara_cli"
SERVE="$BUILD_DIR/tools/clara_serve"
CLIENT="$BUILD_DIR/tools/clara_client"
CHECK_TRACE="$(dirname "$0")/../tools/check_trace.py"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Asserts that stdin is one well-formed JSON document.
assert_json() {
  python3 -c 'import json,sys; json.load(sys.stdin)' || {
    echo "serve_smoke: $1 is not valid JSON" >&2
    return 1
  }
}

echo "== train a small bundle =="
"$CLI" train --fast --model-dir="$WORK/models"
test -f "$WORK/models/clara_bundle.bin"

echo "== pipe daemon: 4 requests, one malformed =="
{
  "$CLIENT" --emit --element=aggcounter --count=2
  "$CLIENT" --emit-malformed
  "$CLIENT" --emit --element=heavyhitter
} > "$WORK/requests.bin"
"$SERVE" --pipe --model-dir="$WORK/models" --infer=int8 < "$WORK/requests.bin" \
  > "$WORK/responses.bin"

set +e
"$CLIENT" --decode < "$WORK/responses.bin" > "$WORK/decoded.txt"
decode_rc=$?
set -e
cat "$WORK/decoded.txt"
# The malformed frame must produce an error response (decode exits 1), but
# all four frames must still be answered -- the daemon never drops or dies.
test "$decode_rc" -eq 1
responses=$(grep -c '^\[' "$WORK/decoded.txt")
errors=$(grep -c 'ERROR' "$WORK/decoded.txt")
test "$responses" -eq 4
test "$errors" -eq 1

echo "== socket daemon: clients, control plane, tracing, SIGTERM shutdown =="
"$SERVE" --socket="$WORK/clara.sock" --model-dir="$WORK/models" \
  --infer=int8 --trace="$WORK/serve_trace.json" --slo-p99-us=1000000 \
  --metrics-jsonl="$WORK/metrics.jsonl" --metrics-interval=200 \
  2> "$WORK/serve.log" &
pid=$!
for _ in $(seq 1 100); do
  [ -S "$WORK/clara.sock" ] && break
  sleep 0.1
done
test -S "$WORK/clara.sock"
"$CLIENT" --socket="$WORK/clara.sock" --element=udpcount
"$CLIENT" --socket="$WORK/clara.sock" --element=udpcount --trace-id=7 --full \
  | tee "$WORK/traced.txt"
grep -q 'trace=7 cache-hit' "$WORK/traced.txt"

echo "== control plane: stats/health/dump return well-formed JSON =="
"$CLIENT" stats --socket="$WORK/clara.sock" | tee "$WORK/stats.json" \
  | assert_json stats
grep -q 'serve.requests' "$WORK/stats.json"
grep -q '"stats_version":2' "$WORK/stats.json"
grep -q '"infer":"int8"' "$WORK/stats.json"
# The epoll transport (the socket-mode default) reports itself in the envelope.
grep -q '"transport":{"mode":"epoll"' "$WORK/stats.json"

echo "== pidfile: a second daemon on the same socket refuses to start =="
set +e
"$SERVE" --socket="$WORK/clara.sock" --model-dir="$WORK/models" \
  2> "$WORK/serve2.log"
second_rc=$?
set -e
test "$second_rc" -ne 0
grep -q 'refusing to start' "$WORK/serve2.log"
grep -q "pid $pid" "$WORK/serve2.log"
# The incumbent's socket must NOT have been unlinked by the loser.
test -S "$WORK/clara.sock"
"$CLIENT" --socket="$WORK/clara.sock" --element=udpcount > /dev/null
"$CLIENT" health --socket="$WORK/clara.sock" | tee "$WORK/health.json" \
  | assert_json health
grep -q '"status":"ok"' "$WORK/health.json"
grep -q '"artifact_version"' "$WORK/health.json"
grep -q '"infer":"int8"' "$WORK/health.json"
"$CLIENT" dump --socket="$WORK/clara.sock" | tee "$WORK/dump.json" \
  | assert_json dump
grep -q '"records"' "$WORK/dump.json"
grep -q 'udpcount' "$WORK/dump.json"

echo "== hot reload: control frame and SIGHUP both bump artifact_version =="
grep -q '"artifact_version":1' "$WORK/health.json"
"$CLIENT" reload --socket="$WORK/clara.sock" | tee "$WORK/reload.json" \
  | assert_json reload
grep -q '"reloaded":true' "$WORK/reload.json"
"$CLIENT" health --socket="$WORK/clara.sock" | tee "$WORK/health2.json" > /dev/null
grep -q '"artifact_version":2' "$WORK/health2.json"
# Requests keep answering across the swap (the response cache restarts cold).
"$CLIENT" --socket="$WORK/clara.sock" --element=udpcount > /dev/null
kill -HUP "$pid"
# SIGHUP reloads when the accept loop next wakes; poke it with health queries.
for _ in $(seq 1 50); do
  "$CLIENT" health --socket="$WORK/clara.sock" > "$WORK/health3.json"
  grep -q '"artifact_version":3' "$WORK/health3.json" && break
  sleep 0.1
done
grep -q '"artifact_version":3' "$WORK/health3.json"
grep -q 'reloaded' "$WORK/serve.log"

echo "== SIGUSR1 dumps the flight recorder to stderr =="
kill -USR1 "$pid"
# The dump is written when the accept loop next wakes; poke it with a query.
for _ in $(seq 1 50); do
  "$CLIENT" health --socket="$WORK/clara.sock" > /dev/null
  grep -q 'flight recorder dump' "$WORK/serve.log" && break
  sleep 0.1
done
grep -q 'flight recorder dump' "$WORK/serve.log"

kill -TERM "$pid"
wait "$pid"
grep -q 'shut down cleanly' "$WORK/serve.log"

echo "== emitted trace has nested per-request serve spans =="
python3 "$CHECK_TRACE" --serve-trace "$WORK/serve_trace.json"

echo "== periodic metrics export is JSONL time series =="
test -s "$WORK/metrics.jsonl"
python3 - "$WORK/metrics.jsonl" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert lines, "metrics.jsonl is empty"
for line in lines:
    doc = json.loads(line)
    assert "ts_ms" in doc and "seq" in doc and "metrics" in doc, doc.keys()
print(f"serve_smoke: {len(lines)} metrics sample(s)")
EOF

echo "serve_smoke: PASS"
