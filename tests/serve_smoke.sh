#!/usr/bin/env bash
# End-to-end smoke test for the serving subsystem: train a small bundle with
# clara_cli, run the pipe-mode daemon over a stream that mixes good requests
# with a malformed frame, check every request gets a structured answer, then
# exercise socket mode and a SIGTERM shutdown.
#
# Usage: serve_smoke.sh [build-dir]   (defaults to the current directory)
set -euo pipefail

BUILD_DIR="${1:-$(pwd)}"
CLI="$BUILD_DIR/tools/clara_cli"
SERVE="$BUILD_DIR/tools/clara_serve"
CLIENT="$BUILD_DIR/tools/clara_client"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== train a small bundle =="
"$CLI" train --fast --model-dir="$WORK/models"
test -f "$WORK/models/clara_bundle.bin"

echo "== pipe daemon: 4 requests, one malformed =="
{
  "$CLIENT" --emit --element=aggcounter --count=2
  "$CLIENT" --emit-malformed
  "$CLIENT" --emit --element=heavyhitter
} > "$WORK/requests.bin"
"$SERVE" --pipe --model-dir="$WORK/models" < "$WORK/requests.bin" \
  > "$WORK/responses.bin"

set +e
"$CLIENT" --decode < "$WORK/responses.bin" > "$WORK/decoded.txt"
decode_rc=$?
set -e
cat "$WORK/decoded.txt"
# The malformed frame must produce an error response (decode exits 1), but
# all four frames must still be answered -- the daemon never drops or dies.
test "$decode_rc" -eq 1
responses=$(grep -c '^\[' "$WORK/decoded.txt")
errors=$(grep -c 'ERROR' "$WORK/decoded.txt")
test "$responses" -eq 4
test "$errors" -eq 1

echo "== socket daemon: concurrent clients + SIGTERM shutdown =="
"$SERVE" --socket="$WORK/clara.sock" --model-dir="$WORK/models" \
  2> "$WORK/serve.log" &
pid=$!
for _ in $(seq 1 100); do
  [ -S "$WORK/clara.sock" ] && break
  sleep 0.1
done
test -S "$WORK/clara.sock"
"$CLIENT" --socket="$WORK/clara.sock" --element=udpcount
"$CLIENT" --socket="$WORK/clara.sock" --element=udpcount
kill -TERM "$pid"
wait "$pid"
grep -q 'shut down cleanly' "$WORK/serve.log"

echo "serve_smoke: PASS"
