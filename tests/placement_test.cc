// NF state placement (§4.3): ILP placement, naive baseline, and the
// exhaustive expert search.
#include "src/core/placement.h"

#include <gtest/gtest.h>

#include "src/elements/elements.h"
#include "src/nic/backend.h"

namespace clara {
namespace {

struct Profiled {
  std::unique_ptr<NfInstance> nf;
  NicProgram nic;
  WorkloadSpec workload;
};

Profiled Profile(Program p, const WorkloadSpec& w, size_t packets = 2000) {
  Profiled out;
  out.nf = std::make_unique<NfInstance>(std::move(p));
  EXPECT_TRUE(out.nf->ok());
  out.nic = CompileToNic(out.nf->module());
  out.workload = w;
  Trace t = GenerateTrace(w, packets);
  for (auto& pkt : t.packets) {
    pkt.in_port = 0;
    out.nf->Process(pkt);
  }
  return out;
}

TEST(Placement, NaiveIsAllEmem) {
  Program p = MakeUdpCount();
  LowerResult lr = LowerProgram(p);
  auto naive = NaivePlacement(lr.module);
  EXPECT_EQ(naive.size(), lr.module.state.size());
  for (const auto& [name, region] : naive) {
    EXPECT_EQ(region, MemRegion::kEmem);
  }
}

TEST(Placement, HotSmallStateLeavesEmem) {
  // Paper §5.5: in UDPCount, small frequently-accessed structures (the
  // per-port counters) move out of EMEM.
  NicConfig cfg;
  Profiled pr = Profile(MakeUdpCount(), WorkloadSpec::SmallFlows());
  PlacementResult r =
      PlaceState(pr.nf->module(), pr.nf->profile(), pr.workload, cfg);
  ASSERT_TRUE(r.ok);
  EXPECT_NE(r.placement.at("udp_pkts"), MemRegion::kEmem);
  EXPECT_NE(r.placement.at("port_counts"), MemRegion::kEmem);
}

TEST(Placement, OversizedStructuresStayInBigRegions) {
  NicConfig cfg;
  Profiled pr = Profile(MakeMazuNat(), WorkloadSpec::SmallFlows());
  PlacementResult r = PlaceState(pr.nf->module(), pr.nf->profile(), pr.workload, cfg);
  ASSERT_TRUE(r.ok);
  // The two 8K-entry flow maps cannot fit in CLS (64 KB).
  EXPECT_NE(r.placement.at("int_map"), MemRegion::kCls);
  EXPECT_NE(r.placement.at("ext_map"), MemRegion::kCls);
}

TEST(Placement, RespectsAggregateCapacity) {
  NicConfig cfg;
  for (const char* name : {"udpcount", "mazunat", "dnsproxy", "webgen"}) {
    Profiled pr = Profile(MakeElementByName(name), WorkloadSpec::SmallFlows());
    PlacementResult r = PlaceState(pr.nf->module(), pr.nf->profile(), pr.workload, cfg);
    ASSERT_TRUE(r.ok) << name;
    uint64_t used[kNumMemRegions] = {0, 0, 0, 0};
    const Module& m = pr.nf->module();
    for (size_t v = 0; v < m.state.size(); ++v) {
      used[static_cast<int>(r.placement.at(m.state[v].name))] += m.state[v].SizeBytes();
    }
    for (int reg = 0; reg < kNumMemRegions; ++reg) {
      EXPECT_LE(used[reg], cfg.regions[reg].capacity_bytes) << name;
    }
  }
}

TEST(Placement, ImprovesOverNaive) {
  // Figure 12: Clara placement beats the all-EMEM naive port on both
  // latency and throughput.
  NicConfig cfg;
  PerfModel model(cfg);
  Profiled pr = Profile(MakeUdpCount(), WorkloadSpec::SmallFlows());
  const Module& m = pr.nf->module();

  DemandOptions naive_opts;
  naive_opts.placement = NaivePlacement(m);
  NfDemand naive = BuildDemand(m, pr.nic, pr.nf->profile(), pr.workload, cfg, naive_opts);

  PlacementResult r = PlaceState(m, pr.nf->profile(), pr.workload, cfg);
  DemandOptions clara_opts;
  clara_opts.placement = r.placement;
  NfDemand clara = BuildDemand(m, pr.nic, pr.nf->profile(), pr.workload, cfg, clara_opts);

  int cores = 24;
  PerfPoint p_naive = model.Evaluate(naive, cores);
  PerfPoint p_clara = model.Evaluate(clara, cores);
  EXPECT_LT(p_clara.latency_us, p_naive.latency_us);
  EXPECT_GE(p_clara.throughput_mpps, p_naive.throughput_mpps * 0.999);
}

TEST(Placement, IlpMatchesOrBeatsGreedyObjective) {
  NicConfig cfg;
  Profiled pr = Profile(MakeDnsProxy(), WorkloadSpec::SmallFlows());
  PlacementResult ilp = PlaceState(pr.nf->module(), pr.nf->profile(), pr.workload, cfg);
  ASSERT_TRUE(ilp.ok);
  EXPECT_GT(ilp.ilp_nodes, 0u);
  EXPECT_LT(ilp.solve_seconds, 5.0);  // paper: "within a few seconds"
}

TEST(Placement, ExhaustiveExpertAtLeastAsGood) {
  // Figure 15: the expert sweep can only beat Clara by a bounded margin.
  NicConfig cfg;
  PerfModel model(cfg);
  Profiled pr = Profile(MakeUdpCount(), WorkloadSpec::SmallFlows());
  const Module& m = pr.nf->module();
  int cores = 24;

  PlacementResult clara = PlaceState(m, pr.nf->profile(), pr.workload, cfg);
  PlacementResult expert =
      ExhaustivePlacement(m, pr.nic, pr.nf->profile(), pr.workload, model, cores);
  ASSERT_TRUE(clara.ok);
  ASSERT_TRUE(expert.ok);

  auto eval = [&](const std::map<std::string, MemRegion>& placement) {
    DemandOptions opts;
    opts.placement = placement;
    return model.Evaluate(BuildDemand(m, pr.nic, pr.nf->profile(), pr.workload, cfg, opts),
                          cores);
  };
  PerfPoint p_clara = eval(clara.placement);
  PerfPoint p_expert = eval(expert.placement);
  double ratio = p_expert.RatioMppsPerUs() / std::max(1e-12, p_clara.RatioMppsPerUs());
  EXPECT_GE(ratio, 0.999);  // expert never loses
  EXPECT_LT(ratio, 1.5);    // ...but Clara stays competitive (paper: <~10%)
}

}  // namespace
}  // namespace clara
