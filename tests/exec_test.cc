// Tests for the NIC ISA executor (src/nic/exec.h) and the differential
// harness (src/nic/diff.h): per-opcode semantics, macro-op expansions
// (mul/div software routines, stack promotion/spilling), and an exhaustive
// opcode-coverage assertion over the executed instruction histogram.
#include "src/nic/exec.h"

#include <array>
#include <functional>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "src/ir/builder.h"
#include "src/lang/ast.h"
#include "src/lang/interp.h"
#include "src/nic/backend.h"
#include "src/nic/diff.h"
#include "src/synth/synth.h"
#include "src/workload/workload.h"

namespace clara {
namespace {

std::vector<ExprPtr> Args(ExprPtr a) {
  std::vector<ExprPtr> v;
  v.push_back(std::move(a));
  return v;
}

std::vector<Packet> TestTrace(size_t n = 16, uint64_t seed = 99) {
  WorkloadSpec spec;
  spec.seed = seed;
  spec.num_flows = 5;  // few flows => repeated 5-tuples => map hits
  return GenerateTrace(spec, n).packets;
}

// Runs `prog` differentially and expects zero divergence.
void ExpectEquivalent(const Program& prog, size_t packets = 16) {
  DiffResult r = RunDifferential(prog, TestTrace(packets));
  EXPECT_FALSE(r.setup_failed) << r.detail;
  EXPECT_TRUE(r.ok) << r.detail << " (packet " << r.packet_index << ")";
}

// Compiles `prog`'s lowering with `opts`, runs both NfEnv-based executors
// over a trace, compares outputs, and returns the executor's opcode
// histogram.
std::array<uint64_t, 16> RunIrVsNic(const Program& prog,
                                    const NicBackendOptions& opts,
                                    size_t packets = 16) {
  NfInstance inst(CloneProgram(prog), 1);
  EXPECT_TRUE(inst.ok()) << inst.error();
  const Module& m = inst.module();
  const Function& f = m.functions[0];
  NicProgram np = CompileToNic(m, f, opts);

  IrRefInterpreter ir(m, f);
  NicExecutor nic(m, np);
  NfEnv ir_env, nic_env;
  ir_env.InitState(m, &prog.state);
  nic_env.InitState(m, &prog.state);

  for (const Packet& p : TestTrace(packets)) {
    Packet pi = p, pn = p;
    PacketToEnv(pi, ir_env);
    bool ir_ok = ir.RunPacket(ir_env);
    EXPECT_TRUE(ir_ok) << ir.error();
    EnvToPacket(ir_env, pi);
    PacketToEnv(pn, nic_env);
    bool nic_ok = nic.RunPacket(nic_env);
    EXPECT_TRUE(nic_ok) << nic.error();
    EnvToPacket(nic_env, pn);
    if (!ir_ok || !nic_ok) {
      break;
    }
    std::string d = ComparePackets(pi, pn, "ir", "nic");
    EXPECT_EQ(d, "");
  }
  EXPECT_EQ(ir_env.state, nic_env.state);
  return nic.op_histogram();
}

// ---- basic environment plumbing ----

TEST(NfEnvTest, PacketRoundTrip) {
  Packet p = TestTrace(1)[0];
  p.ip_ttl = 7;
  p.tcp_flags = 0x12;
  p.payload[3] = 0xab;
  NfEnv env;
  PacketToEnv(p, env);
  Packet q;
  EnvToPacket(env, q);
  EXPECT_EQ(ComparePackets(p, q, "in", "out"), "");
  EXPECT_EQ(q.ip_ttl, 7);
  EXPECT_EQ(q.payload[3], 0xab);
}

TEST(NfEnvTest, MaskToTypeWidths) {
  EXPECT_EQ(MaskToType(0x1ff, Type::kI8), 0xffu);
  EXPECT_EQ(MaskToType(0x12345, Type::kI16), 0x2345u);
  EXPECT_EQ(MaskToType(~0ULL, Type::kI32), 0xffffffffULL);
  EXPECT_EQ(MaskToType(~0ULL, Type::kI64), ~0ULL);
  EXPECT_EQ(MaskToType(3, Type::kI1), 1u);
}

TEST(NfEnvTest, BarePayloadFieldReadsZero) {
  // The AST interpreter defines a bare pkt.payload reference (no index) as
  // 0; only payload[i] reads prefix bytes.
  Program prog;
  prog.name = "bare_payload";
  prog.body.push_back(AssignPkt("tcp.dport", Bin(Opcode::kOr, PktField("pkt.payload"),
                                                 Lit(0x100, Type::kI16))));
  ExpectEquivalent(prog);
}

// ---- per-opcode differential programs ----

TEST(ExecDiffTest, AluOpsAndImmediates) {
  Program prog;
  prog.name = "alu";
  prog.body.push_back(Decl("a", Type::kI32,
                           Bin(Opcode::kAdd, PktField("ip.src"), Lit(0x12345))));
  prog.body.push_back(Assign("a", Bin(Opcode::kSub, Local("a"), PktField("ip.dst"))));
  prog.body.push_back(Assign("a", Bin(Opcode::kAnd, Local("a"), Lit(0xff00ff))));
  prog.body.push_back(Assign("a", Bin(Opcode::kOr, Local("a"), PktField("tcp.sport"))));
  prog.body.push_back(Assign("a", Bin(Opcode::kXor, Local("a"), Lit(0xdeadbeef))));
  prog.body.push_back(AssignPkt("tcp.seq", Local("a")));
  ExpectEquivalent(prog);
}

TEST(ExecDiffTest, ShiftsConstAndRegister) {
  Program prog;
  prog.name = "shifts";
  prog.body.push_back(Decl("s", Type::kI32,
                           Bin(Opcode::kAnd, PktField("ip.ttl"), Lit(31))));
  prog.body.push_back(Decl("a", Type::kI32, Bin(Opcode::kShl, PktField("ip.src"), Lit(5))));
  prog.body.push_back(Assign("a", Bin(Opcode::kLShr, Local("a"), Lit(3))));
  prog.body.push_back(Assign("a", Bin(Opcode::kShl, Local("a"), Local("s"))));
  prog.body.push_back(Assign("a", Bin(Opcode::kLShr, Local("a"), Local("s"))));
  prog.body.push_back(AssignPkt("tcp.ack", Local("a")));
  ExpectEquivalent(prog);
}

TEST(ExecDiffTest, MulExpansions) {
  Program prog;
  prog.name = "mul";
  // pow2 -> single alu_shf; odd const -> immed + mul_step chain;
  // by-register -> 4-step sequence.
  prog.body.push_back(Decl("a", Type::kI32, Bin(Opcode::kMul, PktField("ip.src"), Lit(8))));
  prog.body.push_back(Decl("b", Type::kI32,
                           Bin(Opcode::kMul, PktField("ip.dst"), Lit(16777619))));
  prog.body.push_back(Decl("c", Type::kI32,
                           Bin(Opcode::kMul, Local("a"), Local("b"))));
  prog.body.push_back(AssignPkt("tcp.seq", Local("c")));
  NicBackendOptions opts;
  auto hist = RunIrVsNic(prog, opts);
  EXPECT_GT(hist[static_cast<size_t>(NicOp::kMulStep)], 0u);
  EXPECT_GT(hist[static_cast<size_t>(NicOp::kImmed)], 0u);
  ExpectEquivalent(prog);
}

TEST(ExecDiffTest, DivRemExpansions) {
  Program prog;
  prog.name = "div";
  prog.body.push_back(Decl("a", Type::kI32,
                           Bin(Opcode::kUDiv, PktField("ip.src"), Lit(64))));
  prog.body.push_back(Decl("b", Type::kI32,
                           Bin(Opcode::kUDiv, PktField("ip.dst"), Lit(77))));
  // Division by a register value that can be zero: both sides define x/0 = 0.
  prog.body.push_back(Decl("z", Type::kI32,
                           Bin(Opcode::kAnd, PktField("ip.tos"), Lit(3))));
  prog.body.push_back(Decl("c", Type::kI32,
                           Bin(Opcode::kUDiv, Local("a"), Local("z"))));
  prog.body.push_back(AssignPkt("tcp.seq",
                                Bin(Opcode::kAdd, Local("b"), Local("c"))));
  ExpectEquivalent(prog);
}

TEST(ExecDiffTest, ComparesFusedAndMaterialized) {
  Program prog;
  prog.name = "cmp";
  // Materialized: the boolean feeds arithmetic.
  prog.body.push_back(Decl("m", Type::kI32,
                           Cmp(Opcode::kIcmpUlt, PktField("tcp.sport"), Lit(1024))));
  prog.body.push_back(AssignPkt("ip.tos", Bin(Opcode::kAdd, Local("m"), Lit(1))));
  // Fused: the compare feeds the branch directly.
  std::vector<StmtPtr> then_b, else_b;
  then_b.push_back(AssignPkt("ip.ttl", Lit(9)));
  else_b.push_back(AssignPkt("ip.ttl", Lit(33)));
  prog.body.push_back(If(Cmp(Opcode::kIcmpUge, PktField("ip.src"), PktField("ip.dst")),
                         std::move(then_b), std::move(else_b)));
  ExpectEquivalent(prog);
}

TEST(ExecDiffTest, CastsAndWidths) {
  Program prog;
  prog.name = "casts";
  prog.body.push_back(Decl("w", Type::kI64,
                           Bin(Opcode::kMul, CastTo(Type::kI64, PktField("ip.src")),
                               Lit(0x100000001ULL, Type::kI64))));
  prog.body.push_back(Decl("n", Type::kI8, CastTo(Type::kI8, Local("w"))));
  prog.body.push_back(AssignPkt("ip.tos", Local("n")));
  prog.body.push_back(AssignPkt("tcp.ack", CastTo(Type::kI32, Local("w"))));
  ExpectEquivalent(prog);
}

TEST(ExecDiffTest, ControlFlowLoops) {
  Program prog;
  prog.name = "loops";
  prog.body.push_back(Decl("acc", Type::kI32, Lit(0)));
  std::vector<StmtPtr> body;
  body.push_back(Assign("acc", Bin(Opcode::kAdd, Local("acc"),
                                   Bin(Opcode::kXor, Local("i"), PktField("ip.src")))));
  prog.body.push_back(For("i", Lit(0), Lit(9), std::move(body)));
  prog.body.push_back(AssignPkt("tcp.seq", Local("acc")));
  ExpectEquivalent(prog);
}

TEST(ExecDiffTest, PacketPayloadAndMetadata) {
  Program prog;
  prog.name = "payload";
  prog.body.push_back(Decl("i", Type::kI32,
                           Bin(Opcode::kAnd, PktField("tcp.sport"), Lit(63))));
  prog.body.push_back(Decl("v", Type::kI32, PayloadAt(Local("i"))));
  prog.body.push_back(AssignPayload(Bin(Opcode::kAdd, Local("i"), Lit(1)),
                                    Bin(Opcode::kXor, Local("v"), Lit(0x5a))));
  prog.body.push_back(AssignPkt("pkt.in_port",
                                Bin(Opcode::kAdd, PktField("pkt.len"),
                                    PktField("pkt.payload_len"))));
  ExpectEquivalent(prog);
}

TEST(ExecDiffTest, StateScalarAndArray) {
  Program prog;
  prog.name = "state";
  StateDecl counter;
  counter.name = "count";
  counter.kind = StateKind::kScalar;
  counter.elem_type = Type::kI64;
  prog.state.push_back(std::move(counter));
  StateDecl table;
  table.name = "tbl";
  table.kind = StateKind::kArray;
  table.elem_type = Type::kI32;
  table.length = 16;
  table.init = {5, 10, 15};
  prog.state.push_back(std::move(table));

  prog.body.push_back(AssignState("count", Bin(Opcode::kAdd, StateRef("count"), Lit(1))));
  prog.body.push_back(Decl("idx", Type::kI32,
                           Bin(Opcode::kAnd, PktField("ip.src"), Lit(15))));
  prog.body.push_back(AssignStateAt("tbl", Local("idx"),
                                    Bin(Opcode::kAdd, StateAt("tbl", Local("idx")),
                                        PktField("ip.ttl"))));
  prog.body.push_back(AssignPkt("tcp.ack", StateAt("tbl", Lit(1))));
  ExpectEquivalent(prog, 32);
}

TEST(ExecDiffTest, MapFindInsertProbes) {
  Program prog;
  prog.name = "map";
  StateDecl map;
  map.name = "flows";
  map.kind = StateKind::kMap;
  map.elem_type = Type::kI32;
  map.key_fields = {Type::kI32, Type::kI32};
  map.value_fields = {{"v0", Type::kI32}};
  map.capacity = 64;
  map.impl = MapImpl::kNicFixedBucket;
  map.slots_per_bucket = 4;
  prog.state.push_back(std::move(map));

  std::vector<ExprPtr> keys;
  keys.push_back(PktField("ip.src"));
  keys.push_back(PktField("ip.dst"));
  prog.body.push_back(Decl("v0", Type::kI32, Lit(0)));
  prog.body.push_back(MapFind("flows", std::move(keys), "hit", {"v0"}));
  std::vector<StmtPtr> then_b;
  std::vector<ExprPtr> k2, vals;
  k2.push_back(PktField("ip.src"));
  k2.push_back(PktField("ip.dst"));
  vals.push_back(Bin(Opcode::kAdd, Local("v0"), Lit(1)));
  then_b.push_back(MapInsert("flows", std::move(k2), std::move(vals)));
  prog.body.push_back(If(Cmp(Opcode::kIcmpEq, PktField("ip.proto"), Lit(6)),
                         std::move(then_b), {}));
  prog.body.push_back(AssignPkt("tcp.seq", Local("v0")));
  ExpectEquivalent(prog, 48);
}

TEST(ExecDiffTest, ApiCallsAndAccelerators) {
  Program prog;
  prog.name = "apis";
  prog.body.push_back(Decl("h", Type::kI32,
                           CallExpr("crc_hash_hw", Args(PktField("ip.src")),
                                    Type::kI32)));
  prog.body.push_back(AssignPkt("tcp.ack", Local("h")));
  prog.body.push_back(Api("checksum_update"));
  prog.body.push_back(Api("ip_header"));
  std::vector<StmtPtr> then_b;
  then_b.push_back(Drop());
  prog.body.push_back(If(Cmp(Opcode::kIcmpEq, Bin(Opcode::kAnd, Local("h"), Lit(7)),
                             Lit(0)),
                         std::move(then_b), {}));
  prog.body.push_back(Send(Lit(2)));
  ExpectEquivalent(prog);
}

// ---- ISA-only semantics (ops the AST surface cannot reach) ----

// Builds a one-block function around `emit`, which receives the builder and
// returns the value to store to tcp.seq.
void RunIsaOnly(const std::function<Value(IrBuilder&)>& emit) {
  Module m;
  InstallStandardPacketFields(m);
  m.functions.emplace_back();
  Function& f = m.functions.back();
  f.name = "isa_only";
  f.next_reg = 1;
  IrBuilder b(m, f);
  uint32_t entry = b.NewBlock("entry");
  b.SetInsertPoint(entry);
  Value v = emit(b);
  b.StorePacket(static_cast<uint32_t>(m.FindPacketField("tcp.seq")),
                b.Cast(Opcode::kTrunc, Type::kI32, v));
  b.Ret();

  NicProgram np = CompileToNic(m, f);
  IrRefInterpreter ir(m, f);
  NicExecutor nic(m, np);
  NfEnv ir_env, nic_env;
  ir_env.InitState(m, nullptr);
  nic_env.InitState(m, nullptr);
  for (const Packet& p : TestTrace(8)) {
    Packet pi = p, pn = p;
    PacketToEnv(pi, ir_env);
    ASSERT_TRUE(ir.RunPacket(ir_env)) << ir.error();
    EnvToPacket(ir_env, pi);
    PacketToEnv(pn, nic_env);
    ASSERT_TRUE(nic.RunPacket(nic_env)) << nic.error();
    EnvToPacket(nic_env, pn);
    EXPECT_EQ(ComparePackets(pi, pn, "ir", "nic"), "");
  }
}

TEST(ExecIsaTest, SextSelectAshr) {
  RunIsaOnly([](IrBuilder& b) {
    Module& m = b.module();
    Value ttl = b.LoadPacket(static_cast<uint32_t>(m.FindPacketField("ip.ttl")));
    Value wide = b.Cast(Opcode::kSext, Type::kI32, ttl);
    Value sh = b.Binary(Opcode::kAShr, Type::kI32, wide, Value::Const(3));
    Value cond = b.Compare(Opcode::kIcmpUgt, sh, Value::Const(4));
    return b.Select(Type::kI32, cond, sh, Value::Const(1234));
  });
}

TEST(ExecIsaTest, AshrSignFill) {
  RunIsaOnly([](IrBuilder& b) {
    Module& m = b.module();
    Value src = b.LoadPacket(static_cast<uint32_t>(m.FindPacketField("ip.src")));
    Value neg = b.Binary(Opcode::kOr, Type::kI32, src, Value::Const(0x80000000LL));
    return b.Binary(Opcode::kAShr, Type::kI32, neg, Value::Const(7));
  });
}

// ---- stack promotion vs spilling ----

Program LocalHeavyProgram(int locals) {
  Program prog;
  prog.name = "locals";
  for (int i = 0; i < locals; ++i) {
    std::string name = "l" + std::to_string(i);
    ExprPtr init = i == 0 ? PktField("ip.src")
                          : Bin(Opcode::kAdd, Local("l" + std::to_string(i - 1)),
                                Lit(static_cast<uint64_t>(i)));
    prog.body.push_back(Decl(name, Type::kI32, std::move(init)));
  }
  prog.body.push_back(
      AssignPkt("tcp.seq", Local("l" + std::to_string(locals - 1))));
  return prog;
}

TEST(ExecDiffTest, StackPromotionMoves) {
  // Few locals: all promoted to registers; architectural effects ride on the
  // zero-cost move sidecars.
  auto hist = RunIrVsNic(LocalHeavyProgram(6), NicBackendOptions{});
  EXPECT_EQ(hist[static_cast<size_t>(NicOp::kLmemRead)], 0u);
  EXPECT_EQ(hist[static_cast<size_t>(NicOp::kLmemWrite)], 0u);
}

TEST(ExecDiffTest, StackSpillLmemTraffic) {
  // gpr_budget 0 forces every slot to local memory.
  NicBackendOptions opts;
  opts.gpr_budget = 0;
  auto hist = RunIrVsNic(LocalHeavyProgram(6), opts);
  EXPECT_GT(hist[static_cast<size_t>(NicOp::kLmemRead)], 0u);
  EXPECT_GT(hist[static_cast<size_t>(NicOp::kLmemWrite)], 0u);
}

// ---- exhaustive opcode coverage ----

TEST(ExecCoverageTest, EveryEmittableOpcodeExecutes) {
  // Accumulate executed-opcode histograms across handcrafted programs, a
  // synthesized corpus, and a spill-forcing compile. Every opcode the
  // backend can emit must execute at least once; anything else means the
  // executor silently skipped part of the ISA.
  std::array<uint64_t, 16> hist{};
  auto acc = [&hist](const std::array<uint64_t, 16>& h) {
    for (size_t i = 0; i < h.size(); ++i) {
      hist[i] += h[i];
    }
  };

  // Handcrafted: APIs (kCsr + burst kMemRead/kMemWrite), maps, div/mul.
  {
    Program prog;
    prog.name = "cover";
    prog.body.push_back(Decl("h", Type::kI32,
                             CallExpr("crc_hash_hw", Args(PktField("ip.src")),
                                      Type::kI32)));
    prog.body.push_back(Api("checksum_update"));
    prog.body.push_back(Decl("d", Type::kI32,
                             Bin(Opcode::kUDiv, Local("h"), Lit(77))));
    prog.body.push_back(Decl("m", Type::kI32,
                             Bin(Opcode::kMul, Local("d"), Lit(16777619))));
    std::vector<StmtPtr> body;
    body.push_back(Assign("m", Bin(Opcode::kAdd, Local("m"), PayloadAt(Local("i")))));
    prog.body.push_back(For("i", Lit(0), Lit(4), std::move(body)));
    prog.body.push_back(AssignPkt("tcp.seq", Local("m")));
    acc(RunIrVsNic(prog, NicBackendOptions{}));
  }
  {
    NicBackendOptions spill;
    spill.gpr_budget = 0;
    acc(RunIrVsNic(LocalHeavyProgram(5), spill));
  }

  // Synthesized corpus sweep (all three profiles).
  const char* profiles[] = {"default", "uniform", "generic"};
  for (int i = 0; i < 12; ++i) {
    SynthOptions opts;
    if (i % 3 == 1) {
      opts.profile = UniformProfile();
    } else if (i % 3 == 2) {
      opts.profile = GenericProfile();
    }
    Rng rng(1000 + i);
    Program prog = SynthesizeProgram(rng, opts, i);
    static_cast<void>(profiles);
    acc(RunIrVsNic(prog, NicBackendOptions{}, 8));
  }

  const NicOp emittable[] = {
      NicOp::kAlu,      NicOp::kAluShf,  NicOp::kImmed,    NicOp::kMulStep,
      NicOp::kLdField,  NicOp::kBr,      NicOp::kBcc,      NicOp::kCsr,
      NicOp::kMemRead,  NicOp::kMemWrite, NicOp::kLmemRead, NicOp::kLmemWrite,
  };
  for (NicOp op : emittable) {
    EXPECT_GT(hist[static_cast<size_t>(op)], 0u)
        << "opcode never executed: " << NicOpName(op);
  }
}

// ---- regression corpus sanity (the committed .case files assert zero
// divergence; this guards the in-tree differential entry point itself) ----

TEST(ExecDiffTest, SynthesizedSweepIsClean) {
  for (int i = 0; i < 8; ++i) {
    Rng rng(4242 + i);
    SynthOptions opts;
    Program prog = SynthesizeProgram(rng, opts, i);
    DiffResult r = RunDifferential(prog, TestTrace(12, 7 + i));
    EXPECT_FALSE(r.setup_failed) << r.detail;
    EXPECT_TRUE(r.ok) << "iter " << i << ": " << r.detail;
  }
}

}  // namespace
}  // namespace clara
