// Multicore scale-out analysis (§4.2): GBDT cost model trained on simulator
// schedule sweeps of synthesized programs.
#include "src/core/scaleout.h"

#include <gtest/gtest.h>

#include "src/elements/elements.h"
#include "src/lang/interp.h"
#include "src/ml/metrics.h"
#include "src/nic/backend.h"

namespace clara {
namespace {

ScaleOutOptions FastOptions() {
  ScaleOutOptions opts;
  opts.train_programs = 60;
  opts.synth.profile = UniformProfile();
  opts.gbdt.rounds = 80;
  return opts;
}

class ScaleOutFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new PerfModel();
    advisor_ = new ScaleOutAdvisor(FastOptions());
    advisor_->Train(*model_, {WorkloadSpec::LargeFlows(), WorkloadSpec::SmallFlows()});
  }
  static void TearDownTestSuite() {
    delete advisor_;
    delete model_;
  }
  static PerfModel* model_;
  static ScaleOutAdvisor* advisor_;
};

PerfModel* ScaleOutFixture::model_ = nullptr;
ScaleOutAdvisor* ScaleOutFixture::advisor_ = nullptr;

NfDemand ElementDemand(const std::string& name, const WorkloadSpec& w, const NicConfig& cfg) {
  NfInstance nf(MakeElementByName(name));
  EXPECT_TRUE(nf.ok());
  NicProgram nic = CompileToNic(nf.module());
  Trace t = GenerateTrace(w, 1200);
  for (auto& pkt : t.packets) {
    nf.Process(pkt);
  }
  return BuildDemand(nf.module(), nic, nf.profile(), w, cfg);
}

TEST_F(ScaleOutFixture, TrainsOnSweeps) {
  ASSERT_TRUE(advisor_->trained());
  EXPECT_GT(advisor_->dataset().size(), 80u);
}

TEST_F(ScaleOutFixture, LowMaeOnHeldOutPrograms) {
  // Figure 11(a): Clara's GBDT achieves low MAE in suggested cores.
  ScaleOutOptions held = FastOptions();
  held.seed = 31415;
  held.train_programs = 25;
  std::vector<Program> programs = SynthesizeCorpus(25, held.synth, held.seed);
  std::vector<double> truth;
  std::vector<double> pred;
  for (auto& prog : programs) {
    NfInstance nf(std::move(prog));
    ASSERT_TRUE(nf.ok());
    NicProgram nic = CompileToNic(nf.module());
    WorkloadSpec w = WorkloadSpec::SmallFlows();
    Trace t = GenerateTrace(w, 800);
    for (auto& pkt : t.packets) {
      nf.Process(pkt);
    }
    NfDemand d = BuildDemand(nf.module(), nic, nf.profile(), w, model_->config());
    truth.push_back(model_->OptimalCores(d));
    pred.push_back(advisor_->SuggestCores(d));
  }
  double mae = MeanAbsoluteError(truth, pred);
  EXPECT_LT(mae, 8.0) << "cores MAE too high";
}

TEST_F(ScaleOutFixture, ComplexNfSuggestionsNearOptimal) {
  // Figure 11(b): suggested core counts deviate from exhaustive-search
  // optima by a small margin for the complex NFs.
  NicConfig cfg = model_->config();
  for (const char* name : {"mazunat", "dnsproxy", "webgen", "udpcount"}) {
    NfDemand d = ElementDemand(name, WorkloadSpec::SmallFlows(), cfg);
    int suggested = advisor_->SuggestCores(d);
    int optimal = model_->OptimalCores(d);
    EXPECT_LE(std::abs(suggested - optimal), 16) << name;
    // The suggestion must recover most of the optimal operating ratio.
    double r_sug = model_->Evaluate(d, suggested).RatioMppsPerUs();
    double r_opt = model_->Evaluate(d, optimal).RatioMppsPerUs();
    EXPECT_GT(r_sug, 0.7 * r_opt) << name;
  }
}

TEST_F(ScaleOutFixture, SuggestionsWithinCoreRange) {
  NfDemand d = ElementDemand("aggcounter", WorkloadSpec::LargeFlows(), model_->config());
  int cores = advisor_->SuggestCores(d);
  EXPECT_GE(cores, 1);
  EXPECT_LE(cores, model_->config().num_cores);
}

TEST(ScaleOutFeatures, CaptureIntensity) {
  NfDemand d;
  d.compute_cycles = 100;
  d.pkt_accesses = 2;
  StateDemand s;
  s.accesses_per_pkt = 3;
  s.words_per_access = 2;
  s.region = MemRegion::kImem;
  d.state.push_back(s);
  FeatureVec f = ScaleOutAdvisor::Features(d);
  EXPECT_EQ(f.size(), 9u);
  EXPECT_DOUBLE_EQ(f[0], 100.0);  // compute cycles
  EXPECT_DOUBLE_EQ(f[2], 3.0);    // state accesses
  EXPECT_DOUBLE_EQ(f[7], 6.0);    // sram words
}

}  // namespace
}  // namespace clara
