// Cross-platform instruction prediction (§3.2): LSTM training on synthesized
// pairs, per-block compute WMAPE, and direct memory counting accuracy.
#include "src/core/predictor.h"

#include <gtest/gtest.h>

#include "src/elements/elements.h"
#include "src/lang/lower.h"
#include "src/ml/metrics.h"

namespace clara {
namespace {

PredictorOptions FastOptions() {
  PredictorOptions opts;
  opts.train_programs = 120;
  opts.lstm.epochs = 10;
  opts.lstm.hidden = 24;
  opts.synth.profile = UniformProfile();
  return opts;
}

class PredictorFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    predictor_ = new InstructionPredictor(FastOptions());
    predictor_->Train();
  }
  static void TearDownTestSuite() {
    delete predictor_;
    predictor_ = nullptr;
  }
  static InstructionPredictor* predictor_;
};

InstructionPredictor* PredictorFixture::predictor_ = nullptr;

TEST_F(PredictorFixture, TrainingConverges) {
  ASSERT_TRUE(predictor_->trained());
  EXPECT_GT(predictor_->dataset().examples.size(), 300u);
  EXPECT_GT(predictor_->vocab().size(), 20);
  EXPECT_LT(predictor_->vocab().size(), 500);
  // Paper: LSTM+FC converges to ~10% train WMAPE; allow slack for the small
  // test-sized configuration.
  EXPECT_LT(predictor_->model().train_wmape(), 0.30);
}

TEST_F(PredictorFixture, PredictsElementBlocksReasonably) {
  // Held-out real elements (never in the synthesized training set).
  std::vector<double> truth;
  std::vector<double> pred;
  for (const char* name : {"tcpack", "udpipencap", "forcetcp", "anonipaddr", "tcpresp"}) {
    Program p = MakeElementByName(name);
    LowerResult lr = LowerProgram(p);
    ASSERT_TRUE(lr.ok);
    auto gt = CompileGroundTruth(lr.module, predictor_->options().backend);
    const Function& f = lr.module.functions[0];
    for (size_t b = 0; b < f.blocks.size(); ++b) {
      if (f.blocks[b].instrs.size() < 2) {
        continue;
      }
      BlockPrediction bp = predictor_->PredictBlock(lr.module, f.blocks[b]);
      truth.push_back(gt[b].compute);
      pred.push_back(bp.compute);
    }
  }
  double wmape = Wmape(truth, pred);
  EXPECT_LT(wmape, 0.40) << "cross-element WMAPE too high";
}

TEST_F(PredictorFixture, MemoryCountingNearPerfect) {
  // Paper §3.2: counting IR memory instructions gives 96.4%-100% accuracy on
  // stateful accesses.
  uint64_t total_ir = 0;
  uint64_t total_nic = 0;
  for (const auto& info : ElementRegistry()) {
    Program p = info.make();
    LowerResult lr = LowerProgram(p);
    ASSERT_TRUE(lr.ok);
    auto gt = CompileGroundTruth(lr.module, predictor_->options().backend);
    NfPrediction np = predictor_->PredictNf(lr.module);
    for (size_t b = 0; b < np.blocks.size(); ++b) {
      total_ir += np.blocks[b].mem_state;
      total_nic += gt[b].mem_state;
    }
  }
  ASSERT_GT(total_nic, 0u);
  double accuracy = 1.0 - std::abs(static_cast<double>(total_ir) -
                                   static_cast<double>(total_nic)) /
                              static_cast<double>(total_nic);
  EXPECT_GT(accuracy, 0.9);
  // Coalescing means the NIC does no MORE accesses than the IR count.
  EXPECT_GE(total_ir, total_nic);
}

TEST_F(PredictorFixture, PredictionsNonNegative) {
  Program p = MakeMazuNat();
  LowerResult lr = LowerProgram(p);
  NfPrediction np = predictor_->PredictNf(lr.module);
  for (const auto& b : np.blocks) {
    EXPECT_GE(b.compute, 0.0);
  }
  EXPECT_GT(np.total_compute, 0.0);
  EXPECT_GT(np.total_mem_state, 0u);
}

TEST(PredictorAblation, RawVocabularyIsWorse) {
  // §6 "Experience with ML models": without vocabulary compaction the
  // vocabulary explodes and accuracy degrades.
  PredictorOptions compact = FastOptions();
  PredictorOptions raw = FastOptions();
  raw.abstraction = AbstractionMode::kRaw;
  InstructionPredictor pc(compact);
  InstructionPredictor pr(raw);
  pc.Train();
  pr.Train();
  EXPECT_GT(pr.vocab().size(), pc.vocab().size() * 3);
  EXPECT_LE(pc.model().train_wmape(), pr.model().train_wmape() + 0.02);
}

}  // namespace
}  // namespace clara
