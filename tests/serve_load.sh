#!/usr/bin/env bash
# Sustained multi-client load against the epoll serving daemon, gated on
# byte-identity and tail latency:
#
#   1. Train a small bundle with clara_cli.
#   2. Start a sequential-transport daemon (the single-client reference) and
#      an epoll daemon on separate sockets from the same bundle.
#   3. Verify phase: clara_loadgen drives 128 concurrent closed-loop
#      connections at hit-ratio 1.0 with --baseline-socket pointed at the
#      sequential daemon — every cache-hit response must be byte-identical
#      to the single-client transport's answer.
#   4. Sustained phase: open-loop at a fixed target rate with a realistic
#      mix (0.5% cache misses, tracing, priorities) under a hard p99 SLO;
#      the JSON report and the machine-independent BENCH_serve_load.json
#      rows land in $CLARA_BENCH_JSON_DIR (or $WORK) for the CI bench gate.
#
# Usage: serve_load.sh [build-dir]   (defaults to the current directory)
#
# Knobs (env): CLARA_LOAD_CONNS (128), CLARA_LOAD_RATE (1200),
# CLARA_LOAD_DURATION_S (6), CLARA_LOAD_SLO_P99_US (50000).
set -euo pipefail

BUILD_DIR="${1:-$(pwd)}"
CLI="$BUILD_DIR/tools/clara_cli"
SERVE="$BUILD_DIR/tools/clara_serve"
LOADGEN="$BUILD_DIR/tools/clara_loadgen"
WORK="$(mktemp -d)"
OUT_DIR="${CLARA_BENCH_JSON_DIR:-$WORK}"

CONNS="${CLARA_LOAD_CONNS:-128}"
RATE="${CLARA_LOAD_RATE:-1200}"
DURATION_S="${CLARA_LOAD_DURATION_S:-6}"
SLO_P99_US="${CLARA_LOAD_SLO_P99_US:-50000}"

pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill -TERM "$pid" 2>/dev/null || true
  done
  for pid in "${pids[@]:-}"; do
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_for_socket() {
  for _ in $(seq 1 100); do
    [ -S "$1" ] && return 0
    sleep 0.1
  done
  echo "serve_load: $1 never appeared" >&2
  return 1
}

echo "== train a small bundle =="
"$CLI" train --fast --model-dir="$WORK/models"
test -f "$WORK/models/clara_bundle.bin"

echo "== start sequential (reference) and epoll daemons =="
"$SERVE" --socket="$WORK/seq.sock" --model-dir="$WORK/models" \
  --transport=sequential --profile-packets=200 2> "$WORK/seq.log" &
pids+=($!)
"$SERVE" --socket="$WORK/epoll.sock" --model-dir="$WORK/models" \
  --shards=2 --profile-packets=200 --slo-p99-us="$SLO_P99_US" \
  2> "$WORK/epoll.log" &
pids+=($!)
wait_for_socket "$WORK/seq.sock"
wait_for_socket "$WORK/epoll.sock"

echo "== verify: $CONNS closed-loop connections, byte-compare vs sequential =="
"$LOADGEN" --socket="$WORK/epoll.sock" --baseline-socket="$WORK/seq.sock" \
  --mode=closed --connections="$CONNS" --duration-s=3 --hit-ratio=1.0 \
  --max-error-rate=0 --report="$WORK/verify_report.json"

echo "== sustained: open-loop at $RATE req/s with a p99 SLO gate =="
"$LOADGEN" --socket="$WORK/epoll.sock" --baseline-socket="$WORK/seq.sock" \
  --mode=open --connections=64 --rate="$RATE" --duration-s="$DURATION_S" \
  --hit-ratio=0.995 --trace-pct=5 --priority-hi-pct=20 \
  --slo-p99-us="$SLO_P99_US" --max-error-rate=0.001 \
  --report="$OUT_DIR/serve_load_report.json" \
  --bench-json="$OUT_DIR/BENCH_serve_load.json"

echo "== reports are well-formed and the epoll daemon survived =="
python3 - "$OUT_DIR/serve_load_report.json" "$OUT_DIR/BENCH_serve_load.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
for key in ("achieved_rps", "latency_us", "sent", "ok", "verify", "gates"):
    assert key in report, f"report missing {key}"
assert report["verify"]["mismatches"] == 0, report
assert all(report["gates"][g] for g in
           ("slo_ok", "errors_ok", "verify_ok", "connections_ok")), report
rows = json.load(open(sys.argv[2]))
assert isinstance(rows, list) and rows, rows
for row in rows:
    assert row["phase"] == "sustained_load", row
    assert 1.0 <= row["p99_slo_latency_ratio"] <= 3.0, row
    assert 0.0 <= row["completed_fraction_of_target"] <= 1.0, row
print(f"serve_load: p99={report['latency_us']['p99']}us "
      f"achieved={report['achieved_rps']:.1f}rps ok={report['ok']}")
EOF
kill -0 "${pids[0]}" "${pids[1]}"

echo "serve_load: PASS"
