// Service-chain partition advisor: where should a Click pipeline be split
// between the SmartNIC and the host (the paper's §6 "partial offloading"
// scenario, built on Clara's per-stage demand profiles)?
//
// The example profiles a realistic chain — firewall -> heavyhitter -> dpi ->
// wepdecap — and prints throughput/latency for every prefix split, plus the
// advisor's pick.
//
// Build & run:  ./build/examples/chain_partition_advisor
#include <cstdio>

#include "src/core/chain.h"
#include "src/elements/elements.h"
#include "src/lang/interp.h"
#include "src/nic/backend.h"
#include "src/nic/demand.h"
#include "src/workload/workload.h"

int main() {
  using namespace clara;
  PerfModel nic_model;
  HostConfig host;
  WorkloadSpec workload = WorkloadSpec::SmallFlows(256);

  const char* pipeline[] = {"firewall", "heavyhitter", "dpi", "wepdecap"};
  std::printf("Profiling the chain:");
  std::vector<ChainStage> chain;
  for (const char* name : pipeline) {
    std::printf(" %s", name);
    NfInstance nf(MakeElementByName(name));
    NicProgram nic = CompileToNic(nf.module());
    Trace trace = GenerateTrace(workload, 3000);
    for (auto& pkt : trace.packets) {
      pkt.in_port = 0;
      nf.Process(pkt);
    }
    chain.push_back(
        {name, BuildDemand(nf.module(), nic, nf.profile(), workload, nic_model.config())});
  }
  std::printf("\n\nPer-stage demand (per packet):\n");
  for (const auto& stage : chain) {
    std::printf("  %-12s compute %7.0f cyc, state accesses %5.2f, engines %5.0f cyc\n",
                stage.name.c_str(), stage.demand.compute_cycles,
                stage.demand.TotalStateAccesses(), stage.demand.engine_cycles);
  }

  PartitionAdvisor advisor(nic_model, host);
  int nic_cores = 32;
  std::vector<SplitPoint> splits = advisor.EvaluateSplits(chain, nic_cores);
  SplitPoint best = advisor.Best(chain, nic_cores);

  std::printf("\nSplit evaluation (%d NIC cores, host: %d cores @ %.1f GHz, PCIe %.0f Gbps):\n",
              nic_cores, host.cores, host.freq_ghz, host.pcie_gbps);
  std::printf("  %-26s %12s %12s %8s\n", "split", "tput (Mpps)", "latency(us)", "bound");
  for (const auto& s : splits) {
    std::string label;
    for (int i = 0; i < static_cast<int>(chain.size()); ++i) {
      label += (i == s.nic_stages ? " | " : (i ? " " : ""));
      label += chain[i].name.substr(0, 4);
    }
    if (s.nic_stages == static_cast<int>(chain.size())) {
      label += " |";
    }
    const char* bound = s.bound == SplitPoint::Bound::kNic    ? "NIC"
                        : s.bound == SplitPoint::Bound::kHost ? "host"
                                                              : "PCIe";
    std::printf("  %-26s %12.2f %12.2f %8s%s\n", label.c_str(), s.throughput_mpps,
                s.latency_us, bound,
                s.nic_stages == best.nic_stages ? "   <- advisor pick" : "");
  }
  std::printf("\n(left of '|' runs on the SmartNIC, right of it on the host)\n");
  return 0;
}
