// Scale-out explorer: latency/throughput curves vs core count for any
// element of the suite under either workload class, with Clara's suggested
// operating point — an interactive view of Figure 11.
//
// Build & run:  ./build/examples/scaleout_explorer [element] [small|large]
//    e.g.       ./build/examples/scaleout_explorer dnsproxy small
#include <cstdio>
#include <cstring>
#include <string>

#include "src/core/scaleout.h"
#include "src/elements/elements.h"
#include "src/lang/interp.h"
#include "src/nic/backend.h"
#include "src/nic/demand.h"
#include "src/workload/workload.h"

int main(int argc, char** argv) {
  using namespace clara;
  std::string element = argc > 1 ? argv[1] : "mazunat";
  bool small = argc > 2 ? std::strcmp(argv[2], "large") != 0 : true;

  PerfModel model;
  WorkloadSpec workload = small ? WorkloadSpec::SmallFlows() : WorkloadSpec::LargeFlows();

  std::printf("Profiling '%s' under the %s workload...\n", element.c_str(),
              workload.name.c_str());
  NfInstance nf(MakeElementByName(element));
  NicProgram nic = CompileToNic(nf.module());
  Trace trace = GenerateTrace(workload, 4000);
  for (auto& pkt : trace.packets) {
    pkt.in_port = pkt.src_ip & 1;
    nf.Process(pkt);
  }
  NfDemand demand = BuildDemand(nf.module(), nic, nf.profile(), workload, model.config());
  std::printf("  compute %.0f cycles/pkt, %.1f state accesses/pkt, intensity %.2f\n\n",
              demand.compute_cycles, demand.TotalStateAccesses(),
              demand.ArithmeticIntensity());

  std::printf("Training the scale-out cost model...\n");
  ScaleOutOptions opts;
  opts.train_programs = 60;
  ScaleOutAdvisor advisor(opts);
  advisor.Train(model, {WorkloadSpec::LargeFlows(), WorkloadSpec::SmallFlows()});
  int suggested = advisor.SuggestCores(demand);
  int optimal = model.OptimalCores(demand);

  std::printf("\n%6s %12s %12s %12s\n", "cores", "tput (Mpps)", "latency(us)", "T/L ratio");
  for (int n = 2; n <= model.config().num_cores; n += 2) {
    PerfPoint p = model.Evaluate(demand, n);
    const char* mark = n == suggested ? "  <- Clara suggests"
                       : n == optimal ? "  <- measured optimum"
                                      : "";
    std::printf("%6d %12.2f %12.2f %12.3f%s\n", n, p.throughput_mpps, p.latency_us,
                p.RatioMppsPerUs(), mark);
  }
  std::printf("\nClara suggests %d cores; exhaustive sweep says %d.\n", suggested, optimal);
  return 0;
}
