// NAT porting advisor: the paper's §2 motivating scenario end-to-end.
//
// A developer has a legacy NAT (Mazu-NAT) and wants to offload it. Instead of
// trial-and-error porting, they ask Clara for the porting plan and compare
// the simulated naive port against the Clara-tuned port step by step:
//   naive          all state in EMEM, software checksum, all 60 cores
//   + placement    ILP state placement across CLS/CTM/IMEM/EMEM
//   + coalescing   pack co-accessed scalars, widen accesses
//   + core count   run at the suggested knee instead of all cores
//   + accelerator  ingress checksum engine instead of the software loop
//
// Build & run:  ./build/examples/nat_porting_advisor
#include <cstdio>

#include "src/core/coalescing.h"
#include "src/core/placement.h"
#include "src/elements/elements.h"
#include "src/lang/interp.h"
#include "src/nic/backend.h"
#include "src/nic/demand.h"
#include "src/nic/perf_model.h"
#include "src/workload/workload.h"

namespace {

struct Step {
  const char* name;
  clara::PerfPoint perf;
  int cores;
};

}  // namespace

int main() {
  using namespace clara;
  PerfModel model;
  NicConfig cfg = model.config();

  // Profile the unported NAT on the target workload (outbound-heavy).
  WorkloadSpec workload = WorkloadSpec::SmallFlows();
  workload.syn_ratio = 0.2;

  auto profile_variant = [&](Program program) {
    auto nf = std::make_unique<NfInstance>(std::move(program));
    Trace trace = GenerateTrace(workload, 6000);
    for (auto& pkt : trace.packets) {
      pkt.in_port = 0;
      nf->Process(pkt);
    }
    return nf;
  };

  auto nat = profile_variant(MakeMazuNat(false));
  NicProgram nic = CompileToNic(nat->module());
  std::printf("Mazu-NAT profile: %llu packets, %llu sends, %llu drops\n",
              static_cast<unsigned long long>(nat->profile().packets),
              static_cast<unsigned long long>(nat->profile().sends),
              static_cast<unsigned long long>(nat->profile().drops));

  std::vector<Step> steps;

  // Step 0: the naive port.
  DemandOptions naive_opts;
  naive_opts.placement = NaivePlacement(nat->module());
  NfDemand naive = BuildDemand(nat->module(), nic, nat->profile(), workload, cfg, naive_opts);
  steps.push_back({"naive port (EMEM, sw csum, 60 cores)", model.Evaluate(naive, 60), 60});

  // Step 1: + ILP state placement.
  PlacementResult placement = PlaceState(nat->module(), nat->profile(), workload, cfg);
  DemandOptions placed_opts;
  placed_opts.placement = placement.placement;
  NfDemand placed = BuildDemand(nat->module(), nic, nat->profile(), workload, cfg, placed_opts);
  steps.push_back({"+ state placement", model.Evaluate(placed, 60), 60});

  // Step 2: + variable packing / coalescing.
  CoalescingPlan packing = SuggestCoalescing(nat->module(), nat->profile());
  DemandOptions packed_opts = placed_opts;
  packed_opts.coalescing = packing.effects;
  NfDemand packed = BuildDemand(nat->module(), nic, nat->profile(), workload, cfg, packed_opts);
  steps.push_back({"+ access coalescing", model.Evaluate(packed, 60), 60});

  // Step 3: + the knee-of-the-curve core count.
  int cores = model.OptimalCores(packed);
  steps.push_back({"+ optimal core count", model.Evaluate(packed, cores), cores});

  // Step 4: + the checksum accelerator (the ported variant's demand).
  auto nat_hw = profile_variant(MakeMazuNat(true));
  NicProgram nic_hw = CompileToNic(nat_hw->module());
  NfDemand accel =
      BuildDemand(nat_hw->module(), nic_hw, nat_hw->profile(), workload, cfg, packed_opts);
  steps.push_back({"+ checksum accelerator", model.Evaluate(accel, cores), cores});

  std::printf("\n%-42s %6s %12s %12s %14s\n", "porting step", "cores", "tput (Mpps)",
              "latency(us)", "ratio (T/L)");
  for (const auto& s : steps) {
    std::printf("%-42s %6d %12.2f %12.2f %14.3f\n", s.name, s.cores,
                s.perf.throughput_mpps, s.perf.latency_us, s.perf.RatioMppsPerUs());
  }

  std::printf("\nPlacement chosen by the ILP:\n");
  for (const auto& [var, region] : placement.placement) {
    std::printf("  %-14s -> %s\n", var.c_str(), MemRegionName(region));
  }
  if (!packing.packs.empty()) {
    std::printf("Packing plan:\n");
    for (const auto& pack : packing.packs) {
      std::printf("  pack (%dB access):", pack.pack_bytes);
      for (const auto& v : pack.vars) {
        std::printf(" %s", v.c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}
