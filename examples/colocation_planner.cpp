// Colocation planner: which NFs should share the SmartNIC?
//
// Given a set of candidate NFs, this example trains Clara's pairwise ranker,
// scores every pairing, and cross-checks the predicted order against
// measured colocation outcomes on the performance model — the §4.5 workflow.
//
// Build & run:  ./build/examples/colocation_planner
#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/core/colocation.h"
#include "src/elements/elements.h"
#include "src/lang/interp.h"
#include "src/nic/backend.h"
#include "src/nic/demand.h"
#include "src/workload/workload.h"

int main() {
  using namespace clara;
  PerfModel model;
  WorkloadSpec workload = WorkloadSpec::SmallFlows();

  const char* candidates[] = {"mazunat", "dnsproxy", "udpcount", "webgen",
                              "heavyhitter", "dpi"};

  std::printf("Profiling %zu candidate NFs...\n", std::size(candidates));
  std::vector<NfDemand> demands;
  std::vector<std::string> names;
  for (const char* name : candidates) {
    NfInstance nf(MakeElementByName(name));
    NicProgram nic = CompileToNic(nf.module());
    Trace trace = GenerateTrace(workload, 3000);
    for (auto& pkt : trace.packets) {
      pkt.in_port = pkt.src_ip & 1;
      nf.Process(pkt);
    }
    demands.push_back(BuildDemand(nf.module(), nic, nf.profile(), workload, model.config()));
    names.push_back(name);
    std::printf("  %-12s arithmetic intensity %6.2f, state accesses/pkt %5.2f\n", name,
                demands.back().ArithmeticIntensity(), demands.back().TotalStateAccesses());
  }

  std::printf("\nTraining the pairwise colocation ranker...\n");
  ColocationOptions opts;
  opts.train_nfs = 40;
  opts.train_groups = 100;
  ColocationRanker ranker(opts);
  ranker.Train(model, workload);

  struct Row {
    std::string pair;
    double score;
    double measured;
  };
  std::vector<Row> rows;
  for (size_t a = 0; a < demands.size(); ++a) {
    for (size_t b = a + 1; b < demands.size(); ++b) {
      PairOutcome outcome = MeasurePair(model, demands[a], demands[b]);
      rows.push_back({names[a] + " + " + names[b], ranker.ScorePair(demands[a], demands[b]),
                      outcome.Friendliness(RankObjective::kTotalThroughput)});
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& x, const Row& y) {
    return x.score > y.score;
  });

  std::printf("\n%-28s %12s %22s\n", "pairing (ranked by Clara)", "score",
              "measured friendliness");
  for (const auto& r : rows) {
    std::printf("%-28s %12.3f %21.1f%%\n", r.pair.c_str(), r.score, r.measured * 100);
  }
  std::printf("\nHigher friendliness = less throughput lost to memory contention when\n"
              "the two NFs share the NIC (1.0 = no interference).\n");
  return 0;
}
