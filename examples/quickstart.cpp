// Quickstart: analyze an unported NF with Clara and print its offloading
// insights.
//
// This walks the full paper pipeline on one element:
//   1. Train Clara's learned components (compiler model, algorithm
//      identifier, scale-out cost model, colocation ranker) — a one-time
//      step against the simulated SmartNIC.
//   2. Hand Clara an *unported* NF program plus a workload description.
//   3. Read the insights: predicted instruction/memory profile, accelerator
//      opportunities, suggested core count, state placement, and variable
//      packing — everything a developer needs before porting.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/core/analyzer.h"
#include "src/elements/elements.h"
#include "src/workload/workload.h"

int main() {
  using namespace clara;

  // Keep training light for a demo; see AnalyzerOptions for the full knobs.
  AnalyzerOptions options;
  options.predictor.train_programs = 150;
  options.predictor.lstm.epochs = 10;
  options.scaleout.train_programs = 60;
  options.colocation.train_nfs = 24;
  options.colocation.train_groups = 60;
  options.algo_corpus_per_class = 25;

  ClaraAnalyzer clara(options);

  std::printf("Training Clara's learned components (one-time)...\n");
  std::vector<Program> corpus;
  for (const auto& info : ElementRegistry()) {
    corpus.push_back(info.make());
  }
  std::vector<const Program*> corpus_ptrs;
  for (const auto& p : corpus) {
    corpus_ptrs.push_back(&p);
  }
  clara.Train(corpus_ptrs);
  std::printf("done.\n\n");

  // Analyze the classic Mazu-NAT element under a many-small-flows workload.
  WorkloadSpec workload = WorkloadSpec::SmallFlows();
  OffloadingInsights insights = clara.Analyze(MakeMazuNat(), workload);
  std::printf("%s\n", insights.ToString(clara.perf_model().config()).c_str());

  // And an LPM lookup under few-large-flows traffic: Clara should spot the
  // LPM accelerator opportunity.
  insights = clara.Analyze(MakeIpLookup(), WorkloadSpec::LargeFlows());
  std::printf("%s\n", insights.ToString(clara.perf_model().config()).c_str());
  return 0;
}
