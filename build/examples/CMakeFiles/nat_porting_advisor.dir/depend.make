# Empty dependencies file for nat_porting_advisor.
# This may be replaced when dependencies are built.
