file(REMOVE_RECURSE
  "CMakeFiles/nat_porting_advisor.dir/nat_porting_advisor.cpp.o"
  "CMakeFiles/nat_porting_advisor.dir/nat_porting_advisor.cpp.o.d"
  "nat_porting_advisor"
  "nat_porting_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nat_porting_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
