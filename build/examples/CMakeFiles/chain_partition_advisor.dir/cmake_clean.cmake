file(REMOVE_RECURSE
  "CMakeFiles/chain_partition_advisor.dir/chain_partition_advisor.cpp.o"
  "CMakeFiles/chain_partition_advisor.dir/chain_partition_advisor.cpp.o.d"
  "chain_partition_advisor"
  "chain_partition_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_partition_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
