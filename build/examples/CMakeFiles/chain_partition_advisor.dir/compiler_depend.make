# Empty compiler generated dependencies file for chain_partition_advisor.
# This may be replaced when dependencies are built.
