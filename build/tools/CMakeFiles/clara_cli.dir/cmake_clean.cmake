file(REMOVE_RECURSE
  "CMakeFiles/clara_cli.dir/clara_cli.cc.o"
  "CMakeFiles/clara_cli.dir/clara_cli.cc.o.d"
  "clara_cli"
  "clara_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clara_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
