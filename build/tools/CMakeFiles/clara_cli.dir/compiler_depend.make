# Empty compiler generated dependencies file for clara_cli.
# This may be replaced when dependencies are built.
