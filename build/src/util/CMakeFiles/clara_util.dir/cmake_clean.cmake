file(REMOVE_RECURSE
  "CMakeFiles/clara_util.dir/rng.cc.o"
  "CMakeFiles/clara_util.dir/rng.cc.o.d"
  "libclara_util.a"
  "libclara_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clara_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
