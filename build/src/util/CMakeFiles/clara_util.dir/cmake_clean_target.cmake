file(REMOVE_RECURSE
  "libclara_util.a"
)
