# Empty dependencies file for clara_util.
# This may be replaced when dependencies are built.
