file(REMOVE_RECURSE
  "libclara_synth.a"
)
