file(REMOVE_RECURSE
  "CMakeFiles/clara_synth.dir/algorithm_corpus.cc.o"
  "CMakeFiles/clara_synth.dir/algorithm_corpus.cc.o.d"
  "CMakeFiles/clara_synth.dir/synth.cc.o"
  "CMakeFiles/clara_synth.dir/synth.cc.o.d"
  "libclara_synth.a"
  "libclara_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clara_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
