# Empty dependencies file for clara_synth.
# This may be replaced when dependencies are built.
