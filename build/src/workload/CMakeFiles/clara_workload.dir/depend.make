# Empty dependencies file for clara_workload.
# This may be replaced when dependencies are built.
