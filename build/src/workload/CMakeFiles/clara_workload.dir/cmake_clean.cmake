file(REMOVE_RECURSE
  "CMakeFiles/clara_workload.dir/workload.cc.o"
  "CMakeFiles/clara_workload.dir/workload.cc.o.d"
  "libclara_workload.a"
  "libclara_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clara_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
