
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nic/api_profile.cc" "src/nic/CMakeFiles/clara_nic.dir/api_profile.cc.o" "gcc" "src/nic/CMakeFiles/clara_nic.dir/api_profile.cc.o.d"
  "/root/repo/src/nic/backend.cc" "src/nic/CMakeFiles/clara_nic.dir/backend.cc.o" "gcc" "src/nic/CMakeFiles/clara_nic.dir/backend.cc.o.d"
  "/root/repo/src/nic/demand.cc" "src/nic/CMakeFiles/clara_nic.dir/demand.cc.o" "gcc" "src/nic/CMakeFiles/clara_nic.dir/demand.cc.o.d"
  "/root/repo/src/nic/isa.cc" "src/nic/CMakeFiles/clara_nic.dir/isa.cc.o" "gcc" "src/nic/CMakeFiles/clara_nic.dir/isa.cc.o.d"
  "/root/repo/src/nic/perf_model.cc" "src/nic/CMakeFiles/clara_nic.dir/perf_model.cc.o" "gcc" "src/nic/CMakeFiles/clara_nic.dir/perf_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/clara_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/clara_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/clara_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/clara_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nf/CMakeFiles/clara_nf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
