file(REMOVE_RECURSE
  "CMakeFiles/clara_nic.dir/api_profile.cc.o"
  "CMakeFiles/clara_nic.dir/api_profile.cc.o.d"
  "CMakeFiles/clara_nic.dir/backend.cc.o"
  "CMakeFiles/clara_nic.dir/backend.cc.o.d"
  "CMakeFiles/clara_nic.dir/demand.cc.o"
  "CMakeFiles/clara_nic.dir/demand.cc.o.d"
  "CMakeFiles/clara_nic.dir/isa.cc.o"
  "CMakeFiles/clara_nic.dir/isa.cc.o.d"
  "CMakeFiles/clara_nic.dir/perf_model.cc.o"
  "CMakeFiles/clara_nic.dir/perf_model.cc.o.d"
  "libclara_nic.a"
  "libclara_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clara_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
