# Empty compiler generated dependencies file for clara_nic.
# This may be replaced when dependencies are built.
