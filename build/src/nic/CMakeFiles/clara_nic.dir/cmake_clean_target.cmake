file(REMOVE_RECURSE
  "libclara_nic.a"
)
