
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nf/byte_map.cc" "src/nf/CMakeFiles/clara_nf.dir/byte_map.cc.o" "gcc" "src/nf/CMakeFiles/clara_nf.dir/byte_map.cc.o.d"
  "/root/repo/src/nf/checksum.cc" "src/nf/CMakeFiles/clara_nf.dir/checksum.cc.o" "gcc" "src/nf/CMakeFiles/clara_nf.dir/checksum.cc.o.d"
  "/root/repo/src/nf/lpm.cc" "src/nf/CMakeFiles/clara_nf.dir/lpm.cc.o" "gcc" "src/nf/CMakeFiles/clara_nf.dir/lpm.cc.o.d"
  "/root/repo/src/nf/packet.cc" "src/nf/CMakeFiles/clara_nf.dir/packet.cc.o" "gcc" "src/nf/CMakeFiles/clara_nf.dir/packet.cc.o.d"
  "/root/repo/src/nf/sketch.cc" "src/nf/CMakeFiles/clara_nf.dir/sketch.cc.o" "gcc" "src/nf/CMakeFiles/clara_nf.dir/sketch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/clara_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
