file(REMOVE_RECURSE
  "libclara_nf.a"
)
