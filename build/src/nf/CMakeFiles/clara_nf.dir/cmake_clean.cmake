file(REMOVE_RECURSE
  "CMakeFiles/clara_nf.dir/byte_map.cc.o"
  "CMakeFiles/clara_nf.dir/byte_map.cc.o.d"
  "CMakeFiles/clara_nf.dir/checksum.cc.o"
  "CMakeFiles/clara_nf.dir/checksum.cc.o.d"
  "CMakeFiles/clara_nf.dir/lpm.cc.o"
  "CMakeFiles/clara_nf.dir/lpm.cc.o.d"
  "CMakeFiles/clara_nf.dir/packet.cc.o"
  "CMakeFiles/clara_nf.dir/packet.cc.o.d"
  "CMakeFiles/clara_nf.dir/sketch.cc.o"
  "CMakeFiles/clara_nf.dir/sketch.cc.o.d"
  "libclara_nf.a"
  "libclara_nf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clara_nf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
