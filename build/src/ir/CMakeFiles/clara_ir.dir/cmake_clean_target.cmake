file(REMOVE_RECURSE
  "libclara_ir.a"
)
