file(REMOVE_RECURSE
  "CMakeFiles/clara_ir.dir/builder.cc.o"
  "CMakeFiles/clara_ir.dir/builder.cc.o.d"
  "CMakeFiles/clara_ir.dir/cfg.cc.o"
  "CMakeFiles/clara_ir.dir/cfg.cc.o.d"
  "CMakeFiles/clara_ir.dir/classify.cc.o"
  "CMakeFiles/clara_ir.dir/classify.cc.o.d"
  "CMakeFiles/clara_ir.dir/ir.cc.o"
  "CMakeFiles/clara_ir.dir/ir.cc.o.d"
  "CMakeFiles/clara_ir.dir/opt.cc.o"
  "CMakeFiles/clara_ir.dir/opt.cc.o.d"
  "CMakeFiles/clara_ir.dir/parser.cc.o"
  "CMakeFiles/clara_ir.dir/parser.cc.o.d"
  "CMakeFiles/clara_ir.dir/printer.cc.o"
  "CMakeFiles/clara_ir.dir/printer.cc.o.d"
  "CMakeFiles/clara_ir.dir/verify.cc.o"
  "CMakeFiles/clara_ir.dir/verify.cc.o.d"
  "CMakeFiles/clara_ir.dir/vocab.cc.o"
  "CMakeFiles/clara_ir.dir/vocab.cc.o.d"
  "libclara_ir.a"
  "libclara_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clara_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
