
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/builder.cc" "src/ir/CMakeFiles/clara_ir.dir/builder.cc.o" "gcc" "src/ir/CMakeFiles/clara_ir.dir/builder.cc.o.d"
  "/root/repo/src/ir/cfg.cc" "src/ir/CMakeFiles/clara_ir.dir/cfg.cc.o" "gcc" "src/ir/CMakeFiles/clara_ir.dir/cfg.cc.o.d"
  "/root/repo/src/ir/classify.cc" "src/ir/CMakeFiles/clara_ir.dir/classify.cc.o" "gcc" "src/ir/CMakeFiles/clara_ir.dir/classify.cc.o.d"
  "/root/repo/src/ir/ir.cc" "src/ir/CMakeFiles/clara_ir.dir/ir.cc.o" "gcc" "src/ir/CMakeFiles/clara_ir.dir/ir.cc.o.d"
  "/root/repo/src/ir/opt.cc" "src/ir/CMakeFiles/clara_ir.dir/opt.cc.o" "gcc" "src/ir/CMakeFiles/clara_ir.dir/opt.cc.o.d"
  "/root/repo/src/ir/parser.cc" "src/ir/CMakeFiles/clara_ir.dir/parser.cc.o" "gcc" "src/ir/CMakeFiles/clara_ir.dir/parser.cc.o.d"
  "/root/repo/src/ir/printer.cc" "src/ir/CMakeFiles/clara_ir.dir/printer.cc.o" "gcc" "src/ir/CMakeFiles/clara_ir.dir/printer.cc.o.d"
  "/root/repo/src/ir/verify.cc" "src/ir/CMakeFiles/clara_ir.dir/verify.cc.o" "gcc" "src/ir/CMakeFiles/clara_ir.dir/verify.cc.o.d"
  "/root/repo/src/ir/vocab.cc" "src/ir/CMakeFiles/clara_ir.dir/vocab.cc.o" "gcc" "src/ir/CMakeFiles/clara_ir.dir/vocab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/clara_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
