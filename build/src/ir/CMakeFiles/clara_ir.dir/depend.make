# Empty dependencies file for clara_ir.
# This may be replaced when dependencies are built.
