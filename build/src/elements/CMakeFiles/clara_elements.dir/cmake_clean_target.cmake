file(REMOVE_RECURSE
  "libclara_elements.a"
)
