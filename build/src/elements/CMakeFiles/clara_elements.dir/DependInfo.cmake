
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/elements/elements_accel.cc" "src/elements/CMakeFiles/clara_elements.dir/elements_accel.cc.o" "gcc" "src/elements/CMakeFiles/clara_elements.dir/elements_accel.cc.o.d"
  "/root/repo/src/elements/elements_basic.cc" "src/elements/CMakeFiles/clara_elements.dir/elements_basic.cc.o" "gcc" "src/elements/CMakeFiles/clara_elements.dir/elements_basic.cc.o.d"
  "/root/repo/src/elements/elements_complex.cc" "src/elements/CMakeFiles/clara_elements.dir/elements_complex.cc.o" "gcc" "src/elements/CMakeFiles/clara_elements.dir/elements_complex.cc.o.d"
  "/root/repo/src/elements/registry.cc" "src/elements/CMakeFiles/clara_elements.dir/registry.cc.o" "gcc" "src/elements/CMakeFiles/clara_elements.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/clara_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/nf/CMakeFiles/clara_nf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/clara_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/clara_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
