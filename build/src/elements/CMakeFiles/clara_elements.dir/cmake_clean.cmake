file(REMOVE_RECURSE
  "CMakeFiles/clara_elements.dir/elements_accel.cc.o"
  "CMakeFiles/clara_elements.dir/elements_accel.cc.o.d"
  "CMakeFiles/clara_elements.dir/elements_basic.cc.o"
  "CMakeFiles/clara_elements.dir/elements_basic.cc.o.d"
  "CMakeFiles/clara_elements.dir/elements_complex.cc.o"
  "CMakeFiles/clara_elements.dir/elements_complex.cc.o.d"
  "CMakeFiles/clara_elements.dir/registry.cc.o"
  "CMakeFiles/clara_elements.dir/registry.cc.o.d"
  "libclara_elements.a"
  "libclara_elements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clara_elements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
