# Empty compiler generated dependencies file for clara_elements.
# This may be replaced when dependencies are built.
