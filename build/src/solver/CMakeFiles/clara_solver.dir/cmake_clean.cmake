file(REMOVE_RECURSE
  "CMakeFiles/clara_solver.dir/assignment_ilp.cc.o"
  "CMakeFiles/clara_solver.dir/assignment_ilp.cc.o.d"
  "libclara_solver.a"
  "libclara_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clara_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
