# Empty dependencies file for clara_solver.
# This may be replaced when dependencies are built.
