file(REMOVE_RECURSE
  "libclara_solver.a"
)
