
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/ast.cc" "src/lang/CMakeFiles/clara_lang.dir/ast.cc.o" "gcc" "src/lang/CMakeFiles/clara_lang.dir/ast.cc.o.d"
  "/root/repo/src/lang/check.cc" "src/lang/CMakeFiles/clara_lang.dir/check.cc.o" "gcc" "src/lang/CMakeFiles/clara_lang.dir/check.cc.o.d"
  "/root/repo/src/lang/interp.cc" "src/lang/CMakeFiles/clara_lang.dir/interp.cc.o" "gcc" "src/lang/CMakeFiles/clara_lang.dir/interp.cc.o.d"
  "/root/repo/src/lang/lower.cc" "src/lang/CMakeFiles/clara_lang.dir/lower.cc.o" "gcc" "src/lang/CMakeFiles/clara_lang.dir/lower.cc.o.d"
  "/root/repo/src/lang/printer.cc" "src/lang/CMakeFiles/clara_lang.dir/printer.cc.o" "gcc" "src/lang/CMakeFiles/clara_lang.dir/printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/clara_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/nf/CMakeFiles/clara_nf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/clara_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
