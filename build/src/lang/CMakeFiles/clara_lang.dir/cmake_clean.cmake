file(REMOVE_RECURSE
  "CMakeFiles/clara_lang.dir/ast.cc.o"
  "CMakeFiles/clara_lang.dir/ast.cc.o.d"
  "CMakeFiles/clara_lang.dir/check.cc.o"
  "CMakeFiles/clara_lang.dir/check.cc.o.d"
  "CMakeFiles/clara_lang.dir/interp.cc.o"
  "CMakeFiles/clara_lang.dir/interp.cc.o.d"
  "CMakeFiles/clara_lang.dir/lower.cc.o"
  "CMakeFiles/clara_lang.dir/lower.cc.o.d"
  "CMakeFiles/clara_lang.dir/printer.cc.o"
  "CMakeFiles/clara_lang.dir/printer.cc.o.d"
  "libclara_lang.a"
  "libclara_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clara_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
