# Empty dependencies file for clara_lang.
# This may be replaced when dependencies are built.
