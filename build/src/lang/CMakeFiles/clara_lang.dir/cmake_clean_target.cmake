file(REMOVE_RECURSE
  "libclara_lang.a"
)
