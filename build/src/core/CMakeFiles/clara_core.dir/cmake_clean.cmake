file(REMOVE_RECURSE
  "CMakeFiles/clara_core.dir/algo_id.cc.o"
  "CMakeFiles/clara_core.dir/algo_id.cc.o.d"
  "CMakeFiles/clara_core.dir/analyzer.cc.o"
  "CMakeFiles/clara_core.dir/analyzer.cc.o.d"
  "CMakeFiles/clara_core.dir/chain.cc.o"
  "CMakeFiles/clara_core.dir/chain.cc.o.d"
  "CMakeFiles/clara_core.dir/coalescing.cc.o"
  "CMakeFiles/clara_core.dir/coalescing.cc.o.d"
  "CMakeFiles/clara_core.dir/colocation.cc.o"
  "CMakeFiles/clara_core.dir/colocation.cc.o.d"
  "CMakeFiles/clara_core.dir/placement.cc.o"
  "CMakeFiles/clara_core.dir/placement.cc.o.d"
  "CMakeFiles/clara_core.dir/predictor.cc.o"
  "CMakeFiles/clara_core.dir/predictor.cc.o.d"
  "CMakeFiles/clara_core.dir/scaleout.cc.o"
  "CMakeFiles/clara_core.dir/scaleout.cc.o.d"
  "libclara_core.a"
  "libclara_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clara_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
