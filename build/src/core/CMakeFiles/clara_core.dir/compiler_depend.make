# Empty compiler generated dependencies file for clara_core.
# This may be replaced when dependencies are built.
