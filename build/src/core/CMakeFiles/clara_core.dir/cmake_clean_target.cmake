file(REMOVE_RECURSE
  "libclara_core.a"
)
