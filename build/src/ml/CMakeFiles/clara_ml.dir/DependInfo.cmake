
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/automl.cc" "src/ml/CMakeFiles/clara_ml.dir/automl.cc.o" "gcc" "src/ml/CMakeFiles/clara_ml.dir/automl.cc.o.d"
  "/root/repo/src/ml/cnn.cc" "src/ml/CMakeFiles/clara_ml.dir/cnn.cc.o" "gcc" "src/ml/CMakeFiles/clara_ml.dir/cnn.cc.o.d"
  "/root/repo/src/ml/common.cc" "src/ml/CMakeFiles/clara_ml.dir/common.cc.o" "gcc" "src/ml/CMakeFiles/clara_ml.dir/common.cc.o.d"
  "/root/repo/src/ml/ensemble.cc" "src/ml/CMakeFiles/clara_ml.dir/ensemble.cc.o" "gcc" "src/ml/CMakeFiles/clara_ml.dir/ensemble.cc.o.d"
  "/root/repo/src/ml/kmeans.cc" "src/ml/CMakeFiles/clara_ml.dir/kmeans.cc.o" "gcc" "src/ml/CMakeFiles/clara_ml.dir/kmeans.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/ml/CMakeFiles/clara_ml.dir/knn.cc.o" "gcc" "src/ml/CMakeFiles/clara_ml.dir/knn.cc.o.d"
  "/root/repo/src/ml/linear.cc" "src/ml/CMakeFiles/clara_ml.dir/linear.cc.o" "gcc" "src/ml/CMakeFiles/clara_ml.dir/linear.cc.o.d"
  "/root/repo/src/ml/lstm.cc" "src/ml/CMakeFiles/clara_ml.dir/lstm.cc.o" "gcc" "src/ml/CMakeFiles/clara_ml.dir/lstm.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/clara_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/clara_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/ml/CMakeFiles/clara_ml.dir/mlp.cc.o" "gcc" "src/ml/CMakeFiles/clara_ml.dir/mlp.cc.o.d"
  "/root/repo/src/ml/pca.cc" "src/ml/CMakeFiles/clara_ml.dir/pca.cc.o" "gcc" "src/ml/CMakeFiles/clara_ml.dir/pca.cc.o.d"
  "/root/repo/src/ml/tree.cc" "src/ml/CMakeFiles/clara_ml.dir/tree.cc.o" "gcc" "src/ml/CMakeFiles/clara_ml.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/clara_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
