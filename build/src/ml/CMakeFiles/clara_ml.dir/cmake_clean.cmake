file(REMOVE_RECURSE
  "CMakeFiles/clara_ml.dir/automl.cc.o"
  "CMakeFiles/clara_ml.dir/automl.cc.o.d"
  "CMakeFiles/clara_ml.dir/cnn.cc.o"
  "CMakeFiles/clara_ml.dir/cnn.cc.o.d"
  "CMakeFiles/clara_ml.dir/common.cc.o"
  "CMakeFiles/clara_ml.dir/common.cc.o.d"
  "CMakeFiles/clara_ml.dir/ensemble.cc.o"
  "CMakeFiles/clara_ml.dir/ensemble.cc.o.d"
  "CMakeFiles/clara_ml.dir/kmeans.cc.o"
  "CMakeFiles/clara_ml.dir/kmeans.cc.o.d"
  "CMakeFiles/clara_ml.dir/knn.cc.o"
  "CMakeFiles/clara_ml.dir/knn.cc.o.d"
  "CMakeFiles/clara_ml.dir/linear.cc.o"
  "CMakeFiles/clara_ml.dir/linear.cc.o.d"
  "CMakeFiles/clara_ml.dir/lstm.cc.o"
  "CMakeFiles/clara_ml.dir/lstm.cc.o.d"
  "CMakeFiles/clara_ml.dir/metrics.cc.o"
  "CMakeFiles/clara_ml.dir/metrics.cc.o.d"
  "CMakeFiles/clara_ml.dir/mlp.cc.o"
  "CMakeFiles/clara_ml.dir/mlp.cc.o.d"
  "CMakeFiles/clara_ml.dir/pca.cc.o"
  "CMakeFiles/clara_ml.dir/pca.cc.o.d"
  "CMakeFiles/clara_ml.dir/tree.cc.o"
  "CMakeFiles/clara_ml.dir/tree.cc.o.d"
  "libclara_ml.a"
  "libclara_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clara_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
