file(REMOVE_RECURSE
  "libclara_ml.a"
)
