# Empty compiler generated dependencies file for clara_ml.
# This may be replaced when dependencies are built.
