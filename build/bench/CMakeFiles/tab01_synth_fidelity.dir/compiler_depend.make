# Empty compiler generated dependencies file for tab01_synth_fidelity.
# This may be replaced when dependencies are built.
