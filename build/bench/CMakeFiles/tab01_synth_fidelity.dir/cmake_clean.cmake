file(REMOVE_RECURSE
  "CMakeFiles/tab01_synth_fidelity.dir/tab01_synth_fidelity.cc.o"
  "CMakeFiles/tab01_synth_fidelity.dir/tab01_synth_fidelity.cc.o.d"
  "tab01_synth_fidelity"
  "tab01_synth_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_synth_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
