file(REMOVE_RECURSE
  "CMakeFiles/abl_ir_opt.dir/abl_ir_opt.cc.o"
  "CMakeFiles/abl_ir_opt.dir/abl_ir_opt.cc.o.d"
  "abl_ir_opt"
  "abl_ir_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ir_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
