file(REMOVE_RECURSE
  "CMakeFiles/fig13_coalescing.dir/fig13_coalescing.cc.o"
  "CMakeFiles/fig13_coalescing.dir/fig13_coalescing.cc.o.d"
  "fig13_coalescing"
  "fig13_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
