# Empty compiler generated dependencies file for fig13_coalescing.
# This may be replaced when dependencies are built.
