# Empty dependencies file for fig10_accelerators.
# This may be replaced when dependencies are built.
