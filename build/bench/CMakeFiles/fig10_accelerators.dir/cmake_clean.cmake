file(REMOVE_RECURSE
  "CMakeFiles/fig10_accelerators.dir/fig10_accelerators.cc.o"
  "CMakeFiles/fig10_accelerators.dir/fig10_accelerators.cc.o.d"
  "fig10_accelerators"
  "fig10_accelerators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_accelerators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
