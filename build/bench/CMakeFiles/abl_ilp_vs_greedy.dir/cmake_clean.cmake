file(REMOVE_RECURSE
  "CMakeFiles/abl_ilp_vs_greedy.dir/abl_ilp_vs_greedy.cc.o"
  "CMakeFiles/abl_ilp_vs_greedy.dir/abl_ilp_vs_greedy.cc.o.d"
  "abl_ilp_vs_greedy"
  "abl_ilp_vs_greedy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ilp_vs_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
