# Empty compiler generated dependencies file for abl_ilp_vs_greedy.
# This may be replaced when dependencies are built.
