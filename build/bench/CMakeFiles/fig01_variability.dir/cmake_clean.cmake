file(REMOVE_RECURSE
  "CMakeFiles/fig01_variability.dir/fig01_variability.cc.o"
  "CMakeFiles/fig01_variability.dir/fig01_variability.cc.o.d"
  "fig01_variability"
  "fig01_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
