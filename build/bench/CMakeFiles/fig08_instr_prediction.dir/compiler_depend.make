# Empty compiler generated dependencies file for fig08_instr_prediction.
# This may be replaced when dependencies are built.
