file(REMOVE_RECURSE
  "CMakeFiles/fig08_instr_prediction.dir/fig08_instr_prediction.cc.o"
  "CMakeFiles/fig08_instr_prediction.dir/fig08_instr_prediction.cc.o.d"
  "fig08_instr_prediction"
  "fig08_instr_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_instr_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
