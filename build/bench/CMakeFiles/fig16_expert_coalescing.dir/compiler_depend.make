# Empty compiler generated dependencies file for fig16_expert_coalescing.
# This may be replaced when dependencies are built.
