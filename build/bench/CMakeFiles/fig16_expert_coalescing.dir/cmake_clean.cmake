file(REMOVE_RECURSE
  "CMakeFiles/fig16_expert_coalescing.dir/fig16_expert_coalescing.cc.o"
  "CMakeFiles/fig16_expert_coalescing.dir/fig16_expert_coalescing.cc.o.d"
  "fig16_expert_coalescing"
  "fig16_expert_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_expert_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
