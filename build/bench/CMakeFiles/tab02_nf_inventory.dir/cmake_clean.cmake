file(REMOVE_RECURSE
  "CMakeFiles/tab02_nf_inventory.dir/tab02_nf_inventory.cc.o"
  "CMakeFiles/tab02_nf_inventory.dir/tab02_nf_inventory.cc.o.d"
  "tab02_nf_inventory"
  "tab02_nf_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_nf_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
