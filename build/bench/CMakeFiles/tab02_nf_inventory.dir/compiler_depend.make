# Empty compiler generated dependencies file for tab02_nf_inventory.
# This may be replaced when dependencies are built.
