# Empty compiler generated dependencies file for fig09_algorithm_id.
# This may be replaced when dependencies are built.
