file(REMOVE_RECURSE
  "CMakeFiles/fig09_algorithm_id.dir/fig09_algorithm_id.cc.o"
  "CMakeFiles/fig09_algorithm_id.dir/fig09_algorithm_id.cc.o.d"
  "fig09_algorithm_id"
  "fig09_algorithm_id.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_algorithm_id.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
