file(REMOVE_RECURSE
  "CMakeFiles/fig14_colocation.dir/fig14_colocation.cc.o"
  "CMakeFiles/fig14_colocation.dir/fig14_colocation.cc.o.d"
  "fig14_colocation"
  "fig14_colocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
