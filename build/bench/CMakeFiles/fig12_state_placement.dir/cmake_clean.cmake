file(REMOVE_RECURSE
  "CMakeFiles/fig12_state_placement.dir/fig12_state_placement.cc.o"
  "CMakeFiles/fig12_state_placement.dir/fig12_state_placement.cc.o.d"
  "fig12_state_placement"
  "fig12_state_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_state_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
