# Empty compiler generated dependencies file for fig12_state_placement.
# This may be replaced when dependencies are built.
