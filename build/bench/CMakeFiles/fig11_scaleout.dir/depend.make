# Empty dependencies file for fig11_scaleout.
# This may be replaced when dependencies are built.
