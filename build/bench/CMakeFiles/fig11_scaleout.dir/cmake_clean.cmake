file(REMOVE_RECURSE
  "CMakeFiles/fig11_scaleout.dir/fig11_scaleout.cc.o"
  "CMakeFiles/fig11_scaleout.dir/fig11_scaleout.cc.o.d"
  "fig11_scaleout"
  "fig11_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
