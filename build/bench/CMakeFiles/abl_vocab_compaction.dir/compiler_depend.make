# Empty compiler generated dependencies file for abl_vocab_compaction.
# This may be replaced when dependencies are built.
