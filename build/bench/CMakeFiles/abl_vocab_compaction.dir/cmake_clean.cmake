file(REMOVE_RECURSE
  "CMakeFiles/abl_vocab_compaction.dir/abl_vocab_compaction.cc.o"
  "CMakeFiles/abl_vocab_compaction.dir/abl_vocab_compaction.cc.o.d"
  "abl_vocab_compaction"
  "abl_vocab_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_vocab_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
