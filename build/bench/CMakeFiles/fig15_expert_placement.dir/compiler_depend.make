# Empty compiler generated dependencies file for fig15_expert_placement.
# This may be replaced when dependencies are built.
