file(REMOVE_RECURSE
  "CMakeFiles/fig15_expert_placement.dir/fig15_expert_placement.cc.o"
  "CMakeFiles/fig15_expert_placement.dir/fig15_expert_placement.cc.o.d"
  "fig15_expert_placement"
  "fig15_expert_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_expert_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
