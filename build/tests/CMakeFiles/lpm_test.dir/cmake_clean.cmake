file(REMOVE_RECURSE
  "CMakeFiles/lpm_test.dir/lpm_test.cc.o"
  "CMakeFiles/lpm_test.dir/lpm_test.cc.o.d"
  "lpm_test"
  "lpm_test.pdb"
  "lpm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
