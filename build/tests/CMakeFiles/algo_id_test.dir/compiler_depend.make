# Empty compiler generated dependencies file for algo_id_test.
# This may be replaced when dependencies are built.
