file(REMOVE_RECURSE
  "CMakeFiles/algo_id_test.dir/algo_id_test.cc.o"
  "CMakeFiles/algo_id_test.dir/algo_id_test.cc.o.d"
  "algo_id_test"
  "algo_id_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_id_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
