file(REMOVE_RECURSE
  "CMakeFiles/scaleout_test.dir/scaleout_test.cc.o"
  "CMakeFiles/scaleout_test.dir/scaleout_test.cc.o.d"
  "scaleout_test"
  "scaleout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaleout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
