# Empty dependencies file for nf_substrate_test.
# This may be replaced when dependencies are built.
