file(REMOVE_RECURSE
  "CMakeFiles/nf_substrate_test.dir/nf_substrate_test.cc.o"
  "CMakeFiles/nf_substrate_test.dir/nf_substrate_test.cc.o.d"
  "nf_substrate_test"
  "nf_substrate_test.pdb"
  "nf_substrate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf_substrate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
