# Empty compiler generated dependencies file for simmap_test.
# This may be replaced when dependencies are built.
