file(REMOVE_RECURSE
  "CMakeFiles/simmap_test.dir/simmap_test.cc.o"
  "CMakeFiles/simmap_test.dir/simmap_test.cc.o.d"
  "simmap_test"
  "simmap_test.pdb"
  "simmap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
