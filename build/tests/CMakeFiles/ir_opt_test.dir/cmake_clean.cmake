file(REMOVE_RECURSE
  "CMakeFiles/ir_opt_test.dir/ir_opt_test.cc.o"
  "CMakeFiles/ir_opt_test.dir/ir_opt_test.cc.o.d"
  "ir_opt_test"
  "ir_opt_test.pdb"
  "ir_opt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_opt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
