# Empty dependencies file for ir_opt_test.
# This may be replaced when dependencies are built.
