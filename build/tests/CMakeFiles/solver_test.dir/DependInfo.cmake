
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/solver_test.cc" "tests/CMakeFiles/solver_test.dir/solver_test.cc.o" "gcc" "tests/CMakeFiles/solver_test.dir/solver_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/clara_core.dir/DependInfo.cmake"
  "/root/repo/build/src/elements/CMakeFiles/clara_elements.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/clara_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/clara_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/clara_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/clara_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/clara_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/clara_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/clara_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/nf/CMakeFiles/clara_nf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/clara_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
