file(REMOVE_RECURSE
  "CMakeFiles/coalescing_test.dir/coalescing_test.cc.o"
  "CMakeFiles/coalescing_test.dir/coalescing_test.cc.o.d"
  "coalescing_test"
  "coalescing_test.pdb"
  "coalescing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coalescing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
