file(REMOVE_RECURSE
  "CMakeFiles/lang_interp_test.dir/lang_interp_test.cc.o"
  "CMakeFiles/lang_interp_test.dir/lang_interp_test.cc.o.d"
  "lang_interp_test"
  "lang_interp_test.pdb"
  "lang_interp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_interp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
