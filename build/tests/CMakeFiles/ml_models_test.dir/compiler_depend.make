# Empty compiler generated dependencies file for ml_models_test.
# This may be replaced when dependencies are built.
