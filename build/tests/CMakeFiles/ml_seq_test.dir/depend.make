# Empty dependencies file for ml_seq_test.
# This may be replaced when dependencies are built.
