file(REMOVE_RECURSE
  "CMakeFiles/ml_seq_test.dir/ml_seq_test.cc.o"
  "CMakeFiles/ml_seq_test.dir/ml_seq_test.cc.o.d"
  "ml_seq_test"
  "ml_seq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_seq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
