file(REMOVE_RECURSE
  "CMakeFiles/lang_lower_test.dir/lang_lower_test.cc.o"
  "CMakeFiles/lang_lower_test.dir/lang_lower_test.cc.o.d"
  "lang_lower_test"
  "lang_lower_test.pdb"
  "lang_lower_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_lower_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
