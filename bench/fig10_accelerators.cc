// Figure 10b/10c: performance effect of the accelerator porting insights.
// 10b: CRC engine vs procedural checksum for cmsketch and wepdecap.
// 10c: LPM engine vs software trie walk for iplookup across rule counts.
#include "bench/bench_util.h"
#include "src/core/placement.h"
#include "src/nf/lpm.h"

namespace clara {
namespace bench {
namespace {

constexpr int kCores = 8;

void CrcFigure(const PerfModel& model) {
  Header("Figure 10b: CRC accelerator insight (throughput / latency)");
  std::printf("  %-12s %14s %14s %12s %12s\n", "NF", "naive (Mpps)", "Clara (Mpps)",
              "naive (us)", "Clara (us)");
  struct Case {
    const char* name;
    Program naive;
    Program clara;
  };
  WorkloadSpec w = WorkloadSpec::SmallFlows(128);
  Case cases[] = {
      {"cmsketch", MakeCmSketch(false), MakeCmSketch(true)},
      {"wepdecap", MakeWepDecap(false), MakeWepDecap(true)},
  };
  for (auto& c : cases) {
    ProfiledNf naive = ProfileNf(std::move(c.naive), w).OrDie();
    ProfiledNf clara = ProfileNf(std::move(c.clara), w).OrDie();
    // Isolate the accelerator effect: both variants get the same (Clara)
    // state placement so RC4/sketch state traffic doesn't mask it.
    DemandOptions nopts;
    nopts.placement =
        PlaceState(naive.module(), naive.profile(), w, model.config()).placement;
    DemandOptions copts;
    copts.placement =
        PlaceState(clara.module(), clara.profile(), w, model.config()).placement;
    PerfPoint pn = model.Evaluate(naive.Demand(model.config(), nopts), kCores);
    PerfPoint pc = model.Evaluate(clara.Demand(model.config(), copts), kCores);
    std::printf("  %-12s %14.2f %14.2f %12.2f %12.2f   (tput x%.2f, lat %+.0f%%)\n", c.name,
                pn.throughput_mpps, pc.throughput_mpps, pn.latency_us, pc.latency_us,
                pc.throughput_mpps / pn.throughput_mpps,
                (pc.latency_us / pn.latency_us - 1) * 100);
  }
  Note("paper: up to 1.6x peak throughput, up to 25% lower latency.");
}

void LpmFigure(const PerfModel& model) {
  Header("Figure 10c: LPM accelerator insight vs number of table rules");
  std::printf("  %-8s %14s %14s %12s %12s\n", "rules", "naive (Mpps)", "Clara (Mpps)",
              "naive (us)", "Clara (us)");
  WorkloadSpec w = WorkloadSpec::LargeFlows(128);
  for (int log_rules = 4; log_rules <= 10; ++log_rules) {
    int rules = 1 << log_rules;
    // The accelerated port needs the engine's table handle.
    LpmTable table;
    Rng rng(99);
    for (int r = 0; r < rules; ++r) {
      int plen = static_cast<int>(rng.NextInt(8, 24));
      uint32_t prefix = static_cast<uint32_t>(rng.NextU64()) & ~((1u << (32 - plen)) - 1);
      table.Insert(prefix, plen, static_cast<uint32_t>(rng.NextBounded(16)));
    }
    ProfiledNf naive = ProfileNf(MakeIpLookup(rules, false, false, 99), w).OrDie();
    ProfiledNf clara = ProfileNf(MakeIpLookup(rules, true, false, 99), w, 4000, &table).OrDie();
    PerfPoint pn = model.Evaluate(naive.Demand(model.config()), kCores);
    PerfPoint pc = model.Evaluate(clara.Demand(model.config()), kCores);
    std::printf("  2^%-6d %14.2f %14.2f %12.2f %12.2f   (x%.1f tput, x%.1f lat)\n",
                log_rules, pn.throughput_mpps, pc.throughput_mpps, pn.latency_us,
                pc.latency_us, pc.throughput_mpps / pn.throughput_mpps,
                pn.latency_us / pc.latency_us);
  }
  Note("paper: roughly one order of magnitude on both axes at large tables.");
}

}  // namespace
}  // namespace bench
}  // namespace clara

int main(int argc, char** argv) {
  clara::bench::InitBenchThreads(argc, argv);
  clara::PerfModel model;
  clara::bench::CrcFigure(model);
  clara::bench::LpmFigure(model);
  return 0;
}
