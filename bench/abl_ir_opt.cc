// Ablation: why Clara lowers with optimizations DISABLED (paper SS3.1).
// Running the optional optimizer before analysis changes instruction
// distributions (shrinking stateless stack traffic) and shifts the
// vocabulary the learned compiler model was trained on, while leaving the
// directly-counted stateful accesses intact.
#include "bench/bench_util.h"
#include "src/ir/classify.h"
#include "src/ir/opt.h"
#include "src/ir/vocab.h"
#include "src/lang/lower.h"

namespace clara {
namespace bench {
namespace {

void Run() {
  Header("Ablation: IR optimization vs analysis-faithful lowering");
  std::printf("  %-14s %9s %9s %9s %9s %9s\n", "element", "instrs", "opt", "stateless",
              "opt", "stateful");
  Vocabulary vocab_plain;
  Vocabulary vocab_opt;
  uint32_t total_before = 0;
  uint32_t total_after = 0;
  for (const auto& info : ElementRegistry()) {
    Program p1 = info.make();
    LowerResult plain = LowerProgram(p1);
    Program p2 = info.make();
    LowerResult opt = LowerProgram(p2);
    OptimizeModule(opt.module);

    BlockCounts cb = CountFunction(plain.module.functions[0]);
    BlockCounts ca = CountFunction(opt.module.functions[0]);
    total_before += plain.module.functions[0].NumInstructions();
    total_after += opt.module.functions[0].NumInstructions();
    for (const auto& blk : plain.module.functions[0].blocks) {
      vocab_plain.Encode(blk, plain.module);
    }
    for (const auto& blk : opt.module.functions[0].blocks) {
      vocab_opt.Encode(blk, opt.module);
    }
    std::printf("  %-14s %9u %9u %9u %9u %9u (unchanged: %s)\n", info.name.c_str(),
                plain.module.functions[0].NumInstructions(),
                opt.module.functions[0].NumInstructions(), cb.stateless_mem,
                ca.stateless_mem, cb.stateful_mem,
                cb.stateful_mem == ca.stateful_mem ? "yes" : "NO");
  }
  std::printf("\n  total instructions: %u -> %u (%.0f%% eliminated by the optimizer)\n",
              total_before, total_after,
              (1.0 - static_cast<double>(total_after) / total_before) * 100);
  std::printf("  vocabulary: %d words (plain) vs %d (optimized)\n", vocab_plain.size(),
              vocab_opt.size());
  Note("");
  Note("Clara analyzes the PLAIN form: the learned compiler model's training");
  Note("distribution assumes unoptimized IR, and the NIC vendor compiler does its");
  Note("own optimization downstream — optimizing twice would double-count.");
}

}  // namespace
}  // namespace bench
}  // namespace clara

int main(int argc, char** argv) {
  clara::bench::InitBenchThreads(argc, argv);
  clara::bench::Run();
  return 0;
}
