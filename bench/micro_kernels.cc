// google-benchmark microbenchmarks for the library's hot kernels: how fast
// is the tooling itself (lowering, compilation, interpretation, inference,
// solving)? Useful when extending Clara — none of the paper's figures depend
// on these numbers.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_util.h"
#include "src/core/predictor.h"
#include "src/elements/elements.h"
#include "src/ir/vocab.h"
#include "src/lang/interp.h"
#include "src/lang/lower.h"
#include "src/ml/automl.h"
#include "src/ml/kernels.h"
#include "src/ml/kernels_f32.h"
#include "src/ml/lstm.h"
#include "src/ml/simd.h"
#include "src/nic/backend.h"
#include "src/nic/perf_model.h"
#include "src/solver/assignment_ilp.h"
#include "src/util/parallel.h"
#include "src/workload/workload.h"

namespace clara {
namespace {

void BM_LowerMazuNat(benchmark::State& state) {
  for (auto _ : state) {
    Program p = MakeMazuNat();
    LowerResult lr = LowerProgram(p);
    benchmark::DoNotOptimize(lr.module.functions[0].NumInstructions());
  }
}
BENCHMARK(BM_LowerMazuNat);

void BM_CompileToNicMazuNat(benchmark::State& state) {
  Program p = MakeMazuNat();
  LowerResult lr = LowerProgram(p);
  for (auto _ : state) {
    NicProgram nic = CompileToNic(lr.module);
    benchmark::DoNotOptimize(nic.Totals().compute);
  }
}
BENCHMARK(BM_CompileToNicMazuNat);

void BM_InterpretPacket(benchmark::State& state) {
  NfInstance nf(MakeMazuNat());
  Trace trace = GenerateTrace(WorkloadSpec::SmallFlows(), 4096);
  size_t i = 0;
  for (auto _ : state) {
    Packet pkt = trace.packets[i++ & 4095];
    pkt.in_port = 0;
    nf.Process(pkt);
    benchmark::DoNotOptimize(pkt.verdict);
  }
}
BENCHMARK(BM_InterpretPacket);

void BM_SimMapFind(benchmark::State& state) {
  StateDecl d;
  d.name = "m";
  d.kind = StateKind::kMap;
  d.key_fields = {Type::kI32, Type::kI32};
  d.value_fields = {{"v", Type::kI32}};
  d.capacity = 8192;
  d.impl = MapImpl::kNicFixedBucket;
  SimMap m(d);
  for (uint64_t k = 1; k <= 4096; ++k) {
    m.Insert({k, k + 1}, {k});
  }
  uint64_t k = 1;
  std::vector<uint64_t> out;
  for (auto _ : state) {
    auto r = m.Find({k, k + 1}, &out);
    benchmark::DoNotOptimize(r.found);
    k = k % 4096 + 1;
  }
}
BENCHMARK(BM_SimMapFind);

void BM_LstmInference(benchmark::State& state) {
  SeqDataset data;
  data.vocab = 64;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    SeqExample ex;
    for (int t = 0; t < 24; ++t) {
      ex.tokens.push_back(static_cast<int>(rng.NextBounded(64)));
    }
    ex.target = static_cast<double>(rng.NextBounded(40));
    data.examples.push_back(std::move(ex));
  }
  LstmOptions opts;
  opts.epochs = 2;
  opts.hidden = 32;
  LstmRegressor lstm(opts);
  lstm.Fit(data);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lstm.Predict(data.examples[i++ % 100].tokens));
  }
}
BENCHMARK(BM_LstmInference);

// The LSTM-recurrence GEMV shape (4H x H rows at H=32), timed per backend:
// the serve hot path's dominant kernel. The f32 rows use the dispatched
// kernel table (AVX2 when available), the int8 rows include the per-call
// activation quantization + dequantization the real recurrence pays.
constexpr int kGemvRows = 128, kGemvCols = 32;

struct GemvFixture {
  std::vector<double> m64, x64, bias64, y64;
  std::vector<float> m32, x32, bias32, y32;
  std::vector<float> row_scale;
  std::vector<int8_t> m8;
  std::vector<int32_t> rowsum, acc;
  std::vector<uint8_t> q;

  GemvFixture() {
    Rng rng(21);
    m64.resize(kGemvRows * kGemvCols);
    x64.resize(kGemvCols);
    bias64.resize(kGemvRows);
    y64.resize(kGemvRows);
    for (auto& v : m64) v = 2 * rng.NextDouble() - 1;
    for (auto& v : x64) v = 2 * rng.NextDouble() - 1;
    for (auto& v : bias64) v = rng.NextDouble();
    m32.assign(m64.begin(), m64.end());
    x32.assign(x64.begin(), x64.end());
    bias32.assign(bias64.begin(), bias64.end());
    y32.resize(kGemvRows);
    row_scale.resize(kGemvRows);
    m8.resize(kGemvRows * kGemvCols);
    rowsum.assign(kGemvRows, 0);
    acc.resize(kGemvRows);
    q.resize(kGemvCols);
    for (int r = 0; r < kGemvRows; ++r) {
      row_scale[r] = kernels::Int8RowScale(&m64[r * kGemvCols], kGemvCols);
      for (int c = 0; c < kGemvCols; ++c) {
        m8[r * kGemvCols + c] = kernels::QuantizeWeight(m64[r * kGemvCols + c], row_scale[r]);
        rowsum[r] += m8[r * kGemvCols + c];
      }
    }
  }

  void RunF64() {
    kernels::GemvBias(y64.data(), m64.data(), x64.data(), bias64.data(), kGemvRows, kGemvCols);
    benchmark::DoNotOptimize(y64[0]);
  }
  void RunF32(const kernels::F32Kernels& k) {
    k.gemv_bias(y32.data(), m32.data(), kGemvCols, x32.data(), bias32.data(), kGemvRows,
                kGemvCols);
    benchmark::DoNotOptimize(y32[0]);
  }
  void RunInt8(const kernels::F32Kernels& k) {
    kernels::ActQuant aq = kernels::QuantizeActivations(x32.data(), kGemvCols, q.data());
    k.gemv_int8(acc.data(), m8.data(), kGemvCols, q.data(), kGemvRows, kGemvCols);
    for (int r = 0; r < kGemvRows; ++r) {
      y32[r] = bias32[r] + row_scale[r] * aq.scale *
                               static_cast<float>(acc[r] - aq.zero_point * rowsum[r]);
    }
    benchmark::DoNotOptimize(y32[0]);
  }
};

void BM_GemvF64Scalar(benchmark::State& state) {
  GemvFixture fx;
  for (auto _ : state) {
    fx.RunF64();
  }
}
BENCHMARK(BM_GemvF64Scalar);

void BM_GemvF32Scalar(benchmark::State& state) {
  GemvFixture fx;
  for (auto _ : state) {
    fx.RunF32(kernels::ScalarF32Kernels());
  }
}
BENCHMARK(BM_GemvF32Scalar);

void BM_GemvF32Simd(benchmark::State& state) {
  if (kernels::Avx2F32Kernels() == nullptr) {
    state.SkipWithError("AVX2 kernels unavailable");
    return;
  }
  GemvFixture fx;
  for (auto _ : state) {
    fx.RunF32(*kernels::Avx2F32Kernels());
  }
}
BENCHMARK(BM_GemvF32Simd);

void BM_GemvInt8(benchmark::State& state) {
  GemvFixture fx;
  for (auto _ : state) {
    fx.RunInt8(kernels::ActiveF32Kernels());
  }
}
BENCHMARK(BM_GemvInt8);

void BM_LstmInferenceF32(benchmark::State& state) {
  SeqDataset data;
  data.vocab = 64;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    SeqExample ex;
    for (int t = 0; t < 24; ++t) {
      ex.tokens.push_back(static_cast<int>(rng.NextBounded(64)));
    }
    ex.target = static_cast<double>(rng.NextBounded(40));
    data.examples.push_back(std::move(ex));
  }
  LstmOptions opts;
  opts.epochs = 2;
  opts.hidden = 32;
  LstmRegressor lstm(opts);
  lstm.Fit(data);
  lstm.SetInferBackend(InferBackend::kF32);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lstm.Predict(data.examples[i++ % 100].tokens));
  }
}
BENCHMARK(BM_LstmInferenceF32);

void BM_LstmInferenceInt8(benchmark::State& state) {
  SeqDataset data;
  data.vocab = 64;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    SeqExample ex;
    for (int t = 0; t < 24; ++t) {
      ex.tokens.push_back(static_cast<int>(rng.NextBounded(64)));
    }
    ex.target = static_cast<double>(rng.NextBounded(40));
    data.examples.push_back(std::move(ex));
  }
  LstmOptions opts;
  opts.epochs = 2;
  opts.hidden = 32;
  LstmRegressor lstm(opts);
  lstm.Fit(data);
  lstm.SetInferBackend(InferBackend::kInt8);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lstm.Predict(data.examples[i++ % 100].tokens));
  }
}
BENCHMARK(BM_LstmInferenceInt8);

void BM_PerfModelEvaluate(benchmark::State& state) {
  PerfModel model;
  NfDemand d;
  d.compute_cycles = 300;
  d.pkt_accesses = 3;
  StateDemand s;
  s.accesses_per_pkt = 4;
  s.words_per_access = 3;
  s.region = MemRegion::kEmem;
  s.cache_hit_rate = 0.7;
  d.state.push_back(s);
  int cores = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Evaluate(d, cores).throughput_mpps);
    cores = cores % 60 + 1;
  }
}
BENCHMARK(BM_PerfModelEvaluate);

void BM_IlpSolve(benchmark::State& state) {
  AssignmentProblem p;
  Rng rng(7);
  p.capacity = {1000, 4000, 16000, 1u << 30};
  for (int i = 0; i < 8; ++i) {
    p.size.push_back(100 + rng.NextBounded(3000));
    std::vector<double> row;
    for (int j = 0; j < 4; ++j) {
      row.push_back(1.0 + static_cast<double>(rng.NextBounded(500)));
    }
    p.cost.push_back(row);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveAssignment(p).objective);
  }
}
BENCHMARK(BM_IlpSolve);

void BM_KernelDot(benchmark::State& state) {
  std::vector<double> a(1024), b(1024);
  Rng rng(3);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.NextDouble();
    b[i] = rng.NextDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::Dot(a.data(), b.data(), a.size()));
  }
}
BENCHMARK(BM_KernelDot);

void BM_KernelGemvBias(benchmark::State& state) {
  constexpr size_t kRows = 256, kCols = 64;
  std::vector<double> m(kRows * kCols), x(kCols), bias(kRows), y(kRows);
  Rng rng(4);
  for (auto& v : m) {
    v = rng.NextDouble();
  }
  for (auto& v : x) {
    v = rng.NextDouble();
  }
  for (auto _ : state) {
    kernels::GemvBias(y.data(), m.data(), x.data(), bias.data(), kRows, kCols);
    benchmark::DoNotOptimize(y[0]);
  }
}
BENCHMARK(BM_KernelGemvBias);

void BM_KernelAxpyDual(benchmark::State& state) {
  constexpr size_t kN = 1024;
  std::vector<double> g(kN), dh(kN), w(kN), h(kN);
  Rng rng(5);
  for (size_t i = 0; i < kN; ++i) {
    w[i] = rng.NextDouble();
    h[i] = rng.NextDouble();
  }
  for (auto _ : state) {
    kernels::AxpyDual(g.data(), dh.data(), w.data(), h.data(), 0.25, kN);
    benchmark::DoNotOptimize(g[0]);
  }
}
BENCHMARK(BM_KernelAxpyDual);

void BM_CompileToNicCachedMazuNat(benchmark::State& state) {
  Program p = MakeMazuNat();
  LowerResult lr = LowerProgram(p);
  for (auto _ : state) {
    NicProgram nic = CompileToNicCached(lr.module);
    benchmark::DoNotOptimize(nic.Totals().compute);
  }
}
BENCHMARK(BM_CompileToNicCachedMazuNat);

void BM_VocabularyEncode(benchmark::State& state) {
  Program p = MakeMazuNat();
  LowerResult lr = LowerProgram(p);
  Vocabulary vocab;
  for (auto _ : state) {
    for (const auto& blk : lr.module.functions[0].blocks) {
      benchmark::DoNotOptimize(vocab.Encode(blk, lr.module).size());
    }
  }
}
BENCHMARK(BM_VocabularyEncode);

}  // namespace

// Serial-vs-parallel wall-time rows for the bench trajectory: the same
// training workloads at 1 thread and at the pool's configured width, written
// to BENCH_micro_kernels.json when CLARA_BENCH_JSON_DIR is set. On a
// single-core host the two columns coincide; tools/bench_diff.py compares
// rows across runs.
void EmitParallelComparison() {
  bench::JsonRows rows("micro_kernels");
  if (!rows.enabled()) {
    return;
  }
  auto time_ms = [](auto&& fn) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  SeqDataset seq;
  seq.vocab = 64;
  Rng rng(11);
  for (int i = 0; i < 120; ++i) {
    SeqExample ex;
    for (int t = 0; t < 24; ++t) {
      ex.tokens.push_back(static_cast<int>(rng.NextBounded(64)));
    }
    ex.target = static_cast<double>(rng.NextBounded(40));
    seq.examples.push_back(std::move(ex));
  }
  TabularDataset tab;
  for (int i = 0; i < 160; ++i) {
    FeatureVec x;
    for (int j = 0; j < 6; ++j) {
      x.push_back(rng.NextDouble());
    }
    tab.y.push_back(x[0] * 3 + x[1] - x[2] * x[3]);
    tab.x.push_back(std::move(x));
  }
  PredictorOptions popts;
  popts.train_programs = 40;  // reduced corpus: a trajectory row, not a figure
  popts.lstm.epochs = 2;
  popts.lstm.hidden = 16;
  popts.lstm.batch_size = 8;
  popts.synth.profile = bench::CorpusProfile(bench::ElementCorpus());
  int wide = NumThreads();
  for (int threads : {1, wide}) {
    SetNumThreads(threads);
    LstmOptions opts;
    opts.epochs = 4;
    opts.hidden = 24;
    opts.batch_size = 8;
    double lstm_ms = time_ms([&] {
      LstmRegressor lstm(opts);
      lstm.Fit(seq);
    });
    double automl_ms = time_ms([&] { AutoMlRegression(tab); });
    ClearNicCompileCache();  // both passes pay the same compile cost
    double predictor_ms = time_ms([&] {
      InstructionPredictor pred(popts);
      pred.Train();
    });
    rows.Row().Str("phase", "lstm_fit").Num("threads", threads).Num("ms", lstm_ms);
    rows.Row().Str("phase", "automl_fit").Num("threads", threads).Num("ms", automl_ms);
    rows.Row().Str("phase", "predictor_train").Num("threads", threads).Num("ms", predictor_ms);
  }
  SetNumThreads(wide);

  // GEMV backend comparison on the LSTM-recurrence shape. The JSON rows
  // carry the speedup capped at 2.5 so bench_diff comparisons stay stable
  // across machines with different SIMD width / memory systems; the
  // uncapped measurement is printed for humans.
  GemvFixture fx;
  auto best_of = [&](auto&& run) {
    constexpr int kIters = 20000;
    double best = 1e300;
    for (int round = 0; round < 5; ++round) {
      auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kIters; ++i) {
        run();
      }
      double ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
              .count();
      best = best < ms ? best : ms;
    }
    return best;
  };
  double f64_ms = best_of([&] { fx.RunF64(); });
  double f32_ms = best_of([&] { fx.RunF32(kernels::ActiveF32Kernels()); });
  double int8_ms = best_of([&] { fx.RunInt8(kernels::ActiveF32Kernels()); });
  double f32_speedup = f32_ms > 0 ? f64_ms / f32_ms : 0;
  double int8_speedup = int8_ms > 0 ? f64_ms / int8_ms : 0;
  std::printf("gemv %dx%d (%s): f64 %.3fms  f32 %.3fms (%.2fx)  int8 %.3fms (%.2fx)\n",
              kGemvRows, kGemvCols, kernels::ActiveF32Kernels().name, f64_ms, f32_ms,
              f32_speedup, int8_ms, int8_speedup);
  auto cap = [](double v) { return v < 2.5 ? v : 2.5; };
  rows.Row()
      .Str("phase", "gemv_speedup")
      .Str("variant", "f32_simd_vs_f64_scalar")
      .Num("speedup_capped", cap(f32_speedup));
  rows.Row()
      .Str("phase", "gemv_speedup")
      .Str("variant", "int8_vs_f64_scalar")
      .Num("speedup_capped", cap(int8_speedup));
}

}  // namespace clara

int main(int argc, char** argv) {
  clara::bench::InitBenchThreads(argc, argv);
  // Drop --threads= before handing argv to google-benchmark: it rejects
  // flags it does not recognize.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) != 0) {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  clara::EmitParallelComparison();
  return 0;
}
