// google-benchmark microbenchmarks for the library's hot kernels: how fast
// is the tooling itself (lowering, compilation, interpretation, inference,
// solving)? Useful when extending Clara — none of the paper's figures depend
// on these numbers.
#include <benchmark/benchmark.h>

#include "src/core/predictor.h"
#include "src/elements/elements.h"
#include "src/ir/vocab.h"
#include "src/lang/interp.h"
#include "src/lang/lower.h"
#include "src/ml/lstm.h"
#include "src/nic/backend.h"
#include "src/nic/perf_model.h"
#include "src/solver/assignment_ilp.h"
#include "src/workload/workload.h"

namespace clara {
namespace {

void BM_LowerMazuNat(benchmark::State& state) {
  for (auto _ : state) {
    Program p = MakeMazuNat();
    LowerResult lr = LowerProgram(p);
    benchmark::DoNotOptimize(lr.module.functions[0].NumInstructions());
  }
}
BENCHMARK(BM_LowerMazuNat);

void BM_CompileToNicMazuNat(benchmark::State& state) {
  Program p = MakeMazuNat();
  LowerResult lr = LowerProgram(p);
  for (auto _ : state) {
    NicProgram nic = CompileToNic(lr.module);
    benchmark::DoNotOptimize(nic.Totals().compute);
  }
}
BENCHMARK(BM_CompileToNicMazuNat);

void BM_InterpretPacket(benchmark::State& state) {
  NfInstance nf(MakeMazuNat());
  Trace trace = GenerateTrace(WorkloadSpec::SmallFlows(), 4096);
  size_t i = 0;
  for (auto _ : state) {
    Packet pkt = trace.packets[i++ & 4095];
    pkt.in_port = 0;
    nf.Process(pkt);
    benchmark::DoNotOptimize(pkt.verdict);
  }
}
BENCHMARK(BM_InterpretPacket);

void BM_SimMapFind(benchmark::State& state) {
  StateDecl d;
  d.name = "m";
  d.kind = StateKind::kMap;
  d.key_fields = {Type::kI32, Type::kI32};
  d.value_fields = {{"v", Type::kI32}};
  d.capacity = 8192;
  d.impl = MapImpl::kNicFixedBucket;
  SimMap m(d);
  for (uint64_t k = 1; k <= 4096; ++k) {
    m.Insert({k, k + 1}, {k});
  }
  uint64_t k = 1;
  std::vector<uint64_t> out;
  for (auto _ : state) {
    auto r = m.Find({k, k + 1}, &out);
    benchmark::DoNotOptimize(r.found);
    k = k % 4096 + 1;
  }
}
BENCHMARK(BM_SimMapFind);

void BM_LstmInference(benchmark::State& state) {
  SeqDataset data;
  data.vocab = 64;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    SeqExample ex;
    for (int t = 0; t < 24; ++t) {
      ex.tokens.push_back(static_cast<int>(rng.NextBounded(64)));
    }
    ex.target = static_cast<double>(rng.NextBounded(40));
    data.examples.push_back(std::move(ex));
  }
  LstmOptions opts;
  opts.epochs = 2;
  opts.hidden = 32;
  LstmRegressor lstm(opts);
  lstm.Fit(data);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lstm.Predict(data.examples[i++ % 100].tokens));
  }
}
BENCHMARK(BM_LstmInference);

void BM_PerfModelEvaluate(benchmark::State& state) {
  PerfModel model;
  NfDemand d;
  d.compute_cycles = 300;
  d.pkt_accesses = 3;
  StateDemand s;
  s.accesses_per_pkt = 4;
  s.words_per_access = 3;
  s.region = MemRegion::kEmem;
  s.cache_hit_rate = 0.7;
  d.state.push_back(s);
  int cores = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Evaluate(d, cores).throughput_mpps);
    cores = cores % 60 + 1;
  }
}
BENCHMARK(BM_PerfModelEvaluate);

void BM_IlpSolve(benchmark::State& state) {
  AssignmentProblem p;
  Rng rng(7);
  p.capacity = {1000, 4000, 16000, 1u << 30};
  for (int i = 0; i < 8; ++i) {
    p.size.push_back(100 + rng.NextBounded(3000));
    std::vector<double> row;
    for (int j = 0; j < 4; ++j) {
      row.push_back(1.0 + static_cast<double>(rng.NextBounded(500)));
    }
    p.cost.push_back(row);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveAssignment(p).objective);
  }
}
BENCHMARK(BM_IlpSolve);

void BM_VocabularyEncode(benchmark::State& state) {
  Program p = MakeMazuNat();
  LowerResult lr = LowerProgram(p);
  Vocabulary vocab;
  for (auto _ : state) {
    for (const auto& blk : lr.module.functions[0].blocks) {
      benchmark::DoNotOptimize(vocab.Encode(blk, lr.module).size());
    }
  }
}
BENCHMARK(BM_VocabularyEncode);

}  // namespace
}  // namespace clara

BENCHMARK_MAIN();
