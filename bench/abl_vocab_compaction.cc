// Ablation (paper §6, "Experience with ML models"): vocabulary compaction.
// Training the same LSTM with raw operands (no compaction) explodes the
// vocabulary and degrades prediction accuracy.
#include "bench/bench_util.h"
#include "src/core/predictor.h"
#include "src/lang/lower.h"
#include "src/ml/metrics.h"

namespace clara {
namespace bench {
namespace {

double HeldOutWmape(const InstructionPredictor& predictor) {
  std::vector<double> truth;
  std::vector<double> pred;
  for (const char* name : {"tcpack", "udpipencap", "forcetcp", "anonipaddr", "tcpresp",
                           "aggcounter", "timefilter"}) {
    Program p = MakeElementByName(name);
    LowerResult lr = LowerProgram(p);
    auto gt = CompileGroundTruth(lr.module, predictor.options().backend);
    const Function& f = lr.module.functions[0];
    for (size_t b = 0; b < f.blocks.size(); ++b) {
      if (f.blocks[b].instrs.size() < 2) {
        continue;
      }
      truth.push_back(gt[b].compute);
      pred.push_back(predictor.PredictBlock(lr.module, f.blocks[b]).compute);
    }
  }
  return Wmape(truth, pred);
}

void Run() {
  std::vector<Program> corpus = ElementCorpus();
  PredictorOptions base;
  base.train_programs = 220;
  base.lstm.epochs = 14;
  base.synth.profile = CorpusProfile(corpus);

  Header("Ablation: vocabulary compaction (paper SS6)");
  std::printf("training with compacted vocabulary...\n");
  InstructionPredictor compact(base);
  compact.Train();
  PredictorOptions raw_opts = base;
  raw_opts.abstraction = AbstractionMode::kRaw;
  std::printf("training with raw operands (ablation)...\n");
  InstructionPredictor raw(raw_opts);
  raw.Train();

  std::printf("\n  %-22s %12s %12s %14s\n", "variant", "vocab size", "train WMAPE",
              "held-out WMAPE");
  std::printf("  %-22s %12d %11.1f%% %13.1f%%\n", "compacted (Clara)", compact.vocab().size(),
              compact.model().train_wmape() * 100, HeldOutWmape(compact) * 100);
  std::printf("  %-22s %12d %11.1f%% %13.1f%%\n", "raw operands", raw.vocab().size(),
              raw.model().train_wmape() * 100, HeldOutWmape(raw) * 100);
  Note("");
  Note("paper: \"our prior experience of applying LSTM without vocabulary");
  Note("compaction shows much lower performance\" — unseen operand spellings all");
  Note("collapse to <unk> at inference time.");
}

}  // namespace
}  // namespace bench
}  // namespace clara

int main(int argc, char** argv) {
  clara::bench::InitBenchThreads(argc, argv);
  clara::bench::Run();
  return 0;
}
