// Figure 14: NF colocation analysis.
// (a) top-1/2/3 ranking accuracy of the pairwise ranker on synthesized NF
//     groups, one model per ranking objective.
// (b)/(c) throughput degradation and latency increase for the six pairings
//     of the four complex NFs, ordered by Clara's ranking.
#include <algorithm>

#include "bench/bench_util.h"
#include "src/core/colocation.h"
#include "src/ml/metrics.h"

namespace clara {
namespace bench {
namespace {

void RankingAccuracy(const PerfModel& model, const SynthProfile& profile) {
  Header("Figure 14a: colocation ranking accuracy by training objective");
  std::printf("  %-10s %8s %8s %8s\n", "objective", "top-1", "top-2", "top-3");
  for (RankObjective obj :
       {RankObjective::kTotalThroughput, RankObjective::kAverageThroughput,
        RankObjective::kTotalLatency, RankObjective::kAverageLatency}) {
    ColocationOptions opts;
    opts.objective = obj;
    opts.train_nfs = 40;
    opts.train_groups = 120;
    opts.synth.profile = profile;
    ColocationRanker ranker(opts);
    ranker.Train(model, WorkloadSpec::SmallFlows());

    // Held-out synthesized candidate groups.
    SynthOptions hopts;
    hopts.profile = profile;
    std::vector<Program> programs = SynthesizeCorpus(24, hopts, 777 + static_cast<int>(obj));
    std::vector<NfDemand> demands;
    WorkloadSpec w = WorkloadSpec::SmallFlows();
    for (auto& prog : programs) {
      NfInstance nf(std::move(prog));
      if (!nf.ok()) {
        continue;
      }
      NicProgram nic = CompileToNic(nf.module());
      Trace t = GenerateTrace(w, 500);
      for (auto& pkt : t.packets) {
        nf.Process(pkt);
      }
      demands.push_back(BuildDemand(nf.module(), nic, nf.profile(), w, model.config()));
    }
    Rng rng(4096);
    std::vector<std::vector<double>> truth;
    std::vector<std::vector<double>> pred;
    for (int g = 0; g < 60; ++g) {
      size_t anchor = rng.NextBounded(demands.size());
      std::vector<double> ts;
      std::vector<double> ps;
      for (int i = 0; i < 5; ++i) {
        size_t other = rng.NextBounded(demands.size());
        ts.push_back(MeasurePair(model, demands[anchor], demands[other]).Friendliness(obj));
        ps.push_back(ranker.ScorePair(demands[anchor], demands[other]));
      }
      truth.push_back(std::move(ts));
      pred.push_back(std::move(ps));
    }
    std::printf("  %-10s %7.0f%% %7.0f%% %7.0f%%\n", RankObjectiveName(obj),
                TopKAccuracy(truth, pred, 1) * 100, TopKAccuracy(truth, pred, 2) * 100,
                TopKAccuracy(truth, pred, 3) * 100);
  }
  Note("paper: total-throughput objective is best; 70+% top-1, 85+% top-3.");
}

void RealPairs(const PerfModel& model, const SynthProfile& profile) {
  // NF1: Mazu-NAT, NF2: DNSProxy, NF3: UDPCount, NF4: Webgen (paper naming).
  const char* names[] = {"mazunat", "dnsproxy", "udpcount", "webgen"};
  const char* labels[] = {"NF1", "NF2", "NF3", "NF4"};
  std::vector<NfDemand> demands;
  for (const char* n : names) {
    ProfiledNf pr = ProfileNf(MakeElementByName(n), WorkloadSpec::SmallFlows()).OrDie();
    demands.push_back(pr.Demand(model.config()));
  }
  ColocationOptions opts;
  opts.train_nfs = 40;
  opts.train_groups = 120;
  opts.synth.profile = profile;
  ColocationRanker ranker(opts);
  ranker.Train(model, WorkloadSpec::SmallFlows());

  struct PairRow {
    std::string label;
    double score;
    PairOutcome outcome;
  };
  std::vector<PairRow> rows;
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      PairRow row;
      row.label = std::string(labels[a]) + "+" + labels[b];
      row.score = ranker.ScorePair(demands[a], demands[b]);
      row.outcome = MeasurePair(model, demands[a], demands[b]);
      rows.push_back(std::move(row));
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const PairRow& x, const PairRow& y) { return x.score > y.score; });

  Header("Figure 14b/c: colocation outcomes for the six real-NF pairs");
  std::printf("  rank %-10s %10s %16s %18s\n", "pair", "score", "norm. tput",
              "latency a/b (us)");
  double best = 0;
  double worst = 1e300;
  std::vector<double> true_friendliness;
  std::vector<double> scores;
  for (size_t i = 0; i < rows.size(); ++i) {
    double fr = rows[i].outcome.Friendliness(RankObjective::kTotalThroughput);
    best = std::max(best, fr);
    worst = std::min(worst, fr);
    true_friendliness.push_back(fr);
    scores.push_back(rows[i].score);
    std::printf("  %4zu %-10s %10.3f %15.1f%% %9.2f /%7.2f\n", i + 1, rows[i].label.c_str(),
                rows[i].score, fr * 100, rows[i].outcome.lat_a_coloc,
                rows[i].outcome.lat_b_coloc);
  }
  std::printf("\n  throughput degradation spread across strategies: %.1f%%"
              " (paper: up to 15%%)\n",
              (best - worst) * 100);
  // Rank correlation between Clara's scores and measured friendliness.
  int concordant = 0;
  int total = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = i + 1; j < rows.size(); ++j) {
      ++total;
      if ((scores[i] - scores[j]) * (true_friendliness[i] - true_friendliness[j]) >= 0) {
        ++concordant;
      }
    }
  }
  std::printf("  pairwise rank concordance: %d/%d\n", concordant, total);
}

}  // namespace
}  // namespace bench
}  // namespace clara

int main(int argc, char** argv) {
  clara::bench::InitBenchThreads(argc, argv);
  clara::PerfModel model;
  std::vector<clara::Program> corpus = clara::bench::ElementCorpus();
  clara::SynthProfile profile = clara::bench::CorpusProfile(corpus);
  clara::bench::RankingAccuracy(model, profile);
  clara::bench::RealPairs(model, profile);
  return 0;
}
