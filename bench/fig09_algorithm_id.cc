// Figure 9 + Figure 10a: algorithm-identification precision/recall of
// Clara's SPE+SVM vs AutoML, kNN, DNN, DT, GBDT on the identical feature
// dataset, and the 2-D PCA separation of the feature space.
#include <cmath>

#include "bench/bench_util.h"
#include "src/core/algo_id.h"
#include "src/lang/lower.h"
#include "src/ml/automl.h"
#include "src/ml/ensemble.h"
#include "src/ml/knn.h"
#include "src/ml/metrics.h"
#include "src/ml/mlp.h"
#include "src/ml/pca.h"
#include "src/ml/tree.h"

namespace clara {
namespace bench {
namespace {

void Run() {
  std::printf("building the algorithm corpus and mining SPE features...\n");
  AlgorithmIdentifier clara_id;
  clara_id.Train(BuildAlgorithmCorpus(60, 2024));
  std::printf("  %zu features mined (SPE n-grams + manual features)\n",
              clara_id.feature_names().size());

  // Held-out evaluation set (fresh seeds) under the same feature extractor.
  auto held_out = BuildAlgorithmCorpus(25, 999);
  TabularDataset test;
  for (const auto& lp : held_out) {
    Program copy = CloneProgram(lp.program);
    LowerResult lr = LowerProgram(copy);
    test.x.push_back(clara_id.ExtractFeatures(lr.module));
    test.y.push_back(static_cast<int>(lp.label));
  }
  const TabularDataset& train = clara_id.dataset();

  auto evaluate = [&](Classifier& model, const std::string& name) {
    std::vector<int> truth;
    std::vector<int> pred;
    for (size_t i = 0; i < test.size(); ++i) {
      truth.push_back(static_cast<int>(test.y[i]));
      pred.push_back(model.Predict(test.x[i]));
    }
    auto pr = MultiClassPrecisionRecall(truth, pred, static_cast<int>(AccelClass::kNone));
    std::printf("  %-10s %9.1f%% %9.1f%%\n", name.c_str(), pr.precision * 100,
                pr.recall * 100);
  };

  Header("Figure 9: algorithm identification precision / recall");
  std::printf("  %-10s %10s %10s\n", "Model", "Precision", "Recall");
  {
    // Clara = the trained SVM: evaluate via predictions on the same features.
    std::vector<int> truth;
    std::vector<int> pred;
    for (const auto& lp : held_out) {
      Program copy = CloneProgram(lp.program);
      LowerResult lr = LowerProgram(copy);
      truth.push_back(static_cast<int>(lp.label));
      pred.push_back(static_cast<int>(clara_id.Classify(lr.module)));
    }
    auto pr = MultiClassPrecisionRecall(truth, pred, static_cast<int>(AccelClass::kNone));
    std::printf("  %-10s %9.1f%% %9.1f%%   (paper: 96.6%% / 83.3%%)\n", "Clara",
                pr.precision * 100, pr.recall * 100);
  }
  {
    AutoMlReport report;
    auto automl = AutoMlClassification(train, kNumAccelClasses, &report, 4);
    std::printf("  [AutoML chose %s]\n", report.chosen.c_str());
    evaluate(*automl, "AutoML");
  }
  {
    KnnClassifier knn(KnnOptions{3});
    knn.Fit(train, kNumAccelClasses);
    evaluate(knn, "kNN");
  }
  {
    MlpClassifier dnn;
    dnn.Fit(train, kNumAccelClasses);
    evaluate(dnn, "DNN");
  }
  {
    TreeClassifier dt(TreeOptions{8, 2, 0});
    dt.Fit(train, kNumAccelClasses);
    evaluate(dt, "DT");
  }
  {
    GbdtClassifier gbdt;
    gbdt.Fit(train, kNumAccelClasses);
    evaluate(gbdt, "GBDT");
  }
  Note("");
  Note("paper: other models and AutoML are on par; accelerator algorithms have");
  Note("distinct features (bitwise density for CRC, pointer chasing for LPM).");

  // Figure 10a: PCA projection separation between classes.
  Header("Figure 10a: PCA of algorithm-identification features");
  PcaResult pca = ComputePca(train.x, 2);
  double centroid[kNumAccelClasses][2] = {};
  int counts[kNumAccelClasses] = {};
  for (size_t i = 0; i < train.size(); ++i) {
    FeatureVec p = pca.Project(train.x[i]);
    int c = static_cast<int>(train.y[i]);
    centroid[c][0] += p[0];
    centroid[c][1] += p[1];
    ++counts[c];
  }
  for (int c = 0; c < kNumAccelClasses; ++c) {
    if (counts[c] > 0) {
      centroid[c][0] /= counts[c];
      centroid[c][1] /= counts[c];
    }
    std::printf("  class %-5s centroid: (%8.3f, %8.3f)  n=%d\n",
                AccelClassName(static_cast<AccelClass>(c)), centroid[c][0], centroid[c][1],
                counts[c]);
  }
  // Separation statistic: mean inter-centroid distance vs mean in-class spread.
  double inter = 0;
  int pairs = 0;
  for (int a = 0; a < kNumAccelClasses; ++a) {
    for (int b = a + 1; b < kNumAccelClasses; ++b) {
      double dx = centroid[a][0] - centroid[b][0];
      double dy = centroid[a][1] - centroid[b][1];
      inter += std::sqrt(dx * dx + dy * dy);
      ++pairs;
    }
  }
  inter /= pairs;
  double intra = 0;
  for (size_t i = 0; i < train.size(); ++i) {
    FeatureVec p = pca.Project(train.x[i]);
    int c = static_cast<int>(train.y[i]);
    double dx = p[0] - centroid[c][0];
    double dy = p[1] - centroid[c][1];
    intra += std::sqrt(dx * dx + dy * dy);
  }
  intra /= static_cast<double>(train.size());
  std::printf("\n  inter-centroid distance / in-class spread: %.2f (>1 = separable)\n",
              inter / intra);
}

}  // namespace
}  // namespace bench
}  // namespace clara

int main(int argc, char** argv) {
  clara::bench::InitBenchThreads(argc, argv);
  clara::bench::Run();
  return 0;
}
