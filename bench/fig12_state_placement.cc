// Figure 12: NF state placement. Clara's ILP placement vs the naive
// all-EMEM port for the four complex NFs under the small-flow workload.
// The paper reports ~33% lower memory-access latency and ~89% higher
// throughput on average.
#include "bench/bench_util.h"
#include "src/core/placement.h"

namespace clara {
namespace bench {
namespace {

constexpr int kCores = 12;

void Run() {
  PerfModel model;
  NicConfig cfg = model.config();
  Header("Figure 12: state placement — Clara ILP vs naive all-EMEM (small flows)");
  std::printf("  %-10s %11s %11s %10s %10s   placement\n", "NF", "naive Mpps", "Clara Mpps",
              "naive us", "Clara us");
  double tput_gain = 0;
  double lat_gain = 0;
  int n = 0;
  for (const char* name : {"mazunat", "dnsproxy", "webgen", "udpcount"}) {
    ProfiledNf pr = ProfileNf(MakeElementByName(name), WorkloadSpec::SmallFlows()).OrDie();

    DemandOptions naive_opts;
    naive_opts.placement = NaivePlacement(pr.module());
    PerfPoint p_naive = model.Evaluate(pr.Demand(cfg, naive_opts), kCores);

    PlacementResult placed = PlaceState(pr.module(), pr.profile(), pr.workload, cfg);
    DemandOptions clara_opts;
    clara_opts.placement = placed.placement;
    PerfPoint p_clara = model.Evaluate(pr.Demand(cfg, clara_opts), kCores);

    std::string where;
    for (const auto& [var, region] : placed.placement) {
      if (region != MemRegion::kEmem) {
        where += var + "->" + MemRegionName(region) + " ";
      }
    }
    std::printf("  %-10s %11.2f %11.2f %10.2f %10.2f   %s\n", name,
                p_naive.throughput_mpps, p_clara.throughput_mpps, p_naive.latency_us,
                p_clara.latency_us, where.c_str());
    tput_gain += p_clara.throughput_mpps / p_naive.throughput_mpps - 1;
    lat_gain += 1 - p_clara.latency_us / p_naive.latency_us;
    ++n;
  }
  std::printf("\n  average: +%.0f%% throughput, -%.0f%% latency"
              " (paper: +89%% / -33%%)\n",
              tput_gain / n * 100, lat_gain / n * 100);
  Note("ILP solving finishes in milliseconds for these NF sizes (paper: seconds).");
}

}  // namespace
}  // namespace bench
}  // namespace clara

int main(int argc, char** argv) {
  clara::bench::InitBenchThreads(argc, argv);
  clara::bench::Run();
  return 0;
}
