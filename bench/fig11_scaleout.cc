// Figure 11: multicore scale-out analysis.
// (a) MAE (in cores) of Clara's GBDT vs AutoML/kNN/DNN on held-out programs.
// (b) suggested vs optimal core counts for the complex NFs.
// (c)-(f) throughput/latency-ratio curves vs cores for large/small flows,
//         with Clara's suggested operating points marked.
#include "bench/bench_util.h"
#include "src/core/scaleout.h"
#include "src/ml/automl.h"
#include "src/ml/knn.h"
#include "src/ml/metrics.h"
#include "src/ml/mlp.h"

namespace clara {
namespace bench {
namespace {

const char* kComplexNfs[] = {"mazunat", "dnsproxy", "webgen", "udpcount"};

void Run() {
  PerfModel model;
  std::vector<Program> corpus = ElementCorpus();
  SynthProfile profile = CorpusProfile(corpus);

  std::printf("training the scale-out cost model (schedule sweeps on the NIC)...\n");
  ScaleOutOptions opts;
  opts.train_programs = 120;
  opts.synth.profile = profile;
  ScaleOutAdvisor advisor(opts);
  std::vector<WorkloadSpec> workloads = {WorkloadSpec::LargeFlows(),
                                         WorkloadSpec::SmallFlows()};
  advisor.Train(model, workloads);

  // Held-out program/workload matrix with measured-optimal labels.
  SynthOptions hopts;
  hopts.profile = profile;
  std::vector<Program> held = SynthesizeCorpus(40, hopts, 8888);
  TabularDataset test;
  for (auto& prog : held) {
    NfInstance nf(std::move(prog));
    if (!nf.ok()) {
      continue;
    }
    NicProgram nic = CompileToNic(nf.module());
    for (const auto& w : workloads) {
      nf.ResetState();
      nf.ResetProfile();
      Trace t = GenerateTrace(w, 800);
      for (auto& pkt : t.packets) {
        nf.Process(pkt);
      }
      NfDemand d = BuildDemand(nf.module(), nic, nf.profile(), w, model.config());
      test.x.push_back(ScaleOutAdvisor::Features(d));
      test.y.push_back(model.OptimalCores(d));
    }
  }

  Header("Figure 11a: scale-out prediction MAE (cores)");
  const TabularDataset& train = advisor.dataset();
  auto mae_of = [&](Regressor& m) {
    std::vector<double> truth;
    std::vector<double> pred;
    for (size_t i = 0; i < test.size(); ++i) {
      truth.push_back(test.y[i]);
      pred.push_back(std::clamp(m.Predict(test.x[i]), 1.0, 60.0));
    }
    return MeanAbsoluteError(truth, pred);
  };
  {
    GbdtRegressor clara_gbdt;  // same family/options as the advisor
    clara_gbdt.Fit(train);
    std::printf("  %-8s %6.2f cores   (paper: lowest among baselines)\n", "Clara",
                mae_of(clara_gbdt));
    AutoMlReport report;
    auto automl = AutoMlRegression(train, &report, 3);
    std::printf("  %-8s %6.2f cores   [chose %s]\n", "AutoML", mae_of(*automl),
                report.chosen.c_str());
    KnnRegressor knn(KnnOptions{5});
    knn.Fit(train);
    std::printf("  %-8s %6.2f cores\n", "kNN", mae_of(knn));
    MlpOptions mo;
    mo.epochs = 150;
    MlpRegressor dnn(mo);
    dnn.Fit(train);
    std::printf("  %-8s %6.2f cores\n", "DNN", mae_of(dnn));
  }

  Header("Figure 11b: suggested vs optimal cores (complex NFs, small flows)");
  JsonRows rows("fig11_scaleout");
  std::printf("  %-10s %10s %10s %12s\n", "NF", "Clara", "optimal", "ratio@sugg");
  for (const char* name : kComplexNfs) {
    ProfiledNf pr = ProfileNf(MakeElementByName(name), WorkloadSpec::SmallFlows()).OrDie();
    NfDemand d = pr.Demand(model.config());
    int suggested = advisor.SuggestCores(d);
    int optimal = model.OptimalCores(d);
    double frac = model.Evaluate(d, suggested).RatioMppsPerUs() /
                  std::max(1e-12, model.Evaluate(d, optimal).RatioMppsPerUs());
    std::printf("  %-10s %10d %10d %11.1f%%\n", name, suggested, optimal, frac * 100);
    rows.Row()
        .Str("nf", name)
        .Num("suggested_cores", suggested)
        .Num("optimal_cores", optimal)
        .Num("ratio_at_suggested", frac);
  }
  Note("paper: suggested counts deviate 1-6% from exhaustive-search optima.");

  for (const auto& w : workloads) {
    Header("Figure 11c/d: throughput/latency ratio vs cores (" + w.name + ")");
    std::printf("  %-10s", "cores:");
    for (int n : {4, 8, 16, 24, 32, 40, 48, 56, 60}) {
      std::printf(" %7d", n);
    }
    std::printf("\n");
    for (const char* name : kComplexNfs) {
      ProfiledNf pr = ProfileNf(MakeElementByName(name), w).OrDie();
      NfDemand d = pr.Demand(model.config());
      std::printf("  %-10s", name);
      for (int n : {4, 8, 16, 24, 32, 40, 48, 56, 60}) {
        std::printf(" %7.2f", model.Evaluate(d, n).RatioMppsPerUs());
      }
      std::printf("   <- Clara suggests %d\n", advisor.SuggestCores(d));
    }
  }

  Header("Figure 11e/f: Mazu-NAT and WebGen detail (large flows)");
  for (const char* name : {"mazunat", "webgen"}) {
    ProfiledNf pr = ProfileNf(MakeElementByName(name), WorkloadSpec::LargeFlows()).OrDie();
    NfDemand d = pr.Demand(model.config());
    int suggested = advisor.SuggestCores(d);
    std::printf("\n  %s (Clara suggests %d cores)\n", name, suggested);
    std::printf("  %6s %12s %12s\n", "cores", "tput(Mpps)", "latency(us)");
    double peak = 0;
    for (int n = 4; n <= 60; n += 8) {
      PerfPoint p = model.Evaluate(d, n);
      peak = std::max(peak, p.throughput_mpps);
      std::printf("  %6d %12.2f %12.2f %s%s\n", n, p.throughput_mpps, p.latency_us,
                  Bar(p.throughput_mpps, peak * 1.3, 20).c_str(),
                  std::abs(n - suggested) <= 4 ? "  <- suggested region" : "");
    }
  }
  {
    // The headline: optimal core counts vs naively using all 60 cores.
    double best_gain = 0;
    for (const char* name : kComplexNfs) {
      ProfiledNf pr = ProfileNf(MakeElementByName(name), WorkloadSpec::SmallFlows()).OrDie();
      NfDemand d = pr.Demand(model.config());
      int opt = model.OptimalCores(d);
      double r_opt = model.Evaluate(d, opt).RatioMppsPerUs();
      double r_all = model.Evaluate(d, 60).RatioMppsPerUs();
      best_gain = std::max(best_gain, r_opt / r_all - 1);
    }
    std::printf("\n  best ratio gain of optimal cores vs all-60-cores: %.1f%%"
                " (paper: up to 71.1%%)\n",
                best_gain * 100);
  }
}

}  // namespace
}  // namespace bench
}  // namespace clara

int main(int argc, char** argv) {
  clara::bench::InitBenchThreads(argc, argv);
  clara::bench::Run();
  return 0;
}
