// Figure 13: memory access coalescing. Applying Clara's variable-packing
// plans to four scalar-heavy elements; metrics are the number of cores
// needed to saturate bandwidth and the per-packet latency. The paper
// reports 42-68% lower latency and 25-55% fewer cores.
#include "bench/bench_util.h"
#include "src/core/coalescing.h"

namespace clara {
namespace bench {
namespace {

void Run() {
  PerfModel model;
  NicConfig cfg = model.config();
  Header("Figure 13: access coalescing — cores to saturate + latency");
  std::printf("  %-12s %11s %11s %10s %10s   packs\n", "NF", "naive cores", "Clara cores",
              "naive us", "Clara us");
  for (const char* name : {"aggcounter", "timefilter", "webtcp", "tcpgen"}) {
    ProfiledNf pr = ProfileNf(MakeElementByName(name), WorkloadSpec::SmallFlows()).OrDie();
    NfDemand naive = pr.Demand(cfg);

    CoalescingPlan plan = SuggestCoalescing(pr.module(), pr.profile());
    DemandOptions opts;
    opts.coalescing = plan.effects;
    NfDemand packed = pr.Demand(cfg, opts);

    int cores_naive = model.CoresToSaturate(naive);
    int cores_clara = model.CoresToSaturate(packed);
    double lat_naive = model.Evaluate(naive, 12).latency_us;
    double lat_clara = model.Evaluate(packed, 12).latency_us;
    std::string packs;
    for (const auto& pack : plan.packs) {
      packs += "{";
      for (size_t i = 0; i < pack.vars.size(); ++i) {
        packs += (i > 0 ? "," : "") + pack.vars[i];
      }
      packs += "|" + std::to_string(pack.pack_bytes) + "B} ";
    }
    std::printf("  %-12s %11d %11d %10.2f %10.2f   %s\n", name, cores_naive, cores_clara,
                lat_naive, lat_clara, packs.c_str());
  }
  Note("");
  Note("paper: 42-68% latency reduction, 25-55% fewer cores; e.g. tcpgen packs");
  Note("the port pair and the ACK-path variables while keeping good_pkt/bad_pkt apart.");
}

}  // namespace
}  // namespace bench
}  // namespace clara

int main(int argc, char** argv) {
  clara::bench::InitBenchThreads(argc, argv);
  clara::bench::Run();
  return 0;
}
