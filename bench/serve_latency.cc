// Serving-path latency: cold in-process training vs warm artifact loading,
// and serve-cache hits vs misses.
//
// The train-once/serve-many split only earns its keep if (a) loading a
// bundle is much cheaper than retraining and (b) a cache hit is much cheaper
// than a full analysis. This bench measures both and *enforces* them: it
// exits nonzero if the warm path is not faster, so the tier-1 ctest run
// gates the speedup directly.
//
// JSON rows (BENCH_serve_latency.json) report the speedups capped at 5x:
// the raw ratios are enormous (seconds vs microseconds) and noisy, while
// "at least 5x" is stable across machines, which keeps tools/bench_diff.py
// meaningful as a regression gate.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/analyzer.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"
#include "src/serve/artifact.h"
#include "src/serve/proto.h"
#include "src/serve/server.h"

namespace clara {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

AnalyzerOptions SmallOptions() {
  AnalyzerOptions options;
  options.predictor.train_programs = 24;
  options.predictor.lstm.epochs = 2;
  options.scaleout.train_programs = 16;
  options.colocation.train_nfs = 8;
  options.colocation.train_groups = 16;
  options.algo_corpus_per_class = 6;
  return options;
}

serve::InsightRequest Request(uint64_t id, const char* element) {
  serve::InsightRequest req;
  req.id = id;
  req.element = element;
  req.workload = WorkloadSpec::SmallFlows();
  return req;
}

int Run() {
  // Cold path: full in-process training (the small corpus used by CI).
  Clock::time_point t0 = Clock::now();
  ClaraAnalyzer analyzer(SmallOptions());
  {
    std::vector<Program> corpus;
    for (const auto& info : ElementRegistry()) {
      corpus.push_back(info.make());
    }
    std::vector<const Program*> ptrs;
    for (const auto& p : corpus) {
      ptrs.push_back(&p);
    }
    analyzer.Train(ptrs);
  }
  double cold_train_ms = MsSince(t0);

  // Warm path: deserialize the artifact and build an analyzer around it.
  std::string artifact = serve::SerializeBundle(analyzer.ExportTrained());
  t0 = Clock::now();
  TrainedBundle bundle;
  std::string error;
  if (!serve::DeserializeBundle(artifact, &bundle, &error)) {
    std::fprintf(stderr, "serve_latency: %s\n", error.c_str());
    return 1;
  }
  serve::ServeOptions opts;
  opts.profile_packets = 400;
  serve::ServeEngine engine(std::move(bundle), opts);
  double warm_load_ms = MsSince(t0);

  // Cache miss vs hit: first request analyzes, repeats replay cached bytes.
  t0 = Clock::now();
  serve::InsightResponse miss = engine.Handle(Request(1, "aggcounter"));
  double miss_ms = MsSince(t0);
  if (miss.error != serve::ErrorCode::kOk) {
    std::fprintf(stderr, "serve_latency: miss failed: %s\n", miss.error_message.c_str());
    return 1;
  }
  // Cache hits are single-digit microseconds, so a single timed loop is
  // dominated by scheduler noise. Measure traced and untraced hits in
  // interleaved rounds (so machine-load drift hits both equally) and take
  // the per-mode minimum: the ratio of two best-of runs is far more stable
  // than the ratio of two single runs.
  constexpr int kHits = 200;
  constexpr int kRounds = 5;
  uint64_t next_id = 2;
  obs::TraceSink trace_sink;
  auto hit_round_ms = [&](bool traced) -> double {
    // Tracing on means the full telemetry plane: global trace sink attached,
    // per-request trace ids minted, per-stage spans and breakdowns recorded.
    obs::SetGlobalTrace(traced ? &trace_sink : nullptr);
    obs::SetEnabled(traced);
    Clock::time_point start = Clock::now();
    for (int i = 0; i < kHits; ++i) {
      serve::InsightRequest req = Request(next_id, "aggcounter");
      if (traced) {
        req.trace_id = next_id;
      }
      ++next_id;
      serve::InsightResponse hit = engine.Handle(std::move(req));
      if (hit.error != serve::ErrorCode::kOk) {
        std::fprintf(stderr, "serve_latency: hit failed: %s\n",
                     hit.error_message.c_str());
        return -1;
      }
    }
    double ms = MsSince(start) / kHits;
    obs::SetEnabled(false);
    obs::SetGlobalTrace(nullptr);
    return ms;
  };
  double hit_ms = -1;
  double traced_hit_ms = -1;
  for (int round = 0; round < kRounds + 1; ++round) {
    double plain = hit_round_ms(/*traced=*/false);
    double traced = hit_round_ms(/*traced=*/true);
    if (plain < 0 || traced < 0) {
      return 1;
    }
    if (round == 0) {
      continue;  // warmup round: caches, allocator, branch predictors
    }
    if (hit_ms < 0 || plain < hit_ms) {
      hit_ms = plain;
    }
    if (traced_hit_ms < 0 || traced < traced_hit_ms) {
      traced_hit_ms = traced;
    }
  }

  double train_speedup = warm_load_ms > 0 ? cold_train_ms / warm_load_ms : 0;
  double cache_speedup = hit_ms > 0 ? miss_ms / hit_ms : 0;
  double tracing_ratio = hit_ms > 0 ? traced_hit_ms / hit_ms : 1.0;
  double tracing_ratio_clamped = std::min(std::max(tracing_ratio, 1.0), 1.5);
  std::printf("%-28s %12s %12s %10s\n", "phase", "cold/miss ms", "warm/hit ms", "speedup");
  std::printf("%-28s %12.2f %12.2f %9.1fx\n", "train vs artifact load", cold_train_ms,
              warm_load_ms, train_speedup);
  std::printf("%-28s %12.3f %12.3f %9.1fx\n", "analysis vs cache hit", miss_ms, hit_ms,
              cache_speedup);
  std::printf("%-28s %12.3f %12.3f %9.2fx\n", "cache hit with tracing on", hit_ms,
              traced_hit_ms, tracing_ratio);

  JsonRows json("serve_latency");
  json.Row()
      .Str("phase", "cold_train_vs_warm_load")
      .Num("speedup_capped", std::min(train_speedup, 5.0));
  json.Row()
      .Str("phase", "cache_hit_vs_miss")
      .Num("speedup_capped", std::min(cache_speedup, 5.0));
  json.Row()
      .Str("phase", "tracing_on_vs_off")
      .Num("tracing_overhead_latency_ratio", tracing_ratio_clamped);

  // The acceptance gate: warm serving must beat cold training, cache hits
  // must beat full analysis, and full tracing must not blow up the warm path.
  if (train_speedup <= 1.0 || cache_speedup <= 1.0) {
    std::fprintf(stderr, "serve_latency: warm path is not faster (train %.1fx, cache %.1fx)\n",
                 train_speedup, cache_speedup);
    return 1;
  }
  if (tracing_ratio > 1.5) {
    std::fprintf(stderr, "serve_latency: tracing overhead too high (%.2fx warm hit latency)\n",
                 tracing_ratio);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace clara

int main(int argc, char** argv) {
  clara::bench::InitBenchThreads(argc, argv);
  return clara::bench::Run();
}
