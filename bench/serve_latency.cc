// Serving-path latency: cold in-process training vs warm artifact loading,
// and serve-cache hits vs misses.
//
// The train-once/serve-many split only earns its keep if (a) loading a
// bundle is much cheaper than retraining and (b) a cache hit is much cheaper
// than a full analysis. This bench measures both and *enforces* them: it
// exits nonzero if the warm path is not faster, so the tier-1 ctest run
// gates the speedup directly.
//
// JSON rows (BENCH_serve_latency.json) report the speedups capped at 5x:
// the raw ratios are enormous (seconds vs microseconds) and noisy, while
// "at least 5x" is stable across machines, which keeps tools/bench_diff.py
// meaningful as a regression gate.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/analyzer.h"
#include "src/serve/artifact.h"
#include "src/serve/proto.h"
#include "src/serve/server.h"

namespace clara {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

AnalyzerOptions SmallOptions() {
  AnalyzerOptions options;
  options.predictor.train_programs = 24;
  options.predictor.lstm.epochs = 2;
  options.scaleout.train_programs = 16;
  options.colocation.train_nfs = 8;
  options.colocation.train_groups = 16;
  options.algo_corpus_per_class = 6;
  return options;
}

serve::InsightRequest Request(uint64_t id, const char* element) {
  serve::InsightRequest req;
  req.id = id;
  req.element = element;
  req.workload = WorkloadSpec::SmallFlows();
  return req;
}

int Run() {
  // Cold path: full in-process training (the small corpus used by CI).
  Clock::time_point t0 = Clock::now();
  ClaraAnalyzer analyzer(SmallOptions());
  {
    std::vector<Program> corpus;
    for (const auto& info : ElementRegistry()) {
      corpus.push_back(info.make());
    }
    std::vector<const Program*> ptrs;
    for (const auto& p : corpus) {
      ptrs.push_back(&p);
    }
    analyzer.Train(ptrs);
  }
  double cold_train_ms = MsSince(t0);

  // Warm path: deserialize the artifact and build an analyzer around it.
  std::string artifact = serve::SerializeBundle(analyzer.ExportTrained());
  t0 = Clock::now();
  TrainedBundle bundle;
  std::string error;
  if (!serve::DeserializeBundle(artifact, &bundle, &error)) {
    std::fprintf(stderr, "serve_latency: %s\n", error.c_str());
    return 1;
  }
  serve::ServeOptions opts;
  opts.profile_packets = 400;
  serve::ServeEngine engine(std::move(bundle), opts);
  double warm_load_ms = MsSince(t0);

  // Cache miss vs hit: first request analyzes, repeats replay cached bytes.
  t0 = Clock::now();
  serve::InsightResponse miss = engine.Handle(Request(1, "aggcounter"));
  double miss_ms = MsSince(t0);
  if (miss.error != serve::ErrorCode::kOk) {
    std::fprintf(stderr, "serve_latency: miss failed: %s\n", miss.error_message.c_str());
    return 1;
  }
  constexpr int kHits = 50;
  t0 = Clock::now();
  for (int i = 0; i < kHits; ++i) {
    serve::InsightResponse hit = engine.Handle(Request(2 + i, "aggcounter"));
    if (hit.error != serve::ErrorCode::kOk) {
      std::fprintf(stderr, "serve_latency: hit failed: %s\n", hit.error_message.c_str());
      return 1;
    }
  }
  double hit_ms = MsSince(t0) / kHits;

  double train_speedup = warm_load_ms > 0 ? cold_train_ms / warm_load_ms : 0;
  double cache_speedup = hit_ms > 0 ? miss_ms / hit_ms : 0;
  std::printf("%-28s %12s %12s %10s\n", "phase", "cold/miss ms", "warm/hit ms", "speedup");
  std::printf("%-28s %12.2f %12.2f %9.1fx\n", "train vs artifact load", cold_train_ms,
              warm_load_ms, train_speedup);
  std::printf("%-28s %12.3f %12.3f %9.1fx\n", "analysis vs cache hit", miss_ms, hit_ms,
              cache_speedup);

  JsonRows json("serve_latency");
  json.Row()
      .Str("phase", "cold_train_vs_warm_load")
      .Num("speedup_capped", std::min(train_speedup, 5.0));
  json.Row()
      .Str("phase", "cache_hit_vs_miss")
      .Num("speedup_capped", std::min(cache_speedup, 5.0));

  // The acceptance gate: warm serving must beat cold training, cache hits
  // must beat full analysis.
  if (train_speedup <= 1.0 || cache_speedup <= 1.0) {
    std::fprintf(stderr, "serve_latency: warm path is not faster (train %.1fx, cache %.1fx)\n",
                 train_speedup, cache_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace clara

int main(int argc, char** argv) {
  clara::bench::InitBenchThreads(argc, argv);
  return clara::bench::Run();
}
