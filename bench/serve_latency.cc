// Serving-path latency: cold in-process training vs warm artifact loading,
// and serve-cache hits vs misses.
//
// The train-once/serve-many split only earns its keep if (a) loading a
// bundle is much cheaper than retraining and (b) a cache hit is much cheaper
// than a full analysis. This bench measures both and *enforces* them: it
// exits nonzero if the warm path is not faster, so the tier-1 ctest run
// gates the speedup directly.
//
// JSON rows (BENCH_serve_latency.json) report the speedups capped at 5x:
// the raw ratios are enormous (seconds vs microseconds) and noisy, while
// "at least 5x" is stable across machines, which keeps tools/bench_diff.py
// meaningful as a regression gate.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/analyzer.h"
#include "src/ml/kernels_f32.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"
#include "src/serve/artifact.h"
#include "src/serve/proto.h"
#include "src/serve/server.h"

namespace clara {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

AnalyzerOptions SmallOptions() {
  AnalyzerOptions options;
  options.predictor.train_programs = 24;
  options.predictor.lstm.epochs = 2;
  options.scaleout.train_programs = 16;
  options.colocation.train_nfs = 8;
  options.colocation.train_groups = 16;
  options.algo_corpus_per_class = 6;
  return options;
}

serve::InsightRequest Request(uint64_t id, const char* element) {
  serve::InsightRequest req;
  req.id = id;
  req.element = element;
  req.workload = WorkloadSpec::SmallFlows();
  return req;
}

int Run() {
  // Cold path: full in-process training (the small corpus used by CI).
  Clock::time_point t0 = Clock::now();
  ClaraAnalyzer analyzer(SmallOptions());
  {
    std::vector<Program> corpus;
    for (const auto& info : ElementRegistry()) {
      corpus.push_back(info.make());
    }
    std::vector<const Program*> ptrs;
    for (const auto& p : corpus) {
      ptrs.push_back(&p);
    }
    analyzer.Train(ptrs);
  }
  double cold_train_ms = MsSince(t0);

  // Warm path: deserialize the artifact and build an analyzer around it.
  std::string artifact = serve::SerializeBundle(analyzer.ExportTrained());
  t0 = Clock::now();
  TrainedBundle bundle;
  std::string error;
  if (!serve::DeserializeBundle(artifact, &bundle, &error)) {
    std::fprintf(stderr, "serve_latency: %s\n", error.c_str());
    return 1;
  }
  serve::ServeOptions opts;
  opts.profile_packets = 400;
  serve::ServeEngine engine(std::move(bundle), opts);
  double warm_load_ms = MsSince(t0);

  // Cache miss vs hit: first request analyzes, repeats replay cached bytes.
  t0 = Clock::now();
  serve::InsightResponse miss = engine.Handle(Request(1, "aggcounter"));
  double miss_ms = MsSince(t0);
  if (miss.error != serve::ErrorCode::kOk) {
    std::fprintf(stderr, "serve_latency: miss failed: %s\n", miss.error_message.c_str());
    return 1;
  }
  // Cache hits are single-digit microseconds, so a single timed loop is
  // dominated by scheduler noise. Measure traced and untraced hits in
  // interleaved rounds (so machine-load drift hits both equally) and take
  // the per-mode minimum: the ratio of two best-of runs is far more stable
  // than the ratio of two single runs.
  constexpr int kHits = 200;
  constexpr int kRounds = 5;
  uint64_t next_id = 2;
  obs::TraceSink trace_sink;
  auto hit_round_ms = [&](bool traced) -> double {
    // Tracing on means the full telemetry plane: global trace sink attached,
    // per-request trace ids minted, per-stage spans and breakdowns recorded.
    obs::SetGlobalTrace(traced ? &trace_sink : nullptr);
    obs::SetEnabled(traced);
    Clock::time_point start = Clock::now();
    for (int i = 0; i < kHits; ++i) {
      serve::InsightRequest req = Request(next_id, "aggcounter");
      if (traced) {
        req.trace_id = next_id;
      }
      ++next_id;
      serve::InsightResponse hit = engine.Handle(std::move(req));
      if (hit.error != serve::ErrorCode::kOk) {
        std::fprintf(stderr, "serve_latency: hit failed: %s\n",
                     hit.error_message.c_str());
        return -1;
      }
    }
    double ms = MsSince(start) / kHits;
    obs::SetEnabled(false);
    obs::SetGlobalTrace(nullptr);
    return ms;
  };
  double hit_ms = -1;
  double traced_hit_ms = -1;
  for (int round = 0; round < kRounds + 1; ++round) {
    double plain = hit_round_ms(/*traced=*/false);
    double traced = hit_round_ms(/*traced=*/true);
    if (plain < 0 || traced < 0) {
      return 1;
    }
    if (round == 0) {
      continue;  // warmup round: caches, allocator, branch predictors
    }
    if (hit_ms < 0 || plain < hit_ms) {
      hit_ms = plain;
    }
    if (traced_hit_ms < 0 || traced < traced_hit_ms) {
      traced_hit_ms = traced;
    }
  }

  // ---- int8 backend on the miss path ----
  //
  // A cache miss pays profiling + per-block LSTM inference + analysis; the
  // int8 engine accelerates the inference share. Misses are forced by giving
  // every request a fresh workload seed (a different workload hash misses
  // the cache), interleaved between the two engines so machine-load drift
  // hits both equally; per-engine best-of-round totals make the ratio
  // stable. Gate: int8 must not be slower, and its training-set WMAPE must
  // stay within 1% relative of the f64 path's.
  // Dedicated engines for the comparison, with a lighter profiling pass
  // (100 packets) so the inference share of a miss — the part the backend
  // changes — dominates the ratio instead of trace interpretation.
  TrainedBundle bundle64_cmp, bundle8_cmp;
  if (!serve::DeserializeBundle(artifact, &bundle64_cmp, &error) ||
      !serve::DeserializeBundle(artifact, &bundle8_cmp, &error)) {
    std::fprintf(stderr, "serve_latency: %s\n", error.c_str());
    return 1;
  }
  serve::ServeOptions opts_cmp = opts;
  opts_cmp.profile_packets = 100;
  serve::ServeEngine engine64_cmp(std::move(bundle64_cmp), opts_cmp);
  serve::ServeOptions opts8 = opts_cmp;
  opts8.infer_backend = InferBackend::kInt8;
  serve::ServeEngine engine8(std::move(bundle8_cmp), opts8);

  const char* kMissElements[] = {"aggcounter", "heavyhitter", "iplookup", "cmsketch"};
  uint64_t miss_seed = 1000;
  auto miss_round_ms = [&](serve::ServeEngine& eng) -> double {
    Clock::time_point start = Clock::now();
    for (const char* element : kMissElements) {
      serve::InsightRequest req = Request(next_id++, element);
      req.workload.seed = miss_seed++;
      serve::InsightResponse resp = eng.Handle(std::move(req));
      if (resp.error != serve::ErrorCode::kOk) {
        std::fprintf(stderr, "serve_latency: int8-compare miss failed: %s\n",
                     resp.error_message.c_str());
        return -1;
      }
    }
    return MsSince(start);
  };
  double miss64_ms = -1, miss8_ms = -1;
  for (int round = 0; round < kRounds + 1; ++round) {
    double m64 = miss_round_ms(engine64_cmp);
    double m8 = miss_round_ms(engine8);
    if (m64 < 0 || m8 < 0) {
      return 1;
    }
    if (round == 0) {
      continue;  // warmup
    }
    if (miss64_ms < 0 || m64 < miss64_ms) {
      miss64_ms = m64;
    }
    if (miss8_ms < 0 || m8 < miss8_ms) {
      miss8_ms = m8;
    }
  }
  double int8_miss_speedup = miss8_ms > 0 ? miss64_ms / miss8_ms : 0;

  // WMAPE parity on the cold-trained predictor's own dataset (the loaded
  // bundle does not persist it).
  const SeqDataset& train_set = analyzer.predictor().dataset();
  auto wmape = [&](const LstmRegressor& model) {
    double abs_err = 0, abs_y = 0;
    for (const auto& ex : train_set.examples) {
      abs_err += std::abs(model.Predict(ex.tokens) - ex.target);
      abs_y += std::abs(ex.target);
    }
    return abs_y > 0 ? abs_err / abs_y : 0;
  };
  LstmRegressor lstm8 = analyzer.predictor().model();
  lstm8.SetInferBackend(InferBackend::kInt8);
  double wmape64 = wmape(analyzer.predictor().model());
  double wmape8 = wmape(lstm8);

  // ---- hot reload under load ----
  //
  // Swapping the model snapshot mid-traffic must not disturb the serving hot
  // path: one Reload() fires from another thread halfway through a round of
  // cache-hit requests, and the round's p99 must stay within 5% of an
  // undisturbed round. 400 requests per round keeps the single post-reload
  // cache repopulation (a full analysis, by design — the new model must not
  // serve the old model's cached bytes) in the top 1%, outside p99; what the
  // gate sees is pure snapshot-pointer contention.
  constexpr int kReloadRoundHits = 400;
  auto reload_round = [&](bool with_reload, std::vector<double>* lat_us) -> bool {
    std::atomic<bool> go{false};
    std::thread reloader;
    TrainedBundle fresh;
    if (with_reload) {
      if (!serve::DeserializeBundle(artifact, &fresh, &error)) {
        std::fprintf(stderr, "serve_latency: %s\n", error.c_str());
        return false;
      }
      reloader = std::thread([&] {
        while (!go.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        std::string rerr;
        if (!engine.Reload(std::move(fresh), &rerr)) {
          std::fprintf(stderr, "serve_latency: reload under load failed: %s\n",
                       rerr.c_str());
        }
      });
    }
    bool ok = true;
    for (int i = 0; i < kReloadRoundHits; ++i) {
      if (i == kReloadRoundHits / 2) {
        go.store(true, std::memory_order_release);
      }
      Clock::time_point start = Clock::now();
      serve::InsightResponse hit = engine.Handle(Request(next_id++, "aggcounter"));
      double us = std::chrono::duration<double, std::micro>(Clock::now() - start).count();
      if (lat_us != nullptr) {
        lat_us->push_back(us);
      }
      if (hit.error != serve::ErrorCode::kOk) {
        std::fprintf(stderr, "serve_latency: hit during reload failed: %s\n",
                     hit.error_message.c_str());
        ok = false;
        break;
      }
    }
    go.store(true, std::memory_order_release);
    if (reloader.joinable()) {
      reloader.join();
    }
    return ok;
  };
  // Per-round p99 at the ~10us cache-hit scale is dominated by scheduler
  // jitter, so pool all samples per mode across interleaved rounds (drift
  // hits both modes equally) and compare pooled p99s. The comparison gets a
  // few attempts: the gate asserts reloads CAN run without disturbing the
  // hot path, and one descheduling storm must not fail the build.
  constexpr int kReloadRounds = 10;
  double plain_p99_us = -1, reload_p99_us = -1, reload_p99_ratio = 10.0;
  auto pooled_p99 = [](std::vector<double>* pool) -> double {
    std::sort(pool->begin(), pool->end());
    return (*pool)[static_cast<size_t>(static_cast<double>(pool->size()) * 0.99)];
  };
  for (int attempt = 0; attempt < 3 && reload_p99_ratio > 1.05; ++attempt) {
    std::vector<double> plain_pool, reload_pool;
    plain_pool.reserve(kReloadRounds * kReloadRoundHits);
    reload_pool.reserve(kReloadRounds * kReloadRoundHits);
    if (!reload_round(false, nullptr) || !reload_round(true, nullptr)) {  // warmup
      return 1;
    }
    for (int round = 0; round < kReloadRounds; ++round) {
      if (!reload_round(false, &plain_pool) || !reload_round(true, &reload_pool)) {
        return 1;
      }
    }
    plain_p99_us = pooled_p99(&plain_pool);
    reload_p99_us = pooled_p99(&reload_pool);
    reload_p99_ratio = plain_p99_us > 0 ? reload_p99_us / plain_p99_us : 1.0;
  }
  double reload_p99_ratio_clamped = std::min(std::max(reload_p99_ratio, 1.0), 1.05);

  double train_speedup = warm_load_ms > 0 ? cold_train_ms / warm_load_ms : 0;
  double cache_speedup = hit_ms > 0 ? miss_ms / hit_ms : 0;
  double tracing_ratio = hit_ms > 0 ? traced_hit_ms / hit_ms : 1.0;
  double tracing_ratio_clamped = std::min(std::max(tracing_ratio, 1.0), 1.5);
  std::printf("%-28s %12s %12s %10s\n", "phase", "cold/miss ms", "warm/hit ms", "speedup");
  std::printf("%-28s %12.2f %12.2f %9.1fx\n", "train vs artifact load", cold_train_ms,
              warm_load_ms, train_speedup);
  std::printf("%-28s %12.3f %12.3f %9.1fx\n", "analysis vs cache hit", miss_ms, hit_ms,
              cache_speedup);
  std::printf("%-28s %12.3f %12.3f %9.2fx\n", "cache hit with tracing on", hit_ms,
              traced_hit_ms, tracing_ratio);
  std::printf("%-28s %12.3f %12.3f %9.2fx\n", "miss f64 vs int8 engine", miss64_ms,
              miss8_ms, int8_miss_speedup);
  std::printf("%-28s %12.4f %12.4f\n", "train WMAPE f64 vs int8", wmape64, wmape8);
  std::printf("%-28s %12.3f %12.3f %9.2fx\n", "cache-hit p99 during reload",
              plain_p99_us / 1000.0, reload_p99_us / 1000.0, reload_p99_ratio);

  JsonRows json("serve_latency");
  json.Row()
      .Str("phase", "cold_train_vs_warm_load")
      .Num("speedup_capped", std::min(train_speedup, 5.0));
  json.Row()
      .Str("phase", "cache_hit_vs_miss")
      .Num("speedup_capped", std::min(cache_speedup, 5.0));
  json.Row()
      .Str("phase", "tracing_on_vs_off")
      .Num("tracing_overhead_latency_ratio", tracing_ratio_clamped);
  json.Row()
      .Str("phase", "cache_miss_f64_vs_int8")
      .Num("speedup_capped", std::min(int8_miss_speedup, 5.0));
  json.Row()
      .Str("phase", "reload_during_load")
      .Num("hot_reload_p99_latency_ratio", reload_p99_ratio_clamped);

  // The acceptance gate: warm serving must beat cold training, cache hits
  // must beat full analysis, and full tracing must not blow up the warm path.
  if (train_speedup <= 1.0 || cache_speedup <= 1.0) {
    std::fprintf(stderr, "serve_latency: warm path is not faster (train %.1fx, cache %.1fx)\n",
                 train_speedup, cache_speedup);
    return 1;
  }
  if (tracing_ratio > 1.5) {
    std::fprintf(stderr, "serve_latency: tracing overhead too high (%.2fx warm hit latency)\n",
                 tracing_ratio);
    return 1;
  }
  // The int8-beats-f64 gate only holds where the SIMD kernels dispatch: the
  // scalar fallback keeps cross-machine bit-exactness by paying libm fmaf
  // per multiply-add, which costs more than the quantization saves. There
  // int8 must merely stay in the same ballpark.
  double int8_floor = kernels::Avx2F32Kernels() != nullptr ? 1.0 : 0.75;
  if (int8_miss_speedup <= int8_floor) {
    std::fprintf(stderr,
                 "serve_latency: int8 engine too slow on cache misses "
                 "(%.2fx, floor %.2fx)\n",
                 int8_miss_speedup, int8_floor);
    return 1;
  }
  if (reload_p99_ratio > 1.05) {
    std::fprintf(stderr,
                 "serve_latency: hot reload disturbs the serving path "
                 "(p99 ratio %.3fx, gate 1.05x)\n",
                 reload_p99_ratio);
    return 1;
  }
  if (wmape8 > wmape64 * 1.01 + 1e-9) {
    std::fprintf(stderr,
                 "serve_latency: int8 WMAPE degraded more than 1%% relative "
                 "(f64 %.6f, int8 %.6f)\n",
                 wmape64, wmape8);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace clara

int main(int argc, char** argv) {
  clara::bench::InitBenchThreads(argc, argv);
  return clara::bench::Run();
}
