// Figure 15: Clara's ILP state placement vs "expert" exhaustive search over
// every feasible per-structure placement. The paper reports Clara within
// 9.7% latency / 7.6% throughput of the exhaustive optimum.
#include "bench/bench_util.h"
#include "src/core/placement.h"

namespace clara {
namespace bench {
namespace {

constexpr int kCores = 12;

void Run() {
  PerfModel model;
  NicConfig cfg = model.config();
  Header("Figure 15: Clara placement vs expert exhaustive search (small flows)");
  std::printf("  %-10s %11s %11s %10s %10s %9s %9s\n", "NF", "Clara Mpps", "Exp Mpps",
              "Clara us", "Exp us", "tput gap", "lat gap");
  double worst_tput_gap = 0;
  double worst_lat_gap = 0;
  for (const char* name : {"mazunat", "dnsproxy", "webgen", "udpcount"}) {
    ProfiledNf pr = ProfileNf(MakeElementByName(name), WorkloadSpec::SmallFlows()).OrDie();

    PlacementResult clara = PlaceState(pr.module(), pr.profile(), pr.workload, cfg);
    PlacementResult expert =
        ExhaustivePlacement(pr.module(), pr.nic, pr.profile(), pr.workload, model, kCores);

    DemandOptions c_opts;
    c_opts.placement = clara.placement;
    DemandOptions e_opts;
    e_opts.placement = expert.placement;
    PerfPoint pc = model.Evaluate(pr.Demand(cfg, c_opts), kCores);
    PerfPoint pe = model.Evaluate(pr.Demand(cfg, e_opts), kCores);

    double tput_gap = 1 - pc.throughput_mpps / pe.throughput_mpps;
    double lat_gap = pc.latency_us / pe.latency_us - 1;
    worst_tput_gap = std::max(worst_tput_gap, tput_gap);
    worst_lat_gap = std::max(worst_lat_gap, lat_gap);
    std::printf("  %-10s %11.2f %11.2f %10.2f %10.2f %8.1f%% %8.1f%%\n", name,
                pc.throughput_mpps, pe.throughput_mpps, pc.latency_us, pe.latency_us,
                tput_gap * 100, lat_gap * 100);
  }
  std::printf("\n  worst gaps: throughput %.1f%%, latency %.1f%%"
              " (paper: <=7.6%% / <=9.7%%)\n",
              worst_tput_gap * 100, worst_lat_gap * 100);
  Note("expert = exhaustive sweep over every feasible placement per structure;");
  Note("Clara's ILP does not model aggregate-bandwidth spreading (paper SS5.8).");
}

}  // namespace
}  // namespace bench
}  // namespace clara

int main(int argc, char** argv) {
  clara::bench::InitBenchThreads(argc, argv);
  clara::bench::Run();
  return 0;
}
