// Figure 16: Clara's clustering-based variable packing vs "expert"
// exhaustive search over all partitions of the hottest variables. The paper
// finds a small expert edge (cluster-relative placement effects) with Clara
// remaining competitive.
#include "bench/bench_util.h"
#include "src/core/coalescing.h"

namespace clara {
namespace bench {
namespace {

constexpr int kCores = 12;

void Run() {
  PerfModel model;
  NicConfig cfg = model.config();
  Header("Figure 16: Clara coalescing vs expert exhaustive packing (small flows)");
  std::printf("  %-12s %11s %11s %10s %10s %10s\n", "NF", "Clara cores", "Exp cores",
              "Clara us", "Exp us", "partitions");
  for (const char* name : {"aggcounter", "timefilter", "webtcp", "tcpgen"}) {
    ProfiledNf pr = ProfileNf(MakeElementByName(name), WorkloadSpec::SmallFlows()).OrDie();

    CoalescingPlan clara = SuggestCoalescing(pr.module(), pr.profile());
    CoalescingPlan expert =
        ExhaustiveCoalescing(pr.module(), pr.nic, pr.profile(), pr.workload, model, kCores);

    DemandOptions c_opts;
    c_opts.coalescing = clara.effects;
    DemandOptions e_opts;
    e_opts.coalescing = expert.effects;
    NfDemand dc = pr.Demand(cfg, c_opts);
    NfDemand de = pr.Demand(cfg, e_opts);
    std::printf("  %-12s %11d %11d %10.2f %10.2f %10d\n", name, model.CoresToSaturate(dc),
                model.CoresToSaturate(de), model.Evaluate(dc, kCores).latency_us,
                model.Evaluate(de, kCores).latency_us, expert.clusters_considered);
  }
  Note("");
  Note("expert = every set partition of the most frequently accessed scalars;");
  Note("Clara clusters by access-vector similarity (k-means) and stays close.");
}

}  // namespace
}  // namespace bench
}  // namespace clara

int main(int argc, char** argv) {
  clara::bench::InitBenchThreads(argc, argv);
  clara::bench::Run();
  return 0;
}
