// Table 2: the evaluated NF suite — source LoC, lowered IR instruction
// counts, statefulness, stateful memory instructions, framework API calls,
// and the Clara insight classes that apply to each element.
#include "bench/bench_util.h"
#include "src/ir/classify.h"
#include "src/lang/lower.h"
#include "src/lang/printer.h"

namespace clara {
namespace bench {
namespace {

void Run() {
  Header("Table 2: evaluated Click-style elements");
  std::printf("  %-14s %5s %6s %6s %5s %4s  %s\n", "Element", "LoC", "Instr", "State",
              "Mem", "API", "Insights");
  for (const auto& info : ElementRegistry()) {
    Program p = info.make();
    int loc = SourceLineCount(p);
    LowerResult lr = LowerProgram(p);
    if (!lr.ok) {
      std::printf("  %-14s  <lowering failed: %s>\n", info.name.c_str(), lr.error.c_str());
      continue;
    }
    BlockCounts c = CountFunction(lr.module.functions[0]);
    std::string insights;
    for (size_t i = 0; i < info.insights.size(); ++i) {
      insights += (i > 0 ? "," : "") + info.insights[i];
    }
    std::printf("  %-14s %5d %6u %6s %5u %4u  %s\n", info.name.c_str(), loc,
                lr.module.functions[0].NumInstructions(), info.stateful ? "yes" : "no",
                c.stateful_mem, c.api_calls, insights.c_str());
  }
  Note("");
  Note("Instr = lowered IR instructions; Mem = static stateful load/stores;");
  Note("API = framework calls handled by reverse porting (paper SS3.3).");
}

}  // namespace
}  // namespace bench
}  // namespace clara

int main(int argc, char** argv) {
  clara::bench::InitBenchThreads(argc, argv);
  clara::bench::Run();
  return 0;
}
