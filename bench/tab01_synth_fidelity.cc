// Table 1: the data-synthesis engine generates representative Click-style
// programs. We compile real elements and two synthesized corpora (corpus-
// guided vs unguided baseline) to IR, collect abstract-instruction
// distributions, and report the six distribution distances of the paper.
#include "bench/bench_util.h"
#include "src/ir/vocab.h"
#include "src/lang/lower.h"
#include "src/ml/metrics.h"

namespace clara {
namespace bench {
namespace {

// Instruction histogram of a set of programs over a shared vocabulary.
std::vector<double> CorpusHistogram(std::vector<Program>& programs, Vocabulary& vocab) {
  std::vector<int> all_tokens;
  for (auto& p : programs) {
    LowerResult lr = LowerProgram(p);
    if (!lr.ok) {
      continue;
    }
    for (const auto& blk : lr.module.functions[0].blocks) {
      for (int t : vocab.Encode(blk, lr.module)) {
        all_tokens.push_back(t);
      }
    }
  }
  std::vector<double> h(vocab.size(), 0.0);
  for (int t : all_tokens) {
    if (t >= 0 && t < static_cast<int>(h.size())) {
      h[t] += 1.0;
    }
  }
  return h;
}

void Run() {
  std::vector<Program> real = ElementCorpus();
  SynthProfile guided_profile = CorpusProfile(real);

  SynthOptions guided_opts;
  guided_opts.profile = guided_profile;
  SynthOptions baseline_opts;
  baseline_opts.profile = GenericProfile();

  std::vector<Program> guided = SynthesizeCorpus(250, guided_opts, 11);
  std::vector<Program> baseline = SynthesizeCorpus(250, baseline_opts, 22);

  // One shared vocabulary so histograms align (built from all three corpora).
  Vocabulary vocab;
  std::vector<double> h_real = CorpusHistogram(real, vocab);
  std::vector<double> h_guided = CorpusHistogram(guided, vocab);
  std::vector<double> h_baseline = CorpusHistogram(baseline, vocab);
  h_real = CorpusHistogram(real, vocab);  // re-run so sizes match final vocab
  h_guided.resize(vocab.size(), 0.0);
  h_baseline.resize(vocab.size(), 0.0);

  Header("Table 1: synthesized vs real Click-program instruction distributions");
  std::printf("  %-28s %10s %10s\n", "Metric", "Clara", "Baseline");
  struct Row {
    const char* name;
    double clara;
    double baseline;
  };
  Row rows[] = {
      {"Jensen-Shannon divergence", JensenShannonDivergence(h_real, h_guided),
       JensenShannonDivergence(h_real, h_baseline)},
      {"Renyi divergence", RenyiDivergence(h_real, h_guided),
       RenyiDivergence(h_real, h_baseline)},
      {"Bhattacharyya distance", BhattacharyyaDistance(h_real, h_guided),
       BhattacharyyaDistance(h_real, h_baseline)},
      {"Cosine distance", CosineDistance(h_real, h_guided),
       CosineDistance(h_real, h_baseline)},
      {"Euclidean distance", EuclideanDistance(h_real, h_guided),
       EuclideanDistance(h_real, h_baseline)},
      {"Variational distance", VariationalDistance(h_real, h_guided),
       VariationalDistance(h_real, h_baseline)},
  };
  int wins = 0;
  for (const auto& r : rows) {
    std::printf("  %-28s %10.4f %10.4f %s\n", r.name, r.clara, r.baseline,
                r.clara < r.baseline ? "" : "  <-- guided not closer");
    wins += r.clara < r.baseline ? 1 : 0;
  }
  std::printf("\n  guided synthesis closer on %d/6 metrics (paper: 6/6)\n", wins);
}

}  // namespace
}  // namespace bench
}  // namespace clara

int main(int argc, char** argv) {
  clara::bench::InitBenchThreads(argc, argv);
  clara::bench::Run();
  return 0;
}
