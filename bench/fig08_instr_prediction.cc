// Figure 8 (+ §5.2 text): per-NF WMAPE of compute-instruction prediction.
// Clara's LSTM+FC is compared against a DNN (bag-of-words MLP), a 1-D CNN,
// and an AutoML pipeline (cross-validated model search) — all trained on the
// identical synthesized dataset. Also reports the direct memory-counting
// accuracy of §3.2.
#include <cmath>

#include "bench/bench_util.h"
#include "src/core/predictor.h"
#include "src/lang/lower.h"
#include "src/ml/automl.h"
#include "src/ml/cnn.h"
#include "src/ml/metrics.h"
#include "src/ml/mlp.h"

namespace clara {
namespace bench {
namespace {

const char* kNfs[] = {"tcpack",  "udpipencap", "timefilter", "anonipaddr",
                      "tcpresp", "forcetcp",   "aggcounter", "tcpgen"};

void Run() {
  std::vector<Program> corpus = ElementCorpus();

  PredictorOptions popts;
  popts.train_programs = 300;
  popts.lstm.epochs = 18;
  popts.synth.profile = CorpusProfile(corpus);
  InstructionPredictor predictor(popts);
  std::printf("training LSTM on synthesized (IR, machine-code) pairs...\n");
  predictor.Train();
  std::printf("  train WMAPE after convergence: %.2f%% (paper: 10.74%%)\n",
              predictor.model().train_wmape() * 100);

  // Baselines on the identical dataset.
  const SeqDataset& seq = predictor.dataset();
  Vocabulary& vocab = const_cast<Vocabulary&>(predictor.vocab());
  TabularDataset bow;
  for (const auto& ex : seq.examples) {
    bow.x.push_back(vocab.Histogram(ex.tokens));
    bow.y.push_back(ex.target);
  }
  std::printf("training DNN baseline...\n");
  MlpOptions mlp_opts;
  mlp_opts.epochs = 60;
  MlpRegressor dnn(mlp_opts);
  dnn.Fit(bow);
  std::printf("training CNN baseline...\n");
  CnnOptions cnn_opts;
  cnn_opts.epochs = 25;
  CnnRegressor cnn(cnn_opts);
  cnn.Fit(seq);
  std::printf("running AutoML search...\n");
  AutoMlReport automl_report;
  auto automl = AutoMlRegression(bow, &automl_report, 3);
  std::printf("  AutoML chose: %s (CV MAE %.2f; paper: random-forest pipeline)\n",
              automl_report.chosen.c_str(), automl_report.cv_error);

  Header("Figure 8: per-NF compute-instruction prediction WMAPE");
  std::printf("  %-12s %8s %8s %8s %8s\n", "NF", "Clara", "DNN", "CNN", "AutoML");
  double agg[4] = {0, 0, 0, 0};
  double agg_truth = 0;
  uint64_t mem_ir_total = 0;
  uint64_t mem_nic_total = 0;
  for (const char* name : kNfs) {
    Program p = MakeElementByName(name);
    LowerResult lr = LowerProgram(p);
    auto gt = CompileGroundTruth(lr.module, popts.backend);
    std::vector<double> truth;
    std::vector<double> pred[4];
    const Function& f = lr.module.functions[0];
    for (size_t b = 0; b < f.blocks.size(); ++b) {
      mem_ir_total += CountBlock(f.blocks[b]).stateful_mem;
      mem_nic_total += gt[b].mem_state;
      if (f.blocks[b].instrs.size() < 2) {
        continue;
      }
      std::vector<int> tokens = vocab.Encode(f.blocks[b], lr.module);
      FeatureVec hist = vocab.Histogram(tokens);
      truth.push_back(gt[b].compute);
      pred[0].push_back(predictor.model().Predict(tokens));
      pred[1].push_back(std::max(0.0, dnn.Predict(hist)));
      pred[2].push_back(cnn.Predict(tokens));
      pred[3].push_back(std::max(0.0, automl->Predict(hist)));
    }
    double w[4];
    for (int m = 0; m < 4; ++m) {
      w[m] = Wmape(truth, pred[m]);
      double tsum = 0;
      for (size_t i = 0; i < truth.size(); ++i) {
        agg[m] += std::abs(truth[i] - pred[m][i]);
        tsum += truth[i];
      }
      if (m == 0) {
        agg_truth += tsum;
      }
    }
    std::printf("  %-12s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", name, w[0] * 100, w[1] * 100,
                w[2] * 100, w[3] * 100);
  }
  std::printf("  %-12s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", "aggregate",
              agg[0] / agg_truth * 100, agg[1] / agg_truth * 100, agg[2] / agg_truth * 100,
              agg[3] / agg_truth * 100);
  Note("");
  Note("paper: Clara 6.0-22.3% per NF, outperforming DNN/CNN/AutoML (11.9-30.3%).");

  // §5.2: stateful-memory counting accuracy (all registry elements).
  for (const auto& info : ElementRegistry()) {
    Program p = info.make();
    LowerResult lr = LowerProgram(p);
    auto gt = CompileGroundTruth(lr.module, popts.backend);
    const Function& f = lr.module.functions[0];
    for (size_t b = 0; b < f.blocks.size(); ++b) {
      mem_ir_total += CountBlock(f.blocks[b]).stateful_mem;
      mem_nic_total += gt[b].mem_state;
    }
  }
  double mem_acc =
      mem_ir_total > 0
          ? 1.0 - std::abs(static_cast<double>(mem_ir_total) -
                           static_cast<double>(mem_nic_total)) /
                      static_cast<double>(mem_ir_total)
          : 1.0;
  std::printf("\n  stateful memory-count accuracy (IR count vs machine code): %.1f%%\n",
              mem_acc * 100);
  Note("paper: 96.4%-100%.");
}

}  // namespace
}  // namespace bench
}  // namespace clara

int main(int argc, char** argv) {
  clara::bench::InitBenchThreads(argc, argv);
  clara::bench::Run();
  return 0;
}
