// Shared helpers for the experiment-reproduction benches: NF profiling
// against a workload, table formatting, and element-corpus access.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation (see DESIGN.md's per-experiment index) and prints the same
// rows/series the paper reports.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/elements/elements.h"
#include "src/lang/interp.h"
#include "src/nic/backend.h"
#include "src/nic/demand.h"
#include "src/nic/perf_model.h"
#include "src/obs/json_util.h"
#include "src/synth/synth.h"
#include "src/util/parallel.h"
#include "src/workload/workload.h"

namespace clara {
namespace bench {

// Applies a --threads=N flag (shared by every bench binary) to the parallel
// pool; other arguments are left alone. CLARA_THREADS is honored by the pool
// itself, so this only matters when the flag is given explicitly.
inline void InitBenchThreads(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      SetNumThreads(std::atoi(argv[i] + 10));
    }
  }
}

// An NF profiled under a workload: everything needed to build demands.
// Check ok() (or use OrDie()) before touching nf — lowering can fail.
struct ProfiledNf {
  std::unique_ptr<NfInstance> nf;
  NicProgram nic;
  WorkloadSpec workload;
  std::string error;

  bool ok() const { return error.empty() && nf != nullptr; }

  // Exits with a diagnostic on failure; for bench mains where a broken
  // element means the figure cannot be reproduced at all.
  ProfiledNf OrDie() && {
    if (!ok()) {
      std::fprintf(stderr, "profile error: %s\n",
                   error.empty() ? "no NF instance" : error.c_str());
      std::exit(1);
    }
    return std::move(*this);
  }

  const Module& module() const { return nf->module(); }
  const NfProfile& profile() const { return nf->profile(); }

  NfDemand Demand(const NicConfig& cfg, const DemandOptions& opts = DemandOptions{}) const {
    return BuildDemand(module(), nic, profile(), workload, cfg, opts);
  }
};

inline ProfiledNf ProfileNf(Program program, const WorkloadSpec& workload,
                            size_t packets = 4000, const LpmTable* lpm_accel = nullptr,
                            int force_in_port = -1) {
  ProfiledNf out;
  std::string name = program.name;
  out.nf = std::make_unique<NfInstance>(std::move(program));
  if (!out.nf->ok()) {
    out.error = name + ": " + out.nf->error();
    out.nf.reset();
    return out;
  }
  if (lpm_accel != nullptr) {
    out.nf->SetLpmAccelTable(lpm_accel);
  }
  out.nic = CompileToNic(out.nf->module());
  out.workload = workload;
  Trace trace = GenerateTrace(workload, packets);
  for (auto& pkt : trace.packets) {
    // Mix directions for NAT-style elements unless the caller pins a port.
    pkt.in_port = force_in_port >= 0 ? static_cast<uint16_t>(force_in_port)
                                     : static_cast<uint16_t>(pkt.src_ip & 1);
    out.nf->Process(pkt);
  }
  return out;
}

// The real-element corpus and its measured AST profile (guides synthesis).
inline std::vector<Program> ElementCorpus() {
  std::vector<Program> corpus;
  for (const auto& info : ElementRegistry()) {
    corpus.push_back(info.make());
  }
  return corpus;
}

inline SynthProfile CorpusProfile(const std::vector<Program>& corpus) {
  std::vector<const Program*> ptrs;
  for (const auto& p : corpus) {
    ptrs.push_back(&p);
  }
  return MeasureCorpus(ptrs);
}

// ---- Machine-readable bench output ----
//
// When CLARA_BENCH_JSON_DIR is set, JsonRows collects {string,double} rows
// and writes them to <dir>/BENCH_<name>.json on destruction, so scripts can
// consume figure data without scraping the text tables. With the variable
// unset it does nothing.
class JsonRows {
 public:
  explicit JsonRows(const std::string& bench_name) {
    const char* dir = std::getenv("CLARA_BENCH_JSON_DIR");
    if (dir != nullptr && *dir != '\0') {
      path_ = std::string(dir) + "/BENCH_" + bench_name + ".json";
    }
  }
  JsonRows(const JsonRows&) = delete;
  JsonRows& operator=(const JsonRows&) = delete;
  ~JsonRows() { Flush(); }

  bool enabled() const { return !path_.empty(); }

  // Starts a new row; subsequent Str/Num calls fill it.
  JsonRows& Row() {
    if (enabled()) {
      rows_.emplace_back();
    }
    return *this;
  }
  JsonRows& Str(const char* key, const std::string& v) {
    if (enabled() && !rows_.empty()) {
      rows_.back().push_back(std::string("\"") + key + "\":\"" + obs::JsonEscape(v) + "\"");
    }
    return *this;
  }
  JsonRows& Num(const char* key, double v) {
    if (enabled() && !rows_.empty()) {
      rows_.back().push_back(std::string("\"") + key + "\":" + obs::JsonNumber(v));
    }
    return *this;
  }

  void Flush() {
    if (!enabled() || flushed_) {
      return;
    }
    flushed_ = true;
    Dedupe();
    FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "[\n");
    for (size_t r = 0; r < rows_.size(); ++r) {
      std::string row = "{";
      for (size_t i = 0; i < rows_[r].size(); ++i) {
        row += (i ? "," : "") + rows_[r][i];
      }
      row += "}";
      std::fprintf(f, "  %s%s\n", row.c_str(), r + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
  }

 private:
  // Identifying fragments of a row: every string-valued field plus the
  // numeric fields that name a configuration ("threads", "variant") rather
  // than a measurement. Benches that emit the same configuration twice (e.g.
  // a {1, hw_concurrency} sweep on a 1-core host) would otherwise write
  // duplicate rows that differ only in measurement noise.
  static std::string RowKey(const std::vector<std::string>& row) {
    std::string key;
    for (const auto& frag : row) {
      size_t colon = frag.find(':');
      bool string_valued = colon != std::string::npos && colon + 1 < frag.size() &&
                           frag[colon + 1] == '"';
      if (string_valued || frag.compare(0, colon, "\"threads\"") == 0 ||
          frag.compare(0, colon, "\"variant\"") == 0) {
        key += frag;
        key += '\x1f';
      }
    }
    return key;
  }

  // Keeps one row per key — the last emitted (a re-run overwrites), at the
  // key's first-seen position.
  void Dedupe() {
    std::map<std::string, size_t> slot;
    std::vector<std::vector<std::string>> out;
    for (auto& row : rows_) {
      std::string key = RowKey(row);
      auto it = slot.find(key);
      if (it == slot.end()) {
        slot.emplace(std::move(key), out.size());
        out.push_back(std::move(row));
      } else {
        out[it->second] = std::move(row);
      }
    }
    rows_ = std::move(out);
  }

  std::string path_;
  std::vector<std::vector<std::string>> rows_;
  bool flushed_ = false;
};

// ---- Table/plot text output ----

inline void Header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void Note(const std::string& text) { std::printf("  %s\n", text.c_str()); }

// A crude fixed-width horizontal bar for "figure" output.
inline std::string Bar(double value, double max_value, int width = 36) {
  int n = max_value > 0 ? static_cast<int>(value / max_value * width + 0.5) : 0;
  if (n > width) {
    n = width;
  }
  return std::string(static_cast<size_t>(n), '#');
}

}  // namespace bench
}  // namespace clara

#endif  // BENCH_BENCH_UTIL_H_
