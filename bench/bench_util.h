// Shared helpers for the experiment-reproduction benches: NF profiling
// against a workload, table formatting, and element-corpus access.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation (see DESIGN.md's per-experiment index) and prints the same
// rows/series the paper reports.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/elements/elements.h"
#include "src/lang/interp.h"
#include "src/nic/backend.h"
#include "src/nic/demand.h"
#include "src/nic/perf_model.h"
#include "src/synth/synth.h"
#include "src/workload/workload.h"

namespace clara {
namespace bench {

// An NF profiled under a workload: everything needed to build demands.
struct ProfiledNf {
  std::unique_ptr<NfInstance> nf;
  NicProgram nic;
  WorkloadSpec workload;

  const Module& module() const { return nf->module(); }
  const NfProfile& profile() const { return nf->profile(); }

  NfDemand Demand(const NicConfig& cfg, const DemandOptions& opts = DemandOptions{}) const {
    return BuildDemand(module(), nic, profile(), workload, cfg, opts);
  }
};

inline ProfiledNf ProfileNf(Program program, const WorkloadSpec& workload,
                            size_t packets = 4000, const LpmTable* lpm_accel = nullptr,
                            int force_in_port = -1) {
  ProfiledNf out;
  out.nf = std::make_unique<NfInstance>(std::move(program));
  if (!out.nf->ok()) {
    std::fprintf(stderr, "profile error: %s\n", out.nf->error().c_str());
    std::abort();
  }
  if (lpm_accel != nullptr) {
    out.nf->SetLpmAccelTable(lpm_accel);
  }
  out.nic = CompileToNic(out.nf->module());
  out.workload = workload;
  Trace trace = GenerateTrace(workload, packets);
  for (auto& pkt : trace.packets) {
    // Mix directions for NAT-style elements unless the caller pins a port.
    pkt.in_port = force_in_port >= 0 ? static_cast<uint16_t>(force_in_port)
                                     : static_cast<uint16_t>(pkt.src_ip & 1);
    out.nf->Process(pkt);
  }
  return out;
}

// The real-element corpus and its measured AST profile (guides synthesis).
inline std::vector<Program> ElementCorpus() {
  std::vector<Program> corpus;
  for (const auto& info : ElementRegistry()) {
    corpus.push_back(info.make());
  }
  return corpus;
}

inline SynthProfile CorpusProfile(const std::vector<Program>& corpus) {
  std::vector<const Program*> ptrs;
  for (const auto& p : corpus) {
    ptrs.push_back(&p);
  }
  return MeasureCorpus(ptrs);
}

// ---- Table/plot text output ----

inline void Header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void Note(const std::string& text) { std::printf("  %s\n", text.c_str()); }

// A crude fixed-width horizontal bar for "figure" output.
inline std::string Bar(double value, double max_value, int width = 36) {
  int n = max_value > 0 ? static_cast<int>(value / max_value * width + 0.5) : 0;
  if (n > width) {
    n = width;
  }
  return std::string(static_cast<size_t>(n), '#');
}

}  // namespace bench
}  // namespace clara

#endif  // BENCH_BENCH_UTIL_H_
