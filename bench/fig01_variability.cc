// Figure 1: performance variability of five NFs on the simulated SmartNIC.
// Each NF is benchmarked in 2-4 versions with the same core logic but
// different porting strategies or workloads; latency is normalized against
// the fastest version of that NF. The paper reports spreads up to 13.8x.
#include <algorithm>
#include <cmath>

#include "bench/bench_util.h"
#include "src/nf/lpm.h"

namespace clara {
namespace bench {
namespace {

struct Variant {
  std::string nf;
  std::string label;
  double latency_us;
};

constexpr int kCores = 8;

double Latency(const ProfiledNf& pr, const PerfModel& model,
               const DemandOptions& opts = DemandOptions{}) {
  return model.Evaluate(pr.Demand(model.config(), opts), kCores).latency_us;
}

void Run() {
  PerfModel model;
  std::vector<Variant> variants;

  // NAT: checksum accelerator on/off (the paper's NAT variants). Outbound
  // traffic over a modest flow set so every packet is translated.
  {
    WorkloadSpec w = WorkloadSpec::LargeFlows(128);
    w.syn_ratio = 0.15;  // ensure every flow's mapping is established
    ProfiledNf sw = ProfileNf(MakeMazuNat(false), w, 4000, nullptr, /*in_port=*/0).OrDie();
    ProfiledNf hw = ProfileNf(MakeMazuNat(true), w, 4000, nullptr, /*in_port=*/0).OrDie();
    variants.push_back({"NAT", "software checksum", Latency(sw, model)});
    variants.push_back({"NAT", "checksum accel", Latency(hw, model)});
  }

  // DPI: ported variants scanning different packet-size prefixes.
  for (int scan : {8, 16, 32, 64}) {
    WorkloadSpec w = WorkloadSpec::SmallFlows(256);
    ProfiledNf pr = ProfileNf(MakeDpi(scan), w).OrDie();
    variants.push_back({"DPI", "scan " + std::to_string(scan) + "B", Latency(pr, model)});
  }

  // FW: flow state in different memory locations x flow distributions.
  {
    for (const char* wl : {"small", "large"}) {
      WorkloadSpec w = std::string(wl) == "small" ? WorkloadSpec::SmallFlows()
                                                  : WorkloadSpec::LargeFlows(128);
      ProfiledNf pr = ProfileNf(MakeFirewall(), w).OrDie();
      DemandOptions emem;  // default: all EMEM
      DemandOptions imem;
      imem.placement["conn_table"] = MemRegion::kImem;
      imem.placement["allowed"] = MemRegion::kCls;
      imem.placement["denied"] = MemRegion::kCls;
      variants.push_back({"FW", std::string(wl) + " flows, EMEM state", Latency(pr, model, emem)});
      variants.push_back({"FW", std::string(wl) + " flows, IMEM state", Latency(pr, model, imem)});
    }
  }

  // LPM: rule-table sizes, optionally with the flow cache.
  {
    WorkloadSpec w = WorkloadSpec::LargeFlows(128);
    ProfiledNf small_tbl = ProfileNf(MakeIpLookup(16, false, false), w).OrDie();
    ProfiledNf big_tbl = ProfileNf(MakeIpLookup(512, false, false), w).OrDie();
    ProfiledNf cached = ProfileNf(MakeIpLookup(512, false, true), w).OrDie();
    variants.push_back({"LPM", "16 rules", Latency(small_tbl, model)});
    variants.push_back({"LPM", "512 rules", Latency(big_tbl, model)});
    variants.push_back({"LPM", "512 rules + flow cache", Latency(cached, model)});
  }

  // HH: packet rates via flow-mix classes.
  {
    ProfiledNf hot = ProfileNf(MakeHeavyHitter(), WorkloadSpec::LargeFlows(128)).OrDie();
    ProfiledNf cold = ProfileNf(MakeHeavyHitter(), WorkloadSpec::SmallFlows()).OrDie();
    variants.push_back({"HH", "skewed traffic", Latency(hot, model)});
    variants.push_back({"HH", "uniform traffic", Latency(cold, model)});
  }

  Header("Figure 1: performance variability of five NFs (latency, normalized per NF)");
  JsonRows rows("fig01_variability");
  std::string cur;
  double best = 0;
  double worst_spread = 0;
  for (size_t i = 0; i < variants.size(); ++i) {
    if (variants[i].nf != cur) {
      cur = variants[i].nf;
      best = 1e300;
      for (const auto& v : variants) {
        if (v.nf == cur) {
          best = std::min(best, v.latency_us);
        }
      }
      std::printf("\n  %s\n", cur.c_str());
    }
    double norm = variants[i].latency_us / best;
    worst_spread = std::max(worst_spread, norm);
    std::printf("    %-28s %6.2fx  (%7.2f us) %s\n", variants[i].label.c_str(), norm,
                variants[i].latency_us, Bar(norm, 14.0, 28).c_str());
    rows.Row()
        .Str("nf", variants[i].nf)
        .Str("variant", variants[i].label)
        .Num("latency_us", variants[i].latency_us)
        .Num("normalized", norm);
  }
  std::printf("\n  max spread across variants: %.1fx (paper: up to 13.8x)\n", worst_spread);
}

}  // namespace
}  // namespace bench
}  // namespace clara

int main(int argc, char** argv) {
  clara::bench::InitBenchThreads(argc, argv);
  clara::bench::Run();
  return 0;
}
