// Ablation: the exact ILP placement vs a greedy frequency-density heuristic
// (DESIGN.md design-choice #4). Also reports branch-and-bound effort.
#include "bench/bench_util.h"
#include "src/core/placement.h"
#include "src/solver/assignment_ilp.h"

namespace clara {
namespace bench {
namespace {

void Run() {
  PerfModel model;
  NicConfig cfg = model.config();
  Header("Ablation: ILP placement vs greedy heuristic");
  std::printf("  %-10s %12s %12s %10s\n", "NF", "ILP cyc/pkt", "greedy ratio", "BB nodes");
  // Use a shrunken hierarchy so capacity pressure forces non-trivial
  // trade-offs (on the default config most NF state fits comfortably and
  // greedy == ILP).
  NicConfig tight = cfg;
  tight.regions[static_cast<int>(MemRegion::kCls)].capacity_bytes = 8 * 1024;
  tight.regions[static_cast<int>(MemRegion::kCtm)].capacity_bytes = 32 * 1024;
  tight.regions[static_cast<int>(MemRegion::kImem)].capacity_bytes = 192 * 1024;
  for (const char* name : {"mazunat", "dnsproxy", "webgen", "udpcount", "heavyhitter",
                           "cmsketch"}) {
    ProfiledNf pr = ProfileNf(MakeElementByName(name), WorkloadSpec::SmallFlows()).OrDie();

    // Rebuild the same assignment problem PlaceState builds, then compare
    // exact vs greedy objectives.
    const Module& m = pr.module();
    const NfProfile& profile = pr.profile();
    double pkts = std::max<uint64_t>(1, profile.packets);
    AssignmentProblem problem;
    problem.capacity.resize(kNumMemRegions);
    for (int r = 0; r < kNumMemRegions; ++r) {
      problem.capacity[r] = tight.regions[r].capacity_bytes * 3 / 4;
    }
    for (size_t v = 0; v < m.state.size(); ++v) {
      const StateVar& sv = m.state[v];
      double freq = (profile.state_reads[v] + profile.state_writes[v]) / pkts;
      problem.size.push_back(sv.SizeBytes());
      std::vector<double> row(kNumMemRegions, AssignmentProblem::Infeasible());
      for (int r = 0; r < kNumMemRegions; ++r) {
        if (sv.SizeBytes() > problem.capacity[r]) {
          continue;
        }
        double lat = tight.regions[r].latency_cycles;
        if (static_cast<MemRegion>(r) == MemRegion::kEmem) {
          double hit = VarCacheHitRate(sv, pr.workload, tight.emem_cache_bytes);
          lat = hit * tight.emem_cache_latency + (1 - hit) * lat;
        }
        row[r] = freq * lat;
      }
      problem.cost.push_back(std::move(row));
    }
    AssignmentSolution exact = SolveAssignment(problem);
    AssignmentSolution greedy = GreedyAssignment(problem);
    if (!exact.feasible) {
      std::printf("  %-10s   infeasible under the tightened hierarchy\n", name);
      continue;
    }
    double ratio = greedy.feasible ? greedy.objective / exact.objective : -1;
    std::printf("  %-10s %12.1f %12.3f %10llu\n", name, exact.objective, ratio,
                static_cast<unsigned long long>(exact.nodes_explored));
  }
  Note("");
  Note("greedy ratio = greedy objective / exact objective (1.000 = matched; the");
  Note("ILP's advantage appears when capacities force cross-structure trade-offs).");
}

}  // namespace
}  // namespace bench
}  // namespace clara

int main(int argc, char** argv) {
  clara::bench::InitBenchThreads(argc, argv);
  clara::bench::Run();
  return 0;
}
