#include "src/synth/synth.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/util/binio.h"

namespace clara {
namespace {

const std::vector<PacketFieldInfo>& StandardFields() {
  static const std::vector<PacketFieldInfo> fields = [] {
    Module m;
    InstallStandardPacketFields(m);
    return m.packet_fields;
  }();
  return fields;
}

int OpIndex(Opcode op) {
  switch (op) {
    case Opcode::kAdd: return 0;
    case Opcode::kSub: return 1;
    case Opcode::kMul: return 2;
    case Opcode::kAnd: return 3;
    case Opcode::kOr: return 4;
    case Opcode::kXor: return 5;
    case Opcode::kShl: return 6;
    case Opcode::kLShr: return 7;
    case Opcode::kUDiv: return 8;
    default: return -1;
  }
}

Opcode OpFromIndex(size_t i) {
  static const Opcode kOps[] = {Opcode::kAdd, Opcode::kSub,  Opcode::kMul,
                                Opcode::kAnd, Opcode::kOr,   Opcode::kXor,
                                Opcode::kShl, Opcode::kLShr, Opcode::kUDiv};
  return kOps[i % 9];
}

// ---- Corpus measurement ----

class Measurer {
 public:
  SynthProfile Run(const std::vector<const Program*>& corpus) {
    profile_.stmt_weights.assign(kNumSynthStmts, 0.1);
    profile_.op_weights.assign(9, 0.1);
    profile_.field_weights.assign(StandardFields().size(), 0.1);
    double total_body = 0;
    int stateful = 0;
    double scalars = 0;
    double scalars_i64 = 0;
    int arrays = 0;
    int maps = 0;
    for (const Program* p : corpus) {
      total_body += static_cast<double>(p->body.size());
      if (!p->state.empty()) {
        ++stateful;
      }
      for (const auto& s : p->state) {
        switch (s.kind) {
          case StateKind::kScalar:
            scalars += 1;
            scalars_i64 += s.elem_type == Type::kI64 ? 1 : 0;
            break;
          case StateKind::kArray: ++arrays; break;
          case StateKind::kMap: ++maps; break;
        }
      }
      MeasureBody(p->body);
    }
    size_t n = std::max<size_t>(1, corpus.size());
    profile_.avg_body_len = std::max(4.0, total_body / n);
    profile_.stateful_prob = static_cast<double>(stateful) / n;
    profile_.scalar_state_avg = scalars / n;
    profile_.array_state_prob = std::min(1.0, static_cast<double>(arrays) / n);
    profile_.map_state_prob = std::min(1.0, static_cast<double>(maps) / n);
    profile_.scalar_i64_frac = scalars > 0 ? scalars_i64 / scalars : 0.5;
    profile_.local_leaf_prob =
        leaves_ > 0 ? static_cast<double>(local_leaves_) / leaves_ : 0.4;
    profile_.mask_test_prob = ifs_ > 0 ? static_cast<double>(mask_ifs_) / ifs_ : 0.3;
    profile_.mul_bigconst_prob =
        muls_ > 0 ? static_cast<double>(bigconst_muls_) / muls_ : 0.3;
    return profile_;
  }

 private:
  void Count(SynthStmt k) { profile_.stmt_weights[static_cast<int>(k)] += 1; }

  void MeasureExpr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
      case ExprKind::kPacketField:
      case ExprKind::kStateScalar:
      case ExprKind::kPayloadByte:
        ++leaves_;
        break;
      case ExprKind::kLocal:
        ++leaves_;
        ++local_leaves_;
        break;
      default:
        break;
    }
    if (e.kind == ExprKind::kBinary && e.op == Opcode::kMul) {
      ++muls_;
      for (const auto& a : e.args) {
        if (a->kind == ExprKind::kIntLit && a->value > 0xffff) {
          ++bigconst_muls_;
          break;
        }
      }
    }
    if (e.kind == ExprKind::kBinary) {
      int idx = OpIndex(e.op);
      if (idx >= 0) {
        profile_.op_weights[idx] += 1;
      }
    }
    if (e.kind == ExprKind::kPacketField) {
      const auto& fields = StandardFields();
      for (size_t i = 0; i < fields.size(); ++i) {
        if (fields[i].name == e.name) {
          profile_.field_weights[i] += 1;
          break;
        }
      }
    }
    for (const auto& a : e.args) {
      MeasureExpr(*a);
    }
  }

  static bool Mentions(const Expr& e, ExprKind kind) {
    if (e.kind == kind) {
      return true;
    }
    for (const auto& a : e.args) {
      if (Mentions(*a, kind)) {
        return true;
      }
    }
    return false;
  }

  void MeasureBody(const std::vector<StmtPtr>& body) {
    for (const auto& s : body) {
      MeasureStmt(*s);
    }
  }

  void MeasureStmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kDecl:
      case StmtKind::kAssignLocal:
        if (s.e0 && Mentions(*s.e0, ExprKind::kPayloadByte)) {
          Count(SynthStmt::kPayloadOp);
        } else if (s.e0 && Mentions(*s.e0, ExprKind::kPacketField)) {
          Count(SynthStmt::kPacketRead);
        } else {
          Count(SynthStmt::kArith);
        }
        break;
      case StmtKind::kAssignPacket:
        Count(SynthStmt::kPacketWrite);
        break;
      case StmtKind::kAssignPayload:
        Count(SynthStmt::kPayloadOp);
        break;
      case StmtKind::kAssignState:
        Count(SynthStmt::kStateScalarOp);
        break;
      case StmtKind::kAssignStateArr:
        Count(SynthStmt::kStateArrayOp);
        break;
      case StmtKind::kIf: {
        Count(SynthStmt::kIf);
        ++ifs_;
        const Expr& c = *s.e0;
        if (c.kind == ExprKind::kCompare && !c.args.empty() &&
            c.args[0]->kind == ExprKind::kBinary && c.args[0]->op == Opcode::kAnd) {
          ++mask_ifs_;  // the (x & mask) cmp idiom (flag tests)
        }
        MeasureBody(s.body);
        MeasureBody(s.else_body);
        break;
      }
      case StmtKind::kFor:
        Count(SynthStmt::kFor);
        MeasureBody(s.body);
        break;
      case StmtKind::kMapFind:
      case StmtKind::kMapErase:
        Count(SynthStmt::kMapFind);
        break;
      case StmtKind::kMapInsert:
        Count(SynthStmt::kMapInsert);
        break;
      case StmtKind::kApiCall:
      case StmtKind::kSend:
      case StmtKind::kDrop:
        Count(SynthStmt::kApiCall);
        break;
      case StmtKind::kReturn:
        break;
    }
    for (const Expr* e : {s.e0.get(), s.e1.get()}) {
      if (e != nullptr) {
        MeasureExpr(*e);
      }
    }
    for (const auto& a : s.args) {
      MeasureExpr(*a);
    }
  }

  SynthProfile profile_;
  int leaves_ = 0;
  int local_leaves_ = 0;
  int ifs_ = 0;
  int mask_ifs_ = 0;
  int muls_ = 0;
  int bigconst_muls_ = 0;
};

// ---- Generation ----

class Generator {
 public:
  Generator(Rng& rng, const SynthOptions& opts, int index)
      : rng_(rng), opts_(opts), p_(opts.profile) {
    prog_.name = "synth_" + std::to_string(index);
  }

  Program Run() {
    if (p_.click_shaped) {
      GenState();
      // Preamble mirroring real elements: header API + field reads.
      prog_.body.push_back(Api("ip_header"));
      if (rng_.NextBool(0.6)) {
        prog_.body.push_back(Api("tcp_header"));
      }
      DeclareLocal(Type::kI32, PktField("ip.src"));
      DeclareLocal(Type::kI32, PktField("ip.dst"));
    } else {
      // Generic mode: seed a few plain locals instead of packet state.
      DeclareLocal(Type::kI32, Lit(rng_.NextBounded(1000)));
      DeclareLocal(Type::kI32, Lit(rng_.NextBounded(1000)));
      DeclareLocal(Type::kI64, Lit(rng_.NextU64() & 0xffff));
    }

    int n = std::max(opts_.min_stmts,
                     static_cast<int>(p_.avg_body_len * (0.5 + rng_.NextDouble())));
    for (int i = 0; i < n; ++i) {
      auto s = GenStmt(0);
      if (s != nullptr) {
        prog_.body.push_back(std::move(s));
      }
    }
    prog_.body.push_back(Send(Lit(0)));
    return std::move(prog_);
  }

 private:
  std::string NewLocal() { return "t" + std::to_string(next_local_++); }

  std::string DeclareLocal(Type t, ExprPtr init) {
    std::string name = NewLocal();
    locals_.emplace_back(name, t);
    prog_.body.push_back(Decl(name, t, std::move(init)));
    return name;
  }

  void GenState() {
    if (!rng_.NextBool(p_.stateful_prob)) {
      return;
    }
    int scalars = static_cast<int>(
        std::round(p_.scalar_state_avg * (0.5 + rng_.NextDouble())));
    for (int i = 0; i < scalars; ++i) {
      StateDecl d;
      d.name = "g" + std::to_string(i);
      d.kind = StateKind::kScalar;
      d.elem_type = rng_.NextBool(p_.scalar_i64_frac) ? Type::kI64 : Type::kI32;
      prog_.state.push_back(d);
    }
    if (rng_.NextBool(p_.array_state_prob)) {
      StateDecl d;
      d.name = "tbl";
      d.kind = StateKind::kArray;
      d.elem_type = Type::kI32;
      d.length = 1u << rng_.NextInt(4, 10);
      prog_.state.push_back(d);
    }
    if (rng_.NextBool(p_.map_state_prob)) {
      StateDecl d;
      d.name = "fmap";
      d.kind = StateKind::kMap;
      d.key_fields = rng_.NextBool(0.5)
                         ? std::vector<Type>{Type::kI32, Type::kI32}
                         : std::vector<Type>{Type::kI32};
      int vals = static_cast<int>(rng_.NextInt(1, 3));
      for (int i = 0; i < vals; ++i) {
        d.value_fields.push_back({"v" + std::to_string(i), Type::kI32});
      }
      d.capacity = 1u << rng_.NextInt(6, 12);
      d.impl = MapImpl::kNicFixedBucket;
      prog_.state.push_back(d);
    }
  }

  const StateDecl* FindStateKind(StateKind k) {
    for (const auto& s : prog_.state) {
      if (s.kind == k) {
        return &s;
      }
    }
    return nullptr;
  }

  std::string WeightedField() {
    const auto& fields = StandardFields();
    if (p_.field_weights.size() == fields.size()) {
      return fields[rng_.NextWeighted(p_.field_weights)].name;
    }
    return fields[rng_.NextBounded(fields.size())].name;
  }

  ExprPtr GenGenericLeaf() {
    if (!locals_.empty() && rng_.NextBool(0.55)) {
      return Local(locals_[rng_.NextBounded(locals_.size())].first);
    }
    return Lit(rng_.NextBounded(1u << rng_.NextBounded(20)));
  }

  ExprPtr GenLeaf() {
    if (!p_.click_shaped) {
      return GenGenericLeaf();
    }
    // Locals dominate leaf expressions in real elements (values are staged
    // through temporaries); honor the measured density.
    if (!locals_.empty() && rng_.NextBool(p_.local_leaf_prob)) {
      return Local(locals_[rng_.NextBounded(locals_.size())].first);
    }
    switch (rng_.NextBounded(3)) {
      case 0:
        return Lit(rng_.NextBounded(256));
      case 1:
        return PktField(WeightedField());
      default: {
        const StateDecl* sc = FindStateKind(StateKind::kScalar);
        if (sc != nullptr) {
          return StateRef(sc->name);
        }
        return PktField(WeightedField());
      }
    }
  }

  ExprPtr GenExpr(int depth) {
    double leaf_prob = depth >= 3 ? 1.0 : 0.4;
    if (rng_.NextBool(leaf_prob)) {
      return GenLeaf();
    }
    Opcode op = OpFromIndex(rng_.NextWeighted(p_.op_weights));
    ExprPtr lhs = GenExpr(depth + 1);
    ExprPtr rhs;
    if (op == Opcode::kShl || op == Opcode::kLShr) {
      rhs = Lit(rng_.NextInt(1, 15));
    } else if (op == Opcode::kUDiv) {
      rhs = Lit(rng_.NextInt(1, 255));
    } else if (op == Opcode::kMul && rng_.NextBool(p_.mul_bigconst_prob)) {
      rhs = Lit(rng_.NextU64() & 0xffffffffULL);  // hashing-style constant
    } else {
      rhs = GenExpr(depth + 1);
    }
    return Bin(op, std::move(lhs), std::move(rhs));
  }

  ExprPtr GenCond() {
    if (rng_.NextBool(p_.mask_test_prob)) {
      // The flag-test idiom: (x & mask) != 0.
      ExprPtr masked = Bin(Opcode::kAnd, GenLeaf(), Lit(1ULL << rng_.NextBounded(8)));
      return Cmp(Opcode::kIcmpNe, std::move(masked), Lit(0));
    }
    static const Opcode kCmps[] = {Opcode::kIcmpEq, Opcode::kIcmpNe, Opcode::kIcmpUlt,
                                   Opcode::kIcmpUgt};
    return Cmp(kCmps[rng_.NextBounded(4)], GenExpr(2), Lit(rng_.NextBounded(256)));
  }

  std::vector<StmtPtr> GenBody(int depth, int len) {
    std::vector<StmtPtr> body;
    for (int i = 0; i < len; ++i) {
      auto s = GenStmt(depth);
      if (s != nullptr) {
        body.push_back(std::move(s));
      }
    }
    if (body.empty()) {
      body.push_back(Assign(EnsureLocal(), GenExpr(2)));
    }
    return body;
  }

  // Guarantees at least one assignable local exists and returns one. Loop
  // variables (named "i...") are excluded: assigning to a live induction
  // variable could make a generated loop effectively unbounded.
  std::string EnsureLocal() {
    std::vector<const std::string*> assignable;
    for (const auto& [name, type] : locals_) {
      if (name.empty() || name[0] != 'i') {
        assignable.push_back(&name);
      }
    }
    if (assignable.empty()) {
      std::string name = NewLocal();
      locals_.emplace_back(name, Type::kI32);
      // Note: declaration goes to the top-level body to dominate all uses.
      prog_.body.insert(prog_.body.begin(), Decl(name, Type::kI32, Lit(0)));
      return name;
    }
    return *assignable[rng_.NextBounded(assignable.size())];
  }

  StmtPtr GenStmt(int depth) {
    SynthStmt kind = static_cast<SynthStmt>(rng_.NextWeighted(p_.stmt_weights));
    if (!p_.click_shaped) {
      // Generic programs know nothing of packets or NF state.
      switch (kind) {
        case SynthStmt::kArith:
        case SynthStmt::kIf:
        case SynthStmt::kFor:
          break;
        default:
          kind = rng_.NextBool(0.6) ? SynthStmt::kArith
                                    : (rng_.NextBool(0.5) ? SynthStmt::kIf : SynthStmt::kFor);
          break;
      }
    }
    switch (kind) {
      case SynthStmt::kArith: {
        // Initializer first: it must not reference the new local itself.
        ExprPtr init = GenExpr(1);
        std::string name = NewLocal();
        locals_.emplace_back(name, Type::kI32);
        return Decl(name, Type::kI32, std::move(init));
      }
      case SynthStmt::kPacketRead: {
        std::string name = NewLocal();
        locals_.emplace_back(name, Type::kI32);
        return Decl(name, Type::kI32, PktField(WeightedField()));
      }
      case SynthStmt::kPacketWrite: {
        static const char* kWritable[] = {"ip.ttl", "ip.tos", "tcp.sport", "tcp.dport",
                                          "ip.dst", "ip.src", "tcp.seq"};
        return AssignPkt(kWritable[rng_.NextBounded(7)], GenExpr(1));
      }
      case SynthStmt::kStateScalarOp: {
        const StateDecl* sc = FindStateKind(StateKind::kScalar);
        if (sc == nullptr) {
          return Assign(EnsureLocal(), GenExpr(1));
        }
        return AssignState(sc->name,
                           Bin(Opcode::kAdd, StateRef(sc->name), GenExpr(2)));
      }
      case SynthStmt::kStateArrayOp: {
        const StateDecl* arr = FindStateKind(StateKind::kArray);
        if (arr == nullptr) {
          return Assign(EnsureLocal(), GenExpr(1));
        }
        ExprPtr idx = Bin(Opcode::kAnd, GenExpr(2), Lit(arr->length - 1));
        return AssignStateAt(arr->name, std::move(idx),
                             Bin(Opcode::kAdd, StateAt(arr->name, Bin(Opcode::kAnd, GenExpr(2),
                                                                      Lit(arr->length - 1))),
                                 Lit(1)));
      }
      case SynthStmt::kIf: {
        if (depth >= opts_.max_depth) {
          return Assign(EnsureLocal(), GenExpr(1));
        }
        // Generate strictly in checker traversal order (cond, then, else) so
        // locals declared in one part are never referenced by an earlier one.
        ExprPtr cond = GenCond();
        int len = 1 + static_cast<int>(rng_.NextBounded(3));
        std::vector<StmtPtr> then_body = GenBody(depth + 1, len);
        std::vector<StmtPtr> else_body;
        if (rng_.NextBool(0.4)) {
          else_body = GenBody(depth + 1, 1);
        }
        return If(std::move(cond), std::move(then_body), std::move(else_body));
      }
      case SynthStmt::kFor: {
        if (depth >= opts_.max_depth) {
          return Assign(EnsureLocal(), GenExpr(1));
        }
        std::string var = "i" + std::to_string(next_local_++);
        locals_.emplace_back(var, Type::kI32);
        return For(var, Lit(0), Lit(rng_.NextInt(2, 12)), GenBody(depth + 1, 2));
      }
      case SynthStmt::kMapFind: {
        const StateDecl* map = FindStateKind(StateKind::kMap);
        if (map == nullptr) {
          return Assign(EnsureLocal(), GenExpr(1));
        }
        std::vector<ExprPtr> keys;
        for (size_t k = 0; k < map->key_fields.size(); ++k) {
          keys.push_back(k == 0 ? PktField("ip.src") : PktField("ip.dst"));
        }
        std::string found = "f" + std::to_string(next_local_++);
        std::vector<std::string> outs;
        for (size_t v = 0; v < map->value_fields.size() && v < 2; ++v) {
          std::string out = "o" + std::to_string(next_local_++);
          locals_.emplace_back(out, map->value_fields[v].type);
          outs.push_back(out);
        }
        locals_.emplace_back(found, Type::kI8);
        return MapFind(map->name, std::move(keys), found, std::move(outs));
      }
      case SynthStmt::kMapInsert: {
        const StateDecl* map = FindStateKind(StateKind::kMap);
        if (map == nullptr) {
          return Assign(EnsureLocal(), GenExpr(1));
        }
        std::vector<ExprPtr> keys;
        for (size_t k = 0; k < map->key_fields.size(); ++k) {
          keys.push_back(k == 0 ? PktField("ip.src") : PktField("ip.dst"));
        }
        std::vector<ExprPtr> vals;
        for (size_t v = 0; v < map->value_fields.size(); ++v) {
          vals.push_back(GenExpr(2));
        }
        return MapInsert(map->name, std::move(keys), std::move(vals));
      }
      case SynthStmt::kApiCall: {
        static const char* kApis[] = {"checksum_update", "tcp_header", "ip_header"};
        return Api(kApis[rng_.NextBounded(3)]);
      }
      case SynthStmt::kPayloadOp: {
        ExprPtr idx = Bin(Opcode::kAnd, GenExpr(2), Lit(63));
        ExprPtr mix = Bin(Opcode::kXor, PayloadAt(std::move(idx)), GenExpr(2));
        std::string name = NewLocal();
        locals_.emplace_back(name, Type::kI32);
        return Decl(name, Type::kI32, std::move(mix));
      }
    }
    return nullptr;
  }

  Rng& rng_;
  const SynthOptions& opts_;
  const SynthProfile& p_;
  Program prog_;
  std::vector<std::pair<std::string, Type>> locals_;
  int next_local_ = 0;
};

}  // namespace

SynthProfile MeasureCorpus(const std::vector<const Program*>& corpus) {
  return Measurer().Run(corpus);
}

SynthProfile UniformProfile() {
  SynthProfile p;
  p.field_weights.assign(StandardFields().size(), 1.0);
  p.avg_body_len = 10;
  p.scalar_state_avg = 1.5;
  p.array_state_prob = 0.5;
  p.map_state_prob = 0.5;
  p.stateful_prob = 0.6;
  return p;
}

SynthProfile GenericProfile() {
  SynthProfile p = UniformProfile();
  p.click_shaped = false;
  p.stateful_prob = 0;
  p.avg_body_len = 12;
  return p;
}

Program SynthesizeProgram(Rng& rng, const SynthOptions& opts, int index) {
  return Generator(rng, opts, index).Run();
}

std::vector<Program> SynthesizeCorpus(size_t n, const SynthOptions& opts, uint64_t seed) {
  std::vector<Program> out;
  out.reserve(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(SynthesizeProgram(rng, opts, static_cast<int>(i)));
  }
  return out;
}

void SaveSynthProfile(BinWriter& w, const SynthProfile& p) {
  w.U16(0x5350);  // "SP"
  w.VecF64(p.stmt_weights);
  w.VecF64(p.op_weights);
  w.VecF64(p.field_weights);
  w.F64(p.avg_body_len);
  w.F64(p.nest_prob);
  w.F64(p.scalar_state_avg);
  w.F64(p.array_state_prob);
  w.F64(p.map_state_prob);
  w.F64(p.stateful_prob);
  w.F64(p.scalar_i64_frac);
  w.F64(p.local_leaf_prob);
  w.F64(p.mask_test_prob);
  w.F64(p.mul_bigconst_prob);
  w.Bool(p.click_shaped);
}

bool LoadSynthProfile(BinReader& r, SynthProfile* out) {
  if (r.U16() != 0x5350) {
    r.Fail("synth profile: bad section tag");
    return false;
  }
  SynthProfile p;
  r.VecF64(&p.stmt_weights);
  r.VecF64(&p.op_weights);
  r.VecF64(&p.field_weights);
  p.avg_body_len = r.F64();
  p.nest_prob = r.F64();
  p.scalar_state_avg = r.F64();
  p.array_state_prob = r.F64();
  p.map_state_prob = r.F64();
  p.stateful_prob = r.F64();
  p.scalar_i64_frac = r.F64();
  p.local_leaf_prob = r.F64();
  p.mask_test_prob = r.F64();
  p.mul_bigconst_prob = r.F64();
  p.click_shaped = r.Bool();
  if (!r.ok()) {
    return false;
  }
  if (p.stmt_weights.size() != static_cast<size_t>(kNumSynthStmts) ||
      p.op_weights.size() != 9) {
    r.Fail("synth profile: unexpected weight vector dimensions");
    return false;
  }
  *out = std::move(p);
  return true;
}

}  // namespace clara
