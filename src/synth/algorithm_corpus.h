// Labelled corpus generator for accelerator-algorithm identification
// (paper §4.1). Produces many implementation variants of CRC checksums,
// longest-prefix-match trie walks, and AES-style round functions — differing
// in unrolling, table use, widths, and incidental surrounding code — plus
// "none" programs with no accelerator-eligible algorithm.
#ifndef SRC_SYNTH_ALGORITHM_CORPUS_H_
#define SRC_SYNTH_ALGORITHM_CORPUS_H_

#include <vector>

#include "src/lang/ast.h"
#include "src/util/rng.h"

namespace clara {

// Class labels (the SVM's output space). kNone must stay last.
enum class AccelClass : int { kCrc = 0, kLpm = 1, kAes = 2, kNone = 3 };
inline constexpr int kNumAccelClasses = 4;

const char* AccelClassName(AccelClass c);

struct LabeledProgram {
  Program program;
  AccelClass label;
};

// CRC variants: bitwise vs table-driven, CRC16/CRC32 polynomials, different
// unroll factors and byte orders.
Program SynthCrcVariant(Rng& rng, int index);

// LPM variants: unibit trie walks over a flattened node array (the pointer-
// chasing signature), varying node layouts and walk bounds.
Program SynthLpmVariant(Rng& rng, int index);

// AES-round-style variants: s-box substitutions + xor mixing over payload.
Program SynthAesVariant(Rng& rng, int index);

// A balanced labelled corpus of `per_class` samples per class; "none"
// samples come from the general synthesizer.
std::vector<LabeledProgram> BuildAlgorithmCorpus(size_t per_class, uint64_t seed);

}  // namespace clara

#endif  // SRC_SYNTH_ALGORITHM_CORPUS_H_
