// Distribution-guided NF program synthesis (paper §3.2 "data synthesis").
//
// Clara customizes a YarpGen-style random program generator so that emitted
// programs match the statistical profile of real Click elements: statement-
// kind mix, operator mix, header-field popularity, state shapes, and control
// nesting. MeasureCorpus extracts that profile from real elements;
// UniformProfile is the baseline synthesizer that ignores it (Table 1's
// comparison). Synthesized programs always type-check and lower.
#ifndef SRC_SYNTH_SYNTH_H_
#define SRC_SYNTH_SYNTH_H_

#include <vector>

#include "src/lang/ast.h"
#include "src/util/rng.h"

namespace clara {

class BinWriter;
class BinReader;

// Statement categories tracked by the profile (coarser than StmtKind).
enum class SynthStmt : uint8_t {
  kArith = 0,      // local decl/assign with an arithmetic expression
  kPacketRead,     // local <- header field expression
  kPacketWrite,    // header field <- expression
  kStateScalarOp,  // counter/scalar update
  kStateArrayOp,   // array read/update
  kIf,
  kFor,
  kMapFind,
  kMapInsert,
  kApiCall,
  kPayloadOp,
};
inline constexpr int kNumSynthStmts = 11;

struct SynthProfile {
  std::vector<double> stmt_weights = std::vector<double>(kNumSynthStmts, 1.0);
  // Binary operator mix: add, sub, mul, and, or, xor, shl, lshr (+rare udiv).
  std::vector<double> op_weights = std::vector<double>(9, 1.0);
  std::vector<double> field_weights;  // per standard packet field
  double avg_body_len = 8;
  double nest_prob = 0.35;       // chance a generated if/for nests further
  double scalar_state_avg = 2;   // expected scalar state vars
  double array_state_prob = 0.5;
  double map_state_prob = 0.5;
  double stateful_prob = 0.7;    // program declares any state at all
  // Fine-grained idiom statistics (measured from the corpus):
  double scalar_i64_frac = 0.5;   // fraction of scalar state that is 64-bit
  double local_leaf_prob = 0.4;   // leaf expressions that re-read a local
  double mask_test_prob = 0.3;    // if-conditions of the (x & mask) != 0 shape
  double mul_bigconst_prob = 0.3; // multiplies by >16-bit constants (hashing)
  // When false, generate generic compute programs (vanilla-YarpGen style):
  // no packet idioms, no NF state — the Table 1 baseline that ignores
  // Click's AST distribution entirely.
  bool click_shaped = true;
};

// Extracts the statistical profile of a corpus of real NF programs.
SynthProfile MeasureCorpus(const std::vector<const Program*>& corpus);

// The guidance-free baseline (uniform choices everywhere, still NF-shaped).
SynthProfile UniformProfile();

// The Table 1 baseline: a generic program generator that ignores Click's
// AST distribution altogether (plain arithmetic/branch/loop programs).
SynthProfile GenericProfile();

// Artifact serialization (SynthProfile is a plain struct, so free functions).
void SaveSynthProfile(BinWriter& w, const SynthProfile& p);
bool LoadSynthProfile(BinReader& r, SynthProfile* out);

struct SynthOptions {
  SynthProfile profile;
  int min_stmts = 4;
  int max_depth = 3;
};

// Generates one random, well-formed NF program.
Program SynthesizeProgram(Rng& rng, const SynthOptions& opts, int index);

// Convenience: generates `n` programs with seeds derived from `seed`.
std::vector<Program> SynthesizeCorpus(size_t n, const SynthOptions& opts, uint64_t seed);

}  // namespace clara

#endif  // SRC_SYNTH_SYNTH_H_
