#include "src/synth/algorithm_corpus.h"

#include <string>

#include "src/synth/synth.h"

namespace clara {

const char* AccelClassName(AccelClass c) {
  switch (c) {
    case AccelClass::kCrc: return "CRC";
    case AccelClass::kLpm: return "LPM";
    case AccelClass::kAes: return "AES";
    case AccelClass::kNone: return "none";
  }
  return "?";
}

Program SynthCrcVariant(Rng& rng, int index) {
  Program p;
  p.name = "crc_variant_" + std::to_string(index);
  bool table_driven = rng.NextBool(0.4);
  bool crc32 = rng.NextBool(0.6);
  uint64_t poly = crc32 ? 0xedb88320ULL : 0x1021ULL;
  int len = static_cast<int>(rng.NextInt(8, 48));

  if (table_driven) {
    StateDecl tbl;
    tbl.name = "crc_table";
    tbl.kind = StateKind::kArray;
    tbl.elem_type = Type::kI32;
    tbl.length = 256;
    p.state.push_back(tbl);
  }

  p.body.push_back(Api("ip_header"));
  p.body.push_back(Decl("crc", Type::kI32, Lit(crc32 ? 0xffffffffULL : 0xffffULL)));
  std::vector<StmtPtr> outer;
  if (table_driven) {
    // crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xff]
    ExprPtr idx = Bin(Opcode::kAnd,
                      Bin(Opcode::kXor, Local("crc"), PayloadAt(Local("i"))), Lit(255));
    outer.push_back(Assign(
        "crc", Bin(Opcode::kXor, Bin(Opcode::kLShr, Local("crc"), Lit(8)),
                   StateAt("crc_table", std::move(idx)))));
  } else {
    // Bitwise: xor in the byte, then 8 shift/conditional-xor rounds (some
    // variants unroll 2 or 4 rounds per loop iteration).
    outer.push_back(Assign("crc", Bin(Opcode::kXor, Local("crc"), PayloadAt(Local("i")))));
    int unroll = rng.NextBool(0.5) ? 8 : (rng.NextBool(0.5) ? 4 : 2);
    std::vector<StmtPtr> rounds;
    for (int r = 0; r < unroll; ++r) {
      std::vector<StmtPtr> then_body;
      then_body.push_back(Assign(
          "crc", Bin(Opcode::kXor, Bin(Opcode::kLShr, Local("crc"), Lit(1)), Lit(poly))));
      std::vector<StmtPtr> else_body;
      else_body.push_back(Assign("crc", Bin(Opcode::kLShr, Local("crc"), Lit(1))));
      rounds.push_back(If(Cmp(Opcode::kIcmpNe, Bin(Opcode::kAnd, Local("crc"), Lit(1)), Lit(0)),
                          std::move(then_body), std::move(else_body)));
    }
    if (unroll < 8) {
      outer.push_back(For("b", Lit(0), Lit(8 / unroll), std::move(rounds)));
    } else {
      for (auto& r : rounds) {
        outer.push_back(std::move(r));
      }
    }
  }
  p.body.push_back(For("i", Lit(0), Lit(static_cast<uint64_t>(len)), std::move(outer)));
  // Final xor-out and a write-back, as real checksums do.
  p.body.push_back(Assign("crc", Bin(Opcode::kXor, Local("crc"),
                                     Lit(crc32 ? 0xffffffffULL : 0ULL))));
  p.body.push_back(AssignPkt("tcp.csum", Bin(Opcode::kAnd, Local("crc"), Lit(0xffff))));
  p.body.push_back(Send(Lit(0)));
  return p;
}

Program SynthLpmVariant(Rng& rng, int index) {
  Program p;
  p.name = "lpm_variant_" + std::to_string(index);
  // Node layout variants: 3-word (left/right/rule) or 4-word (+prefix len).
  int words = rng.NextBool(0.5) ? 3 : 4;
  int depth = static_cast<int>(rng.NextInt(16, 32));
  StateDecl trie;
  trie.name = "trie";
  trie.kind = StateKind::kArray;
  trie.elem_type = Type::kI32;
  trie.length = 1u << rng.NextInt(8, 12);
  // Populate a random but well-formed trie: node n's children point to
  // later nodes so walks terminate, and some nodes carry rules. This keeps
  // the runtime pointer-chasing pattern alive for workload profiling.
  {
    uint32_t nodes = trie.length / words;
    trie.init.assign(trie.length, 0);
    for (uint32_t n = 0; n < nodes; ++n) {
      for (int side = 0; side < 2; ++side) {
        uint32_t child = 2 * n + 1 + static_cast<uint32_t>(side);
        if (child < nodes && rng.NextBool(0.8)) {
          trie.init[n * words + side] = child + 1;
        }
      }
      if (rng.NextBool(0.25)) {
        trie.init[n * words + (words - 1)] = rng.NextBounded(15) + 1;
      }
    }
  }
  p.state.push_back(trie);

  p.body.push_back(Api("ip_header"));
  p.body.push_back(Decl("addr", Type::kI32, PktField("ip.dst")));
  p.body.push_back(Decl("node", Type::kI32, Lit(0)));
  p.body.push_back(Decl("best", Type::kI32, Lit(0)));
  p.body.push_back(Decl("stop", Type::kI8, Lit(0)));

  // The pointer-chasing walk: child index loaded from the current node.
  std::vector<StmtPtr> loop;
  {
    std::vector<StmtPtr> live;
    // rule = trie[node*words + (words-1)]
    live.push_back(Decl("rule", Type::kI32,
                        StateAt("trie", Bin(Opcode::kAdd,
                                            Bin(Opcode::kMul, Local("node"),
                                                Lit(static_cast<uint64_t>(words))),
                                            Lit(static_cast<uint64_t>(words - 1))))));
    std::vector<StmtPtr> save;
    save.push_back(Assign("best", Local("rule")));
    live.push_back(If(Cmp(Opcode::kIcmpNe, Local("rule"), Lit(0)), std::move(save)));
    // bit = (addr >> (31 - d)) & 1
    live.push_back(Decl("bit", Type::kI32,
                        Bin(Opcode::kAnd,
                            Bin(Opcode::kLShr, Local("addr"),
                                Bin(Opcode::kSub, Lit(31), Local("d"))),
                            Lit(1))));
    // next = trie[node*words + bit]
    live.push_back(Decl("next", Type::kI32,
                        StateAt("trie", Bin(Opcode::kAdd,
                                            Bin(Opcode::kMul, Local("node"),
                                                Lit(static_cast<uint64_t>(words))),
                                            Local("bit")))));
    std::vector<StmtPtr> dead_end;
    dead_end.push_back(Assign("stop", Lit(1)));
    std::vector<StmtPtr> follow;
    follow.push_back(Assign("node", Bin(Opcode::kSub, Local("next"), Lit(1))));
    live.push_back(If(Cmp(Opcode::kIcmpEq, Local("next"), Lit(0)), std::move(dead_end),
                      std::move(follow)));
    loop.push_back(If(Cmp(Opcode::kIcmpEq, Local("stop"), Lit(0)), std::move(live)));
  }
  p.body.push_back(For("d", Lit(0), Lit(static_cast<uint64_t>(depth)), std::move(loop)));
  std::vector<StmtPtr> hit;
  hit.push_back(Send(Bin(Opcode::kAnd, Local("best"), Lit(15))));
  std::vector<StmtPtr> miss;
  miss.push_back(Drop());
  p.body.push_back(
      If(Cmp(Opcode::kIcmpNe, Local("best"), Lit(0)), std::move(hit), std::move(miss)));
  return p;
}

Program SynthAesVariant(Rng& rng, int index) {
  Program p;
  p.name = "aes_variant_" + std::to_string(index);
  StateDecl sbox;
  sbox.name = "sbox";
  sbox.kind = StateKind::kArray;
  sbox.elem_type = Type::kI8;
  sbox.length = 256;
  p.state.push_back(sbox);
  StateDecl rk;
  rk.name = "round_key";
  rk.kind = StateKind::kArray;
  rk.elem_type = Type::kI32;
  rk.length = 64;
  p.state.push_back(rk);

  int rounds = static_cast<int>(rng.NextInt(4, 10));
  int block = rng.NextBool(0.5) ? 16 : 8;
  p.body.push_back(Api("ip_header"));
  p.body.push_back(Decl("acc", Type::kI32, Lit(0)));
  std::vector<StmtPtr> inner;
  // b = sbox[payload[i] ^ (round_key[r] & 0xff)]; acc = (acc << 1) ^ b
  inner.push_back(Decl("b", Type::kI8,
                       StateAt("sbox", Bin(Opcode::kXor, PayloadAt(Local("i")),
                                           Bin(Opcode::kAnd, StateAt("round_key", Local("r")),
                                               Lit(255))))));
  inner.push_back(AssignPayload(Local("i"), Bin(Opcode::kXor, Local("b"),
                                                PayloadAt(Local("i")))));
  inner.push_back(Assign("acc", Bin(Opcode::kXor, Bin(Opcode::kShl, Local("acc"), Lit(1)),
                                    Local("b"))));
  std::vector<StmtPtr> round;
  round.push_back(For("i", Lit(0), Lit(static_cast<uint64_t>(block)), std::move(inner)));
  p.body.push_back(For("r", Lit(0), Lit(static_cast<uint64_t>(rounds)), std::move(round)));
  p.body.push_back(Send(Lit(0)));
  return p;
}

std::vector<LabeledProgram> BuildAlgorithmCorpus(size_t per_class, uint64_t seed) {
  std::vector<LabeledProgram> corpus;
  Rng rng(seed);
  for (size_t i = 0; i < per_class; ++i) {
    corpus.push_back({SynthCrcVariant(rng, static_cast<int>(i)), AccelClass::kCrc});
    corpus.push_back({SynthLpmVariant(rng, static_cast<int>(i)), AccelClass::kLpm});
    corpus.push_back({SynthAesVariant(rng, static_cast<int>(i)), AccelClass::kAes});
  }
  SynthOptions opts;
  opts.profile = UniformProfile();
  // "none" samples: general programs without accelerator algorithms.
  for (size_t i = 0; i < per_class; ++i) {
    corpus.push_back({SynthesizeProgram(rng, opts, static_cast<int>(1000 + i)),
                      AccelClass::kNone});
  }
  return corpus;
}

}  // namespace clara
