#include "src/nf/checksum.h"

#include <array>

namespace clara {

uint16_t InternetChecksum(const uint8_t* data, size_t len) {
  uint32_t sum = 0;
  size_t i = 0;
  for (; i + 1 < len; i += 2) {
    sum += static_cast<uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < len) {
    sum += static_cast<uint32_t>(data[i]) << 8;
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

uint32_t Crc32Bitwise(const uint8_t* data, size_t len) {
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    crc ^= data[i];
    for (int b = 0; b < 8; ++b) {
      crc = (crc >> 1) ^ (0xedb88320u & (0u - (crc & 1u)));
    }
  }
  return ~crc;
}

namespace {

const std::array<uint32_t, 256>& Crc32TableData() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int b = 0; b < 8; ++b) {
        c = (c >> 1) ^ (0xedb88320u & (0u - (c & 1u)));
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32Table(const uint8_t* data, size_t len) {
  const auto& table = Crc32TableData();
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xff];
  }
  return ~crc;
}

uint16_t Crc16Ccitt(const uint8_t* data, size_t len) {
  uint16_t crc = 0xffff;
  for (size_t i = 0; i < len; ++i) {
    crc ^= static_cast<uint16_t>(data[i]) << 8;
    for (int b = 0; b < 8; ++b) {
      if (crc & 0x8000) {
        crc = static_cast<uint16_t>((crc << 1) ^ 0x1021);
      } else {
        crc = static_cast<uint16_t>(crc << 1);
      }
    }
  }
  return crc;
}

void Rc4Apply(const uint8_t* key, size_t key_len, uint8_t* data, size_t len) {
  uint8_t s[256];
  for (int i = 0; i < 256; ++i) {
    s[i] = static_cast<uint8_t>(i);
  }
  uint8_t j = 0;
  for (int i = 0; i < 256; ++i) {
    j = static_cast<uint8_t>(j + s[i] + key[i % key_len]);
    std::swap(s[i], s[j]);
  }
  uint8_t x = 0;
  uint8_t y = 0;
  for (size_t n = 0; n < len; ++n) {
    x = static_cast<uint8_t>(x + 1);
    y = static_cast<uint8_t>(y + s[x]);
    std::swap(s[x], s[y]);
    data[n] ^= s[static_cast<uint8_t>(s[x] + s[y])];
  }
}

}  // namespace clara
