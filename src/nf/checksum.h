// Reference implementations of the checksum/CRC/cipher algorithms that appear
// inside NF programs. These define the ground-truth semantics that the lang
// interpreter (running the AST form of the same algorithms) must reproduce,
// and they are the software paths that the NIC's CRC/checksum accelerators
// replace.
#ifndef SRC_NF_CHECKSUM_H_
#define SRC_NF_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace clara {

// Internet one's-complement checksum over a byte range (RFC 1071).
uint16_t InternetChecksum(const uint8_t* data, size_t len);

// Bitwise (table-free) CRC32, reflected, polynomial 0xEDB88320. This is the
// "procedural" implementation style that Clara's algorithm identification
// learns to recognize.
uint32_t Crc32Bitwise(const uint8_t* data, size_t len);

// Table-driven CRC32 over the same polynomial; must agree with Crc32Bitwise.
// Represents an alternative implementation idiom of the same algorithm.
uint32_t Crc32Table(const uint8_t* data, size_t len);

// CRC16/CCITT (poly 0x1021, init 0xFFFF), bitwise.
uint16_t Crc16Ccitt(const uint8_t* data, size_t len);

// RC4 stream cipher (used by the wepdecap element). Encrypt == decrypt.
// `key`/`key_len` seed the KSA; `data` is transformed in place.
void Rc4Apply(const uint8_t* key, size_t key_len, uint8_t* data, size_t len);

}  // namespace clara

#endif  // SRC_NF_CHECKSUM_H_
