#include "src/nf/packet.h"

#include <cstdio>

namespace clara {

std::string IpToString(uint32_t ip) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip >> 24) & 0xff, (ip >> 16) & 0xff,
                (ip >> 8) & 0xff, ip & 0xff);
  return buf;
}

uint16_t Ipv4HeaderChecksum(const Packet& pkt) {
  // Serialize the logical IPv4 header (checksum field zeroed) and fold.
  uint32_t sum = 0;
  auto add16 = [&sum](uint16_t v) { sum += v; };
  add16(static_cast<uint16_t>((0x4u << 12) | (pkt.ip_ihl << 8) | pkt.ip_tos));
  add16(pkt.ip_len);
  add16(0);  // identification
  add16(0);  // flags/fragment
  add16(static_cast<uint16_t>((pkt.ip_ttl << 8) | pkt.ip_proto));
  add16(0);  // checksum field itself
  add16(static_cast<uint16_t>(pkt.src_ip >> 16));
  add16(static_cast<uint16_t>(pkt.src_ip & 0xffff));
  add16(static_cast<uint16_t>(pkt.dst_ip >> 16));
  add16(static_cast<uint16_t>(pkt.dst_ip & 0xffff));
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

}  // namespace clara
