// Longest-prefix-match table backed by a binary (unibit) trie.
//
// The trie is stored in a flat node array so the same structure can be
// (a) used directly by C++ code, and (b) exported as a state array that the
// lang-level iplookup element walks with a bounded pointer-chasing loop —
// the distinctive access pattern Clara's algorithm identification keys on.
//
// Node layout in the exported array (3 u32 words per node):
//   [3n + 0] left-child index + 1  (0 = none)
//   [3n + 1] right-child index + 1 (0 = none)
//   [3n + 2] next-hop + 1          (0 = no rule terminates here)
#ifndef SRC_NF_LPM_H_
#define SRC_NF_LPM_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace clara {

class LpmTable {
 public:
  LpmTable();

  // Inserts `prefix`/`prefix_len` mapping to `next_hop`. Later inserts of the
  // same prefix overwrite.
  void Insert(uint32_t prefix, int prefix_len, uint32_t next_hop);

  // Longest-prefix lookup; nullopt when no prefix covers `addr`.
  std::optional<uint32_t> Lookup(uint32_t addr) const;

  // Number of trie nodes (including the root).
  size_t node_count() const { return nodes_.size(); }
  size_t rule_count() const { return rule_count_; }

  // Nodes touched by the last Lookup call (trie depth walked); profiling aid.
  int last_lookup_steps() const { return last_lookup_steps_; }

  // Flattened node array in the layout documented above, for embedding as NF
  // state. Size = 3 * node_count().
  std::vector<uint32_t> Flatten() const;

 private:
  struct Node {
    int32_t child[2] = {-1, -1};
    int32_t next_hop = -1;  // -1 = no rule terminates here
  };

  std::vector<Node> nodes_;
  size_t rule_count_ = 0;
  mutable int last_lookup_steps_ = 0;
};

// Performs the same longest-prefix lookup against a flattened node array, the
// exact algorithm the lang-level element encodes. Returns next-hop or nullopt.
std::optional<uint32_t> LpmLookupFlat(const std::vector<uint32_t>& flat, uint32_t addr,
                                      int max_depth = 32);

}  // namespace clara

#endif  // SRC_NF_LPM_H_
