// Count-min sketch used by the cmsketch element and by heavy-hitter
// detection. Hash rows use CRC-style mixing so that the lang-level element
// (which computes the same row hashes procedurally) matches this reference.
#ifndef SRC_NF_SKETCH_H_
#define SRC_NF_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace clara {

class CountMinSketch {
 public:
  CountMinSketch(size_t rows, size_t cols);

  void Update(uint64_t key, uint32_t delta = 1);
  uint32_t Estimate(uint64_t key) const;
  void Clear();

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  // Row hash for `key`, identical to the one the lang element computes:
  // multiply-xor mixing seeded per row. Exposed so both stay in lockstep.
  static uint64_t RowHash(uint64_t key, uint32_t row);

 private:
  size_t rows_;
  size_t cols_;
  std::vector<uint32_t> counters_;  // rows_ x cols_, row-major
};

}  // namespace clara

#endif  // SRC_NF_SKETCH_H_
