// Byte-keyed hash maps in two implementations:
//
//   HostByteMap — Click-style: open addressing with linear probing and elastic
//   growth at runtime (rehash on load factor), mirroring Click's HashMap.
//
//   NicByteMap — the "reverse-ported" (paper §3.3) baremetal variant: memory
//   is pre-allocated at construction, collisions resolve inside a fixed set of
//   bucket slots, and erase only marks entries invalid (no shrinking). This is
//   the control-flow-symmetric implementation Clara substitutes for Click's
//   HashMap when analyzing the SmartNIC form of an NF.
//
// Both count the number of backing-array slot touches so that trace-driven
// profiling (interpreter) observes the true memory-access behaviour of the
// chosen implementation.
#ifndef SRC_NF_BYTE_MAP_H_
#define SRC_NF_BYTE_MAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace clara {

// FNV-1a over a byte range. The same hash is used by host and NIC variants so
// lookup keys land comparably; the NIC additionally offers CRC-based hashing
// through its accelerator (modelled in src/nic).
uint64_t FnvHash(const uint8_t* data, size_t len);

// Access statistics for profiling.
struct MapStats {
  uint64_t finds = 0;
  uint64_t inserts = 0;
  uint64_t erases = 0;
  uint64_t slot_touches = 0;  // backing-array slot reads+writes
  uint64_t failed_inserts = 0;

  void Reset() { *this = MapStats{}; }
};

// Common interface so the interpreter can run the same NF against either
// implementation.
class ByteMap {
 public:
  ByteMap(size_t key_bytes, size_t value_bytes) : key_bytes_(key_bytes), value_bytes_(value_bytes) {}
  virtual ~ByteMap() = default;

  // Returns true and fills `value_out` (value_bytes long) on hit.
  virtual bool Find(const uint8_t* key, uint8_t* value_out) = 0;

  // Inserts or overwrites. Returns false if the structure is full (NIC only).
  virtual bool Insert(const uint8_t* key, const uint8_t* value) = 0;

  // Removes the entry if present; returns whether it was present.
  virtual bool Erase(const uint8_t* key) = 0;

  virtual size_t size() const = 0;
  virtual size_t capacity() const = 0;
  virtual void Clear() = 0;

  size_t key_bytes() const { return key_bytes_; }
  size_t value_bytes() const { return value_bytes_; }

  const MapStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 protected:
  size_t key_bytes_;
  size_t value_bytes_;
  MapStats stats_;
};

// Click-style elastic map: linear probing, grows at 70% load.
class HostByteMap : public ByteMap {
 public:
  HostByteMap(size_t key_bytes, size_t value_bytes, size_t initial_capacity = 16);

  bool Find(const uint8_t* key, uint8_t* value_out) override;
  bool Insert(const uint8_t* key, const uint8_t* value) override;
  bool Erase(const uint8_t* key) override;
  size_t size() const override { return size_; }
  size_t capacity() const override { return slots_; }
  void Clear() override;

 private:
  struct SlotHeader {
    uint8_t state;  // 0 empty, 1 used, 2 tombstone
  };

  size_t SlotIndex(uint64_t hash) const { return hash & (slots_ - 1); }
  uint8_t* KeyAt(size_t i) { return storage_.data() + i * stride_; }
  uint8_t* ValueAt(size_t i) { return storage_.data() + i * stride_ + key_bytes_; }
  void Grow();
  // Probes for `key`; returns the slot holding it, or the first insertable
  // slot if absent (match=false).
  size_t Probe(const uint8_t* key, bool* match);

  size_t slots_;
  size_t stride_;
  size_t size_ = 0;
  std::vector<uint8_t> storage_;
  std::vector<SlotHeader> headers_;
};

// Baremetal-NIC-style map: `buckets` buckets of `slots_per_bucket` entries,
// fixed at construction. A colliding insert scans only its bucket.
class NicByteMap : public ByteMap {
 public:
  NicByteMap(size_t key_bytes, size_t value_bytes, size_t buckets, size_t slots_per_bucket = 4);

  bool Find(const uint8_t* key, uint8_t* value_out) override;
  bool Insert(const uint8_t* key, const uint8_t* value) override;
  bool Erase(const uint8_t* key) override;
  size_t size() const override { return size_; }
  size_t capacity() const override { return buckets_ * slots_per_bucket_; }
  void Clear() override;

  size_t buckets() const { return buckets_; }
  size_t slots_per_bucket() const { return slots_per_bucket_; }

 private:
  size_t BucketOf(uint64_t hash) const { return hash % buckets_; }
  uint8_t* KeyAt(size_t i) { return storage_.data() + i * stride_; }
  uint8_t* ValueAt(size_t i) { return storage_.data() + i * stride_ + key_bytes_; }

  size_t buckets_;
  size_t slots_per_bucket_;
  size_t stride_;
  size_t size_ = 0;
  std::vector<uint8_t> storage_;
  std::vector<uint8_t> valid_;  // per slot: 0 invalid, 1 valid
};

// Click-style Vector (elastic) vs NIC-style fixed vector with invalidation
// semantics (paper §3.3: "Vector.delete() ... only marks entries as invalid").
class NicFixedVector {
 public:
  NicFixedVector(size_t elem_bytes, size_t capacity);

  // Appends into the first invalid slot; false when full.
  bool PushBack(const uint8_t* elem);
  // Marks slot i invalid. Does not compact.
  void Invalidate(size_t index);
  bool IsValid(size_t index) const { return valid_[index] != 0; }
  const uint8_t* At(size_t index) const { return storage_.data() + index * elem_bytes_; }
  uint8_t* MutableAt(size_t index) { return storage_.data() + index * elem_bytes_; }

  size_t capacity() const { return capacity_; }
  size_t valid_count() const { return valid_count_; }
  uint64_t slot_touches() const { return slot_touches_; }

 private:
  size_t elem_bytes_;
  size_t capacity_;
  size_t valid_count_ = 0;
  uint64_t slot_touches_ = 0;
  std::vector<uint8_t> storage_;
  std::vector<uint8_t> valid_;
};

}  // namespace clara

#endif  // SRC_NF_BYTE_MAP_H_
