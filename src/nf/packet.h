// Packet model shared by the workload generator, the NF interpreter, and the
// NF element suite.
//
// This plays the role of Click's Packet/WritablePacket: a parsed view of the
// Ethernet/IPv4/TCP-or-UDP headers plus a bounded payload prefix (enough for
// DPI / CRC-style elements that touch payload bytes).
#ifndef SRC_NF_PACKET_H_
#define SRC_NF_PACKET_H_

#include <array>
#include <cstdint>
#include <string>

namespace clara {

inline constexpr int kMaxPayloadPrefix = 64;

// TCP flag bits (subset).
inline constexpr uint8_t kTcpFin = 0x01;
inline constexpr uint8_t kTcpSyn = 0x02;
inline constexpr uint8_t kTcpRst = 0x04;
inline constexpr uint8_t kTcpPsh = 0x08;
inline constexpr uint8_t kTcpAck = 0x10;

inline constexpr uint8_t kProtoTcp = 6;
inline constexpr uint8_t kProtoUdp = 17;

// A parsed packet. Field layout mirrors the header fields NF programs read
// and write; the interpreter exposes these under names like "ip.src" or
// "tcp.sport" (see lang/packet_fields).
struct Packet {
  // Ethernet.
  uint16_t eth_type = 0x0800;

  // IPv4.
  uint8_t ip_ihl = 5;        // header length in 32-bit words
  uint8_t ip_tos = 0;
  uint16_t ip_len = 0;       // total length in bytes
  uint8_t ip_ttl = 64;
  uint8_t ip_proto = kProtoTcp;
  uint16_t ip_checksum = 0;
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;

  // TCP/UDP (sport/dport shared; seq/ack/flags TCP-only).
  uint16_t sport = 0;
  uint16_t dport = 0;
  uint32_t tcp_seq = 0;
  uint32_t tcp_ack = 0;
  uint8_t tcp_off = 5;       // data offset in 32-bit words
  uint8_t tcp_flags = kTcpAck;
  uint16_t l4_checksum = 0;

  // Payload prefix; payload_len is the true payload size, of which up to
  // kMaxPayloadPrefix bytes are materialized in `payload`.
  uint16_t payload_len = 0;
  std::array<uint8_t, kMaxPayloadPrefix> payload = {};

  // Metadata (not on the wire).
  uint64_t ts_ns = 0;        // arrival timestamp
  uint16_t in_port = 0;

  // Total wire size in bytes (set by the workload generator).
  uint16_t wire_len = 64;

  // Verdict after NF processing.
  enum class Verdict : uint8_t { kPending, kSent, kDropped };
  Verdict verdict = Verdict::kPending;
  uint16_t out_port = 0;

  // Number of payload-prefix bytes actually materialized.
  int PayloadPrefixLen() const {
    return payload_len < kMaxPayloadPrefix ? payload_len : kMaxPayloadPrefix;
  }
};

// Dotted-quad rendering, for debugging and example output.
std::string IpToString(uint32_t ip);

// Computes the IPv4 header checksum over the logical header implied by the
// packet fields. Deterministic in the header fields; used both as the ground
// truth semantic for checksum_update() and by tests.
uint16_t Ipv4HeaderChecksum(const Packet& pkt);

}  // namespace clara

#endif  // SRC_NF_PACKET_H_
