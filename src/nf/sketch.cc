#include "src/nf/sketch.h"

#include <algorithm>
#include <limits>

namespace clara {

CountMinSketch::CountMinSketch(size_t rows, size_t cols) : rows_(rows), cols_(cols) {
  counters_.resize(rows_ * cols_, 0);
}

uint64_t CountMinSketch::RowHash(uint64_t key, uint32_t row) {
  uint64_t h = key ^ (0x9e3779b97f4a7c15ULL * (row + 1));
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

void CountMinSketch::Update(uint64_t key, uint32_t delta) {
  for (uint32_t r = 0; r < rows_; ++r) {
    size_t c = RowHash(key, r) % cols_;
    counters_[r * cols_ + c] += delta;
  }
}

uint32_t CountMinSketch::Estimate(uint64_t key) const {
  uint32_t best = std::numeric_limits<uint32_t>::max();
  for (uint32_t r = 0; r < rows_; ++r) {
    size_t c = RowHash(key, r) % cols_;
    best = std::min(best, counters_[r * cols_ + c]);
  }
  return best;
}

void CountMinSketch::Clear() { std::fill(counters_.begin(), counters_.end(), 0); }

}  // namespace clara
