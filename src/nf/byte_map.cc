#include "src/nf/byte_map.h"

#include <cstring>

namespace clara {

uint64_t FnvHash(const uint8_t* data, size_t len) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

}  // namespace

HostByteMap::HostByteMap(size_t key_bytes, size_t value_bytes, size_t initial_capacity)
    : ByteMap(key_bytes, value_bytes),
      slots_(RoundUpPow2(initial_capacity < 8 ? 8 : initial_capacity)),
      stride_(key_bytes + value_bytes) {
  storage_.resize(slots_ * stride_);
  headers_.resize(slots_, SlotHeader{0});
}

size_t HostByteMap::Probe(const uint8_t* key, bool* match) {
  uint64_t h = FnvHash(key, key_bytes_);
  size_t i = SlotIndex(h);
  size_t first_free = slots_;  // sentinel
  for (size_t n = 0; n < slots_; ++n) {
    ++stats_.slot_touches;
    if (headers_[i].state == 0) {
      *match = false;
      return first_free != slots_ ? first_free : i;
    }
    if (headers_[i].state == 2) {
      if (first_free == slots_) {
        first_free = i;
      }
    } else if (std::memcmp(KeyAt(i), key, key_bytes_) == 0) {
      *match = true;
      return i;
    }
    i = (i + 1) & (slots_ - 1);
  }
  *match = false;
  return first_free;
}

bool HostByteMap::Find(const uint8_t* key, uint8_t* value_out) {
  ++stats_.finds;
  bool match = false;
  size_t i = Probe(key, &match);
  if (match && value_out != nullptr) {
    std::memcpy(value_out, ValueAt(i), value_bytes_);
  }
  return match;
}

void HostByteMap::Grow() {
  std::vector<uint8_t> old_storage = std::move(storage_);
  std::vector<SlotHeader> old_headers = std::move(headers_);
  size_t old_slots = slots_;
  slots_ *= 2;
  storage_.assign(slots_ * stride_, 0);
  headers_.assign(slots_, SlotHeader{0});
  size_ = 0;
  for (size_t i = 0; i < old_slots; ++i) {
    if (old_headers[i].state == 1) {
      const uint8_t* k = old_storage.data() + i * stride_;
      Insert(k, k + key_bytes_);
      --stats_.inserts;  // internal rehash, not a user-visible insert
    }
  }
}

bool HostByteMap::Insert(const uint8_t* key, const uint8_t* value) {
  ++stats_.inserts;
  if ((size_ + 1) * 10 >= slots_ * 7) {
    Grow();
  }
  bool match = false;
  size_t i = Probe(key, &match);
  if (!match) {
    ++size_;
  }
  headers_[i].state = 1;
  ++stats_.slot_touches;
  std::memcpy(KeyAt(i), key, key_bytes_);
  std::memcpy(ValueAt(i), value, value_bytes_);
  return true;
}

bool HostByteMap::Erase(const uint8_t* key) {
  ++stats_.erases;
  bool match = false;
  size_t i = Probe(key, &match);
  if (!match) {
    return false;
  }
  headers_[i].state = 2;
  ++stats_.slot_touches;
  --size_;
  return true;
}

void HostByteMap::Clear() {
  std::fill(headers_.begin(), headers_.end(), SlotHeader{0});
  size_ = 0;
}

NicByteMap::NicByteMap(size_t key_bytes, size_t value_bytes, size_t buckets,
                       size_t slots_per_bucket)
    : ByteMap(key_bytes, value_bytes),
      buckets_(buckets == 0 ? 1 : buckets),
      slots_per_bucket_(slots_per_bucket),
      stride_(key_bytes + value_bytes) {
  storage_.resize(buckets_ * slots_per_bucket_ * stride_);
  valid_.resize(buckets_ * slots_per_bucket_, 0);
}

bool NicByteMap::Find(const uint8_t* key, uint8_t* value_out) {
  ++stats_.finds;
  size_t base = BucketOf(FnvHash(key, key_bytes_)) * slots_per_bucket_;
  for (size_t s = 0; s < slots_per_bucket_; ++s) {
    ++stats_.slot_touches;
    size_t i = base + s;
    if (valid_[i] != 0 && std::memcmp(KeyAt(i), key, key_bytes_) == 0) {
      if (value_out != nullptr) {
        std::memcpy(value_out, ValueAt(i), value_bytes_);
      }
      return true;
    }
  }
  return false;
}

bool NicByteMap::Insert(const uint8_t* key, const uint8_t* value) {
  ++stats_.inserts;
  size_t base = BucketOf(FnvHash(key, key_bytes_)) * slots_per_bucket_;
  size_t free_slot = capacity();  // sentinel
  for (size_t s = 0; s < slots_per_bucket_; ++s) {
    ++stats_.slot_touches;
    size_t i = base + s;
    if (valid_[i] != 0) {
      if (std::memcmp(KeyAt(i), key, key_bytes_) == 0) {
        std::memcpy(ValueAt(i), value, value_bytes_);
        ++stats_.slot_touches;
        return true;
      }
    } else if (free_slot == capacity()) {
      free_slot = i;
    }
  }
  if (free_slot == capacity()) {
    ++stats_.failed_inserts;
    return false;  // bucket full: baremetal maps cannot grow
  }
  valid_[free_slot] = 1;
  ++stats_.slot_touches;
  std::memcpy(KeyAt(free_slot), key, key_bytes_);
  std::memcpy(ValueAt(free_slot), value, value_bytes_);
  ++size_;
  return true;
}

bool NicByteMap::Erase(const uint8_t* key) {
  ++stats_.erases;
  size_t base = BucketOf(FnvHash(key, key_bytes_)) * slots_per_bucket_;
  for (size_t s = 0; s < slots_per_bucket_; ++s) {
    ++stats_.slot_touches;
    size_t i = base + s;
    if (valid_[i] != 0 && std::memcmp(KeyAt(i), key, key_bytes_) == 0) {
      valid_[i] = 0;  // mark invalid only; storage is not reclaimed
      ++stats_.slot_touches;
      --size_;
      return true;
    }
  }
  return false;
}

void NicByteMap::Clear() {
  std::fill(valid_.begin(), valid_.end(), 0);
  size_ = 0;
}

NicFixedVector::NicFixedVector(size_t elem_bytes, size_t capacity)
    : elem_bytes_(elem_bytes), capacity_(capacity) {
  storage_.resize(elem_bytes_ * capacity_);
  valid_.resize(capacity_, 0);
}

bool NicFixedVector::PushBack(const uint8_t* elem) {
  for (size_t i = 0; i < capacity_; ++i) {
    ++slot_touches_;
    if (valid_[i] == 0) {
      valid_[i] = 1;
      std::memcpy(MutableAt(i), elem, elem_bytes_);
      ++valid_count_;
      return true;
    }
  }
  return false;
}

void NicFixedVector::Invalidate(size_t index) {
  if (index < capacity_ && valid_[index] != 0) {
    valid_[index] = 0;
    ++slot_touches_;
    --valid_count_;
  }
}

}  // namespace clara
