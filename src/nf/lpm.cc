#include "src/nf/lpm.h"

namespace clara {

LpmTable::LpmTable() { nodes_.emplace_back(); }

void LpmTable::Insert(uint32_t prefix, int prefix_len, uint32_t next_hop) {
  int cur = 0;
  for (int depth = 0; depth < prefix_len; ++depth) {
    int bit = (prefix >> (31 - depth)) & 1;
    if (nodes_[cur].child[bit] < 0) {
      nodes_[cur].child[bit] = static_cast<int32_t>(nodes_.size());
      nodes_.emplace_back();
    }
    cur = nodes_[cur].child[bit];
  }
  if (nodes_[cur].next_hop < 0) {
    ++rule_count_;
  }
  nodes_[cur].next_hop = static_cast<int32_t>(next_hop);
}

std::optional<uint32_t> LpmTable::Lookup(uint32_t addr) const {
  int cur = 0;
  std::optional<uint32_t> best;
  last_lookup_steps_ = 0;
  for (int depth = 0; depth <= 32; ++depth) {
    ++last_lookup_steps_;
    if (nodes_[cur].next_hop >= 0) {
      best = static_cast<uint32_t>(nodes_[cur].next_hop);
    }
    if (depth == 32) {
      break;
    }
    int bit = (addr >> (31 - depth)) & 1;
    int next = nodes_[cur].child[bit];
    if (next < 0) {
      break;
    }
    cur = next;
  }
  return best;
}

std::vector<uint32_t> LpmTable::Flatten() const {
  std::vector<uint32_t> flat(nodes_.size() * 3, 0);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    flat[3 * i + 0] = nodes_[i].child[0] < 0 ? 0 : static_cast<uint32_t>(nodes_[i].child[0] + 1);
    flat[3 * i + 1] = nodes_[i].child[1] < 0 ? 0 : static_cast<uint32_t>(nodes_[i].child[1] + 1);
    flat[3 * i + 2] =
        nodes_[i].next_hop < 0 ? 0 : static_cast<uint32_t>(nodes_[i].next_hop + 1);
  }
  return flat;
}

std::optional<uint32_t> LpmLookupFlat(const std::vector<uint32_t>& flat, uint32_t addr,
                                      int max_depth) {
  uint32_t cur = 0;  // node index
  uint32_t best = 0;
  for (int depth = 0; depth <= max_depth; ++depth) {
    uint32_t rule = flat[3 * cur + 2];
    if (rule != 0) {
      best = rule;
    }
    if (depth == max_depth) {
      break;
    }
    uint32_t bit = (addr >> (31 - depth)) & 1;
    uint32_t next = flat[3 * cur + bit];
    if (next == 0) {
      break;
    }
    cur = next - 1;
  }
  if (best == 0) {
    return std::nullopt;
  }
  return best - 1;
}

}  // namespace clara
