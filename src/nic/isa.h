// Instruction set of the simulated SoC SmartNIC ("nfp-sim").
//
// Modelled after baremetal packet-processing NICs (Netronome-style): simple
// single-issue RISC micro-engines with ALU/shift ops, multiply steps instead
// of a full multiplier, byte-field merge ops, explicit shared-memory read/
// write commands, per-thread local memory, and CSR-triggered accelerators.
#ifndef SRC_NIC_ISA_H_
#define SRC_NIC_ISA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ir/ir.h"

namespace clara {

enum class NicOp : uint8_t {
  kAlu,        // arithmetic/logic, optionally setting condition codes
  kAluShf,     // ALU op fused with a shift
  kImmed,      // materialize a large immediate
  kMulStep,    // one step of the iterative multiplier
  kLdField,    // byte-field extract/merge between registers
  kBr,         // unconditional branch
  kBcc,        // conditional branch on condition codes
  kCsr,        // command an accelerator / CSR write
  kMemRead,    // shared-memory read (region bound at simulation time)
  kMemWrite,   // shared-memory write
  kLmemRead,   // per-thread local memory read (spilled registers)
  kLmemWrite,  // per-thread local memory write
  kNop,
};

const char* NicOpName(NicOp op);

// True for ops the paper counts as "compute instructions".
bool IsNicCompute(NicOp op);
// True for shared-memory accesses ("memory accesses" in the paper's sense).
bool IsNicMem(NicOp op);

// ---- Executable operand payload (see src/nic/exec.h) ----
//
// Historically the backend emitted operand-less instructions: enough for the
// performance model (which only counts ops and words) but nothing could ever
// *run* the compiled program. Every instruction now also carries its
// architectural effect — register operands, immediates, branch targets,
// memory geometry — so the executor can process real packets and the
// differential fuzzer can cross-check the backend against the AST
// interpreter and the IR reference semantics.
//
// Macro-op contract: the backend expands one IR instruction into a short
// sequence of machine instructions (e.g. a software-divide routine or an
// API-call profile). Exactly one instruction of each sequence carries the
// architectural result; its siblings model issue cost and operate on the
// scratch register. Cost-only instructions have `alu == kNone`, no memory
// field semantics (`mbits == 0`) and no branch targets.

// ALU function selector for executable kAlu/kAluShf/kMulStep instructions.
enum class NicAlu : uint8_t {
  kNone,  // cost-only (scratch)
  kMov, kAdd, kSub, kAnd, kOr, kXor,
  kShl, kShr, kAsr,     // shift amount: `shift` (const) or operand b (reg)
  kSext,                // sign-extend; `shift` holds the source width in bits
  kSelect,              // dst = c ? a : b
  kCmp,                 // compare a,b under `cc`; sets the condition flag
  kTest,                // condition flag = (a != 0)
  kSetCc,               // dst = condition flag (materialized boolean)
  kUDiv, kURem,         // architectural result of the software-divide macro
};

// Branch / compare condition (unsigned, like the IR's icmp.*).
enum class NicCc : uint8_t { kNone, kEq, kNe, kUlt, kUle, kUgt, kUge };

// Field-op role for kLdField and the value delivery of kMemRead/kMemWrite.
enum class NicFieldMode : uint8_t {
  kNone,     // cost-only
  kExtract,  // dst <- field bytes (load-side extract)
  kMerge,    // scratch byte-merge preceding a store (cost-only semantics)
};

// A register-or-immediate operand reference.
struct NicRef {
  enum class Kind : uint8_t { kNone, kReg, kImm };
  Kind kind = Kind::kNone;
  uint32_t reg = 0;
  int64_t imm = 0;

  static NicRef R(uint32_t r) { return NicRef{Kind::kReg, r, 0}; }
  static NicRef I(int64_t v) { return NicRef{Kind::kImm, 0, v}; }
  bool valid() const { return kind != Kind::kNone; }
  bool is_reg() const { return kind == Kind::kReg; }
  bool is_imm() const { return kind == Kind::kImm; }
};

// Executor register namespace: IR virtual registers keep their ids;
// register-allocated stack slots and the expansion scratch live above them.
inline constexpr uint32_t kNicSlotRegBase = 0x40000000u;
inline constexpr uint32_t kNicScratchReg = 0x7fffffffu;

struct NicInstr {
  NicOp op = NicOp::kNop;
  // Memory metadata (kMemRead/kMemWrite): source IR address space and symbol
  // (state var index / packet field index), and the transfer size in 32-bit
  // words.
  AddressSpace space = AddressSpace::kNone;
  uint32_t sym = 0;
  uint8_t words = 1;
  // Provenance: true when this instruction came from expanding a framework
  // API call (reverse-ported profile) rather than core NF code.
  bool from_api = false;

  // --- Executable payload (ignored by the cost/counting consumers) ---
  NicAlu alu = NicAlu::kNone;
  NicCc cc = NicCc::kNone;        // kCmp predicate / branch condition
  Type vtype = Type::kI32;        // result masking width
  uint8_t shift = 0;              // constant shift amount / sext source width
  bool mul_last = false;          // kMulStep: final step delivers the product
  uint32_t dst = 0;               // destination register (0 = none)
  NicRef a, b, c;                 // operands (c: select condition / 3rd arg)
  // Branches: valid only when has_targets (expansion-internal bcc's are
  // cost-only and fall through).
  bool has_targets = false;
  bool is_ret = false;            // kBr emitted for IR kRet
  uint32_t t0 = 0, t1 = 0;        // taken / fallthrough block ids
  // Memory / field semantics: an access of `mbits` bits at byte offset
  // `moff` within the element selected by `midx` (dynamic index; invalid =>
  // element 0). mbits == 0 marks a cost-only transfer whose value delivery
  // rides on a sibling kLdField.
  int32_t moff = 0;
  uint8_t mbits = 0;
  NicFieldMode fmode = NicFieldMode::kNone;
  NicRef midx;
  // API call semantics (kCsr / first compute op of an expansion): index into
  // Module::apis, or kNoCallee.
  uint32_t callee = kNoCallee;

  static constexpr uint32_t kNoCallee = 0xffffffffu;
};

// A zero-cost register move attached to a block: the architectural effect of
// IR instructions the backend compiles to nothing (register-allocated stack
// slots, elided zext/trunc). `before_index` positions the move in the
// instruction stream (== instrs.size() places it at block end).
struct NicMove {
  uint32_t before_index = 0;
  uint32_t dst = 0;
  NicRef src;
  Type vtype = Type::kI32;  // mask applied to the moved value
};

// Issue cost in core cycles (memory wait time is modelled separately by the
// performance model).
int NicIssueCycles(NicOp op);

struct NicBlockCounts {
  uint32_t compute = 0;     // core-NF compute instructions
  uint32_t api_compute = 0; // compute instructions from API expansion
  uint32_t mem_state = 0;   // shared-memory accesses to NF state
  uint32_t mem_packet = 0;  // shared-memory accesses to packet data
  uint32_t mem_lmem = 0;    // local-memory accesses (register spills)
  uint32_t state_words = 0; // total words moved to/from NF state
  uint32_t pkt_words = 0;   // total words moved to/from packet data
};

struct NicBlock {
  std::vector<NicInstr> instrs;
  std::vector<NicMove> moves;  // zero-cost register moves (see NicMove)
  NicBlockCounts counts;
  double issue_cycles = 0;  // sum of issue costs
};

// How often each backend rewrite rule fired while compiling one program
// (telemetry; see src/nic/backend.h for the rule catalogue).
struct RuleFirings {
  uint32_t mul_pow2_shifts = 0;       // mul by pow2 -> single alu_shf
  uint32_t mul_expansions = 0;        // mul -> mul_step sequence
  uint32_t div_expansions = 0;        // udiv/urem -> software routine
  uint32_t cmp_branch_fusions = 0;    // compare fused into the terminator
  uint32_t cmp_materializations = 0;  // boolean materialized (no fusion)
  uint32_t immed_materializations = 0;  // kImmed instructions emitted
  uint32_t zext_elisions = 0;         // free zext after load/const
  uint32_t packet_coalesces = 0;      // packet word re-served from registers
  uint32_t state_coalesces = 0;       // state transfers widened/merged
  uint32_t stack_promotions = 0;      // stack slots kept in GPRs
  uint32_t stack_spills = 0;          // stack slots spilled to lmem
  uint32_t api_expansions = 0;        // API calls expanded from profiles

  void Accumulate(const RuleFirings& o);
  uint32_t Total() const;
};

struct NicProgram {
  std::string name;
  std::vector<NicBlock> blocks;  // 1:1 with the IR function's blocks
  RuleFirings rules;             // rewrite-rule firings for this compilation

  NicBlockCounts Totals() const;
};

std::string ToString(const NicInstr& i, const Module& m);

}  // namespace clara

#endif  // SRC_NIC_ISA_H_
