// Instruction set of the simulated SoC SmartNIC ("nfp-sim").
//
// Modelled after baremetal packet-processing NICs (Netronome-style): simple
// single-issue RISC micro-engines with ALU/shift ops, multiply steps instead
// of a full multiplier, byte-field merge ops, explicit shared-memory read/
// write commands, per-thread local memory, and CSR-triggered accelerators.
#ifndef SRC_NIC_ISA_H_
#define SRC_NIC_ISA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ir/ir.h"

namespace clara {

enum class NicOp : uint8_t {
  kAlu,        // arithmetic/logic, optionally setting condition codes
  kAluShf,     // ALU op fused with a shift
  kImmed,      // materialize a large immediate
  kMulStep,    // one step of the iterative multiplier
  kLdField,    // byte-field extract/merge between registers
  kBr,         // unconditional branch
  kBcc,        // conditional branch on condition codes
  kCsr,        // command an accelerator / CSR write
  kMemRead,    // shared-memory read (region bound at simulation time)
  kMemWrite,   // shared-memory write
  kLmemRead,   // per-thread local memory read (spilled registers)
  kLmemWrite,  // per-thread local memory write
  kNop,
};

const char* NicOpName(NicOp op);

// True for ops the paper counts as "compute instructions".
bool IsNicCompute(NicOp op);
// True for shared-memory accesses ("memory accesses" in the paper's sense).
bool IsNicMem(NicOp op);

struct NicInstr {
  NicOp op = NicOp::kNop;
  // Memory metadata (kMemRead/kMemWrite): source IR address space and symbol
  // (state var index / packet), and the transfer size in 32-bit words.
  AddressSpace space = AddressSpace::kNone;
  uint32_t sym = 0;
  uint8_t words = 1;
  // Provenance: true when this instruction came from expanding a framework
  // API call (reverse-ported profile) rather than core NF code.
  bool from_api = false;
};

// Issue cost in core cycles (memory wait time is modelled separately by the
// performance model).
int NicIssueCycles(NicOp op);

struct NicBlockCounts {
  uint32_t compute = 0;     // core-NF compute instructions
  uint32_t api_compute = 0; // compute instructions from API expansion
  uint32_t mem_state = 0;   // shared-memory accesses to NF state
  uint32_t mem_packet = 0;  // shared-memory accesses to packet data
  uint32_t mem_lmem = 0;    // local-memory accesses (register spills)
  uint32_t state_words = 0; // total words moved to/from NF state
  uint32_t pkt_words = 0;   // total words moved to/from packet data
};

struct NicBlock {
  std::vector<NicInstr> instrs;
  NicBlockCounts counts;
  double issue_cycles = 0;  // sum of issue costs
};

// How often each backend rewrite rule fired while compiling one program
// (telemetry; see src/nic/backend.h for the rule catalogue).
struct RuleFirings {
  uint32_t mul_pow2_shifts = 0;       // mul by pow2 -> single alu_shf
  uint32_t mul_expansions = 0;        // mul -> mul_step sequence
  uint32_t div_expansions = 0;        // udiv/urem -> software routine
  uint32_t cmp_branch_fusions = 0;    // compare fused into the terminator
  uint32_t cmp_materializations = 0;  // boolean materialized (no fusion)
  uint32_t immed_materializations = 0;  // kImmed instructions emitted
  uint32_t zext_elisions = 0;         // free zext after load/const
  uint32_t packet_coalesces = 0;      // packet word re-served from registers
  uint32_t state_coalesces = 0;       // state transfers widened/merged
  uint32_t stack_promotions = 0;      // stack slots kept in GPRs
  uint32_t stack_spills = 0;          // stack slots spilled to lmem
  uint32_t api_expansions = 0;        // API calls expanded from profiles

  void Accumulate(const RuleFirings& o);
  uint32_t Total() const;
};

struct NicProgram {
  std::string name;
  std::vector<NicBlock> blocks;  // 1:1 with the IR function's blocks
  RuleFirings rules;             // rewrite-rule firings for this compilation

  NicBlockCounts Totals() const;
};

std::string ToString(const NicInstr& i, const Module& m);

}  // namespace clara

#endif  // SRC_NIC_ISA_H_
