#include "src/nic/perf_model.h"

#include <algorithm>
#include <cmath>

#include "src/obs/bottleneck.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/util/parallel.h"

namespace clara {

const char* MemRegionName(MemRegion r) {
  switch (r) {
    case MemRegion::kCls: return "CLS";
    case MemRegion::kCtm: return "CTM";
    case MemRegion::kImem: return "IMEM";
    case MemRegion::kEmem: return "EMEM";
  }
  return "?";
}

double NfDemand::TotalStateAccesses() const {
  double n = 0;
  for (const auto& s : state) {
    n += s.accesses_per_pkt;
  }
  return n;
}

double NfDemand::ArithmeticIntensity() const {
  double mem = TotalStateAccesses() + pkt_accesses;
  if (mem <= 0) {
    return compute_cycles;
  }
  return compute_cycles / mem;
}

namespace {

constexpr double kMaxUtil = 0.97;

// M/M/1-style latency inflation, clamped for numerical stability.
double Inflate(double base_latency, double utilization) {
  double rho = std::min(utilization, kMaxUtil);
  return base_latency / (1.0 - rho);
}

// Resource display name for a memory region index.
const char* RegionResourceName(int r) {
  return MemRegionName(static_cast<MemRegion>(r));
}

// Files the evaluation with the global bottleneck ledger and metrics
// registry. Called only when telemetry is enabled.
void RecordEvaluation(const NfDemand& nf, int cores, const PerfPoint& p) {
  obs::BottleneckRecord rec;
  rec.nf = nf.name;
  rec.cores = cores;
  rec.throughput_mpps = p.throughput_mpps;
  rec.latency_us = p.latency_us;
  rec.bound_resource = p.breakdown.bound_resource;
  rec.bound_rho = p.breakdown.bound_rho;
  for (int r = 0; r < kNumMemRegions; ++r) {
    if (p.breakdown.region_used[r]) {
      rec.utils.push_back({RegionResourceName(r), p.breakdown.region_rho[r],
                           p.breakdown.region_latency_cycles[r]});
    }
  }
  if (p.breakdown.cache_used) {
    rec.utils.push_back({"EMEM$", p.breakdown.cache_rho, p.breakdown.cache_latency_cycles});
  }
  if (p.breakdown.pkt_used) {
    rec.utils.push_back({"PKT", p.breakdown.pkt_rho, p.breakdown.pkt_latency_cycles});
  }
  rec.utils.push_back({"cores", p.breakdown.core_rho, 0});
  obs::BottleneckLedger::Global().Record(std::move(rec));

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("nic.perf.evaluations").Add(1);
  reg.GetCounter(std::string("nic.perf.bound.") + p.breakdown.bound_resource).Add(1);
  reg.GetHistogram("nic.perf.bound_rho", obs::Histogram::LinearBuckets(0.05, 0.05, 20))
      .Observe(p.breakdown.bound_rho);
  reg.GetHistogram("nic.perf.throughput_mpps").Observe(p.throughput_mpps);
  reg.GetHistogram("nic.perf.latency_us").Observe(p.latency_us);
}

}  // namespace

PerfModel::RegionLoad PerfModel::ComputeLoad(const NfDemand& nf) const {
  RegionLoad load;
  for (const auto& s : nf.state) {
    double words = s.accesses_per_pkt * s.words_per_access;
    if (s.region == MemRegion::kEmem) {
      // Hits are served by the SRAM cache; misses go to DRAM.
      load.emem_cache_words_per_pkt += words * s.cache_hit_rate;
      load.words_per_pkt[static_cast<int>(MemRegion::kEmem)] += words * (1 - s.cache_hit_rate);
    } else {
      load.words_per_pkt[static_cast<int>(s.region)] += words;
    }
  }
  load.pkt_words_per_pkt = nf.pkt_accesses * nf.pkt_words_per_access;
  return load;
}

void PerfModel::FillBreakdown(const NfDemand& nf, const RegionLoad& load,
                              const double total_words[kNumMemRegions],
                              double total_cache_words, double total_pkt_words,
                              double mem_cycles, PerfBreakdown* bd) const {
  for (int r = 0; r < kNumMemRegions; ++r) {
    bd->region_used[r] = load.words_per_pkt[r] > 0;
    if (total_words[r] > 0 || bd->region_used[r]) {
      bd->region_rho[r] = total_words[r] / cfg_.regions[r].bandwidth_words_per_cycle;
      bd->region_latency_cycles[r] =
          Inflate(cfg_.regions[r].latency_cycles, bd->region_rho[r]);
    }
  }
  bd->cache_used = load.emem_cache_words_per_pkt > 0;
  if (total_cache_words > 0 || bd->cache_used) {
    bd->cache_rho = total_cache_words / cfg_.emem_cache_bandwidth;
    bd->cache_latency_cycles = Inflate(cfg_.emem_cache_latency, bd->cache_rho);
  }
  bd->pkt_used = load.pkt_words_per_pkt > 0;
  if (total_pkt_words > 0 || bd->pkt_used) {
    bd->pkt_rho = total_pkt_words / cfg_.pkt_bandwidth_words_per_cycle;
    bd->pkt_latency_cycles = Inflate(cfg_.pkt_latency_cycles, bd->pkt_rho);
  }
  bd->compute_cycles = nf.compute_cycles;
  bd->mem_cycles = mem_cycles;
}

double PerfModel::MemoryCycles(const NfDemand& nf, const RegionLoad& load,
                               const double total_words[kNumMemRegions],
                               double total_cache_words, double total_pkt_words) const {
  double cycles = nf.engine_cycles;
  // Packet buffer traffic.
  if (nf.pkt_accesses > 0) {
    double util = total_pkt_words / cfg_.pkt_bandwidth_words_per_cycle;
    cycles += nf.pkt_accesses * Inflate(cfg_.pkt_latency_cycles, util);
  }
  for (const auto& s : nf.state) {
    if (s.accesses_per_pkt <= 0) {
      continue;
    }
    if (s.region == MemRegion::kEmem) {
      double dram_util = total_words[static_cast<int>(MemRegion::kEmem)] /
                         cfg_.Region(MemRegion::kEmem).bandwidth_words_per_cycle;
      double cache_util = total_cache_words / cfg_.emem_cache_bandwidth;
      double lat_hit = Inflate(cfg_.emem_cache_latency, cache_util);
      double lat_miss = Inflate(cfg_.Region(MemRegion::kEmem).latency_cycles, dram_util);
      cycles += s.accesses_per_pkt *
                (s.cache_hit_rate * lat_hit + (1 - s.cache_hit_rate) * lat_miss);
    } else {
      const RegionSpec& spec = cfg_.Region(s.region);
      double util = total_words[static_cast<int>(s.region)] / spec.bandwidth_words_per_cycle;
      cycles += s.accesses_per_pkt * Inflate(spec.latency_cycles, util);
    }
  }
  return cycles;
}

PerfPoint PerfModel::Evaluate(const NfDemand& nf, int cores) const {
  cores = std::clamp(cores, 1, cfg_.num_cores);
  RegionLoad load = ComputeLoad(nf);
  double line_cap_mpps = cfg_.MaxLineRateMpps(nf.wire_bytes);
  double freq_hz = cfg_.freq_ghz * 1e9;

  // Fixed point on throughput T (packets/cycle).
  double t = 1e-6;
  double mem_cycles = 0;
  for (int iter = 0; iter < 60; ++iter) {
    double total_words[kNumMemRegions];
    for (int r = 0; r < kNumMemRegions; ++r) {
      total_words[r] = load.words_per_pkt[r] * t;
    }
    mem_cycles = MemoryCycles(nf, load, total_words, load.emem_cache_words_per_pkt * t,
                              load.pkt_words_per_pkt * t);
    double per_core_rate =
        1.0 / std::max(nf.compute_cycles,
                       (nf.compute_cycles + mem_cycles) / cfg_.threads_per_core);
    double t_cores = cores * per_core_rate;
    double t_line = line_cap_mpps * 1e6 / freq_hz;
    double t_new = std::min(t_cores, t_line);
    // Bandwidth hard caps per region.
    for (int r = 0; r < kNumMemRegions; ++r) {
      if (load.words_per_pkt[r] > 0) {
        t_new = std::min(t_new, kMaxUtil * cfg_.regions[r].bandwidth_words_per_cycle /
                                    load.words_per_pkt[r]);
      }
    }
    if (load.emem_cache_words_per_pkt > 0) {
      t_new = std::min(t_new,
                       kMaxUtil * cfg_.emem_cache_bandwidth / load.emem_cache_words_per_pkt);
    }
    if (load.pkt_words_per_pkt > 0) {
      t_new = std::min(t_new, kMaxUtil * cfg_.pkt_bandwidth_words_per_cycle /
                                  load.pkt_words_per_pkt);
    }
    // Damped update for stability.
    t = 0.5 * t + 0.5 * t_new;
  }

  PerfPoint p;
  p.throughput_mpps = t * freq_hz / 1e6;
  p.latency_us = (nf.compute_cycles + mem_cycles +
                  cores * cfg_.arbitration_cycles_per_core) /
                 freq_hz * 1e6;

  double total_words[kNumMemRegions];
  for (int r = 0; r < kNumMemRegions; ++r) {
    total_words[r] = load.words_per_pkt[r] * t;
  }
  FillBreakdown(nf, load, total_words, load.emem_cache_words_per_pkt * t,
                load.pkt_words_per_pkt * t, mem_cycles, &p.breakdown);

  double t_line = line_cap_mpps;
  double per_core_rate =
      1.0 / std::max(nf.compute_cycles,
                     (nf.compute_cycles + mem_cycles) / cfg_.threads_per_core);
  double t_cores_mpps = cores * per_core_rate * freq_hz / 1e6;
  p.breakdown.core_rho = t_cores_mpps > 0 ? p.throughput_mpps / t_cores_mpps : 0;
  if (p.throughput_mpps >= t_line * 0.99) {
    p.bottleneck = PerfPoint::Bottleneck::kLineRate;
    p.breakdown.bound_resource = "line-rate";
    p.breakdown.bound_rho = t_line > 0 ? p.throughput_mpps / t_line : 1;
  } else if (p.throughput_mpps >= t_cores_mpps * 0.95) {
    p.bottleneck = PerfPoint::Bottleneck::kCores;
    p.breakdown.bound_resource = "cores";
    p.breakdown.bound_rho = p.breakdown.core_rho;
  } else {
    // Memory-bound: attribute to the resource with the highest utilization.
    p.bottleneck = PerfPoint::Bottleneck::kMemory;
    p.breakdown.bound_resource = "memory";
    p.breakdown.bound_rho = 0;
    for (int r = 0; r < kNumMemRegions; ++r) {
      if (p.breakdown.region_used[r] && p.breakdown.region_rho[r] > p.breakdown.bound_rho) {
        p.breakdown.bound_rho = p.breakdown.region_rho[r];
        p.breakdown.bound_resource = RegionResourceName(r);
      }
    }
    if (p.breakdown.cache_used && p.breakdown.cache_rho > p.breakdown.bound_rho) {
      p.breakdown.bound_rho = p.breakdown.cache_rho;
      p.breakdown.bound_resource = "EMEM$";
    }
    if (p.breakdown.pkt_used && p.breakdown.pkt_rho > p.breakdown.bound_rho) {
      p.breakdown.bound_rho = p.breakdown.pkt_rho;
      p.breakdown.bound_resource = "PKT";
    }
  }
  if (obs::Enabled()) {
    RecordEvaluation(nf, cores, p);
  }
  return p;
}

std::pair<PerfPoint, PerfPoint> PerfModel::EvaluatePair(const NfDemand& a, int cores_a,
                                                        const NfDemand& b,
                                                        int cores_b) const {
  cores_a = std::max(1, cores_a);
  cores_b = std::max(1, cores_b);
  RegionLoad la = ComputeLoad(a);
  RegionLoad lb = ComputeLoad(b);
  double freq_hz = cfg_.freq_ghz * 1e9;
  double ta = 1e-6;
  double tb = 1e-6;
  double mem_a = 0;
  double mem_b = 0;
  for (int iter = 0; iter < 80; ++iter) {
    double total_words[kNumMemRegions];
    for (int r = 0; r < kNumMemRegions; ++r) {
      total_words[r] = la.words_per_pkt[r] * ta + lb.words_per_pkt[r] * tb;
    }
    double cache_words = la.emem_cache_words_per_pkt * ta + lb.emem_cache_words_per_pkt * tb;
    double pkt_words = la.pkt_words_per_pkt * ta + lb.pkt_words_per_pkt * tb;
    mem_a = MemoryCycles(a, la, total_words, cache_words, pkt_words);
    mem_b = MemoryCycles(b, lb, total_words, cache_words, pkt_words);

    auto step = [&](const NfDemand& nf, const RegionLoad& load, double mem, int cores,
                    double t_other_words) {
      double per_core =
          1.0 / std::max(nf.compute_cycles,
                         (nf.compute_cycles + mem) / cfg_.threads_per_core);
      double t_new = cores * per_core;
      t_new = std::min(t_new, cfg_.MaxLineRateMpps(nf.wire_bytes) * 1e6 / freq_hz);
      for (int r = 0; r < kNumMemRegions; ++r) {
        if (load.words_per_pkt[r] > 0) {
          double avail = kMaxUtil * cfg_.regions[r].bandwidth_words_per_cycle -
                         t_other_words * 0;  // contention enters via latencies
          t_new = std::min(t_new, std::max(1e-9, avail) / load.words_per_pkt[r]);
        }
      }
      return t_new;
    };
    double ta_new = step(a, la, mem_a, cores_a, 0);
    double tb_new = step(b, lb, mem_b, cores_b, 0);
    // Shared-bandwidth cap: scale both down proportionally if a region is
    // oversubscribed.
    for (int r = 0; r < kNumMemRegions; ++r) {
      double demand = la.words_per_pkt[r] * ta_new + lb.words_per_pkt[r] * tb_new;
      double cap = kMaxUtil * cfg_.regions[r].bandwidth_words_per_cycle;
      if (demand > cap && demand > 0) {
        double scale = cap / demand;
        ta_new *= scale;
        tb_new *= scale;
      }
    }
    {
      double demand = la.emem_cache_words_per_pkt * ta_new + lb.emem_cache_words_per_pkt * tb_new;
      double cap = kMaxUtil * cfg_.emem_cache_bandwidth;
      if (demand > cap && demand > 0) {
        double scale = cap / demand;
        ta_new *= scale;
        tb_new *= scale;
      }
    }
    ta = 0.5 * ta + 0.5 * ta_new;
    tb = 0.5 * tb + 0.5 * tb_new;
  }
  PerfPoint pa;
  pa.throughput_mpps = ta * freq_hz / 1e6;
  pa.latency_us = (a.compute_cycles + mem_a +
                   cores_a * cfg_.arbitration_cycles_per_core) /
                  freq_hz * 1e6;
  PerfPoint pb;
  pb.throughput_mpps = tb * freq_hz / 1e6;
  pb.latency_us = (b.compute_cycles + mem_b +
                   cores_b * cfg_.arbitration_cycles_per_core) /
                  freq_hz * 1e6;

  // Attribution under colocation: utilizations come from the *combined*
  // traffic, so each NF's record shows the contention it experiences.
  double total_words[kNumMemRegions];
  for (int r = 0; r < kNumMemRegions; ++r) {
    total_words[r] = la.words_per_pkt[r] * ta + lb.words_per_pkt[r] * tb;
  }
  double cache_words = la.emem_cache_words_per_pkt * ta + lb.emem_cache_words_per_pkt * tb;
  double pkt_words = la.pkt_words_per_pkt * ta + lb.pkt_words_per_pkt * tb;
  auto attribute = [&](const NfDemand& nf, const RegionLoad& load, double mem, double t,
                       int cores, PerfPoint* p) {
    FillBreakdown(nf, load, total_words, cache_words, pkt_words, mem, &p->breakdown);
    double per_core =
        1.0 / std::max(nf.compute_cycles, (nf.compute_cycles + mem) / cfg_.threads_per_core);
    double t_cores = cores * per_core;
    p->breakdown.core_rho = t_cores > 0 ? t / t_cores : 0;
    p->breakdown.bound_resource = "cores";
    p->breakdown.bound_rho = p->breakdown.core_rho;
    p->bottleneck = PerfPoint::Bottleneck::kCores;
    for (int r = 0; r < kNumMemRegions; ++r) {
      if (p->breakdown.region_used[r] && p->breakdown.region_rho[r] > p->breakdown.bound_rho) {
        p->breakdown.bound_rho = p->breakdown.region_rho[r];
        p->breakdown.bound_resource = RegionResourceName(r);
        p->bottleneck = PerfPoint::Bottleneck::kMemory;
      }
    }
    if (p->breakdown.cache_used && p->breakdown.cache_rho > p->breakdown.bound_rho) {
      p->breakdown.bound_rho = p->breakdown.cache_rho;
      p->breakdown.bound_resource = "EMEM$";
      p->bottleneck = PerfPoint::Bottleneck::kMemory;
    }
    if (p->breakdown.pkt_used && p->breakdown.pkt_rho > p->breakdown.bound_rho) {
      p->breakdown.bound_rho = p->breakdown.pkt_rho;
      p->breakdown.bound_resource = "PKT";
      p->bottleneck = PerfPoint::Bottleneck::kMemory;
    }
    if (obs::Enabled()) {
      RecordEvaluation(nf, cores, *p);
    }
  };
  attribute(a, la, mem_a, ta, cores_a, &pa);
  attribute(b, lb, mem_b, tb, cores_b, &pb);
  return {pa, pb};
}

int PerfModel::OptimalCores(const NfDemand& nf) const {
  // The 1..num_cores schedule sweep is the inner loop of scale-out training
  // (one sweep per corpus sample): evaluate every operating point in
  // parallel, then do the argmax scan serially so tie-breaking is identical
  // to the historical serial sweep. Nested calls (e.g. from a parallel
  // training loop) run inline on the worker.
  size_t n_pts = static_cast<size_t>(std::max(1, cfg_.num_cores));
  std::vector<double> ratio =
      ParallelMap<double>(n_pts, [&](size_t i) {
        return Evaluate(nf, static_cast<int>(i) + 1).RatioMppsPerUs();
      });
  int best = 1;
  double best_ratio = -1;
  for (size_t i = 0; i < n_pts; ++i) {
    if (ratio[i] > best_ratio * (1 + 1e-9)) {
      best_ratio = ratio[i];
      best = static_cast<int>(i) + 1;
    }
  }
  return best;
}

int PerfModel::CoresToSaturate(const NfDemand& nf, double fraction) const {
  double peak = Evaluate(nf, cfg_.num_cores).throughput_mpps;
  for (int n = 1; n <= cfg_.num_cores; ++n) {
    if (Evaluate(nf, n).throughput_mpps >= fraction * peak) {
      return n;
    }
  }
  return cfg_.num_cores;
}

}  // namespace clara
