// Builds a per-packet NIC resource demand (NfDemand) for an NF under a
// workload, by combining:
//   * the compiled NIC program (per-block instruction/memory costs),
//   * the interpreter's workload-specific profile (per-block execution
//     frequencies, per-state-variable access counts), and
//   * a state placement (which memory region each variable lives in).
//
// This is the bridge between Clara's static/learned analyses and the
// performance simulator.
#ifndef SRC_NIC_DEMAND_H_
#define SRC_NIC_DEMAND_H_

#include <map>
#include <string>
#include <vector>

#include "src/lang/interp.h"
#include "src/nic/isa.h"
#include "src/nic/perf_model.h"
#include "src/workload/workload.h"

namespace clara {

// Effect of a memory-access-coalescing plan on one variable (paper §4.4):
// `access_scale` < 1 means several formerly separate accesses are fetched as
// one pack; `words_scale` > 1 widens each access accordingly.
struct CoalesceEffect {
  double access_scale = 1.0;
  double words_scale = 1.0;
};

struct DemandOptions {
  // Per-state-variable placement; defaults to all-EMEM (the naive port).
  std::map<std::string, MemRegion> placement;
  // Per-variable coalescing effects (by variable name).
  std::map<std::string, CoalesceEffect> coalescing;
};

NfDemand BuildDemand(const Module& m, const NicProgram& prog, const NfProfile& profile,
                     const WorkloadSpec& workload, const NicConfig& cfg,
                     const DemandOptions& opts = DemandOptions{});

// Per-packet average words touched per access for a state variable.
double WordsPerAccess(const StateVar& sv);

// Cache-hit estimate for a variable of `size_bytes` under `workload` given an
// EMEM cache of `cache_bytes`: structures that fit are near-always hits; flow
// tables hit with the workload's flow-locality probability.
double VarCacheHitRate(const StateVar& sv, const WorkloadSpec& workload,
                       uint64_t cache_bytes);

}  // namespace clara

#endif  // SRC_NIC_DEMAND_H_
