// SmartNIC memory hierarchy and chip configuration.
//
// Mirrors the Netronome-style hierarchy the paper describes (§4.3): cluster
// local scratch (CLS), cluster target memory (CTM), internal SRAM (IMEM) and
// external DRAM (EMEM) fronted by an SRAM cache — with increasing sizes and
// access latencies. Capacities/latencies are representative, not calibrated
// to any proprietary databook; the analyses only rely on their ordering and
// rough ratios.
#ifndef SRC_NIC_MEMORY_H_
#define SRC_NIC_MEMORY_H_

#include <array>
#include <cstdint>
#include <string>

namespace clara {

enum class MemRegion : uint8_t { kCls = 0, kCtm = 1, kImem = 2, kEmem = 3 };

inline constexpr int kNumMemRegions = 4;

const char* MemRegionName(MemRegion r);

struct RegionSpec {
  uint64_t capacity_bytes = 0;
  double latency_cycles = 0;          // uncontended access latency
  double bandwidth_words_per_cycle = 0;  // aggregate across the chip
};

struct NicConfig {
  int num_cores = 60;
  // Effective latency-hiding contexts per core. The hardware has more, but
  // packet-ordering and dependency stalls limit how much wait time overlaps.
  int threads_per_core = 4;
  double freq_ghz = 1.2;
  double line_rate_gbps = 40.0;

  // Bandwidths are *effective random-access* rates (words/cycle, chip-wide):
  // small scattered accesses achieve a fraction of peak streaming bandwidth,
  // especially on the DRAM-backed EMEM.
  std::array<RegionSpec, kNumMemRegions> regions = {{
      {64 * 1024, 40, 4},            // CLS
      {256 * 1024, 80, 4},           // CTM
      {4 * 1024 * 1024, 200, 3},     // IMEM
      {2ULL * 1024 * 1024 * 1024, 600, 0.6},  // EMEM (DRAM side)
  }};

  // EMEM SRAM cache (shared; deliberately small relative to flow tables).
  uint64_t emem_cache_bytes = 512 * 1024;
  double emem_cache_latency = 250;
  double emem_cache_bandwidth = 6;

  // Work-distribution/reordering arbitration cost: every active core adds a
  // little per-packet coordination latency, which is why latency keeps
  // climbing past the throughput knee (paper Fig 11(e)-(f)).
  double arbitration_cycles_per_core = 15;

  // Packet data lives in CTM transfer buffers; modelled as its own pool so
  // header traffic does not contend with state placed in CTM.
  double pkt_latency_cycles = 60;
  double pkt_bandwidth_words_per_cycle = 24;

  const RegionSpec& Region(MemRegion r) const {
    return regions[static_cast<size_t>(r)];
  }

  double MaxLineRateMpps(double wire_bytes) const {
    // Ethernet overhead: preamble + IFG ~ 20B per frame.
    return line_rate_gbps * 1e3 / ((wire_bytes + 20.0) * 8.0);
  }
};

}  // namespace clara

#endif  // SRC_NIC_MEMORY_H_
