#include "src/nic/diff.h"

#include <cstdio>
#include <sstream>

#include "src/lang/interp.h"
#include "src/nic/backend.h"
#include "src/nic/exec.h"

namespace clara {
namespace {

// Runs one packet through an NfEnv-based runner, applying the interpreter's
// default verdict (pending -> sent).
template <typename Runner>
bool RunEnvPacket(Runner& runner, NfEnv& env, const Packet& in, Packet* out,
                  std::string* err) {
  Packet p = in;
  p.verdict = Packet::Verdict::kPending;
  PacketToEnv(p, env);
  if (!runner.RunPacket(env)) {
    *err = runner.error();
    return false;
  }
  if (env.verdict == Packet::Verdict::kPending) {
    env.verdict = Packet::Verdict::kSent;
  }
  EnvToPacket(env, *out);
  return true;
}

const char* VerdictName(Packet::Verdict v) {
  switch (v) {
    case Packet::Verdict::kPending: return "pending";
    case Packet::Verdict::kSent: return "sent";
    case Packet::Verdict::kDropped: return "dropped";
  }
  return "?";
}

// Compares the AST interpreter's state against an NfEnv state image,
// field by field at the declared widths.
std::string CompareAstState(NfInstance& inst, const NfEnv& env,
                            const std::string& env_name) {
  const Module& m = inst.module();
  std::ostringstream oss;
  for (size_t sym = 0; sym < m.state.size(); ++sym) {
    const StateVar& sv = m.state[sym];
    const StateDecl* d = inst.program().FindState(sv.name);
    if (sv.kind == StateKind::kScalar) {
      uint64_t a = inst.ReadScalar(sv.name);
      uint64_t b = env.StateRead(static_cast<uint32_t>(sym), 0, 0,
                                 BitWidth(sv.elem_type));
      if (a != b) {
        oss << "state " << sv.name << ": ast=" << a << " " << env_name << "=" << b;
        return oss.str();
      }
    } else if (sv.kind == StateKind::kArray) {
      for (uint32_t k = 0; k < sv.length; ++k) {
        uint64_t a = inst.ReadArray(sv.name, k);
        uint64_t b = env.StateRead(static_cast<uint32_t>(sym), k, 0,
                                   BitWidth(sv.elem_type));
        if (a != b) {
          oss << "state " << sv.name << "[" << k << "]: ast=" << a << " "
              << env_name << "=" << b;
          return oss.str();
        }
      }
    } else if (sv.kind == StateKind::kMap && d != nullptr) {
      SimMap* sm = inst.FindMap(sv.name);
      if (sm == nullptr) {
        continue;
      }
      // Intra-element field offsets mirror the lowering: keys packed first,
      // then values, each at the cumulative width of its predecessors.
      std::vector<int32_t> key_off, val_off;
      int32_t off = 0;
      for (Type t : d->key_fields) {
        key_off.push_back(off);
        off += BitWidth(t) / 8;
      }
      int32_t kb = static_cast<int32_t>(d->KeyBytes());
      off = kb;
      for (const ValueField& vf : d->value_fields) {
        val_off.push_back(off);
        off += BitWidth(vf.type) / 8;
      }
      for (size_t s = 0; s < sm->slot_count(); ++s) {
        uint64_t ak0 = sm->KeyAt(s, 0);
        uint64_t bk0 = env.StateRead(static_cast<uint32_t>(sym), s, key_off[0],
                                     BitWidth(d->key_fields[0]));
        if (ak0 != bk0) {
          oss << "map " << sv.name << " slot " << s << " key0: ast=" << ak0
              << " " << env_name << "=" << bk0;
          return oss.str();
        }
        if (ak0 == 0) {
          continue;  // empty slot on both sides; residue is unobservable
        }
        for (size_t k = 1; k < d->key_fields.size(); ++k) {
          uint64_t a = sm->KeyAt(s, k);
          uint64_t b = env.StateRead(static_cast<uint32_t>(sym), s, key_off[k],
                                     BitWidth(d->key_fields[k]));
          if (a != b) {
            oss << "map " << sv.name << " slot " << s << " key" << k
                << ": ast=" << a << " " << env_name << "=" << b;
            return oss.str();
          }
        }
        for (size_t v = 0; v < d->value_fields.size(); ++v) {
          uint64_t a = sm->ValueAt(s, v);
          uint64_t b = env.StateRead(static_cast<uint32_t>(sym), s, val_off[v],
                                     BitWidth(d->value_fields[v].type));
          if (a != b) {
            oss << "map " << sv.name << " slot " << s << " value " << v
                << ": ast=" << a << " " << env_name << "=" << b;
            return oss.str();
          }
        }
      }
    }
  }
  return "";
}

}  // namespace

std::string ComparePackets(const Packet& a, const Packet& b,
                           const std::string& a_name, const std::string& b_name) {
  std::ostringstream oss;
  auto diff = [&](const char* field, uint64_t av, uint64_t bv) {
    oss << field << ": " << a_name << "=" << av << " " << b_name << "=" << bv;
    return oss.str();
  };
  if (a.verdict != b.verdict) {
    oss << "verdict: " << a_name << "=" << VerdictName(a.verdict) << " "
        << b_name << "=" << VerdictName(b.verdict);
    return oss.str();
  }
  if (a.out_port != b.out_port) return diff("out_port", a.out_port, b.out_port);
  if (a.eth_type != b.eth_type) return diff("eth.type", a.eth_type, b.eth_type);
  if (a.ip_ihl != b.ip_ihl) return diff("ip.ihl", a.ip_ihl, b.ip_ihl);
  if (a.ip_tos != b.ip_tos) return diff("ip.tos", a.ip_tos, b.ip_tos);
  if (a.ip_len != b.ip_len) return diff("ip.len", a.ip_len, b.ip_len);
  if (a.ip_ttl != b.ip_ttl) return diff("ip.ttl", a.ip_ttl, b.ip_ttl);
  if (a.ip_proto != b.ip_proto) return diff("ip.proto", a.ip_proto, b.ip_proto);
  if (a.ip_checksum != b.ip_checksum) {
    return diff("ip.csum", a.ip_checksum, b.ip_checksum);
  }
  if (a.src_ip != b.src_ip) return diff("ip.src", a.src_ip, b.src_ip);
  if (a.dst_ip != b.dst_ip) return diff("ip.dst", a.dst_ip, b.dst_ip);
  if (a.sport != b.sport) return diff("tcp.sport", a.sport, b.sport);
  if (a.dport != b.dport) return diff("tcp.dport", a.dport, b.dport);
  if (a.tcp_seq != b.tcp_seq) return diff("tcp.seq", a.tcp_seq, b.tcp_seq);
  if (a.tcp_ack != b.tcp_ack) return diff("tcp.ack", a.tcp_ack, b.tcp_ack);
  if (a.tcp_off != b.tcp_off) return diff("tcp.off", a.tcp_off, b.tcp_off);
  if (a.tcp_flags != b.tcp_flags) return diff("tcp.flags", a.tcp_flags, b.tcp_flags);
  if (a.l4_checksum != b.l4_checksum) {
    return diff("tcp.csum", a.l4_checksum, b.l4_checksum);
  }
  if (a.in_port != b.in_port) return diff("pkt.in_port", a.in_port, b.in_port);
  for (int i = 0; i < kMaxPayloadPrefix; ++i) {
    if (a.payload[i] != b.payload[i]) {
      oss << "payload[" << i << "]: " << a_name << "="
          << static_cast<int>(a.payload[i]) << " " << b_name << "="
          << static_cast<int>(b.payload[i]);
      return oss.str();
    }
  }
  return "";
}

DiffResult RunDifferential(const Program& prog, const std::vector<Packet>& packets) {
  DiffResult res;
  NfInstance inst(CloneProgram(prog), /*seed=*/1);
  if (!inst.ok()) {
    res.setup_failed = true;
    res.detail = "lowering failed: " + inst.error();
    return res;
  }
  const Module& m = inst.module();
  if (m.functions.empty()) {
    res.setup_failed = true;
    res.detail = "no functions in module";
    return res;
  }
  const Function& f = m.functions[0];
  NicProgram np = CompileToNic(m, f);

  IrRefInterpreter ir(m, f);
  NicExecutor nic(m, np);
  NfEnv ir_env, nic_env;
  ir_env.InitState(m, &prog.state);
  nic_env.InitState(m, &prog.state);

  for (size_t i = 0; i < packets.size(); ++i) {
    Packet pa = packets[i];
    pa.verdict = Packet::Verdict::kPending;
    inst.Process(pa);

    Packet pi, pn;
    std::string err;
    if (!RunEnvPacket(ir, ir_env, packets[i], &pi, &err)) {
      res.detail = "ir interpreter error: " + err;
      res.packet_index = static_cast<int>(i);
      return res;
    }
    if (!RunEnvPacket(nic, nic_env, packets[i], &pn, &err)) {
      res.detail = "nic executor error: " + err;
      res.packet_index = static_cast<int>(i);
      return res;
    }

    std::string d = ComparePackets(pa, pi, "ast", "ir");
    if (d.empty()) {
      d = ComparePackets(pa, pn, "ast", "nic");
    }
    if (!d.empty()) {
      res.detail = d;
      res.packet_index = static_cast<int>(i);
      return res;
    }
    ++res.packets_run;
  }

  // Final-state cross-check: AST vs IR image (field-wise), then IR vs NIC
  // images (byte-for-byte — both are the same layout by construction).
  std::string d = CompareAstState(inst, ir_env, "ir");
  if (d.empty() && ir_env.state != nic_env.state) {
    for (size_t sym = 0; sym < ir_env.state.size(); ++sym) {
      if (ir_env.state[sym] != nic_env.state[sym]) {
        d = "state image mismatch (ir vs nic) for " + m.state[sym].name;
        break;
      }
    }
  }
  if (d.empty() && ir_env.flow_cache != nic_env.flow_cache) {
    d = "flow cache mismatch (ir vs nic)";
  }
  if (!d.empty()) {
    res.detail = d;
    return res;
  }
  res.ok = true;
  return res;
}

}  // namespace clara
