// Multicore run-to-completion performance model of the SmartNIC.
//
// Given a per-packet resource demand (compute cycles, memory accesses per
// region, accelerator-engine time), a state placement, and a core count, the
// model solves a throughput/latency fixed point:
//
//   * each core runs `threads_per_core` contexts that hide memory wait time,
//     so a core's packet rate is 1 / max(C, (C + M) / threads)
//   * each memory region is an M/M/1-style server: effective latency
//     L_eff = L / (1 - rho) where rho is the region's bandwidth utilization
//     at the current aggregate throughput
//   * throughput is additionally capped by wire line rate
//
// This reproduces the qualitative behaviours the paper measures: throughput
// scales with cores until a memory region saturates (the "knee", §4.2),
// latency keeps growing past the knee, cache-friendly workloads peak at
// lower core counts, and colocated NFs contend in the shared regions (§4.5).
#ifndef SRC_NIC_PERF_MODEL_H_
#define SRC_NIC_PERF_MODEL_H_

#include <string>
#include <vector>

#include "src/nic/memory.h"

namespace clara {

// Per-packet demand against one state variable.
struct StateDemand {
  std::string name;
  double accesses_per_pkt = 0;
  double words_per_access = 1;
  uint64_t size_bytes = 0;     // for placement feasibility
  MemRegion region = MemRegion::kEmem;
  double cache_hit_rate = 0;   // meaningful only when region == kEmem
};

// Complete per-packet demand of one NF under one workload.
struct NfDemand {
  std::string name;
  double compute_cycles = 10;       // instruction issue cycles
  double engine_cycles = 0;         // accelerator time (hidden like memory)
  double pkt_accesses = 2;          // packet-buffer transfers
  double pkt_words_per_access = 2;
  double wire_bytes = 128;          // for the line-rate cap
  std::vector<StateDemand> state;

  double TotalStateAccesses() const;
  // Compute instructions per memory access (paper's arithmetic intensity).
  double ArithmeticIntensity() const;
};

// Per-resource state at one evaluated operating point. Fixed-size (no
// allocation) so Evaluate stays cheap inside training loops; region indexes
// follow MemRegion order, with the EMEM SRAM cache and the packet-buffer
// pool broken out separately.
struct PerfBreakdown {
  double region_rho[kNumMemRegions] = {0, 0, 0, 0};
  double region_latency_cycles[kNumMemRegions] = {0, 0, 0, 0};  // effective (inflated)
  bool region_used[kNumMemRegions] = {false, false, false, false};
  double cache_rho = 0;
  double cache_latency_cycles = 0;
  bool cache_used = false;
  double pkt_rho = 0;
  double pkt_latency_cycles = 0;
  bool pkt_used = false;
  double core_rho = 0;           // achieved / core-limited throughput
  double compute_cycles = 0;     // per-packet issue cycles
  double mem_cycles = 0;         // per-packet memory + engine wait
  // The binding resource ("cores", "line-rate", a region name, "EMEM$" for
  // the cache, or "PKT" for the packet buffer) and its utilization.
  const char* bound_resource = "cores";
  double bound_rho = 0;
};

struct PerfPoint {
  double throughput_mpps = 0;
  double latency_us = 0;
  // Which resource binds at this operating point.
  enum class Bottleneck { kCores, kMemory, kLineRate } bottleneck = Bottleneck::kCores;
  // Full attribution behind `bottleneck` (telemetry; see src/obs/bottleneck.h).
  PerfBreakdown breakdown;

  double RatioMppsPerUs() const {
    return latency_us > 0 ? throughput_mpps / latency_us : 0;
  }
};

class PerfModel {
 public:
  explicit PerfModel(NicConfig cfg = NicConfig{}) : cfg_(cfg) {}

  const NicConfig& config() const { return cfg_; }

  // Steady-state throughput and latency for `nf` on `cores` cores.
  PerfPoint Evaluate(const NfDemand& nf, int cores) const;

  // Joint evaluation of two colocated NFs sharing the memory system, each
  // with its own core allocation. Returns {perf of a, perf of b}.
  std::pair<PerfPoint, PerfPoint> EvaluatePair(const NfDemand& a, int cores_a,
                                               const NfDemand& b, int cores_b) const;

  // Core count in [1, num_cores] maximizing throughput/latency (the paper's
  // knee-of-the-curve operating point, §4.2).
  int OptimalCores(const NfDemand& nf) const;

  // Smallest core count achieving >= `fraction` of the 60-core throughput
  // (Figure 13's "cores to saturate bandwidth" metric).
  int CoresToSaturate(const NfDemand& nf, double fraction = 0.95) const;

 private:
  struct RegionLoad {
    double words_per_pkt[kNumMemRegions] = {0, 0, 0, 0};
    double emem_cache_words_per_pkt = 0;
    double pkt_words_per_pkt = 0;
  };

  RegionLoad ComputeLoad(const NfDemand& nf) const;
  // Per-resource utilizations and effective latencies at aggregate
  // throughput `t_total` (pkts/cycle across all colocated NFs).
  void FillBreakdown(const NfDemand& nf, const RegionLoad& load,
                     const double total_words[kNumMemRegions], double total_cache_words,
                     double total_pkt_words, double mem_cycles, PerfBreakdown* bd) const;
  // Average per-packet memory wait given aggregate throughputs (pkts/cycle)
  // of all colocated NFs.
  double MemoryCycles(const NfDemand& nf, const RegionLoad& load,
                      const double total_words[kNumMemRegions], double total_cache_words,
                      double total_pkt_words) const;

  NicConfig cfg_;
};

}  // namespace clara

#endif  // SRC_NIC_PERF_MODEL_H_
