// Differential execution harness: AST interpreter vs IR reference
// interpreter vs compiled NIC ISA.
//
// The three runners share no code on their hot paths — the AST interpreter
// (src/lang/interp.h) walks the program tree, the IR interpreter
// (src/nic/exec.h) executes the lowering's output, and the NIC executor runs
// the backend's machine code. RunDifferential feeds all three the same
// packet sequence from identical initial state and reports the first point
// where any pair disagrees on:
//   - per-packet output: verdict, out port, every header field, payload
//     prefix, and metadata writes;
//   - final state: scalars, arrays, and map backing stores (field-by-field
//     against SimMap, byte-for-byte between the IR and NIC images).
//
// A disagreement is a compiler bug by construction (the AST interpreter is
// the specification); the fuzzer (tools/clara_fuzz.cc) drives this over
// synthesized programs and shrinks any failure it finds.
#ifndef SRC_NIC_DIFF_H_
#define SRC_NIC_DIFF_H_

#include <string>
#include <vector>

#include "src/lang/ast.h"
#include "src/nf/packet.h"

namespace clara {

struct DiffResult {
  bool ok = false;
  // Lowering/type-check failed — the program never ran, so this is not a
  // semantic mismatch (shrinking treats such candidates as uninteresting).
  bool setup_failed = false;
  // Human-readable description of the first divergence.
  std::string detail;
  // Packet index where the divergence surfaced; -1 for setup failures and
  // final-state divergences.
  int packet_index = -1;
  uint64_t packets_run = 0;
};

// Runs `prog` over `packets` three ways and cross-checks outputs and final
// state. The program is cloned internally; `prog` is not mutated.
DiffResult RunDifferential(const Program& prog, const std::vector<Packet>& packets);

// Field-by-field packet comparison; returns a description of the first
// differing field ("" if identical). `a_name`/`b_name` label the two sides
// in the message.
std::string ComparePackets(const Packet& a, const Packet& b,
                           const std::string& a_name, const std::string& b_name);

}  // namespace clara

#endif  // SRC_NIC_DIFF_H_
