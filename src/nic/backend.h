// The simulated vendor compiler ("nfcc") from Clara IR to NIC machine code.
//
// This plays the role of the closed-source SmartNIC toolchain: it applies
// instruction selection, peephole optimization and register allocation whose
// rules Clara's learned model never sees directly — Clara only observes
// (IR, machine code) pairs as training data (paper §3.2).
//
// Selection rules (deterministic, compositional):
//   * add/sub/and/or/xor            -> 1 alu (+0..2 immed for large constants)
//   * shifts: const -> 1 alu_shf; by-register -> 2
//   * mul: by pow2 -> 1 alu_shf; by other const -> 3 mul_step; reg -> 4
//   * udiv/urem: by pow2 -> 1; otherwise an 19-instruction software routine
//   * compare feeding the block terminator is fused into alu + bcc;
//     otherwise materializing a boolean costs 3
//   * zext after a load is free (loads zero-extend); sext costs 2;
//     trunc feeding only stores is free
//   * stack slots are register-allocated; only spilled slots (beyond the
//     GPR budget, chosen by access frequency) become lmem traffic
//   * packet-field loads read 32-bit CTM words and are coalesced within a
//     block: re-reading an already-fetched word is a 1-cycle ld_field
//   * adjacent same-symbol state accesses coalesce into wider transfers
//   * framework API calls expand to their reverse-ported NIC profiles
#ifndef SRC_NIC_BACKEND_H_
#define SRC_NIC_BACKEND_H_

#include "src/ir/ir.h"
#include "src/nic/isa.h"

namespace clara {

struct NicBackendOptions {
  int gpr_budget = 24;          // stack slots promoted to registers
  bool coalesce_packet = true;  // CTM word re-use
  bool coalesce_state = true;   // adjacent state access widening
};

// Compiles one IR function. Output blocks are 1:1 with f.blocks.
NicProgram CompileToNic(const Module& m, const Function& f,
                        const NicBackendOptions& opts = NicBackendOptions{});

// Convenience: compiles module's first function.
NicProgram CompileToNic(const Module& m, const NicBackendOptions& opts = NicBackendOptions{});

// Content hash (FNV-1a) of everything the backend reads: the function's
// instructions, the module tables they dereference (packet-field layout,
// state geometry, API names) and the backend options. Two modules with the
// same key compile to the same NicProgram.
uint64_t NicCompileKey(const Module& m, const Function& f,
                       const NicBackendOptions& opts = NicBackendOptions{});

// Memoized CompileToNic keyed on NicCompileKey. Thread-safe (training
// pipelines compile corpus programs from pool workers); repeated benches and
// re-trainings over the same corpus skip recompilation entirely. Hits and
// misses are counted in nic.backend.cache.{hit,miss}.
NicProgram CompileToNicCached(const Module& m, const Function& f,
                              const NicBackendOptions& opts = NicBackendOptions{});
NicProgram CompileToNicCached(const Module& m,
                              const NicBackendOptions& opts = NicBackendOptions{});

// Cache introspection (tests) and reset.
size_t NicCompileCacheSize();
void ClearNicCompileCache();

}  // namespace clara

#endif  // SRC_NIC_BACKEND_H_
