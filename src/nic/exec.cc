#include "src/nic/exec.h"

#include <algorithm>
#include <cstring>

#include "src/nf/checksum.h"

namespace clara {
namespace {

// Step budgets. Generated programs have strictly bounded loops (for-loops
// with literal bounds, probe loops bounded by bucket size), so these only
// trip on malformed input.
constexpr uint64_t kIrStepBudget = 4u * 1000 * 1000;
constexpr uint64_t kNicStepBudget = 40u * 1000 * 1000;

uint64_t LoadLe(const uint8_t* p, int bytes) {
  uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

void StoreLe(uint8_t* p, int bytes, uint64_t v) {
  for (int i = 0; i < bytes; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

}  // namespace

uint64_t MaskToType(uint64_t v, Type t) {
  switch (t) {
    case Type::kVoid: return 0;
    case Type::kI1: return v & 1;
    case Type::kI8: return v & 0xff;
    case Type::kI16: return v & 0xffff;
    case Type::kI32: return v & 0xffffffffULL;
    case Type::kI64: return v;
  }
  return v;
}

void NfEnv::InitState(const Module& m, const std::vector<StateDecl>* decls) {
  module = &m;
  state.assign(m.state.size(), {});
  for (size_t i = 0; i < m.state.size(); ++i) {
    const StateVar& sv = m.state[i];
    state[i].assign(static_cast<size_t>(sv.ElementCount()) * sv.ElementBytes(), 0);
    if (decls == nullptr) {
      continue;
    }
    // Initial contents, mirroring NfInstance::ResetState.
    const StateDecl* d = nullptr;
    for (const auto& sd : *decls) {
      if (sd.name == sv.name) {
        d = &sd;
        break;
      }
    }
    if (d == nullptr || sv.kind == StateKind::kMap) {
      continue;
    }
    int eb = static_cast<int>(sv.ElementBytes());
    size_t n = sv.kind == StateKind::kScalar ? 1 : sv.length;
    for (size_t k = 0; k < d->init.size() && k < n; ++k) {
      StoreLe(state[i].data() + k * eb, eb, d->init[k]);
    }
  }
  flow_cache.clear();
}

uint64_t NfEnv::StateRead(uint32_t sym, uint64_t elem, int32_t off, int bits) const {
  if (sym >= state.size() || module == nullptr) {
    return 0;
  }
  const StateVar& sv = module->state[sym];
  uint32_t count = sv.ElementCount();
  uint32_t eb = sv.ElementBytes();
  size_t base = static_cast<size_t>(elem % count) * eb + static_cast<size_t>(off);
  int bytes = bits / 8;
  if (base + bytes > state[sym].size()) {
    return 0;
  }
  return LoadLe(state[sym].data() + base, bytes);
}

void NfEnv::StateWrite(uint32_t sym, uint64_t elem, int32_t off, int bits, uint64_t v) {
  if (sym >= state.size() || module == nullptr) {
    return;
  }
  const StateVar& sv = module->state[sym];
  uint32_t count = sv.ElementCount();
  uint32_t eb = sv.ElementBytes();
  size_t base = static_cast<size_t>(elem % count) * eb + static_cast<size_t>(off);
  int bytes = bits / 8;
  if (base + bytes > state[sym].size()) {
    return;
  }
  StoreLe(state[sym].data() + base, bytes, v);
}

uint64_t NfEnv::PacketRead(uint32_t sym, uint64_t dyn, bool has_dyn) const {
  if (module == nullptr || sym >= module->packet_fields.size()) {
    return 0;
  }
  const PacketFieldInfo& f = module->packet_fields[sym];
  if (f.name == "pkt.len") return wire_len;
  if (f.name == "pkt.payload_len") return payload_len;
  if (f.name == "pkt.in_port") return in_port;
  if (f.name == "pkt.ts") return ts_ns;
  if (f.name == "pkt.payload") {
    // A bare pkt.payload field reference (no byte index) reads as 0 in the
    // AST interpreter; only payload[i] touches the prefix bytes.
    return has_dyn ? pkt[54 + (dyn % kMaxPayloadPrefix)] : 0;
  }
  return LoadLe(pkt.data() + f.byte_offset, BitWidth(f.type) / 8);
}

void NfEnv::PacketWrite(uint32_t sym, uint64_t dyn, uint64_t v, bool has_dyn) {
  if (module == nullptr || sym >= module->packet_fields.size()) {
    return;
  }
  const PacketFieldInfo& f = module->packet_fields[sym];
  if (f.name == "pkt.in_port") {
    in_port = static_cast<uint16_t>(v);
    return;
  }
  if (f.name == "pkt.len" || f.name == "pkt.payload_len" || f.name == "pkt.ts") {
    return;  // read-only metadata, like the AST interpreter
  }
  if (f.name == "pkt.payload") {
    if (has_dyn) {
      pkt[54 + (dyn % kMaxPayloadPrefix)] = static_cast<uint8_t>(v);
    }
    return;
  }
  StoreLe(pkt.data() + f.byte_offset, BitWidth(f.type) / 8, v);
}

uint64_t NfEnv::CallApi(const std::string& name, const std::vector<uint64_t>& args) {
  if (name == "ip_header" || name == "tcp_header" || name == "udp_header" ||
      name == "payload") {
    return 0;
  }
  if (name == "checksum_update" || name == "csum_hw") {
    Packet p;
    EnvToPacket(*this, p);
    uint16_t csum = Ipv4HeaderChecksum(p);
    StoreLe(pkt.data() + 24, 2, csum);  // ip.csum
    return csum;
  }
  if (name == "send") {
    verdict = Packet::Verdict::kSent;
    out_port = args.empty() ? 0 : static_cast<uint16_t>(args[0]);
    ++sends;
    return 0;
  }
  if (name == "drop") {
    verdict = Packet::Verdict::kDropped;
    ++drops;
    return 0;
  }
  if (name == "crc_hash_hw") {
    uint64_t key = args.empty() ? 0 : args[0];
    uint8_t bytes[8];
    StoreLe(bytes, 8, key);
    return Crc32Bitwise(bytes, 8);
  }
  if (name == "crc32_hw") {
    int len = payload_len < kMaxPayloadPrefix ? payload_len : kMaxPayloadPrefix;
    if (!args.empty() && args[0] < static_cast<uint64_t>(len)) {
      len = static_cast<int>(args[0]);
    }
    return Crc32Bitwise(pkt.data() + 54, static_cast<size_t>(len));
  }
  if (name == "lpm_hw") {
    if (lpm != nullptr && !args.empty()) {
      auto hop = lpm->Lookup(static_cast<uint32_t>(args[0]));
      return hop.has_value() ? *hop + 1 : 0;
    }
    return 0;
  }
  if (name == "flow_cache_get") {
    auto it = flow_cache.find(args.empty() ? 0 : args[0]);
    return it == flow_cache.end() ? 0 : it->second + 1;
  }
  if (name == "flow_cache_put") {
    if (args.size() >= 2) {
      flow_cache[args[0]] = args[1];
    }
    return 0;
  }
  if (name == "rand") {
    return rng.NextU64() & 0xffffffffULL;
  }
  return 0;
}

void PacketToEnv(const Packet& p, NfEnv& env) {
  env.pkt.fill(0);
  auto put = [&env](int off, int bytes, uint64_t v) {
    StoreLe(env.pkt.data() + off, bytes, v);
  };
  put(12, 2, p.eth_type);
  put(14, 1, p.ip_ihl);
  put(15, 1, p.ip_tos);
  put(16, 2, p.ip_len);
  put(22, 1, p.ip_ttl);
  put(23, 1, p.ip_proto);
  put(24, 2, p.ip_checksum);
  put(26, 4, p.src_ip);
  put(30, 4, p.dst_ip);
  put(34, 2, p.sport);
  put(36, 2, p.dport);
  put(38, 4, p.tcp_seq);
  put(42, 4, p.tcp_ack);
  put(46, 1, p.tcp_off);
  put(47, 1, p.tcp_flags);
  put(48, 2, p.l4_checksum);
  std::memcpy(env.pkt.data() + 54, p.payload.data(), kMaxPayloadPrefix);
  env.wire_len = p.wire_len;
  env.payload_len = p.payload_len;
  env.in_port = p.in_port;
  env.ts_ns = p.ts_ns;
  env.verdict = Packet::Verdict::kPending;
  env.out_port = p.out_port;
}

void EnvToPacket(const NfEnv& env, Packet& p) {
  auto get = [&env](int off, int bytes) { return LoadLe(env.pkt.data() + off, bytes); };
  p.eth_type = static_cast<uint16_t>(get(12, 2));
  p.ip_ihl = static_cast<uint8_t>(get(14, 1));
  p.ip_tos = static_cast<uint8_t>(get(15, 1));
  p.ip_len = static_cast<uint16_t>(get(16, 2));
  p.ip_ttl = static_cast<uint8_t>(get(22, 1));
  p.ip_proto = static_cast<uint8_t>(get(23, 1));
  p.ip_checksum = static_cast<uint16_t>(get(24, 2));
  p.src_ip = static_cast<uint32_t>(get(26, 4));
  p.dst_ip = static_cast<uint32_t>(get(30, 4));
  p.sport = static_cast<uint16_t>(get(34, 2));
  p.dport = static_cast<uint16_t>(get(36, 2));
  p.tcp_seq = static_cast<uint32_t>(get(38, 4));
  p.tcp_ack = static_cast<uint32_t>(get(42, 4));
  p.tcp_off = static_cast<uint8_t>(get(46, 1));
  p.tcp_flags = static_cast<uint8_t>(get(47, 1));
  p.l4_checksum = static_cast<uint16_t>(get(48, 2));
  std::memcpy(p.payload.data(), env.pkt.data() + 54, kMaxPayloadPrefix);
  p.wire_len = env.wire_len;
  p.payload_len = env.payload_len;
  p.in_port = env.in_port;
  p.ts_ns = env.ts_ns;
  p.verdict = env.verdict;
  p.out_port = env.out_port;
}

// ---- IR reference interpreter ----

namespace {

uint64_t ArithShiftRight(uint64_t a, uint64_t sa, int w) {
  if (sa == 0) {
    return a;
  }
  uint64_t r = a >> sa;
  if (w > 0 && ((a >> (w - 1)) & 1) != 0) {
    r |= ~((1ULL << (w - static_cast<int>(sa))) - 1);
  }
  return r;
}

uint64_t SignExtendFrom(uint64_t v, int src_bits) {
  if (src_bits <= 0 || src_bits >= 64) {
    return v;
  }
  if (((v >> (src_bits - 1)) & 1) != 0) {
    return v | ~((1ULL << src_bits) - 1);
  }
  return v;
}

bool EvalCc(NicCc cc, uint64_t a, uint64_t b) {
  switch (cc) {
    case NicCc::kEq: return a == b;
    case NicCc::kNe: return a != b;
    case NicCc::kUlt: return a < b;
    case NicCc::kUle: return a <= b;
    case NicCc::kUgt: return a > b;
    case NicCc::kUge: return a >= b;
    case NicCc::kNone: return false;
  }
  return false;
}

}  // namespace

IrRefInterpreter::IrRefInterpreter(const Module& m, const Function& f) : m_(m), f_(f) {
  for (const auto& b : f.blocks) {
    for (const auto& i : b.instrs) {
      if (i.result != 0) {
        reg_types_[i.result] = i.type;
      }
    }
  }
}

uint64_t IrRefInterpreter::Eval(const Value& v) const {
  if (v.is_const()) {
    return static_cast<uint64_t>(v.imm);
  }
  if (v.is_reg() && v.reg < regs_.size()) {
    return regs_[v.reg];
  }
  return 0;
}

bool IrRefInterpreter::RunPacket(NfEnv& env) {
  regs_.assign(f_.next_reg, 0);
  slots_.assign(f_.slots.size(), 0);
  steps_ = 0;
  if (f_.blocks.empty()) {
    return true;
  }
  size_t b = 0;
  while (true) {
    const BasicBlock& blk = f_.blocks[b];
    bool jumped = false;
    for (const Instruction& i : blk.instrs) {
      if (++steps_ > kIrStepBudget) {
        error_ = "ir step budget exhausted";
        return false;
      }
      switch (i.op) {
        case Opcode::kAdd:
        case Opcode::kSub:
        case Opcode::kMul:
        case Opcode::kUDiv:
        case Opcode::kURem:
        case Opcode::kAnd:
        case Opcode::kOr:
        case Opcode::kXor:
        case Opcode::kShl:
        case Opcode::kLShr:
        case Opcode::kAShr: {
          uint64_t a = Eval(i.operands[0]);
          uint64_t c = Eval(i.operands[1]);
          int w = BitWidth(i.type);
          uint64_t r = 0;
          switch (i.op) {
            case Opcode::kAdd: r = a + c; break;
            case Opcode::kSub: r = a - c; break;
            case Opcode::kMul: r = a * c; break;
            case Opcode::kUDiv: r = c == 0 ? 0 : a / c; break;
            case Opcode::kURem: r = c == 0 ? 0 : a % c; break;
            case Opcode::kAnd: r = a & c; break;
            case Opcode::kOr: r = a | c; break;
            case Opcode::kXor: r = a ^ c; break;
            case Opcode::kShl: r = a << (c & (w - 1)); break;
            case Opcode::kLShr: r = a >> (c & (w - 1)); break;
            case Opcode::kAShr: r = ArithShiftRight(a, c & (w - 1), w); break;
            default: break;
          }
          regs_[i.result] = MaskToType(r, i.type);
          break;
        }
        case Opcode::kIcmpEq:
        case Opcode::kIcmpNe:
        case Opcode::kIcmpUlt:
        case Opcode::kIcmpUle:
        case Opcode::kIcmpUgt:
        case Opcode::kIcmpUge: {
          uint64_t a = Eval(i.operands[0]);
          uint64_t c = Eval(i.operands[1]);
          bool r = false;
          switch (i.op) {
            case Opcode::kIcmpEq: r = a == c; break;
            case Opcode::kIcmpNe: r = a != c; break;
            case Opcode::kIcmpUlt: r = a < c; break;
            case Opcode::kIcmpUle: r = a <= c; break;
            case Opcode::kIcmpUgt: r = a > c; break;
            case Opcode::kIcmpUge: r = a >= c; break;
            default: break;
          }
          regs_[i.result] = r ? 1 : 0;
          break;
        }
        case Opcode::kZext:
        case Opcode::kTrunc:
          regs_[i.result] = MaskToType(Eval(i.operands[0]), i.type);
          break;
        case Opcode::kSext: {
          const Value& src = i.operands[0];
          int sw = 64;
          if (src.is_reg()) {
            auto it = reg_types_.find(src.reg);
            sw = it == reg_types_.end() ? 32 : BitWidth(it->second);
          }
          regs_[i.result] = MaskToType(SignExtendFrom(Eval(src), sw), i.type);
          break;
        }
        case Opcode::kSelect:
          regs_[i.result] = MaskToType(
              Eval(i.operands[0]) != 0 ? Eval(i.operands[1]) : Eval(i.operands[2]),
              i.type);
          break;
        case Opcode::kLoad: {
          uint64_t dyn = i.has_dyn_index ? Eval(i.operands.back()) : 0;
          uint64_t v = 0;
          switch (i.space) {
            case AddressSpace::kStack:
              v = i.sym < slots_.size() ? slots_[i.sym] : 0;
              break;
            case AddressSpace::kPacket:
              v = env.PacketRead(i.sym, dyn, i.has_dyn_index);
              break;
            case AddressSpace::kState:
              v = env.StateRead(i.sym, dyn, i.offset, BitWidth(i.type));
              break;
            case AddressSpace::kNone:
              break;
          }
          regs_[i.result] = MaskToType(v, i.type);
          break;
        }
        case Opcode::kStore: {
          uint64_t v = MaskToType(Eval(i.operands[0]), i.type);
          uint64_t dyn = i.has_dyn_index ? Eval(i.operands.back()) : 0;
          switch (i.space) {
            case AddressSpace::kStack:
              if (i.sym < slots_.size()) {
                slots_[i.sym] = v;
              }
              break;
            case AddressSpace::kPacket:
              env.PacketWrite(i.sym, dyn, v, i.has_dyn_index);
              break;
            case AddressSpace::kState:
              env.StateWrite(i.sym, dyn, i.offset, BitWidth(i.type), v);
              break;
            case AddressSpace::kNone:
              break;
          }
          break;
        }
        case Opcode::kCall: {
          std::vector<uint64_t> args;
          args.reserve(i.operands.size());
          for (const auto& a : i.operands) {
            args.push_back(Eval(a));
          }
          uint64_t r = env.CallApi(m_.apis[i.callee].name, args);
          if (i.result != 0) {
            regs_[i.result] = MaskToType(r, i.type);
          }
          break;
        }
        case Opcode::kBr:
          b = i.target0;
          jumped = true;
          break;
        case Opcode::kCondBr:
          b = Eval(i.operands[0]) != 0 ? i.target0 : i.target1;
          jumped = true;
          break;
        case Opcode::kRet:
          return true;
      }
      if (jumped) {
        break;
      }
    }
    if (!jumped) {
      error_ = "block fell through without terminator";
      return false;
    }
    if (b >= f_.blocks.size()) {
      error_ = "branch target out of range";
      return false;
    }
  }
}

// ---- NIC ISA executor ----

NicExecutor::NicExecutor(const Module& m, const NicProgram& prog) : m_(m), prog_(prog) {}

uint64_t NicExecutor::Eval(const NicRef& r) const {
  if (r.is_imm()) {
    return static_cast<uint64_t>(r.imm);
  }
  if (r.is_reg()) {
    auto it = regs_.find(r.reg);
    return it == regs_.end() ? 0 : it->second;
  }
  return 0;
}

void NicExecutor::SetReg(uint32_t reg, uint64_t v, Type t) {
  if (reg != 0) {
    regs_[reg] = MaskToType(v, t);
  }
}

// Executes one instruction. Sets *jumped/*next when control transfers;
// returns false on budget exhaustion or a malformed instruction.
bool NicExecutor::Exec(const NicInstr& i, NfEnv& env, bool* jumped, uint32_t* next) {
  ++op_hist_[static_cast<size_t>(i.op)];
  // API-call semantic carrier (kCsr for accelerator-backed APIs, otherwise
  // the expansion's first compute op).
  if (i.callee != NicInstr::kNoCallee) {
    std::vector<uint64_t> args;
    if (i.a.valid()) {
      args.push_back(Eval(i.a));
    }
    if (i.b.valid()) {
      args.push_back(Eval(i.b));
    }
    if (i.c.valid()) {
      args.push_back(Eval(i.c));
    }
    uint64_t r = i.callee < m_.apis.size()
                     ? env.CallApi(m_.apis[i.callee].name, args)
                     : 0;
    if (i.dst != 0) {
      SetReg(i.dst, r, i.vtype);
    }
    return true;
  }
  switch (i.op) {
    case NicOp::kAlu:
    case NicOp::kAluShf: {
      int w = BitWidth(i.vtype);
      switch (i.alu) {
        case NicAlu::kNone:
          break;  // cost-only scratch op
        case NicAlu::kMov:
          SetReg(i.dst, Eval(i.a), i.vtype);
          break;
        case NicAlu::kAdd:
          SetReg(i.dst, Eval(i.a) + Eval(i.b), i.vtype);
          break;
        case NicAlu::kSub:
          SetReg(i.dst, Eval(i.a) - Eval(i.b), i.vtype);
          break;
        case NicAlu::kAnd:
          SetReg(i.dst, Eval(i.a) & Eval(i.b), i.vtype);
          break;
        case NicAlu::kOr:
          SetReg(i.dst, Eval(i.a) | Eval(i.b), i.vtype);
          break;
        case NicAlu::kXor:
          SetReg(i.dst, Eval(i.a) ^ Eval(i.b), i.vtype);
          break;
        case NicAlu::kShl:
        case NicAlu::kShr: {
          uint64_t a = Eval(i.a);
          uint64_t r;
          if (i.b.valid()) {
            // Program-level shift: amount wraps at the type width, matching
            // the AST/IR semantics.
            uint64_t sa = Eval(i.b) & static_cast<uint64_t>(w - 1);
            r = i.alu == NicAlu::kShl ? a << sa : a >> sa;
          } else {
            // Synthetic strength-reduction shift (mul/udiv by 2^k): the raw
            // exponent, which may exceed the width — result is then zero.
            r = i.shift >= w ? 0
                             : (i.alu == NicAlu::kShl ? a << i.shift : a >> i.shift);
          }
          SetReg(i.dst, r, i.vtype);
          break;
        }
        case NicAlu::kAsr: {
          uint64_t sa = Eval(i.b) & static_cast<uint64_t>(w - 1);
          SetReg(i.dst, ArithShiftRight(Eval(i.a), sa, w), i.vtype);
          break;
        }
        case NicAlu::kSext:
          SetReg(i.dst, SignExtendFrom(Eval(i.a), i.shift), i.vtype);
          break;
        case NicAlu::kSelect:
          SetReg(i.dst, Eval(i.c) != 0 ? Eval(i.a) : Eval(i.b), i.vtype);
          break;
        case NicAlu::kCmp:
          flag_ = EvalCc(i.cc, Eval(i.a), Eval(i.b));
          if (i.dst != 0) {
            SetReg(i.dst, flag_ ? 1 : 0, Type::kI1);
          }
          break;
        case NicAlu::kTest:
          flag_ = Eval(i.a) != 0;
          break;
        case NicAlu::kSetCc:
          SetReg(i.dst, flag_ ? 1 : 0, Type::kI1);
          break;
        case NicAlu::kUDiv: {
          uint64_t bv = Eval(i.b);
          SetReg(i.dst, bv == 0 ? 0 : Eval(i.a) / bv, i.vtype);
          break;
        }
        case NicAlu::kURem: {
          uint64_t bv = Eval(i.b);
          SetReg(i.dst, bv == 0 ? 0 : Eval(i.a) % bv, i.vtype);
          break;
        }
      }
      break;
    }
    case NicOp::kMulStep:
      if (i.mul_last) {
        SetReg(i.dst, Eval(i.a) * Eval(i.b), i.vtype);
      }
      break;
    case NicOp::kImmed:
    case NicOp::kNop:
    case NicOp::kCsr:  // accelerator commands without a callee are cost-only
      break;
    case NicOp::kLdField:
    case NicOp::kMemRead: {
      bool semantic = i.op == NicOp::kLdField
                          ? (i.fmode == NicFieldMode::kExtract && i.dst != 0)
                          : (i.mbits != 0 && i.dst != 0);
      if (!semantic) {
        break;  // cost-only transfer / merge scratch
      }
      uint64_t dyn = i.midx.valid() ? Eval(i.midx) : 0;
      uint64_t v = 0;
      if (i.space == AddressSpace::kPacket) {
        v = env.PacketRead(i.sym, dyn, i.midx.valid());
      } else if (i.space == AddressSpace::kState) {
        v = env.StateRead(i.sym, dyn, i.moff, i.mbits);
      }
      SetReg(i.dst, v, i.vtype);
      break;
    }
    case NicOp::kMemWrite: {
      if (i.mbits == 0) {
        break;  // cost-only burst (API expansion traffic)
      }
      uint64_t dyn = i.midx.valid() ? Eval(i.midx) : 0;
      uint64_t v = MaskToType(Eval(i.a), i.vtype);
      if (i.space == AddressSpace::kPacket) {
        env.PacketWrite(i.sym, dyn, v, i.midx.valid());
      } else if (i.space == AddressSpace::kState) {
        env.StateWrite(i.sym, dyn, i.moff, i.mbits, v);
      }
      break;
    }
    case NicOp::kLmemRead:
      SetReg(i.dst, Eval(i.a), i.vtype);
      break;
    case NicOp::kLmemWrite:
      SetReg(i.dst, Eval(i.a), i.vtype);
      break;
    case NicOp::kBr:
      if (i.is_ret) {
        *jumped = true;
        *next = 0xffffffffu;  // return sentinel
      } else if (i.has_targets) {
        *jumped = true;
        *next = i.t0;
      }
      break;
    case NicOp::kBcc:
      if (i.has_targets) {
        *jumped = true;
        *next = Eval(i.a) != 0 ? i.t0 : i.t1;
      }
      break;
  }
  return true;
}

bool NicExecutor::RunPacket(NfEnv& env) {
  regs_.clear();
  flag_ = false;
  steps_ = 0;
  if (prog_.blocks.empty()) {
    return true;
  }
  uint32_t b = 0;
  while (true) {
    const NicBlock& blk = prog_.blocks[b];
    size_t mp = 0;
    bool jumped = false;
    uint32_t next = 0;
    for (size_t k = 0; k <= blk.instrs.size(); ++k) {
      // Zero-cost architectural moves scheduled before instruction k.
      while (mp < blk.moves.size() && blk.moves[mp].before_index == k) {
        const NicMove& mv = blk.moves[mp];
        SetReg(mv.dst, Eval(mv.src), mv.vtype);
        ++mp;
      }
      if (k == blk.instrs.size()) {
        break;
      }
      if (++steps_ > kNicStepBudget) {
        error_ = "nic step budget exhausted";
        return false;
      }
      if (!Exec(blk.instrs[k], env, &jumped, &next)) {
        return false;
      }
      if (jumped) {
        break;
      }
    }
    if (!jumped) {
      error_ = "block fell through without branch";
      return false;
    }
    if (next == 0xffffffffu) {
      return true;  // ret
    }
    if (next >= prog_.blocks.size()) {
      error_ = "branch target out of range";
      return false;
    }
    b = next;
  }
}

}  // namespace clara
