// Instruction-level executor for the simulated SmartNIC ISA.
//
// Historically the NIC backend emitted cost-only instruction streams: enough
// for the performance model, but nothing could ever *run* a compiled NF.
// This header adds the missing execution layer, three pieces deep:
//
//  - NfEnv: the runtime environment a packet-processing program mutates — a
//    byte-accurate packet image (wire header layout + payload prefix), byte
//    images for every NF state variable (scalars, arrays, map backing
//    stores), packet metadata, accelerator backends (CRC, checksum, LPM,
//    flow cache) and the packet verdict. The environment is deliberately
//    shared between the IR reference interpreter and the ISA executor so
//    that the differential fuzzer (src/nic/diff.h) can compare final state
//    byte-for-byte.
//  - IrRefInterpreter: reference semantics for the lowered IR. This is the
//    "middle" rung of the differential tower: AST interpreter (src/lang)
//    vs lowered IR vs compiled ISA.
//  - NicExecutor: executes a backend-compiled NicProgram — register file,
//    condition flag, zero-cost move sidecars, shared-memory accesses against
//    the NfEnv images, and CSR-triggered accelerator calls.
//
// Memory model: the simulated NIC exposes the packet image as CTM (cluster
// target memory, per-packet), NF state as IMEM/EMEM (shared), promoted
// stack slots as GPRs, and spilled slots as per-thread local memory. In this
// executor all of them resolve to NfEnv byte images or the register file;
// the address-space tag on each instruction says which.
#ifndef SRC_NIC_EXEC_H_
#define SRC_NIC_EXEC_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ir/ir.h"
#include "src/lang/ast.h"
#include "src/nf/lpm.h"
#include "src/nf/packet.h"
#include "src/nic/isa.h"
#include "src/util/rng.h"

namespace clara {

// Size of the logical wire image: headers (see InstallStandardPacketFields)
// followed by the materialized payload prefix.
inline constexpr int kNicPacketImageBytes = 54 + kMaxPayloadPrefix;

// Runtime environment one packet is processed against.
struct NfEnv {
  const Module* module = nullptr;

  // Byte image of the packet's wire view; header fields live at their
  // PacketFieldInfo::byte_offset, little-endian, payload at offset 54.
  std::array<uint8_t, kNicPacketImageBytes> pkt{};

  // Packet metadata (pseudo-fields not in the wire image).
  uint16_t wire_len = 0;
  uint16_t payload_len = 0;
  uint16_t in_port = 0;
  uint64_t ts_ns = 0;

  // Verdict tracking (send/drop APIs).
  Packet::Verdict verdict = Packet::Verdict::kPending;
  uint16_t out_port = 0;
  uint64_t sends = 0;
  uint64_t drops = 0;

  // Per-state-var byte images: ElementCount() * ElementBytes() bytes each,
  // element-major, fields little-endian at their intra-element offsets.
  std::vector<std::vector<uint8_t>> state;

  // Accelerator backends.
  Rng rng{1};
  std::map<uint64_t, uint64_t> flow_cache;
  const LpmTable* lpm = nullptr;

  // Sizes the state images for `m` and zero-fills them; `decls` (optional)
  // supplies initial scalar/array contents exactly like NfInstance
  // ResetState.
  void InitState(const Module& m, const std::vector<StateDecl>* decls);

  // Framework API semantics, mirroring NfInstance::CallApi.
  uint64_t CallApi(const std::string& name, const std::vector<uint64_t>& args);

  // Raw little-endian field access into a state image (element index is
  // wrapped modulo the element count, like the AST's `idx % size`).
  uint64_t StateRead(uint32_t sym, uint64_t elem, int32_t off, int bits) const;
  void StateWrite(uint32_t sym, uint64_t elem, int32_t off, int bits, uint64_t v);

  // Packet image / metadata access by packet-field symbol. `dyn` is the
  // payload byte index (wrapped modulo kMaxPayloadPrefix) for pkt.payload;
  // `has_dyn` distinguishes indexed payload accesses from a bare pkt.payload
  // field reference, which the AST interpreter defines as 0 / no-op.
  uint64_t PacketRead(uint32_t sym, uint64_t dyn, bool has_dyn = true) const;
  void PacketWrite(uint32_t sym, uint64_t dyn, uint64_t v, bool has_dyn = true);
};

// Copies a parsed packet into the environment's image + metadata, resetting
// the verdict.
void PacketToEnv(const Packet& p, NfEnv& env);
// Reads the environment back into a parsed packet (inverse of PacketToEnv).
void EnvToPacket(const NfEnv& env, Packet& p);

// Masks `v` to the width of `t` (kI64 passes through).
uint64_t MaskToType(uint64_t v, Type t);

// Reference interpreter for the lowered IR: executes function `f` of the
// module against `env` for one packet.
class IrRefInterpreter {
 public:
  IrRefInterpreter(const Module& m, const Function& f);

  // Returns false (with error() set) on a malformed program or when the
  // step budget is exhausted.
  bool RunPacket(NfEnv& env);

  const std::string& error() const { return error_; }
  uint64_t steps() const { return steps_; }

 private:
  uint64_t Eval(const Value& v) const;

  const Module& m_;
  const Function& f_;
  std::map<uint32_t, Type> reg_types_;
  std::vector<uint64_t> regs_;
  std::vector<uint64_t> slots_;
  std::string error_;
  uint64_t steps_ = 0;
};

// Executes a backend-compiled NIC program against an NfEnv.
class NicExecutor {
 public:
  NicExecutor(const Module& m, const NicProgram& prog);

  // Runs one packet through the compiled program. Returns false (with
  // error() set) on an unexecutable instruction or exhausted step budget.
  bool RunPacket(NfEnv& env);

  const std::string& error() const { return error_; }
  uint64_t steps() const { return steps_; }

  // Executed-instruction histogram by opcode, accumulated across packets;
  // the opcode-coverage test asserts every backend-emittable opcode lands
  // here at least once.
  const std::array<uint64_t, 16>& op_histogram() const { return op_hist_; }

 private:
  uint64_t Eval(const NicRef& r) const;
  void SetReg(uint32_t reg, uint64_t v, Type t);
  bool Exec(const NicInstr& i, NfEnv& env, bool* jumped, uint32_t* next);

  const Module& m_;
  const NicProgram& prog_;
  std::unordered_map<uint32_t, uint64_t> regs_;
  bool flag_ = false;
  std::string error_;
  uint64_t steps_ = 0;
  std::array<uint64_t, 16> op_hist_{};
};

}  // namespace clara

#endif  // SRC_NIC_EXEC_H_
