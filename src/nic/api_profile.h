// Reverse-ported cost profiles of Click framework APIs on the SmartNIC
// (paper §3.3): each host-framework API has a NIC-native implementation
// (e.g. Click ip_header()'s sk_buff parsing vs nbi_meta_pkt_info) whose cost
// is measured from the NIC library directly rather than predicted.
#ifndef SRC_NIC_API_PROFILE_H_
#define SRC_NIC_API_PROFILE_H_

#include <optional>
#include <string>

namespace clara {

struct ApiNicProfile {
  std::string name;
  int compute_instrs = 0;       // micro-engine instructions in the NIC library code
  int pkt_read_words = 0;       // packet-buffer words read
  int pkt_write_words = 0;      // packet-buffer words written
  double engine_cycles = 0;     // fixed accelerator-engine latency, cycles
  double engine_cycles_per_payload_byte = 0;  // size-dependent engine time
  bool uses_accelerator = false;
};

// Profile for `api`, or nullopt for unknown APIs (treated as free).
std::optional<ApiNicProfile> LookupApiProfile(const std::string& api);

}  // namespace clara

#endif  // SRC_NIC_API_PROFILE_H_
