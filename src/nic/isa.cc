#include "src/nic/isa.h"

#include <sstream>

namespace clara {

const char* NicOpName(NicOp op) {
  switch (op) {
    case NicOp::kAlu: return "alu";
    case NicOp::kAluShf: return "alu_shf";
    case NicOp::kImmed: return "immed";
    case NicOp::kMulStep: return "mul_step";
    case NicOp::kLdField: return "ld_field";
    case NicOp::kBr: return "br";
    case NicOp::kBcc: return "bcc";
    case NicOp::kCsr: return "csr";
    case NicOp::kMemRead: return "mem[read]";
    case NicOp::kMemWrite: return "mem[write]";
    case NicOp::kLmemRead: return "lmem[read]";
    case NicOp::kLmemWrite: return "lmem[write]";
    case NicOp::kNop: return "nop";
  }
  return "?";
}

bool IsNicCompute(NicOp op) {
  switch (op) {
    case NicOp::kAlu:
    case NicOp::kAluShf:
    case NicOp::kImmed:
    case NicOp::kMulStep:
    case NicOp::kLdField:
    case NicOp::kBr:
    case NicOp::kBcc:
    case NicOp::kCsr:
      return true;
    default:
      return false;
  }
}

bool IsNicMem(NicOp op) { return op == NicOp::kMemRead || op == NicOp::kMemWrite; }

int NicIssueCycles(NicOp op) {
  switch (op) {
    case NicOp::kCsr:
      return 3;
    case NicOp::kLmemRead:
    case NicOp::kLmemWrite:
      return 3;
    case NicOp::kMemRead:
    case NicOp::kMemWrite:
      return 2;  // command issue only; wait time modelled separately
    case NicOp::kNop:
      return 1;
    default:
      return 1;
  }
}

void RuleFirings::Accumulate(const RuleFirings& o) {
  mul_pow2_shifts += o.mul_pow2_shifts;
  mul_expansions += o.mul_expansions;
  div_expansions += o.div_expansions;
  cmp_branch_fusions += o.cmp_branch_fusions;
  cmp_materializations += o.cmp_materializations;
  immed_materializations += o.immed_materializations;
  zext_elisions += o.zext_elisions;
  packet_coalesces += o.packet_coalesces;
  state_coalesces += o.state_coalesces;
  stack_promotions += o.stack_promotions;
  stack_spills += o.stack_spills;
  api_expansions += o.api_expansions;
}

uint32_t RuleFirings::Total() const {
  return mul_pow2_shifts + mul_expansions + div_expansions + cmp_branch_fusions +
         cmp_materializations + immed_materializations + zext_elisions + packet_coalesces +
         state_coalesces + stack_promotions + stack_spills + api_expansions;
}

NicBlockCounts NicProgram::Totals() const {
  NicBlockCounts t;
  for (const auto& b : blocks) {
    t.compute += b.counts.compute;
    t.api_compute += b.counts.api_compute;
    t.mem_state += b.counts.mem_state;
    t.mem_packet += b.counts.mem_packet;
    t.mem_lmem += b.counts.mem_lmem;
    t.state_words += b.counts.state_words;
    t.pkt_words += b.counts.pkt_words;
  }
  return t;
}

std::string ToString(const NicInstr& i, const Module& m) {
  std::ostringstream os;
  os << NicOpName(i.op);
  if (IsNicMem(i.op)) {
    os << " ";
    if (i.space == AddressSpace::kPacket) {
      os << "ctm_pkt";
    } else if (i.space == AddressSpace::kState && i.sym < m.state.size()) {
      os << m.state[i.sym].name;
    }
    os << ", " << static_cast<int>(i.words) << "w";
  }
  if (i.from_api) {
    os << " ;api";
  }
  return os.str();
}

}  // namespace clara
