#include "src/nic/demand.h"

#include <algorithm>
#include <cmath>

#include "src/nic/api_profile.h"

namespace clara {

double WordsPerAccess(const StateVar& sv) {
  switch (sv.kind) {
    case StateKind::kScalar:
    case StateKind::kArray:
      return std::max(1.0, std::ceil(BitWidth(sv.elem_type) / 8.0 / 4.0));
    case StateKind::kMap: {
      // A probe touches the key; a hit additionally moves value words.
      double key_words = std::max(1.0, std::ceil(sv.key_bytes / 4.0));
      double value_words = std::ceil(sv.value_bytes / 4.0);
      return key_words + 0.5 * value_words;
    }
  }
  return 1.0;
}

double VarCacheHitRate(const StateVar& sv, const WorkloadSpec& workload,
                       uint64_t cache_bytes) {
  uint64_t size = sv.SizeBytes();
  if (size == 0) {
    return 1.0;
  }
  if (size <= cache_bytes / 4) {
    // Small structures stay resident alongside everything else.
    return 0.98;
  }
  if (sv.kind == StateKind::kMap) {
    uint64_t slot_bytes = std::max<uint64_t>(1, sv.key_bytes + sv.value_bytes);
    uint64_t cache_entries = cache_bytes / slot_bytes;
    return EstimateCacheHitRate(workload, cache_entries);
  }
  double frac = static_cast<double>(cache_bytes) / static_cast<double>(size);
  return std::clamp(frac, 0.0, 1.0);
}

NfDemand BuildDemand(const Module& m, const NicProgram& prog, const NfProfile& profile,
                     const WorkloadSpec& workload, const NicConfig& cfg,
                     const DemandOptions& opts) {
  NfDemand d;
  d.name = m.name;
  d.wire_bytes = workload.pkt_size;
  double pkts = std::max<uint64_t>(1, profile.packets);

  double compute = 0;
  double pkt_accesses = 0;
  double pkt_words = 0;
  const Function& f = m.functions.at(0);
  size_t nblocks = std::min(prog.blocks.size(), f.blocks.size());
  for (size_t b = 0; b < nblocks; ++b) {
    double freq =
        b < profile.block_exec.size() ? profile.block_exec[b] / pkts : 0.0;
    if (freq <= 0) {
      continue;
    }
    const NicBlock& nb = prog.blocks[b];
    compute += freq * nb.issue_cycles;
    pkt_accesses += freq * nb.counts.mem_packet;
    pkt_words += freq * static_cast<double>(nb.counts.pkt_words);
  }
  d.compute_cycles = std::max(1.0, compute);
  d.pkt_accesses = pkt_accesses;
  d.pkt_words_per_access = pkt_accesses > 0 ? pkt_words / pkt_accesses : 2.0;

  // Accelerator engine time from the API-call profile.
  double avg_payload = workload.pkt_size > 54 ? workload.pkt_size - 54.0 : 0.0;
  double engine = 0;
  for (const auto& [api, count] : profile.api_calls) {
    auto p = LookupApiProfile(api);
    if (p.has_value()) {
      engine += count / pkts * (p->engine_cycles + p->engine_cycles_per_payload_byte * avg_payload);
    }
  }
  d.engine_cycles = engine;

  // Per-variable demand under the chosen placement.
  for (size_t v = 0; v < m.state.size(); ++v) {
    const StateVar& sv = m.state[v];
    StateDemand sd;
    sd.name = sv.name;
    sd.accesses_per_pkt =
        (profile.state_reads[v] + profile.state_writes[v]) / pkts;
    sd.words_per_access = WordsPerAccess(sv);
    sd.size_bytes = sv.SizeBytes();
    auto it = opts.placement.find(sv.name);
    sd.region = it != opts.placement.end() ? it->second : MemRegion::kEmem;
    if (sd.region == MemRegion::kEmem) {
      sd.cache_hit_rate = VarCacheHitRate(sv, workload, cfg.emem_cache_bytes);
    }
    auto ce = opts.coalescing.find(sv.name);
    if (ce != opts.coalescing.end()) {
      sd.accesses_per_pkt *= ce->second.access_scale;
      sd.words_per_access *= ce->second.words_scale;
    }
    d.state.push_back(sd);
  }
  return d;
}

}  // namespace clara
