#include "src/nic/api_profile.h"

#include <map>

namespace clara {

std::optional<ApiNicProfile> LookupApiProfile(const std::string& api) {
  // Costs follow the magnitudes reported for Netronome-class NICs: header
  // parsing is a few instructions against packet metadata; a software IPv4
  // checksum costs ~2000 cycles on the general-purpose cores while the
  // ingress accelerator does it in ~300 (paper §2).
  static const std::map<std::string, ApiNicProfile> kProfiles = {
      {"ip_header", {"ip_header", 3, 1, 0, 0, 0, false}},
      {"tcp_header", {"tcp_header", 3, 1, 0, 0, 0, false}},
      {"udp_header", {"udp_header", 3, 1, 0, 0, 0, false}},
      {"payload", {"payload", 2, 0, 0, 0, 0, false}},
      // Software one's-complement checksum over the IPv4 header: byte loop on
      // a wimpy core.
      {"checksum_update", {"checksum_update", 420, 12, 1, 0, 0, false}},
      // Ingress checksum accelerator: CSR command + fixed engine time.
      {"csum_hw", {"csum_hw", 6, 1, 1, 300, 0, true}},
      // CRC engine: command + per-byte streaming through the engine.
      {"crc32_hw", {"crc32_hw", 8, 0, 0, 40, 1.5, true}},
      // CRC engine hashing a fixed-size key (flow-hash use, no payload scan).
      {"crc_hash_hw", {"crc_hash_hw", 6, 0, 0, 45, 0, true}},
      // LPM lookup engine.
      {"lpm_hw", {"lpm_hw", 6, 0, 0, 40, 0, true}},
      // Flow-cache (CAM-assisted exact-match) engine.
      {"flow_cache_get", {"flow_cache_get", 5, 0, 0, 30, 0, true}},
      {"flow_cache_put", {"flow_cache_put", 5, 0, 0, 30, 0, true}},
      {"send", {"send", 6, 0, 2, 20, 0, false}},
      {"drop", {"drop", 3, 0, 0, 0, 0, false}},
      {"rand", {"rand", 4, 0, 0, 0, 0, false}},
  };
  auto it = kProfiles.find(api);
  if (it == kProfiles.end()) {
    return std::nullopt;
  }
  return it->second;
}

}  // namespace clara
