#include "src/nic/backend.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/nic/api_profile.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"

namespace clara {
namespace {

bool IsPow2(int64_t v) { return v > 0 && (v & (v - 1)) == 0; }

uint8_t Log2Pow2(int64_t v) {
  uint8_t n = 0;
  while (v > 1) {
    v >>= 1;
    ++n;
  }
  return n;
}

// Extra instructions needed to materialize a constant operand.
int ImmedCost(int64_t imm) {
  int64_t a = std::llabs(imm);
  if (a < 256) {
    return 0;
  }
  if (a < 65536) {
    return 1;
  }
  return 2;
}

NicRef Ref(const Value& v) {
  if (v.is_reg()) {
    return NicRef::R(v.reg);
  }
  if (v.is_const()) {
    return NicRef::I(v.imm);
  }
  return NicRef{};
}

NicAlu AluFor(Opcode op) {
  switch (op) {
    case Opcode::kAdd: return NicAlu::kAdd;
    case Opcode::kSub: return NicAlu::kSub;
    case Opcode::kAnd: return NicAlu::kAnd;
    case Opcode::kOr: return NicAlu::kOr;
    case Opcode::kXor: return NicAlu::kXor;
    case Opcode::kShl: return NicAlu::kShl;
    case Opcode::kLShr: return NicAlu::kShr;
    case Opcode::kAShr: return NicAlu::kAsr;
    default: return NicAlu::kNone;
  }
}

NicCc CcFor(Opcode op) {
  switch (op) {
    case Opcode::kIcmpEq: return NicCc::kEq;
    case Opcode::kIcmpNe: return NicCc::kNe;
    case Opcode::kIcmpUlt: return NicCc::kUlt;
    case Opcode::kIcmpUle: return NicCc::kUle;
    case Opcode::kIcmpUgt: return NicCc::kUgt;
    case Opcode::kIcmpUge: return NicCc::kUge;
    default: return NicCc::kNone;
  }
}

struct BlockInfo {
  std::map<uint32_t, Opcode> def_op;  // reg -> defining opcode (within block)
  std::map<uint32_t, int> uses;       // reg -> number of uses within block
  std::map<uint32_t, bool> only_store_uses;
};

BlockInfo AnalyzeBlock(const BasicBlock& b) {
  BlockInfo info;
  for (const auto& i : b.instrs) {
    if (i.result != 0) {
      info.def_op[i.result] = i.op;
      info.only_store_uses[i.result] = true;
    }
    for (size_t k = 0; k < i.operands.size(); ++k) {
      const Value& v = i.operands[k];
      if (v.is_reg()) {
        ++info.uses[v.reg];
        bool is_store_value = i.op == Opcode::kStore && k == 0;
        if (!is_store_value) {
          info.only_store_uses[v.reg] = false;
        }
      }
    }
  }
  return info;
}

class BlockTranslator {
 public:
  BlockTranslator(const Module& m, const Function& f, const NicBackendOptions& opts,
                  const std::set<uint32_t>& spilled_slots,
                  const std::map<uint32_t, Type>& reg_types, const BasicBlock& block,
                  RuleFirings* rules)
      : m_(m), f_(f), opts_(opts), spilled_(spilled_slots), reg_types_(reg_types),
        block_(block), info_(AnalyzeBlock(block)), rules_(rules) {}

  NicBlock Run() {
    for (size_t idx = 0; idx < block_.instrs.size(); ++idx) {
      Translate(block_.instrs[idx], idx);
    }
    for (const auto& ni : out_.instrs) {
      out_.issue_cycles += NicIssueCycles(ni.op);
      if (IsNicCompute(ni.op)) {
        if (ni.from_api) {
          ++out_.counts.api_compute;
        } else {
          ++out_.counts.compute;
        }
      } else if (ni.op == NicOp::kLmemRead || ni.op == NicOp::kLmemWrite) {
        ++out_.counts.mem_lmem;
      } else if (IsNicMem(ni.op)) {
        if (ni.space == AddressSpace::kState) {
          ++out_.counts.mem_state;
          out_.counts.state_words += ni.words;
        } else {
          ++out_.counts.mem_packet;
          out_.counts.pkt_words += ni.words;
        }
      }
    }
    return std::move(out_);
  }

 private:
  void Emit(NicOp op, bool from_api = false) {
    NicInstr i;
    i.op = op;
    i.from_api = from_api;
    out_.instrs.push_back(i);
  }

  void EmitN(NicOp op, int n, bool from_api = false) {
    for (int k = 0; k < n; ++k) {
      Emit(op, from_api);
    }
  }

  // Last emitted instruction; used to attach the executable payload of a
  // macro-op to its semantic carrier immediately after emission.
  NicInstr& Last() { return out_.instrs.back(); }

  // Records a zero-cost architectural register move (see NicMove).
  void EmitMove(uint32_t dst, NicRef src, Type vtype) {
    out_.moves.push_back(
        NicMove{static_cast<uint32_t>(out_.instrs.size()), dst, src, vtype});
  }

  // Emits a shared-memory access and returns its index in the output.
  size_t EmitMem(NicOp op, AddressSpace space, uint32_t sym, int words, bool from_api = false) {
    NicInstr i;
    i.op = op;
    i.space = space;
    i.sym = sym;
    i.words = static_cast<uint8_t>(std::min(words, 32));
    i.from_api = from_api;
    out_.instrs.push_back(i);
    return out_.instrs.size() - 1;
  }

  void OperandCosts(const Instruction& i) {
    for (const auto& v : i.operands) {
      if (v.is_const()) {
        int n = ImmedCost(v.imm);
        EmitN(NicOp::kImmed, n);
        rules_->immed_materializations += static_cast<uint32_t>(n);
      }
    }
  }

  bool DefinedBy(const Value& v, Opcode op) const {
    if (!v.is_reg()) {
      return false;
    }
    auto it = info_.def_op.find(v.reg);
    return it != info_.def_op.end() && it->second == op;
  }

  // Bit width of an operand's defining type (for sext); constants are full
  // 64-bit values already, unknown registers default to 32.
  uint8_t OperandWidth(const Value& v) const {
    if (!v.is_reg()) {
      return 64;
    }
    auto it = reg_types_.find(v.reg);
    return it == reg_types_.end() ? 32 : static_cast<uint8_t>(BitWidth(it->second));
  }

  // Word span [lo, hi] of a field access at byte `offset` of width `bits`.
  static std::pair<int, int> WordSpan(int offset, int bits) {
    int lo = offset / 4;
    int hi = (offset + bits / 8 - 1) / 4;
    return {lo, hi};
  }

  void TranslatePacketAccess(const Instruction& i) {
    bool is_load = i.op == Opcode::kLoad;
    const PacketFieldInfo& field = m_.packet_fields[i.sym];
    if (i.has_dyn_index) {
      // Payload byte with computed address: address calc + 1-word transfer +
      // byte extract/merge.
      NicRef midx = Ref(i.operands.back());
      Emit(NicOp::kAlu);  // address computation (scratch)
      size_t mi = EmitMem(is_load ? NicOp::kMemRead : NicOp::kMemWrite,
                          AddressSpace::kPacket, i.sym, 1);
      Emit(NicOp::kLdField);
      if (is_load) {
        NicInstr& lf = Last();
        lf.fmode = NicFieldMode::kExtract;
        lf.space = AddressSpace::kPacket;
        lf.sym = i.sym;
        lf.dst = i.result;
        lf.moff = field.byte_offset;
        lf.mbits = 8;
        lf.midx = midx;
        lf.vtype = i.type;
      } else {
        Last().fmode = NicFieldMode::kMerge;  // byte merge (scratch)
        NicInstr& mw = out_.instrs[mi];
        mw.a = Ref(i.operands[0]);
        mw.moff = field.byte_offset;
        mw.mbits = 8;
        mw.midx = midx;
        mw.vtype = i.type;
      }
      return;
    }
    auto [lo, hi] = WordSpan(field.byte_offset, BitWidth(field.type));
    bool subword = BitWidth(field.type) < 32 || field.byte_offset % 4 != 0;
    uint8_t mbits = static_cast<uint8_t>(BitWidth(field.type));
    if (is_load) {
      bool all_cached = opts_.coalesce_packet;
      for (int w = lo; w <= hi && all_cached; ++w) {
        all_cached = pkt_words_.count(w) > 0;
      }
      if (all_cached) {
        ++rules_->packet_coalesces;
        Emit(NicOp::kLdField);  // extract from the already-fetched word
        NicInstr& lf = Last();
        lf.fmode = NicFieldMode::kExtract;
        lf.space = AddressSpace::kPacket;
        lf.sym = i.sym;
        lf.dst = i.result;
        lf.moff = field.byte_offset;
        lf.mbits = mbits;
        lf.vtype = i.type;
        return;
      }
      size_t mi = EmitMem(NicOp::kMemRead, AddressSpace::kPacket, i.sym, hi - lo + 1);
      for (int w = lo; w <= hi; ++w) {
        pkt_words_.insert(w);
      }
      if (subword) {
        Emit(NicOp::kLdField);
        NicInstr& lf = Last();
        lf.fmode = NicFieldMode::kExtract;
        lf.space = AddressSpace::kPacket;
        lf.sym = i.sym;
        lf.dst = i.result;
        lf.moff = field.byte_offset;
        lf.mbits = mbits;
        lf.vtype = i.type;
      } else {
        NicInstr& mr = out_.instrs[mi];
        mr.fmode = NicFieldMode::kExtract;
        mr.dst = i.result;
        mr.moff = field.byte_offset;
        mr.mbits = mbits;
        mr.vtype = i.type;
      }
    } else {
      if (subword) {
        Emit(NicOp::kLdField);  // merge bytes into the word (scratch)
        Last().fmode = NicFieldMode::kMerge;
      }
      size_t mi = EmitMem(NicOp::kMemWrite, AddressSpace::kPacket, i.sym, hi - lo + 1);
      NicInstr& mw = out_.instrs[mi];
      mw.a = Ref(i.operands[0]);
      mw.moff = field.byte_offset;
      mw.mbits = mbits;
      mw.vtype = i.type;
      for (int w = lo; w <= hi; ++w) {
        pkt_words_.insert(w);  // word now resident in transfer registers
      }
    }
  }

  void TranslateStateAccess(const Instruction& i) {
    bool is_load = i.op == Opcode::kLoad;
    const StateVar& sv = m_.state[i.sym];
    int elem_bytes;
    if (sv.kind == StateKind::kMap) {
      elem_bytes = static_cast<int>(sv.key_bytes + sv.value_bytes);
    } else {
      elem_bytes = BitWidth(sv.elem_type) / 8;
    }
    // Address computation for dynamic element indices.
    uint32_t dyn_reg = 0;
    NicRef midx;
    if (i.has_dyn_index) {
      const Value& idx = i.operands.back();
      dyn_reg = idx.is_reg() ? idx.reg : 0xffffffffu;
      midx = Ref(idx);
      if (IsPow2(elem_bytes)) {
        Emit(NicOp::kAluShf);  // index << log2(stride) + base
      } else {
        EmitN(NicOp::kMulStep, 3);
        Emit(NicOp::kAlu);
      }
    }
    auto [lo, hi] = WordSpan(i.offset, BitWidth(i.type));
    int words = hi - lo + 1;
    bool subword = BitWidth(i.type) < 32 || i.offset % 4 != 0;
    uint8_t mbits = static_cast<uint8_t>(BitWidth(i.type));

    // Coalescing: LOADS whose word ranges intersect a just-issued load of
    // the same element are folded into that transfer (subword fields sharing
    // a 32-bit word arrive together). Stores stay 1:1 with source accesses.
    // This keeps the IR-level stateful count in close correspondence with
    // machine code (paper §3.2: 96.4%-100%) while leaving the source-level
    // packing optimization to Clara's §4.4 analysis.
    if (opts_.coalesce_state && is_load && last_state_.valid && last_state_.sym == i.sym &&
        last_state_.is_load && last_state_.dyn_reg == dyn_reg &&
        lo <= last_state_.hi && hi >= last_state_.lo) {
      int new_lo = std::min(lo, last_state_.lo);
      int new_hi = std::max(hi, last_state_.hi);
      NicInstr& prev = out_.instrs[last_state_.instr_index];
      int prev_words = prev.words;
      int merged = new_hi - new_lo + 1;
      if (merged <= 16) {
        ++rules_->state_coalesces;
        prev.words = static_cast<uint8_t>(merged);
        static_cast<void>(prev_words);  // word totals are tallied in Run()
        last_state_.lo = new_lo;
        last_state_.hi = new_hi;
        Emit(NicOp::kLdField);  // extract/merge within the wide transfer
        NicInstr& lf = Last();
        lf.fmode = NicFieldMode::kExtract;
        lf.space = AddressSpace::kState;
        lf.sym = i.sym;
        lf.dst = i.result;
        lf.moff = i.offset;
        lf.mbits = mbits;
        lf.midx = midx;
        lf.vtype = i.type;
        return;
      }
    }
    size_t mem_idx = EmitMem(is_load ? NicOp::kMemRead : NicOp::kMemWrite,
                             AddressSpace::kState, i.sym, words);
    if (subword) {
      Emit(NicOp::kLdField);
      if (is_load) {
        NicInstr& lf = Last();
        lf.fmode = NicFieldMode::kExtract;
        lf.space = AddressSpace::kState;
        lf.sym = i.sym;
        lf.dst = i.result;
        lf.moff = i.offset;
        lf.mbits = mbits;
        lf.midx = midx;
        lf.vtype = i.type;
      } else {
        Last().fmode = NicFieldMode::kMerge;  // scratch merge
      }
    }
    NicInstr& mem = out_.instrs[mem_idx];
    if (is_load) {
      if (!subword) {
        mem.fmode = NicFieldMode::kExtract;
        mem.dst = i.result;
        mem.moff = i.offset;
        mem.mbits = mbits;
        mem.midx = midx;
        mem.vtype = i.type;
      }
    } else {
      mem.a = Ref(i.operands[0]);
      mem.moff = i.offset;
      mem.mbits = mbits;
      mem.midx = midx;
      mem.vtype = i.type;
    }
    last_state_ = LastState{true, i.sym, dyn_reg, lo, hi, is_load, mem_idx};
  }

  // Attaches API call semantics (callee + up to three argument refs) to the
  // macro-op's semantic carrier.
  void SetCallPayload(NicInstr& n, const Instruction& i) {
    n.callee = i.callee;
    n.dst = i.result;
    n.vtype = i.type;
    if (!i.operands.empty()) {
      n.a = Ref(i.operands[0]);
    }
    if (i.operands.size() > 1) {
      n.b = Ref(i.operands[1]);
    }
    if (i.operands.size() > 2) {
      n.c = Ref(i.operands[2]);
    }
  }

  void TranslateCall(const Instruction& i) {
    last_state_.valid = false;
    auto prof = LookupApiProfile(m_.apis[i.callee].name);
    if (!prof.has_value()) {
      Emit(NicOp::kAlu, /*from_api=*/true);
      SetCallPayload(Last(), i);
      return;
    }
    ++rules_->api_expansions;
    int compute = prof->compute_instrs;
    bool carried = false;
    if (prof->uses_accelerator) {
      Emit(NicOp::kCsr, /*from_api=*/true);
      SetCallPayload(Last(), i);
      carried = true;
      compute = std::max(0, compute - 1);
    }
    for (int k = 0; k < compute; ++k) {
      Emit(NicOp::kAlu, /*from_api=*/true);
      if (!carried) {
        SetCallPayload(Last(), i);
        carried = true;
      }
    }
    // Packet traffic from library code arrives in 4-word bursts.
    for (int left = prof->pkt_read_words; left > 0; left -= 4) {
      EmitMem(NicOp::kMemRead, AddressSpace::kPacket, 0, std::min(left, 4),
              /*from_api=*/true);
    }
    for (int left = prof->pkt_write_words; left > 0; left -= 4) {
      EmitMem(NicOp::kMemWrite, AddressSpace::kPacket, 0, std::min(left, 4),
              /*from_api=*/true);
    }
  }

  void Translate(const Instruction& i, size_t idx) {
    switch (i.op) {
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor: {
        OperandCosts(i);
        Emit(NicOp::kAlu);
        NicInstr& n = Last();
        n.alu = AluFor(i.op);
        n.vtype = i.type;
        n.dst = i.result;
        n.a = Ref(i.operands[0]);
        n.b = Ref(i.operands[1]);
        break;
      }
      case Opcode::kShl:
      case Opcode::kLShr:
      case Opcode::kAShr: {
        if (!i.operands[1].is_const()) {
          Emit(NicOp::kAlu);  // fetch the indirect shift amount (scratch)
        }
        Emit(NicOp::kAluShf);
        NicInstr& n = Last();
        n.alu = AluFor(i.op);
        n.vtype = i.type;
        n.dst = i.result;
        n.a = Ref(i.operands[0]);
        n.b = Ref(i.operands[1]);  // amount masked by (width-1) at execution
        break;
      }
      case Opcode::kMul: {
        const Value& rhs = i.operands[1];
        if (rhs.is_const() && IsPow2(rhs.imm)) {
          ++rules_->mul_pow2_shifts;
          Emit(NicOp::kAluShf);
          NicInstr& n = Last();
          // Synthetic shift: `shift` holds the raw exponent (no width
          // masking) so mul by 2^k, k >= width, correctly yields zero.
          n.alu = NicAlu::kShl;
          n.vtype = i.type;
          n.dst = i.result;
          n.a = Ref(i.operands[0]);
          n.shift = Log2Pow2(rhs.imm);
        } else if (rhs.is_const()) {
          ++rules_->mul_expansions;
          rules_->immed_materializations += static_cast<uint32_t>(ImmedCost(rhs.imm));
          EmitN(NicOp::kImmed, ImmedCost(rhs.imm));
          EmitN(NicOp::kMulStep, 3);
          NicInstr& n = Last();
          n.mul_last = true;
          n.vtype = i.type;
          n.dst = i.result;
          n.a = Ref(i.operands[0]);
          n.b = Ref(rhs);
        } else {
          ++rules_->mul_expansions;
          EmitN(NicOp::kMulStep, 4);
          NicInstr& n = Last();
          n.mul_last = true;
          n.vtype = i.type;
          n.dst = i.result;
          n.a = Ref(i.operands[0]);
          n.b = Ref(rhs);
        }
        break;
      }
      case Opcode::kUDiv:
      case Opcode::kURem: {
        const Value& rhs = i.operands[1];
        if (rhs.is_const() && IsPow2(rhs.imm)) {
          if (i.op == Opcode::kUDiv) {
            Emit(NicOp::kAluShf);
            NicInstr& n = Last();
            n.alu = NicAlu::kShr;
            n.vtype = i.type;
            n.dst = i.result;
            n.a = Ref(i.operands[0]);
            n.shift = Log2Pow2(rhs.imm);  // raw exponent, like mul-pow2
          } else {
            Emit(NicOp::kAlu);
            NicInstr& n = Last();
            n.alu = NicAlu::kAnd;
            n.vtype = i.type;
            n.dst = i.result;
            n.a = Ref(i.operands[0]);
            n.b = NicRef::I(rhs.imm - 1);
          }
        } else {
          // Software divide: restore-style loop, unrolled by the library.
          // The final kAlu of the routine delivers the quotient/remainder;
          // the trailing shift/branch ops are loop bookkeeping (scratch).
          ++rules_->div_expansions;
          ++rules_->immed_materializations;
          Emit(NicOp::kImmed);
          EmitN(NicOp::kAlu, 12);
          NicInstr& n = Last();
          n.alu = i.op == Opcode::kUDiv ? NicAlu::kUDiv : NicAlu::kURem;
          n.vtype = i.type;
          n.dst = i.result;
          n.a = Ref(i.operands[0]);
          n.b = Ref(rhs);
          EmitN(NicOp::kAluShf, 4);
          EmitN(NicOp::kBcc, 2);
          break;
        }
        break;
      }
      case Opcode::kIcmpEq:
      case Opcode::kIcmpNe:
      case Opcode::kIcmpUlt:
      case Opcode::kIcmpUle:
      case Opcode::kIcmpUgt:
      case Opcode::kIcmpUge: {
        OperandCosts(i);
        bool fused = FusesWithTerminator(i, idx);
        if (fused) {
          ++rules_->cmp_branch_fusions;
          Emit(NicOp::kAlu);  // compare sets condition codes
          NicInstr& n = Last();
          n.alu = NicAlu::kCmp;
          n.cc = CcFor(i.op);
          n.vtype = Type::kI1;
          n.dst = i.result;  // flag value also lands in the i1 register
          n.a = Ref(i.operands[0]);
          n.b = Ref(i.operands[1]);
        } else {
          ++rules_->cmp_materializations;
          Emit(NicOp::kAlu);
          NicInstr& cmp = Last();
          cmp.alu = NicAlu::kCmp;
          cmp.cc = CcFor(i.op);
          cmp.vtype = Type::kI1;
          cmp.a = Ref(i.operands[0]);
          cmp.b = Ref(i.operands[1]);
          Emit(NicOp::kAluShf);  // shift the flag into place (scratch)
          Emit(NicOp::kAlu);     // materialize 0/1
          NicInstr& set = Last();
          set.alu = NicAlu::kSetCc;
          set.vtype = Type::kI1;
          set.dst = i.result;
        }
        break;
      }
      case Opcode::kZext: {
        const Value& src = i.operands[0];
        if (src.is_const() || DefinedBy(src, Opcode::kLoad)) {
          ++rules_->zext_elisions;
          EmitMove(i.result, Ref(src), i.type);
          break;  // loads zero-extend for free
        }
        Emit(NicOp::kAlu);
        NicInstr& n = Last();
        n.alu = NicAlu::kMov;
        n.vtype = i.type;
        n.dst = i.result;
        n.a = Ref(src);
        break;
      }
      case Opcode::kSext: {
        EmitN(NicOp::kAluShf, 2);
        NicInstr& n = Last();
        n.alu = NicAlu::kSext;
        n.vtype = i.type;
        n.dst = i.result;
        n.a = Ref(i.operands[0]);
        n.shift = OperandWidth(i.operands[0]);  // sign bit position
        break;
      }
      case Opcode::kTrunc: {
        auto it = info_.only_store_uses.find(i.result);
        bool store_only = it != info_.only_store_uses.end() && it->second &&
                          info_.uses.count(i.result) > 0;
        if (!store_only && BitWidth(i.type) < 32) {
          Emit(NicOp::kAlu);  // mask
          NicInstr& n = Last();
          n.alu = NicAlu::kMov;
          n.vtype = i.type;
          n.dst = i.result;
          n.a = Ref(i.operands[0]);
        } else {
          EmitMove(i.result, Ref(i.operands[0]), i.type);
        }
        break;
      }
      case Opcode::kSelect: {
        OperandCosts(i);
        EmitN(NicOp::kAlu, 3);
        NicInstr& n = Last();
        n.alu = NicAlu::kSelect;
        n.vtype = i.type;
        n.dst = i.result;
        n.c = Ref(i.operands[0]);
        n.a = Ref(i.operands[1]);
        n.b = Ref(i.operands[2]);
        break;
      }
      case Opcode::kLoad:
      case Opcode::kStore:
        switch (i.space) {
          case AddressSpace::kStack: {
            uint32_t slot_reg = kNicSlotRegBase + i.sym;
            if (spilled_.count(i.sym) > 0) {
              Emit(i.op == Opcode::kLoad ? NicOp::kLmemRead : NicOp::kLmemWrite);
              NicInstr& n = Last();
              n.vtype = i.type;
              if (i.op == Opcode::kLoad) {
                n.dst = i.result;
                n.a = NicRef::R(slot_reg);
              } else {
                n.dst = slot_reg;
                n.a = Ref(i.operands[0]);
              }
              break;
            }
            // Register-allocated slots cost nothing: a zero-cost move.
            if (i.op == Opcode::kLoad) {
              EmitMove(i.result, NicRef::R(slot_reg), i.type);
            } else {
              EmitMove(slot_reg, Ref(i.operands[0]), i.type);
            }
            break;
          }
          case AddressSpace::kPacket:
            TranslatePacketAccess(i);
            break;
          case AddressSpace::kState:
            TranslateStateAccess(i);
            break;
          case AddressSpace::kNone:
            break;
        }
        break;
      case Opcode::kCall:
        TranslateCall(i);
        break;
      case Opcode::kBr:
      case Opcode::kRet: {
        Emit(NicOp::kBr);
        NicInstr& n = Last();
        if (i.op == Opcode::kRet) {
          n.is_ret = true;
        } else {
          n.has_targets = true;
          n.t0 = i.target0;
          n.t1 = i.target0;
        }
        break;
      }
      case Opcode::kCondBr: {
        const Value& c = i.operands[0];
        if (!(c.is_reg() && IsCompare(info_.def_op.count(c.reg) > 0
                                          ? info_.def_op[c.reg]
                                          : Opcode::kAdd) &&
              info_.uses[c.reg] == 1)) {
          Emit(NicOp::kAlu);  // test the boolean explicitly
          NicInstr& t = Last();
          t.alu = NicAlu::kTest;
          t.a = Ref(c);
        }
        Emit(NicOp::kBcc);
        NicInstr& n = Last();
        n.has_targets = true;
        n.cc = NicCc::kNe;
        n.a = Ref(c);  // branch decided on the condition register directly
        n.t0 = i.target0;
        n.t1 = i.target1;
        break;
      }
    }
  }

  bool FusesWithTerminator(const Instruction& cmp, size_t idx) const {
    if (cmp.result == 0) {
      return false;
    }
    auto it = info_.uses.find(cmp.result);
    if (it == info_.uses.end() || it->second != 1) {
      return false;
    }
    const auto& instrs = block_.instrs;
    if (instrs.empty() || instrs.back().op != Opcode::kCondBr) {
      return false;
    }
    const Value& c = instrs.back().operands[0];
    return c.is_reg() && c.reg == cmp.result;
  }

  struct LastState {
    bool valid = false;
    uint32_t sym = 0;
    uint32_t dyn_reg = 0;
    int lo = 0;
    int hi = 0;
    bool is_load = true;
    size_t instr_index = 0;
  };

  const Module& m_;
  const Function& f_;
  const NicBackendOptions& opts_;
  const std::set<uint32_t>& spilled_;
  const std::map<uint32_t, Type>& reg_types_;
  const BasicBlock& block_;
  BlockInfo info_;
  RuleFirings* rules_;
  NicBlock out_;
  std::set<int> pkt_words_;
  LastState last_state_;
};

}  // namespace

NicProgram CompileToNic(const Module& m, const Function& f, const NicBackendOptions& opts) {
  NicProgram prog;
  prog.name = m.name;

  // Register allocation: promote the most-accessed stack slots to GPRs.
  std::vector<std::pair<uint64_t, uint32_t>> slot_freq(f.slots.size());
  for (size_t s = 0; s < f.slots.size(); ++s) {
    slot_freq[s] = {0, static_cast<uint32_t>(s)};
  }
  for (const auto& b : f.blocks) {
    for (const auto& i : b.instrs) {
      if ((i.op == Opcode::kLoad || i.op == Opcode::kStore) &&
          i.space == AddressSpace::kStack && i.sym < f.slots.size()) {
        ++slot_freq[i.sym].first;
      }
    }
  }
  std::sort(slot_freq.begin(), slot_freq.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::set<uint32_t> spilled;
  for (size_t rank = 0; rank < slot_freq.size(); ++rank) {
    if (static_cast<int>(rank) >= opts.gpr_budget) {
      spilled.insert(slot_freq[rank].second);
    } else if (slot_freq[rank].first > 0) {
      ++prog.rules.stack_promotions;
    }
  }
  for (const auto& [freq, slot] : slot_freq) {
    if (freq > 0 && spilled.count(slot) > 0) {
      ++prog.rules.stack_spills;
    }
  }

  // Function-wide result types, so expansions that need an operand's width
  // (e.g. sext) can look past block boundaries.
  std::map<uint32_t, Type> reg_types;
  for (const auto& b : f.blocks) {
    for (const auto& i : b.instrs) {
      if (i.result != 0) {
        reg_types[i.result] = i.type;
      }
    }
  }

  for (const auto& b : f.blocks) {
    prog.blocks.push_back(
        BlockTranslator(m, f, opts, spilled, reg_types, b, &prog.rules).Run());
  }

  if (obs::Enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("nic.backend.compilations").Add(1);
    const RuleFirings& r = prog.rules;
    reg.GetCounter("nic.backend.rule.mul_pow2_shift").Add(r.mul_pow2_shifts);
    reg.GetCounter("nic.backend.rule.mul_expansion").Add(r.mul_expansions);
    reg.GetCounter("nic.backend.rule.div_expansion").Add(r.div_expansions);
    reg.GetCounter("nic.backend.rule.cmp_branch_fusion").Add(r.cmp_branch_fusions);
    reg.GetCounter("nic.backend.rule.cmp_materialization").Add(r.cmp_materializations);
    reg.GetCounter("nic.backend.rule.immed_materialization").Add(r.immed_materializations);
    reg.GetCounter("nic.backend.rule.zext_elision").Add(r.zext_elisions);
    reg.GetCounter("nic.backend.rule.packet_coalesce").Add(r.packet_coalesces);
    reg.GetCounter("nic.backend.rule.state_coalesce").Add(r.state_coalesces);
    reg.GetCounter("nic.backend.rule.stack_promotion").Add(r.stack_promotions);
    reg.GetCounter("nic.backend.rule.stack_spill").Add(r.stack_spills);
    reg.GetCounter("nic.backend.rule.api_expansion").Add(r.api_expansions);
  }
  return prog;
}

NicProgram CompileToNic(const Module& m, const NicBackendOptions& opts) {
  return CompileToNic(m, m.functions.at(0), opts);
}

namespace {

// FNV-1a 64-bit over the raw fields the backend consumes.
struct Fnv {
  uint64_t h = 0xcbf29ce484222325ULL;
  void Bytes(const void* p, size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (size_t i = 0; i < n; ++i) {
      h = (h ^ b[i]) * 0x100000001b3ULL;
    }
  }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void I64(int64_t v) { Bytes(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }
};

struct CompileCache {
  std::mutex mu;
  std::unordered_map<uint64_t, NicProgram> entries;
  // Bounds memory on open-ended sweeps; the corpus workloads fit comfortably.
  static constexpr size_t kMaxEntries = 8192;
};

CompileCache& Cache() {
  static CompileCache* cache = new CompileCache();
  return *cache;
}

}  // namespace

uint64_t NicCompileKey(const Module& m, const Function& f, const NicBackendOptions& opts) {
  Fnv fnv;
  fnv.Str(m.name);
  fnv.I64(opts.gpr_budget);
  fnv.U64(static_cast<uint64_t>(opts.coalesce_packet) << 1 |
          static_cast<uint64_t>(opts.coalesce_state));
  fnv.U64(m.state.size());
  for (const auto& sv : m.state) {
    fnv.U64(static_cast<uint64_t>(sv.kind));
    fnv.U64(static_cast<uint64_t>(sv.elem_type));
    fnv.U64(sv.length);
    fnv.U64(sv.key_bytes);
    fnv.U64(sv.value_bytes);
    fnv.U64(sv.capacity);
  }
  fnv.U64(m.packet_fields.size());
  for (const auto& pf : m.packet_fields) {
    fnv.U64(static_cast<uint64_t>(pf.type));
    fnv.U64(pf.byte_offset);
  }
  fnv.U64(m.apis.size());
  for (const auto& api : m.apis) {
    fnv.Str(api.name);  // profiles are looked up by name
  }
  fnv.U64(f.slots.size());
  for (const auto& s : f.slots) {
    fnv.U64(static_cast<uint64_t>(s.type));
  }
  fnv.U64(f.blocks.size());
  for (const auto& b : f.blocks) {
    fnv.U64(b.instrs.size());
    for (const auto& i : b.instrs) {
      fnv.U64(static_cast<uint64_t>(i.op));
      fnv.U64(static_cast<uint64_t>(i.type));
      fnv.U64(i.result);
      fnv.U64(i.operands.size());
      for (const auto& v : i.operands) {
        fnv.U64(static_cast<uint64_t>(v.kind));
        fnv.I64(v.imm);
        fnv.U64(v.reg);
      }
      fnv.U64(static_cast<uint64_t>(i.space));
      fnv.U64(i.sym);
      fnv.I64(i.offset);
      fnv.U64(i.has_dyn_index ? 1 : 0);
      fnv.U64(i.callee);
      fnv.U64(i.target0);
      fnv.U64(i.target1);
    }
  }
  return fnv.h;
}

NicProgram CompileToNicCached(const Module& m, const Function& f,
                              const NicBackendOptions& opts) {
  uint64_t key = NicCompileKey(m, f, opts);
  CompileCache& cache = Cache();
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    auto it = cache.entries.find(key);
    if (it != cache.entries.end()) {
      if (obs::Enabled()) {
        obs::MetricsRegistry::Global().GetCounter("nic.backend.cache.hit").Add(1);
      }
      return it->second;
    }
  }
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global().GetCounter("nic.backend.cache.miss").Add(1);
  }
  NicProgram prog = CompileToNic(m, f, opts);  // compile outside the lock
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    if (cache.entries.size() < CompileCache::kMaxEntries) {
      cache.entries.emplace(key, prog);
    }
  }
  return prog;
}

NicProgram CompileToNicCached(const Module& m, const NicBackendOptions& opts) {
  return CompileToNicCached(m, m.functions.at(0), opts);
}

size_t NicCompileCacheSize() {
  CompileCache& cache = Cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  return cache.entries.size();
}

void ClearNicCompileCache() {
  CompileCache& cache = Cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.entries.clear();
}

}  // namespace clara
