#include "src/ml/simd.h"

namespace clara {
namespace simd {
namespace {

#if defined(CLARA_SIMD_ENABLED) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define CLARA_SIMD_X86 1
#else
#define CLARA_SIMD_X86 0
#endif

struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;

  CpuFeatures() {
#if CLARA_SIMD_X86
    avx2 = __builtin_cpu_supports("avx2");
    fma = __builtin_cpu_supports("fma");
#endif
  }
};

const CpuFeatures& Features() {
  static const CpuFeatures f;
  return f;
}

}  // namespace

bool CompiledWithSimd() { return CLARA_SIMD_X86 != 0; }

bool HasAvx2() { return Features().avx2; }

bool HasFma() { return Features().fma; }

std::string FeatureString() {
  std::string s;
  if (HasAvx2()) {
    s = "avx2";
  }
  if (HasFma()) {
    s += s.empty() ? "fma" : ",fma";
  }
  if (s.empty()) {
    s = "none";
  }
  return s;
}

}  // namespace simd
}  // namespace clara
