#include "src/ml/pca.h"

#include <cmath>

namespace clara {

FeatureVec PcaResult::Project(const FeatureVec& x) const {
  FeatureVec out(components.size(), 0.0);
  for (size_t c = 0; c < components.size(); ++c) {
    for (size_t j = 0; j < components[c].size() && j < x.size(); ++j) {
      out[c] += (x[j] - mean[j]) * components[c][j];
    }
  }
  return out;
}

PcaResult ComputePca(const std::vector<FeatureVec>& x, int num_components) {
  PcaResult r;
  if (x.empty()) {
    return r;
  }
  size_t n = x.size();
  size_t d = x[0].size();
  r.mean.assign(d, 0.0);
  for (const auto& row : x) {
    for (size_t j = 0; j < d; ++j) {
      r.mean[j] += row[j];
    }
  }
  for (auto& m : r.mean) {
    m /= static_cast<double>(n);
  }

  // Covariance matrix (d x d). Feature dims here are small (pattern counts).
  std::vector<double> cov(d * d, 0.0);
  for (const auto& row : x) {
    for (size_t a = 0; a < d; ++a) {
      double da = row[a] - r.mean[a];
      for (size_t b = a; b < d; ++b) {
        cov[a * d + b] += da * (row[b] - r.mean[b]);
      }
    }
  }
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = a; b < d; ++b) {
      cov[a * d + b] /= static_cast<double>(n);
      cov[b * d + a] = cov[a * d + b];
    }
  }

  for (int c = 0; c < num_components; ++c) {
    // Power iteration.
    FeatureVec v(d, 1.0 / std::sqrt(static_cast<double>(d)));
    double eigenvalue = 0;
    for (int it = 0; it < 300; ++it) {
      FeatureVec av(d, 0.0);
      for (size_t a = 0; a < d; ++a) {
        double s = 0;
        for (size_t b = 0; b < d; ++b) {
          s += cov[a * d + b] * v[b];
        }
        av[a] = s;
      }
      double norm = 0;
      for (double val : av) {
        norm += val * val;
      }
      norm = std::sqrt(norm);
      if (norm < 1e-15) {
        break;
      }
      for (size_t a = 0; a < d; ++a) {
        av[a] /= norm;
      }
      eigenvalue = norm;
      v = av;
    }
    r.components.push_back(v);
    r.explained_variance.push_back(eigenvalue);
    // Deflate.
    for (size_t a = 0; a < d; ++a) {
      for (size_t b = 0; b < d; ++b) {
        cov[a * d + b] -= eigenvalue * v[a] * v[b];
      }
    }
  }
  return r;
}

}  // namespace clara
