// Linear models: multiclass (one-vs-rest) soft-margin SVM trained with
// subgradient descent — Clara's algorithm-identification classifier (§4.1).
#ifndef SRC_ML_LINEAR_H_
#define SRC_ML_LINEAR_H_

#include <vector>

#include "src/ml/common.h"

namespace clara {

struct SvmOptions {
  int epochs = 200;
  double learning_rate = 0.05;
  double l2 = 1e-3;
  uint64_t seed = 13;
};

class LinearSvm : public Classifier {
 public:
  explicit LinearSvm(SvmOptions opts = SvmOptions{}) : opts_(opts) {}

  void Fit(const TabularDataset& data, int num_classes) override;
  int Predict(const FeatureVec& x) const override;
  // Raw margin of class c on x (post-standardization).
  double Margin(const FeatureVec& x, int c) const;
  std::string Describe() const override { return "linear-svm-ovr"; }

  // Learned weights for inspection (one row per class; last entry is bias).
  const std::vector<std::vector<double>>& weights() const { return w_; }

  void SaveTo(BinWriter& w) const;
  bool LoadFrom(BinReader& r);

 private:
  SvmOptions opts_;
  Standardizer std_;
  std::vector<std::vector<double>> w_;  // [class][dim+1]
};

}  // namespace clara

#endif  // SRC_ML_LINEAR_H_
