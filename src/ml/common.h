// Shared dataset types and model interfaces for Clara's ML engine.
//
// All learning components are implemented from scratch (the paper used
// TensorFlow/Scikit-learn/XGBoost; see DESIGN.md substitutions) on top of
// plain double vectors: feature-vector models implement Regressor/Classifier,
// sequence models implement SeqRegressor over token-id sequences.
#ifndef SRC_ML_COMMON_H_
#define SRC_ML_COMMON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace clara {

// Binary artifact serialization (src/util/binio.h). Every trained model
// implements SaveTo/LoadFrom against these; LoadFrom returns false (and
// poisons the reader) on truncated, corrupted, or dimensionally inconsistent
// input, and loaded models predict bit-identically to the saved ones.
class BinWriter;
class BinReader;

using FeatureVec = std::vector<double>;

struct TabularDataset {
  std::vector<FeatureVec> x;
  std::vector<double> y;  // regression target or class label (as double)

  size_t size() const { return x.size(); }
  size_t dim() const { return x.empty() ? 0 : x[0].size(); }
};

struct SeqExample {
  std::vector<int> tokens;  // token ids in [0, vocab)
  double target = 0;
};

struct SeqDataset {
  int vocab = 0;
  std::vector<SeqExample> examples;
};

class Regressor {
 public:
  virtual ~Regressor() = default;
  virtual void Fit(const TabularDataset& data) = 0;
  virtual double Predict(const FeatureVec& x) const = 0;
  virtual std::string Describe() const = 0;
};

class Classifier {
 public:
  virtual ~Classifier() = default;
  // Labels must be integers 0..num_classes-1 stored in y.
  virtual void Fit(const TabularDataset& data, int num_classes) = 0;
  virtual int Predict(const FeatureVec& x) const = 0;
  virtual std::string Describe() const = 0;
};

class SeqRegressor {
 public:
  virtual ~SeqRegressor() = default;
  virtual void Fit(const SeqDataset& data) = 0;
  virtual double Predict(const std::vector<int>& tokens) const = 0;
  virtual std::string Describe() const = 0;
};

// Feature standardization (z-score). Degenerate features get stddev 1.
class Standardizer {
 public:
  void Fit(const std::vector<FeatureVec>& x);
  FeatureVec Apply(const FeatureVec& x) const;
  std::vector<FeatureVec> ApplyAll(const std::vector<FeatureVec>& x) const;
  bool fitted() const { return !mean_.empty(); }

  void SaveTo(BinWriter& w) const;
  bool LoadFrom(BinReader& r);

 private:
  FeatureVec mean_;
  FeatureVec inv_std_;
};

}  // namespace clara

#endif  // SRC_ML_COMMON_H_
