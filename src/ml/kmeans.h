// K-means clustering (k-means++ init, Lloyd iterations) — the variable-
// packing clusterer of paper §4.4.
#ifndef SRC_ML_KMEANS_H_
#define SRC_ML_KMEANS_H_

#include <vector>

#include "src/ml/common.h"

namespace clara {

struct KMeansResult {
  std::vector<FeatureVec> centroids;
  std::vector<int> assignment;  // per input row
  double inertia = 0;           // sum of squared distances to centroids
};

KMeansResult KMeans(const std::vector<FeatureVec>& x, int k, int iters = 50,
                    uint64_t seed = 17);

// Chooses k in [1, max_k] by the elbow rule: the smallest k whose relative
// inertia improvement over k-1 falls below `min_gain`.
int ChooseKByElbow(const std::vector<FeatureVec>& x, int max_k, double min_gain = 0.15,
                   uint64_t seed = 17);

// Artifact serialization for a clustering result (free functions since
// KMeansResult is a plain struct).
void SaveKMeansResult(BinWriter& w, const KMeansResult& res);
bool LoadKMeansResult(BinReader& r, KMeansResult* out);

}  // namespace clara

#endif  // SRC_ML_KMEANS_H_
