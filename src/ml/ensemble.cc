#include "src/ml/ensemble.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/util/binio.h"

namespace clara {
namespace {

constexpr uint16_t kGbdtTag = 0x4742;    // "GB"
constexpr uint16_t kForestTag = 0x5246;  // "RF"
constexpr uint16_t kOvrTag = 0x4F56;     // "OV"
constexpr uint16_t kRankerTag = 0x524B;  // "RK"

// Reads a tree count written by SaveTrees below, rejecting counts that cannot
// possibly fit in the remaining bytes (each serialized tree is >= 6 bytes).
bool LoadTrees(BinReader& r, std::vector<RegressionTree>* trees, const char* what) {
  uint32_t count = r.U32();
  if (!r.ok() || static_cast<uint64_t>(count) * 6 > r.remaining()) {
    r.Fail(std::string(what) + ": tree count exceeds remaining bytes");
    return false;
  }
  trees->clear();
  trees->reserve(count);
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    RegressionTree tree;
    if (!tree.LoadFrom(r)) {
      return false;
    }
    trees->push_back(std::move(tree));
  }
  return r.ok();
}

void SaveTrees(BinWriter& w, const std::vector<RegressionTree>& trees) {
  w.U32(static_cast<uint32_t>(trees.size()));
  for (const auto& t : trees) {
    t.SaveTo(w);
  }
}

}  // namespace

void GbdtRegressor::Fit(const TabularDataset& data) {
  trees_.clear();
  if (data.size() == 0) {
    base_ = 0;
    return;
  }
  base_ = std::accumulate(data.y.begin(), data.y.end(), 0.0) / data.size();
  std::vector<double> pred(data.size(), base_);
  std::vector<double> residual(data.size());
  std::vector<size_t> idx(data.size());
  std::iota(idx.begin(), idx.end(), 0);
  for (int round = 0; round < opts_.rounds; ++round) {
    for (size_t i = 0; i < data.size(); ++i) {
      residual[i] = data.y[i] - pred[i];
    }
    RegressionTree tree(opts_.tree);
    tree.FitSubset(data.x, residual, idx);
    for (size_t i = 0; i < data.size(); ++i) {
      pred[i] += opts_.learning_rate * tree.Predict(data.x[i]);
    }
    trees_.push_back(std::move(tree));
  }
}

void GbdtRegressor::SaveTo(BinWriter& w) const {
  w.U16(kGbdtTag);
  // Predict() scales each tree by the learning rate, so it is part of the
  // trained model, not just a fit-time hyperparameter.
  w.F64(opts_.learning_rate);
  w.F64(base_);
  SaveTrees(w, trees_);
}

bool GbdtRegressor::LoadFrom(BinReader& r) {
  if (r.U16() != kGbdtTag) {
    r.Fail("gbdt: bad section tag");
    return false;
  }
  opts_.learning_rate = r.F64();
  base_ = r.F64();
  return LoadTrees(r, &trees_, "gbdt");
}

double GbdtRegressor::Predict(const FeatureVec& x) const {
  double y = base_;
  for (const auto& t : trees_) {
    y += opts_.learning_rate * t.Predict(x);
  }
  return y;
}

void RandomForestRegressor::Fit(const TabularDataset& data) {
  trees_.clear();
  if (data.size() == 0) {
    return;
  }
  Rng rng(opts_.seed);
  size_t sample = std::max<size_t>(1, static_cast<size_t>(data.size() * opts_.sample_fraction));
  TreeOptions topts = opts_.tree;
  if (topts.feature_subsample == 0) {
    topts.feature_subsample =
        std::max(1, static_cast<int>(std::sqrt(static_cast<double>(data.dim()))));
  }
  for (int t = 0; t < opts_.trees; ++t) {
    std::vector<size_t> idx(sample);
    for (auto& i : idx) {
      i = rng.NextBounded(data.size());
    }
    RegressionTree tree(topts);
    tree.FitSubset(data.x, data.y, idx, &rng);
    trees_.push_back(std::move(tree));
  }
}

void RandomForestRegressor::SaveTo(BinWriter& w) const {
  w.U16(kForestTag);
  SaveTrees(w, trees_);
}

bool RandomForestRegressor::LoadFrom(BinReader& r) {
  if (r.U16() != kForestTag) {
    r.Fail("random forest: bad section tag");
    return false;
  }
  return LoadTrees(r, &trees_, "random forest");
}

double RandomForestRegressor::Predict(const FeatureVec& x) const {
  if (trees_.empty()) {
    return 0;
  }
  double sum = 0;
  for (const auto& t : trees_) {
    sum += t.Predict(x);
  }
  return sum / static_cast<double>(trees_.size());
}

void GbdtClassifier::Fit(const TabularDataset& data, int num_classes) {
  per_class_.clear();
  for (int c = 0; c < num_classes; ++c) {
    TabularDataset binary;
    binary.x = data.x;
    binary.y.resize(data.size());
    for (size_t i = 0; i < data.size(); ++i) {
      binary.y[i] = static_cast<int>(data.y[i]) == c ? 1.0 : 0.0;
    }
    GbdtRegressor reg(opts_);
    reg.Fit(binary);
    per_class_.push_back(std::move(reg));
  }
}

void GbdtClassifier::SaveTo(BinWriter& w) const {
  w.U16(kOvrTag);
  w.U32(static_cast<uint32_t>(per_class_.size()));
  for (const auto& reg : per_class_) {
    reg.SaveTo(w);
  }
}

bool GbdtClassifier::LoadFrom(BinReader& r) {
  if (r.U16() != kOvrTag) {
    r.Fail("gbdt classifier: bad section tag");
    return false;
  }
  uint32_t count = r.U32();
  if (!r.ok() || static_cast<uint64_t>(count) * 6 > r.remaining()) {
    r.Fail("gbdt classifier: class count exceeds remaining bytes");
    return false;
  }
  per_class_.clear();
  per_class_.reserve(count);
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    GbdtRegressor reg;
    if (!reg.LoadFrom(r)) {
      return false;
    }
    per_class_.push_back(std::move(reg));
  }
  return r.ok();
}

int GbdtClassifier::Predict(const FeatureVec& x) const {
  int best = 0;
  double best_score = -1e300;
  for (size_t c = 0; c < per_class_.size(); ++c) {
    double s = per_class_[c].Predict(x);
    if (s > best_score) {
      best_score = s;
      best = static_cast<int>(c);
    }
  }
  return best;
}

void GbdtRanker::Fit(const std::vector<RankGroup>& groups) {
  trees_.clear();
  std::vector<FeatureVec> x;
  std::vector<std::pair<size_t, size_t>> group_range;  // [begin, end)
  std::vector<double> relevance;
  for (const auto& g : groups) {
    size_t begin = x.size();
    for (size_t i = 0; i < g.items.size(); ++i) {
      x.push_back(g.items[i]);
      relevance.push_back(g.relevance[i]);
    }
    group_range.emplace_back(begin, x.size());
  }
  if (x.empty()) {
    return;
  }
  std::vector<double> score(x.size(), 0.0);
  std::vector<double> lambda(x.size());
  std::vector<size_t> idx(x.size());
  std::iota(idx.begin(), idx.end(), 0);
  const double sigma = 1.0;
  for (int round = 0; round < opts_.rounds; ++round) {
    std::fill(lambda.begin(), lambda.end(), 0.0);
    for (const auto& [begin, end] : group_range) {
      for (size_t i = begin; i < end; ++i) {
        for (size_t j = begin; j < end; ++j) {
          if (relevance[i] <= relevance[j]) {
            continue;  // only pairs where i should outrank j
          }
          double rho = 1.0 / (1.0 + std::exp(sigma * (score[i] - score[j])));
          lambda[i] += sigma * rho;
          lambda[j] -= sigma * rho;
        }
      }
    }
    RegressionTree tree(opts_.tree);
    tree.FitSubset(x, lambda, idx);
    for (size_t i = 0; i < x.size(); ++i) {
      score[i] += opts_.learning_rate * tree.Predict(x[i]);
    }
    trees_.push_back(std::move(tree));
  }
}

void GbdtRanker::SaveTo(BinWriter& w) const {
  w.U16(kRankerTag);
  w.F64(opts_.learning_rate);
  SaveTrees(w, trees_);
}

bool GbdtRanker::LoadFrom(BinReader& r) {
  if (r.U16() != kRankerTag) {
    r.Fail("gbdt ranker: bad section tag");
    return false;
  }
  opts_.learning_rate = r.F64();
  return LoadTrees(r, &trees_, "gbdt ranker");
}

double GbdtRanker::Score(const FeatureVec& x) const {
  double s = 0;
  for (const auto& t : trees_) {
    s += opts_.learning_rate * t.Predict(x);
  }
  return s;
}

}  // namespace clara
