// k-nearest-neighbour classification and regression (baseline models in
// Figures 9 and 11a).
#ifndef SRC_ML_KNN_H_
#define SRC_ML_KNN_H_

#include <vector>

#include "src/ml/common.h"

namespace clara {

struct KnnOptions {
  int k = 5;
};

class KnnClassifier : public Classifier {
 public:
  explicit KnnClassifier(KnnOptions opts = KnnOptions{}) : opts_(opts) {}
  void Fit(const TabularDataset& data, int num_classes) override;
  int Predict(const FeatureVec& x) const override;
  std::string Describe() const override { return "knn-classifier"; }

  void SaveTo(BinWriter& w) const;
  bool LoadFrom(BinReader& r);

 private:
  KnnOptions opts_;
  int num_classes_ = 2;
  Standardizer std_;
  std::vector<FeatureVec> x_;
  std::vector<int> y_;
};

class KnnRegressor : public Regressor {
 public:
  explicit KnnRegressor(KnnOptions opts = KnnOptions{}) : opts_(opts) {}
  void Fit(const TabularDataset& data) override;
  double Predict(const FeatureVec& x) const override;
  std::string Describe() const override { return "knn-regressor"; }

  void SaveTo(BinWriter& w) const;
  bool LoadFrom(BinReader& r);

 private:
  KnnOptions opts_;
  Standardizer std_;
  std::vector<FeatureVec> x_;
  std::vector<double> y_;
};

// Indices of the k nearest rows of `data` to `q` (Euclidean).
std::vector<size_t> NearestNeighbors(const std::vector<FeatureVec>& data, const FeatureVec& q,
                                     int k);

}  // namespace clara

#endif  // SRC_ML_KNN_H_
