// Multilayer perceptrons — the "DNN" baselines of Figures 8, 9, 11a.
//
// The regressor consumes bag-of-words histograms (order-free), which is
// precisely why it underperforms the sequence-aware LSTM on instruction
// prediction: instruction selection depends on instruction context.
#ifndef SRC_ML_MLP_H_
#define SRC_ML_MLP_H_

#include <vector>

#include "src/ml/common.h"
#include "src/util/rng.h"

namespace clara {

struct MlpOptions {
  std::vector<int> hidden = {32, 16};
  int epochs = 200;
  double learning_rate = 0.01;
  uint64_t seed = 23;
};

class MlpRegressor : public Regressor {
 public:
  explicit MlpRegressor(MlpOptions opts = MlpOptions{}) : opts_(opts) {}
  void Fit(const TabularDataset& data) override;
  double Predict(const FeatureVec& x) const override;
  std::string Describe() const override { return "mlp-regressor"; }

 private:
  struct Layer {
    int in = 0;
    int out = 0;
    std::vector<double> w;  // out x in
    std::vector<double> b;
  };

  FeatureVec Forward(const FeatureVec& x, std::vector<FeatureVec>* acts) const;

  MlpOptions opts_;
  Standardizer std_;
  double y_mean_ = 0;
  double y_scale_ = 1;
  std::vector<Layer> layers_;
};

class MlpClassifier : public Classifier {
 public:
  explicit MlpClassifier(MlpOptions opts = MlpOptions{}) : opts_(opts) {}
  void Fit(const TabularDataset& data, int num_classes) override;
  int Predict(const FeatureVec& x) const override;
  std::string Describe() const override { return "mlp-classifier"; }

 private:
  struct Layer {
    int in = 0;
    int out = 0;
    std::vector<double> w;
    std::vector<double> b;
  };

  std::vector<double> Logits(const FeatureVec& x, std::vector<FeatureVec>* acts) const;

  MlpOptions opts_;
  Standardizer std_;
  int num_classes_ = 2;
  std::vector<Layer> layers_;
};

}  // namespace clara

#endif  // SRC_ML_MLP_H_
