// Hot-path numeric kernels shared by the from-scratch ML models.
//
// Everything here is scalar C++ tuned for the compiler's vectorizer rather
// than intrinsics: register-blocked accumulation (four independent partial
// sums break the FP dependency chain), fused read/write passes for the BPTT
// inner loop, and row-major gemv that never materializes one-hot inputs
// (one-hot x column gather == reading one column).
//
// Determinism: every kernel reduces in a fixed order that depends only on
// the vector length, so results are bit-identical run-to-run and identical
// at any thread count when used inside the parallel substrate.
#ifndef SRC_ML_KERNELS_H_
#define SRC_ML_KERNELS_H_

#include <cstddef>

namespace clara {
namespace kernels {

// dot(a, b) with 4-way register blocking. Reduction order is fixed:
// ((s0+s1)+(s2+s3)) + tail.
inline double Dot(const double* a, const double* b, int n) {
  double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  double s = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) {
    s += a[i] * b[i];
  }
  return s;
}

// y[i] += alpha * x[i].
inline void Axpy(double* y, double alpha, const double* x, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    y[i] += alpha * x[i];
    y[i + 1] += alpha * x[i + 1];
    y[i + 2] += alpha * x[i + 2];
    y[i + 3] += alpha * x[i + 3];
  }
  for (; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

// The fused BPTT recurrence update: one pass that both scatters the gradient
// outer product and gathers the hidden-state backprop term,
//   g[j] += d * h[j];  dh[j] += w[j] * d;
// halving the memory traffic versus two separate axpy sweeps.
inline void AxpyDual(double* g, double* dh, const double* w, const double* h, double d,
                     int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    g[i] += d * h[i];
    dh[i] += w[i] * d;
    g[i + 1] += d * h[i + 1];
    dh[i + 1] += w[i + 1] * d;
    g[i + 2] += d * h[i + 2];
    dh[i + 2] += w[i + 2] * d;
    g[i + 3] += d * h[i + 3];
    dh[i + 3] += w[i + 3] * d;
  }
  for (; i < n; ++i) {
    g[i] += d * h[i];
    dh[i] += w[i] * d;
  }
}

// y = bias + M x for row-major M (rows x cols). `bias` may be null (treated
// as zero). Safe for y to alias nothing else.
inline void GemvBias(double* y, const double* m, const double* x, const double* bias,
                     int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    double b = bias != nullptr ? bias[r] : 0.0;
    y[r] = b + Dot(m + static_cast<size_t>(r) * cols, x, cols);
  }
}

// The LSTM input transform for a one-hot token: y[r] = base[r] + bias[r] +
// wx[r * vocab + x], i.e. a column gather from the input weight matrix —
// cost independent of vocabulary size, no one-hot vector ever built.
inline void OneHotGatherAdd(double* y, const double* wx, const double* bias, int x,
                            int rows, int vocab) {
  for (int r = 0; r < rows; ++r) {
    y[r] += bias[r] + wx[static_cast<size_t>(r) * vocab + x];
  }
}

// z[i] = x[i] * y[i] accumulate variant used by elementwise gate math.
inline void MulAccum(double* z, const double* x, const double* y, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    z[i] += x[i] * y[i];
    z[i + 1] += x[i + 1] * y[i + 1];
    z[i + 2] += x[i + 2] * y[i + 2];
    z[i + 3] += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) {
    z[i] += x[i] * y[i];
  }
}

}  // namespace kernels
}  // namespace clara

#endif  // SRC_ML_KERNELS_H_
