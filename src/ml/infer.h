// The packed inference engine for the serve hot path: float32 and
// int8-quantized forward passes for the trained LSTM + FC head, built once
// from the double-precision training parameters.
//
// Backends and their guarantees:
//   * kF64  — the original scalar double path (LstmRegressor::Forward).
//     Bit-identical to training-time predictions; the default everywhere.
//   * kF32  — packed float32 weights, AVX2/FMA kernels with scalar fallback
//     (src/ml/kernels_f32.h). Bit-identical across scalar and AVX2 on the
//     same artifact; diverges from kF64 only through f32 rounding and the
//     bounded-error tanh/sigmoid polynomial.
//   * kInt8 — per-row symmetric int8 weights for the LSTM recurrence and FC
//     head, dynamic uint8 activation quantization per GEMV. Also
//     bit-identical across scalar and AVX2 (the quantized GEMV is exact
//     integer arithmetic; dequantization is shared elementwise f32 code).
//
// Weight layout: the four gate blocks (i, f, g, o) are packed row-major into
// one 4H-row matrix exactly like the f64 trainer, with each f32 row padded
// to a multiple of 8 floats and the buffers 32-byte aligned so every AVX2
// row load starts on a vector boundary. The one-hot input transform stays a
// column gather (f32, stride = vocab). Int8 rows are stored unpadded with
// one scale per row; row sums for the zero-point correction are precomputed
// at build time.
#ifndef SRC_ML_INFER_H_
#define SRC_ML_INFER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace clara {

class BinReader;
class BinWriter;

enum class InferBackend : uint8_t { kF64 = 0, kF32 = 1, kInt8 = 2 };

const char* InferBackendName(InferBackend b);
// Parses "f64" | "f32" | "int8"; returns false (out untouched) otherwise.
bool ParseInferBackend(std::string_view s, InferBackend* out);

// A read-only view of LstmRegressor's trained double-precision parameters
// (gate blocks packed as [i; f; g; o] rows).
struct LstmF64View {
  int hidden = 0;
  int fc_hidden = 0;
  int max_seq_len = 0;
  int vocab = 0;  // 0 == untrained
  double y_scale = 1;
  const std::vector<double>* wx = nullptr;  // 4H x V
  const std::vector<double>* wh = nullptr;  // 4H x H
  const std::vector<double>* b = nullptr;   // 4H
  const std::vector<double>* w1 = nullptr;  // F x H
  const std::vector<double>* b1 = nullptr;  // F
  const std::vector<double>* w2 = nullptr;  // F
  double b2 = 0;
};

// The serializable int8 weight set: what the optional artifact frame stores
// and what QuantizeLstm produces. Quantization is deterministic, so the
// frame emitted at save time and a quantize-at-load of the same f64 weights
// are byte-identical. An untrained model quantizes to vocab == 0 with empty
// weight vectors.
struct Int8LstmParams {
  int hidden = 0;
  int fc_hidden = 0;
  int vocab = 0;
  std::vector<float> wh_scale;  // 4H per-row scales
  std::vector<int8_t> wh;       // 4H x H
  std::vector<float> w1_scale;  // F
  std::vector<int8_t> w1;       // F x H
  float w2_scale = 1;
  std::vector<int8_t> w2;  // F

  bool empty() const { return vocab == 0; }

  void SaveTo(BinWriter& w) const;
  bool LoadFrom(BinReader& r);
  // Shape consistency against the owning LSTM's architecture.
  bool Validate(int hidden_dim, int fc_dim, int vocab_dim, std::string* error) const;
};

Int8LstmParams QuantizeLstm(const LstmF64View& v);

// Immutable packed inference state; safe for concurrent Predict* calls and
// shared between LstmRegressor copies via shared_ptr. `quant` may be empty
// (quantize-at-load) or a validated artifact frame.
class LstmInferEngine {
 public:
  LstmInferEngine(const LstmF64View& v, Int8LstmParams quant);
  LstmInferEngine(const LstmInferEngine&) = delete;
  LstmInferEngine& operator=(const LstmInferEngine&) = delete;

  // Unscaled model outputs (callers apply y_scale and the >= 0 clamp, like
  // LstmRegressor::Forward).
  double PredictF32(const std::vector<int>& tokens) const;
  double PredictInt8(const std::vector<int>& tokens) const;

  const Int8LstmParams& quantized() const { return quant_; }

 private:
  // 32-byte aligned zero-initialized float buffer (movable, non-copyable).
  struct AlignedF32 {
    AlignedF32() = default;
    explicit AlignedF32(size_t n);
    float* data() { return p_.get(); }
    const float* data() const { return p_.get(); }

    struct Deleter {
      void operator()(float* p) const {
        ::operator delete[](p, std::align_val_t{32});
      }
    };
    std::unique_ptr<float[], Deleter> p_;
  };

  void RunSteps(const std::vector<int>& tokens, float* h, float* c, float* pre,
                float* tmp, bool int8_recurrence, uint8_t* q, int32_t* acc) const;

  int h_ = 0;        // hidden
  int f_ = 0;        // fc_hidden
  int vocab_ = 0;
  int max_seq_len_ = 0;
  int hp_ = 0;       // hidden padded to a multiple of 8
  int fp_ = 0;       // fc_hidden padded to a multiple of 8
  AlignedF32 wx_;    // 4H x vocab (stride = vocab)
  AlignedF32 wh_;    // 4H x hp_
  AlignedF32 b_;     // 4H
  AlignedF32 w1_;    // F x hp_
  AlignedF32 b1_;    // F
  AlignedF32 w2_;    // fp_
  float b2_ = 0;
  Int8LstmParams quant_;
  std::vector<int32_t> wh_rowsum_;  // 4H
  std::vector<int32_t> w1_rowsum_;  // F
  int32_t w2_rowsum_ = 0;
};

}  // namespace clara

#endif  // SRC_ML_INFER_H_
