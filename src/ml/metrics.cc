#include "src/ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace clara {
namespace {

constexpr double kEps = 1e-9;

// Normalizes two histograms over a common support with smoothing.
void NormalizePair(const std::vector<double>& p_in, const std::vector<double>& q_in,
                   std::vector<double>& p, std::vector<double>& q) {
  size_t n = std::max(p_in.size(), q_in.size());
  p.assign(n, 0.0);
  q.assign(n, 0.0);
  for (size_t i = 0; i < p_in.size(); ++i) {
    p[i] = std::max(0.0, p_in[i]);
  }
  for (size_t i = 0; i < q_in.size(); ++i) {
    q[i] = std::max(0.0, q_in[i]);
  }
  double sp = std::accumulate(p.begin(), p.end(), 0.0);
  double sq = std::accumulate(q.begin(), q.end(), 0.0);
  for (size_t i = 0; i < n; ++i) {
    p[i] = (p[i] + kEps) / (sp + n * kEps);
    q[i] = (q[i] + kEps) / (sq + n * kEps);
  }
}

}  // namespace

double Wmape(const std::vector<double>& truth, const std::vector<double>& pred) {
  double err = 0;
  double denom = 0;
  for (size_t i = 0; i < truth.size() && i < pred.size(); ++i) {
    err += std::abs(truth[i] - pred[i]);
    denom += std::abs(truth[i]);
  }
  return denom > 0 ? err / denom : 0.0;
}

double MeanAbsoluteError(const std::vector<double>& truth, const std::vector<double>& pred) {
  if (truth.empty()) {
    return 0.0;
  }
  double err = 0;
  for (size_t i = 0; i < truth.size() && i < pred.size(); ++i) {
    err += std::abs(truth[i] - pred[i]);
  }
  return err / static_cast<double>(truth.size());
}

PrecisionRecall MultiClassPrecisionRecall(const std::vector<int>& truth,
                                          const std::vector<int>& pred, int negative_class) {
  PrecisionRecall pr;
  for (size_t i = 0; i < truth.size() && i < pred.size(); ++i) {
    bool true_pos_class = truth[i] != negative_class;
    bool pred_pos_class = pred[i] != negative_class;
    if (pred_pos_class && pred[i] == truth[i]) {
      ++pr.tp;
    } else if (pred_pos_class) {
      ++pr.fp;  // wrong detection (wrong class or spurious)
      if (true_pos_class) {
        ++pr.fn;  // the true accelerator was missed as well
      }
    } else if (true_pos_class) {
      ++pr.fn;
    }
  }
  pr.precision = pr.tp + pr.fp > 0 ? static_cast<double>(pr.tp) / (pr.tp + pr.fp) : 0.0;
  pr.recall = pr.tp + pr.fn > 0 ? static_cast<double>(pr.tp) / (pr.tp + pr.fn) : 0.0;
  return pr;
}

double TopKAccuracy(const std::vector<std::vector<double>>& true_scores,
                    const std::vector<std::vector<double>>& pred_scores, int k) {
  if (true_scores.empty()) {
    return 0.0;
  }
  int hits = 0;
  for (size_t g = 0; g < true_scores.size(); ++g) {
    const auto& ts = true_scores[g];
    const auto& ps = pred_scores[g];
    size_t best_true =
        std::distance(ts.begin(), std::max_element(ts.begin(), ts.end()));
    // Indices of the predicted top-k.
    std::vector<size_t> order(ps.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) { return ps[a] > ps[b]; });
    for (int i = 0; i < k && i < static_cast<int>(order.size()); ++i) {
      if (order[i] == best_true) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(true_scores.size());
}

double JensenShannonDivergence(const std::vector<double>& p_in,
                               const std::vector<double>& q_in) {
  std::vector<double> p;
  std::vector<double> q;
  NormalizePair(p_in, q_in, p, q);
  double js = 0;
  for (size_t i = 0; i < p.size(); ++i) {
    double m = 0.5 * (p[i] + q[i]);
    js += 0.5 * p[i] * std::log(p[i] / m) + 0.5 * q[i] * std::log(q[i] / m);
  }
  return js;
}

double RenyiDivergence(const std::vector<double>& p_in, const std::vector<double>& q_in,
                       double alpha) {
  std::vector<double> p;
  std::vector<double> q;
  NormalizePair(p_in, q_in, p, q);
  double sum = 0;
  for (size_t i = 0; i < p.size(); ++i) {
    sum += std::pow(p[i], alpha) * std::pow(q[i], 1.0 - alpha);
  }
  return std::log(sum) / (alpha - 1.0);
}

double BhattacharyyaDistance(const std::vector<double>& p_in,
                             const std::vector<double>& q_in) {
  std::vector<double> p;
  std::vector<double> q;
  NormalizePair(p_in, q_in, p, q);
  double bc = 0;
  for (size_t i = 0; i < p.size(); ++i) {
    bc += std::sqrt(p[i] * q[i]);
  }
  return -std::log(std::min(1.0, bc));
}

double CosineDistance(const std::vector<double>& p_in, const std::vector<double>& q_in) {
  std::vector<double> p;
  std::vector<double> q;
  NormalizePair(p_in, q_in, p, q);
  double dot = 0;
  double np = 0;
  double nq = 0;
  for (size_t i = 0; i < p.size(); ++i) {
    dot += p[i] * q[i];
    np += p[i] * p[i];
    nq += q[i] * q[i];
  }
  return 1.0 - dot / (std::sqrt(np) * std::sqrt(nq) + kEps);
}

double EuclideanDistance(const std::vector<double>& p_in, const std::vector<double>& q_in) {
  std::vector<double> p;
  std::vector<double> q;
  NormalizePair(p_in, q_in, p, q);
  double s = 0;
  for (size_t i = 0; i < p.size(); ++i) {
    s += (p[i] - q[i]) * (p[i] - q[i]);
  }
  return std::sqrt(s);
}

double VariationalDistance(const std::vector<double>& p_in, const std::vector<double>& q_in) {
  std::vector<double> p;
  std::vector<double> q;
  NormalizePair(p_in, q_in, p, q);
  double s = 0;
  for (size_t i = 0; i < p.size(); ++i) {
    s += std::abs(p[i] - q[i]);
  }
  return s;
}

}  // namespace clara
