#include "src/ml/cnn.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"

namespace clara {

CnnRegressor::Pooled CnnRegressor::ForwardPool(const std::vector<int>& tokens) const {
  int nf = opts_.filters;
  int kw = opts_.kernel;
  Pooled p;
  p.value.assign(nf, 0.0);
  p.argmax.assign(nf, -1);
  int len = static_cast<int>(std::min<size_t>(tokens.size(), opts_.max_seq_len));
  for (int f = 0; f < nf; ++f) {
    double best = 0.0;  // relu floor: empty/negative activations pool to 0
    int best_pos = -1;
    for (int t = 0; t + kw <= len; ++t) {
      double s = b_[f];
      for (int d = 0; d < kw; ++d) {
        int x = tokens[t + d];
        if (x < 0 || x >= vocab_) {
          x = 0;
        }
        s += w_[(static_cast<size_t>(f) * kw + d) * vocab_ + x];
      }
      if (s > best) {
        best = s;
        best_pos = t;
      }
    }
    p.value[f] = best;
    p.argmax[f] = best_pos;
  }
  return p;
}

void CnnRegressor::Fit(const SeqDataset& data) {
  vocab_ = std::max(1, data.vocab);
  int nf = opts_.filters;
  int kw = opts_.kernel;
  Rng rng(opts_.seed);
  w_.resize(static_cast<size_t>(nf) * kw * vocab_);
  for (auto& w : w_) {
    w = rng.NextGaussian(0.2);
  }
  b_.assign(nf, 0.0);
  w_out_.resize(nf);
  for (auto& w : w_out_) {
    w = rng.NextGaussian(0.2);
  }
  b_out_ = 0;

  y_scale_ = 1e-9;
  for (const auto& ex : data.examples) {
    y_scale_ = std::max(y_scale_, std::abs(ex.target));
  }

  for (int epoch = 0; epoch < opts_.epochs; ++epoch) {
    double lr = opts_.learning_rate / (1.0 + 0.05 * epoch);
    double epoch_sse = 0;
    for (size_t si : rng.Permutation(data.examples.size())) {
      const SeqExample& ex = data.examples[si];
      Pooled p = ForwardPool(ex.tokens);
      double y = b_out_;
      for (int f = 0; f < nf; ++f) {
        y += w_out_[f] * p.value[f];
      }
      double dy = y - ex.target / y_scale_;
      epoch_sse += 0.5 * dy * dy;
      b_out_ -= lr * dy;
      for (int f = 0; f < nf; ++f) {
        double dval = dy * w_out_[f];
        w_out_[f] -= lr * dy * p.value[f];
        if (p.argmax[f] < 0) {
          continue;  // pooled to the relu floor; no gradient into conv
        }
        b_[f] -= lr * dval;
        int t = p.argmax[f];
        for (int d = 0; d < kw; ++d) {
          int x = ex.tokens[t + d];
          if (x < 0 || x >= vocab_) {
            x = 0;
          }
          w_[(static_cast<size_t>(f) * kw + d) * vocab_ + x] -= lr * dval;
        }
      }
    }
    if (obs::Enabled() && !data.examples.empty()) {
      double mean_loss = epoch_sse / static_cast<double>(data.examples.size());
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      reg.GetGauge("ml.cnn.epoch_loss").Set(mean_loss);
      reg.GetGauge("ml.cnn.epochs").Set(epoch + 1);
      obs::TraceCounter("ml.cnn.epoch_loss", mean_loss);
    }
  }
}

double CnnRegressor::Predict(const std::vector<int>& tokens) const {
  if (vocab_ == 0) {
    return 0;
  }
  Pooled p = ForwardPool(tokens);
  double y = b_out_;
  for (int f = 0; f < opts_.filters; ++f) {
    y += w_out_[f] * p.value[f];
  }
  return std::max(0.0, y * y_scale_);
}

}  // namespace clara
