#include "src/ml/mlp.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"

namespace clara {
namespace {

double Relu(double v) { return v > 0 ? v : 0; }

// Per-epoch training-loss telemetry shared by the MLP fit loops.
void RecordEpochLoss(const char* model, int epoch, double sse, size_t n) {
  if (!obs::Enabled() || n == 0) {
    return;
  }
  double mean_loss = sse / static_cast<double>(n);
  std::string base = std::string("ml.") + model;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetGauge(base + ".epoch_loss").Set(mean_loss);
  reg.GetGauge(base + ".epochs").Set(epoch + 1);
  obs::TraceCounter((base + ".epoch_loss").c_str(), mean_loss);
}

template <typename LayerT>
void InitLayers(std::vector<LayerT>& layers, int input_dim, const std::vector<int>& hidden,
                int out_dim, Rng& rng) {
  layers.clear();
  std::vector<int> dims;
  dims.push_back(input_dim);
  for (int h : hidden) {
    dims.push_back(h);
  }
  dims.push_back(out_dim);
  for (size_t l = 0; l + 1 < dims.size(); ++l) {
    LayerT layer;
    layer.in = dims[l];
    layer.out = dims[l + 1];
    layer.w.resize(static_cast<size_t>(layer.in) * layer.out);
    layer.b.assign(layer.out, 0.0);
    double scale = std::sqrt(2.0 / layer.in);
    for (auto& w : layer.w) {
      w = rng.NextGaussian(scale);
    }
    layers.push_back(std::move(layer));
  }
}

}  // namespace

FeatureVec MlpRegressor::Forward(const FeatureVec& x, std::vector<FeatureVec>* acts) const {
  FeatureVec cur = x;
  if (acts != nullptr) {
    acts->push_back(cur);
  }
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    FeatureVec next(layer.out, 0.0);
    for (int o = 0; o < layer.out; ++o) {
      double s = layer.b[o];
      for (int i = 0; i < layer.in; ++i) {
        s += layer.w[static_cast<size_t>(o) * layer.in + i] * cur[i];
      }
      next[o] = l + 1 < layers_.size() ? Relu(s) : s;  // linear output layer
    }
    cur = std::move(next);
    if (acts != nullptr) {
      acts->push_back(cur);
    }
  }
  return cur;
}

void MlpRegressor::Fit(const TabularDataset& data) {
  if (data.size() == 0) {
    return;
  }
  std_.Fit(data.x);
  std::vector<FeatureVec> x = std_.ApplyAll(data.x);
  // Normalize targets.
  y_mean_ = 0;
  for (double y : data.y) {
    y_mean_ += y;
  }
  y_mean_ /= data.size();
  y_scale_ = 1e-9;
  for (double y : data.y) {
    y_scale_ = std::max(y_scale_, std::abs(y - y_mean_));
  }
  Rng rng(opts_.seed);
  InitLayers(layers_, static_cast<int>(data.dim()), opts_.hidden, 1, rng);

  for (int epoch = 0; epoch < opts_.epochs; ++epoch) {
    double lr = opts_.learning_rate / (1.0 + 0.01 * epoch);
    double epoch_sse = 0;
    for (size_t i : rng.Permutation(data.size())) {
      std::vector<FeatureVec> acts;
      FeatureVec out = Forward(x[i], &acts);
      double target = (data.y[i] - y_mean_) / y_scale_;
      epoch_sse += 0.5 * (out[0] - target) * (out[0] - target);
      // Backprop, SGD on one sample.
      FeatureVec delta = {out[0] - target};
      for (int l = static_cast<int>(layers_.size()) - 1; l >= 0; --l) {
        Layer& layer = layers_[l];
        const FeatureVec& input = acts[l];
        FeatureVec prev_delta(layer.in, 0.0);
        for (int o = 0; o < layer.out; ++o) {
          double g = delta[o];
          // Relu derivative applies to hidden layers only.
          if (l + 1 < static_cast<int>(layers_.size()) && acts[l + 1][o] <= 0) {
            g = 0;
          }
          for (int in = 0; in < layer.in; ++in) {
            prev_delta[in] += layer.w[static_cast<size_t>(o) * layer.in + in] * g;
            layer.w[static_cast<size_t>(o) * layer.in + in] -= lr * g * input[in];
          }
          layer.b[o] -= lr * g;
        }
        delta = std::move(prev_delta);
      }
    }
    RecordEpochLoss("mlp", epoch, epoch_sse, data.size());
  }
}

double MlpRegressor::Predict(const FeatureVec& x) const {
  if (layers_.empty()) {
    return y_mean_;
  }
  FeatureVec out = Forward(std_.Apply(x), nullptr);
  return out[0] * y_scale_ + y_mean_;
}

std::vector<double> MlpClassifier::Logits(const FeatureVec& x,
                                          std::vector<FeatureVec>* acts) const {
  FeatureVec cur = x;
  if (acts != nullptr) {
    acts->push_back(cur);
  }
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    FeatureVec next(layer.out, 0.0);
    for (int o = 0; o < layer.out; ++o) {
      double s = layer.b[o];
      for (int i = 0; i < layer.in; ++i) {
        s += layer.w[static_cast<size_t>(o) * layer.in + i] * cur[i];
      }
      next[o] = l + 1 < layers_.size() ? Relu(s) : s;
    }
    cur = std::move(next);
    if (acts != nullptr) {
      acts->push_back(cur);
    }
  }
  return cur;
}

void MlpClassifier::Fit(const TabularDataset& data, int num_classes) {
  num_classes_ = num_classes;
  if (data.size() == 0) {
    return;
  }
  std_.Fit(data.x);
  std::vector<FeatureVec> x = std_.ApplyAll(data.x);
  Rng rng(opts_.seed);
  InitLayers(layers_, static_cast<int>(data.dim()), opts_.hidden, num_classes, rng);

  for (int epoch = 0; epoch < opts_.epochs; ++epoch) {
    double lr = opts_.learning_rate / (1.0 + 0.01 * epoch);
    double epoch_xent = 0;
    for (size_t i : rng.Permutation(data.size())) {
      std::vector<FeatureVec> acts;
      std::vector<double> logits = Logits(x[i], &acts);
      // Softmax + cross-entropy gradient.
      double mx = *std::max_element(logits.begin(), logits.end());
      double z = 0;
      for (double v : logits) {
        z += std::exp(v - mx);
      }
      FeatureVec delta(num_classes);
      int label = static_cast<int>(data.y[i]);
      for (int c = 0; c < num_classes; ++c) {
        double p = std::exp(logits[c] - mx) / z;
        delta[c] = p - (c == label ? 1.0 : 0.0);
        if (c == label) {
          epoch_xent += -std::log(std::max(p, 1e-12));
        }
      }
      for (int l = static_cast<int>(layers_.size()) - 1; l >= 0; --l) {
        Layer& layer = layers_[l];
        const FeatureVec& input = acts[l];
        FeatureVec prev_delta(layer.in, 0.0);
        for (int o = 0; o < layer.out; ++o) {
          double g = delta[o];
          if (l + 1 < static_cast<int>(layers_.size()) && acts[l + 1][o] <= 0) {
            g = 0;
          }
          for (int in = 0; in < layer.in; ++in) {
            prev_delta[in] += layer.w[static_cast<size_t>(o) * layer.in + in] * g;
            layer.w[static_cast<size_t>(o) * layer.in + in] -= lr * g * input[in];
          }
          layer.b[o] -= lr * g;
        }
        delta = std::move(prev_delta);
      }
    }
    RecordEpochLoss("mlp_classifier", epoch, epoch_xent, data.size());
  }
}

int MlpClassifier::Predict(const FeatureVec& x) const {
  if (layers_.empty()) {
    return 0;
  }
  std::vector<double> logits = Logits(std_.Apply(x), nullptr);
  return static_cast<int>(
      std::distance(logits.begin(), std::max_element(logits.begin(), logits.end())));
}

}  // namespace clara
