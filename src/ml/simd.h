// Runtime CPU-feature detection for the SIMD inference kernels.
//
// The build always contains both the scalar reference kernels and (on x86-64
// with CLARA_SIMD=ON) the AVX2 kernels compiled in a separate translation
// unit with a per-function target attribute. Which implementation runs is
// decided once at startup from CPUID, never by build flags alone, so one
// binary serves every machine and falls back to scalar code on CPUs without
// AVX2.
#ifndef SRC_ML_SIMD_H_
#define SRC_ML_SIMD_H_

#include <string>

namespace clara {
namespace simd {

// True when the binary was built with the AVX2 kernels compiled in
// (-DCLARA_SIMD=ON and an x86-64 target).
bool CompiledWithSimd();

// Runtime CPUID checks (false when CompiledWithSimd() is false so callers
// never dispatch to code that does not exist in the binary).
bool HasAvx2();
bool HasFma();

// Human-readable feature summary for stats/health reporting, e.g.
// "avx2,fma", "avx2", or "none".
std::string FeatureString();

}  // namespace simd
}  // namespace clara

#endif  // SRC_ML_SIMD_H_
