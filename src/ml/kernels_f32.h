// Float32 + int8 inference kernels behind runtime CPU-feature dispatch.
//
// Two implementations of the same kernel table exist in the binary: a scalar
// reference (kernels_f32.cc) and an AVX2/FMA version (kernels_avx2.cc,
// compiled with a per-function target attribute so the rest of the build
// keeps its baseline ISA). ActiveF32Kernels() picks one at startup from
// CPUID.
//
// Determinism contract (enforced bit-for-bit by tests/kernels_test.cc):
// both implementations produce identical results for every input length,
// because they agree on the exact operation schedule —
//   * dot products keep 8 mod-8 lane accumulators updated with fused
//     multiply-add (std::fmaf lane-wise == vfmadd231ps element-wise), reduce
//     them as ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)), then fold the tail
//     (n % 8 elements) sequentially with fmaf;
//   * elementwise kernels are a single exactly-rounded op per element;
//   * tanh/sigmoid use one shared polynomial (see TanhApprox) built from
//     fmaf/mul/div, all exactly rounded;
//   * the int8 GEMV is pure integer arithmetic (order-independent).
// The whole project is compiled with -ffp-contract=off so the compiler
// cannot introduce fused ops the other implementation lacks.
#ifndef SRC_ML_KERNELS_F32_H_
#define SRC_ML_KERNELS_F32_H_

#include <cstddef>
#include <cstdint>

namespace clara {
namespace kernels {

// One vtable of f32/int8 kernels. `m` arguments are row-major with an
// explicit row stride (>= cols) so callers can pad rows for alignment.
struct F32Kernels {
  const char* name;  // "scalar" or "avx2"
  float (*dot)(const float* a, const float* b, int n);
  // y[r] = (bias ? bias[r] : 0) + dot(m_row_r, x, cols)
  void (*gemv_bias)(float* y, const float* m, int stride, const float* x,
                    const float* bias, int rows, int cols);
  // z[i] = x[i] * y[i] (z may alias x or y)
  void (*mul)(float* z, const float* x, const float* y, int n);
  // z[i] += x[i] * y[i] via fmaf
  void (*mul_accum)(float* z, const float* x, const float* y, int n);
  // y[i] = TanhApprox(x[i]); y may alias x
  void (*tanh_v)(float* y, const float* x, int n);
  // y[i] = 0.5 + 0.5 * TanhApprox(0.5 * x[i]); y may alias x
  void (*sigmoid_v)(float* y, const float* x, int n);
  // acc[r] = sum_i w[r*stride + i] * q[i], exact int32 arithmetic
  void (*gemv_int8)(int32_t* acc, const int8_t* w, int stride,
                    const uint8_t* q, int rows, int cols);
};

// The scalar reference implementation (always available).
const F32Kernels& ScalarF32Kernels();

// The AVX2 implementation, or nullptr when the binary was built without it
// (-DCLARA_SIMD=OFF / non-x86) or this CPU lacks AVX2+FMA. Never returns a
// table that would fault at runtime.
const F32Kernels* Avx2F32Kernels();

// The dispatch decision: AVX2 table when usable, scalar otherwise.
const F32Kernels& ActiveF32Kernels();

// LSTM one-hot input transform: y[r] += bias[r] + wx[r*vocab + x]. A column
// gather has no contiguous vectors to speed up, so there is one (scalar)
// implementation shared by both backends.
void OneHotGatherAddF32(float* y, const float* wx, const float* bias, int x,
                        int rows, int vocab);

// Shared tanh polynomial: the Padé(7,6) expansion
//   t(x) = x (135135 + 17325 x^2 + 378 x^4 + x^6)
//        / (135135 + 62370 x^2 + 3150 x^4 + 28 x^6)
// with the input clamped to [-4.97, 4.97]. Max absolute error vs tanh is
// bounded by 2.5e-4 over all finite inputs (validated on a dense grid in
// tests/kernels_test.cc); the derived sigmoid is within 1.25e-4.
float TanhApprox(float x);
float SigmoidApprox(float x);

// ---- int8 row quantization ----
//
// Weights are quantized symmetrically per row: scale = maxabs/127 (1.0 for
// an all-zero row), q = clamp(round(w/scale), -127, 127). Activations are
// quantized per call, asymmetric uint8 over [min(x,0), max(x,0)] so that
// zero is exactly representable. The GEMV then dequantizes as
//   y_r = row_scale_r * act_scale * (acc_r - zero_point * rowsum_r)
// where rowsum_r = sum_i q_w[r][i] (precomputed int32).

// round-to-nearest with clamping to [-127, 127]; never wraps.
int8_t QuantizeWeight(double w, float scale);

// scale for one weight row (maxabs/127, or 1.0 if the row is all zeros).
float Int8RowScale(const double* w, int n);

struct ActQuant {
  float scale = 1.0f;
  int32_t zero_point = 0;
};

// Quantizes n activations into q (uint8), returning scale and zero point.
ActQuant QuantizeActivations(const float* x, int n, uint8_t* q);

}  // namespace kernels
}  // namespace clara

#endif  // SRC_ML_KERNELS_F32_H_
