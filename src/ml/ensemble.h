// Tree ensembles: gradient-boosted regression (the paper's GBDT cost model,
// §4.2), random forests (TPOT/AutoML's pick for instruction prediction),
// one-vs-rest GBDT classification, and a pairwise GBDT ranker
// (LambdaMART-style, §4.5 colocation).
#ifndef SRC_ML_ENSEMBLE_H_
#define SRC_ML_ENSEMBLE_H_

#include <vector>

#include "src/ml/common.h"
#include "src/ml/tree.h"
#include "src/util/rng.h"

namespace clara {

struct GbdtOptions {
  int rounds = 120;
  double learning_rate = 0.1;
  TreeOptions tree;
};

class GbdtRegressor : public Regressor {
 public:
  explicit GbdtRegressor(GbdtOptions opts = GbdtOptions{}) : opts_(opts) {}

  void Fit(const TabularDataset& data) override;
  double Predict(const FeatureVec& x) const override;
  std::string Describe() const override { return "gbdt"; }

  void SaveTo(BinWriter& w) const;
  bool LoadFrom(BinReader& r);

 private:
  GbdtOptions opts_;
  double base_ = 0;
  std::vector<RegressionTree> trees_;
};

struct ForestOptions {
  int trees = 60;
  double sample_fraction = 0.8;
  TreeOptions tree = {8, 2, 0};
  uint64_t seed = 7;
};

class RandomForestRegressor : public Regressor {
 public:
  explicit RandomForestRegressor(ForestOptions opts = ForestOptions{}) : opts_(opts) {}

  void Fit(const TabularDataset& data) override;
  double Predict(const FeatureVec& x) const override;
  std::string Describe() const override { return "random-forest"; }

  void SaveTo(BinWriter& w) const;
  bool LoadFrom(BinReader& r);

 private:
  ForestOptions opts_;
  std::vector<RegressionTree> trees_;
};

// One-vs-rest classification on top of GBDT regression scores.
class GbdtClassifier : public Classifier {
 public:
  explicit GbdtClassifier(GbdtOptions opts = GbdtOptions{}) : opts_(opts) {}

  void Fit(const TabularDataset& data, int num_classes) override;
  int Predict(const FeatureVec& x) const override;
  std::string Describe() const override { return "gbdt-ovr"; }

  void SaveTo(BinWriter& w) const;
  bool LoadFrom(BinReader& r);

 private:
  GbdtOptions opts_;
  std::vector<GbdtRegressor> per_class_;
};

// Pairwise learning-to-rank with gradient-boosted trees. Training data is a
// set of groups; within a group, items with higher relevance should score
// higher. Gradients are RankNet-style pairwise logistic lambdas fit by
// regression trees (the core of LambdaMART).
struct RankGroup {
  std::vector<FeatureVec> items;
  std::vector<double> relevance;  // higher = better
};

class GbdtRanker {
 public:
  explicit GbdtRanker(GbdtOptions opts = GbdtOptions{}) : opts_(opts) {}

  void Fit(const std::vector<RankGroup>& groups);
  double Score(const FeatureVec& x) const;
  std::string Describe() const { return "gbdt-pairwise-ranker"; }

  void SaveTo(BinWriter& w) const;
  bool LoadFrom(BinReader& r);

 private:
  GbdtOptions opts_;
  std::vector<RegressionTree> trees_;
};

}  // namespace clara

#endif  // SRC_ML_ENSEMBLE_H_
