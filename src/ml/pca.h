// Principal component analysis via power iteration with deflation; used to
// project algorithm-identification features to 2-D (Figure 10a).
#ifndef SRC_ML_PCA_H_
#define SRC_ML_PCA_H_

#include <vector>

#include "src/ml/common.h"

namespace clara {

struct PcaResult {
  std::vector<FeatureVec> components;  // [num_components][dim]
  std::vector<double> explained_variance;
  FeatureVec mean;

  // Projects x onto the learned components.
  FeatureVec Project(const FeatureVec& x) const;
};

PcaResult ComputePca(const std::vector<FeatureVec>& x, int num_components);

}  // namespace clara

#endif  // SRC_ML_PCA_H_
