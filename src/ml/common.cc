#include "src/ml/common.h"

#include <cmath>

#include "src/util/binio.h"

namespace clara {

namespace {
constexpr uint16_t kStandardizerTag = 0x5354;  // "ST"
}  // namespace

void Standardizer::SaveTo(BinWriter& w) const {
  w.U16(kStandardizerTag);
  w.VecF64(mean_);
  w.VecF64(inv_std_);
}

bool Standardizer::LoadFrom(BinReader& r) {
  if (r.U16() != kStandardizerTag) {
    r.Fail("standardizer: bad section tag");
    return false;
  }
  r.VecF64(&mean_);
  r.VecF64(&inv_std_);
  if (r.ok() && mean_.size() != inv_std_.size()) {
    r.Fail("standardizer: mean/std dimension mismatch");
  }
  return r.ok();
}

void Standardizer::Fit(const std::vector<FeatureVec>& x) {
  if (x.empty()) {
    return;
  }
  size_t d = x[0].size();
  mean_.assign(d, 0.0);
  inv_std_.assign(d, 1.0);
  for (const auto& row : x) {
    for (size_t j = 0; j < d; ++j) {
      mean_[j] += row[j];
    }
  }
  for (auto& m : mean_) {
    m /= static_cast<double>(x.size());
  }
  std::vector<double> var(d, 0.0);
  for (const auto& row : x) {
    for (size_t j = 0; j < d; ++j) {
      double delta = row[j] - mean_[j];
      var[j] += delta * delta;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    double sd = std::sqrt(var[j] / static_cast<double>(x.size()));
    inv_std_[j] = sd > 1e-12 ? 1.0 / sd : 1.0;
  }
}

FeatureVec Standardizer::Apply(const FeatureVec& x) const {
  if (mean_.empty()) {
    return x;
  }
  FeatureVec out(x.size());
  for (size_t j = 0; j < x.size() && j < mean_.size(); ++j) {
    out[j] = (x[j] - mean_[j]) * inv_std_[j];
  }
  return out;
}

std::vector<FeatureVec> Standardizer::ApplyAll(const std::vector<FeatureVec>& x) const {
  std::vector<FeatureVec> out;
  out.reserve(x.size());
  for (const auto& row : x) {
    out.push_back(Apply(row));
  }
  return out;
}

}  // namespace clara
