#include "src/ml/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/binio.h"
#include "src/util/rng.h"

namespace clara {
namespace {

double Sq(const FeatureVec& a, const FeatureVec& b) {
  double d = 0;
  for (size_t j = 0; j < a.size() && j < b.size(); ++j) {
    double delta = a[j] - b[j];
    d += delta * delta;
  }
  return d;
}

}  // namespace

KMeansResult KMeans(const std::vector<FeatureVec>& x, int k, int iters, uint64_t seed) {
  KMeansResult r;
  if (x.empty() || k <= 0) {
    return r;
  }
  k = std::min<int>(k, static_cast<int>(x.size()));
  Rng rng(seed);

  // k-means++ seeding.
  r.centroids.push_back(x[rng.NextBounded(x.size())]);
  std::vector<double> d2(x.size(), 0.0);
  while (static_cast<int>(r.centroids.size()) < k) {
    for (size_t i = 0; i < x.size(); ++i) {
      double best = std::numeric_limits<double>::max();
      for (const auto& c : r.centroids) {
        best = std::min(best, Sq(x[i], c));
      }
      d2[i] = best;
    }
    r.centroids.push_back(x[rng.NextWeighted(d2)]);
  }

  r.assignment.assign(x.size(), 0);
  for (int it = 0; it < iters; ++it) {
    bool changed = false;
    for (size_t i = 0; i < x.size(); ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (int c = 0; c < k; ++c) {
        double d = Sq(x[i], r.centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (r.assignment[i] != best) {
        r.assignment[i] = best;
        changed = true;
      }
    }
    // Recompute centroids.
    size_t dim = x[0].size();
    std::vector<FeatureVec> sums(k, FeatureVec(dim, 0.0));
    std::vector<int> counts(k, 0);
    for (size_t i = 0; i < x.size(); ++i) {
      ++counts[r.assignment[i]];
      for (size_t j = 0; j < dim; ++j) {
        sums[r.assignment[i]][j] += x[i][j];
      }
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] > 0) {
        for (size_t j = 0; j < dim; ++j) {
          r.centroids[c][j] = sums[c][j] / counts[c];
        }
      }
    }
    if (!changed) {
      break;
    }
  }
  r.inertia = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    r.inertia += Sq(x[i], r.centroids[r.assignment[i]]);
  }
  return r;
}

int ChooseKByElbow(const std::vector<FeatureVec>& x, int max_k, double min_gain,
                   uint64_t seed) {
  if (x.size() <= 1) {
    return static_cast<int>(x.size());
  }
  max_k = std::min<int>(max_k, static_cast<int>(x.size()));
  double prev = KMeans(x, 1, 50, seed).inertia;
  if (prev <= 1e-12) {
    return 1;
  }
  for (int k = 2; k <= max_k; ++k) {
    double cur = KMeans(x, k, 50, seed).inertia;
    double gain = (prev - cur) / prev;
    if (gain < min_gain) {
      return k - 1;
    }
    prev = cur;
    if (prev <= 1e-12) {
      return k;
    }
  }
  return max_k;
}

void SaveKMeansResult(BinWriter& w, const KMeansResult& res) {
  w.U16(0x4B4D);  // "KM"
  w.MatF64(res.centroids);
  w.VecI32(res.assignment);
  w.F64(res.inertia);
}

bool LoadKMeansResult(BinReader& r, KMeansResult* out) {
  if (r.U16() != 0x4B4D) {
    r.Fail("kmeans: bad section tag");
    return false;
  }
  KMeansResult res;
  r.MatF64(&res.centroids);
  r.VecI32(&res.assignment);
  res.inertia = r.F64();
  if (!r.ok()) {
    return false;
  }
  // Assignments index into centroids.
  for (int a : res.assignment) {
    if (a < 0 || a >= static_cast<int>(res.centroids.size())) {
      r.Fail("kmeans: assignment out of centroid range");
      return false;
    }
  }
  *out = std::move(res);
  return true;
}

}  // namespace clara
