// CART decision trees: least-squares regression trees (also the weak learner
// for GBDT) and Gini classification trees (the "DT" baseline in Figures 9
// and 11a).
#ifndef SRC_ML_TREE_H_
#define SRC_ML_TREE_H_

#include <memory>
#include <vector>

#include "src/ml/common.h"
#include "src/util/rng.h"

namespace clara {

struct TreeOptions {
  int max_depth = 4;
  int min_samples_leaf = 2;
  // When > 0, consider only this many randomly chosen features per split
  // (used by random forests).
  int feature_subsample = 0;
};

class RegressionTree : public Regressor {
 public:
  explicit RegressionTree(TreeOptions opts = TreeOptions{}) : opts_(opts) {}

  void Fit(const TabularDataset& data) override;
  // Weighted fit against explicit targets (for boosting) and sample indices.
  void FitSubset(const std::vector<FeatureVec>& x, const std::vector<double>& y,
                 const std::vector<size_t>& indices, Rng* rng = nullptr);
  double Predict(const FeatureVec& x) const override;
  std::string Describe() const override { return "regression-tree"; }

  void SaveTo(BinWriter& w) const;
  bool LoadFrom(BinReader& r);

 private:
  struct Node {
    int feature = -1;  // -1 = leaf
    double threshold = 0;
    double value = 0;  // leaf prediction
    int left = -1;
    int right = -1;
  };

  int Build(const std::vector<FeatureVec>& x, const std::vector<double>& y,
            std::vector<size_t>& indices, int depth, Rng* rng);

  TreeOptions opts_;
  std::vector<Node> nodes_;
};

class TreeClassifier : public Classifier {
 public:
  explicit TreeClassifier(TreeOptions opts = TreeOptions{}) : opts_(opts) {}

  void Fit(const TabularDataset& data, int num_classes) override;
  int Predict(const FeatureVec& x) const override;
  std::string Describe() const override { return "decision-tree"; }

 private:
  struct Node {
    int feature = -1;
    double threshold = 0;
    int label = 0;
    int left = -1;
    int right = -1;
  };

  int Build(const std::vector<FeatureVec>& x, const std::vector<int>& y,
            std::vector<size_t>& indices, int depth);

  TreeOptions opts_;
  int num_classes_ = 2;
  std::vector<Node> nodes_;
};

}  // namespace clara

#endif  // SRC_ML_TREE_H_
