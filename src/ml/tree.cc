#include "src/ml/tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>

#include "src/util/binio.h"

namespace clara {
namespace {

// Candidate features for a split, optionally subsampled.
std::vector<int> CandidateFeatures(size_t dim, int subsample, Rng* rng) {
  std::vector<int> feats(dim);
  std::iota(feats.begin(), feats.end(), 0);
  if (subsample > 0 && subsample < static_cast<int>(dim) && rng != nullptr) {
    for (int i = 0; i < subsample; ++i) {
      std::swap(feats[i], feats[i + rng->NextBounded(dim - i)]);
    }
    feats.resize(subsample);
  }
  return feats;
}

}  // namespace

void RegressionTree::Fit(const TabularDataset& data) {
  std::vector<size_t> idx(data.size());
  std::iota(idx.begin(), idx.end(), 0);
  FitSubset(data.x, data.y, idx);
}

void RegressionTree::FitSubset(const std::vector<FeatureVec>& x, const std::vector<double>& y,
                               const std::vector<size_t>& indices, Rng* rng) {
  nodes_.clear();
  if (indices.empty()) {
    nodes_.push_back(Node{});
    return;
  }
  std::vector<size_t> idx = indices;
  Build(x, y, idx, 0, rng);
}

int RegressionTree::Build(const std::vector<FeatureVec>& x, const std::vector<double>& y,
                          std::vector<size_t>& indices, int depth, Rng* rng) {
  int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});

  double sum = 0;
  for (size_t i : indices) {
    sum += y[i];
  }
  double mean = sum / static_cast<double>(indices.size());
  nodes_[node_id].value = mean;

  if (depth >= opts_.max_depth ||
      static_cast<int>(indices.size()) < 2 * opts_.min_samples_leaf) {
    return node_id;
  }

  // Best split by SSE reduction.
  double base_sse = 0;
  for (size_t i : indices) {
    base_sse += (y[i] - mean) * (y[i] - mean);
  }
  int best_feat = -1;
  double best_thresh = 0;
  double best_sse = base_sse - 1e-12;
  std::vector<size_t> sorted = indices;
  for (int f : CandidateFeatures(x[indices[0]].size(), opts_.feature_subsample, rng)) {
    std::sort(sorted.begin(), sorted.end(),
              [&](size_t a, size_t b) { return x[a][f] < x[b][f]; });
    double left_sum = 0;
    double left_sq = 0;
    double total_sq = 0;
    for (size_t i : sorted) {
      total_sq += y[i] * y[i];
    }
    size_t n = sorted.size();
    for (size_t k = 0; k + 1 < n; ++k) {
      double yi = y[sorted[k]];
      left_sum += yi;
      left_sq += yi * yi;
      if (x[sorted[k]][f] == x[sorted[k + 1]][f]) {
        continue;
      }
      size_t nl = k + 1;
      size_t nr = n - nl;
      if (static_cast<int>(nl) < opts_.min_samples_leaf ||
          static_cast<int>(nr) < opts_.min_samples_leaf) {
        continue;
      }
      double right_sum = sum - left_sum;
      double right_sq = total_sq - left_sq;
      double sse = (left_sq - left_sum * left_sum / nl) +
                   (right_sq - right_sum * right_sum / nr);
      if (sse < best_sse) {
        best_sse = sse;
        best_feat = f;
        best_thresh = 0.5 * (x[sorted[k]][f] + x[sorted[k + 1]][f]);
      }
    }
  }
  if (best_feat < 0) {
    return node_id;
  }
  std::vector<size_t> left;
  std::vector<size_t> right;
  for (size_t i : indices) {
    (x[i][best_feat] <= best_thresh ? left : right).push_back(i);
  }
  if (left.empty() || right.empty()) {
    return node_id;
  }
  nodes_[node_id].feature = best_feat;
  nodes_[node_id].threshold = best_thresh;
  int l = Build(x, y, left, depth + 1, rng);
  int r = Build(x, y, right, depth + 1, rng);
  nodes_[node_id].left = l;
  nodes_[node_id].right = r;
  return node_id;
}

void RegressionTree::SaveTo(BinWriter& w) const {
  w.U16(0x5254);  // "RT"
  w.U32(static_cast<uint32_t>(nodes_.size()));
  for (const Node& n : nodes_) {
    w.I32(n.feature);
    w.F64(n.threshold);
    w.F64(n.value);
    w.I32(n.left);
    w.I32(n.right);
  }
}

bool RegressionTree::LoadFrom(BinReader& r) {
  if (r.U16() != 0x5254) {
    r.Fail("regression tree: bad section tag");
    return false;
  }
  uint32_t count = r.U32();
  // Each node costs 24 bytes on the wire; an impossible count means a
  // corrupted stream, not a huge tree.
  if (!r.ok() || static_cast<uint64_t>(count) * 24 > r.remaining()) {
    r.Fail("regression tree: node count exceeds remaining bytes");
    return false;
  }
  nodes_.clear();
  nodes_.reserve(count);
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    Node n;
    n.feature = r.I32();
    n.threshold = r.F64();
    n.value = r.F64();
    n.left = r.I32();
    n.right = r.I32();
    // Predict() walks child links without bounds checks; a well-formed tree
    // (pre-order Build) always points strictly forward, so anything else is
    // rejected here to keep traversal finite and in-bounds.
    bool leaf = n.feature < 0;
    bool links_ok = leaf ? true
                         : n.left > static_cast<int>(i) && n.right > static_cast<int>(i) &&
                               n.left < static_cast<int>(count) &&
                               n.right < static_cast<int>(count);
    if (!links_ok) {
      r.Fail("regression tree: invalid child links at node " + std::to_string(i));
      return false;
    }
    nodes_.push_back(n);
  }
  return r.ok();
}

double RegressionTree::Predict(const FeatureVec& x) const {
  if (nodes_.empty()) {
    return 0;
  }
  int cur = 0;
  while (nodes_[cur].feature >= 0) {
    const Node& n = nodes_[cur];
    double v = n.feature < static_cast<int>(x.size()) ? x[n.feature] : 0.0;
    cur = v <= n.threshold ? n.left : n.right;
  }
  return nodes_[cur].value;
}

void TreeClassifier::Fit(const TabularDataset& data, int num_classes) {
  num_classes_ = num_classes;
  nodes_.clear();
  if (data.size() == 0) {
    nodes_.push_back(Node{});
    return;
  }
  std::vector<int> y(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    y[i] = static_cast<int>(data.y[i]);
  }
  std::vector<size_t> idx(data.size());
  std::iota(idx.begin(), idx.end(), 0);
  Build(data.x, y, idx, 0);
}

int TreeClassifier::Build(const std::vector<FeatureVec>& x, const std::vector<int>& y,
                          std::vector<size_t>& indices, int depth) {
  int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});

  std::vector<int> counts(num_classes_, 0);
  for (size_t i : indices) {
    ++counts[y[i]];
  }
  nodes_[node_id].label = static_cast<int>(
      std::distance(counts.begin(), std::max_element(counts.begin(), counts.end())));

  auto gini = [&](const std::vector<int>& c, int n) {
    if (n == 0) {
      return 0.0;
    }
    double g = 1.0;
    for (int v : c) {
      double p = static_cast<double>(v) / n;
      g -= p * p;
    }
    return g;
  };

  bool pure = *std::max_element(counts.begin(), counts.end()) ==
              static_cast<int>(indices.size());
  if (pure || depth >= opts_.max_depth ||
      static_cast<int>(indices.size()) < 2 * opts_.min_samples_leaf) {
    return node_id;
  }

  int n = static_cast<int>(indices.size());
  double best_impurity = gini(counts, n) - 1e-12;
  int best_feat = -1;
  double best_thresh = 0;
  std::vector<size_t> sorted = indices;
  for (size_t f = 0; f < x[indices[0]].size(); ++f) {
    std::sort(sorted.begin(), sorted.end(),
              [&](size_t a, size_t b) { return x[a][f] < x[b][f]; });
    std::vector<int> left_counts(num_classes_, 0);
    std::vector<int> right_counts = counts;
    for (int k = 0; k + 1 < n; ++k) {
      int cls = y[sorted[k]];
      ++left_counts[cls];
      --right_counts[cls];
      if (x[sorted[k]][f] == x[sorted[k + 1]][f]) {
        continue;
      }
      int nl = k + 1;
      int nr = n - nl;
      double impurity =
          (nl * gini(left_counts, nl) + nr * gini(right_counts, nr)) / n;
      if (impurity < best_impurity) {
        best_impurity = impurity;
        best_feat = static_cast<int>(f);
        best_thresh = 0.5 * (x[sorted[k]][f] + x[sorted[k + 1]][f]);
      }
    }
  }
  if (best_feat < 0) {
    return node_id;
  }
  std::vector<size_t> left;
  std::vector<size_t> right;
  for (size_t i : indices) {
    (x[i][best_feat] <= best_thresh ? left : right).push_back(i);
  }
  if (left.empty() || right.empty()) {
    return node_id;
  }
  nodes_[node_id].feature = best_feat;
  nodes_[node_id].threshold = best_thresh;
  int l = Build(x, y, left, depth + 1);
  int r = Build(x, y, right, depth + 1);
  nodes_[node_id].left = l;
  nodes_[node_id].right = r;
  return node_id;
}

int TreeClassifier::Predict(const FeatureVec& x) const {
  if (nodes_.empty()) {
    return 0;
  }
  int cur = 0;
  while (nodes_[cur].feature >= 0) {
    const Node& n = nodes_[cur];
    double v = n.feature < static_cast<int>(x.size()) ? x[n.feature] : 0.0;
    cur = v <= n.threshold ? n.left : n.right;
  }
  return nodes_[cur].label;
}

}  // namespace clara
