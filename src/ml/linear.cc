#include "src/ml/linear.h"

#include <algorithm>
#include <cmath>

#include "src/util/binio.h"
#include "src/util/rng.h"

namespace clara {

namespace {
constexpr uint16_t kSvmTag = 0x5356;  // "SV"
}  // namespace

void LinearSvm::SaveTo(BinWriter& w) const {
  w.U16(kSvmTag);
  std_.SaveTo(w);
  w.U32(static_cast<uint32_t>(w_.size()));
  for (const auto& row : w_) {
    w.VecF64(row);
  }
}

bool LinearSvm::LoadFrom(BinReader& r) {
  if (r.U16() != kSvmTag) {
    r.Fail("svm: bad section tag");
    return false;
  }
  if (!std_.LoadFrom(r)) {
    return false;
  }
  uint32_t classes = r.U32();
  if (!r.ok() || static_cast<uint64_t>(classes) * 4 > r.remaining()) {
    r.Fail("svm: class count exceeds remaining bytes");
    return false;
  }
  w_.clear();
  w_.reserve(classes);
  for (uint32_t c = 0; c < classes && r.ok(); ++c) {
    std::vector<double> row;
    r.VecF64(&row);
    // Margin() reads row[row.size()-1] as the bias and expects every class to
    // share a dimension.
    if (r.ok() && (row.empty() || (!w_.empty() && row.size() != w_[0].size()))) {
      r.Fail("svm: inconsistent weight row dimensions");
    }
    if (!r.ok()) {
      return false;
    }
    w_.push_back(std::move(row));
  }
  return r.ok();
}

void LinearSvm::Fit(const TabularDataset& data, int num_classes) {
  w_.assign(num_classes, std::vector<double>(data.dim() + 1, 0.0));
  if (data.size() == 0) {
    return;
  }
  std_.Fit(data.x);
  std::vector<FeatureVec> x = std_.ApplyAll(data.x);
  Rng rng(opts_.seed);
  size_t d = data.dim();
  for (int epoch = 0; epoch < opts_.epochs; ++epoch) {
    double lr = opts_.learning_rate / (1.0 + 0.02 * epoch);
    std::vector<size_t> order = rng.Permutation(data.size());
    for (size_t i : order) {
      int label = static_cast<int>(data.y[i]);
      for (int c = 0; c < num_classes; ++c) {
        double target = c == label ? 1.0 : -1.0;
        double margin = w_[c][d];
        for (size_t j = 0; j < d; ++j) {
          margin += w_[c][j] * x[i][j];
        }
        // Subgradient of hinge loss + L2.
        for (size_t j = 0; j < d; ++j) {
          double grad = opts_.l2 * w_[c][j];
          if (target * margin < 1.0) {
            grad -= target * x[i][j];
          }
          w_[c][j] -= lr * grad;
        }
        if (target * margin < 1.0) {
          w_[c][d] += lr * target;
        }
      }
    }
  }
}

double LinearSvm::Margin(const FeatureVec& x_raw, int c) const {
  if (c < 0 || c >= static_cast<int>(w_.size())) {
    return -1e300;
  }
  FeatureVec x = std_.Apply(x_raw);
  size_t d = w_[c].size() - 1;
  double m = w_[c][d];
  for (size_t j = 0; j < d && j < x.size(); ++j) {
    m += w_[c][j] * x[j];
  }
  return m;
}

int LinearSvm::Predict(const FeatureVec& x) const {
  int best = 0;
  double best_margin = -1e300;
  for (size_t c = 0; c < w_.size(); ++c) {
    double m = Margin(x, static_cast<int>(c));
    if (m > best_margin) {
      best_margin = m;
      best = static_cast<int>(c);
    }
  }
  return best;
}

}  // namespace clara
