#include "src/ml/automl.h"

#include <cmath>
#include <functional>
#include <vector>

#include "src/ml/ensemble.h"
#include "src/ml/knn.h"
#include "src/ml/mlp.h"
#include "src/ml/tree.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/util/parallel.h"

namespace clara {
namespace {

// Index view of one fold: [lo, hi) validates, the rest trains.
struct FoldSpan {
  size_t lo = 0;
  size_t hi = 0;
};

FoldSpan FoldRange(size_t n, int fold, int folds) {
  return FoldSpan{n * fold / folds, n * (fold + 1) / folds};
}

// Splits [0, n) into `folds` contiguous validation ranges. Both halves are
// reserved to their exact sizes, so k-fold CV does one allocation per half
// instead of O(n) vector regrowth.
std::pair<TabularDataset, TabularDataset> Split(const TabularDataset& data, int fold,
                                                int folds) {
  TabularDataset train;
  TabularDataset valid;
  size_t n = data.size();
  FoldSpan span = FoldRange(n, fold, folds);
  size_t n_valid = span.hi - span.lo;
  valid.x.reserve(n_valid);
  valid.y.reserve(n_valid);
  train.x.reserve(n - n_valid);
  train.y.reserve(n - n_valid);
  for (size_t i = 0; i < n; ++i) {
    if (i >= span.lo && i < span.hi) {
      valid.x.push_back(data.x[i]);
      valid.y.push_back(data.y[i]);
    } else {
      train.x.push_back(data.x[i]);
      train.y.push_back(data.y[i]);
    }
  }
  return {std::move(train), std::move(valid)};
}

// One (candidate, fold) cell of the CV grid.
struct CvCell {
  double err = 0;  // absolute error sum (regression) / error count (classif.)
  int count = 0;
};

void RecordGridMetrics(size_t cells) {
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global().GetCounter("ml.automl.cv_cells").Add(cells);
  }
}

}  // namespace

std::unique_ptr<Regressor> AutoMlRegression(const TabularDataset& data, AutoMlReport* report,
                                            int folds) {
  using Factory = std::function<std::unique_ptr<Regressor>()>;
  std::vector<std::pair<std::string, Factory>> candidates;
  for (int k : {3, 5, 9}) {
    candidates.emplace_back("knn(k=" + std::to_string(k) + ")",
                            [k] { return std::make_unique<KnnRegressor>(KnnOptions{k}); });
  }
  for (int depth : {4, 6, 8}) {
    candidates.emplace_back("dt(depth=" + std::to_string(depth) + ")", [depth] {
      return std::make_unique<RegressionTree>(TreeOptions{depth, 2, 0});
    });
  }
  for (int rounds : {60, 120}) {
    candidates.emplace_back("gbdt(rounds=" + std::to_string(rounds) + ")", [rounds] {
      GbdtOptions o;
      o.rounds = rounds;
      return std::make_unique<GbdtRegressor>(o);
    });
  }
  for (int trees : {40, 80}) {
    candidates.emplace_back("rf(trees=" + std::to_string(trees) + ")", [trees] {
      ForestOptions o;
      o.trees = trees;
      return std::make_unique<RandomForestRegressor>(o);
    });
  }

  // Fan the candidate x fold grid out across the pool: every cell trains an
  // independent model on its own fold copy. Scores are folded back in
  // (candidate, fold) order, so the selected pipeline never depends on the
  // thread count.
  size_t n_cells = candidates.size() * static_cast<size_t>(folds);
  RecordGridMetrics(n_cells);
  std::vector<CvCell> cells = ParallelMap<CvCell>(n_cells, [&](size_t idx) {
    CvCell cell;
    size_t ci = idx / folds;
    int f = static_cast<int>(idx % folds);
    auto [train, valid] = Split(data, f, folds);
    if (train.size() == 0 || valid.size() == 0) {
      return cell;
    }
    auto model = candidates[ci].second();
    model->Fit(train);
    for (size_t i = 0; i < valid.size(); ++i) {
      cell.err += std::abs(model->Predict(valid.x[i]) - valid.y[i]);
      ++cell.count;
    }
    return cell;
  });

  std::string best_desc;
  Factory best_factory;
  double best_err = 1e300;
  for (size_t ci = 0; ci < candidates.size(); ++ci) {
    double err = 0;
    int count = 0;
    for (int f = 0; f < folds; ++f) {
      const CvCell& cell = cells[ci * folds + f];
      err += cell.err;
      count += cell.count;
    }
    double mae = count > 0 ? err / count : 1e300;
    if (mae < best_err) {
      best_err = mae;
      best_desc = candidates[ci].first;
      best_factory = candidates[ci].second;
    }
  }
  if (report != nullptr) {
    report->chosen = best_desc;
    report->cv_error = best_err;
  }
  auto model = best_factory ? best_factory() : std::make_unique<RegressionTree>();
  model->Fit(data);
  return model;
}

std::unique_ptr<Classifier> AutoMlClassification(const TabularDataset& data, int num_classes,
                                                 AutoMlReport* report, int folds) {
  using Factory = std::function<std::unique_ptr<Classifier>()>;
  std::vector<std::pair<std::string, Factory>> candidates;
  for (int k : {1, 3, 7}) {
    candidates.emplace_back("knn(k=" + std::to_string(k) + ")",
                            [k] { return std::make_unique<KnnClassifier>(KnnOptions{k}); });
  }
  for (int depth : {4, 8}) {
    candidates.emplace_back("dt(depth=" + std::to_string(depth) + ")", [depth] {
      return std::make_unique<TreeClassifier>(TreeOptions{depth, 2, 0});
    });
  }
  candidates.emplace_back("gbdt-ovr", [] {
    GbdtOptions o;
    o.rounds = 60;
    return std::make_unique<GbdtClassifier>(o);
  });
  candidates.emplace_back("mlp", [] { return std::make_unique<MlpClassifier>(); });

  size_t n_cells = candidates.size() * static_cast<size_t>(folds);
  RecordGridMetrics(n_cells);
  std::vector<CvCell> cells = ParallelMap<CvCell>(n_cells, [&](size_t idx) {
    CvCell cell;
    size_t ci = idx / folds;
    int f = static_cast<int>(idx % folds);
    auto [train, valid] = Split(data, f, folds);
    if (train.size() == 0 || valid.size() == 0) {
      return cell;
    }
    auto model = candidates[ci].second();
    model->Fit(train, num_classes);
    for (size_t i = 0; i < valid.size(); ++i) {
      cell.err += model->Predict(valid.x[i]) != static_cast<int>(valid.y[i]) ? 1 : 0;
      ++cell.count;
    }
    return cell;
  });

  std::string best_desc;
  Factory best_factory;
  double best_err = 1e300;
  for (size_t ci = 0; ci < candidates.size(); ++ci) {
    double errors = 0;
    int count = 0;
    for (int f = 0; f < folds; ++f) {
      const CvCell& cell = cells[ci * folds + f];
      errors += cell.err;
      count += cell.count;
    }
    double rate = count > 0 ? errors / count : 1e300;
    if (rate < best_err) {
      best_err = rate;
      best_desc = candidates[ci].first;
      best_factory = candidates[ci].second;
    }
  }
  if (report != nullptr) {
    report->chosen = best_desc;
    report->cv_error = best_err;
  }
  auto model = best_factory ? best_factory() : std::make_unique<TreeClassifier>();
  model->Fit(data, num_classes);
  return model;
}

}  // namespace clara
