#include "src/ml/automl.h"

#include <cmath>
#include <functional>
#include <vector>

#include "src/ml/ensemble.h"
#include "src/ml/knn.h"
#include "src/ml/mlp.h"
#include "src/ml/tree.h"

namespace clara {
namespace {

// Splits [0, n) into `folds` contiguous validation ranges.
std::pair<TabularDataset, TabularDataset> Split(const TabularDataset& data, int fold,
                                                int folds) {
  TabularDataset train;
  TabularDataset valid;
  size_t n = data.size();
  size_t lo = n * fold / folds;
  size_t hi = n * (fold + 1) / folds;
  for (size_t i = 0; i < n; ++i) {
    if (i >= lo && i < hi) {
      valid.x.push_back(data.x[i]);
      valid.y.push_back(data.y[i]);
    } else {
      train.x.push_back(data.x[i]);
      train.y.push_back(data.y[i]);
    }
  }
  return {std::move(train), std::move(valid)};
}

}  // namespace

std::unique_ptr<Regressor> AutoMlRegression(const TabularDataset& data, AutoMlReport* report,
                                            int folds) {
  using Factory = std::function<std::unique_ptr<Regressor>()>;
  std::vector<std::pair<std::string, Factory>> candidates;
  for (int k : {3, 5, 9}) {
    candidates.emplace_back("knn(k=" + std::to_string(k) + ")",
                            [k] { return std::make_unique<KnnRegressor>(KnnOptions{k}); });
  }
  for (int depth : {4, 6, 8}) {
    candidates.emplace_back("dt(depth=" + std::to_string(depth) + ")", [depth] {
      return std::make_unique<RegressionTree>(TreeOptions{depth, 2, 0});
    });
  }
  for (int rounds : {60, 120}) {
    candidates.emplace_back("gbdt(rounds=" + std::to_string(rounds) + ")", [rounds] {
      GbdtOptions o;
      o.rounds = rounds;
      return std::make_unique<GbdtRegressor>(o);
    });
  }
  for (int trees : {40, 80}) {
    candidates.emplace_back("rf(trees=" + std::to_string(trees) + ")", [trees] {
      ForestOptions o;
      o.trees = trees;
      return std::make_unique<RandomForestRegressor>(o);
    });
  }

  std::string best_desc;
  Factory best_factory;
  double best_err = 1e300;
  for (const auto& [desc, factory] : candidates) {
    double err = 0;
    int count = 0;
    for (int f = 0; f < folds; ++f) {
      auto [train, valid] = Split(data, f, folds);
      if (train.size() == 0 || valid.size() == 0) {
        continue;
      }
      auto model = factory();
      model->Fit(train);
      for (size_t i = 0; i < valid.size(); ++i) {
        err += std::abs(model->Predict(valid.x[i]) - valid.y[i]);
        ++count;
      }
    }
    double mae = count > 0 ? err / count : 1e300;
    if (mae < best_err) {
      best_err = mae;
      best_desc = desc;
      best_factory = factory;
    }
  }
  if (report != nullptr) {
    report->chosen = best_desc;
    report->cv_error = best_err;
  }
  auto model = best_factory ? best_factory() : std::make_unique<RegressionTree>();
  model->Fit(data);
  return model;
}

std::unique_ptr<Classifier> AutoMlClassification(const TabularDataset& data, int num_classes,
                                                 AutoMlReport* report, int folds) {
  using Factory = std::function<std::unique_ptr<Classifier>()>;
  std::vector<std::pair<std::string, Factory>> candidates;
  for (int k : {1, 3, 7}) {
    candidates.emplace_back("knn(k=" + std::to_string(k) + ")",
                            [k] { return std::make_unique<KnnClassifier>(KnnOptions{k}); });
  }
  for (int depth : {4, 8}) {
    candidates.emplace_back("dt(depth=" + std::to_string(depth) + ")", [depth] {
      return std::make_unique<TreeClassifier>(TreeOptions{depth, 2, 0});
    });
  }
  candidates.emplace_back("gbdt-ovr", [] {
    GbdtOptions o;
    o.rounds = 60;
    return std::make_unique<GbdtClassifier>(o);
  });
  candidates.emplace_back("mlp", [] { return std::make_unique<MlpClassifier>(); });

  std::string best_desc;
  Factory best_factory;
  double best_err = 1e300;
  for (const auto& [desc, factory] : candidates) {
    int errors = 0;
    int count = 0;
    for (int f = 0; f < folds; ++f) {
      auto [train, valid] = Split(data, f, folds);
      if (train.size() == 0 || valid.size() == 0) {
        continue;
      }
      auto model = factory();
      model->Fit(train, num_classes);
      for (size_t i = 0; i < valid.size(); ++i) {
        errors += model->Predict(valid.x[i]) != static_cast<int>(valid.y[i]) ? 1 : 0;
        ++count;
      }
    }
    double rate = count > 0 ? static_cast<double>(errors) / count : 1e300;
    if (rate < best_err) {
      best_err = rate;
      best_desc = desc;
      best_factory = factory;
    }
  }
  if (report != nullptr) {
    report->chosen = best_desc;
    report->cv_error = best_err;
  }
  auto model = best_factory ? best_factory() : std::make_unique<TreeClassifier>();
  model->Fit(data, num_classes);
  return model;
}

}  // namespace clara
