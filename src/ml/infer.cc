#include "src/ml/infer.h"

#include <algorithm>
#include <cstring>

#include "src/ml/kernels_f32.h"
#include "src/util/binio.h"

namespace clara {
namespace {

constexpr uint16_t kInt8Tag = 0x3851;  // "Q8"

int RoundUp8(int n) { return (n + 7) & ~7; }

void WriteF32(BinWriter& w, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  w.U32(bits);
}

float ReadF32(BinReader& r) {
  uint32_t bits = r.U32();
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void WriteVecF32(BinWriter& w, const std::vector<float>& v) {
  w.U32(static_cast<uint32_t>(v.size()));
  for (float x : v) {
    WriteF32(w, x);
  }
}

bool ReadVecF32(BinReader& r, std::vector<float>* out) {
  out->clear();
  uint32_t len = r.U32();
  if (!r.ok() || static_cast<uint64_t>(len) * 4 > r.remaining()) {
    r.Fail("f32 vector length " + std::to_string(len) + " exceeds remaining bytes");
    return false;
  }
  out->reserve(len);
  for (uint32_t i = 0; i < len && r.ok(); ++i) {
    out->push_back(ReadF32(r));
  }
  return r.ok();
}

void WriteVecI8(BinWriter& w, const std::vector<int8_t>& v) {
  w.U32(static_cast<uint32_t>(v.size()));
  w.Bytes(v.data(), v.size());
}

bool ReadVecI8(BinReader& r, std::vector<int8_t>* out) {
  out->clear();
  uint32_t len = r.U32();
  if (!r.ok() || len > r.remaining()) {
    r.Fail("int8 vector length " + std::to_string(len) + " exceeds remaining bytes");
    return false;
  }
  out->resize(len);
  return r.Raw(out->data(), len);
}

void CastToF32(const std::vector<double>& src, float* dst) {
  for (size_t i = 0; i < src.size(); ++i) {
    dst[i] = static_cast<float>(src[i]);
  }
}

// Copies `rows` rows of `cols` doubles into f32 rows of `stride` floats
// (padding already zeroed by AlignedF32).
void CastRowsToF32(const std::vector<double>& src, float* dst, int rows, int cols,
                   int stride) {
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      dst[static_cast<size_t>(r) * stride + c] =
          static_cast<float>(src[static_cast<size_t>(r) * cols + c]);
    }
  }
}

void QuantizeRows(const std::vector<double>& src, int rows, int cols,
                  std::vector<float>* scales, std::vector<int8_t>* out) {
  scales->resize(rows);
  out->resize(static_cast<size_t>(rows) * cols);
  for (int r = 0; r < rows; ++r) {
    const double* row = src.data() + static_cast<size_t>(r) * cols;
    float scale = kernels::Int8RowScale(row, cols);
    (*scales)[r] = scale;
    for (int c = 0; c < cols; ++c) {
      (*out)[static_cast<size_t>(r) * cols + c] = kernels::QuantizeWeight(row[c], scale);
    }
  }
}

std::vector<int32_t> RowSums(const std::vector<int8_t>& w, int rows, int cols) {
  std::vector<int32_t> sums(rows, 0);
  for (int r = 0; r < rows; ++r) {
    int32_t s = 0;
    for (int c = 0; c < cols; ++c) {
      s += w[static_cast<size_t>(r) * cols + c];
    }
    sums[r] = s;
  }
  return sums;
}

}  // namespace

const char* InferBackendName(InferBackend b) {
  switch (b) {
    case InferBackend::kF64:
      return "f64";
    case InferBackend::kF32:
      return "f32";
    case InferBackend::kInt8:
      return "int8";
  }
  return "f64";
}

bool ParseInferBackend(std::string_view s, InferBackend* out) {
  if (s == "f64") {
    *out = InferBackend::kF64;
  } else if (s == "f32") {
    *out = InferBackend::kF32;
  } else if (s == "int8") {
    *out = InferBackend::kInt8;
  } else {
    return false;
  }
  return true;
}

void Int8LstmParams::SaveTo(BinWriter& w) const {
  w.U16(kInt8Tag);
  w.I32(hidden);
  w.I32(fc_hidden);
  w.I32(vocab);
  WriteVecF32(w, wh_scale);
  WriteVecI8(w, wh);
  WriteVecF32(w, w1_scale);
  WriteVecI8(w, w1);
  WriteF32(w, w2_scale);
  WriteVecI8(w, w2);
}

bool Int8LstmParams::LoadFrom(BinReader& r) {
  if (r.U16() != kInt8Tag) {
    r.Fail("int8: bad section tag");
    return false;
  }
  hidden = r.I32();
  fc_hidden = r.I32();
  vocab = r.I32();
  ReadVecF32(r, &wh_scale);
  ReadVecI8(r, &wh);
  ReadVecF32(r, &w1_scale);
  ReadVecI8(r, &w1);
  w2_scale = ReadF32(r);
  ReadVecI8(r, &w2);
  if (!r.ok()) {
    return false;
  }
  if (hidden <= 0 || fc_hidden <= 0 || vocab < 0) {
    r.Fail("int8: non-positive architecture dimensions");
    return false;
  }
  std::string why;
  if (!Validate(hidden, fc_hidden, vocab, &why)) {
    r.Fail(why);
    return false;
  }
  return true;
}

bool Int8LstmParams::Validate(int hidden_dim, int fc_dim, int vocab_dim,
                              std::string* error) const {
  if (hidden != hidden_dim || fc_hidden != fc_dim || vocab != vocab_dim) {
    *error = "int8: quantized dims do not match the f64 model";
    return false;
  }
  size_t h = static_cast<size_t>(hidden_dim);
  size_t f = static_cast<size_t>(fc_dim);
  bool shapes_ok =
      vocab == 0 ? wh_scale.empty() && wh.empty() && w1_scale.empty() &&
                       w1.empty() && w2.empty()
                 : wh_scale.size() == 4 * h && wh.size() == 4 * h * h &&
                       w1_scale.size() == f && w1.size() == f * h && w2.size() == f;
  if (!shapes_ok) {
    *error = "int8: quantized weight shapes inconsistent with dims";
    return false;
  }
  return true;
}

Int8LstmParams QuantizeLstm(const LstmF64View& v) {
  Int8LstmParams q;
  q.hidden = v.hidden;
  q.fc_hidden = v.fc_hidden;
  q.vocab = v.vocab;
  if (v.vocab == 0) {
    return q;
  }
  QuantizeRows(*v.wh, 4 * v.hidden, v.hidden, &q.wh_scale, &q.wh);
  QuantizeRows(*v.w1, v.fc_hidden, v.hidden, &q.w1_scale, &q.w1);
  std::vector<float> w2_scale;
  QuantizeRows(*v.w2, 1, v.fc_hidden, &w2_scale, &q.w2);
  q.w2_scale = w2_scale[0];
  return q;
}

LstmInferEngine::AlignedF32::AlignedF32(size_t n) {
  p_.reset(new (std::align_val_t{32}) float[n]());
}

LstmInferEngine::LstmInferEngine(const LstmF64View& v, Int8LstmParams quant)
    : h_(v.hidden),
      f_(v.fc_hidden),
      vocab_(v.vocab),
      max_seq_len_(v.max_seq_len),
      hp_(RoundUp8(v.hidden)),
      fp_(RoundUp8(v.fc_hidden)),
      wx_(static_cast<size_t>(4 * v.hidden) * std::max(v.vocab, 1)),
      wh_(static_cast<size_t>(4 * v.hidden) * hp_),
      b_(static_cast<size_t>(4 * v.hidden)),
      w1_(static_cast<size_t>(v.fc_hidden) * hp_),
      b1_(static_cast<size_t>(v.fc_hidden)),
      w2_(static_cast<size_t>(fp_)),
      b2_(static_cast<float>(v.b2)),
      quant_(quant.empty() ? QuantizeLstm(v) : std::move(quant)) {
  if (vocab_ == 0) {
    return;
  }
  CastToF32(*v.wx, wx_.data());
  CastRowsToF32(*v.wh, wh_.data(), 4 * h_, h_, hp_);
  CastToF32(*v.b, b_.data());
  CastRowsToF32(*v.w1, w1_.data(), f_, h_, hp_);
  CastToF32(*v.b1, b1_.data());
  CastToF32(*v.w2, w2_.data());
  wh_rowsum_ = RowSums(quant_.wh, 4 * h_, h_);
  w1_rowsum_ = RowSums(quant_.w1, f_, h_);
  w2_rowsum_ = RowSums(quant_.w2, 1, f_)[0];
}

void LstmInferEngine::RunSteps(const std::vector<int>& tokens, float* h, float* c,
                               float* pre, float* tmp, bool int8_recurrence,
                               uint8_t* q, int32_t* acc) const {
  const kernels::F32Kernels& k = kernels::ActiveF32Kernels();
  size_t len = std::min<size_t>(tokens.size(), max_seq_len_);
  for (size_t t = 0; t < len; ++t) {
    int x = tokens[t];
    if (x < 0 || x >= vocab_) {
      x = 0;
    }
    if (int8_recurrence) {
      kernels::ActQuant aq = kernels::QuantizeActivations(h, h_, q);
      k.gemv_int8(acc, quant_.wh.data(), h_, q, 4 * h_, h_);
      for (int r = 0; r < 4 * h_; ++r) {
        pre[r] = (quant_.wh_scale[r] * aq.scale) *
                 static_cast<float>(acc[r] - aq.zero_point * wh_rowsum_[r]);
      }
    } else {
      k.gemv_bias(pre, wh_.data(), hp_, h, nullptr, 4 * h_, h_);
    }
    kernels::OneHotGatherAddF32(pre, wx_.data(), b_.data(), x, 4 * h_, vocab_);
    // Gate blocks [i; f; g; o], nonlinearities in place, then the cell update
    //   c = f⊙c + i⊙g ; h = o⊙tanh(c)
    // as three elementwise kernels.
    k.sigmoid_v(pre, pre, h_);
    k.sigmoid_v(pre + h_, pre + h_, h_);
    k.tanh_v(pre + 2 * h_, pre + 2 * h_, h_);
    k.sigmoid_v(pre + 3 * h_, pre + 3 * h_, h_);
    k.mul(c, pre + h_, c, h_);
    k.mul_accum(c, pre, pre + 2 * h_, h_);
    k.tanh_v(tmp, c, h_);
    k.mul(h, pre + 3 * h_, tmp, h_);
  }
}

double LstmInferEngine::PredictF32(const std::vector<int>& tokens) const {
  const kernels::F32Kernels& k = kernels::ActiveF32Kernels();
  std::vector<float> h(hp_, 0.0f);
  std::vector<float> c(hp_, 0.0f);
  std::vector<float> pre(static_cast<size_t>(4) * h_);
  std::vector<float> tmp(hp_, 0.0f);
  RunSteps(tokens, h.data(), c.data(), pre.data(), tmp.data(),
           /*int8_recurrence=*/false, nullptr, nullptr);
  std::vector<float> fc(static_cast<size_t>(2) * fp_, 0.0f);
  float* fc_pre = fc.data();
  float* fc_h = fc.data() + fp_;
  k.gemv_bias(fc_pre, w1_.data(), hp_, h.data(), b1_.data(), f_, h_);
  for (int j = 0; j < f_; ++j) {
    fc_h[j] = fc_pre[j] > 0 ? fc_pre[j] : 0;
  }
  return b2_ + k.dot(w2_.data(), fc_h, f_);
}

double LstmInferEngine::PredictInt8(const std::vector<int>& tokens) const {
  const kernels::F32Kernels& k = kernels::ActiveF32Kernels();
  std::vector<float> h(hp_, 0.0f);
  std::vector<float> c(hp_, 0.0f);
  std::vector<float> pre(static_cast<size_t>(4) * h_);
  std::vector<float> tmp(hp_, 0.0f);
  std::vector<uint8_t> q(static_cast<size_t>(std::max(hp_, fp_)));
  std::vector<int32_t> acc(
      std::max<size_t>(static_cast<size_t>(4) * h_, static_cast<size_t>(f_)));
  RunSteps(tokens, h.data(), c.data(), pre.data(), tmp.data(),
           /*int8_recurrence=*/true, q.data(), acc.data());
  // FC head: int8 GEMV for W1, f32 bias + relu, int8 dot for w2.
  std::vector<float> fc(static_cast<size_t>(2) * fp_, 0.0f);
  float* fc_pre = fc.data();
  float* fc_h = fc.data() + fp_;
  kernels::ActQuant aq = kernels::QuantizeActivations(h.data(), h_, q.data());
  k.gemv_int8(acc.data(), quant_.w1.data(), h_, q.data(), f_, h_);
  for (int j = 0; j < f_; ++j) {
    fc_pre[j] = b1_.data()[j] +
                (quant_.w1_scale[j] * aq.scale) *
                    static_cast<float>(acc[j] - aq.zero_point * w1_rowsum_[j]);
    fc_h[j] = fc_pre[j] > 0 ? fc_pre[j] : 0;
  }
  kernels::ActQuant aq2 = kernels::QuantizeActivations(fc_h, f_, q.data());
  int32_t a2 = 0;
  k.gemv_int8(&a2, quant_.w2.data(), f_, q.data(), 1, f_);
  return b2_ + (quant_.w2_scale * aq2.scale) *
                   static_cast<float>(a2 - aq2.zero_point * w2_rowsum_);
}

}  // namespace clara
