// Evaluation metrics used across the paper's experiments: WMAPE (Fig 8),
// precision/recall (Fig 9), MAE in cores (Fig 11a), top-k ranking accuracy
// (Fig 14a), and the distribution distances of Table 1.
#ifndef SRC_ML_METRICS_H_
#define SRC_ML_METRICS_H_

#include <vector>

namespace clara {

// Weighted mean absolute percentage error: sum|err| / sum|truth|.
double Wmape(const std::vector<double>& truth, const std::vector<double>& pred);

double MeanAbsoluteError(const std::vector<double>& truth, const std::vector<double>& pred);

struct PrecisionRecall {
  double precision = 0;
  double recall = 0;
  int tp = 0;
  int fp = 0;
  int fn = 0;
};

// Micro-averaged precision/recall over the positive classes. `negative_class`
// is the "none" label that does not count as a detection.
PrecisionRecall MultiClassPrecisionRecall(const std::vector<int>& truth,
                                          const std::vector<int>& pred, int negative_class);

// Fraction of groups where the true-best item appears in the predicted top-k.
// Each group supplies true scores (higher = better) and predicted scores.
double TopKAccuracy(const std::vector<std::vector<double>>& true_scores,
                    const std::vector<std::vector<double>>& pred_scores, int k);

// ---- Distribution distances (Table 1). Inputs are non-negative histograms;
// they are normalized internally and smoothed with a small epsilon. ----

double JensenShannonDivergence(const std::vector<double>& p, const std::vector<double>& q);
double RenyiDivergence(const std::vector<double>& p, const std::vector<double>& q,
                       double alpha = 2.0);
double BhattacharyyaDistance(const std::vector<double>& p, const std::vector<double>& q);
double CosineDistance(const std::vector<double>& p, const std::vector<double>& q);
double EuclideanDistance(const std::vector<double>& p, const std::vector<double>& q);
double VariationalDistance(const std::vector<double>& p, const std::vector<double>& q);

}  // namespace clara

#endif  // SRC_ML_METRICS_H_
