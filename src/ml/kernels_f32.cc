// Scalar reference implementation of the f32/int8 kernel table, plus the
// quantization helpers shared by every backend. The AVX2 twin lives in
// kernels_avx2.cc; see kernels_f32.h for the bit-exactness contract the two
// files uphold together.
#include "src/ml/kernels_f32.h"

#include <algorithm>
#include <cmath>

#include "src/ml/simd.h"

namespace clara {
namespace kernels {
namespace {

// Inputs beyond the clamp saturate: tanh(4.97) is within 5e-5 of 1 and the
// polynomial stays monotone inside the window.
constexpr float kTanhClamp = 4.97f;

// minps/maxps semantics (NaN in the variable operand yields the constant),
// written as ternaries so the scalar path matches the vector instructions
// exactly, NaN inputs included.
inline float ClampTanhInput(float x) {
  float t = x > -kTanhClamp ? x : -kTanhClamp;
  return t < kTanhClamp ? t : kTanhClamp;
}

inline float TanhCore(float x) {
  x = ClampTanhInput(x);
  float x2 = x * x;
  float n1 = x2 + 378.0f;
  float n2 = std::fmaf(x2, n1, 17325.0f);
  float n3 = std::fmaf(x2, n2, 135135.0f);
  float d1 = std::fmaf(x2, 28.0f, 3150.0f);
  float d2 = std::fmaf(x2, d1, 62370.0f);
  float d3 = std::fmaf(x2, d2, 135135.0f);
  return (x * n3) / d3;
}

inline float SigmoidCore(float x) {
  return std::fmaf(0.5f, TanhCore(0.5f * x), 0.5f);
}

float DotScalar(const float* a, const float* b, int n) {
  float l[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    for (int j = 0; j < 8; ++j) {
      l[j] = std::fmaf(a[i + j], b[i + j], l[j]);
    }
  }
  float s = ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
  for (; i < n; ++i) {
    s = std::fmaf(a[i], b[i], s);
  }
  return s;
}

void GemvBiasScalar(float* y, const float* m, int stride, const float* x,
                    const float* bias, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    float b = bias != nullptr ? bias[r] : 0.0f;
    y[r] = b + DotScalar(m + static_cast<size_t>(r) * stride, x, cols);
  }
}

void MulScalar(float* z, const float* x, const float* y, int n) {
  for (int i = 0; i < n; ++i) {
    z[i] = x[i] * y[i];
  }
}

void MulAccumScalar(float* z, const float* x, const float* y, int n) {
  for (int i = 0; i < n; ++i) {
    z[i] = std::fmaf(x[i], y[i], z[i]);
  }
}

void TanhVScalar(float* y, const float* x, int n) {
  for (int i = 0; i < n; ++i) {
    y[i] = TanhCore(x[i]);
  }
}

void SigmoidVScalar(float* y, const float* x, int n) {
  for (int i = 0; i < n; ++i) {
    y[i] = SigmoidCore(x[i]);
  }
}

void GemvInt8Scalar(int32_t* acc, const int8_t* w, int stride, const uint8_t* q,
                    int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    const int8_t* wr = w + static_cast<size_t>(r) * stride;
    int32_t s = 0;
    for (int i = 0; i < cols; ++i) {
      s += static_cast<int32_t>(wr[i]) * static_cast<int32_t>(q[i]);
    }
    acc[r] = s;
  }
}

const F32Kernels kScalar = {
    "scalar",       DotScalar,   GemvBiasScalar, MulScalar,
    MulAccumScalar, TanhVScalar, SigmoidVScalar, GemvInt8Scalar,
};

}  // namespace

const F32Kernels& ScalarF32Kernels() { return kScalar; }

const F32Kernels& ActiveF32Kernels() {
  const F32Kernels* avx2 = Avx2F32Kernels();
  return avx2 != nullptr ? *avx2 : kScalar;
}

void OneHotGatherAddF32(float* y, const float* wx, const float* bias, int x,
                        int rows, int vocab) {
  for (int r = 0; r < rows; ++r) {
    y[r] += bias[r] + wx[static_cast<size_t>(r) * vocab + x];
  }
}

float TanhApprox(float x) { return TanhCore(x); }

float SigmoidApprox(float x) { return SigmoidCore(x); }

int8_t QuantizeWeight(double w, float scale) {
  // Clamp in the floating domain first: lrint on values outside long's range
  // is undefined, so saturate before rounding.
  double r = w / static_cast<double>(scale);
  if (r > 127.0) {
    r = 127.0;
  }
  if (r < -127.0) {
    r = -127.0;
  }
  return static_cast<int8_t>(std::lrint(r));
}

float Int8RowScale(const double* w, int n) {
  double maxabs = 0;
  for (int i = 0; i < n; ++i) {
    maxabs = std::max(maxabs, std::abs(w[i]));
  }
  if (maxabs == 0) {
    return 1.0f;
  }
  return static_cast<float>(maxabs / 127.0);
}

ActQuant QuantizeActivations(const float* x, int n, uint8_t* q) {
  float lo = 0.0f;
  float hi = 0.0f;
  for (int i = 0; i < n; ++i) {
    lo = std::min(lo, x[i]);
    hi = std::max(hi, x[i]);
  }
  ActQuant aq;
  float range = hi - lo;
  aq.scale = range > 0 ? range / 255.0f : 1.0f;
  long zp = std::lrintf(-lo / aq.scale);
  aq.zero_point = static_cast<int32_t>(std::clamp(zp, 0L, 255L));
  for (int i = 0; i < n; ++i) {
    long v = std::lrintf(x[i] / aq.scale) + aq.zero_point;
    q[i] = static_cast<uint8_t>(std::clamp(v, 0L, 255L));
  }
  return aq;
}

}  // namespace kernels
}  // namespace clara
