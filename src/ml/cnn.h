// 1-D convolutional network over one-hot token sequences — the "CNN"
// baseline of Figure 8 (sentence-classification-style architecture: conv,
// relu, global max pool, FC).
#ifndef SRC_ML_CNN_H_
#define SRC_ML_CNN_H_

#include <vector>

#include "src/ml/common.h"
#include "src/util/rng.h"

namespace clara {

struct CnnOptions {
  int filters = 24;
  int kernel = 3;
  int epochs = 40;
  int max_seq_len = 96;
  double learning_rate = 0.005;
  uint64_t seed = 41;
};

class CnnRegressor : public SeqRegressor {
 public:
  explicit CnnRegressor(CnnOptions opts = CnnOptions{}) : opts_(opts) {}

  void Fit(const SeqDataset& data) override;
  double Predict(const std::vector<int>& tokens) const override;
  std::string Describe() const override { return "cnn-1d"; }

 private:
  struct Pooled {
    std::vector<double> value;   // per filter, post-relu max
    std::vector<int> argmax;     // winning position per filter (-1 if none)
  };

  Pooled ForwardPool(const std::vector<int>& tokens) const;

  CnnOptions opts_;
  int vocab_ = 0;
  double y_scale_ = 1;
  // conv weights: [filter][tap][vocab] flattened; one-hot input makes each
  // tap a simple lookup.
  std::vector<double> w_;
  std::vector<double> b_;      // per filter
  std::vector<double> w_out_;  // per filter
  double b_out_ = 0;
};

}  // namespace clara

#endif  // SRC_ML_CNN_H_
