#include "src/ml/knn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/util/binio.h"

namespace clara {
namespace {
constexpr uint16_t kKnnClsTag = 0x4B43;  // "KC"
constexpr uint16_t kKnnRegTag = 0x4B52;  // "KR"
}  // namespace

void KnnClassifier::SaveTo(BinWriter& w) const {
  w.U16(kKnnClsTag);
  w.I32(opts_.k);
  w.I32(num_classes_);
  std_.SaveTo(w);
  w.MatF64(x_);
  w.VecI32(y_);
}

bool KnnClassifier::LoadFrom(BinReader& r) {
  if (r.U16() != kKnnClsTag) {
    r.Fail("knn classifier: bad section tag");
    return false;
  }
  int k = r.I32();
  int num_classes = r.I32();
  if (r.ok() && (k <= 0 || num_classes <= 0)) {
    r.Fail("knn classifier: non-positive k or class count");
    return false;
  }
  Standardizer std;
  if (!std.LoadFrom(r)) {
    return false;
  }
  std::vector<FeatureVec> x;
  std::vector<int> y;
  r.MatF64(&x);
  r.VecI32(&y);
  if (!r.ok()) {
    return false;
  }
  if (x.size() != y.size()) {
    r.Fail("knn classifier: corpus row/label count mismatch");
    return false;
  }
  // Predict() indexes votes[y_[i]] without bounds checks.
  for (int label : y) {
    if (label < 0 || label >= num_classes) {
      r.Fail("knn classifier: label out of class range");
      return false;
    }
  }
  opts_.k = k;
  num_classes_ = num_classes;
  std_ = std;
  x_ = std::move(x);
  y_ = std::move(y);
  return true;
}

void KnnRegressor::SaveTo(BinWriter& w) const {
  w.U16(kKnnRegTag);
  w.I32(opts_.k);
  std_.SaveTo(w);
  w.MatF64(x_);
  w.VecF64(y_);
}

bool KnnRegressor::LoadFrom(BinReader& r) {
  if (r.U16() != kKnnRegTag) {
    r.Fail("knn regressor: bad section tag");
    return false;
  }
  int k = r.I32();
  if (r.ok() && k <= 0) {
    r.Fail("knn regressor: non-positive k");
    return false;
  }
  Standardizer std;
  if (!std.LoadFrom(r)) {
    return false;
  }
  std::vector<FeatureVec> x;
  std::vector<double> y;
  r.MatF64(&x);
  r.VecF64(&y);
  if (!r.ok()) {
    return false;
  }
  if (x.size() != y.size()) {
    r.Fail("knn regressor: corpus row/target count mismatch");
    return false;
  }
  opts_.k = k;
  std_ = std;
  x_ = std::move(x);
  y_ = std::move(y);
  return true;
}

std::vector<size_t> NearestNeighbors(const std::vector<FeatureVec>& data, const FeatureVec& q,
                                     int k) {
  std::vector<std::pair<double, size_t>> dist(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    double d = 0;
    for (size_t j = 0; j < q.size() && j < data[i].size(); ++j) {
      double delta = data[i][j] - q[j];
      d += delta * delta;
    }
    dist[i] = {d, i};
  }
  size_t kk = std::min<size_t>(k, data.size());
  std::partial_sort(dist.begin(), dist.begin() + kk, dist.end());
  std::vector<size_t> out(kk);
  for (size_t i = 0; i < kk; ++i) {
    out[i] = dist[i].second;
  }
  return out;
}

void KnnClassifier::Fit(const TabularDataset& data, int num_classes) {
  num_classes_ = num_classes;
  std_.Fit(data.x);
  x_ = std_.ApplyAll(data.x);
  y_.resize(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    y_[i] = static_cast<int>(data.y[i]);
  }
}

int KnnClassifier::Predict(const FeatureVec& x) const {
  if (x_.empty()) {
    return 0;
  }
  std::vector<int> votes(num_classes_, 0);
  for (size_t i : NearestNeighbors(x_, std_.Apply(x), opts_.k)) {
    ++votes[y_[i]];
  }
  return static_cast<int>(
      std::distance(votes.begin(), std::max_element(votes.begin(), votes.end())));
}

void KnnRegressor::Fit(const TabularDataset& data) {
  std_.Fit(data.x);
  x_ = std_.ApplyAll(data.x);
  y_ = data.y;
}

double KnnRegressor::Predict(const FeatureVec& x) const {
  if (x_.empty()) {
    return 0;
  }
  auto nn = NearestNeighbors(x_, std_.Apply(x), opts_.k);
  double sum = 0;
  for (size_t i : nn) {
    sum += y_[i];
  }
  return sum / static_cast<double>(nn.size());
}

}  // namespace clara
