#include "src/ml/knn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace clara {

std::vector<size_t> NearestNeighbors(const std::vector<FeatureVec>& data, const FeatureVec& q,
                                     int k) {
  std::vector<std::pair<double, size_t>> dist(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    double d = 0;
    for (size_t j = 0; j < q.size() && j < data[i].size(); ++j) {
      double delta = data[i][j] - q[j];
      d += delta * delta;
    }
    dist[i] = {d, i};
  }
  size_t kk = std::min<size_t>(k, data.size());
  std::partial_sort(dist.begin(), dist.begin() + kk, dist.end());
  std::vector<size_t> out(kk);
  for (size_t i = 0; i < kk; ++i) {
    out[i] = dist[i].second;
  }
  return out;
}

void KnnClassifier::Fit(const TabularDataset& data, int num_classes) {
  num_classes_ = num_classes;
  std_.Fit(data.x);
  x_ = std_.ApplyAll(data.x);
  y_.resize(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    y_[i] = static_cast<int>(data.y[i]);
  }
}

int KnnClassifier::Predict(const FeatureVec& x) const {
  if (x_.empty()) {
    return 0;
  }
  std::vector<int> votes(num_classes_, 0);
  for (size_t i : NearestNeighbors(x_, std_.Apply(x), opts_.k)) {
    ++votes[y_[i]];
  }
  return static_cast<int>(
      std::distance(votes.begin(), std::max_element(votes.begin(), votes.end())));
}

void KnnRegressor::Fit(const TabularDataset& data) {
  std_.Fit(data.x);
  x_ = std_.ApplyAll(data.x);
  y_ = data.y;
}

double KnnRegressor::Predict(const FeatureVec& x) const {
  if (x_.empty()) {
    return 0;
  }
  auto nn = NearestNeighbors(x_, std_.Apply(x), opts_.k);
  double sum = 0;
  for (size_t i : nn) {
    sum += y_[i];
  }
  return sum / static_cast<double>(nn.size());
}

}  // namespace clara
