// AutoML-style model search (the TPOT stand-in of §5): cross-validated grid
// search over model families and hyperparameters, returning the best
// pipeline refit on the full training set. Like TPOT, it supports regression
// and classification but not ranking (§5.7).
#ifndef SRC_ML_AUTOML_H_
#define SRC_ML_AUTOML_H_

#include <memory>
#include <string>

#include "src/ml/common.h"

namespace clara {

struct AutoMlReport {
  std::string chosen;   // description of the winning pipeline
  double cv_error = 0;  // CV MAE (regression) / error rate (classification)
};

// Searches {kNN, decision tree, GBDT, random forest} x hyperparameters with
// k-fold CV. The returned regressor is refit on all data.
std::unique_ptr<Regressor> AutoMlRegression(const TabularDataset& data,
                                            AutoMlReport* report = nullptr, int folds = 4);

// Searches {kNN, decision tree, GBDT one-vs-rest, MLP} for classification.
std::unique_ptr<Classifier> AutoMlClassification(const TabularDataset& data, int num_classes,
                                                 AutoMlReport* report = nullptr,
                                                 int folds = 4);

}  // namespace clara

#endif  // SRC_ML_AUTOML_H_
