// AVX2/FMA implementation of the f32/int8 kernel table.
//
// Compiled in the default (baseline-ISA) build: every AVX2 function carries
// __attribute__((target("avx2,fma"))) and is only ever reached through
// Avx2F32Kernels(), which returns nullptr unless CPUID reports both
// features. Bit-exactness with the scalar twin in kernels_f32.cc is part of
// the kernel contract — see kernels_f32.h for the shared operation schedule
// and tests/kernels_test.cc for the exhaustive tail-length checks.
#include "src/ml/kernels_f32.h"
#include "src/ml/simd.h"

#if defined(CLARA_SIMD_ENABLED) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))

#include <immintrin.h>

#include <cmath>

namespace clara {
namespace kernels {
namespace {

#define CLARA_AVX2 __attribute__((target("avx2,fma")))

CLARA_AVX2 float DotAvx2(const float* a, const float* b, int n) {
  __m256 acc = _mm256_setzero_ps();
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc);
  }
  alignas(32) float l[8];
  _mm256_store_ps(l, acc);
  float s = ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
  for (; i < n; ++i) {
    s = std::fmaf(a[i], b[i], s);
  }
  return s;
}

CLARA_AVX2 void GemvBiasAvx2(float* y, const float* m, int stride,
                             const float* x, const float* bias, int rows,
                             int cols) {
  for (int r = 0; r < rows; ++r) {
    float b = bias != nullptr ? bias[r] : 0.0f;
    y[r] = b + DotAvx2(m + static_cast<size_t>(r) * stride, x, cols);
  }
}

CLARA_AVX2 void MulAvx2(float* z, const float* x, const float* y, int n) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(z + i,
                     _mm256_mul_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) {
    z[i] = x[i] * y[i];
  }
}

CLARA_AVX2 void MulAccumAvx2(float* z, const float* x, const float* y, int n) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(z + i, _mm256_fmadd_ps(_mm256_loadu_ps(x + i),
                                            _mm256_loadu_ps(y + i),
                                            _mm256_loadu_ps(z + i)));
  }
  for (; i < n; ++i) {
    z[i] = std::fmaf(x[i], y[i], z[i]);
  }
}

// The Padé(7,6) tanh from kernels_f32.h, one fmadd chain per 8 lanes. The
// constants and operation order must stay in lockstep with TanhCore in
// kernels_f32.cc.
CLARA_AVX2 inline __m256 TanhCoreAvx2(__m256 v) {
  const __m256 clamp = _mm256_set1_ps(4.97f);
  v = _mm256_min_ps(_mm256_max_ps(v, _mm256_sub_ps(_mm256_setzero_ps(), clamp)),
                    clamp);
  __m256 x2 = _mm256_mul_ps(v, v);
  __m256 n1 = _mm256_add_ps(x2, _mm256_set1_ps(378.0f));
  __m256 n2 = _mm256_fmadd_ps(x2, n1, _mm256_set1_ps(17325.0f));
  __m256 n3 = _mm256_fmadd_ps(x2, n2, _mm256_set1_ps(135135.0f));
  __m256 d1 = _mm256_fmadd_ps(x2, _mm256_set1_ps(28.0f), _mm256_set1_ps(3150.0f));
  __m256 d2 = _mm256_fmadd_ps(x2, d1, _mm256_set1_ps(62370.0f));
  __m256 d3 = _mm256_fmadd_ps(x2, d2, _mm256_set1_ps(135135.0f));
  return _mm256_div_ps(_mm256_mul_ps(v, n3), d3);
}

CLARA_AVX2 void TanhVAvx2(float* y, const float* x, int n) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, TanhCoreAvx2(_mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) {
    y[i] = TanhApprox(x[i]);
  }
}

CLARA_AVX2 void SigmoidVAvx2(float* y, const float* x, int n) {
  const __m256 half = _mm256_set1_ps(0.5f);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 t = TanhCoreAvx2(_mm256_mul_ps(half, _mm256_loadu_ps(x + i)));
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(half, t, half));
  }
  for (; i < n; ++i) {
    y[i] = SigmoidApprox(x[i]);
  }
}

CLARA_AVX2 void GemvInt8Avx2(int32_t* acc, const int8_t* w, int stride,
                             const uint8_t* q, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    const int8_t* wr = w + static_cast<size_t>(r) * stride;
    __m256i vacc = _mm256_setzero_si256();
    int i = 0;
    for (; i + 16 <= cols; i += 16) {
      // Widen both operands to i16: products max out at 127*255 and
      // madd_epi16 accumulates adjacent pairs into i32, so nothing saturates.
      __m256i wv = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(wr + i)));
      __m256i qv = _mm256_cvtepu8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + i)));
      vacc = _mm256_add_epi32(vacc, _mm256_madd_epi16(wv, qv));
    }
    alignas(32) int32_t l[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(l), vacc);
    int32_t s = ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
    for (; i < cols; ++i) {
      s += static_cast<int32_t>(wr[i]) * static_cast<int32_t>(q[i]);
    }
    acc[r] = s;
  }
}

#undef CLARA_AVX2

const F32Kernels kAvx2 = {
    "avx2",       DotAvx2,   GemvBiasAvx2, MulAvx2,
    MulAccumAvx2, TanhVAvx2, SigmoidVAvx2, GemvInt8Avx2,
};

}  // namespace

const F32Kernels* Avx2F32Kernels() {
  return simd::HasAvx2() && simd::HasFma() ? &kAvx2 : nullptr;
}

}  // namespace kernels
}  // namespace clara

#else  // !CLARA_SIMD_ENABLED || !x86-64

namespace clara {
namespace kernels {

const F32Kernels* Avx2F32Kernels() { return nullptr; }

}  // namespace kernels
}  // namespace clara

#endif
