#include "src/ml/lstm.h"

#include <algorithm>
#include <cmath>

#include "src/ml/metrics.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"

namespace clara {
namespace {

double Sigmoid(double v) { return 1.0 / (1.0 + std::exp(-v)); }

// Adam state for one parameter vector.
struct AdamVec {
  std::vector<double> m;
  std::vector<double> v;

  void Init(size_t n) {
    m.assign(n, 0.0);
    v.assign(n, 0.0);
  }

  void Step(std::vector<double>& w, const std::vector<double>& g, double alpha, double t) {
    constexpr double kB1 = 0.9;
    constexpr double kB2 = 0.999;
    constexpr double kEps = 1e-8;
    double c1 = 1.0 - std::pow(kB1, t);
    double c2 = 1.0 - std::pow(kB2, t);
    for (size_t i = 0; i < w.size(); ++i) {
      m[i] = kB1 * m[i] + (1 - kB1) * g[i];
      v[i] = kB2 * v[i] + (1 - kB2) * g[i] * g[i];
      w[i] -= alpha * (m[i] / c1) / (std::sqrt(v[i] / c2) + kEps);
    }
  }
};

}  // namespace

struct LstmRegressor::Trace {
  std::vector<int> x;                       // token per step
  std::vector<std::vector<double>> gates;   // per step: i,f,g,o (4H)
  std::vector<std::vector<double>> c;       // per step cell state (H)
  std::vector<std::vector<double>> h;       // per step hidden (H)
  std::vector<double> fc_hidden;            // post-relu FC activations (F)
  std::vector<double> fc_pre;               // pre-relu FC activations (F)
  double y = 0;
};

double LstmRegressor::Forward(const std::vector<int>& tokens, Trace* trace) const {
  int h_dim = opts_.hidden;
  int f_dim = opts_.fc_hidden;
  std::vector<double> h(h_dim, 0.0);
  std::vector<double> c(h_dim, 0.0);
  size_t len = std::min<size_t>(tokens.size(), opts_.max_seq_len);
  for (size_t t = 0; t < len; ++t) {
    int x = tokens[t];
    if (x < 0 || x >= vocab_) {
      x = 0;
    }
    std::vector<double> pre(4 * h_dim);
    for (int k = 0; k < 4 * h_dim; ++k) {
      double s = p_.wx[static_cast<size_t>(k) * vocab_ + x] + p_.b[k];
      const double* wh_row = &p_.wh[static_cast<size_t>(k) * h_dim];
      for (int j = 0; j < h_dim; ++j) {
        s += wh_row[j] * h[j];
      }
      pre[k] = s;
    }
    std::vector<double> gates(4 * h_dim);
    for (int j = 0; j < h_dim; ++j) {
      gates[j] = Sigmoid(pre[j]);                       // input gate
      gates[h_dim + j] = Sigmoid(pre[h_dim + j]);       // forget gate
      gates[2 * h_dim + j] = std::tanh(pre[2 * h_dim + j]);  // candidate
      gates[3 * h_dim + j] = Sigmoid(pre[3 * h_dim + j]);    // output gate
    }
    for (int j = 0; j < h_dim; ++j) {
      c[j] = gates[h_dim + j] * c[j] + gates[j] * gates[2 * h_dim + j];
      h[j] = gates[3 * h_dim + j] * std::tanh(c[j]);
    }
    if (trace != nullptr) {
      trace->x.push_back(x);
      trace->gates.push_back(gates);
      trace->c.push_back(c);
      trace->h.push_back(h);
    }
  }
  // FC head: relu(W1 h + b1) -> linear.
  std::vector<double> fc_pre(f_dim);
  std::vector<double> fc(f_dim);
  for (int f = 0; f < f_dim; ++f) {
    double s = p_.b1[f];
    for (int j = 0; j < h_dim; ++j) {
      s += p_.w1[static_cast<size_t>(f) * h_dim + j] * h[j];
    }
    fc_pre[f] = s;
    fc[f] = s > 0 ? s : 0;
  }
  double y = p_.b2;
  for (int f = 0; f < f_dim; ++f) {
    y += p_.w2[f] * fc[f];
  }
  if (trace != nullptr) {
    trace->fc_pre = fc_pre;
    trace->fc_hidden = fc;
    trace->y = y;
  }
  return y;
}

void LstmRegressor::Fit(const SeqDataset& data) {
  vocab_ = std::max(1, data.vocab);
  int h_dim = opts_.hidden;
  int f_dim = opts_.fc_hidden;
  Rng rng(opts_.seed);

  p_.wx.resize(static_cast<size_t>(4 * h_dim) * vocab_);
  p_.wh.resize(static_cast<size_t>(4 * h_dim) * h_dim);
  p_.b.assign(4 * h_dim, 0.0);
  p_.w1.resize(static_cast<size_t>(f_dim) * h_dim);
  p_.b1.assign(f_dim, 0.0);
  p_.w2.resize(f_dim);
  for (auto& w : p_.wx) {
    w = rng.NextGaussian(0.15);
  }
  for (auto& w : p_.wh) {
    w = rng.NextGaussian(0.15);
  }
  for (auto& w : p_.w1) {
    w = rng.NextGaussian(0.2);
  }
  for (auto& w : p_.w2) {
    w = rng.NextGaussian(0.2);
  }
  // Forget-gate bias init to 1: standard for gradient flow.
  for (int j = 0; j < h_dim; ++j) {
    p_.b[h_dim + j] = 1.0;
  }
  p_.b2 = 0;

  y_scale_ = 1e-9;
  for (const auto& ex : data.examples) {
    y_scale_ = std::max(y_scale_, std::abs(ex.target));
  }

  AdamVec a_wx;
  AdamVec a_wh;
  AdamVec a_b;
  AdamVec a_w1;
  AdamVec a_b1;
  AdamVec a_w2;
  AdamVec a_b2;
  a_wx.Init(p_.wx.size());
  a_wh.Init(p_.wh.size());
  a_b.Init(p_.b.size());
  a_w1.Init(p_.w1.size());
  a_b1.Init(p_.b1.size());
  a_w2.Init(p_.w2.size());
  a_b2.Init(1);

  std::vector<double> g_wx(p_.wx.size());
  std::vector<double> g_wh(p_.wh.size());
  std::vector<double> g_b(p_.b.size());
  std::vector<double> g_w1(p_.w1.size());
  std::vector<double> g_b1(p_.b1.size());
  std::vector<double> g_w2(p_.w2.size());
  std::vector<double> g_b2(1);

  double adam_t = 0;
  for (int epoch = 0; epoch < opts_.epochs; ++epoch) {
    double epoch_sse = 0;
    for (size_t si : rng.Permutation(data.examples.size())) {
      const SeqExample& ex = data.examples[si];
      Trace tr;
      double y = Forward(ex.tokens, &tr);
      double target = ex.target / y_scale_;
      double dy = y - target;  // dLoss/dy for 0.5*(y-t)^2
      epoch_sse += 0.5 * dy * dy;

      std::fill(g_wx.begin(), g_wx.end(), 0.0);
      std::fill(g_wh.begin(), g_wh.end(), 0.0);
      std::fill(g_b.begin(), g_b.end(), 0.0);
      std::fill(g_w1.begin(), g_w1.end(), 0.0);
      std::fill(g_b1.begin(), g_b1.end(), 0.0);
      std::fill(g_w2.begin(), g_w2.end(), 0.0);
      g_b2[0] = dy;

      size_t len = tr.x.size();
      std::vector<double> dh(h_dim, 0.0);
      std::vector<double> dc(h_dim, 0.0);
      std::vector<double> h_last =
          len > 0 ? tr.h.back() : std::vector<double>(h_dim, 0.0);
      // FC head gradients.
      for (int f = 0; f < f_dim; ++f) {
        g_w2[f] = dy * tr.fc_hidden[f];
        double dfc = dy * p_.w2[f];
        if (tr.fc_pre[f] <= 0) {
          dfc = 0;
        }
        g_b1[f] = dfc;
        for (int j = 0; j < h_dim; ++j) {
          g_w1[static_cast<size_t>(f) * h_dim + j] = dfc * h_last[j];
          dh[j] += dfc * p_.w1[static_cast<size_t>(f) * h_dim + j];
        }
      }
      // BPTT.
      for (int t = static_cast<int>(len) - 1; t >= 0; --t) {
        const auto& gates = tr.gates[t];
        const auto& c_t = tr.c[t];
        const std::vector<double>* c_prev = t > 0 ? &tr.c[t - 1] : nullptr;
        const std::vector<double>* h_prev = t > 0 ? &tr.h[t - 1] : nullptr;
        std::vector<double> dpre(4 * h_dim);
        for (int j = 0; j < h_dim; ++j) {
          double i_g = gates[j];
          double f_g = gates[h_dim + j];
          double g_g = gates[2 * h_dim + j];
          double o_g = gates[3 * h_dim + j];
          double tc = std::tanh(c_t[j]);
          double dc_total = dc[j] + dh[j] * o_g * (1 - tc * tc);
          double do_g = dh[j] * tc;
          double di = dc_total * g_g;
          double df = dc_total * (c_prev != nullptr ? (*c_prev)[j] : 0.0);
          double dg = dc_total * i_g;
          dpre[j] = di * i_g * (1 - i_g);
          dpre[h_dim + j] = df * f_g * (1 - f_g);
          dpre[2 * h_dim + j] = dg * (1 - g_g * g_g);
          dpre[3 * h_dim + j] = do_g * o_g * (1 - o_g);
          dc[j] = dc_total * f_g;  // propagate to t-1
        }
        std::fill(dh.begin(), dh.end(), 0.0);
        int x = tr.x[t];
        for (int k = 0; k < 4 * h_dim; ++k) {
          double d = dpre[k];
          g_b[k] += d;
          g_wx[static_cast<size_t>(k) * vocab_ + x] += d;
          double* g_wh_row = &g_wh[static_cast<size_t>(k) * h_dim];
          const double* wh_row = &p_.wh[static_cast<size_t>(k) * h_dim];
          if (h_prev != nullptr) {
            for (int j = 0; j < h_dim; ++j) {
              g_wh_row[j] += d * (*h_prev)[j];
              dh[j] += wh_row[j] * d;
            }
          } else {
            for (int j = 0; j < h_dim; ++j) {
              dh[j] += wh_row[j] * d;
            }
          }
        }
      }

      ++adam_t;
      a_wx.Step(p_.wx, g_wx, opts_.learning_rate, adam_t);
      a_wh.Step(p_.wh, g_wh, opts_.learning_rate, adam_t);
      a_b.Step(p_.b, g_b, opts_.learning_rate, adam_t);
      a_w1.Step(p_.w1, g_w1, opts_.learning_rate, adam_t);
      a_b1.Step(p_.b1, g_b1, opts_.learning_rate, adam_t);
      a_w2.Step(p_.w2, g_w2, opts_.learning_rate, adam_t);
      std::vector<double> b2v = {p_.b2};
      a_b2.Step(b2v, g_b2, opts_.learning_rate, adam_t);
      p_.b2 = b2v[0];
    }
    if (obs::Enabled() && !data.examples.empty()) {
      double mean_loss = epoch_sse / static_cast<double>(data.examples.size());
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      reg.GetGauge("ml.lstm.epoch_loss").Set(mean_loss);
      reg.GetGauge("ml.lstm.epochs").Set(epoch + 1);
      reg.GetHistogram("ml.lstm.epoch_loss_hist",
                       obs::Histogram::ExponentialBuckets(1e-6, 2, 40))
          .Observe(mean_loss);
      obs::TraceCounter("ml.lstm.epoch_loss", mean_loss);
    }
  }

  std::vector<double> truth;
  std::vector<double> pred;
  for (const auto& ex : data.examples) {
    truth.push_back(ex.target);
    pred.push_back(Predict(ex.tokens));
  }
  train_wmape_ = Wmape(truth, pred);
}

double LstmRegressor::Predict(const std::vector<int>& tokens) const {
  if (vocab_ == 0) {
    return 0;
  }
  double y = Forward(tokens, nullptr) * y_scale_;
  return std::max(0.0, y);
}

}  // namespace clara
