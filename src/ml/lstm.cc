#include "src/ml/lstm.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/ml/kernels.h"
#include "src/ml/metrics.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"
#include "src/util/binio.h"
#include "src/util/parallel.h"

namespace clara {
namespace {

constexpr uint16_t kLstmTag = 0x4C53;  // "LS"

double Sigmoid(double v) { return 1.0 / (1.0 + std::exp(-v)); }

// Adam state for one parameter vector.
struct AdamVec {
  std::vector<double> m;
  std::vector<double> v;

  void Init(size_t n) {
    m.assign(n, 0.0);
    v.assign(n, 0.0);
  }

  void Step(std::vector<double>& w, const std::vector<double>& g, double alpha, double t) {
    constexpr double kB1 = 0.9;
    constexpr double kB2 = 0.999;
    constexpr double kEps = 1e-8;
    double c1 = 1.0 - std::pow(kB1, t);
    double c2 = 1.0 - std::pow(kB2, t);
    for (size_t i = 0; i < w.size(); ++i) {
      m[i] = kB1 * m[i] + (1 - kB1) * g[i];
      v[i] = kB2 * v[i] + (1 - kB2) * g[i] * g[i];
      w[i] -= alpha * (m[i] / c1) / (std::sqrt(v[i] / c2) + kEps);
    }
  }
};

}  // namespace

// Flat, preallocated forward activations: one contiguous buffer per kind,
// indexed by [t * dim + j]. Prepare() is called once per workspace and the
// buffers are reused for every sequence, so the BPTT hot loop never touches
// the allocator.
struct LstmRegressor::Trace {
  int len = 0;
  std::vector<int> x;            // len
  std::vector<double> gates;     // len x 4H (i, f, g, o)
  std::vector<double> c;         // len x H
  std::vector<double> h;         // len x H
  std::vector<double> fc_pre;    // F
  std::vector<double> fc_hidden; // F
  std::vector<double> h_cur;     // H scratch
  std::vector<double> c_cur;     // H scratch
  std::vector<double> pre;       // 4H scratch
  double y = 0;

  void Prepare(int max_len, int h_dim, int f_dim) {
    x.resize(max_len);
    gates.resize(static_cast<size_t>(max_len) * 4 * h_dim);
    c.resize(static_cast<size_t>(max_len) * h_dim);
    h.resize(static_cast<size_t>(max_len) * h_dim);
    fc_pre.resize(f_dim);
    fc_hidden.resize(f_dim);
    h_cur.resize(h_dim);
    c_cur.resize(h_dim);
    pre.resize(4 * h_dim);
  }
};

// One parameter-shaped gradient accumulator.
struct LstmRegressor::Grads {
  std::vector<double> wx, wh, b, w1, b1, w2;
  double b2 = 0;

  void Init(const Params& p) {
    wx.assign(p.wx.size(), 0.0);
    wh.assign(p.wh.size(), 0.0);
    b.assign(p.b.size(), 0.0);
    w1.assign(p.w1.size(), 0.0);
    b1.assign(p.b1.size(), 0.0);
    w2.assign(p.w2.size(), 0.0);
    b2 = 0;
  }

  void Zero() {
    std::fill(wx.begin(), wx.end(), 0.0);
    std::fill(wh.begin(), wh.end(), 0.0);
    std::fill(b.begin(), b.end(), 0.0);
    std::fill(w1.begin(), w1.end(), 0.0);
    std::fill(b1.begin(), b1.end(), 0.0);
    std::fill(w2.begin(), w2.end(), 0.0);
    b2 = 0;
  }

  // acc += other, in fixed order; used for the ordered batch reduction.
  void Accum(const Grads& o) {
    kernels::Axpy(wx.data(), 1.0, o.wx.data(), static_cast<int>(wx.size()));
    kernels::Axpy(wh.data(), 1.0, o.wh.data(), static_cast<int>(wh.size()));
    kernels::Axpy(b.data(), 1.0, o.b.data(), static_cast<int>(b.size()));
    kernels::Axpy(w1.data(), 1.0, o.w1.data(), static_cast<int>(w1.size()));
    kernels::Axpy(b1.data(), 1.0, o.b1.data(), static_cast<int>(b1.size()));
    kernels::Axpy(w2.data(), 1.0, o.w2.data(), static_cast<int>(w2.size()));
    b2 += o.b2;
  }

  void Scale(double s) {
    for (auto* v : {&wx, &wh, &b, &w1, &b1, &w2}) {
      for (double& g : *v) {
        g *= s;
      }
    }
    b2 *= s;
  }
};

// Per-batch-slot scratch: trace, gradient buffer, and BPTT temporaries. One
// workspace per in-flight example, so the data-parallel gradient pass shares
// nothing but the (read-only) parameters.
struct LstmRegressor::Workspace {
  Trace tr;
  Grads grads;
  std::vector<double> dh, dc, dpre;
  double loss = 0;

  void Prepare(const Params& p, int max_len, int h_dim, int f_dim) {
    tr.Prepare(max_len, h_dim, f_dim);
    grads.Init(p);
    dh.resize(h_dim);
    dc.resize(h_dim);
    dpre.resize(4 * h_dim);
  }
};

double LstmRegressor::Forward(const std::vector<int>& tokens, Trace* trace) const {
  const int h_dim = opts_.hidden;
  const int f_dim = opts_.fc_hidden;
  // Inference (trace == nullptr) uses small local buffers so Predict stays
  // const and safe to call concurrently from parallel loops.
  std::vector<double> local_h, local_c, local_pre, local_fc;
  double* h;
  double* c;
  double* pre;
  if (trace != nullptr) {
    h = trace->h_cur.data();
    c = trace->c_cur.data();
    pre = trace->pre.data();
  } else {
    local_h.resize(h_dim);
    local_c.resize(h_dim);
    local_pre.resize(4 * h_dim);
    local_fc.resize(2 * f_dim);
    h = local_h.data();
    c = local_c.data();
    pre = local_pre.data();
  }
  std::fill(h, h + h_dim, 0.0);
  std::fill(c, c + h_dim, 0.0);

  size_t len = std::min<size_t>(tokens.size(), opts_.max_seq_len);
  for (size_t t = 0; t < len; ++t) {
    int x = tokens[t];
    if (x < 0 || x >= vocab_) {
      x = 0;
    }
    // pre = Wh h + b + Wx[:, x]  (one-hot input == column gather).
    kernels::GemvBias(pre, p_.wh.data(), h, nullptr, 4 * h_dim, h_dim);
    kernels::OneHotGatherAdd(pre, p_.wx.data(), p_.b.data(), x, 4 * h_dim, vocab_);
    double* gates = trace != nullptr ? &trace->gates[t * 4 * h_dim] : pre;
    for (int j = 0; j < h_dim; ++j) {
      double i_g = Sigmoid(pre[j]);                         // input gate
      double f_g = Sigmoid(pre[h_dim + j]);                 // forget gate
      double g_g = std::tanh(pre[2 * h_dim + j]);           // candidate
      double o_g = Sigmoid(pre[3 * h_dim + j]);             // output gate
      gates[j] = i_g;
      gates[h_dim + j] = f_g;
      gates[2 * h_dim + j] = g_g;
      gates[3 * h_dim + j] = o_g;
      c[j] = f_g * c[j] + i_g * g_g;
      h[j] = o_g * std::tanh(c[j]);
    }
    if (trace != nullptr) {
      trace->x[t] = x;
      std::memcpy(&trace->c[t * h_dim], c, sizeof(double) * h_dim);
      std::memcpy(&trace->h[t * h_dim], h, sizeof(double) * h_dim);
    }
  }

  // FC head: relu(W1 h + b1) -> linear.
  double* fc_pre = trace != nullptr ? trace->fc_pre.data() : local_fc.data();
  double* fc = trace != nullptr ? trace->fc_hidden.data() : local_fc.data() + f_dim;
  kernels::GemvBias(fc_pre, p_.w1.data(), h, p_.b1.data(), f_dim, h_dim);
  for (int f = 0; f < f_dim; ++f) {
    fc[f] = fc_pre[f] > 0 ? fc_pre[f] : 0;
  }
  double y = p_.b2 + kernels::Dot(p_.w2.data(), fc, f_dim);
  if (trace != nullptr) {
    trace->len = static_cast<int>(len);
    trace->y = y;
  }
  return y;
}

double LstmRegressor::ExampleGradient(const SeqExample& ex, Workspace& ws) const {
  const int h_dim = opts_.hidden;
  const int f_dim = opts_.fc_hidden;
  Trace& tr = ws.tr;
  Grads& g = ws.grads;
  g.Zero();

  double y = Forward(ex.tokens, &tr);
  double target = ex.target / y_scale_;
  double dy = y - target;  // dLoss/dy for 0.5*(y-t)^2
  g.b2 = dy;

  const int len = tr.len;
  double* dh = ws.dh.data();
  double* dc = ws.dc.data();
  double* dpre = ws.dpre.data();
  std::fill(dh, dh + h_dim, 0.0);
  std::fill(dc, dc + h_dim, 0.0);

  // tr.h_cur holds the final hidden state (all zeros for empty sequences).
  const double* h_last = tr.h_cur.data();
  // FC head gradients.
  for (int f = 0; f < f_dim; ++f) {
    g.w2[f] = dy * tr.fc_hidden[f];
    double dfc = dy * p_.w2[f];
    if (tr.fc_pre[f] <= 0) {
      dfc = 0;
    }
    g.b1[f] = dfc;
    kernels::AxpyDual(&g.w1[static_cast<size_t>(f) * h_dim], dh,
                      &p_.w1[static_cast<size_t>(f) * h_dim], h_last, dfc, h_dim);
  }
  // BPTT over the preallocated trace.
  for (int t = len - 1; t >= 0; --t) {
    const double* gates = &tr.gates[static_cast<size_t>(t) * 4 * h_dim];
    const double* c_t = &tr.c[static_cast<size_t>(t) * h_dim];
    const double* c_prev = t > 0 ? &tr.c[static_cast<size_t>(t - 1) * h_dim] : nullptr;
    const double* h_prev = t > 0 ? &tr.h[static_cast<size_t>(t - 1) * h_dim] : nullptr;
    for (int j = 0; j < h_dim; ++j) {
      double i_g = gates[j];
      double f_g = gates[h_dim + j];
      double g_g = gates[2 * h_dim + j];
      double o_g = gates[3 * h_dim + j];
      double tc = std::tanh(c_t[j]);
      double dc_total = dc[j] + dh[j] * o_g * (1 - tc * tc);
      double do_g = dh[j] * tc;
      double di = dc_total * g_g;
      double df = dc_total * (c_prev != nullptr ? c_prev[j] : 0.0);
      double dg = dc_total * i_g;
      dpre[j] = di * i_g * (1 - i_g);
      dpre[h_dim + j] = df * f_g * (1 - f_g);
      dpre[2 * h_dim + j] = dg * (1 - g_g * g_g);
      dpre[3 * h_dim + j] = do_g * o_g * (1 - o_g);
      dc[j] = dc_total * f_g;  // propagate to t-1
    }
    std::fill(dh, dh + h_dim, 0.0);
    int x = tr.x[t];
    for (int k = 0; k < 4 * h_dim; ++k) {
      double d = dpre[k];
      g.b[k] += d;
      g.wx[static_cast<size_t>(k) * vocab_ + x] += d;
      const double* wh_row = &p_.wh[static_cast<size_t>(k) * h_dim];
      if (h_prev != nullptr) {
        kernels::AxpyDual(&g.wh[static_cast<size_t>(k) * h_dim], dh, wh_row, h_prev, d,
                          h_dim);
      } else {
        kernels::Axpy(dh, d, wh_row, h_dim);
      }
    }
  }
  return 0.5 * dy * dy;
}

void LstmRegressor::Fit(const SeqDataset& data) {
  vocab_ = std::max(1, data.vocab);
  int h_dim = opts_.hidden;
  int f_dim = opts_.fc_hidden;
  Rng rng(opts_.seed);

  p_.wx.resize(static_cast<size_t>(4 * h_dim) * vocab_);
  p_.wh.resize(static_cast<size_t>(4 * h_dim) * h_dim);
  p_.b.assign(4 * h_dim, 0.0);
  p_.w1.resize(static_cast<size_t>(f_dim) * h_dim);
  p_.b1.assign(f_dim, 0.0);
  p_.w2.resize(f_dim);
  for (auto& w : p_.wx) {
    w = rng.NextGaussian(0.15);
  }
  for (auto& w : p_.wh) {
    w = rng.NextGaussian(0.15);
  }
  for (auto& w : p_.w1) {
    w = rng.NextGaussian(0.2);
  }
  for (auto& w : p_.w2) {
    w = rng.NextGaussian(0.2);
  }
  // Forget-gate bias init to 1: standard for gradient flow.
  for (int j = 0; j < h_dim; ++j) {
    p_.b[h_dim + j] = 1.0;
  }
  p_.b2 = 0;

  y_scale_ = 1e-9;
  for (const auto& ex : data.examples) {
    y_scale_ = std::max(y_scale_, std::abs(ex.target));
  }

  AdamVec a_wx, a_wh, a_b, a_w1, a_b1, a_w2, a_b2;
  a_wx.Init(p_.wx.size());
  a_wh.Init(p_.wh.size());
  a_b.Init(p_.b.size());
  a_w1.Init(p_.w1.size());
  a_b1.Init(p_.b1.size());
  a_w2.Init(p_.w2.size());
  a_b2.Init(1);

  const size_t batch = static_cast<size_t>(std::max(1, opts_.batch_size));
  std::vector<Workspace> ws(batch);
  for (auto& w : ws) {
    w.Prepare(p_, opts_.max_seq_len, h_dim, f_dim);
  }
  // Batch-level accumulator (slot gradients are folded in example order, so
  // the update is independent of how the pool schedules the slots).
  Grads acc;
  acc.Init(p_);
  std::vector<double> g_b2(1);

  double adam_t = 0;
  for (int epoch = 0; epoch < opts_.epochs; ++epoch) {
    double epoch_sse = 0;
    std::vector<size_t> perm = rng.Permutation(data.examples.size());
    for (size_t start = 0; start < perm.size(); start += batch) {
      size_t bn = std::min(batch, perm.size() - start);
      // Data-parallel gradient pass: one workspace per example slot.
      ParallelForGrain(bn, 1, [&](size_t s) {
        ws[s].loss = ExampleGradient(data.examples[perm[start + s]], ws[s]);
      });
      Grads* grad = &ws[0].grads;
      if (bn > 1) {
        acc.Zero();
        for (size_t s = 0; s < bn; ++s) {
          acc.Accum(ws[s].grads);
        }
        acc.Scale(1.0 / static_cast<double>(bn));
        grad = &acc;
      }
      for (size_t s = 0; s < bn; ++s) {
        epoch_sse += ws[s].loss;
      }

      ++adam_t;
      a_wx.Step(p_.wx, grad->wx, opts_.learning_rate, adam_t);
      a_wh.Step(p_.wh, grad->wh, opts_.learning_rate, adam_t);
      a_b.Step(p_.b, grad->b, opts_.learning_rate, adam_t);
      a_w1.Step(p_.w1, grad->w1, opts_.learning_rate, adam_t);
      a_b1.Step(p_.b1, grad->b1, opts_.learning_rate, adam_t);
      a_w2.Step(p_.w2, grad->w2, opts_.learning_rate, adam_t);
      g_b2[0] = grad->b2;
      std::vector<double> b2v = {p_.b2};
      a_b2.Step(b2v, g_b2, opts_.learning_rate, adam_t);
      p_.b2 = b2v[0];
    }
    if (obs::Enabled() && !data.examples.empty()) {
      double mean_loss = epoch_sse / static_cast<double>(data.examples.size());
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      reg.GetGauge("ml.lstm.epoch_loss").Set(mean_loss);
      reg.GetGauge("ml.lstm.epochs").Set(epoch + 1);
      reg.GetHistogram("ml.lstm.epoch_loss_hist",
                       obs::Histogram::ExponentialBuckets(1e-6, 2, 40))
          .Observe(mean_loss);
      obs::TraceCounter("ml.lstm.epoch_loss", mean_loss);
    }
  }

  // New weights invalidate any attached quantized frame and packed engine.
  quant_ = Int8LstmParams{};
  engine_.reset();
  if (backend_ != InferBackend::kF64) {
    BuildEngine();
  }

  std::vector<double> truth(data.examples.size());
  std::vector<double> pred(data.examples.size());
  ParallelFor(data.examples.size(), [&](size_t i) {
    truth[i] = data.examples[i].target;
    pred[i] = Predict(data.examples[i].tokens);
  });
  train_wmape_ = Wmape(truth, pred);
}

void LstmRegressor::SaveTo(BinWriter& w) const {
  w.U16(kLstmTag);
  // Forward() needs the architecture dims and max_seq_len, not just weights.
  w.I32(opts_.hidden);
  w.I32(opts_.fc_hidden);
  w.I32(opts_.max_seq_len);
  w.I32(vocab_);
  w.F64(y_scale_);
  w.VecF64(p_.wx);
  w.VecF64(p_.wh);
  w.VecF64(p_.b);
  w.VecF64(p_.w1);
  w.VecF64(p_.b1);
  w.VecF64(p_.w2);
  w.F64(p_.b2);
}

bool LstmRegressor::LoadFrom(BinReader& r) {
  if (r.U16() != kLstmTag) {
    r.Fail("lstm: bad section tag");
    return false;
  }
  int hidden = r.I32();
  int fc_hidden = r.I32();
  int max_seq_len = r.I32();
  int vocab = r.I32();
  double y_scale = r.F64();
  Params p;
  r.VecF64(&p.wx);
  r.VecF64(&p.wh);
  r.VecF64(&p.b);
  r.VecF64(&p.w1);
  r.VecF64(&p.b1);
  r.VecF64(&p.w2);
  p.b2 = r.F64();
  if (!r.ok()) {
    return false;
  }
  if (hidden <= 0 || fc_hidden <= 0 || max_seq_len <= 0 || vocab < 0) {
    r.Fail("lstm: non-positive architecture dimensions");
    return false;
  }
  // Forward() indexes the weight buffers by these exact shapes. An untrained
  // model (vocab == 0, Predict short-circuits to 0) carries empty buffers.
  size_t h = static_cast<size_t>(hidden);
  size_t f = static_cast<size_t>(fc_hidden);
  size_t v = static_cast<size_t>(vocab);
  bool shapes_ok =
      vocab == 0
          ? p.wx.empty() && p.wh.empty() && p.b.empty() && p.w1.empty() &&
                p.b1.empty() && p.w2.empty()
          : p.wx.size() == 4 * h * v && p.wh.size() == 4 * h * h &&
                p.b.size() == 4 * h && p.w1.size() == f * h &&
                p.b1.size() == f && p.w2.size() == f;
  if (!shapes_ok) {
    r.Fail("lstm: weight shapes inconsistent with architecture dims");
    return false;
  }
  opts_.hidden = hidden;
  opts_.fc_hidden = fc_hidden;
  opts_.max_seq_len = max_seq_len;
  vocab_ = vocab;
  y_scale_ = y_scale;
  p_ = std::move(p);
  quant_ = Int8LstmParams{};
  engine_.reset();
  if (backend_ != InferBackend::kF64) {
    BuildEngine();
  }
  return true;
}

double LstmRegressor::Predict(const std::vector<int>& tokens) const {
  if (vocab_ == 0) {
    return 0;
  }
  double y;
  if (backend_ == InferBackend::kF32 && engine_ != nullptr) {
    y = engine_->PredictF32(tokens);
  } else if (backend_ == InferBackend::kInt8 && engine_ != nullptr) {
    y = engine_->PredictInt8(tokens);
  } else {
    y = Forward(tokens, nullptr);
  }
  return std::max(0.0, y * y_scale_);
}

LstmF64View LstmRegressor::View() const {
  LstmF64View v;
  v.hidden = opts_.hidden;
  v.fc_hidden = opts_.fc_hidden;
  v.max_seq_len = opts_.max_seq_len;
  v.vocab = vocab_;
  v.y_scale = y_scale_;
  v.wx = &p_.wx;
  v.wh = &p_.wh;
  v.b = &p_.b;
  v.w1 = &p_.w1;
  v.b1 = &p_.b1;
  v.w2 = &p_.w2;
  v.b2 = p_.b2;
  return v;
}

void LstmRegressor::BuildEngine() {
  if (vocab_ == 0) {
    engine_.reset();
    return;
  }
  engine_ = std::make_shared<const LstmInferEngine>(View(), quant_);
}

void LstmRegressor::SetInferBackend(InferBackend backend) {
  backend_ = backend;
  if (backend_ == InferBackend::kF64) {
    engine_.reset();
  } else if (engine_ == nullptr) {
    BuildEngine();
  }
}

Int8LstmParams LstmRegressor::QuantizedParams() const {
  if (!quant_.empty()) {
    return quant_;
  }
  return QuantizeLstm(View());
}

bool LstmRegressor::AttachQuantized(Int8LstmParams quant, std::string* error) {
  if (!quant.Validate(opts_.hidden, opts_.fc_hidden, vocab_, error)) {
    return false;
  }
  quant_ = std::move(quant);
  if (engine_ != nullptr) {
    BuildEngine();  // the engine must serve the attached weights
  }
  return true;
}

}  // namespace clara
