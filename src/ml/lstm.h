// LSTM + fully-connected regression head over one-hot token sequences — the
// core of Clara's instruction-count predictor (paper §3.2, Figure 6).
//
// The one-hot input (enabled by vocabulary compaction) is exploited directly:
// the input transform is a column gather from the input weight matrix, so
// cost is independent of vocabulary size. The forward/backward passes run on
// the fused kernels in src/ml/kernels.h with preallocated BPTT trace buffers
// (no per-step allocation).
//
// Training is Adam over minibatches of `batch_size` sequences. Per-example
// gradients inside a batch are computed data-parallel on the shared thread
// pool and accumulated in fixed example order, so the fitted weights are
// bit-identical at any thread count. batch_size == 1 (the default) is the
// paper's per-sequence SGD regime.
#ifndef SRC_ML_LSTM_H_
#define SRC_ML_LSTM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ml/common.h"
#include "src/ml/infer.h"
#include "src/util/rng.h"

namespace clara {

struct LstmOptions {
  int hidden = 32;
  int fc_hidden = 16;
  int epochs = 30;
  int max_seq_len = 96;
  double learning_rate = 0.004;  // Adam alpha
  uint64_t seed = 31;
  // Sequences per Adam step. Gradients within a batch are averaged; values
  // > 1 enable data-parallel gradient computation (deterministic at any
  // thread count).
  int batch_size = 1;
};

class LstmRegressor : public SeqRegressor {
 public:
  explicit LstmRegressor(LstmOptions opts = LstmOptions{}) : opts_(opts) {}

  void Fit(const SeqDataset& data) override;
  double Predict(const std::vector<int>& tokens) const override;
  std::string Describe() const override { return "lstm-fc"; }

  // Training-set WMAPE after the last Fit (convergence diagnostic).
  double train_wmape() const { return train_wmape_; }

  void SaveTo(BinWriter& w) const;
  bool LoadFrom(BinReader& r);

  // Selects the inference backend for Predict(). kF64 (the default) is the
  // training-time double path; kF32/kInt8 build the packed inference engine
  // on first use (no-op while untrained). Copies share the immutable engine.
  void SetInferBackend(InferBackend backend);
  InferBackend infer_backend() const { return backend_; }

  // Quantized weights for artifact serialization: the attached frame when
  // one was loaded, otherwise computed deterministically from the double
  // weights (the two are byte-identical for the same model).
  Int8LstmParams QuantizedParams() const;
  // Adopts a quantized frame loaded from an artifact; rejects dimension or
  // shape mismatches against the f64 model.
  bool AttachQuantized(Int8LstmParams quant, std::string* error);

 private:
  struct Params {
    std::vector<double> wx;  // 4H x V (row-major)
    std::vector<double> wh;  // 4H x H
    std::vector<double> b;   // 4H
    std::vector<double> w1;  // F x H
    std::vector<double> b1;  // F
    std::vector<double> w2;  // F
    double b2 = 0;
  };

  struct Trace;      // preallocated forward activations (defined in .cc)
  struct Grads;      // one parameter-shaped gradient buffer (defined in .cc)
  struct Workspace;  // per-batch-slot trace + gradient scratch (defined in .cc)

  double Forward(const std::vector<int>& tokens, Trace* trace) const;
  // Backprop for one example into ws.grads (zeroed first); returns the loss.
  double ExampleGradient(const SeqExample& ex, Workspace& ws) const;

  LstmF64View View() const;
  void BuildEngine();

  LstmOptions opts_;
  int vocab_ = 0;
  double y_scale_ = 1;
  Params p_;
  double train_wmape_ = 0;
  InferBackend backend_ = InferBackend::kF64;
  Int8LstmParams quant_;  // attached artifact frame (empty unless loaded)
  std::shared_ptr<const LstmInferEngine> engine_;
};

}  // namespace clara

#endif  // SRC_ML_LSTM_H_
