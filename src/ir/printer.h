// Textual rendering of IR modules, functions, and instructions. The format is
// round-trippable through src/ir/parser.h.
#ifndef SRC_IR_PRINTER_H_
#define SRC_IR_PRINTER_H_

#include <string>

#include "src/ir/ir.h"

namespace clara {

std::string ToString(const Value& v);
std::string ToString(const Instruction& instr, const Module& m, const Function& f);
std::string ToString(const Function& f, const Module& m);
std::string ToString(const Module& m);

}  // namespace clara

#endif  // SRC_IR_PRINTER_H_
