// Optional IR optimization passes.
//
// Clara's pipeline deliberately lowers with these DISABLED (paper §3.1: "To
// ensure that the IR stays as close to the original NF logic as possible,
// Clara disables most LLVM optimizations"). They exist to make that choice a
// real, testable knob: the `abl_ir_opt` bench shows how running them first
// perturbs the instruction distributions the learned compiler model was
// trained on.
//
// Passes (function-local, conservative):
//   ConstantFold   — evaluates compute instructions whose operands are all
//                    constants and propagates the results to uses
//   StoreForward   — forwards stack stores to subsequent loads of the same
//                    slot within a block (mem2reg-lite)
//   DeadCodeElim   — removes side-effect-free instructions with unused
//                    results (iterates to a fixed point)
#ifndef SRC_IR_OPT_H_
#define SRC_IR_OPT_H_

#include "src/ir/ir.h"

namespace clara {

struct OptStats {
  int folded = 0;
  int forwarded = 0;
  int removed = 0;
};

OptStats ConstantFold(Function& f);
OptStats StoreForward(Function& f);
OptStats DeadCodeElim(Function& f);

// Runs all passes to a fixed point (bounded iterations). Returns aggregate
// statistics.
OptStats OptimizeModule(Module& m);

}  // namespace clara

#endif  // SRC_IR_OPT_H_
