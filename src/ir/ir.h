// Clara's uniform low-level intermediate representation.
//
// This is a deliberately small, LLVM-flavoured IR: typed virtual registers,
// basic blocks with explicit terminators, and load/store instructions that
// carry an address space + symbol reference instead of a full pointer
// arithmetic sublanguage. The AST-to-IR lowering (src/lang) keeps
// optimizations off, so local variables remain stack load/store traffic —
// exactly the unoptimized form the paper feeds to its learned compiler model
// (§3.1: "Clara disables most LLVM optimizations").
//
// Instruction taxonomy (paper Figure 5):
//   compute        — arithmetic/logic/compare/cast/select
//   memory         — load/store, further split by address space:
//                      kStack  (function locals; stateless, register-allocatable)
//                      kPacket (header/payload bytes; stateless)
//                      kState  (global cross-packet state; stateful)
//   framework API  — kCall to a Click-style API (reverse-ported separately)
//   control        — br/condbr/ret
#ifndef SRC_IR_IR_H_
#define SRC_IR_IR_H_

#include <cstdint>
#include <string>
#include <vector>

namespace clara {

enum class Type : uint8_t { kVoid, kI1, kI8, kI16, kI32, kI64 };

int BitWidth(Type t);
const char* TypeName(Type t);

enum class Opcode : uint8_t {
  // Binary arithmetic / logic.
  kAdd, kSub, kMul, kUDiv, kURem,
  kAnd, kOr, kXor, kShl, kLShr, kAShr,
  // Comparisons (result kI1).
  kIcmpEq, kIcmpNe, kIcmpUlt, kIcmpUle, kIcmpUgt, kIcmpUge,
  // Casts and select.
  kZext, kSext, kTrunc, kSelect,
  // Memory.
  kLoad, kStore,
  // Framework API call.
  kCall,
  // Control flow.
  kBr, kCondBr, kRet,
};

const char* OpcodeName(Opcode op);
bool IsBinaryOp(Opcode op);
bool IsCompare(Opcode op);
bool IsCast(Opcode op);
bool IsTerminator(Opcode op);

enum class AddressSpace : uint8_t { kNone, kStack, kPacket, kState };

const char* AddressSpaceName(AddressSpace s);

// An operand. Register ids are function-scoped and dense, assigned by the
// builder; constants carry their value inline.
struct Value {
  enum class Kind : uint8_t { kNone, kConst, kReg };
  Kind kind = Kind::kNone;
  int64_t imm = 0;   // kConst
  uint32_t reg = 0;  // kReg

  static Value Const(int64_t v) { return Value{Kind::kConst, v, 0}; }
  static Value Reg(uint32_t r) { return Value{Kind::kReg, 0, r}; }
  bool is_const() const { return kind == Kind::kConst; }
  bool is_reg() const { return kind == Kind::kReg; }
};

struct Instruction {
  Opcode op;
  Type type = Type::kVoid;   // result type; for store, the stored value type
  uint32_t result = 0;       // defined register (0 = none; register 0 unused)
  std::vector<Value> operands;

  // Memory metadata (kLoad/kStore). `sym` indexes the per-space symbol table
  // in Function (stack slots) or Module (packet fields / state vars). For
  // state arrays, operands[index] holds the dynamic element index when
  // has_dyn_index; `offset` is a constant byte offset within the element.
  AddressSpace space = AddressSpace::kNone;
  uint32_t sym = 0;
  int32_t offset = 0;
  bool has_dyn_index = false;

  // Call metadata (kCall): index into Module::apis.
  uint32_t callee = 0;

  // Branch metadata: block indices within the function.
  uint32_t target0 = 0;
  uint32_t target1 = 0;
};

struct BasicBlock {
  std::string label;
  // The AST block-region this block was lowered from; lets the interpreter's
  // per-region execution counts be attached to IR blocks. -1 = synthetic.
  int ast_region = -1;
  std::vector<Instruction> instrs;
};

// A function-local stack slot (one per NF-program local variable).
struct StackSlot {
  std::string name;
  Type type = Type::kI32;
};

// Kinds of global NF state (paper §4.3: hashmaps, vectors, counters...).
enum class StateKind : uint8_t { kScalar, kArray, kMap };

struct StateVar {
  std::string name;
  StateKind kind = StateKind::kScalar;
  Type elem_type = Type::kI32;  // scalar/array element type
  uint32_t length = 1;          // array length (scalars: 1)
  // Map geometry (kMap): total bytes = capacity * (key_bytes + value_bytes).
  uint32_t key_bytes = 0;
  uint32_t value_bytes = 0;
  uint32_t capacity = 0;
  // Backing-store slots for maps (bucketed NIC maps round capacity up to a
  // whole number of buckets). Set by the AST lowering; 0 = derive from
  // capacity/length.
  uint32_t slots = 0;

  uint64_t SizeBytes() const;
  // Number of addressable elements (scalars: 1, arrays: length, maps: the
  // probe-loop slot count).
  uint32_t ElementCount() const;
  // Bytes per addressable element.
  uint32_t ElementBytes() const;
};

// A packet field exposed to NF programs (e.g. "ip.src").
struct PacketFieldInfo {
  std::string name;
  Type type = Type::kI16;
  uint16_t byte_offset = 0;  // offset in the logical wire layout
};

// A framework API callable from NF programs.
struct ApiInfo {
  std::string name;
  uint8_t num_args = 0;
  Type result = Type::kVoid;
};

struct Function {
  std::string name;
  std::vector<StackSlot> slots;
  std::vector<BasicBlock> blocks;
  uint32_t next_reg = 1;  // register 0 reserved

  uint32_t NumInstructions() const;
};

struct Module {
  std::string name;
  std::vector<StateVar> state;
  std::vector<PacketFieldInfo> packet_fields;
  std::vector<ApiInfo> apis;
  std::vector<Function> functions;

  // Returns the index of the named entity, or -1.
  int FindState(const std::string& name) const;
  int FindPacketField(const std::string& name) const;
  int FindApi(const std::string& name) const;
  const Function* FindFunction(const std::string& name) const;

  // Registers an API (idempotent by name) and returns its index.
  uint32_t InternApi(const std::string& name, uint8_t num_args, Type result);
};

// Installs the canonical packet-field table (eth/ip/tcp/udp fields + payload
// bytes) into `m`. All lowered NF programs share this layout.
void InstallStandardPacketFields(Module& m);

}  // namespace clara

#endif  // SRC_IR_IR_H_
