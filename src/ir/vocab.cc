#include "src/ir/vocab.h"

#include <cstdlib>
#include <sstream>

#include "src/util/binio.h"

namespace clara {
namespace {

std::string OperandWord(const Value& v, AbstractionMode mode) {
  if (mode == AbstractionMode::kRaw) {
    if (v.is_const()) {
      return std::to_string(v.imm);
    }
    return "%" + std::to_string(v.reg);
  }
  if (v.is_reg()) {
    return "VAR";
  }
  int64_t a = std::llabs(v.imm);
  if (a < 256) {
    return "C8";
  }
  if (a < 65536) {
    return "C16";
  }
  return "C32";
}

}  // namespace

std::string AbstractInstruction(const Instruction& i, const Module& m, AbstractionMode mode) {
  std::ostringstream os;
  switch (i.op) {
    case Opcode::kLoad:
    case Opcode::kStore:
      os << OpcodeName(i.op) << "." << AddressSpaceName(i.space) << " " << TypeName(i.type);
      if (i.space == AddressSpace::kPacket) {
        // Header field names are part of the vocabulary (paper §3.2).
        os << " " << m.packet_fields[i.sym].name;
      }
      if (i.has_dyn_index) {
        os << " idx";
      }
      if (mode == AbstractionMode::kRaw) {
        if (i.space == AddressSpace::kStack) {
          os << " slot" << i.sym;
        } else if (i.space == AddressSpace::kState) {
          os << " " << m.state[i.sym].name;
        }
        os << " +" << i.offset;
      }
      break;
    case Opcode::kCall:
      os << "call " << m.apis[i.callee].name;
      break;
    case Opcode::kBr:
      os << "br";
      break;
    case Opcode::kCondBr:
      os << "condbr";
      break;
    case Opcode::kRet:
      os << "ret";
      break;
    default:
      os << OpcodeName(i.op) << " " << TypeName(i.type);
      for (const auto& v : i.operands) {
        os << " " << OperandWord(v, mode);
      }
      break;
  }
  return os.str();
}

std::vector<std::string> AbstractBlock(const BasicBlock& block, const Module& m,
                                       AbstractionMode mode) {
  std::vector<std::string> words;
  words.reserve(block.instrs.size());
  for (const auto& i : block.instrs) {
    words.push_back(AbstractInstruction(i, m, mode));
  }
  return words;
}

int Vocabulary::Intern(const std::string& word) {
  auto it = id_by_word_.find(word);
  if (it != id_by_word_.end()) {
    return it->second;
  }
  if (frozen_) {
    return 0;
  }
  int id = static_cast<int>(words_.size());
  id_by_word_.emplace(word, id);
  words_.push_back(word);
  return id;
}

int Vocabulary::Lookup(const std::string& word) const {
  auto it = id_by_word_.find(word);
  return it == id_by_word_.end() ? 0 : it->second;
}

std::vector<int> Vocabulary::Encode(const BasicBlock& block, const Module& m,
                                    AbstractionMode mode) {
  std::vector<int> out;
  out.reserve(block.instrs.size());
  for (const auto& word : AbstractBlock(block, m, mode)) {
    out.push_back(frozen_ ? Lookup(word) : Intern(word));
  }
  return out;
}

void Vocabulary::SaveTo(BinWriter& w) const {
  w.U16(0x564F);  // "VO"
  w.VecStr(words_);
  w.Bool(frozen_);
}

bool Vocabulary::LoadFrom(BinReader& r) {
  if (r.U16() != 0x564F) {
    r.Fail("vocabulary: bad section tag");
    return false;
  }
  std::vector<std::string> words;
  r.VecStr(&words);
  bool frozen = r.Bool();
  if (!r.ok()) {
    return false;
  }
  if (words.empty() || words[0] != "<unk>") {
    r.Fail("vocabulary: word 0 must be <unk>");
    return false;
  }
  std::unordered_map<std::string, int> by_word;
  by_word.reserve(words.size());
  for (size_t i = 0; i < words.size(); ++i) {
    if (!by_word.emplace(words[i], static_cast<int>(i)).second) {
      r.Fail("vocabulary: duplicate word '" + words[i] + "'");
      return false;
    }
  }
  words_ = std::move(words);
  id_by_word_ = std::move(by_word);
  frozen_ = frozen;
  return true;
}

std::vector<double> Vocabulary::Histogram(const std::vector<int>& tokens) const {
  std::vector<double> h(words_.size(), 0.0);
  for (int t : tokens) {
    if (t >= 0 && t < static_cast<int>(h.size())) {
      h[t] += 1.0;
    }
  }
  if (!tokens.empty()) {
    for (auto& v : h) {
      v /= static_cast<double>(tokens.size());
    }
  }
  return h;
}

}  // namespace clara
