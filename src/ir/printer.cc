#include "src/ir/printer.h"

#include <sstream>

namespace clara {

std::string ToString(const Value& v) {
  switch (v.kind) {
    case Value::Kind::kNone:
      return "<none>";
    case Value::Kind::kConst:
      return std::to_string(v.imm);
    case Value::Kind::kReg:
      return "%" + std::to_string(v.reg);
  }
  return "?";
}

namespace {

std::string MemTarget(const Instruction& i, const Module& m, const Function& f) {
  std::ostringstream os;
  switch (i.space) {
    case AddressSpace::kStack:
      os << "stack:" << f.slots[i.sym].name;
      break;
    case AddressSpace::kPacket:
      os << "pkt:" << m.packet_fields[i.sym].name;
      break;
    case AddressSpace::kState:
      os << "state:" << m.state[i.sym].name;
      break;
    case AddressSpace::kNone:
      os << "?";
      break;
  }
  if (i.has_dyn_index) {
    // The dynamic index is the last operand.
    os << "[" << ToString(i.operands.back()) << "]";
  }
  if (i.offset != 0) {
    os << "+" << i.offset;
  }
  return os.str();
}

}  // namespace

std::string ToString(const Instruction& i, const Module& m, const Function& f) {
  std::ostringstream os;
  if (i.result != 0) {
    os << "%" << i.result << " = ";
  }
  os << OpcodeName(i.op);
  switch (i.op) {
    case Opcode::kLoad:
      os << " " << TypeName(i.type) << " " << MemTarget(i, m, f);
      break;
    case Opcode::kStore:
      os << " " << TypeName(i.type) << " " << ToString(i.operands[0]) << ", "
         << MemTarget(i, m, f);
      break;
    case Opcode::kCall: {
      os << " @" << m.apis[i.callee].name << "(";
      for (size_t k = 0; k < i.operands.size(); ++k) {
        if (k > 0) {
          os << ", ";
        }
        os << ToString(i.operands[k]);
      }
      os << ")";
      if (i.type != Type::kVoid) {
        os << " : " << TypeName(i.type);
      }
      break;
    }
    case Opcode::kBr:
      os << " ^" << f.blocks[i.target0].label;
      break;
    case Opcode::kCondBr:
      os << " " << ToString(i.operands[0]) << ", ^" << f.blocks[i.target0].label << ", ^"
         << f.blocks[i.target1].label;
      break;
    case Opcode::kRet:
      break;
    default: {
      os << " " << TypeName(i.type);
      for (size_t k = 0; k < i.operands.size(); ++k) {
        os << (k == 0 ? " " : ", ") << ToString(i.operands[k]);
      }
      break;
    }
  }
  return os.str();
}

std::string ToString(const Function& f, const Module& m) {
  std::ostringstream os;
  os << "func @" << f.name << " {\n";
  for (const auto& s : f.slots) {
    os << "  local " << s.name << " : " << TypeName(s.type) << "\n";
  }
  for (const auto& b : f.blocks) {
    os << "^" << b.label;
    if (b.ast_region >= 0) {
      os << " !region " << b.ast_region;
    }
    os << ":\n";
    for (const auto& i : b.instrs) {
      os << "  " << ToString(i, m, f) << "\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string ToString(const Module& m) {
  std::ostringstream os;
  os << "module " << m.name << "\n";
  for (const auto& s : m.state) {
    os << "state " << s.name << " : ";
    switch (s.kind) {
      case StateKind::kScalar:
        os << TypeName(s.elem_type);
        break;
      case StateKind::kArray:
        os << TypeName(s.elem_type) << "[" << s.length << "]";
        break;
      case StateKind::kMap:
        os << "map<" << s.key_bytes << "," << s.value_bytes << "," << s.capacity << ">";
        break;
    }
    os << "\n";
  }
  for (const auto& f : m.functions) {
    os << ToString(f, m);
  }
  return os.str();
}

}  // namespace clara
