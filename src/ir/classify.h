// Static instruction classification (paper Figure 5): every IR instruction is
// a compute instruction, a memory access (stateless stack/packet vs stateful
// state), an NF-framework API call, or control flow. Per-block and per-
// function tallies feed both the performance predictor and Table 2.
#ifndef SRC_IR_CLASSIFY_H_
#define SRC_IR_CLASSIFY_H_

#include <cstdint>

#include "src/ir/ir.h"

namespace clara {

enum class InstrClass : uint8_t {
  kCompute,
  kStatelessMem,  // stack slots and packet bytes
  kStatefulMem,   // global NF state
  kApiCall,
  kControl,
};

InstrClass Classify(const Instruction& instr);

struct BlockCounts {
  uint32_t compute = 0;
  uint32_t stateless_mem = 0;
  uint32_t stateful_mem = 0;
  uint32_t api_calls = 0;
  uint32_t control = 0;

  uint32_t Total() const { return compute + stateless_mem + stateful_mem + api_calls + control; }
  uint32_t Mem() const { return stateless_mem + stateful_mem; }

  BlockCounts& operator+=(const BlockCounts& o);
};

BlockCounts CountBlock(const BasicBlock& block);
BlockCounts CountFunction(const Function& func);

// Arithmetic intensity: compute instructions per memory access (paper §4.5
// colocation feature). Returns compute count when there are no accesses.
double ArithmeticIntensity(const BlockCounts& c);

}  // namespace clara

#endif  // SRC_IR_CLASSIFY_H_
