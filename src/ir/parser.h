// Parser for the textual IR format emitted by src/ir/printer.h.
//
// Primarily used by tests (round-trip checks, hand-written fixtures) and for
// loading IR corpora from disk.
#ifndef SRC_IR_PARSER_H_
#define SRC_IR_PARSER_H_

#include <optional>
#include <string>

#include "src/ir/ir.h"

namespace clara {

struct ParseResult {
  bool ok = false;
  std::string error;  // human-readable, includes line number
  Module module;
};

// Parses a full module. Packet fields are installed from the standard table
// (the printer does not emit them).
ParseResult ParseModule(const std::string& text);

}  // namespace clara

#endif  // SRC_IR_PARSER_H_
