// Vocabulary compaction and instruction encoding (paper §3.2).
//
// Each IR instruction is abstracted into a "word": concrete operand names are
// replaced by their kind (VAR) and constants are bucketized by magnitude,
// with the exception of well-known packet header field names, which are kept
// verbatim. This shrinks the vocabulary to a few hundred distinct words so a
// basic one-hot encoding suffices (no word embeddings needed).
//
// AbstractionMode::kRaw disables compaction (constants and register numbers
// kept verbatim) and exists for the vocabulary-compaction ablation.
#ifndef SRC_IR_VOCAB_H_
#define SRC_IR_VOCAB_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/ir/ir.h"

namespace clara {

class BinWriter;
class BinReader;

enum class AbstractionMode { kCompacted, kRaw };

// Renders one instruction as an abstract word.
std::string AbstractInstruction(const Instruction& instr, const Module& m,
                                AbstractionMode mode = AbstractionMode::kCompacted);

// Renders a basic block as a word sequence (terminator included: branch
// structure is part of what the downstream compiler sees).
std::vector<std::string> AbstractBlock(const BasicBlock& block, const Module& m,
                                       AbstractionMode mode = AbstractionMode::kCompacted);

// A frozen token dictionary. Id 0 is reserved for unknown words.
class Vocabulary {
 public:
  Vocabulary() { id_by_word_["<unk>"] = 0; words_.push_back("<unk>"); }

  // Adds `word` if absent; returns its id. Only valid before Freeze().
  int Intern(const std::string& word);

  // Id for `word`, or 0 (unknown).
  int Lookup(const std::string& word) const;

  void Freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }
  int size() const { return static_cast<int>(words_.size()); }
  const std::string& word(int id) const { return words_[id]; }

  // Encodes a block: abstraction + interning (growing the vocab) or lookup
  // (frozen vocab).
  std::vector<int> Encode(const BasicBlock& block, const Module& m,
                          AbstractionMode mode = AbstractionMode::kCompacted);

  // Word-count histogram over a token sequence, normalized to sum 1 when
  // non-empty. Bag-of-words features for the DNN baseline.
  std::vector<double> Histogram(const std::vector<int>& tokens) const;

  void SaveTo(BinWriter& w) const;
  bool LoadFrom(BinReader& r);

 private:
  std::unordered_map<std::string, int> id_by_word_;
  std::vector<std::string> words_;
  bool frozen_ = false;
};

}  // namespace clara

#endif  // SRC_IR_VOCAB_H_
