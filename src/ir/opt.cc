#include "src/ir/opt.h"

#include <map>
#include <set>

namespace clara {
namespace {

uint64_t MaskTo(uint64_t v, Type t) {
  switch (t) {
    case Type::kVoid: return 0;
    case Type::kI1: return v & 1;
    case Type::kI8: return v & 0xff;
    case Type::kI16: return v & 0xffff;
    case Type::kI32: return v & 0xffffffffULL;
    case Type::kI64: return v;
  }
  return v;
}

bool EvalCompute(const Instruction& i, uint64_t a, uint64_t b, uint64_t* out) {
  int w = BitWidth(i.type);
  uint64_t r = 0;
  switch (i.op) {
    case Opcode::kAdd: r = a + b; break;
    case Opcode::kSub: r = a - b; break;
    case Opcode::kMul: r = a * b; break;
    case Opcode::kUDiv: r = b == 0 ? 0 : a / b; break;
    case Opcode::kURem: r = b == 0 ? 0 : a % b; break;
    case Opcode::kAnd: r = a & b; break;
    case Opcode::kOr: r = a | b; break;
    case Opcode::kXor: r = a ^ b; break;
    case Opcode::kShl: r = a << (b & (w - 1)); break;
    case Opcode::kLShr: r = a >> (b & (w - 1)); break;
    case Opcode::kIcmpEq: r = a == b; break;
    case Opcode::kIcmpNe: r = a != b; break;
    case Opcode::kIcmpUlt: r = a < b; break;
    case Opcode::kIcmpUle: r = a <= b; break;
    case Opcode::kIcmpUgt: r = a > b; break;
    case Opcode::kIcmpUge: r = a >= b; break;
    case Opcode::kZext:
    case Opcode::kTrunc: r = a; break;
    default:
      return false;  // ashr/select and non-compute ops: not folded
  }
  *out = MaskTo(r, i.type);
  return true;
}

bool HasSideEffects(const Instruction& i) {
  switch (i.op) {
    case Opcode::kStore:
    case Opcode::kCall:
    case Opcode::kBr:
    case Opcode::kCondBr:
    case Opcode::kRet:
      return true;
    default:
      return false;
  }
}

// Replaces register operands according to `subst` (reg -> replacement).
void ApplySubst(Instruction& i, const std::map<uint32_t, Value>& subst) {
  for (auto& v : i.operands) {
    if (v.is_reg()) {
      auto it = subst.find(v.reg);
      if (it != subst.end()) {
        v = it->second;
      }
    }
  }
}

}  // namespace

OptStats ConstantFold(Function& f) {
  OptStats stats;
  std::map<uint32_t, Value> subst;
  for (auto& blk : f.blocks) {
    for (auto& i : blk.instrs) {
      ApplySubst(i, subst);
      if (i.result == 0 || HasSideEffects(i) || i.op == Opcode::kLoad) {
        continue;
      }
      // Unary casts fold with one constant operand; binaries need both.
      uint64_t a = 0;
      uint64_t b = 0;
      bool all_const = !i.operands.empty();
      for (size_t k = 0; k < i.operands.size() && all_const; ++k) {
        if (!i.operands[k].is_const()) {
          all_const = false;
          break;
        }
        (k == 0 ? a : b) = static_cast<uint64_t>(i.operands[k].imm);
      }
      if (!all_const || i.operands.size() > 2) {
        continue;
      }
      uint64_t folded = 0;
      if (EvalCompute(i, a, b, &folded)) {
        subst[i.result] = Value::Const(static_cast<int64_t>(folded));
        ++stats.folded;
      }
    }
  }
  return stats;
}

OptStats StoreForward(Function& f) {
  OptStats stats;
  std::map<uint32_t, Value> subst;
  for (auto& blk : f.blocks) {
    std::map<uint32_t, Value> slot_value;  // per-block: slot -> stored value
    for (auto& i : blk.instrs) {
      ApplySubst(i, subst);
      if (i.op == Opcode::kStore && i.space == AddressSpace::kStack) {
        slot_value[i.sym] = i.operands[0];
        continue;
      }
      if (i.op == Opcode::kLoad && i.space == AddressSpace::kStack) {
        auto it = slot_value.find(i.sym);
        if (it != slot_value.end() && i.result != 0) {
          subst[i.result] = it->second;
          ++stats.forwarded;
        }
      }
    }
  }
  return stats;
}

OptStats DeadCodeElim(Function& f) {
  OptStats stats;
  bool changed = true;
  while (changed) {
    changed = false;
    std::set<uint32_t> used;
    for (const auto& blk : f.blocks) {
      for (const auto& i : blk.instrs) {
        for (const auto& v : i.operands) {
          if (v.is_reg()) {
            used.insert(v.reg);
          }
        }
      }
    }
    for (auto& blk : f.blocks) {
      std::vector<Instruction> kept;
      kept.reserve(blk.instrs.size());
      for (auto& i : blk.instrs) {
        bool removable =
            !HasSideEffects(i) && (i.result == 0 || used.count(i.result) == 0);
        if (removable) {
          ++stats.removed;
          changed = true;
        } else {
          kept.push_back(std::move(i));
        }
      }
      blk.instrs = std::move(kept);
    }
  }
  return stats;
}

OptStats OptimizeModule(Module& m) {
  OptStats total;
  for (auto& f : m.functions) {
    for (int round = 0; round < 4; ++round) {
      OptStats s1 = ConstantFold(f);
      OptStats s2 = StoreForward(f);
      OptStats s3 = DeadCodeElim(f);
      total.folded += s1.folded;
      total.forwarded += s2.forwarded;
      total.removed += s3.removed;
      if (s1.folded + s2.forwarded + s3.removed == 0) {
        break;
      }
    }
  }
  return total;
}

}  // namespace clara
