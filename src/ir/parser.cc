#include "src/ir/parser.h"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

namespace clara {
namespace {

// Minimal cursor-based tokenizer over one line.
class LineCursor {
 public:
  explicit LineCursor(const std::string& s) : s_(s) {}

  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= s_.size();
  }

  char Peek() {
    SkipWs();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const std::string& w) {
    SkipWs();
    if (s_.compare(pos_, w.size(), w) == 0) {
      size_t end = pos_ + w.size();
      if (end == s_.size() || !IsIdentChar(s_[end])) {
        pos_ = end;
        return true;
      }
    }
    return false;
  }

  // Identifier: letters, digits, '_', '.', allowed to start with letter/_/%.
  std::string Ident() {
    SkipWs();
    size_t start = pos_;
    while (pos_ < s_.size() && IsIdentChar(s_[pos_])) {
      ++pos_;
    }
    return s_.substr(start, pos_ - start);
  }

  std::optional<int64_t> Int() {
    SkipWs();
    size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && !std::isdigit(static_cast<unsigned char>(s_[start])))) {
      pos_ = start;
      return std::nullopt;
    }
    return std::stoll(s_.substr(start, pos_ - start));
  }

  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
  }

 private:
  const std::string& s_;
  size_t pos_ = 0;
};

std::optional<Type> ParseType(const std::string& t) {
  if (t == "void") return Type::kVoid;
  if (t == "i1") return Type::kI1;
  if (t == "i8") return Type::kI8;
  if (t == "i16") return Type::kI16;
  if (t == "i32") return Type::kI32;
  if (t == "i64") return Type::kI64;
  return std::nullopt;
}

std::optional<Opcode> ParseOpcode(const std::string& w) {
  static const std::map<std::string, Opcode> kMap = {
      {"add", Opcode::kAdd},         {"sub", Opcode::kSub},
      {"mul", Opcode::kMul},         {"udiv", Opcode::kUDiv},
      {"urem", Opcode::kURem},       {"and", Opcode::kAnd},
      {"or", Opcode::kOr},           {"xor", Opcode::kXor},
      {"shl", Opcode::kShl},         {"lshr", Opcode::kLShr},
      {"ashr", Opcode::kAShr},       {"icmp.eq", Opcode::kIcmpEq},
      {"icmp.ne", Opcode::kIcmpNe},  {"icmp.ult", Opcode::kIcmpUlt},
      {"icmp.ule", Opcode::kIcmpUle}, {"icmp.ugt", Opcode::kIcmpUgt},
      {"icmp.uge", Opcode::kIcmpUge}, {"zext", Opcode::kZext},
      {"sext", Opcode::kSext},       {"trunc", Opcode::kTrunc},
      {"select", Opcode::kSelect},   {"load", Opcode::kLoad},
      {"store", Opcode::kStore},     {"call", Opcode::kCall},
      {"br", Opcode::kBr},           {"condbr", Opcode::kCondBr},
      {"ret", Opcode::kRet},
  };
  auto it = kMap.find(w);
  if (it == kMap.end()) {
    return std::nullopt;
  }
  return it->second;
}

struct FuncContext {
  Function* func = nullptr;
  std::map<std::string, uint32_t> block_by_label;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  ParseResult Run() {
    ParseResult r;
    InstallStandardPacketFields(r.module);
    std::istringstream in(text_);
    std::string line;
    // Pass 1: pre-register blocks per function so forward branches resolve.
    {
      std::istringstream pre(text_);
      std::string l;
      FuncContext* ctx = nullptr;
      std::vector<FuncContext> contexts;
      while (std::getline(pre, l)) {
        LineCursor c(l);
        if (c.ConsumeWord("func")) {
          contexts.emplace_back();
          ctx = &contexts.back();
        } else if (c.Peek() == '^' && ctx != nullptr) {
          c.Consume('^');
          std::string label = c.Ident();
          ctx->block_by_label.emplace(label, ctx->block_by_label.size());
        }
      }
      prepass_ = std::move(contexts);
    }

    size_t func_index = 0;
    FuncContext* ctx = nullptr;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      LineCursor c(line);
      if (c.AtEnd() || c.Peek() == '#') {
        continue;
      }
      if (c.ConsumeWord("module")) {
        r.module.name = c.Ident();
        continue;
      }
      if (c.ConsumeWord("state")) {
        if (!ParseState(c, r.module)) {
          return Fail(lineno, "bad state declaration");
        }
        continue;
      }
      if (c.ConsumeWord("func")) {
        c.Consume('@');
        r.module.functions.emplace_back();
        Function& f = r.module.functions.back();
        f.name = c.Ident();
        cur_ = FuncContext{};
        cur_.func = &f;
        cur_.block_by_label = prepass_[func_index].block_by_label;
        f.blocks.resize(cur_.block_by_label.size());
        for (const auto& [label, idx] : cur_.block_by_label) {
          f.blocks[idx].label = label;
        }
        ++func_index;
        ctx = &cur_;
        continue;
      }
      if (c.Peek() == '}') {
        ctx = nullptr;
        continue;
      }
      if (ctx == nullptr) {
        return Fail(lineno, "instruction outside function");
      }
      if (c.ConsumeWord("local")) {
        std::string name = c.Ident();
        c.Consume(':');
        auto t = ParseType(c.Ident());
        if (!t) {
          return Fail(lineno, "bad local type");
        }
        ctx->func->slots.push_back(StackSlot{name, *t});
        continue;
      }
      if (c.Peek() == '^') {
        c.Consume('^');
        std::string label = c.Ident();
        cur_block_ = ctx->block_by_label.at(label);
        if (c.Consume('!')) {
          c.Ident();  // "region"
          auto n = c.Int();
          if (n) {
            ctx->func->blocks[cur_block_].ast_region = static_cast<int>(*n);
          }
        }
        continue;
      }
      std::string err;
      if (!ParseInstr(c, r.module, *ctx, err)) {
        return Fail(lineno, err.empty() ? "bad instruction" : err);
      }
    }
    r.ok = true;
    return r;
  }

 private:
  ParseResult Fail(int line, const std::string& msg) {
    ParseResult r;
    r.error = "line " + std::to_string(line) + ": " + msg;
    return r;
  }

  static bool ParseState(LineCursor& c, Module& m) {
    StateVar sv;
    sv.name = c.Ident();
    if (!c.Consume(':')) {
      return false;
    }
    if (c.ConsumeWord("map")) {
      if (!c.Consume('<')) {
        return false;
      }
      auto kb = c.Int();
      c.Consume(',');
      auto vb = c.Int();
      c.Consume(',');
      auto cap = c.Int();
      if (!kb || !vb || !cap || !c.Consume('>')) {
        return false;
      }
      sv.kind = StateKind::kMap;
      sv.key_bytes = static_cast<uint32_t>(*kb);
      sv.value_bytes = static_cast<uint32_t>(*vb);
      sv.capacity = static_cast<uint32_t>(*cap);
    } else {
      auto t = ParseType(c.Ident());
      if (!t) {
        return false;
      }
      sv.elem_type = *t;
      if (c.Consume('[')) {
        auto n = c.Int();
        if (!n || !c.Consume(']')) {
          return false;
        }
        sv.kind = StateKind::kArray;
        sv.length = static_cast<uint32_t>(*n);
      } else {
        sv.kind = StateKind::kScalar;
      }
    }
    m.state.push_back(sv);
    return true;
  }

  static std::optional<Value> ParseValue(LineCursor& c) {
    if (c.Consume('%')) {
      auto n = c.Int();
      if (!n) {
        return std::nullopt;
      }
      return Value::Reg(static_cast<uint32_t>(*n));
    }
    auto n = c.Int();
    if (!n) {
      return std::nullopt;
    }
    return Value::Const(*n);
  }

  // Parses "stack:name", "pkt:field", "state:name" with optional "[idx]" and
  // "+off" suffixes. Fills instruction memory metadata.
  static bool ParseMemTarget(LineCursor& c, const Module& m, const Function& f,
                             Instruction& instr) {
    std::string word = c.Ident();
    size_t colon = word.find(':');
    std::string space = word;
    std::string sym;
    if (colon != std::string::npos) {
      space = word.substr(0, colon);
      sym = word.substr(colon + 1);
    } else if (c.Consume(':')) {
      sym = c.Ident();
    }
    if (space == "stack") {
      instr.space = AddressSpace::kStack;
      for (size_t i = 0; i < f.slots.size(); ++i) {
        if (f.slots[i].name == sym) {
          instr.sym = static_cast<uint32_t>(i);
          break;
        }
      }
    } else if (space == "pkt") {
      int idx = m.FindPacketField(sym);
      if (idx < 0) {
        return false;
      }
      instr.space = AddressSpace::kPacket;
      instr.sym = static_cast<uint32_t>(idx);
    } else if (space == "state") {
      int idx = m.FindState(sym);
      if (idx < 0) {
        return false;
      }
      instr.space = AddressSpace::kState;
      instr.sym = static_cast<uint32_t>(idx);
    } else {
      return false;
    }
    if (c.Consume('[')) {
      auto v = ParseValue(c);
      if (!v || !c.Consume(']')) {
        return false;
      }
      instr.has_dyn_index = true;
      instr.operands.push_back(*v);
    }
    if (c.Consume('+')) {
      auto off = c.Int();
      if (!off) {
        return false;
      }
      instr.offset = static_cast<int32_t>(*off);
    }
    return true;
  }

  bool ParseInstr(LineCursor& c, Module& m, FuncContext& ctx, std::string& err) {
    Instruction instr;
    uint32_t result = 0;
    if (c.Peek() == '%') {
      c.Consume('%');
      auto n = c.Int();
      if (!n || !c.Consume('=')) {
        err = "bad result register";
        return false;
      }
      result = static_cast<uint32_t>(*n);
    }
    // Opcode may contain '.', Ident covers it.
    std::string opw = c.Ident();
    auto op = ParseOpcode(opw);
    if (!op) {
      err = "unknown opcode '" + opw + "'";
      return false;
    }
    instr.op = *op;
    instr.result = result;
    Function& f = *ctx.func;
    switch (*op) {
      case Opcode::kLoad: {
        auto t = ParseType(c.Ident());
        if (!t) {
          err = "bad load type";
          return false;
        }
        instr.type = *t;
        if (!ParseMemTarget(c, m, f, instr)) {
          err = "bad load target";
          return false;
        }
        break;
      }
      case Opcode::kStore: {
        auto t = ParseType(c.Ident());
        if (!t) {
          err = "bad store type";
          return false;
        }
        instr.type = *t;
        auto v = ParseValue(c);
        if (!v || !c.Consume(',')) {
          err = "bad store value";
          return false;
        }
        instr.operands.push_back(*v);
        if (!ParseMemTarget(c, m, f, instr)) {
          err = "bad store target";
          return false;
        }
        break;
      }
      case Opcode::kCall: {
        if (!c.Consume('@')) {
          err = "missing callee";
          return false;
        }
        std::string callee = c.Ident();
        if (!c.Consume('(')) {
          err = "missing (";
          return false;
        }
        std::vector<Value> args;
        if (!c.Consume(')')) {
          while (true) {
            auto v = ParseValue(c);
            if (!v) {
              err = "bad call arg";
              return false;
            }
            args.push_back(*v);
            if (c.Consume(')')) {
              break;
            }
            if (!c.Consume(',')) {
              err = "expected , or )";
              return false;
            }
          }
        }
        Type rt = Type::kVoid;
        if (c.Consume(':')) {
          auto t = ParseType(c.Ident());
          if (!t) {
            err = "bad call result type";
            return false;
          }
          rt = *t;
        }
        instr.type = rt;
        instr.callee = m.InternApi(callee, static_cast<uint8_t>(args.size()), rt);
        instr.operands = std::move(args);
        break;
      }
      case Opcode::kBr: {
        if (!c.Consume('^')) {
          err = "missing target";
          return false;
        }
        instr.target0 = ctx.block_by_label.at(c.Ident());
        break;
      }
      case Opcode::kCondBr: {
        auto v = ParseValue(c);
        if (!v || !c.Consume(',') || !c.Consume('^')) {
          err = "bad condbr";
          return false;
        }
        instr.operands.push_back(*v);
        instr.target0 = ctx.block_by_label.at(c.Ident());
        if (!c.Consume(',') || !c.Consume('^')) {
          err = "bad condbr targets";
          return false;
        }
        instr.target1 = ctx.block_by_label.at(c.Ident());
        break;
      }
      case Opcode::kRet:
        break;
      default: {
        // Typed n-ary: "<type> v1, v2[, v3]".
        auto t = ParseType(c.Ident());
        if (!t) {
          err = "bad type";
          return false;
        }
        instr.type = *t;
        while (true) {
          auto v = ParseValue(c);
          if (!v) {
            err = "bad operand";
            return false;
          }
          instr.operands.push_back(*v);
          if (!c.Consume(',')) {
            break;
          }
        }
        break;
      }
    }
    f.blocks[cur_block_].instrs.push_back(std::move(instr));
    if (result >= f.next_reg) {
      f.next_reg = result + 1;
    }
    return true;
  }

  const std::string& text_;
  std::vector<FuncContext> prepass_;
  FuncContext cur_;
  uint32_t cur_block_ = 0;
};

}  // namespace

ParseResult ParseModule(const std::string& text) { return Parser(text).Run(); }

}  // namespace clara
