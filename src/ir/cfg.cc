#include "src/ir/cfg.h"

#include <algorithm>
#include <functional>

namespace clara {

Cfg BuildCfg(const Function& f) {
  Cfg cfg;
  size_t n = f.blocks.size();
  cfg.succ.resize(n);
  cfg.pred.resize(n);
  cfg.reachable.assign(n, false);
  cfg.loop_depth.assign(n, 0);
  for (size_t b = 0; b < n; ++b) {
    const auto& instrs = f.blocks[b].instrs;
    if (instrs.empty()) {
      continue;
    }
    const Instruction& t = instrs.back();
    if (t.op == Opcode::kBr) {
      cfg.succ[b] = {t.target0};
    } else if (t.op == Opcode::kCondBr) {
      cfg.succ[b] = {t.target0, t.target1};
    }
    for (uint32_t s : cfg.succ[b]) {
      cfg.pred[s].push_back(static_cast<uint32_t>(b));
    }
  }

  // Iterative DFS from block 0 for reachability, postorder, and back edges.
  if (n == 0) {
    return cfg;
  }
  std::vector<int> color(n, 0);  // 0 white, 1 gray, 2 black
  std::vector<uint32_t> postorder;
  struct Frame {
    uint32_t block;
    size_t next_succ;
  };
  std::vector<Frame> stack;
  stack.push_back({0, 0});
  color[0] = 1;
  cfg.reachable[0] = true;
  while (!stack.empty()) {
    Frame& fr = stack.back();
    if (fr.next_succ < cfg.succ[fr.block].size()) {
      uint32_t s = cfg.succ[fr.block][fr.next_succ++];
      if (color[s] == 0) {
        color[s] = 1;
        cfg.reachable[s] = true;
        stack.push_back({s, 0});
      } else if (color[s] == 1) {
        cfg.back_edges.emplace_back(fr.block, s);
      }
    } else {
      color[fr.block] = 2;
      postorder.push_back(fr.block);
      stack.pop_back();
    }
  }
  cfg.reverse_postorder.assign(postorder.rbegin(), postorder.rend());

  // Loop depth: increment for every natural loop containing the block.
  for (const auto& [tail, head] : cfg.back_edges) {
    for (uint32_t b : NaturalLoop(cfg, tail, head)) {
      ++cfg.loop_depth[b];
    }
  }
  return cfg;
}

std::vector<uint32_t> NaturalLoop(const Cfg& cfg, uint32_t tail, uint32_t head) {
  std::vector<uint32_t> loop = {head};
  std::vector<bool> in_loop(cfg.succ.size(), false);
  in_loop[head] = true;
  std::vector<uint32_t> work;
  if (!in_loop[tail]) {
    in_loop[tail] = true;
    loop.push_back(tail);
    work.push_back(tail);
  }
  while (!work.empty()) {
    uint32_t b = work.back();
    work.pop_back();
    for (uint32_t p : cfg.pred[b]) {
      if (!in_loop[p]) {
        in_loop[p] = true;
        loop.push_back(p);
        work.push_back(p);
      }
    }
  }
  std::sort(loop.begin(), loop.end());
  return loop;
}

}  // namespace clara
