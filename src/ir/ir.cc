#include "src/ir/ir.h"

namespace clara {

int BitWidth(Type t) {
  switch (t) {
    case Type::kVoid: return 0;
    case Type::kI1: return 1;
    case Type::kI8: return 8;
    case Type::kI16: return 16;
    case Type::kI32: return 32;
    case Type::kI64: return 64;
  }
  return 0;
}

const char* TypeName(Type t) {
  switch (t) {
    case Type::kVoid: return "void";
    case Type::kI1: return "i1";
    case Type::kI8: return "i8";
    case Type::kI16: return "i16";
    case Type::kI32: return "i32";
    case Type::kI64: return "i64";
  }
  return "?";
}

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kUDiv: return "udiv";
    case Opcode::kURem: return "urem";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kLShr: return "lshr";
    case Opcode::kAShr: return "ashr";
    case Opcode::kIcmpEq: return "icmp.eq";
    case Opcode::kIcmpNe: return "icmp.ne";
    case Opcode::kIcmpUlt: return "icmp.ult";
    case Opcode::kIcmpUle: return "icmp.ule";
    case Opcode::kIcmpUgt: return "icmp.ugt";
    case Opcode::kIcmpUge: return "icmp.uge";
    case Opcode::kZext: return "zext";
    case Opcode::kSext: return "sext";
    case Opcode::kTrunc: return "trunc";
    case Opcode::kSelect: return "select";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kCall: return "call";
    case Opcode::kBr: return "br";
    case Opcode::kCondBr: return "condbr";
    case Opcode::kRet: return "ret";
  }
  return "?";
}

bool IsBinaryOp(Opcode op) {
  return op >= Opcode::kAdd && op <= Opcode::kAShr;
}

bool IsCompare(Opcode op) {
  return op >= Opcode::kIcmpEq && op <= Opcode::kIcmpUge;
}

bool IsCast(Opcode op) {
  return op == Opcode::kZext || op == Opcode::kSext || op == Opcode::kTrunc;
}

bool IsTerminator(Opcode op) {
  return op == Opcode::kBr || op == Opcode::kCondBr || op == Opcode::kRet;
}

const char* AddressSpaceName(AddressSpace s) {
  switch (s) {
    case AddressSpace::kNone: return "none";
    case AddressSpace::kStack: return "stack";
    case AddressSpace::kPacket: return "pkt";
    case AddressSpace::kState: return "state";
  }
  return "?";
}

uint64_t StateVar::SizeBytes() const {
  switch (kind) {
    case StateKind::kScalar:
      return static_cast<uint64_t>(BitWidth(elem_type)) / 8;
    case StateKind::kArray:
      return static_cast<uint64_t>(BitWidth(elem_type)) / 8 * length;
    case StateKind::kMap:
      return static_cast<uint64_t>(capacity) * (key_bytes + value_bytes);
  }
  return 0;
}

uint32_t StateVar::ElementCount() const {
  switch (kind) {
    case StateKind::kScalar:
      return 1;
    case StateKind::kArray:
      return length == 0 ? 1 : length;
    case StateKind::kMap: {
      uint32_t n = slots != 0 ? slots : capacity;
      return n == 0 ? 1 : n;
    }
  }
  return 1;
}

uint32_t StateVar::ElementBytes() const {
  if (kind == StateKind::kMap) {
    uint32_t b = key_bytes + value_bytes;
    return b == 0 ? 4 : b;
  }
  uint32_t b = static_cast<uint32_t>(BitWidth(elem_type)) / 8;
  return b == 0 ? 1 : b;
}

uint32_t Function::NumInstructions() const {
  uint32_t n = 0;
  for (const auto& b : blocks) {
    n += static_cast<uint32_t>(b.instrs.size());
  }
  return n;
}

int Module::FindState(const std::string& name) const {
  for (size_t i = 0; i < state.size(); ++i) {
    if (state[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int Module::FindPacketField(const std::string& name) const {
  for (size_t i = 0; i < packet_fields.size(); ++i) {
    if (packet_fields[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int Module::FindApi(const std::string& name) const {
  for (size_t i = 0; i < apis.size(); ++i) {
    if (apis[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

const Function* Module::FindFunction(const std::string& name) const {
  for (const auto& f : functions) {
    if (f.name == name) {
      return &f;
    }
  }
  return nullptr;
}

uint32_t Module::InternApi(const std::string& name, uint8_t num_args, Type result) {
  int idx = FindApi(name);
  if (idx >= 0) {
    return static_cast<uint32_t>(idx);
  }
  apis.push_back(ApiInfo{name, num_args, result});
  return static_cast<uint32_t>(apis.size() - 1);
}

void InstallStandardPacketFields(Module& m) {
  m.packet_fields = {
      {"eth.type", Type::kI16, 12},
      {"ip.ihl", Type::kI8, 14},
      {"ip.tos", Type::kI8, 15},
      {"ip.len", Type::kI16, 16},
      {"ip.ttl", Type::kI8, 22},
      {"ip.proto", Type::kI8, 23},
      {"ip.csum", Type::kI16, 24},
      {"ip.src", Type::kI32, 26},
      {"ip.dst", Type::kI32, 30},
      {"tcp.sport", Type::kI16, 34},
      {"tcp.dport", Type::kI16, 36},
      {"tcp.seq", Type::kI32, 38},
      {"tcp.ack", Type::kI32, 42},
      {"tcp.off", Type::kI8, 46},
      {"tcp.flags", Type::kI8, 47},
      {"tcp.csum", Type::kI16, 48},
      {"pkt.len", Type::kI16, 0},       // metadata pseudo-fields
      {"pkt.payload_len", Type::kI16, 0},
      {"pkt.in_port", Type::kI16, 0},
      {"pkt.ts", Type::kI64, 0},
      {"pkt.payload", Type::kI8, 54},   // byte-indexed via dynamic index
  };
}

}  // namespace clara
