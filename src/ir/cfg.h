// Control-flow-graph utilities over IR functions: successor/predecessor
// maps, reverse postorder, back-edge (loop) detection, and simple reachability
// — the "GetCFG" step of the paper's Figure 3 algorithm.
#ifndef SRC_IR_CFG_H_
#define SRC_IR_CFG_H_

#include <cstdint>
#include <vector>

#include "src/ir/ir.h"

namespace clara {

struct Cfg {
  std::vector<std::vector<uint32_t>> succ;
  std::vector<std::vector<uint32_t>> pred;
  std::vector<uint32_t> reverse_postorder;  // block indices, entry first
  std::vector<bool> reachable;
  // Back edges (tail -> head) found by DFS; each marks a natural loop.
  std::vector<std::pair<uint32_t, uint32_t>> back_edges;
  // Per block: loop nesting depth (0 = not in a loop).
  std::vector<int> loop_depth;
};

Cfg BuildCfg(const Function& f);

// Blocks belonging to the natural loop of back edge (tail, head).
std::vector<uint32_t> NaturalLoop(const Cfg& cfg, uint32_t tail, uint32_t head);

}  // namespace clara

#endif  // SRC_IR_CFG_H_
