// Convenience builder for constructing IR functions instruction by
// instruction. Used by the AST lowering (src/lang) and by tests.
#ifndef SRC_IR_BUILDER_H_
#define SRC_IR_BUILDER_H_

#include <string>

#include "src/ir/ir.h"

namespace clara {

class IrBuilder {
 public:
  IrBuilder(Module& module, Function& func) : module_(module), func_(func) {}

  // Creates a block and returns its index. Does not change the insert point.
  uint32_t NewBlock(const std::string& label, int ast_region = -1);

  void SetInsertPoint(uint32_t block) { insert_ = block; }
  uint32_t insert_point() const { return insert_; }

  // Adds a named stack slot (a function local) and returns its index.
  uint32_t AddSlot(const std::string& name, Type type);
  int FindSlot(const std::string& name) const;

  Value Binary(Opcode op, Type type, Value a, Value b);
  Value Compare(Opcode op, Value a, Value b);
  Value Cast(Opcode op, Type to, Value v);
  Value Select(Type type, Value cond, Value if_true, Value if_false);

  Value LoadStack(uint32_t slot);
  void StoreStack(uint32_t slot, Value v);

  Value LoadPacket(uint32_t field, Value dyn_index = Value{});
  void StorePacket(uint32_t field, Value v, Value dyn_index = Value{});

  // State access: `sym` is a Module state index. For arrays/map backing
  // stores, `dyn_index` selects the element and `offset` addresses bytes
  // within it.
  Value LoadState(uint32_t sym, Type type, Value dyn_index = Value{}, int32_t offset = 0);
  void StoreState(uint32_t sym, Type type, Value v, Value dyn_index = Value{},
                  int32_t offset = 0);

  Value Call(const std::string& api, std::vector<Value> args, Type result);

  void Br(uint32_t target);
  void CondBr(Value cond, uint32_t if_true, uint32_t if_false);
  void Ret();

  // True if the current insert block already ends in a terminator.
  bool BlockTerminated() const;

  Module& module() { return module_; }
  Function& func() { return func_; }

 private:
  Instruction& Append(Instruction instr);
  uint32_t NextReg() { return func_.next_reg++; }

  Module& module_;
  Function& func_;
  uint32_t insert_ = 0;
};

}  // namespace clara

#endif  // SRC_IR_BUILDER_H_
