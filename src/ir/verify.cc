#include "src/ir/verify.h"

#include <set>
#include <sstream>

namespace clara {
namespace {

class Verifier {
 public:
  explicit Verifier(const Module& m) : m_(m) {}

  VerifyResult Run() {
    for (const auto& f : m_.functions) {
      VerifyFunction(f);
    }
    VerifyResult r;
    r.errors = std::move(errors_);
    r.ok = r.errors.empty();
    return r;
  }

 private:
  template <typename... Args>
  void Error(const Function& f, size_t block, Args&&... parts) {
    std::ostringstream os;
    os << f.name << " block " << block << ": ";
    (os << ... << parts);
    errors_.push_back(os.str());
  }

  void VerifyFunction(const Function& f) {
    // Pass 1: collect definitions.
    std::set<uint32_t> defined;
    for (size_t b = 0; b < f.blocks.size(); ++b) {
      for (const auto& i : f.blocks[b].instrs) {
        if (i.result == 0) {
          continue;
        }
        if (i.result >= f.next_reg) {
          Error(f, b, "register %", i.result, " >= next_reg ", f.next_reg);
        }
        if (!defined.insert(i.result).second) {
          Error(f, b, "register %", i.result, " defined more than once");
        }
      }
    }
    // Pass 2: structure and uses.
    for (size_t b = 0; b < f.blocks.size(); ++b) {
      const auto& instrs = f.blocks[b].instrs;
      if (instrs.empty()) {
        Error(f, b, "empty block");
        continue;
      }
      if (!IsTerminator(instrs.back().op)) {
        Error(f, b, "block does not end with a terminator");
      }
      for (size_t k = 0; k < instrs.size(); ++k) {
        const Instruction& i = instrs[k];
        if (IsTerminator(i.op) && k + 1 != instrs.size()) {
          Error(f, b, "terminator at position ", k, " is not last");
        }
        for (const auto& v : i.operands) {
          if (v.is_reg() && defined.count(v.reg) == 0) {
            Error(f, b, OpcodeName(i.op), " uses undefined register %", v.reg);
          }
        }
        switch (i.op) {
          case Opcode::kLoad:
          case Opcode::kStore:
            switch (i.space) {
              case AddressSpace::kStack:
                if (i.sym >= f.slots.size()) {
                  Error(f, b, "stack access to invalid slot ", i.sym);
                }
                break;
              case AddressSpace::kPacket:
                if (i.sym >= m_.packet_fields.size()) {
                  Error(f, b, "packet access to invalid field ", i.sym);
                }
                break;
              case AddressSpace::kState:
                if (i.sym >= m_.state.size()) {
                  Error(f, b, "state access to invalid symbol ", i.sym);
                }
                break;
              case AddressSpace::kNone:
                Error(f, b, "memory access without an address space");
                break;
            }
            break;
          case Opcode::kCall:
            if (i.callee >= m_.apis.size()) {
              Error(f, b, "call to unregistered API ", i.callee);
            }
            break;
          case Opcode::kBr:
            if (i.target0 >= f.blocks.size()) {
              Error(f, b, "br to invalid block ", i.target0);
            }
            break;
          case Opcode::kCondBr:
            if (i.target0 >= f.blocks.size() || i.target1 >= f.blocks.size()) {
              Error(f, b, "condbr to invalid block");
            }
            if (i.operands.empty()) {
              Error(f, b, "condbr without a condition");
            }
            break;
          default:
            break;
        }
      }
    }
  }

  const Module& m_;
  std::vector<std::string> errors_;
};

}  // namespace

VerifyResult VerifyModule(const Module& m) { return Verifier(m).Run(); }

}  // namespace clara
