#include "src/ir/classify.h"

namespace clara {

InstrClass Classify(const Instruction& instr) {
  switch (instr.op) {
    case Opcode::kLoad:
    case Opcode::kStore:
      return instr.space == AddressSpace::kState ? InstrClass::kStatefulMem
                                                 : InstrClass::kStatelessMem;
    case Opcode::kCall:
      return InstrClass::kApiCall;
    case Opcode::kBr:
    case Opcode::kCondBr:
    case Opcode::kRet:
      return InstrClass::kControl;
    default:
      return InstrClass::kCompute;
  }
}

BlockCounts& BlockCounts::operator+=(const BlockCounts& o) {
  compute += o.compute;
  stateless_mem += o.stateless_mem;
  stateful_mem += o.stateful_mem;
  api_calls += o.api_calls;
  control += o.control;
  return *this;
}

BlockCounts CountBlock(const BasicBlock& block) {
  BlockCounts c;
  for (const auto& i : block.instrs) {
    switch (Classify(i)) {
      case InstrClass::kCompute: ++c.compute; break;
      case InstrClass::kStatelessMem: ++c.stateless_mem; break;
      case InstrClass::kStatefulMem: ++c.stateful_mem; break;
      case InstrClass::kApiCall: ++c.api_calls; break;
      case InstrClass::kControl: ++c.control; break;
    }
  }
  return c;
}

BlockCounts CountFunction(const Function& func) {
  BlockCounts c;
  for (const auto& b : func.blocks) {
    c += CountBlock(b);
  }
  return c;
}

double ArithmeticIntensity(const BlockCounts& c) {
  uint32_t mem = c.Mem();
  if (mem == 0) {
    return static_cast<double>(c.compute);
  }
  return static_cast<double>(c.compute) / static_cast<double>(mem);
}

}  // namespace clara
