#include "src/ir/builder.h"

#include <cassert>
#include <utility>

namespace clara {

uint32_t IrBuilder::NewBlock(const std::string& label, int ast_region) {
  BasicBlock b;
  b.label = label;
  b.ast_region = ast_region;
  func_.blocks.push_back(std::move(b));
  return static_cast<uint32_t>(func_.blocks.size() - 1);
}

uint32_t IrBuilder::AddSlot(const std::string& name, Type type) {
  func_.slots.push_back(StackSlot{name, type});
  return static_cast<uint32_t>(func_.slots.size() - 1);
}

int IrBuilder::FindSlot(const std::string& name) const {
  for (size_t i = 0; i < func_.slots.size(); ++i) {
    if (func_.slots[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Instruction& IrBuilder::Append(Instruction instr) {
  assert(insert_ < func_.blocks.size());
  auto& blk = func_.blocks[insert_];
  blk.instrs.push_back(std::move(instr));
  return blk.instrs.back();
}

bool IrBuilder::BlockTerminated() const {
  const auto& blk = func_.blocks[insert_];
  return !blk.instrs.empty() && IsTerminator(blk.instrs.back().op);
}

Value IrBuilder::Binary(Opcode op, Type type, Value a, Value b) {
  Instruction i;
  i.op = op;
  i.type = type;
  i.result = NextReg();
  i.operands = {a, b};
  Append(std::move(i));
  return Value::Reg(func_.next_reg - 1);
}

Value IrBuilder::Compare(Opcode op, Value a, Value b) {
  Instruction i;
  i.op = op;
  i.type = Type::kI1;
  i.result = NextReg();
  i.operands = {a, b};
  Append(std::move(i));
  return Value::Reg(func_.next_reg - 1);
}

Value IrBuilder::Cast(Opcode op, Type to, Value v) {
  Instruction i;
  i.op = op;
  i.type = to;
  i.result = NextReg();
  i.operands = {v};
  Append(std::move(i));
  return Value::Reg(func_.next_reg - 1);
}

Value IrBuilder::Select(Type type, Value cond, Value if_true, Value if_false) {
  Instruction i;
  i.op = Opcode::kSelect;
  i.type = type;
  i.result = NextReg();
  i.operands = {cond, if_true, if_false};
  Append(std::move(i));
  return Value::Reg(func_.next_reg - 1);
}

Value IrBuilder::LoadStack(uint32_t slot) {
  Instruction i;
  i.op = Opcode::kLoad;
  i.type = func_.slots[slot].type;
  i.result = NextReg();
  i.space = AddressSpace::kStack;
  i.sym = slot;
  Append(std::move(i));
  return Value::Reg(func_.next_reg - 1);
}

void IrBuilder::StoreStack(uint32_t slot, Value v) {
  Instruction i;
  i.op = Opcode::kStore;
  i.type = func_.slots[slot].type;
  i.space = AddressSpace::kStack;
  i.sym = slot;
  i.operands = {v};
  Append(std::move(i));
}

Value IrBuilder::LoadPacket(uint32_t field, Value dyn_index) {
  Instruction i;
  i.op = Opcode::kLoad;
  i.type = module_.packet_fields[field].type;
  i.result = NextReg();
  i.space = AddressSpace::kPacket;
  i.sym = field;
  if (dyn_index.kind != Value::Kind::kNone) {
    i.has_dyn_index = true;
    i.operands.push_back(dyn_index);
  }
  Append(std::move(i));
  return Value::Reg(func_.next_reg - 1);
}

void IrBuilder::StorePacket(uint32_t field, Value v, Value dyn_index) {
  Instruction i;
  i.op = Opcode::kStore;
  i.type = module_.packet_fields[field].type;
  i.space = AddressSpace::kPacket;
  i.sym = field;
  i.operands = {v};
  if (dyn_index.kind != Value::Kind::kNone) {
    i.has_dyn_index = true;
    i.operands.push_back(dyn_index);
  }
  Append(std::move(i));
}

Value IrBuilder::LoadState(uint32_t sym, Type type, Value dyn_index, int32_t offset) {
  Instruction i;
  i.op = Opcode::kLoad;
  i.type = type;
  i.result = NextReg();
  i.space = AddressSpace::kState;
  i.sym = sym;
  i.offset = offset;
  if (dyn_index.kind != Value::Kind::kNone) {
    i.has_dyn_index = true;
    i.operands.push_back(dyn_index);
  }
  Append(std::move(i));
  return Value::Reg(func_.next_reg - 1);
}

void IrBuilder::StoreState(uint32_t sym, Type type, Value v, Value dyn_index, int32_t offset) {
  Instruction i;
  i.op = Opcode::kStore;
  i.type = type;
  i.space = AddressSpace::kState;
  i.sym = sym;
  i.offset = offset;
  i.operands = {v};
  if (dyn_index.kind != Value::Kind::kNone) {
    i.has_dyn_index = true;
    i.operands.push_back(dyn_index);
  }
  Append(std::move(i));
}

Value IrBuilder::Call(const std::string& api, std::vector<Value> args, Type result) {
  Instruction i;
  i.op = Opcode::kCall;
  i.type = result;
  i.callee = module_.InternApi(api, static_cast<uint8_t>(args.size()), result);
  i.operands = std::move(args);
  if (result != Type::kVoid) {
    i.result = NextReg();
  }
  Append(std::move(i));
  return result != Type::kVoid ? Value::Reg(func_.next_reg - 1) : Value{};
}

void IrBuilder::Br(uint32_t target) {
  Instruction i;
  i.op = Opcode::kBr;
  i.target0 = target;
  Append(std::move(i));
}

void IrBuilder::CondBr(Value cond, uint32_t if_true, uint32_t if_false) {
  Instruction i;
  i.op = Opcode::kCondBr;
  i.operands = {cond};
  i.target0 = if_true;
  i.target1 = if_false;
  Append(std::move(i));
}

void IrBuilder::Ret() {
  Instruction i;
  i.op = Opcode::kRet;
  Append(std::move(i));
}

}  // namespace clara
