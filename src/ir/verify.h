// IR well-formedness verifier: structural invariants that every lowered or
// synthesized module must satisfy. Run in tests and after optimization
// passes to catch malformed IR early.
#ifndef SRC_IR_VERIFY_H_
#define SRC_IR_VERIFY_H_

#include <string>
#include <vector>

#include "src/ir/ir.h"

namespace clara {

struct VerifyResult {
  bool ok = false;
  std::vector<std::string> errors;
};

// Checks, per function:
//  * every block is non-empty and ends with exactly one terminator,
//    with no terminator mid-block
//  * branch targets are valid block indices
//  * every result register is defined exactly once and is < next_reg
//  * every register operand refers to a defined register
//  * memory instructions carry a valid address space and symbol index
//  * call instructions reference a registered API
VerifyResult VerifyModule(const Module& m);

}  // namespace clara

#endif  // SRC_IR_VERIFY_H_
