#include <cstdio>
#include <cstdlib>

#include "src/elements/elements.h"

namespace clara {

const std::vector<ElementInfo>& ElementRegistry() {
  // Insight tags mirror Table 2's legend: which Clara analyses apply.
  static const std::vector<ElementInfo> kRegistry = {
      {"anonipaddr", false, {"prediction", "scale-out"}, [] { return MakeAnonIpAddr(); }},
      {"tcpack", false, {"prediction", "scale-out"}, [] { return MakeTcpAck(); }},
      {"udpipencap", false, {"prediction", "scale-out"}, [] { return MakeUdpIpEncap(); }},
      {"forcetcp", false, {"prediction", "scale-out"}, [] { return MakeForceTcp(); }},
      {"tcpresp", false, {"prediction", "scale-out"}, [] { return MakeTcpResp(); }},
      {"tcpgen", true, {"prediction", "scale-out", "coalescing"}, [] { return MakeTcpGen(); }},
      {"aggcounter", true, {"prediction", "scale-out", "coalescing"},
       [] { return MakeAggCounter(); }},
      {"timefilter", true, {"prediction", "scale-out", "coalescing"},
       [] { return MakeTimeFilter(); }},
      {"webtcp", true, {"prediction", "coalescing"}, [] { return MakeWebTcp(); }},
      {"cmsketch", true, {"algo-id", "reverse-porting", "prediction", "placement"},
       [] { return MakeCmSketch(); }},
      {"wepdecap", true, {"algo-id", "reverse-porting", "prediction", "placement"},
       [] { return MakeWepDecap(); }},
      {"iplookup", true, {"algo-id", "reverse-porting", "prediction", "placement"},
       [] { return MakeIpLookup(); }},
      {"dpi", true, {"prediction", "scale-out"}, [] { return MakeDpi(); }},
      {"firewall", true, {"reverse-porting", "placement", "scale-out"},
       [] { return MakeFirewall(); }},
      {"heavyhitter", true, {"prediction", "placement", "scale-out"},
       [] { return MakeHeavyHitter(); }},
      {"iprewriter", true, {"algo-id", "reverse-porting", "prediction", "placement"},
       [] { return MakeIpRewriter(); }},
      {"ipclassifier", true, {"algo-id", "reverse-porting", "prediction", "placement"},
       [] { return MakeIpClassifier(); }},
      {"dnsproxy", true, {"algo-id", "reverse-porting", "scale-out", "placement", "colocation"},
       [] { return MakeDnsProxy(); }},
      {"mazunat", true,
       {"reverse-porting", "prediction", "scale-out", "placement", "coalescing", "colocation"},
       [] { return MakeMazuNat(); }},
      {"udpcount", true,
       {"reverse-porting", "prediction", "scale-out", "placement", "coalescing", "colocation"},
       [] { return MakeUdpCount(); }},
      {"webgen", true,
       {"reverse-porting", "prediction", "scale-out", "placement", "coalescing", "colocation"},
       [] { return MakeWebGen(); }},
      // Extension elements beyond the paper's Table 2 suite.
      {"tokenbucket", true, {"prediction", "scale-out", "coalescing"},
       [] { return MakeTokenBucket(); }},
      {"synflood", true, {"prediction", "placement", "scale-out"},
       [] { return MakeSynFlood(); }},
  };
  return kRegistry;
}

Program MakeElementByName(const std::string& name) {
  for (const auto& e : ElementRegistry()) {
    if (e.name == name) {
      return e.make();
    }
  }
  std::fprintf(stderr, "unknown element: %s\n", name.c_str());
  std::abort();
}

}  // namespace clara
