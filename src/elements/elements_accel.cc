// Accelerator-eligible elements: procedural software forms plus ported
// variants that use the NIC engines (Figure 10), DPI, and heavy hitter.
#include "src/elements/body_util.h"
#include "src/elements/elements.h"
#include "src/nf/lpm.h"
#include "src/nf/packet.h"
#include "src/util/rng.h"

namespace clara {

Program MakeCmSketch(bool use_crc_accel) {
  Program p;
  p.name = use_crc_accel ? "cmsketch_accel" : "cmsketch";
  constexpr uint64_t kCols = 1024;
  constexpr int kRows = 4;
  p.state.push_back(ArrayState("sketch", Type::kI32, kRows * kCols));
  p.state.push_back(ScalarState("updates", Type::kI64));

  p.body = BodyOf(Api("ip_header"),
                  Decl("key", Type::kI32,
                       Bin(Opcode::kXor, PktField("ip.src"),
                           Bin(Opcode::kMul, PktField("ip.dst"), Lit(0x01000193ULL)))));
  for (int r = 0; r < kRows; ++r) {
    std::string h = "h" + std::to_string(r);
    if (use_crc_accel) {
      // Ported form: the CRC engine hashes the flow key directly.
      p.body.push_back(Decl(h, Type::kI32,
                            CallExpr("crc_hash_hw",
                                     BodyArgs(Bin(Opcode::kXor, Local("key"),
                                                  Lit(0x9e3779b9ULL * (r + 1) &
                                                      0xffffffffULL))),
                                     Type::kI32)));
    } else {
      // Software row hash: a procedural bitwise CRC over the seeded flow key
      // (the idiom the CRC engine replaces). Two unrolled bit-rounds per
      // iteration over 16 nibble steps.
      p.body.push_back(Decl(h, Type::kI32,
                            Bin(Opcode::kXor, Local("key"),
                                Lit(0x9e3779b9ULL * (r + 1) & 0xffffffffULL))));
      std::vector<StmtPtr> crc_body;
      for (int round = 0; round < 2; ++round) {
        std::vector<StmtPtr> then_body = BodyOf(Assign(
            h, Bin(Opcode::kXor, Bin(Opcode::kLShr, Local(h), Lit(1)), Lit(0xedb88320ULL))));
        std::vector<StmtPtr> else_body =
            BodyOf(Assign(h, Bin(Opcode::kLShr, Local(h), Lit(1))));
        crc_body.push_back(If(
            Cmp(Opcode::kIcmpNe, Bin(Opcode::kAnd, Local(h), Lit(1)), Lit(0)),
            std::move(then_body), std::move(else_body)));
      }
      p.body.push_back(
          For("cb" + std::to_string(r), Lit(0), Lit(16), std::move(crc_body)));
    }
    ExprPtr idx = Bin(Opcode::kAdd, Lit(static_cast<uint64_t>(r) * kCols),
                      Bin(Opcode::kAnd, Local(h), Lit(kCols - 1)));
    ExprPtr idx2 = Bin(Opcode::kAdd, Lit(static_cast<uint64_t>(r) * kCols),
                       Bin(Opcode::kAnd, Local(h), Lit(kCols - 1)));
    p.body.push_back(AssignStateAt("sketch", std::move(idx),
                                   Bin(Opcode::kAdd, StateAt("sketch", std::move(idx2)),
                                       Lit(1))));
  }
  p.body.push_back(
      AssignState("updates", Bin(Opcode::kAdd, StateRef("updates"), Lit(1))));
  p.body.push_back(Send(Lit(0)));
  return p;
}

Program MakeWepDecap(bool use_crc_accel) {
  Program p;
  p.name = use_crc_accel ? "wepdecap_accel" : "wepdecap";
  p.state.push_back(ArrayState("rc4_s", Type::kI8, 256));
  p.state.push_back(ScalarState("icv_fail", Type::kI64));
  p.state.push_back(ScalarState("decapped", Type::kI64));

  constexpr int kKsaIters = 32;  // abbreviated KSA (prefix-keyed schedule)
  p.body = BodyOf(Api("ip_header"));
  // KSA: initialize and swap-mix the RC4 state with a per-flow key.
  p.body.push_back(For("i", Lit(0), Lit(kKsaIters),
                       BodyOf(AssignStateAt("rc4_s", Local("i"), Local("i")))));
  p.body.push_back(Decl("j", Type::kI32, Lit(0)));
  p.body.push_back(Decl("keyb", Type::kI32, Lit(0)));
  p.body.push_back(For(
      "i2", Lit(0), Lit(kKsaIters),
      BodyOf(Assign("keyb",
                    Bin(Opcode::kLShr, PktField("ip.src"),
                        Bin(Opcode::kAnd, Local("i2"), Lit(24)))),
             Assign("j", Bin(Opcode::kAnd,
                             Bin(Opcode::kAdd,
                                 Bin(Opcode::kAdd, Local("j"), StateAt("rc4_s", Local("i2"))),
                                 Local("keyb")),
                             Lit(kKsaIters - 1))),
             Decl("tmp", Type::kI8, StateAt("rc4_s", Local("i2"))),
             AssignStateAt("rc4_s", Local("i2"), StateAt("rc4_s", Local("j"))),
             AssignStateAt("rc4_s", Local("j"), Local("tmp")))));
  // PRGA over the payload prefix: decrypt in place.
  p.body.push_back(Decl("x", Type::kI32, Lit(0)));
  p.body.push_back(Decl("y", Type::kI32, Lit(0)));
  p.body.push_back(Decl("n", Type::kI32, PktField("pkt.payload_len")));
  p.body.push_back(If(Cmp(Opcode::kIcmpUgt, Local("n"), Lit(48)),
                      BodyOf(Assign("n", Lit(48)))));
  p.body.push_back(For(
      "k", Lit(0), Local("n"),
      BodyOf(Assign("x", Bin(Opcode::kAnd, Bin(Opcode::kAdd, Local("x"), Lit(1)),
                             Lit(kKsaIters - 1))),
             Assign("y", Bin(Opcode::kAnd,
                             Bin(Opcode::kAdd, Local("y"), StateAt("rc4_s", Local("x"))),
                             Lit(kKsaIters - 1))),
             Decl("ks", Type::kI8,
                  StateAt("rc4_s", Bin(Opcode::kAnd,
                                       Bin(Opcode::kAdd, StateAt("rc4_s", Local("x")),
                                           StateAt("rc4_s", Local("y"))),
                                       Lit(kKsaIters - 1)))),
             AssignPayload(Local("k"), Bin(Opcode::kXor, PayloadAt(Local("k")), Local("ks"))))));
  // ICV: CRC32 over the decrypted payload. The software loop walks the whole
  // payload (the prefix buffer wraps); the ported form streams it through
  // the CRC engine instead.
  p.body.push_back(Decl("icv_len", Type::kI32, PktField("pkt.payload_len")));
  p.body.push_back(If(Cmp(Opcode::kIcmpUgt, Local("icv_len"), Lit(256)),
                      BodyOf(Assign("icv_len", Lit(256)))));
  if (use_crc_accel) {
    p.body.push_back(Decl("icv", Type::kI32, CallExpr("crc32_hw", BodyArgs(Local("icv_len")),
                                                      Type::kI32)));
  } else {
    p.body.push_back(Decl("icv", Type::kI32, Lit(0xffffffffULL)));
    std::vector<StmtPtr> bits;
    for (int b = 0; b < 8; ++b) {
      std::vector<StmtPtr> then_body = BodyOf(Assign(
          "icv",
          Bin(Opcode::kXor, Bin(Opcode::kLShr, Local("icv"), Lit(1)), Lit(0xedb88320ULL))));
      std::vector<StmtPtr> else_body =
          BodyOf(Assign("icv", Bin(Opcode::kLShr, Local("icv"), Lit(1))));
      bits.push_back(If(
          Cmp(Opcode::kIcmpNe, Bin(Opcode::kAnd, Local("icv"), Lit(1)), Lit(0)),
          std::move(then_body), std::move(else_body)));
    }
    std::vector<StmtPtr> crc_loop =
        BodyOf(Assign("icv", Bin(Opcode::kXor, Local("icv"), PayloadAt(Local("c")))));
    for (auto& b : bits) {
      crc_loop.push_back(std::move(b));
    }
    p.body.push_back(For("c", Lit(0), Local("icv_len"), std::move(crc_loop)));
    p.body.push_back(Assign("icv", Bin(Opcode::kXor, Local("icv"), Lit(0xffffffffULL))));
  }
  std::vector<StmtPtr> bad = BodyOf(
      AssignState("icv_fail", Bin(Opcode::kAdd, StateRef("icv_fail"), Lit(1))), Drop());
  p.body.push_back(
      If(Cmp(Opcode::kIcmpEq, Bin(Opcode::kAnd, Local("icv"), Lit(0xff)), Lit(0xee)),
         std::move(bad)));
  p.body.push_back(
      AssignState("decapped", Bin(Opcode::kAdd, StateRef("decapped"), Lit(1))));
  p.body.push_back(Send(Lit(0)));
  return p;
}

Program MakeIpLookup(int num_rules, bool use_lpm_accel, bool use_flow_cache, uint64_t seed) {
  Program p;
  p.name = use_lpm_accel ? "iplookup_accel" : "iplookup";
  if (use_flow_cache) {
    p.name += "_fc";
  }

  // Build a real trie over random prefixes and embed its flattened form.
  LpmTable table;
  Rng rng(seed);
  table.Insert(0, 0, 15);  // default route, as any deployed FIB has
  for (int r = 0; r < num_rules; ++r) {
    int plen = static_cast<int>(rng.NextInt(8, 24));
    uint32_t prefix = static_cast<uint32_t>(rng.NextU64()) &
                      ~((1u << (32 - plen)) - 1);
    table.Insert(prefix, plen, static_cast<uint32_t>(rng.NextBounded(16)));
  }
  std::vector<uint32_t> flat = table.Flatten();
  std::vector<uint64_t> init(flat.begin(), flat.end());
  const uint32_t trie_len = static_cast<uint32_t>(init.size());
  p.state.push_back(ArrayState("trie", Type::kI32, trie_len, std::move(init)));
  p.state.push_back(ScalarState("lookups", Type::kI64));
  p.state.push_back(ScalarState("misses", Type::kI64));

  p.body = BodyOf(Api("ip_header"),
                  Decl("addr", Type::kI32, PktField("ip.dst")),
                  AssignState("lookups", Bin(Opcode::kAdd, StateRef("lookups"), Lit(1))));
  if (use_flow_cache) {
    // Fast path: the flow-cache engine memoizes per-destination results.
    p.body.push_back(Decl("cached", Type::kI32,
                          CallExpr("flow_cache_get", BodyArgs(Local("addr")), Type::kI32)));
    p.body.push_back(If(Cmp(Opcode::kIcmpNe, Local("cached"), Lit(0)),
                        BodyOf(Send(Bin(Opcode::kSub, Local("cached"), Lit(1))))));
  }
  if (use_lpm_accel) {
    p.body.push_back(
        Decl("hop1", Type::kI32, CallExpr("lpm_hw", BodyArgs(Local("addr")), Type::kI32)));
    std::vector<StmtPtr> miss = BodyOf(
        AssignState("misses", Bin(Opcode::kAdd, StateRef("misses"), Lit(1))), Drop());
    p.body.push_back(
        If(Cmp(Opcode::kIcmpEq, Local("hop1"), Lit(0)), std::move(miss)));
    if (use_flow_cache) {
      p.body.push_back(Api("flow_cache_put", BodyArgs(Local("addr"), Local("hop1"))));
    }
    p.body.push_back(Send(Bin(Opcode::kSub, Local("hop1"), Lit(1))));
    return p;
  }
  // Software walk: the unibit-trie pointer chase.
  p.body.push_back(Decl("node", Type::kI32, Lit(0)));
  p.body.push_back(Decl("best", Type::kI32, Lit(0)));
  p.body.push_back(Decl("stop", Type::kI8, Lit(0)));
  std::vector<StmtPtr> live = BodyOf(
      Decl("rule", Type::kI32,
           StateAt("trie", Bin(Opcode::kAdd, Bin(Opcode::kMul, Local("node"), Lit(3)),
                               Lit(2)))),
      If(Cmp(Opcode::kIcmpNe, Local("rule"), Lit(0)),
         BodyOf(Assign("best", Local("rule")))),
      Decl("bit", Type::kI32,
           Bin(Opcode::kAnd,
               Bin(Opcode::kLShr, Local("addr"), Bin(Opcode::kSub, Lit(31), Local("d"))),
               Lit(1))),
      Decl("next", Type::kI32,
           StateAt("trie",
                   Bin(Opcode::kAdd, Bin(Opcode::kMul, Local("node"), Lit(3)), Local("bit")))),
      If(Cmp(Opcode::kIcmpEq, Local("next"), Lit(0)),
         BodyOf(Assign("stop", Lit(1))),
         BodyOf(Assign("node", Bin(Opcode::kSub, Local("next"), Lit(1))))));
  p.body.push_back(For("d", Lit(0), Lit(25),
                       BodyOf(If(Cmp(Opcode::kIcmpEq, Local("stop"), Lit(0)),
                                 std::move(live)))));
  std::vector<StmtPtr> miss = BodyOf(
      AssignState("misses", Bin(Opcode::kAdd, StateRef("misses"), Lit(1))), Drop());
  p.body.push_back(If(Cmp(Opcode::kIcmpEq, Local("best"), Lit(0)), std::move(miss)));
  if (use_flow_cache) {
    p.body.push_back(Api("flow_cache_put", BodyArgs(Local("addr"), Local("best"))));
  }
  p.body.push_back(Send(Bin(Opcode::kSub, Local("best"), Lit(1))));
  return p;
}

Program MakeDpi(int scan_bytes) {
  Program p;
  p.name = "dpi";
  // Pattern automaton over payload bytes ("GET " signature).
  p.state.push_back(ArrayState("pattern", Type::kI8, 4, {0x47, 0x45, 0x54, 0x20}));
  p.state.push_back(ScalarState("matched", Type::kI64));
  p.state.push_back(ScalarState("scanned", Type::kI64));
  if (scan_bytes > kMaxPayloadPrefix) {
    scan_bytes = kMaxPayloadPrefix;
  }
  p.body = BodyOf(
      Api("ip_header"), Api("tcp_header"),
      Decl("stage", Type::kI32, Lit(0)),
      Decl("hit", Type::kI8, Lit(0)),
      Decl("limit", Type::kI32, PktField("pkt.payload_len")),
      If(Cmp(Opcode::kIcmpUgt, Local("limit"), Lit(static_cast<uint64_t>(scan_bytes))),
         BodyOf(Assign("limit", Lit(static_cast<uint64_t>(scan_bytes))))));
  std::vector<StmtPtr> advance = BodyOf(
      Assign("stage", Bin(Opcode::kAdd, Local("stage"), Lit(1))),
      If(Cmp(Opcode::kIcmpEq, Local("stage"), Lit(4)),
         BodyOf(Assign("hit", Lit(1)), Assign("stage", Lit(0)))));
  std::vector<StmtPtr> reset = BodyOf(Assign("stage", Lit(0)));
  p.body.push_back(For(
      "i", Lit(0), Local("limit"),
      BodyOf(Decl("b", Type::kI8, PayloadAt(Local("i"))),
             If(Cmp(Opcode::kIcmpEq, Local("b"), StateAt("pattern", Local("stage"))),
                std::move(advance), std::move(reset)))));
  p.body.push_back(
      AssignState("scanned", Bin(Opcode::kAdd, StateRef("scanned"), Lit(1))));
  std::vector<StmtPtr> on_hit = BodyOf(
      AssignState("matched", Bin(Opcode::kAdd, StateRef("matched"), Lit(1))),
      AssignPkt("ip.tos", Lit(1)));
  p.body.push_back(If(Cmp(Opcode::kIcmpNe, Local("hit"), Lit(0)), std::move(on_hit)));
  p.body.push_back(Send(Lit(0)));
  return p;
}

Program MakeHeavyHitter(uint32_t threshold) {
  Program p;
  p.name = "heavyhitter";
  constexpr uint64_t kCols = 2048;
  p.state.push_back(ArrayState("hh_sketch", Type::kI32, 2 * kCols));
  p.state.push_back(ScalarState("hh_count", Type::kI64));
  p.state.push_back(ScalarState("total", Type::kI64));
  p.body = BodyOf(
      Api("ip_header"),
      Decl("key", Type::kI32, Bin(Opcode::kXor, PktField("ip.src"),
                                  Bin(Opcode::kShl, PktField("ip.dst"), Lit(1)))),
      Decl("h1", Type::kI32, Bin(Opcode::kMul, Local("key"), Lit(0x9e3779b1ULL))),
      Assign("h1", Bin(Opcode::kAnd, Bin(Opcode::kLShr, Local("h1"), Lit(16)),
                       Lit(kCols - 1))),
      Decl("h2", Type::kI32, Bin(Opcode::kMul, Local("key"), Lit(0x85ebca6bULL))),
      Assign("h2", Bin(Opcode::kAnd, Bin(Opcode::kLShr, Local("h2"), Lit(16)),
                       Lit(kCols - 1))),
      AssignStateAt("hh_sketch", Local("h1"),
                    Bin(Opcode::kAdd, StateAt("hh_sketch", Local("h1")), Lit(1))),
      AssignStateAt("hh_sketch", Bin(Opcode::kAdd, Local("h2"), Lit(kCols)),
                    Bin(Opcode::kAdd,
                        StateAt("hh_sketch", Bin(Opcode::kAdd, Local("h2"), Lit(kCols))),
                        Lit(1))),
      Decl("est", Type::kI32, StateAt("hh_sketch", Local("h1"))),
      Decl("est2", Type::kI32,
           StateAt("hh_sketch", Bin(Opcode::kAdd, Local("h2"), Lit(kCols)))),
      If(Cmp(Opcode::kIcmpUlt, Local("est2"), Local("est")),
         BodyOf(Assign("est", Local("est2")))),
      AssignState("total", Bin(Opcode::kAdd, StateRef("total"), Lit(1))));
  std::vector<StmtPtr> heavy = BodyOf(
      AssignState("hh_count", Bin(Opcode::kAdd, StateRef("hh_count"), Lit(1))),
      AssignPkt("ip.tos", Lit(4)));
  p.body.push_back(If(
      Cmp(Opcode::kIcmpUgt, Local("est"), Lit(threshold)), std::move(heavy)));
  p.body.push_back(Send(Lit(0)));
  return p;
}

}  // namespace clara
