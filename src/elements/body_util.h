// Internal helpers for element construction: variadic statement-list and
// common state-declaration builders. Implementation detail of clara_elements.
#ifndef SRC_ELEMENTS_BODY_UTIL_H_
#define SRC_ELEMENTS_BODY_UTIL_H_

#include <utility>
#include <vector>

#include "src/lang/ast.h"

namespace clara {

template <typename... S>
std::vector<StmtPtr> BodyOf(S... stmts) {
  std::vector<StmtPtr> body;
  (body.push_back(std::move(stmts)), ...);
  return body;
}

template <typename... E>
std::vector<ExprPtr> BodyArgs(E... exprs) {
  std::vector<ExprPtr> args;
  (args.push_back(std::move(exprs)), ...);
  return args;
}

inline StateDecl ScalarState(const std::string& name, Type t = Type::kI32) {
  StateDecl d;
  d.name = name;
  d.kind = StateKind::kScalar;
  d.elem_type = t;
  return d;
}

inline StateDecl ArrayState(const std::string& name, Type t, uint32_t length,
                            std::vector<uint64_t> init = {}) {
  StateDecl d;
  d.name = name;
  d.kind = StateKind::kArray;
  d.elem_type = t;
  d.length = length;
  d.init = std::move(init);
  return d;
}

inline StateDecl MapState(const std::string& name, std::vector<Type> keys,
                          std::vector<ValueField> values, uint32_t capacity,
                          MapImpl impl = MapImpl::kNicFixedBucket) {
  StateDecl d;
  d.name = name;
  d.kind = StateKind::kMap;
  d.key_fields = std::move(keys);
  d.value_fields = std::move(values);
  d.capacity = capacity;
  d.impl = impl;
  return d;
}

}  // namespace clara

#endif  // SRC_ELEMENTS_BODY_UTIL_H_
