// The evaluated NF element suite (paper Table 2), written in the mini-Click
// NF language. Each factory returns a fresh Program; parameterized factories
// expose the porting/workload variants used by Figures 1, 10, 13.
//
// Maps default to the NIC fixed-bucket implementation (the reverse-ported
// form, §3.3); pass MapImpl::kHostLinearProbe to analyze the original host
// structure instead.
#ifndef SRC_ELEMENTS_ELEMENTS_H_
#define SRC_ELEMENTS_ELEMENTS_H_

#include <functional>
#include <string>
#include <vector>

#include "src/lang/ast.h"

namespace clara {

// ---- Stateless header-manipulation elements ----
Program MakeAnonIpAddr();   // address anonymization by keyed mixing
Program MakeTcpAck();       // ACK generation/validation arithmetic
Program MakeUdpIpEncap();   // UDP/IP encapsulation with checksum
Program MakeForceTcp();     // coerce packets into well-formed TCP
Program MakeTcpResp();      // craft TCP responses (swap/reply logic)

// ---- Simple stateful elements ----
Program MakeTcpGen();       // TCP traffic generator; many correlated scalars
Program MakeAggCounter();   // aggregate counters indexed by address hash
Program MakeTimeFilter();   // timestamp-window filtering
Program MakeWebTcp();       // web-server-ish TCP state machine scalars

// ---- Accelerator-eligible elements ----
// use_accel selects the ported version that calls the hardware engine
// instead of the procedural software loop (Figure 10's Clara port).
Program MakeCmSketch(bool use_crc_accel = false);
Program MakeWepDecap(bool use_crc_accel = false);
// iplookup embeds a trie over `num_rules` random prefixes (Figure 10c
// sweeps this); use_lpm_accel = ported form; use_flow_cache adds the flow
// cache fast path (Figure 1 LPM variants).
Program MakeIpLookup(int num_rules = 128, bool use_lpm_accel = false,
                     bool use_flow_cache = false, uint64_t seed = 99);

// ---- Flow-stateful / classifier elements ----
Program MakeFirewall(MapImpl impl = MapImpl::kNicFixedBucket);
Program MakeDpi(int scan_bytes = 48);       // payload pattern scan
Program MakeHeavyHitter(uint32_t threshold = 64);
Program MakeIpRewriter();
Program MakeIpClassifier();

// ---- Extension elements (beyond the paper's Table 2 suite) ----
Program MakeTokenBucket(uint32_t rate_per_ms = 64, uint32_t burst = 256);
Program MakeSynFlood(uint32_t threshold = 128);

// ---- Complex applications ----
Program MakeDnsProxy();
Program MakeMazuNat(bool use_checksum_accel = false);
Program MakeUdpCount();
Program MakeWebGen();

// ---- Registry (Table 2) ----
struct ElementInfo {
  std::string name;
  bool stateful;
  // Insight classes (Table 2 legend): subset of
  // {prediction, reverse-porting, algo-id, scale-out, placement, coalescing,
  //  colocation}.
  std::vector<std::string> insights;
  std::function<Program()> make;
};

const std::vector<ElementInfo>& ElementRegistry();

// Builds the element by registry name; aborts on unknown names.
Program MakeElementByName(const std::string& name);

}  // namespace clara

#endif  // SRC_ELEMENTS_ELEMENTS_H_
