// Stateless header-manipulation elements and simple stateful elements.
#include "src/elements/body_util.h"
#include "src/elements/elements.h"

namespace clara {

Program MakeAnonIpAddr() {
  Program p;
  p.name = "anonipaddr";
  p.body = BodyOf(
      Api("ip_header"),
      Decl("src", Type::kI32, PktField("ip.src")),
      Decl("dst", Type::kI32, PktField("ip.dst")),
      // Keyed avalanche mixing, two rounds per address (prefix-preserving
      // anonymizers do comparable bit surgery).
      Assign("src", Bin(Opcode::kXor, Local("src"), Bin(Opcode::kLShr, Local("src"), Lit(13)))),
      Assign("src", Bin(Opcode::kMul, Local("src"), Lit(0x85ebca6bULL))),
      Assign("src", Bin(Opcode::kXor, Local("src"), Bin(Opcode::kLShr, Local("src"), Lit(16)))),
      Assign("dst", Bin(Opcode::kXor, Local("dst"), Bin(Opcode::kLShr, Local("dst"), Lit(13)))),
      Assign("dst", Bin(Opcode::kMul, Local("dst"), Lit(0xc2b2ae35ULL))),
      Assign("dst", Bin(Opcode::kXor, Local("dst"), Bin(Opcode::kLShr, Local("dst"), Lit(16)))),
      // Keep the subnet class byte so routing stays plausible.
      AssignPkt("ip.src", Bin(Opcode::kOr, Bin(Opcode::kAnd, Local("src"), Lit(0x00ffffffULL)),
                              Bin(Opcode::kAnd, PktField("ip.src"), Lit(0xff000000ULL)))),
      AssignPkt("ip.dst", Bin(Opcode::kOr, Bin(Opcode::kAnd, Local("dst"), Lit(0x00ffffffULL)),
                              Bin(Opcode::kAnd, PktField("ip.dst"), Lit(0xff000000ULL)))),
      Api("checksum_update"),
      Send(Lit(0)));
  return p;
}

Program MakeTcpAck() {
  Program p;
  p.name = "tcpack";
  std::vector<StmtPtr> not_tcp = BodyOf(Drop());
  std::vector<StmtPtr> syn_case = BodyOf(
      AssignPkt("tcp.ack", Bin(Opcode::kAdd, PktField("tcp.seq"), Lit(1))),
      AssignPkt("tcp.flags", Lit(0x12)));  // SYN|ACK
  std::vector<StmtPtr> data_case = BodyOf(
      Decl("datalen", Type::kI32,
           Bin(Opcode::kSub, PktField("ip.len"),
               Bin(Opcode::kShl,
                   Bin(Opcode::kAdd, PktField("ip.ihl"), PktField("tcp.off")), Lit(2)))),
      AssignPkt("tcp.ack", Bin(Opcode::kAdd, PktField("tcp.seq"), Local("datalen"))),
      AssignPkt("tcp.flags", Lit(0x10)));  // ACK
  p.body = BodyOf(
      Api("ip_header"), Api("tcp_header"),
      If(Cmp(Opcode::kIcmpNe, PktField("ip.proto"), Lit(6)), std::move(not_tcp)),
      If(Cmp(Opcode::kIcmpNe, Bin(Opcode::kAnd, PktField("tcp.flags"), Lit(0x02)), Lit(0)),
         std::move(syn_case), std::move(data_case)),
      Send(Lit(0)));
  return p;
}

Program MakeUdpIpEncap() {
  Program p;
  p.name = "udpipencap";
  p.body = BodyOf(
      Api("ip_header"),
      Decl("paylen", Type::kI32, PktField("pkt.payload_len")),
      AssignPkt("eth.type", Lit(0x0800)),
      AssignPkt("ip.ihl", Lit(5)),
      AssignPkt("ip.tos", Lit(0)),
      AssignPkt("ip.ttl", Lit(64)),
      AssignPkt("ip.proto", Lit(17)),
      AssignPkt("ip.len", Bin(Opcode::kAdd, Local("paylen"), Lit(28))),
      AssignPkt("tcp.sport", Lit(6767)),
      AssignPkt("tcp.dport", Lit(6767)),
      // UDP length shares the TCP seq field slot in our simplified layout.
      AssignPkt("tcp.seq", Bin(Opcode::kAdd, Local("paylen"), Lit(8))),
      Api("checksum_update"),
      Send(Lit(0)));
  return p;
}

Program MakeForceTcp() {
  Program p;
  p.name = "forcetcp";
  std::vector<StmtPtr> fix_proto = BodyOf(
      AssignPkt("ip.proto", Lit(6)),
      AssignPkt("tcp.off", Lit(5)),
      AssignPkt("tcp.flags", Lit(0x10)),
      AssignPkt("ip.len",
                Bin(Opcode::kAdd, PktField("pkt.payload_len"), Lit(40))));
  std::vector<StmtPtr> fix_flags = BodyOf(
      // Strip illegal SYN+FIN combinations.
      AssignPkt("tcp.flags", Bin(Opcode::kAnd, PktField("tcp.flags"), Lit(0xfe))));
  std::vector<StmtPtr> fix_off = BodyOf(AssignPkt("tcp.off", Lit(5)));
  p.body = BodyOf(
      Api("ip_header"), Api("tcp_header"),
      If(Cmp(Opcode::kIcmpNe, PktField("ip.proto"), Lit(6)), std::move(fix_proto)),
      If(Cmp(Opcode::kIcmpEq, Bin(Opcode::kAnd, PktField("tcp.flags"), Lit(0x03)), Lit(0x03)),
         std::move(fix_flags)),
      If(Cmp(Opcode::kIcmpUlt, PktField("tcp.off"), Lit(5)), std::move(fix_off)),
      Api("checksum_update"),
      Send(Lit(0)));
  return p;
}

Program MakeTcpResp() {
  Program p;
  p.name = "tcpresp";
  std::vector<StmtPtr> not_tcp = BodyOf(Drop());
  std::vector<StmtPtr> rst_case = BodyOf(Drop());
  p.body = BodyOf(
      Api("ip_header"), Api("tcp_header"),
      If(Cmp(Opcode::kIcmpNe, PktField("ip.proto"), Lit(6)), std::move(not_tcp)),
      If(Cmp(Opcode::kIcmpNe, Bin(Opcode::kAnd, PktField("tcp.flags"), Lit(0x04)), Lit(0)),
         std::move(rst_case)),
      // Swap endpoints to turn the packet into its own response.
      Decl("tmp_ip", Type::kI32, PktField("ip.src")),
      AssignPkt("ip.src", PktField("ip.dst")),
      AssignPkt("ip.dst", Local("tmp_ip")),
      Decl("tmp_port", Type::kI16, PktField("tcp.sport")),
      AssignPkt("tcp.sport", PktField("tcp.dport")),
      AssignPkt("tcp.dport", Local("tmp_port")),
      Decl("old_seq", Type::kI32, PktField("tcp.seq")),
      AssignPkt("tcp.seq", PktField("tcp.ack")),
      Decl("datalen", Type::kI32,
           Bin(Opcode::kSub, PktField("ip.len"),
               Bin(Opcode::kShl,
                   Bin(Opcode::kAdd, PktField("ip.ihl"), PktField("tcp.off")), Lit(2)))),
      Decl("acklen", Type::kI32, Local("datalen")),
      If(Cmp(Opcode::kIcmpEq, Local("datalen"), Lit(0)),
         BodyOf(Assign("acklen", Lit(1)))),
      AssignPkt("tcp.ack", Bin(Opcode::kAdd, Local("old_seq"), Local("acklen"))),
      AssignPkt("tcp.flags", Lit(0x10)),
      AssignPkt("ip.ttl", Lit(64)),
      Api("checksum_update"),
      Send(Lit(0)));
  return p;
}

Program MakeTcpGen() {
  Program p;
  p.name = "tcpgen";
  // Correlated scalar groups (paper §5.6): (src_port, dst_port) are used
  // when stamping headers; (tcp_state, send_next, recv_next) on the ACK
  // path; good_pkt / bad_pkt are mutually exclusive outcome counters.
  p.state.push_back(ScalarState("src_port"));
  p.state.push_back(ScalarState("dst_port"));
  p.state.push_back(ScalarState("tcp_state"));
  p.state.push_back(ScalarState("send_next"));
  p.state.push_back(ScalarState("recv_next"));
  p.state.push_back(ScalarState("good_pkt", Type::kI64));
  p.state.push_back(ScalarState("bad_pkt", Type::kI64));

  std::vector<StmtPtr> ack_ok = BodyOf(
      AssignState("tcp_state", Lit(2)),
      AssignState("send_next",
                  Bin(Opcode::kAdd, StateRef("send_next"), PktField("pkt.payload_len"))),
      AssignState("recv_next", Bin(Opcode::kAdd, PktField("tcp.seq"), Lit(1))),
      AssignState("good_pkt", Bin(Opcode::kAdd, StateRef("good_pkt"), Lit(1))));
  std::vector<StmtPtr> ack_bad = BodyOf(
      AssignState("bad_pkt", Bin(Opcode::kAdd, StateRef("bad_pkt"), Lit(1))));
  std::vector<StmtPtr> on_ack = BodyOf(
      If(Cmp(Opcode::kIcmpEq, PktField("tcp.ack"), StateRef("send_next")),
         std::move(ack_ok), std::move(ack_bad)));

  p.body = BodyOf(
      Api("ip_header"), Api("tcp_header"),
      // Stamp the generated flow's ports.
      AssignPkt("tcp.sport", Bin(Opcode::kAnd, StateRef("src_port"), Lit(0xffff))),
      AssignPkt("tcp.dport", Bin(Opcode::kAnd, StateRef("dst_port"), Lit(0xffff))),
      AssignState("src_port", Bin(Opcode::kAdd, StateRef("src_port"), Lit(1))),
      AssignPkt("tcp.seq", StateRef("send_next")),
      If(Cmp(Opcode::kIcmpNe, Bin(Opcode::kAnd, PktField("tcp.flags"), Lit(0x10)), Lit(0)),
         std::move(on_ack)),
      Api("checksum_update"),
      Send(Lit(0)));
  return p;
}

Program MakeAggCounter() {
  Program p;
  p.name = "aggcounter";
  p.state.push_back(ArrayState("counts", Type::kI32, 1024));
  p.state.push_back(ScalarState("total_pkts", Type::kI64));
  p.state.push_back(ScalarState("total_bytes", Type::kI64));
  p.body = BodyOf(
      Api("ip_header"),
      Decl("h", Type::kI32, Bin(Opcode::kXor, PktField("ip.src"), PktField("ip.dst"))),
      Assign("h", Bin(Opcode::kMul, Local("h"), Lit(0x9e3779b1ULL))),
      Assign("h", Bin(Opcode::kLShr, Local("h"), Lit(22))),
      AssignStateAt("counts", Bin(Opcode::kAnd, Local("h"), Lit(1023)),
                    Bin(Opcode::kAdd,
                        StateAt("counts", Bin(Opcode::kAnd, Local("h"), Lit(1023))), Lit(1))),
      AssignState("total_pkts", Bin(Opcode::kAdd, StateRef("total_pkts"), Lit(1))),
      AssignState("total_bytes",
                  Bin(Opcode::kAdd, StateRef("total_bytes"), PktField("pkt.len"))),
      Send(Lit(0)));
  return p;
}

Program MakeTimeFilter() {
  Program p;
  p.name = "timefilter";
  p.state.push_back(ScalarState("window_start", Type::kI64));
  p.state.push_back(ScalarState("window_count"));
  p.state.push_back(ScalarState("last_ts", Type::kI64));
  p.state.push_back(ScalarState("dropped", Type::kI64));
  p.state.push_back(ScalarState("admitted", Type::kI64));

  std::vector<StmtPtr> new_window = BodyOf(
      AssignState("window_start", Local("ts")),
      AssignState("window_count", Lit(0)));
  std::vector<StmtPtr> over_limit = BodyOf(
      AssignState("dropped", Bin(Opcode::kAdd, StateRef("dropped"), Lit(1))),
      Drop());
  p.body = BodyOf(
      Api("ip_header"),
      Decl("ts", Type::kI64, PktField("pkt.ts")),
      If(Cmp(Opcode::kIcmpUgt, Bin(Opcode::kSub, Local("ts"), StateRef("window_start")),
             Lit(1000000000ULL)),
         std::move(new_window)),
      AssignState("window_count", Bin(Opcode::kAdd, StateRef("window_count"), Lit(1))),
      AssignState("last_ts", Local("ts")),
      If(Cmp(Opcode::kIcmpUgt, StateRef("window_count"), Lit(4096)), std::move(over_limit)),
      AssignState("admitted", Bin(Opcode::kAdd, StateRef("admitted"), Lit(1))),
      Send(Lit(0)));
  return p;
}

Program MakeWebTcp() {
  Program p;
  p.name = "webtcp";
  // Connection-machine scalars with two natural clusters:
  // (conn_state, cur_seq, cur_ack) and (bytes_sent, bytes_acked).
  p.state.push_back(ScalarState("conn_state"));
  p.state.push_back(ScalarState("cur_seq"));
  p.state.push_back(ScalarState("cur_ack"));
  p.state.push_back(ScalarState("bytes_sent", Type::kI64));
  p.state.push_back(ScalarState("bytes_acked", Type::kI64));
  p.state.push_back(ScalarState("retx_count", Type::kI64));
  p.state.push_back(ScalarState("fin_count", Type::kI64));

  std::vector<StmtPtr> on_syn = BodyOf(
      AssignState("conn_state", Lit(1)),
      AssignState("cur_seq", PktField("tcp.seq")),
      AssignState("cur_ack", Bin(Opcode::kAdd, PktField("tcp.seq"), Lit(1))));
  std::vector<StmtPtr> in_order = BodyOf(
      AssignState("conn_state", Lit(2)),
      AssignState("cur_seq", PktField("tcp.seq")),
      AssignState("cur_ack",
                  Bin(Opcode::kAdd, PktField("tcp.seq"), PktField("pkt.payload_len"))),
      AssignState("bytes_sent",
                  Bin(Opcode::kAdd, StateRef("bytes_sent"), PktField("pkt.payload_len"))),
      AssignState("bytes_acked",
                  Bin(Opcode::kAdd, StateRef("bytes_acked"), PktField("pkt.payload_len"))));
  std::vector<StmtPtr> retx = BodyOf(
      AssignState("retx_count", Bin(Opcode::kAdd, StateRef("retx_count"), Lit(1))));
  std::vector<StmtPtr> on_fin = BodyOf(
      AssignState("fin_count", Bin(Opcode::kAdd, StateRef("fin_count"), Lit(1))),
      AssignState("conn_state", Lit(0)));
  p.body = BodyOf(
      Api("ip_header"), Api("tcp_header"),
      If(Cmp(Opcode::kIcmpNe, Bin(Opcode::kAnd, PktField("tcp.flags"), Lit(0x02)), Lit(0)),
         std::move(on_syn),
         BodyOf(If(Cmp(Opcode::kIcmpUge, PktField("tcp.seq"), StateRef("cur_seq")),
                   std::move(in_order), std::move(retx)))),
      If(Cmp(Opcode::kIcmpNe, Bin(Opcode::kAnd, PktField("tcp.flags"), Lit(0x01)), Lit(0)),
         std::move(on_fin)),
      AssignPkt("tcp.ack", StateRef("cur_ack")),
      Send(Lit(0)));
  return p;
}

}  // namespace clara

namespace clara {

Program MakeTokenBucket(uint32_t rate_per_ms, uint32_t burst) {
  Program p;
  p.name = "tokenbucket";
  // Refill state and counters form two access clusters: the refill pair
  // (tokens, last_refill_ns) and the verdict counters.
  p.state.push_back(ScalarState("tokens"));
  p.state.push_back(ScalarState("last_refill_ns", Type::kI64));
  p.state.push_back(ScalarState("conformed", Type::kI64));
  p.state.push_back(ScalarState("policed", Type::kI64));

  std::vector<StmtPtr> refill = BodyOf(
      // tokens += elapsed_ms * rate, capped at the burst size.
      AssignState("tokens",
                  Bin(Opcode::kAdd, StateRef("tokens"),
                      Bin(Opcode::kMul, Local("elapsed_ms"),
                          Lit(static_cast<uint64_t>(rate_per_ms))))),
      If(Cmp(Opcode::kIcmpUgt, StateRef("tokens"), Lit(static_cast<uint64_t>(burst))),
         BodyOf(AssignState("tokens", Lit(static_cast<uint64_t>(burst))))),
      AssignState("last_refill_ns", PktField("pkt.ts")));
  std::vector<StmtPtr> conform = BodyOf(
      AssignState("tokens", Bin(Opcode::kSub, StateRef("tokens"), Lit(1))),
      AssignState("conformed", Bin(Opcode::kAdd, StateRef("conformed"), Lit(1))),
      Send(Lit(0)));
  std::vector<StmtPtr> police = BodyOf(
      AssignState("policed", Bin(Opcode::kAdd, StateRef("policed"), Lit(1))),
      Drop());
  p.body = BodyOf(
      Api("ip_header"),
      Decl("elapsed_ms", Type::kI32,
           CastTo(Type::kI32,
                  Bin(Opcode::kUDiv,
                      Bin(Opcode::kSub, PktField("pkt.ts"), StateRef("last_refill_ns")),
                      Lit(1000000)))),
      If(Cmp(Opcode::kIcmpUgt, Local("elapsed_ms"), Lit(0)), std::move(refill)),
      If(Cmp(Opcode::kIcmpUgt, StateRef("tokens"), Lit(0)), std::move(conform),
         std::move(police)));
  return p;
}

Program MakeSynFlood(uint32_t threshold) {
  Program p;
  p.name = "synflood";
  // Per-destination SYN counters in a sketch-like array plus a watchlist map.
  p.state.push_back(ArrayState("syn_counts", Type::kI32, 4096));
  p.state.push_back(MapState("watchlist", {Type::kI32},
                             {{"first_seen", Type::kI32}, {"syns", Type::kI32}}, 4096));
  p.state.push_back(ScalarState("alerts", Type::kI64));
  p.state.push_back(ScalarState("total_syns", Type::kI64));

  std::vector<StmtPtr> alerted = BodyOf(
      MapInsert("watchlist", BodyArgs(PktField("ip.dst")),
                BodyArgs(CastTo(Type::kI32, PktField("pkt.ts")),
                         StateAt("syn_counts", Local("slot")))),
      AssignState("alerts", Bin(Opcode::kAdd, StateRef("alerts"), Lit(1))),
      AssignPkt("ip.tos", Lit(8)));
  std::vector<StmtPtr> on_syn = BodyOf(
      AssignState("total_syns", Bin(Opcode::kAdd, StateRef("total_syns"), Lit(1))),
      Decl("slot", Type::kI32,
           Bin(Opcode::kAnd,
               Bin(Opcode::kMul, PktField("ip.dst"), Lit(0x9e3779b1ULL)), Lit(4095))),
      AssignStateAt("syn_counts", Local("slot"),
                    Bin(Opcode::kAdd, StateAt("syn_counts", Local("slot")), Lit(1))),
      If(Cmp(Opcode::kIcmpUgt, StateAt("syn_counts", Local("slot")),
             Lit(static_cast<uint64_t>(threshold))),
         std::move(alerted)));
  std::vector<StmtPtr> on_fin = BodyOf(
      Decl("slot2", Type::kI32,
           Bin(Opcode::kAnd,
               Bin(Opcode::kMul, PktField("ip.dst"), Lit(0x9e3779b1ULL)), Lit(4095))),
      If(Cmp(Opcode::kIcmpUgt, StateAt("syn_counts", Local("slot2")), Lit(0)),
         BodyOf(AssignStateAt("syn_counts", Local("slot2"),
                              Bin(Opcode::kSub, StateAt("syn_counts", Local("slot2")),
                                  Lit(1))))));
  p.body = BodyOf(
      Api("ip_header"), Api("tcp_header"),
      If(Cmp(Opcode::kIcmpNe, Bin(Opcode::kAnd, PktField("tcp.flags"), Lit(0x02)), Lit(0)),
         std::move(on_syn)),
      If(Cmp(Opcode::kIcmpNe, Bin(Opcode::kAnd, PktField("tcp.flags"), Lit(0x01)), Lit(0)),
         std::move(on_fin)),
      Send(Lit(0)));
  return p;
}

}  // namespace clara
