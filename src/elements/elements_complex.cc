// Flow-stateful elements and the complex applications of Table 2.
#include "src/elements/body_util.h"
#include "src/elements/elements.h"

namespace clara {

Program MakeFirewall(MapImpl impl) {
  Program p;
  p.name = "firewall";
  p.state.push_back(MapState("conn_table", {Type::kI32, Type::kI32},
                             {{"action", Type::kI32}, {"hits", Type::kI32}}, 4096, impl));
  p.state.push_back(ScalarState("allowed", Type::kI64));
  p.state.push_back(ScalarState("denied", Type::kI64));

  std::vector<StmtPtr> learn = BodyOf(
      // SYN from the inside opens a pinhole.
      MapInsert("conn_table", BodyArgs(PktField("ip.src"), PktField("ip.dst")),
                BodyArgs(Lit(1), Lit(0))),
      AssignState("allowed", Bin(Opcode::kAdd, StateRef("allowed"), Lit(1))),
      Send(Lit(0)));
  std::vector<StmtPtr> pass = BodyOf(
      AssignState("allowed", Bin(Opcode::kAdd, StateRef("allowed"), Lit(1))),
      Send(Lit(0)));
  std::vector<StmtPtr> block = BodyOf(
      AssignState("denied", Bin(Opcode::kAdd, StateRef("denied"), Lit(1))),
      Drop());
  p.body = BodyOf(
      Api("ip_header"), Api("tcp_header"),
      If(Bin(Opcode::kAnd,
             CastTo(Type::kI8,
                    Cmp(Opcode::kIcmpEq, PktField("pkt.in_port"), Lit(0))),
             CastTo(Type::kI8, Cmp(Opcode::kIcmpNe,
                                   Bin(Opcode::kAnd, PktField("tcp.flags"), Lit(0x02)),
                                   Lit(0)))),
         std::move(learn)),
      MapFind("conn_table", BodyArgs(PktField("ip.src"), PktField("ip.dst")), "found",
              {"action", "hits"}),
      If(Bin(Opcode::kAnd, Local("found"),
             CastTo(Type::kI8, Cmp(Opcode::kIcmpEq, Local("action"), Lit(1)))),
         std::move(pass), std::move(block)));
  return p;
}

Program MakeIpRewriter() {
  Program p;
  p.name = "iprewriter";
  p.state.push_back(MapState("fwd_map", {Type::kI32, Type::kI16},
                             {{"new_ip", Type::kI32}, {"new_port", Type::kI16}}, 4096));
  p.state.push_back(MapState("rev_map", {Type::kI32, Type::kI16},
                             {{"orig_ip", Type::kI32}, {"orig_port", Type::kI16}}, 4096));
  p.state.push_back(ScalarState("port_alloc"));
  p.state.push_back(ScalarState("rewrites", Type::kI64));

  std::vector<StmtPtr> apply_fwd = BodyOf(
      AssignPkt("ip.src", Local("new_ip")),
      AssignPkt("tcp.sport", Local("new_port")),
      AssignState("rewrites", Bin(Opcode::kAdd, StateRef("rewrites"), Lit(1))),
      Api("checksum_update"),
      Send(Lit(1)));
  std::vector<StmtPtr> create = BodyOf(
      AssignState("port_alloc", Bin(Opcode::kAdd, StateRef("port_alloc"), Lit(1))),
      Decl("eport", Type::kI16,
           Bin(Opcode::kAdd, Lit(1024), Bin(Opcode::kAnd, StateRef("port_alloc"), Lit(0x7fff)))),
      MapInsert("fwd_map", BodyArgs(PktField("ip.src"), PktField("tcp.sport")),
                BodyArgs(Lit(0x0a000001), Local("eport"))),
      MapInsert("rev_map", BodyArgs(Lit(0x0a000001), Local("eport")),
                BodyArgs(PktField("ip.src"), PktField("tcp.sport"))),
      AssignPkt("ip.src", Lit(0x0a000001)),
      AssignPkt("tcp.sport", Local("eport")),
      Api("checksum_update"),
      Send(Lit(1)));
  std::vector<StmtPtr> outbound = BodyOf(
      MapFind("fwd_map", BodyArgs(PktField("ip.src"), PktField("tcp.sport")), "f_found",
              {"new_ip", "new_port"}),
      If(Local("f_found"), std::move(apply_fwd), std::move(create)));

  std::vector<StmtPtr> apply_rev = BodyOf(
      AssignPkt("ip.dst", Local("orig_ip")),
      AssignPkt("tcp.dport", Local("orig_port")),
      Api("checksum_update"),
      Send(Lit(0)));
  std::vector<StmtPtr> inbound = BodyOf(
      MapFind("rev_map", BodyArgs(PktField("ip.dst"), PktField("tcp.dport")), "r_found",
              {"orig_ip", "orig_port"}),
      If(Local("r_found"), std::move(apply_rev), BodyOf(Drop())));

  p.body = BodyOf(
      Api("ip_header"), Api("tcp_header"),
      If(Cmp(Opcode::kIcmpEq, PktField("pkt.in_port"), Lit(0)), std::move(outbound),
         std::move(inbound)));
  return p;
}

Program MakeIpClassifier() {
  Program p;
  p.name = "ipclassifier";
  // Rule table: {field_selector, masked_value, mask, action} per rule.
  // Selector: 0 = src ip, 1 = dst ip, 2 = dport, 3 = proto.
  constexpr int kRules = 32;
  std::vector<uint64_t> rules;
  for (int r = 0; r < kRules; ++r) {
    rules.push_back(static_cast<uint64_t>(r % 4));        // selector
    rules.push_back(static_cast<uint64_t>((r * 7) % 3) == 0 ? 443 : 80);  // value
    rules.push_back(r % 4 == 2 ? 0xffffULL : 0xffffffffULL);  // mask
    rules.push_back(static_cast<uint64_t>(r % 3));        // action
  }
  // Make some rules actually match common traffic.
  rules[4 * 3 + 0] = 2;     // rule 3 selects dport
  rules[4 * 3 + 1] = 443;
  rules[4 * 3 + 2] = 0xffff;
  rules[4 * 3 + 3] = 1;
  p.state.push_back(ArrayState("rules", Type::kI32, 4 * kRules, std::move(rules)));
  p.state.push_back(ArrayState("class_counts", Type::kI32, 4));
  p.state.push_back(ScalarState("fallthrough", Type::kI64));

  p.body = BodyOf(
      Api("ip_header"), Api("tcp_header"),
      Decl("matched", Type::kI8, Lit(0)),
      Decl("action", Type::kI32, Lit(0)));
  std::vector<StmtPtr> eval = BodyOf(
      Decl("sel", Type::kI32, StateAt("rules", Bin(Opcode::kMul, Local("r"), Lit(4)))),
      Decl("val", Type::kI32,
           StateAt("rules", Bin(Opcode::kAdd, Bin(Opcode::kMul, Local("r"), Lit(4)), Lit(1)))),
      Decl("mask", Type::kI32,
           StateAt("rules", Bin(Opcode::kAdd, Bin(Opcode::kMul, Local("r"), Lit(4)), Lit(2)))),
      Decl("field", Type::kI32, PktField("ip.src")),
      If(Cmp(Opcode::kIcmpEq, Local("sel"), Lit(1)),
         BodyOf(Assign("field", PktField("ip.dst")))),
      If(Cmp(Opcode::kIcmpEq, Local("sel"), Lit(2)),
         BodyOf(Assign("field", PktField("tcp.dport")))),
      If(Cmp(Opcode::kIcmpEq, Local("sel"), Lit(3)),
         BodyOf(Assign("field", PktField("ip.proto")))),
      If(Cmp(Opcode::kIcmpEq, Bin(Opcode::kAnd, Local("field"), Local("mask")), Local("val")),
         BodyOf(Assign("matched", Lit(1)),
                Assign("action",
                       StateAt("rules", Bin(Opcode::kAdd, Bin(Opcode::kMul, Local("r"), Lit(4)),
                                            Lit(3)))))));
  p.body.push_back(For("r", Lit(0), Lit(kRules),
                       BodyOf(If(Cmp(Opcode::kIcmpEq, Local("matched"), Lit(0)),
                                 std::move(eval)))));
  std::vector<StmtPtr> hit = BodyOf(
      AssignStateAt("class_counts", Bin(Opcode::kAnd, Local("action"), Lit(3)),
                    Bin(Opcode::kAdd,
                        StateAt("class_counts", Bin(Opcode::kAnd, Local("action"), Lit(3))),
                        Lit(1))),
      Send(Local("action")));
  std::vector<StmtPtr> fall = BodyOf(
      AssignState("fallthrough", Bin(Opcode::kAdd, StateRef("fallthrough"), Lit(1))),
      Send(Lit(0)));
  p.body.push_back(If(Cmp(Opcode::kIcmpNe, Local("matched"), Lit(0)), std::move(hit),
                      std::move(fall)));
  return p;
}

Program MakeDnsProxy() {
  Program p;
  p.name = "dnsproxy";
  p.state.push_back(MapState("dns_cache", {Type::kI32},
                             {{"answer_ip", Type::kI32}, {"cached_ts", Type::kI32}}, 32768));
  p.state.push_back(ScalarState("cache_hits", Type::kI64));
  p.state.push_back(ScalarState("cache_misses", Type::kI64));
  p.state.push_back(ScalarState("non_dns", Type::kI64));

  std::vector<StmtPtr> not_dns = BodyOf(
      AssignState("non_dns", Bin(Opcode::kAdd, StateRef("non_dns"), Lit(1))),
      Send(Lit(0)));

  std::vector<StmtPtr> hit = BodyOf(
      AssignState("cache_hits", Bin(Opcode::kAdd, StateRef("cache_hits"), Lit(1))),
      // Serve from cache: answer back to the client.
      Decl("tmp", Type::kI32, PktField("ip.src")),
      AssignPkt("ip.src", PktField("ip.dst")),
      AssignPkt("ip.dst", Local("tmp")),
      Decl("tp", Type::kI16, PktField("tcp.sport")),
      AssignPkt("tcp.sport", PktField("tcp.dport")),
      AssignPkt("tcp.dport", Local("tp")),
      AssignPayload(Lit(2), Bin(Opcode::kOr, PayloadAt(Lit(2)), Lit(0x80))),  // QR bit
      AssignPayload(Lit(12), Bin(Opcode::kAnd, Local("answer_ip"), Lit(0xff))),
      Api("checksum_update"),
      Send(Lit(0)));
  std::vector<StmtPtr> miss = BodyOf(
      AssignState("cache_misses", Bin(Opcode::kAdd, StateRef("cache_misses"), Lit(1))),
      MapInsert("dns_cache", BodyArgs(Local("qhash")),
                BodyArgs(Bin(Opcode::kXor, Local("qhash"), Lit(0x0a000000ULL)),
                         CastTo(Type::kI32, PktField("pkt.ts")))),
      Send(Lit(1)));  // forward upstream

  p.body = BodyOf(
      Api("ip_header"), Api("udp_header"),
      If(Cmp(Opcode::kIcmpNe, PktField("ip.proto"), Lit(17)), std::move(not_dns)));
  std::vector<StmtPtr> not_53 = BodyOf(Send(Lit(0)));
  p.body.push_back(
      If(Cmp(Opcode::kIcmpNe, PktField("tcp.dport"), Lit(53)), std::move(not_53)));
  // Hash the query name bytes (QNAME starts at payload offset 12).
  p.body.push_back(Decl("qhash", Type::kI32, Lit(0x811c9dc5ULL)));
  p.body.push_back(Decl("qlen", Type::kI32, PktField("pkt.payload_len")));
  p.body.push_back(If(Cmp(Opcode::kIcmpUgt, Local("qlen"), Lit(28)),
                      BodyOf(Assign("qlen", Lit(28)))));
  p.body.push_back(For(
      "i", Lit(12), Local("qlen"),
      BodyOf(Assign("qhash", Bin(Opcode::kXor, Local("qhash"), PayloadAt(Local("i")))),
             Assign("qhash", Bin(Opcode::kMul, Local("qhash"), Lit(0x01000193ULL))))));
  p.body.push_back(If(Cmp(Opcode::kIcmpEq, Local("qhash"), Lit(0)),
                      BodyOf(Assign("qhash", Lit(1)))));
  p.body.push_back(MapFind("dns_cache", BodyArgs(Local("qhash")), "found",
                           {"answer_ip", "cached_ts"}));
  p.body.push_back(If(Local("found"), std::move(hit), std::move(miss)));
  return p;
}

Program MakeMazuNat(bool use_checksum_accel) {
  Program p;
  p.name = use_checksum_accel ? "mazunat_accel" : "mazunat";
  const char* csum = use_checksum_accel ? "csum_hw" : "checksum_update";
  p.state.push_back(MapState("int_map", {Type::kI32, Type::kI16},
                             {{"ext_ip", Type::kI32}, {"ext_port", Type::kI16}}, 32768));
  p.state.push_back(MapState("ext_map", {Type::kI32, Type::kI16},
                             {{"int_ip", Type::kI32}, {"int_port", Type::kI16}}, 32768));
  p.state.push_back(ScalarState("next_port"));
  p.state.push_back(ScalarState("active_flows"));
  p.state.push_back(ScalarState("translated", Type::kI64));
  p.state.push_back(ScalarState("untranslatable", Type::kI64));

  std::vector<StmtPtr> rewrite_out = BodyOf(
      AssignPkt("ip.src", Local("ext_ip")),
      AssignPkt("tcp.sport", Local("ext_port")),
      AssignState("translated", Bin(Opcode::kAdd, StateRef("translated"), Lit(1))),
      Api(csum),
      Send(Lit(1)));
  std::vector<StmtPtr> alloc = BodyOf(
      AssignState("next_port", Bin(Opcode::kAdd, StateRef("next_port"), Lit(1))),
      AssignState("active_flows", Bin(Opcode::kAdd, StateRef("active_flows"), Lit(1))),
      Decl("np", Type::kI16,
           Bin(Opcode::kAdd, Lit(10000), Bin(Opcode::kAnd, StateRef("next_port"), Lit(0x3fff)))),
      MapInsert("int_map", BodyArgs(PktField("ip.src"), PktField("tcp.sport")),
                BodyArgs(Lit(0xc0a80101), Local("np"))),
      MapInsert("ext_map", BodyArgs(Lit(0xc0a80101), Local("np")),
                BodyArgs(PktField("ip.src"), PktField("tcp.sport"))),
      AssignPkt("ip.src", Lit(0xc0a80101)),
      AssignPkt("tcp.sport", Local("np")),
      AssignState("translated", Bin(Opcode::kAdd, StateRef("translated"), Lit(1))),
      Api(csum),
      Send(Lit(1)));
  std::vector<StmtPtr> no_syn_drop = BodyOf(
      AssignState("untranslatable", Bin(Opcode::kAdd, StateRef("untranslatable"), Lit(1))),
      Drop());
  std::vector<StmtPtr> maybe_alloc = BodyOf(
      If(Cmp(Opcode::kIcmpNe, Bin(Opcode::kAnd, PktField("tcp.flags"), Lit(0x02)), Lit(0)),
         std::move(alloc), std::move(no_syn_drop)));
  std::vector<StmtPtr> outbound = BodyOf(
      Decl("hdr_size", Type::kI16,
           Bin(Opcode::kShl, Bin(Opcode::kAdd, PktField("ip.ihl"), PktField("tcp.off")),
               Lit(2))),
      If(Cmp(Opcode::kIcmpUge, Local("hdr_size"), PktField("ip.len")),
         BodyOf(Drop())),
      MapFind("int_map", BodyArgs(PktField("ip.src"), PktField("tcp.sport")), "out_found",
              {"ext_ip", "ext_port"}),
      If(Local("out_found"), std::move(rewrite_out), std::move(maybe_alloc)));

  std::vector<StmtPtr> rewrite_in = BodyOf(
      AssignPkt("ip.dst", Local("int_ip")),
      AssignPkt("tcp.dport", Local("int_port")),
      AssignState("translated", Bin(Opcode::kAdd, StateRef("translated"), Lit(1))),
      Api(csum),
      Send(Lit(0)));
  std::vector<StmtPtr> inbound = BodyOf(
      MapFind("ext_map", BodyArgs(PktField("ip.dst"), PktField("tcp.dport")), "in_found",
              {"int_ip", "int_port"}),
      If(Local("in_found"), std::move(rewrite_in),
         BodyOf(AssignState("untranslatable",
                            Bin(Opcode::kAdd, StateRef("untranslatable"), Lit(1))),
                Drop())));

  p.body = BodyOf(
      Api("ip_header"), Api("tcp_header"),
      If(Cmp(Opcode::kIcmpNe, PktField("ip.proto"), Lit(6)), BodyOf(Send(Lit(0)))),
      If(Cmp(Opcode::kIcmpEq, PktField("pkt.in_port"), Lit(0)), std::move(outbound),
         std::move(inbound)));
  return p;
}

Program MakeUdpCount() {
  Program p;
  p.name = "udpcount";
  p.state.push_back(MapState("udp_flows", {Type::kI32, Type::kI32},
                             {{"pkt_count", Type::kI32}, {"byte_count", Type::kI32}}, 32768));
  p.state.push_back(ArrayState("port_counts", Type::kI32, 1024));
  p.state.push_back(ScalarState("udp_pkts", Type::kI64));
  p.state.push_back(ScalarState("udp_bytes", Type::kI64));
  p.state.push_back(ScalarState("other_pkts", Type::kI64));

  std::vector<StmtPtr> not_udp = BodyOf(
      AssignState("other_pkts", Bin(Opcode::kAdd, StateRef("other_pkts"), Lit(1))),
      Send(Lit(0)));
  p.body = BodyOf(
      Api("ip_header"), Api("udp_header"),
      If(Cmp(Opcode::kIcmpNe, PktField("ip.proto"), Lit(17)), std::move(not_udp)),
      AssignState("udp_pkts", Bin(Opcode::kAdd, StateRef("udp_pkts"), Lit(1))),
      AssignState("udp_bytes", Bin(Opcode::kAdd, StateRef("udp_bytes"), PktField("pkt.len"))),
      AssignStateAt("port_counts", Bin(Opcode::kAnd, PktField("tcp.dport"), Lit(1023)),
                    Bin(Opcode::kAdd,
                        StateAt("port_counts",
                                Bin(Opcode::kAnd, PktField("tcp.dport"), Lit(1023))),
                        Lit(1))),
      MapFind("udp_flows", BodyArgs(PktField("ip.src"), PktField("ip.dst")), "found",
              {"pkt_count", "byte_count"}),
      If(Local("found"),
         BodyOf(MapInsert("udp_flows", BodyArgs(PktField("ip.src"), PktField("ip.dst")),
                          BodyArgs(Bin(Opcode::kAdd, Local("pkt_count"), Lit(1)),
                                   Bin(Opcode::kAdd, Local("byte_count"),
                                       PktField("pkt.len"))))),
         BodyOf(MapInsert("udp_flows", BodyArgs(PktField("ip.src"), PktField("ip.dst")),
                          BodyArgs(Lit(1), CastTo(Type::kI32, PktField("pkt.len")))))),
      Send(Lit(0)));
  return p;
}

Program MakeWebGen() {
  Program p;
  p.name = "webgen";
  p.state.push_back(MapState("conn_map", {Type::kI32, Type::kI16},
                             {{"state", Type::kI32}, {"next_seq", Type::kI32}}, 32768));
  p.state.push_back(ArrayState("req_template", Type::kI8, 32,
                               {0x47, 0x45, 0x54, 0x20, 0x2f, 0x69, 0x6e, 0x64, 0x65, 0x78,
                                0x2e, 0x68, 0x74, 0x6d, 0x6c, 0x20, 0x48, 0x54, 0x54, 0x50,
                                0x2f, 0x31, 0x2e, 0x31, 0x0d, 0x0a, 0x0d, 0x0a}));
  p.state.push_back(ScalarState("req_counter"));
  p.state.push_back(ScalarState("bytes_out", Type::kI64));

  std::vector<StmtPtr> start_conn = BodyOf(
      MapInsert("conn_map", BodyArgs(PktField("ip.dst"), PktField("tcp.dport")),
                BodyArgs(Lit(1), Bin(Opcode::kAdd, PktField("tcp.seq"), Lit(1)))),
      AssignPkt("tcp.flags", Lit(0x02)),  // emit SYN
      Send(Lit(0)));
  std::vector<StmtPtr> write_request = BodyOf(
      // Stamp the HTTP request from the template.
      For("i", Lit(0), Lit(28),
          BodyOf(AssignPayload(Local("i"), StateAt("req_template", Local("i"))))),
      AssignState("req_counter", Bin(Opcode::kAdd, StateRef("req_counter"), Lit(1))),
      AssignState("bytes_out", Bin(Opcode::kAdd, StateRef("bytes_out"), Lit(28))),
      AssignPkt("tcp.seq", Local("next_seq")),
      MapInsert("conn_map", BodyArgs(PktField("ip.dst"), PktField("tcp.dport")),
                BodyArgs(Lit(2), Bin(Opcode::kAdd, Local("next_seq"), Lit(28)))),
      AssignPkt("tcp.flags", Lit(0x18)),  // PSH|ACK
      Api("checksum_update"),
      Send(Lit(0)));
  p.body = BodyOf(
      Api("ip_header"), Api("tcp_header"),
      MapFind("conn_map", BodyArgs(PktField("ip.dst"), PktField("tcp.dport")), "found",
              {"state", "next_seq"}),
      If(Local("found"),
         BodyOf(If(Cmp(Opcode::kIcmpEq, Local("state"), Lit(1)), std::move(write_request),
                   BodyOf(AssignPkt("tcp.ack",
                                    Bin(Opcode::kAdd, PktField("tcp.seq"), Lit(1))),
                          AssignPkt("tcp.flags", Lit(0x10)),
                          Send(Lit(0))))),
         std::move(start_conn)));
  return p;
}

}  // namespace clara
