#include "src/util/pidfile.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/file.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace clara {
namespace util {

PidFile::~PidFile() { Release(); }

bool PidFile::Acquire(const std::string& path, std::string* error) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    *error = "open " + path + ": " + std::strerror(errno);
    return false;
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) < 0) {
    if (errno == EWOULDBLOCK) {
      char buf[32] = {0};
      ssize_t n = ::pread(fd, buf, sizeof(buf) - 1, 0);
      long owner = n > 0 ? std::strtol(buf, nullptr, 10) : 0;
      *error = "another daemon";
      if (owner > 0) {
        *error += " (pid " + std::to_string(owner) + ")";
      }
      *error += " holds " + path;
    } else {
      *error = "flock " + path + ": " + std::strerror(errno);
    }
    ::close(fd);
    return false;
  }
  char buf[32];
  int len = std::snprintf(buf, sizeof(buf), "%ld\n", static_cast<long>(::getpid()));
  if (::ftruncate(fd, 0) < 0 || ::pwrite(fd, buf, static_cast<size_t>(len), 0) != len) {
    *error = "write " + path + ": " + std::strerror(errno);
    ::flock(fd, LOCK_UN);
    ::close(fd);
    return false;
  }
  fd_ = fd;
  path_ = path;
  return true;
}

void PidFile::Release() {
  if (fd_ < 0) {
    return;
  }
  ::unlink(path_.c_str());
  ::flock(fd_, LOCK_UN);
  ::close(fd_);
  fd_ = -1;
  path_.clear();
}

}  // namespace util
}  // namespace clara
