#include "src/util/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "src/obs/metrics.h"
#include "src/obs/obs.h"

namespace clara {
namespace {

thread_local bool t_in_parallel_region = false;

// One fork-join loop in flight. Chunks are claimed from `next`; the last
// finisher signals the condition variable so the caller can return.
struct Job {
  std::function<void(size_t)> body;  // receives a chunk index
  size_t num_chunks = 0;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;  // first failure; guarded by mu

  void RunChunks() {
    bool prev = t_in_parallel_region;
    t_in_parallel_region = true;
    for (;;) {
      size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) {
        break;
      }
      try {
        body(c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) {
          error = std::current_exception();
        }
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == num_chunks) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
    t_in_parallel_region = prev;
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done.load(std::memory_order_acquire) == num_chunks; });
  }
};

// Fixed set of workers pulling shared_ptr<Job> handles off a queue. A worker
// that dequeues a job helps drain its chunk cursor, then goes back to sleep;
// there is no per-chunk queue traffic.
class ThreadPool {
 public:
  explicit ThreadPool(int workers) { Start(workers); }

  ~ThreadPool() { Stop(); }

  int workers() const { return static_cast<int>(threads_.size()); }

  void Resize(int workers) {
    Stop();
    Start(workers);
  }

  void Submit(const std::shared_ptr<Job>& job, int copies) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (int i = 0; i < copies; ++i) {
        queue_.push_back(job);
      }
    }
    if (copies == 1) {
      cv_.notify_one();
    } else {
      cv_.notify_all();
    }
  }

 private:
  void Start(int workers) {
    stop_ = false;
    for (int i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) {
      t.join();
    }
    threads_.clear();
    queue_.clear();
  }

  void WorkerLoop() {
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
        if (stop_) {
          return;
        }
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      job->RunChunks();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

std::mutex g_pool_mu;
int g_num_threads = 0;              // 0 = not yet initialized
ThreadPool* g_pool = nullptr;       // leaked on purpose: outlives static dtors

int ThreadsFromEnv() {
  const char* env = std::getenv("CLARA_THREADS");
  if (env != nullptr && *env != '\0') {
    int n = std::atoi(env);
    if (n >= 1) {
      return n;
    }
  }
  return HardwareThreads();
}

// Returns the pool (creating it on first use) and the configured thread
// count. The pool holds NumThreads()-1 workers: the caller is a participant.
ThreadPool* GetPool(int* threads) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_num_threads == 0) {
    g_num_threads = ThreadsFromEnv();
  }
  if (g_pool == nullptr && g_num_threads > 1) {
    g_pool = new ThreadPool(g_num_threads - 1);
  }
  *threads = g_num_threads;
  return g_pool;
}

}  // namespace

int HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int NumThreads() {
  int threads = 1;
  GetPool(&threads);
  return threads;
}

void SetNumThreads(int n) {
  n = std::max(1, n);
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_num_threads == n && (n == 1 || g_pool != nullptr)) {
    return;
  }
  g_num_threads = n;
  if (g_pool != nullptr) {
    if (n == 1) {
      delete g_pool;
      g_pool = nullptr;
    } else {
      g_pool->Resize(n - 1);
    }
  } else if (n > 1) {
    g_pool = new ThreadPool(n - 1);
  }
}

bool InParallelRegion() { return t_in_parallel_region; }

void ParallelForGrain(size_t n, size_t grain, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (grain == 0) {
    grain = 1;
  }
  size_t num_chunks = (n + grain - 1) / grain;
  int threads = 1;
  ThreadPool* pool = GetPool(&threads);
  // Serial fast path: one thread, a single chunk, or a nested loop (workers
  // must not block on a job their own pool has to finish).
  if (pool == nullptr || threads <= 1 || num_chunks <= 1 || InParallelRegion()) {
    bool prev = t_in_parallel_region;
    t_in_parallel_region = true;
    try {
      for (size_t i = 0; i < n; ++i) {
        fn(i);
      }
    } catch (...) {
      t_in_parallel_region = prev;
      throw;
    }
    t_in_parallel_region = prev;
    return;
  }
  if (obs::Enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("parallel.pool.loops").Add(1);
    reg.GetCounter("parallel.pool.tasks").Add(num_chunks);
    reg.GetGauge("parallel.pool.threads").Set(threads);
  }
  auto job = std::make_shared<Job>();
  job->num_chunks = num_chunks;
  job->body = [&fn, n, grain](size_t c) {
    size_t lo = c * grain;
    size_t hi = std::min(n, lo + grain);
    for (size_t i = lo; i < hi; ++i) {
      fn(i);
    }
  };
  int helpers = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(pool->workers()), num_chunks - 1));
  pool->Submit(job, helpers);
  job->RunChunks();  // caller participates
  job->Wait();
  if (job->error) {
    std::rethrow_exception(job->error);
  }
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  int threads = 1;
  GetPool(&threads);
  size_t grain = std::max<size_t>(1, n / (static_cast<size_t>(threads) * 4));
  ParallelForGrain(n, grain, fn);
}

}  // namespace clara
