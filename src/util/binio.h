// Bounds-checked binary serialization primitives for model artifacts and the
// serve wire format (src/serve/).
//
// Encoding is little-endian and position-independent: fixed-width integers,
// doubles as raw IEEE-754 bit patterns (round trips are bit-identical, which
// the artifact store's "deserialized models predict byte-equal" guarantee
// relies on), and length-prefixed strings/vectors.
//
// BinReader never trusts a length field: every read is checked against the
// remaining byte count, and a claimed vector length larger than the remaining
// payload fails instead of allocating. After any failed read the reader is
// poisoned (ok() == false), every subsequent read returns a zero value, and
// error() describes the first failure — callers can therefore decode a whole
// struct and check ok() once at the end.
#ifndef SRC_UTIL_BINIO_H_
#define SRC_UTIL_BINIO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/fault.h"

namespace clara {

class BinWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v) { PutLe(v, 2); }
  void U32(uint32_t v) { PutLe(v, 4); }
  void U64(uint64_t v) { PutLe(v, 8); }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }
  void Bytes(const void* data, size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }

  void VecF64(const std::vector<double>& v) {
    U32(static_cast<uint32_t>(v.size()));
    for (double x : v) {
      F64(x);
    }
  }
  void VecU64(const std::vector<uint64_t>& v) {
    U32(static_cast<uint32_t>(v.size()));
    for (uint64_t x : v) {
      U64(x);
    }
  }
  void VecI32(const std::vector<int>& v) {
    U32(static_cast<uint32_t>(v.size()));
    for (int x : v) {
      I32(x);
    }
  }
  void VecStr(const std::vector<std::string>& v) {
    U32(static_cast<uint32_t>(v.size()));
    for (const auto& s : v) {
      Str(s);
    }
  }
  void MatF64(const std::vector<std::vector<double>>& m) {
    U32(static_cast<uint32_t>(m.size()));
    for (const auto& row : m) {
      VecF64(row);
    }
  }

  size_t size() const { return buf_.size(); }
  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  void PutLe(uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::string buf_;
};

class BinReader {
 public:
  BinReader(const void* data, size_t n)
      : p_(static_cast<const uint8_t*>(data)), n_(n) {
    // Fault injection (binio.read site): one decision per reader, taken at
    // construction so the probability is per decode operation rather than
    // per field. The injected reader poisons itself on its first read, which
    // exercises exactly the truncated/corrupt-input error paths.
    if (fault::Armed() && fault::ShouldFail(fault::Site::kBinioRead)) {
      inject_fault_ = true;
    }
  }
  explicit BinReader(std::string_view s) : BinReader(s.data(), s.size()) {}

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  size_t remaining() const { return n_ - off_; }
  size_t offset() const { return off_; }

  // Marks the reader failed (loaders use it for semantic errors, e.g. a
  // weight matrix whose size disagrees with the stored dimensions).
  void Fail(const std::string& why) {
    if (ok_) {
      ok_ = false;
      error_ = why + " (at byte " + std::to_string(off_) + ")";
    }
  }

  uint8_t U8() { return static_cast<uint8_t>(GetLe(1, "u8")); }
  uint16_t U16() { return static_cast<uint16_t>(GetLe(2, "u16")); }
  uint32_t U32() { return static_cast<uint32_t>(GetLe(4, "u32")); }
  uint64_t U64() { return GetLe(8, "u64"); }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64() {
    uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool Bool() { return U8() != 0; }

  std::string Str() {
    CheckInjected();
    uint32_t len = U32();
    if (!ok_ || len > remaining()) {
      Fail("string length " + std::to_string(len) + " exceeds remaining bytes");
      return std::string();
    }
    std::string s(reinterpret_cast<const char*>(p_ + off_), len);
    off_ += len;
    return s;
  }

  // Reads `n` raw bytes into out; fails when fewer remain.
  bool Raw(void* out, size_t n) {
    CheckInjected();
    if (!ok_ || n > remaining()) {
      Fail("raw read of " + std::to_string(n) + " bytes exceeds remaining");
      return false;
    }
    std::memcpy(out, p_ + off_, n);
    off_ += n;
    return true;
  }

  bool VecF64(std::vector<double>* out) { return ReadVec(out, 8, [this] { return F64(); }); }
  bool VecU64(std::vector<uint64_t>* out) { return ReadVec(out, 8, [this] { return U64(); }); }
  bool VecI32(std::vector<int>* out) { return ReadVec(out, 4, [this] { return I32(); }); }
  bool VecStr(std::vector<std::string>* out) {
    out->clear();
    uint32_t len = U32();
    // Every serialized string costs at least its 4-byte length prefix.
    if (!ok_ || static_cast<uint64_t>(len) * 4 > remaining()) {
      Fail("vector length " + std::to_string(len) + " exceeds remaining bytes");
      return false;
    }
    out->reserve(len);
    for (uint32_t i = 0; i < len && ok_; ++i) {
      out->push_back(Str());
    }
    return ok_;
  }
  bool MatF64(std::vector<std::vector<double>>* out) {
    out->clear();
    uint32_t rows = U32();
    // Every serialized row costs at least its 4-byte length prefix.
    if (!ok_ || static_cast<uint64_t>(rows) * 4 > remaining()) {
      Fail("matrix row count " + std::to_string(rows) + " exceeds remaining bytes");
      return false;
    }
    out->reserve(rows);
    for (uint32_t i = 0; i < rows && ok_; ++i) {
      std::vector<double> row;
      VecF64(&row);
      out->push_back(std::move(row));
    }
    return ok_;
  }

 private:
  // Fires the construction-time fault decision on the first actual read, so
  // the injected failure flows through the normal poisoned-reader protocol.
  void CheckInjected() {
    if (inject_fault_) {
      inject_fault_ = false;
      Fail("injected fault (binio.read)");
    }
  }

  uint64_t GetLe(int bytes, const char* what) {
    CheckInjected();
    if (!ok_ || static_cast<size_t>(bytes) > remaining()) {
      Fail(std::string("truncated ") + what);
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
      v |= static_cast<uint64_t>(p_[off_ + i]) << (8 * i);
    }
    off_ += bytes;
    return v;
  }

  template <typename T, typename ReadFn>
  bool ReadVec(std::vector<T>* out, size_t elem_bytes, const ReadFn& read) {
    out->clear();
    uint32_t len = U32();
    if (!ok_ || static_cast<uint64_t>(len) * elem_bytes > remaining()) {
      Fail("vector length " + std::to_string(len) + " exceeds remaining bytes");
      return false;
    }
    out->reserve(len);
    for (uint32_t i = 0; i < len && ok_; ++i) {
      out->push_back(read());
    }
    return ok_;
  }

  const uint8_t* p_;
  size_t n_;
  size_t off_ = 0;
  bool ok_ = true;
  bool inject_fault_ = false;
  std::string error_;
};

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected). Crc32("123456789")
// == 0xCBF43926. Chainable: pass the previous result as `seed`.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);
inline uint32_t Crc32(std::string_view s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

// FNV-1a 64-bit content hash (serve-cache keys).
uint64_t Fnv1a64(const void* data, size_t n, uint64_t seed = 1469598103934665603ULL);
inline uint64_t Fnv1a64(std::string_view s, uint64_t seed = 1469598103934665603ULL) {
  return Fnv1a64(s.data(), s.size(), seed);
}

}  // namespace clara

#endif  // SRC_UTIL_BINIO_H_
