// flock()-based pidfile: exclusive ownership of a Unix-socket endpoint.
//
// clara_serve used to unconditionally unlink() its socket path at startup to
// clear stale files from a crashed predecessor — which also deleted the live
// socket of a *running* sibling daemon pointed at the same path, silently
// stealing its endpoint. The fix: before touching the socket file, take an
// exclusive flock() on "<socket>.pid". The lock is held for the daemon's
// lifetime and released automatically by the kernel on any exit (including
// SIGKILL), so a crashed daemon never wedges the path, while a live one
// makes a second daemon fail fast with the owner's pid instead of
// hijacking the socket.
#ifndef SRC_UTIL_PIDFILE_H_
#define SRC_UTIL_PIDFILE_H_

#include <string>

namespace clara {
namespace util {

class PidFile {
 public:
  PidFile() = default;
  // Releases the lock and removes the file when held.
  ~PidFile();

  PidFile(const PidFile&) = delete;
  PidFile& operator=(const PidFile&) = delete;

  // Creates/opens `path`, takes a non-blocking exclusive flock(), and writes
  // our pid. False when another process holds the lock (*error names the
  // owning pid) or on I/O failure.
  bool Acquire(const std::string& path, std::string* error);

  // Drops the lock and unlinks the file (idempotent; also run by the
  // destructor).
  void Release();

  bool held() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace util
}  // namespace clara

#endif  // SRC_UTIL_PIDFILE_H_
