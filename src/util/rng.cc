#include "src/util/rng.h"

#include <cmath>
#include <numeric>

namespace clara {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's multiply-shift rejection method.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

double Rng::NextGaussian(double stddev) {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  return stddev * std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) {
    return NextBounded(weights.size());
  }
  double r = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) {
      return i;
    }
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> p(n);
  std::iota(p.begin(), p.end(), 0);
  for (size_t i = n; i > 1; --i) {
    std::swap(p[i - 1], p[NextBounded(i)]);
  }
  return p;
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& v : cdf_) {
    v /= acc;
  }
}

size_t ZipfSampler::Sample(Rng& rng) const {
  double r = rng.NextDouble();
  size_t lo = 0;
  size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < r) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace clara
