// Chunked fork-join parallelism for Clara's embarrassingly parallel loops
// (corpus synthesis/labelling, cross-validation grids, design-space sweeps).
//
// The substrate is deliberately small: a shared pool of workers, a chunked
// ParallelFor where the calling thread participates, and a deterministic
// ordered ParallelMapReduce. There is no work stealing — chunks are claimed
// from a single atomic cursor, which is fair enough for the uniform loop
// bodies Clara runs and keeps the implementation auditable.
//
// Determinism contract: chunk boundaries depend only on (n, grain), never on
// the thread count, and ParallelMapReduce combines chunk partials in chunk
// index order. Running at 1, 2 or 64 threads therefore produces bit-identical
// results, which the ML training paths rely on (see DESIGN.md "Threading
// model & determinism").
//
// Sizing: the pool defaults to std::thread::hardware_concurrency, overridden
// by the CLARA_THREADS environment variable at first use or SetNumThreads()
// (the CLI's --threads=N flag). SetNumThreads must not race with running
// parallel loops.
#ifndef SRC_UTIL_PARALLEL_H_
#define SRC_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

namespace clara {

// Hardware concurrency, at least 1.
int HardwareThreads();

// The configured parallelism (workers + calling thread). First call reads
// CLARA_THREADS; SetNumThreads overrides and resizes the shared pool.
int NumThreads();
void SetNumThreads(int n);

// True while the calling thread is executing inside a parallel region; used
// to run nested parallel constructs inline instead of deadlocking the pool.
bool InParallelRegion();

// Invokes fn(i) for every i in [0, n), splitting the range into chunks of at
// least `grain` iterations. The calling thread participates, so the loop
// costs nothing extra at NumThreads() == 1. The first exception thrown by fn
// is rethrown on the calling thread after all chunks finish; fn must be safe
// to invoke concurrently for distinct i.
void ParallelForGrain(size_t n, size_t grain, const std::function<void(size_t)>& fn);

// ParallelForGrain with an automatic grain (~4 chunks per thread).
void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

// Ordered parallel map: returns {fn(0), ..., fn(n-1)}. T must be default
// constructible and movable.
template <typename T, typename Fn>
std::vector<T> ParallelMap(size_t n, const Fn& fn) {
  std::vector<T> out(n);
  ParallelForGrain(n, 1, [&](size_t i) { out[i] = fn(i); });
  return out;
}

// Deterministic ordered map-reduce. Each chunk of `grain` indices folds its
// mapped values left-to-right; chunk partials are then folded into `init` in
// chunk index order. Because the chunk shape depends only on (n, grain), the
// reduction tree — and therefore every floating-point rounding — is
// identical at any thread count. Note the tree differs from a plain serial
// left fold; callers that need bit-equality with a legacy serial loop should
// pass grain >= n.
template <typename Acc, typename MapFn, typename ReduceFn>
Acc ParallelMapReduce(size_t n, Acc init, const MapFn& map, const ReduceFn& reduce,
                      size_t grain = 16) {
  if (n == 0) {
    return init;
  }
  if (grain == 0) {
    grain = 1;
  }
  size_t chunks = (n + grain - 1) / grain;
  std::vector<std::optional<Acc>> parts(chunks);
  ParallelForGrain(chunks, 1, [&](size_t c) {
    size_t lo = c * grain;
    size_t hi = std::min(n, lo + grain);
    Acc a = map(lo);
    for (size_t i = lo + 1; i < hi; ++i) {
      a = reduce(std::move(a), map(i));
    }
    parts[c] = std::move(a);
  });
  Acc out = std::move(init);
  for (size_t c = 0; c < chunks; ++c) {
    out = reduce(std::move(out), std::move(*parts[c]));
  }
  return out;
}

}  // namespace clara

#endif  // SRC_UTIL_PARALLEL_H_
