#include "src/util/net.h"

#include <errno.h>
#include <poll.h>
#include <unistd.h>

#include <cstring>

#include "src/util/fault.h"

namespace clara {
namespace net {
namespace {

// Blocks until fd is ready for `events` (POLLIN/POLLOUT). False on hard
// poll failure.
bool WaitReady(int fd, short events, std::string* error) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    int rc = ::poll(&pfd, 1, -1);
    if (rc >= 0) {
      return true;
    }
    if (errno == EINTR) {
      continue;
    }
    *error = std::string("poll: ") + std::strerror(errno);
    return false;
  }
}

}  // namespace

bool WriteAll(int fd, std::string_view data, std::string* error) {
  if (fault::Armed() && fault::ShouldFail(fault::Site::kSockWrite)) {
    *error = "write: injected fault (sock.write)";
    return false;
  }
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!WaitReady(fd, POLLOUT, error)) {
          return false;
        }
        continue;
      }
      *error = std::string("write: ") + std::strerror(errno);
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

IoStatus ReadSome(int fd, void* buf, size_t cap, size_t* n, std::string* error) {
  if (fault::Armed() && fault::ShouldFail(fault::Site::kSockRead)) {
    *error = "read: injected fault (sock.read)";
    return IoStatus::kError;
  }
  for (;;) {
    ssize_t r = ::read(fd, buf, cap);
    if (r > 0) {
      *n = static_cast<size_t>(r);
      return IoStatus::kOk;
    }
    if (r == 0) {
      return IoStatus::kEof;
    }
    if (errno == EINTR) {
      return IoStatus::kInterrupted;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!WaitReady(fd, POLLIN, error)) {
        return IoStatus::kError;
      }
      continue;
    }
    *error = std::string("read: ") + std::strerror(errno);
    return IoStatus::kError;
  }
}

}  // namespace net
}  // namespace clara
