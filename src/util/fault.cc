#include "src/util/fault.h"

#include <cstdlib>

#include "src/obs/json_util.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"

namespace clara {
namespace fault {
namespace {

// Per-site state. The decision stream is counter-based (splitmix64 of
// seed ^ draw-index), so concurrent callers each consume a unique index via
// fetch_add and the aggregate injection rate stays exact and reproducible
// regardless of thread interleaving.
struct SiteState {
  std::atomic<bool> armed{false};
  std::atomic<uint64_t> threshold{0};  // inject when hash < threshold
  std::atomic<uint64_t> seed{0};
  std::atomic<uint64_t> draws{0};
  std::atomic<uint64_t> evaluated{0};
  std::atomic<uint64_t> injected{0};
  double prob = 0;  // written only while (re)configuring
};

SiteState g_sites[kSiteCount];

constexpr const char* kSiteNames[kSiteCount] = {
    "binio.read", "artifact.crc",  "artifact.load", "sock.read",
    "sock.write", "sock.accept",   "queue.admit",   "dispatch",
};

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

void RefreshArmedFlag() {
  bool any = false;
  for (const SiteState& s : g_sites) {
    any = any || s.armed.load(std::memory_order_relaxed);
  }
  ArmedFlag().store(any, std::memory_order_relaxed);
}

bool ArmSite(Site site, double prob, uint64_t seed, std::string* error) {
  if (prob < 0 || prob > 1) {
    *error = "fault: probability " + std::to_string(prob) + " outside [0,1] for " +
             SiteName(site);
    return false;
  }
  SiteState& s = g_sites[static_cast<size_t>(site)];
  s.prob = prob;
  // prob==1 must always inject; the ladder maps (0,1) onto the u64 range.
  uint64_t threshold =
      prob >= 1.0 ? UINT64_MAX
                  : static_cast<uint64_t>(prob * 18446744073709551615.0);
  s.threshold.store(threshold, std::memory_order_relaxed);
  s.seed.store(seed, std::memory_order_relaxed);
  s.draws.store(0, std::memory_order_relaxed);
  s.armed.store(prob > 0, std::memory_order_relaxed);
  return true;
}

}  // namespace

const char* SiteName(Site site) {
  size_t i = static_cast<size_t>(site);
  return i < kSiteCount ? kSiteNames[i] : "?";
}

bool SiteFromName(std::string_view name, Site* out) {
  for (size_t i = 0; i < kSiteCount; ++i) {
    if (name == kSiteNames[i]) {
      *out = static_cast<Site>(i);
      return true;
    }
  }
  return false;
}

bool Configure(std::string_view spec, std::string* error) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    std::string_view entry =
        spec.substr(pos, comma == std::string_view::npos ? std::string_view::npos
                                                         : comma - pos);
    pos = comma == std::string_view::npos ? spec.size() : comma + 1;
    if (entry.empty()) {
      continue;
    }
    size_t c1 = entry.find(':');
    if (c1 == std::string_view::npos) {
      *error = "fault: entry '" + std::string(entry) + "' is not site:prob[:seed]";
      return false;
    }
    std::string_view site_name = entry.substr(0, c1);
    std::string_view rest = entry.substr(c1 + 1);
    size_t c2 = rest.find(':');
    std::string prob_str(c2 == std::string_view::npos ? rest : rest.substr(0, c2));
    uint64_t seed = 1;
    if (c2 != std::string_view::npos) {
      seed = std::strtoull(std::string(rest.substr(c2 + 1)).c_str(), nullptr, 10);
    }
    char* end = nullptr;
    double prob = std::strtod(prob_str.c_str(), &end);
    if (end == prob_str.c_str() || (end != nullptr && *end != '\0')) {
      *error = "fault: bad probability '" + prob_str + "'";
      return false;
    }
    if (site_name == "all") {
      for (size_t i = 0; i < kSiteCount; ++i) {
        // Distinct per-site streams even when armed from one "all" entry.
        if (!ArmSite(static_cast<Site>(i), prob, seed + i, error)) {
          return false;
        }
      }
      continue;
    }
    Site site;
    if (!SiteFromName(site_name, &site)) {
      *error = "fault: unknown site '" + std::string(site_name) + "'";
      return false;
    }
    if (!ArmSite(site, prob, seed, error)) {
      return false;
    }
  }
  RefreshArmedFlag();
  return true;
}

bool ConfigureFromEnv(std::string* error) {
  const char* spec = std::getenv("CLARA_FAULT");
  if (spec == nullptr || spec[0] == '\0') {
    return true;
  }
  return Configure(spec, error);
}

void Reset() {
  for (SiteState& s : g_sites) {
    s.armed.store(false, std::memory_order_relaxed);
    s.threshold.store(0, std::memory_order_relaxed);
    s.seed.store(0, std::memory_order_relaxed);
    s.draws.store(0, std::memory_order_relaxed);
    s.evaluated.store(0, std::memory_order_relaxed);
    s.injected.store(0, std::memory_order_relaxed);
    s.prob = 0;
  }
  ArmedFlag().store(false, std::memory_order_relaxed);
}

bool ShouldFail(Site site) {
  SiteState& s = g_sites[static_cast<size_t>(site)];
  if (!s.armed.load(std::memory_order_relaxed)) {
    return false;
  }
  s.evaluated.fetch_add(1, std::memory_order_relaxed);
  uint64_t idx = s.draws.fetch_add(1, std::memory_order_relaxed);
  uint64_t draw = SplitMix64(s.seed.load(std::memory_order_relaxed) ^ (idx * 0xD6E8FEB86659FD93ULL));
  if (draw >= s.threshold.load(std::memory_order_relaxed)) {
    return false;
  }
  s.injected.fetch_add(1, std::memory_order_relaxed);
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global()
        .GetCounter(std::string("fault.") + SiteName(site) + ".injected")
        .Add(1);
  }
  return true;
}

uint64_t InjectedCount(Site site) {
  return g_sites[static_cast<size_t>(site)].injected.load(std::memory_order_relaxed);
}

uint64_t EvaluatedCount(Site site) {
  return g_sites[static_cast<size_t>(site)].evaluated.load(std::memory_order_relaxed);
}

std::string StatsJson() {
  std::string j = "{\"armed\":";
  j += Armed() ? "true" : "false";
  j += ",\"sites\":{";
  bool first = true;
  for (size_t i = 0; i < kSiteCount; ++i) {
    const SiteState& s = g_sites[i];
    if (!s.armed.load(std::memory_order_relaxed)) {
      continue;
    }
    if (!first) {
      j += ",";
    }
    first = false;
    j += "\"" + std::string(kSiteNames[i]) + "\":{";
    j += "\"prob\":" + obs::JsonNumber(s.prob);
    j += ",\"evaluated\":" + std::to_string(s.evaluated.load(std::memory_order_relaxed));
    j += ",\"injected\":" + std::to_string(s.injected.load(std::memory_order_relaxed));
    j += "}";
  }
  j += "}}";
  return j;
}

}  // namespace fault
}  // namespace clara
