// Shared POSIX socket/pipe I/O for the serve-plane front ends.
//
// clara_serve, clara_client and clara_chaos all speak the length-prefixed
// frame protocol over fds; these helpers give them one uniform error model:
//   * short writes are always resumed (a partial write() of a frame must
//     never desynchronize the stream),
//   * EINTR is retried, EAGAIN/EWOULDBLOCK waits for readiness via poll()
//     (so the helpers behave identically on blocking and non-blocking fds),
//   * every failure carries strerror(errno) text,
//   * the sock.read / sock.write fault-injection sites (src/util/fault.h)
//     are threaded through, simulating peer resets under chaos testing.
//
// ReadSome deliberately does NOT retry EINTR: the callers' main loops use
// signal interruption (SIGTERM/SIGHUP/SIGUSR1) to wake up, so an EINTR read
// returns kInterrupted and lets the caller observe its flags.
#ifndef SRC_UTIL_NET_H_
#define SRC_UTIL_NET_H_

#include <sys/types.h>

#include <cstddef>
#include <string>
#include <string_view>

namespace clara {
namespace net {

enum class IoStatus {
  kOk = 0,
  kEof,          // read: peer closed
  kInterrupted,  // read: EINTR (caller checks its signal flags and retries)
  kError,        // hard failure; *error holds strerror text
};

// Writes all of `data`, resuming short writes and EINTR, polling on EAGAIN.
// False on hard error (*error = "write: <strerror>" or the injected-fault
// text when the sock.write site fires).
bool WriteAll(int fd, std::string_view data, std::string* error);

// One read of up to `cap` bytes into buf. kOk sets *n (> 0); EAGAIN waits
// for readability and retries internally.
IoStatus ReadSome(int fd, void* buf, size_t cap, size_t* n, std::string* error);

}  // namespace net
}  // namespace clara

#endif  // SRC_UTIL_NET_H_
