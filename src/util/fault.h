// Deterministic, site-registered fault injection.
//
// A fault *site* is a named point in the code where a failure can be forced:
// binio decoding, artifact CRC/load, the daemon's socket syscalls, queue
// admission, and worker dispatch. Each site is armed independently with a
// probability and a seed (CLARA_FAULT=site:prob:seed env var or --fault=
// flags; "all" arms every site), and draws from its own counter-based hash
// stream, so a given (site, prob, seed) configuration injects the same
// decision sequence on every run — chaos tests are replayable.
//
// The disarmed fast path is one relaxed atomic load (Armed()), so threading
// ShouldFail() through hot paths costs nothing in production. Every injected
// fault increments both a lock-free per-site counter (InjectedCount, usable
// with obs off) and a `fault.<site>.injected` counter in the global metrics
// registry, so tests can assert the injection happened *and* that the system
// recovered from it.
#ifndef SRC_UTIL_FAULT_H_
#define SRC_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace clara {
namespace fault {

enum class Site : uint8_t {
  kBinioRead = 0,   // BinReader poisons itself on first read
  kArtifactCrc,     // artifact CRC check reports a mismatch
  kArtifactLoad,    // artifact deserialization fails outright
  kSockRead,        // transport read returns a connection error
  kSockWrite,       // transport write returns a connection error
  kSockAccept,      // accepted connection is dropped immediately
  kQueueAdmit,      // engine admission rejects with kQueueFull
  kDispatch,        // worker dispatch fails the request with kInternal
  kCount,
};
inline constexpr size_t kSiteCount = static_cast<size_t>(Site::kCount);

// "binio.read", "artifact.crc", ... (nullptr-safe; "?" for out of range).
const char* SiteName(Site site);
// Reverse lookup; false when the name matches no site.
bool SiteFromName(std::string_view name, Site* out);

// Arms sites from a spec: "site:prob[:seed]" entries separated by commas,
// e.g. "sock.read:0.05:7,dispatch:0.01". Site "all" arms every site with the
// given prob/seed. Probabilities outside [0,1] or unknown site names fail
// with *error set and leave the previous configuration untouched. An empty
// spec is a no-op. Configure is additive over Reset(): call Reset() first to
// replace instead of extend.
bool Configure(std::string_view spec, std::string* error);

// Reads the CLARA_FAULT environment variable (no-op when unset/empty).
bool ConfigureFromEnv(std::string* error);

// Disarms every site and zeroes the counters.
void Reset();

// True when at least one site is armed. Inline fast gate for hot paths.
inline std::atomic<bool>& ArmedFlag() {
  static std::atomic<bool> armed{false};
  return armed;
}
inline bool Armed() { return ArmedFlag().load(std::memory_order_relaxed); }

// Draws the site's next deterministic decision; true = inject the fault.
// Always false when the site is disarmed. Counts evaluations and injections.
bool ShouldFail(Site site);

uint64_t InjectedCount(Site site);
uint64_t EvaluatedCount(Site site);

// {"armed":true,"sites":{"sock.read":{"prob":0.05,"injected":3,...},...}} —
// armed sites only; embedded in the daemon's stats envelope.
std::string StatsJson();

}  // namespace fault
}  // namespace clara

#endif  // SRC_UTIL_FAULT_H_
