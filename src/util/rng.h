// Deterministic pseudo-random number generation used throughout Clara.
//
// All randomized components (program synthesis, workload generation, ML weight
// initialization) draw from this engine so that experiments are reproducible
// run-to-run given a seed.
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace clara {

// xoshiro256** generator: small, fast, and good statistical quality. We avoid
// std::mt19937 so streams are stable across standard library versions.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Gaussian via Box-Muller; mean 0, given stddev.
  double NextGaussian(double stddev = 1.0);

  // Bernoulli trial.
  bool NextBool(double p_true = 0.5);

  // Samples an index according to the given non-negative weights.
  // An all-zero weight vector yields a uniform draw.
  size_t NextWeighted(const std::vector<double>& weights);

  // Fisher-Yates shuffle of indices [0, n).
  std::vector<size_t> Permutation(size_t n);

 private:
  uint64_t s_[4];
};

// Zipf(s) sampler over ranks [0, n). Used by the workload generator for
// skewed flow popularity. Precomputes the CDF at construction.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  size_t Sample(Rng& rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace clara

#endif  // SRC_UTIL_RNG_H_
