#include "src/core/colocation.h"

#include <algorithm>
#include <cmath>

#include "src/lang/interp.h"
#include "src/nic/backend.h"
#include "src/nic/demand.h"
#include "src/util/binio.h"
#include "src/util/parallel.h"

namespace clara {

void ColocationRanker::SaveTo(BinWriter& w) const {
  w.U16(0x4352);  // "CR"
  w.Bool(trained_);
  ranker_.SaveTo(w);
}

bool ColocationRanker::LoadFrom(BinReader& r) {
  if (r.U16() != 0x4352) {
    r.Fail("colocation: bad section tag");
    return false;
  }
  bool trained = r.Bool();
  GbdtRanker ranker;
  if (!ranker.LoadFrom(r)) {
    return false;
  }
  trained_ = trained;
  ranker_ = std::move(ranker);
  return true;
}

const char* RankObjectiveName(RankObjective o) {
  switch (o) {
    case RankObjective::kTotalThroughput: return "Th.Tot.";
    case RankObjective::kAverageThroughput: return "Th.Avg.";
    case RankObjective::kTotalLatency: return "Lat.Tot.";
    case RankObjective::kAverageLatency: return "Lat.Avg.";
  }
  return "?";
}

double PairOutcome::Friendliness(RankObjective o) const {
  switch (o) {
    case RankObjective::kTotalThroughput:
      return (tput_a_coloc + tput_b_coloc) / std::max(1e-9, tput_a_solo + tput_b_solo);
    case RankObjective::kAverageThroughput:
      return 0.5 * (tput_a_coloc / std::max(1e-9, tput_a_solo) +
                    tput_b_coloc / std::max(1e-9, tput_b_solo));
    case RankObjective::kTotalLatency:
      return (lat_a_solo + lat_b_solo) / std::max(1e-9, lat_a_coloc + lat_b_coloc);
    case RankObjective::kAverageLatency:
      return 0.5 * (lat_a_solo / std::max(1e-9, lat_a_coloc) +
                    lat_b_solo / std::max(1e-9, lat_b_coloc));
  }
  return 0;
}

PairOutcome MeasurePair(const PerfModel& model, const NfDemand& a, const NfDemand& b) {
  PairOutcome o;
  int cores = model.config().num_cores;
  int half = std::max(1, cores / 2);
  // Solo baselines use the same per-NF core budget as the colocated run, so
  // degradation isolates memory-system interference (paper: "each NF is
  // given the same amount of SmartNIC resources").
  PerfPoint a_solo = model.Evaluate(a, half);
  PerfPoint b_solo = model.Evaluate(b, half);
  auto [a_co, b_co] = model.EvaluatePair(a, half, b, half);
  o.tput_a_solo = a_solo.throughput_mpps;
  o.tput_b_solo = b_solo.throughput_mpps;
  o.lat_a_solo = a_solo.latency_us;
  o.lat_b_solo = b_solo.latency_us;
  o.tput_a_coloc = a_co.throughput_mpps;
  o.tput_b_coloc = b_co.throughput_mpps;
  o.lat_a_coloc = a_co.latency_us;
  o.lat_b_coloc = b_co.latency_us;
  return o;
}

FeatureVec ColocationRanker::PairFeatures(const NfDemand& a, const NfDemand& b) {
  auto dram_words = [](const NfDemand& d) {
    double words = 0;
    for (const auto& s : d.state) {
      if (s.region == MemRegion::kEmem) {
        words += s.accesses_per_pkt * s.words_per_access * (1 - s.cache_hit_rate);
      }
    }
    return words;
  };
  double ai_a = a.ArithmeticIntensity();
  double ai_b = b.ArithmeticIntensity();
  return FeatureVec{
      ai_a,
      ai_b,
      a.compute_cycles,
      b.compute_cycles,
      ai_a / std::max(1e-9, ai_b),
      a.TotalStateAccesses(),
      b.TotalStateAccesses(),
      dram_words(a),
      dram_words(b),
      dram_words(a) + dram_words(b),
  };
}

void ColocationRanker::Train(const PerfModel& model, const WorkloadSpec& workload) {
  Rng rng(opts_.seed);
  std::vector<Program> programs = SynthesizeCorpus(opts_.train_nfs, opts_.synth, opts_.seed);

  // Profile each NF once to build its demand. Each program is independent, so
  // the profile runs fan out across the pool; results are collected (and
  // failed instantiations dropped) in program order to match a serial run.
  struct MaybeDemand {
    bool ok = false;
    NfDemand demand;
  };
  std::vector<MaybeDemand> profiled =
      ParallelMap<MaybeDemand>(programs.size(), [&](size_t i) {
        MaybeDemand out;
        NfInstance nf(std::move(programs[i]));
        if (!nf.ok()) {
          return out;
        }
        NicProgram nic = CompileToNicCached(nf.module());
        Trace trace = GenerateTrace(workload, 600);
        for (auto& pkt : trace.packets) {
          nf.Process(pkt);
        }
        out.demand = BuildDemand(nf.module(), nic, nf.profile(), workload, model.config());
        out.ok = true;
        return out;
      });
  std::vector<NfDemand> demands;
  demands.reserve(profiled.size());
  for (MaybeDemand& md : profiled) {
    if (md.ok) {
      demands.push_back(std::move(md.demand));
    }
  }
  if (demands.size() < opts_.group_size) {
    return;
  }

  // Sample groups of candidate pairings; relevance = measured friendliness.
  // The rng draws stay serial (one shared stream decides the pairings), then
  // the expensive pair measurements fan out and are assembled in draw order.
  struct PairDraw {
    size_t anchor = 0;
    size_t other = 0;
  };
  std::vector<PairDraw> draws;
  draws.reserve(opts_.train_groups * opts_.group_size);
  for (size_t g = 0; g < opts_.train_groups; ++g) {
    size_t anchor = rng.NextBounded(demands.size());
    for (size_t i = 0; i < opts_.group_size; ++i) {
      draws.push_back(PairDraw{anchor, rng.NextBounded(demands.size())});
    }
  }
  std::vector<double> relevance = ParallelMap<double>(draws.size(), [&](size_t i) {
    PairOutcome outcome = MeasurePair(model, demands[draws[i].anchor], demands[draws[i].other]);
    return outcome.Friendliness(opts_.objective);
  });
  std::vector<RankGroup> groups;
  groups.reserve(opts_.train_groups);
  for (size_t g = 0; g < opts_.train_groups; ++g) {
    RankGroup group;
    for (size_t i = 0; i < opts_.group_size; ++i) {
      size_t idx = g * opts_.group_size + i;
      group.items.push_back(PairFeatures(demands[draws[idx].anchor], demands[draws[idx].other]));
      group.relevance.push_back(relevance[idx]);
    }
    groups.push_back(std::move(group));
  }
  ranker_ = GbdtRanker(opts_.gbdt);
  ranker_.Fit(groups);
  trained_ = true;
}

double ColocationRanker::ScorePair(const NfDemand& a, const NfDemand& b) const {
  return ranker_.Score(PairFeatures(a, b));
}

}  // namespace clara
