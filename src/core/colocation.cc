#include "src/core/colocation.h"

#include <algorithm>
#include <cmath>

#include "src/lang/interp.h"
#include "src/nic/backend.h"
#include "src/nic/demand.h"

namespace clara {

const char* RankObjectiveName(RankObjective o) {
  switch (o) {
    case RankObjective::kTotalThroughput: return "Th.Tot.";
    case RankObjective::kAverageThroughput: return "Th.Avg.";
    case RankObjective::kTotalLatency: return "Lat.Tot.";
    case RankObjective::kAverageLatency: return "Lat.Avg.";
  }
  return "?";
}

double PairOutcome::Friendliness(RankObjective o) const {
  switch (o) {
    case RankObjective::kTotalThroughput:
      return (tput_a_coloc + tput_b_coloc) / std::max(1e-9, tput_a_solo + tput_b_solo);
    case RankObjective::kAverageThroughput:
      return 0.5 * (tput_a_coloc / std::max(1e-9, tput_a_solo) +
                    tput_b_coloc / std::max(1e-9, tput_b_solo));
    case RankObjective::kTotalLatency:
      return (lat_a_solo + lat_b_solo) / std::max(1e-9, lat_a_coloc + lat_b_coloc);
    case RankObjective::kAverageLatency:
      return 0.5 * (lat_a_solo / std::max(1e-9, lat_a_coloc) +
                    lat_b_solo / std::max(1e-9, lat_b_coloc));
  }
  return 0;
}

PairOutcome MeasurePair(const PerfModel& model, const NfDemand& a, const NfDemand& b) {
  PairOutcome o;
  int cores = model.config().num_cores;
  int half = std::max(1, cores / 2);
  // Solo baselines use the same per-NF core budget as the colocated run, so
  // degradation isolates memory-system interference (paper: "each NF is
  // given the same amount of SmartNIC resources").
  PerfPoint a_solo = model.Evaluate(a, half);
  PerfPoint b_solo = model.Evaluate(b, half);
  auto [a_co, b_co] = model.EvaluatePair(a, half, b, half);
  o.tput_a_solo = a_solo.throughput_mpps;
  o.tput_b_solo = b_solo.throughput_mpps;
  o.lat_a_solo = a_solo.latency_us;
  o.lat_b_solo = b_solo.latency_us;
  o.tput_a_coloc = a_co.throughput_mpps;
  o.tput_b_coloc = b_co.throughput_mpps;
  o.lat_a_coloc = a_co.latency_us;
  o.lat_b_coloc = b_co.latency_us;
  return o;
}

FeatureVec ColocationRanker::PairFeatures(const NfDemand& a, const NfDemand& b) {
  auto dram_words = [](const NfDemand& d) {
    double words = 0;
    for (const auto& s : d.state) {
      if (s.region == MemRegion::kEmem) {
        words += s.accesses_per_pkt * s.words_per_access * (1 - s.cache_hit_rate);
      }
    }
    return words;
  };
  double ai_a = a.ArithmeticIntensity();
  double ai_b = b.ArithmeticIntensity();
  return FeatureVec{
      ai_a,
      ai_b,
      a.compute_cycles,
      b.compute_cycles,
      ai_a / std::max(1e-9, ai_b),
      a.TotalStateAccesses(),
      b.TotalStateAccesses(),
      dram_words(a),
      dram_words(b),
      dram_words(a) + dram_words(b),
  };
}

void ColocationRanker::Train(const PerfModel& model, const WorkloadSpec& workload) {
  Rng rng(opts_.seed);
  std::vector<Program> programs = SynthesizeCorpus(opts_.train_nfs, opts_.synth, opts_.seed);

  // Profile each NF once to build its demand.
  std::vector<NfDemand> demands;
  for (auto& prog : programs) {
    NfInstance nf(std::move(prog));
    if (!nf.ok()) {
      continue;
    }
    NicProgram nic = CompileToNic(nf.module());
    Trace trace = GenerateTrace(workload, 600);
    for (auto& pkt : trace.packets) {
      nf.Process(pkt);
    }
    demands.push_back(BuildDemand(nf.module(), nic, nf.profile(), workload, model.config()));
  }
  if (demands.size() < opts_.group_size) {
    return;
  }

  // Sample groups of candidate pairings; relevance = measured friendliness.
  std::vector<RankGroup> groups;
  for (size_t g = 0; g < opts_.train_groups; ++g) {
    RankGroup group;
    size_t anchor = rng.NextBounded(demands.size());
    for (size_t i = 0; i < opts_.group_size; ++i) {
      size_t other = rng.NextBounded(demands.size());
      PairOutcome outcome = MeasurePair(model, demands[anchor], demands[other]);
      group.items.push_back(PairFeatures(demands[anchor], demands[other]));
      group.relevance.push_back(outcome.Friendliness(opts_.objective));
    }
    groups.push_back(std::move(group));
  }
  ranker_ = GbdtRanker(opts_.gbdt);
  ranker_.Fit(groups);
  trained_ = true;
}

double ColocationRanker::ScorePair(const NfDemand& a, const NfDemand& b) const {
  return ranker_.Score(PairFeatures(a, b));
}

}  // namespace clara
