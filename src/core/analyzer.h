// The Clara facade: one object that owns all trained components and turns an
// unported NF program + workload into a full set of offloading insights
// (paper Figure 2c).
#ifndef SRC_CORE_ANALYZER_H_
#define SRC_CORE_ANALYZER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/algo_id.h"
#include "src/core/coalescing.h"
#include "src/core/colocation.h"
#include "src/core/placement.h"
#include "src/core/predictor.h"
#include "src/core/scaleout.h"
#include "src/nic/perf_model.h"

namespace clara {

struct OffloadingInsights {
  std::string nf_name;
  // §3: predicted performance parameters.
  NfPrediction prediction;
  // §4.1: accelerator opportunity.
  AccelClass accelerator = AccelClass::kNone;
  // §4.2: suggested core count.
  int suggested_cores = 1;
  // §4.3: state placement.
  PlacementResult placement;
  // §4.4: variable packing / access coalescing.
  CoalescingPlan coalescing;
  // Simulator estimates of the naive port vs the Clara-tuned port, both at
  // the suggested core count.
  PerfPoint naive_perf;
  PerfPoint tuned_perf;

  std::string ToString(const NicConfig& cfg) const;
};

struct AnalyzerOptions {
  NicConfig nic;
  PredictorOptions predictor;
  AlgoIdOptions algo_id;
  ScaleOutOptions scaleout;
  ColocationOptions colocation;
  size_t algo_corpus_per_class = 40;
  size_t profile_packets = 4000;
  uint64_t seed = 2024;
};

// Everything ClaraAnalyzer::Analyze needs, detached from training: the
// trained components plus the measured synthesis profile. This is the unit
// the artifact store (src/serve/artifact.h) persists, enabling the
// train-once/serve-many split.
struct TrainedBundle {
  SynthProfile synth_profile;
  InstructionPredictor predictor;
  AlgorithmIdentifier algo_id;
  ScaleOutAdvisor scaleout;
  ColocationRanker colocation;

  bool trained() const {
    return predictor.trained() && algo_id.trained() && scaleout.trained() &&
           colocation.trained();
  }

  void SaveTo(BinWriter& w) const;
  bool LoadFrom(BinReader& r);
};

class ClaraAnalyzer {
 public:
  explicit ClaraAnalyzer(AnalyzerOptions opts = AnalyzerOptions{});

  // Constructs an analyzer from pre-trained components (loaded from the
  // artifact store) — no Train() call needed before Analyze().
  ClaraAnalyzer(AnalyzerOptions opts, TrainedBundle bundle);

  // Trains every learned component. `click_corpus` (real elements) guides
  // the data-synthesis engine's AST distribution (§3.2, Table 1).
  void Train(const std::vector<const Program*>& click_corpus);

  bool trained() const { return trained_; }

  // Copies the trained components out for persistence.
  TrainedBundle ExportTrained() const;

  // Full analysis of an unported NF under a workload. Takes the program by
  // value (analysis owns and annotates it).
  OffloadingInsights Analyze(Program program, const WorkloadSpec& workload) const;

  // Analyze with an externally computed instruction prediction (the serving
  // engine micro-batches per-block LSTM inference across requests and feeds
  // the assembled predictions here). `precomputed` must match the lowered
  // module of `program`; passing nullptr falls back to inline prediction.
  OffloadingInsights Analyze(Program program, const WorkloadSpec& workload,
                             const NfPrediction* precomputed) const;

  // Selects the LSTM inference backend for all subsequent Analyze calls
  // (src/ml/infer.h); the serve engine applies ServeOptions.infer_backend
  // through this.
  void SetInferBackend(InferBackend backend) { predictor_.SetInferBackend(backend); }
  InferBackend infer_backend() const { return predictor_.infer_backend(); }

  const PerfModel& perf_model() const { return perf_model_; }
  const InstructionPredictor& predictor() const { return predictor_; }
  const AlgorithmIdentifier& algo_id() const { return algo_id_; }
  const ScaleOutAdvisor& scaleout() const { return scaleout_; }
  const ColocationRanker& colocation() const { return colocation_; }
  const SynthProfile& synth_profile() const { return synth_profile_; }

 private:
  AnalyzerOptions opts_;
  PerfModel perf_model_;
  SynthProfile synth_profile_;
  InstructionPredictor predictor_;
  AlgorithmIdentifier algo_id_;
  ScaleOutAdvisor scaleout_;
  ColocationRanker colocation_;
  bool trained_ = false;
};

}  // namespace clara

#endif  // SRC_CORE_ANALYZER_H_
