#include "src/core/chain.h"

#include <algorithm>
#include <set>

namespace clara {

NfDemand CombineChain(const std::vector<ChainStage>& stages) {
  NfDemand out;
  out.compute_cycles = 0;
  out.pkt_accesses = 0;
  std::set<std::string> names;
  double pkt_words = 0;
  for (const auto& stage : stages) {
    const NfDemand& d = stage.demand;
    if (out.name.empty()) {
      out.name = stage.name;
      out.wire_bytes = d.wire_bytes;
    } else {
      out.name += "->" + stage.name;
    }
    out.compute_cycles += d.compute_cycles;
    out.engine_cycles += d.engine_cycles;
    out.pkt_accesses += d.pkt_accesses;
    pkt_words += d.pkt_accesses * d.pkt_words_per_access;
    for (StateDemand s : d.state) {
      if (!names.insert(s.name).second) {
        s.name = stage.name + "." + s.name;
        names.insert(s.name);
      }
      out.state.push_back(std::move(s));
    }
  }
  out.pkt_words_per_access = out.pkt_accesses > 0 ? pkt_words / out.pkt_accesses : 2.0;
  if (out.compute_cycles < 1) {
    out.compute_cycles = 1;
  }
  return out;
}

SplitPoint PartitionAdvisor::EvaluateHostOnly(const NfDemand& demand) const {
  // Per-packet host service time: superscalar cores retire the instruction
  // stream faster, and state accesses are cache-hit dominated.
  double cycles = demand.compute_cycles / host_.ipc_advantage +
                  (demand.TotalStateAccesses() + demand.pkt_accesses) * host_.mem_cycles;
  double freq_hz = host_.freq_ghz * 1e9;
  SplitPoint p;
  p.latency_us = cycles / freq_hz * 1e6;
  p.throughput_mpps = host_.cores * freq_hz / cycles / 1e6;
  p.bound = SplitPoint::Bound::kHost;
  return p;
}

std::vector<SplitPoint> PartitionAdvisor::EvaluateSplits(
    const std::vector<ChainStage>& stages, int nic_cores) const {
  std::vector<SplitPoint> out;
  int n = static_cast<int>(stages.size());
  for (int k = 0; k <= n; ++k) {
    SplitPoint p;
    p.nic_stages = k;
    std::vector<ChainStage> nic_part(stages.begin(), stages.begin() + k);
    std::vector<ChainStage> host_part(stages.begin() + k, stages.end());

    double tput = 1e300;
    double latency = 0;
    double wire = stages.empty() ? 128.0 : stages.front().demand.wire_bytes;
    p.bound = SplitPoint::Bound::kNic;
    if (!nic_part.empty()) {
      NfDemand nic_demand = CombineChain(nic_part);
      wire = nic_demand.wire_bytes;
      PerfPoint nic_perf = nic_.Evaluate(nic_demand, nic_cores);
      tput = nic_perf.throughput_mpps;
      latency += nic_perf.latency_us;
    }
    if (!host_part.empty()) {
      SplitPoint host_perf = EvaluateHostOnly(CombineChain(host_part));
      if (host_perf.throughput_mpps < tput) {
        tput = host_perf.throughput_mpps;
        p.bound = SplitPoint::Bound::kHost;
      }
      latency += host_perf.latency_us;
      // Any host involvement crosses PCIe (to the host and back to the wire).
      latency += 2 * host_.pcie_latency_us;
      double pcie = host_.MaxPcieMpps(wire);
      if (pcie < tput) {
        tput = pcie;
        p.bound = SplitPoint::Bound::kPcie;
      }
    }
    // Packets always enter and leave through the NIC's wire ports, so line
    // rate caps every split.
    double line = nic_.config().MaxLineRateMpps(wire);
    if (line < tput) {
      tput = line;
    }
    p.throughput_mpps = tput >= 1e300 ? 0 : tput;
    p.latency_us = latency;
    out.push_back(p);
  }
  return out;
}

SplitPoint PartitionAdvisor::Best(const std::vector<ChainStage>& stages,
                                  int nic_cores) const {
  std::vector<SplitPoint> splits = EvaluateSplits(stages, nic_cores);
  SplitPoint best = splits.front();
  for (const auto& s : splits) {
    if (s.throughput_mpps > best.throughput_mpps * (1 + 1e-9) ||
        (std::abs(s.throughput_mpps - best.throughput_mpps) <=
             1e-9 * best.throughput_mpps &&
         s.latency_us < best.latency_us)) {
      best = s;
    }
  }
  return best;
}

}  // namespace clara
