// NF colocation analysis (paper §4.5): pairwise learning-to-rank over NF
// pairs, trained on measured colocation friendliness (collective colocated
// throughput normalized by solo throughputs). Features follow the paper:
// each NF's arithmetic intensity, compute instruction counts, and the ratio
// of intensities, plus memory-pressure summaries.
#ifndef SRC_CORE_COLOCATION_H_
#define SRC_CORE_COLOCATION_H_

#include <string>
#include <vector>

#include "src/ml/ensemble.h"
#include "src/nic/perf_model.h"
#include "src/synth/synth.h"
#include "src/workload/workload.h"

namespace clara {

// Ranking objective (Figure 14a trains one model per objective).
enum class RankObjective {
  kTotalThroughput,   // aggregate colocated tput / sum of solo tputs
  kAverageThroughput, // mean of per-NF relative tputs
  kTotalLatency,      // negative aggregate latency inflation
  kAverageLatency,
};

const char* RankObjectiveName(RankObjective o);

// Measured colocation outcome for a pair.
struct PairOutcome {
  double tput_a_solo = 0;
  double tput_b_solo = 0;
  double tput_a_coloc = 0;
  double tput_b_coloc = 0;
  double lat_a_solo = 0;
  double lat_b_solo = 0;
  double lat_a_coloc = 0;
  double lat_b_coloc = 0;

  double Friendliness(RankObjective o) const;
};

// Runs both NFs solo (all cores split evenly for colocation) and measures
// the outcome on the performance model.
PairOutcome MeasurePair(const PerfModel& model, const NfDemand& a, const NfDemand& b);

struct ColocationOptions {
  size_t train_nfs = 60;          // synthesized NFs for training groups
  size_t train_groups = 150;      // sampled groups
  size_t group_size = 5;          // candidate NFs per group
  uint64_t seed = 4242;
  RankObjective objective = RankObjective::kTotalThroughput;
  GbdtOptions gbdt;
  SynthOptions synth;
};

class ColocationRanker {
 public:
  explicit ColocationRanker(ColocationOptions opts = ColocationOptions{}) : opts_(opts) {}

  // Synthesizes NFs, measures pairwise colocations on `model`, and trains
  // the pairwise ranker.
  void Train(const PerfModel& model, const WorkloadSpec& workload);

  bool trained() const { return trained_; }

  // Higher score = friendlier pairing.
  double ScorePair(const NfDemand& a, const NfDemand& b) const;

  static FeatureVec PairFeatures(const NfDemand& a, const NfDemand& b);

  void SaveTo(BinWriter& w) const;
  bool LoadFrom(BinReader& r);

 private:
  ColocationOptions opts_;
  GbdtRanker ranker_;
  bool trained_ = false;
};

}  // namespace clara

#endif  // SRC_CORE_COLOCATION_H_
