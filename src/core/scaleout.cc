#include "src/core/scaleout.h"

#include <algorithm>
#include <cmath>

#include "src/lang/interp.h"
#include "src/nic/backend.h"
#include "src/util/binio.h"
#include "src/util/parallel.h"
#include "src/workload/workload.h"

namespace clara {

void ScaleOutAdvisor::SaveTo(BinWriter& w) const {
  w.U16(0x534F);  // "SO"
  w.Bool(trained_);
  w.I32(num_cores_);
  gbdt_.SaveTo(w);
}

bool ScaleOutAdvisor::LoadFrom(BinReader& r) {
  if (r.U16() != 0x534F) {
    r.Fail("scale-out: bad section tag");
    return false;
  }
  bool trained = r.Bool();
  int num_cores = r.I32();
  if (r.ok() && num_cores <= 0) {
    r.Fail("scale-out: non-positive core count");
    return false;
  }
  GbdtRegressor gbdt;
  if (!gbdt.LoadFrom(r)) {
    return false;
  }
  trained_ = trained;
  num_cores_ = num_cores;
  gbdt_ = std::move(gbdt);
  dataset_ = TabularDataset{};
  return true;
}

FeatureVec ScaleOutAdvisor::Features(const NfDemand& d) {
  double state_accesses = d.TotalStateAccesses();
  double cache_words = 0;
  double dram_words = 0;
  double sram_words = 0;
  for (const auto& s : d.state) {
    double words = s.accesses_per_pkt * s.words_per_access;
    if (s.region == MemRegion::kEmem) {
      cache_words += words * s.cache_hit_rate;
      dram_words += words * (1 - s.cache_hit_rate);
    } else {
      sram_words += words;
    }
  }
  return FeatureVec{
      d.compute_cycles,
      d.engine_cycles,
      state_accesses,
      d.pkt_accesses,
      d.ArithmeticIntensity(),
      cache_words,
      dram_words,
      sram_words,
      d.wire_bytes,
  };
}

void ScaleOutAdvisor::Train(const PerfModel& model, const std::vector<WorkloadSpec>& workloads) {
  num_cores_ = model.config().num_cores;
  std::vector<Program> programs =
      SynthesizeCorpus(opts_.train_programs, opts_.synth, opts_.seed);
  dataset_ = TabularDataset{};
  // Each program's profile + schedule sweep is independent: fan the corpus
  // out across the pool and splice the rows back in program order, so the
  // dataset matches a serial run exactly.
  struct ProgramRows {
    std::vector<FeatureVec> x;
    std::vector<double> y;
  };
  std::vector<ProgramRows> rows = ParallelMap<ProgramRows>(programs.size(), [&](size_t i) {
    ProgramRows out;
    NfInstance nf(std::move(programs[i]));
    if (!nf.ok()) {
      return out;
    }
    NicProgram nic = CompileToNicCached(nf.module());
    for (const auto& w : workloads) {
      nf.ResetState();
      nf.ResetProfile();
      Trace trace = GenerateTrace(w, 800);
      for (auto& pkt : trace.packets) {
        nf.Process(pkt);
      }
      NfDemand demand = BuildDemand(nf.module(), nic, nf.profile(), w, model.config());
      // "Schedule" sweep: the training label is the measured-optimal core
      // count on the NIC.
      int optimal = model.OptimalCores(demand);
      out.x.push_back(Features(demand));
      out.y.push_back(optimal);
    }
    return out;
  });
  for (ProgramRows& r : rows) {
    for (size_t k = 0; k < r.x.size(); ++k) {
      dataset_.x.push_back(std::move(r.x[k]));
      dataset_.y.push_back(r.y[k]);
    }
  }
  gbdt_ = GbdtRegressor(opts_.gbdt);
  gbdt_.Fit(dataset_);
  trained_ = true;
}

int ScaleOutAdvisor::SuggestCores(const NfDemand& demand) const {
  double y = gbdt_.Predict(Features(demand));
  return std::clamp(static_cast<int>(std::lround(y)), 1, num_cores_);
}

}  // namespace clara
