#include "src/core/scaleout.h"

#include <algorithm>
#include <cmath>

#include "src/lang/interp.h"
#include "src/nic/backend.h"
#include "src/workload/workload.h"

namespace clara {

FeatureVec ScaleOutAdvisor::Features(const NfDemand& d) {
  double state_accesses = d.TotalStateAccesses();
  double cache_words = 0;
  double dram_words = 0;
  double sram_words = 0;
  for (const auto& s : d.state) {
    double words = s.accesses_per_pkt * s.words_per_access;
    if (s.region == MemRegion::kEmem) {
      cache_words += words * s.cache_hit_rate;
      dram_words += words * (1 - s.cache_hit_rate);
    } else {
      sram_words += words;
    }
  }
  return FeatureVec{
      d.compute_cycles,
      d.engine_cycles,
      state_accesses,
      d.pkt_accesses,
      d.ArithmeticIntensity(),
      cache_words,
      dram_words,
      sram_words,
      d.wire_bytes,
  };
}

void ScaleOutAdvisor::Train(const PerfModel& model, const std::vector<WorkloadSpec>& workloads) {
  num_cores_ = model.config().num_cores;
  std::vector<Program> programs =
      SynthesizeCorpus(opts_.train_programs, opts_.synth, opts_.seed);
  dataset_ = TabularDataset{};
  for (auto& prog : programs) {
    NfInstance nf(std::move(prog));
    if (!nf.ok()) {
      continue;
    }
    NicProgram nic = CompileToNic(nf.module());
    for (const auto& w : workloads) {
      nf.ResetState();
      nf.ResetProfile();
      Trace trace = GenerateTrace(w, 800);
      for (auto& pkt : trace.packets) {
        nf.Process(pkt);
      }
      NfDemand demand = BuildDemand(nf.module(), nic, nf.profile(), w, model.config());
      // "Schedule" sweep: the training label is the measured-optimal core
      // count on the NIC.
      int optimal = model.OptimalCores(demand);
      dataset_.x.push_back(Features(demand));
      dataset_.y.push_back(optimal);
    }
  }
  gbdt_ = GbdtRegressor(opts_.gbdt);
  gbdt_.Fit(dataset_);
  trained_ = true;
}

int ScaleOutAdvisor::SuggestCores(const NfDemand& demand) const {
  double y = gbdt_.Predict(Features(demand));
  return std::clamp(static_cast<int>(std::lround(y)), 1, num_cores_);
}

}  // namespace clara
