#include "src/core/algo_id.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/ir/cfg.h"
#include "src/ir/classify.h"
#include "src/lang/lower.h"
#include "src/util/binio.h"

namespace clara {

void AlgorithmIdentifier::SaveTo(BinWriter& w) const {
  w.U16(0x4149);  // "AI"
  w.Bool(trained_);
  w.U32(static_cast<uint32_t>(patterns_.size()));
  for (const auto& pat : patterns_) {
    w.VecStr(pat);
  }
  w.VecStr(feature_names_);
  svm_.SaveTo(w);
}

bool AlgorithmIdentifier::LoadFrom(BinReader& r) {
  if (r.U16() != 0x4149) {
    r.Fail("algo-id: bad section tag");
    return false;
  }
  bool trained = r.Bool();
  uint32_t num_patterns = r.U32();
  if (!r.ok() || static_cast<uint64_t>(num_patterns) * 4 > r.remaining()) {
    r.Fail("algo-id: pattern count exceeds remaining bytes");
    return false;
  }
  std::vector<std::vector<std::string>> patterns;
  patterns.reserve(num_patterns);
  for (uint32_t i = 0; i < num_patterns && r.ok(); ++i) {
    std::vector<std::string> pat;
    r.VecStr(&pat);
    patterns.push_back(std::move(pat));
  }
  std::vector<std::string> names;
  r.VecStr(&names);
  LinearSvm svm;
  if (!r.ok() || !svm.LoadFrom(r)) {
    return false;
  }
  trained_ = trained;
  patterns_ = std::move(patterns);
  feature_names_ = std::move(names);
  svm_ = std::move(svm);
  dataset_ = TabularDataset{};
  return true;
}
namespace {

using BlockFilter = std::vector<bool>;  // per block: include in extraction?

BlockFilter AllBlocks(const Module& m) {
  return BlockFilter(m.functions.at(0).blocks.size(), true);
}

std::vector<std::string> TokensFiltered(const Module& m, const BlockFilter& filter) {
  std::vector<std::string> tokens;
  const Function& f = m.functions.at(0);
  for (size_t b = 0; b < f.blocks.size(); ++b) {
    if (b < filter.size() && !filter[b]) {
      continue;
    }
    for (const auto& i : f.blocks[b].instrs) {
      switch (i.op) {
        case Opcode::kLoad:
        case Opcode::kStore:
          tokens.push_back(std::string(OpcodeName(i.op)) + "." +
                           AddressSpaceName(i.space) + (i.has_dyn_index ? ".idx" : ""));
          break;
        case Opcode::kCall:
          tokens.push_back("call");
          break;
        default:
          tokens.push_back(OpcodeName(i.op));
          break;
      }
    }
  }
  return tokens;
}

// Function-wide taint analysis: which registers and stack slots carry values
// (transitively) derived from stateful loads. Iterates to a fixed point so
// derivations that flow through locals and across blocks (the classic trie
// walk: next = trie[node]; node = next - 1) are captured.
struct StateTaint {
  std::set<uint32_t> regs;
  std::set<uint32_t> slots;
};

StateTaint ComputeStateTaint(const Function& f) {
  StateTaint t;
  bool changed = true;
  int iterations = 0;
  while (changed && iterations++ < 8) {
    changed = false;
    for (const auto& blk : f.blocks) {
      for (const auto& i : blk.instrs) {
        bool derived = false;
        if (i.op == Opcode::kLoad) {
          if (i.space == AddressSpace::kState) {
            derived = true;
          } else if (i.space == AddressSpace::kStack && t.slots.count(i.sym) > 0) {
            derived = true;
          }
        } else {
          for (const auto& v : i.operands) {
            if (v.is_reg() && t.regs.count(v.reg) > 0) {
              derived = true;
              break;
            }
          }
        }
        if (!derived) {
          continue;
        }
        if (i.op == Opcode::kStore && i.space == AddressSpace::kStack &&
            !i.operands.empty() && i.operands[0].is_reg() &&
            t.regs.count(i.operands[0].reg) > 0) {
          changed |= t.slots.insert(i.sym).second;
        }
        if (i.result != 0) {
          changed |= t.regs.insert(i.result).second;
        }
      }
    }
  }
  return t;
}

FeatureVec ManualFeaturesFiltered(const Module& m, const BlockFilter& filter) {
  const Function& f = m.functions.at(0);
  Cfg cfg = BuildCfg(f);
  StateTaint taint = ComputeStateTaint(f);

  double compute = 1;
  double mem = 1;
  double bitwise = 0;
  double shifts = 0;
  double payload_loads = 0;
  double loop_state_loads = 0;
  double pointer_chase = 0;
  int loop_blocks = 0;
  int blocks_seen = 0;
  for (size_t b = 0; b < f.blocks.size(); ++b) {
    if (b < filter.size() && !filter[b]) {
      continue;
    }
    ++blocks_seen;
    bool in_loop = b < cfg.loop_depth.size() && cfg.loop_depth[b] > 0;
    if (in_loop) {
      ++loop_blocks;
    }
    for (const auto& i : f.blocks[b].instrs) {
      switch (Classify(i)) {
        case InstrClass::kCompute:
          ++compute;
          break;
        case InstrClass::kStatelessMem:
        case InstrClass::kStatefulMem:
          ++mem;
          break;
        default:
          break;
      }
      switch (i.op) {
        case Opcode::kAnd:
        case Opcode::kOr:
        case Opcode::kXor:
          ++bitwise;
          break;
        case Opcode::kShl:
        case Opcode::kLShr:
        case Opcode::kAShr:
          ++shifts;
          break;
        default:
          break;
      }
      if (i.op == Opcode::kLoad) {
        if (i.space == AddressSpace::kPacket && i.has_dyn_index) {
          ++payload_loads;
        }
        if (i.space == AddressSpace::kState && i.has_dyn_index && in_loop) {
          ++loop_state_loads;
          const Value& idx = i.operands.back();
          if (idx.is_reg() && taint.regs.count(idx.reg) > 0) {
            ++pointer_chase;  // the trie-walk signature
          }
        }
      }
    }
  }
  double nblocks = std::max(1, blocks_seen);
  return FeatureVec{
      bitwise / compute,
      shifts / compute,
      static_cast<double>(loop_blocks) / nblocks,
      pointer_chase / mem,
      loop_state_loads / mem,
      payload_loads / mem,
  };
}

// All contiguous n-grams of `tokens` joined with '|'.
std::set<std::string> NgramSet(const std::vector<std::string>& tokens, int nmin, int nmax) {
  std::set<std::string> out;
  for (int n = nmin; n <= nmax; ++n) {
    for (size_t i = 0; i + n <= tokens.size(); ++i) {
      std::string key = tokens[i];
      for (int d = 1; d < n; ++d) {
        key += "|" + tokens[i + d];
      }
      out.insert(std::move(key));
    }
  }
  return out;
}

double CountOccurrences(const std::vector<std::string>& tokens,
                        const std::vector<std::string>& pattern) {
  if (pattern.empty() || tokens.size() < pattern.size()) {
    return 0;
  }
  double count = 0;
  for (size_t i = 0; i + pattern.size() <= tokens.size(); ++i) {
    bool match = true;
    for (size_t d = 0; d < pattern.size(); ++d) {
      if (tokens[i + d] != pattern[d]) {
        match = false;
        break;
      }
    }
    if (match) {
      ++count;
    }
  }
  return count;
}

std::vector<std::string> SplitPattern(const std::string& key) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t bar = key.find('|', start);
    if (bar == std::string::npos) {
      parts.push_back(key.substr(start));
      break;
    }
    parts.push_back(key.substr(start, bar - start));
    start = bar + 1;
  }
  return parts;
}

FeatureVec FeaturesFiltered(const Module& m, const BlockFilter& filter,
                            const std::vector<std::vector<std::string>>& patterns) {
  std::vector<std::string> tokens = TokensFiltered(m, filter);
  double norm = std::max<size_t>(1, tokens.size());
  FeatureVec x;
  x.reserve(patterns.size() + 6);
  for (const auto& pattern : patterns) {
    x.push_back(CountOccurrences(tokens, pattern) / norm * 100.0);
  }
  for (double v : ManualFeaturesFiltered(m, filter)) {
    x.push_back(v);
  }
  return x;
}

}  // namespace

std::vector<std::string> OpcodeTokens(const Module& m) {
  return TokensFiltered(m, AllBlocks(m));
}

FeatureVec ManualFeatures(const Module& m) {
  return ManualFeaturesFiltered(m, AllBlocks(m));
}

void AlgorithmIdentifier::Train(const std::vector<LabeledProgram>& corpus) {
  std::vector<Module> modules;
  std::vector<int> labels;
  for (const auto& lp : corpus) {
    Program copy = CloneProgram(lp.program);
    LowerResult lr = LowerProgram(copy);
    if (!lr.ok) {
      continue;
    }
    modules.push_back(std::move(lr.module));
    labels.push_back(static_cast<int>(lp.label));
  }

  // SPE mining: presence statistics per class.
  std::vector<std::set<std::string>> present(modules.size());
  for (size_t i = 0; i < modules.size(); ++i) {
    present[i] = NgramSet(OpcodeTokens(modules[i]), opts_.ngram_min, opts_.ngram_max);
  }
  std::vector<int> class_counts(kNumAccelClasses, 0);
  for (int l : labels) {
    ++class_counts[l];
  }
  std::map<std::string, std::vector<int>> ngram_class_counts;
  for (size_t i = 0; i < modules.size(); ++i) {
    for (const auto& g : present[i]) {
      auto& counts = ngram_class_counts[g];
      if (counts.empty()) {
        counts.assign(kNumAccelClasses, 0);
      }
      ++counts[labels[i]];
    }
  }
  // Score candidates: high support in one positive class and near-absence in
  // "none" programs (the paper's support/confidence criteria).
  int none = static_cast<int>(AccelClass::kNone);
  std::vector<std::pair<double, std::string>> scored;
  for (const auto& [g, counts] : ngram_class_counts) {
    double none_rate =
        class_counts[none] > 0 ? static_cast<double>(counts[none]) / class_counts[none] : 0;
    if (none_rate > opts_.max_none_rate) {
      continue;
    }
    double best_support = 0;
    for (int c = 0; c < kNumAccelClasses; ++c) {
      if (c == none || class_counts[c] == 0) {
        continue;
      }
      best_support =
          std::max(best_support, static_cast<double>(counts[c]) / class_counts[c]);
    }
    if (best_support < opts_.min_support) {
      continue;
    }
    scored.emplace_back(best_support - none_rate, g);
  }
  std::sort(scored.rbegin(), scored.rend());
  patterns_.clear();
  feature_names_.clear();
  for (const auto& [score, g] : scored) {
    if (static_cast<int>(patterns_.size()) >= opts_.max_patterns) {
      break;
    }
    patterns_.push_back(SplitPattern(g));
    feature_names_.push_back("spe:" + g);
  }
  for (const char* name : {"bitwise-density", "shift-density", "loop-fraction",
                           "pointer-chase", "loop-table-load", "payload-density"}) {
    feature_names_.push_back(name);
  }

  dataset_ = TabularDataset{};
  for (size_t i = 0; i < modules.size(); ++i) {
    dataset_.x.push_back(ExtractFeatures(modules[i]));
    dataset_.y.push_back(labels[i]);
  }
  svm_ = LinearSvm(opts_.svm);
  svm_.Fit(dataset_, kNumAccelClasses);
  trained_ = true;
}

FeatureVec AlgorithmIdentifier::ExtractFeatures(const Module& m) const {
  return FeaturesFiltered(m, AllBlocks(m), patterns_);
}

AccelClass AlgorithmIdentifier::Classify(const Module& m) const {
  if (!trained_) {
    return AccelClass::kNone;
  }
  // Whole-program view first.
  int whole = svm_.Predict(ExtractFeatures(m));
  if (whole != static_cast<int>(AccelClass::kNone)) {
    return static_cast<AccelClass>(whole);
  }
  // Otherwise examine each loop region separately: the accelerator-eligible
  // algorithm may be one code block of a larger NF (paper: "Clara ... uses
  // the trained classifiers to label a given NF's code block"). Pick the
  // non-none label with the strongest SVM margin across regions.
  const Function& f = m.functions.at(0);
  Cfg cfg = BuildCfg(f);
  double best_margin = 0;
  int best_label = static_cast<int>(AccelClass::kNone);
  for (const auto& [tail, head] : cfg.back_edges) {
    BlockFilter filter(f.blocks.size(), false);
    for (uint32_t b : NaturalLoop(cfg, tail, head)) {
      filter[b] = true;
    }
    FeatureVec x = FeaturesFiltered(m, filter, patterns_);
    int label = svm_.Predict(x);
    if (label == static_cast<int>(AccelClass::kNone)) {
      continue;
    }
    double margin = svm_.Margin(x, label) - svm_.Margin(x, static_cast<int>(AccelClass::kNone));
    if (margin > best_margin) {
      best_margin = margin;
      best_label = label;
    }
  }
  return static_cast<AccelClass>(best_label);
}

}  // namespace clara
