#include "src/core/placement.h"

#include <chrono>

#include "src/solver/assignment_ilp.h"

namespace clara {
namespace {

// Effective uncontended latency of region `r` for variable `sv` under
// `workload` (EMEM blends cache and DRAM latencies by hit rate).
double RegionLatency(const NicConfig& cfg, MemRegion r, const StateVar& sv,
                     const WorkloadSpec& workload) {
  if (r == MemRegion::kEmem) {
    double hit = VarCacheHitRate(sv, workload, cfg.emem_cache_bytes);
    return hit * cfg.emem_cache_latency +
           (1 - hit) * cfg.Region(MemRegion::kEmem).latency_cycles;
  }
  return cfg.Region(r).latency_cycles;
}

}  // namespace

std::map<std::string, MemRegion> NaivePlacement(const Module& m) {
  std::map<std::string, MemRegion> placement;
  for (const auto& sv : m.state) {
    placement[sv.name] = MemRegion::kEmem;
  }
  return placement;
}

PlacementResult PlaceState(const Module& m, const NfProfile& profile,
                           const WorkloadSpec& workload, const NicConfig& cfg) {
  PlacementResult out;
  auto start = std::chrono::steady_clock::now();

  AssignmentProblem problem;
  double pkts = std::max<uint64_t>(1, profile.packets);
  problem.capacity.resize(kNumMemRegions);
  for (int r = 0; r < kNumMemRegions; ++r) {
    // Leave headroom for runtime structures (rings, packet buffers).
    problem.capacity[r] = cfg.regions[r].capacity_bytes * 3 / 4;
  }
  for (size_t v = 0; v < m.state.size(); ++v) {
    const StateVar& sv = m.state[v];
    double freq = (profile.state_reads[v] + profile.state_writes[v]) / pkts;
    problem.size.push_back(sv.SizeBytes());
    std::vector<double> row(kNumMemRegions, AssignmentProblem::Infeasible());
    for (int r = 0; r < kNumMemRegions; ++r) {
      MemRegion region = static_cast<MemRegion>(r);
      if (sv.SizeBytes() > problem.capacity[r]) {
        continue;  // cannot fit even alone
      }
      row[r] = freq * RegionLatency(cfg, region, sv, workload);
    }
    problem.cost.push_back(std::move(row));
  }

  AssignmentSolution sol = SolveAssignment(problem);
  out.ok = sol.feasible;
  out.ilp_objective = sol.objective;
  out.ilp_nodes = sol.nodes_explored;
  if (sol.feasible) {
    for (size_t v = 0; v < m.state.size(); ++v) {
      out.placement[m.state[v].name] = static_cast<MemRegion>(sol.location[v]);
    }
  } else {
    out.placement = NaivePlacement(m);
  }
  out.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return out;
}

PlacementResult ExhaustivePlacement(const Module& m, const NicProgram& nic,
                                    const NfProfile& profile, const WorkloadSpec& workload,
                                    const PerfModel& model, int cores) {
  PlacementResult out;
  size_t k = m.state.size();
  if (k > 10) {
    return out;  // search space too large; caller should use the ILP
  }
  std::vector<int> choice(k, 0);  // odometer over all t^k placements
  double best_score = -1;
  std::map<std::string, MemRegion> best;

  // Odometer over all t^k placements; feasibility (capacity) is enforced by
  // recomputing used bytes per region.
  while (true) {
    uint64_t used[kNumMemRegions] = {0, 0, 0, 0};
    bool feasible = true;
    for (size_t v = 0; v < k && feasible; ++v) {
      used[choice[v]] += m.state[v].SizeBytes();
      if (used[choice[v]] > model.config().regions[choice[v]].capacity_bytes * 3 / 4) {
        feasible = false;
      }
    }
    if (feasible) {
      DemandOptions opts;
      for (size_t v = 0; v < k; ++v) {
        opts.placement[m.state[v].name] = static_cast<MemRegion>(choice[v]);
      }
      NfDemand demand = BuildDemand(m, nic, profile, workload, model.config(), opts);
      PerfPoint p = model.Evaluate(demand, cores);
      double score = p.throughput_mpps / std::max(1e-9, p.latency_us);
      if (score > best_score) {
        best_score = score;
        best = opts.placement;
      }
    }
    // Advance the odometer.
    size_t pos = 0;
    while (pos < k) {
      if (++choice[pos] < kNumMemRegions) {
        break;
      }
      choice[pos] = 0;
      ++pos;
    }
    if (pos == k) {
      break;
    }
  }
  out.ok = best_score >= 0;
  out.placement = std::move(best);
  return out;
}

}  // namespace clara
